package pnetcdf_test

// Allocation regression pin for the pooled collective round: exchange and
// round buffers come from internal/bufpool and the aggregator hands its
// assembled iovec straight to the PFS, so bytes allocated per collective
// write are dominated by fixed mpi/pfs machinery, not by
// rounds x cb_buffer_size copies. Before pooling this shape allocated over
// 100 MB/op; the pin catches any return to per-round buffer churn.

import (
	"testing"

	"pnetcdf/internal/mpi"
	"pnetcdf/internal/mpiio"
	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/pfs"
)

func collectiveWriteOnce(tb testing.TB) { collectiveWritePipeline(tb, "enable") }

func collectiveWritePipeline(tb testing.TB, pipeline string) {
	const ranks = 4
	const blockLen = 64 << 10
	const nBlocks = 4 // 256 KiB per rank
	fs := pfs.New(pfs.DefaultConfig())
	err := mpi.Run(ranks, mpi.DefaultNet(), func(c *mpi.Comm) error {
		info := mpi.NewInfo()
		info.Set("cb_buffer_size", "131072")
		info.Set("cb_pipeline", pipeline)
		f, err := mpiio.Open(c, fs, "alloc.nc", mpiio.ModeRdWr|mpiio.ModeCreate, info)
		if err != nil {
			return err
		}
		ft, err := mpitype.Vector(nBlocks, blockLen, ranks*blockLen, mpitype.Contig(1))
		if err != nil {
			return err
		}
		if err := f.SetView(int64(c.Rank())*blockLen, ft); err != nil {
			return err
		}
		buf := make([]byte, nBlocks*blockLen)
		for j := range buf {
			buf[j] = byte(c.Rank())
		}
		if err := f.WriteAtAll(0, buf); err != nil {
			return err
		}
		return f.Close()
	})
	if err != nil {
		tb.Fatal(err)
	}
}

func TestAllocsCollectiveRound(t *testing.T) {
	collectiveWriteOnce(t) // warm the buffer pools
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			collectiveWriteOnce(b)
		}
	})
	t.Logf("collective write: %d allocs/op, %d B/op", res.AllocsPerOp(), res.AllocedBytesPerOp())
	// The op includes a fresh pfs.New, file create, and 4-rank mpi.Run; the
	// budget covers that fixed machinery (chunk storage for 1 MiB of file
	// data, goroutine stacks) with headroom, but not per-round copies of the
	// 1 MiB payload across the 8 rounds this shape produces.
	if res.AllocedBytesPerOp() > 8<<20 {
		t.Errorf("collective write allocates %d B/op, want <= %d", res.AllocedBytesPerOp(), 8<<20)
	}
	if res.AllocsPerOp() > 2000 {
		t.Errorf("collective write allocates %d objects/op, want <= 2000", res.AllocsPerOp())
	}
}

// TestAllocsPipelinedVsSerial pins the depth-2 pipeline's steady-state
// allocation cost against the serial loop's. The pipeline keeps TWO
// generations of round buffers alive, but both come from (and return to)
// the shared pools, so after warm-up its bytes/op and allocs/op must stay
// within a modest factor of serial — a leak of the in-flight generation
// (recycleRound skipped on some path) would show up here as unpooled
// per-round churn.
func TestAllocsPipelinedVsSerial(t *testing.T) {
	measure := func(pipeline string) testing.BenchmarkResult {
		collectiveWritePipeline(t, pipeline) // warm the buffer pools
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				collectiveWritePipeline(b, pipeline)
			}
		})
	}
	serial := measure("disable")
	piped := measure("enable")
	t.Logf("serial:    %d allocs/op, %d B/op", serial.AllocsPerOp(), serial.AllocedBytesPerOp())
	t.Logf("pipelined: %d allocs/op, %d B/op", piped.AllocsPerOp(), piped.AllocedBytesPerOp())
	// Absolute pins (same fixed machinery as TestAllocsCollectiveRound).
	if piped.AllocedBytesPerOp() > 8<<20 {
		t.Errorf("pipelined write allocates %d B/op, want <= %d", piped.AllocedBytesPerOp(), 8<<20)
	}
	if piped.AllocsPerOp() > 2000 {
		t.Errorf("pipelined write allocates %d objects/op, want <= 2000", piped.AllocsPerOp())
	}
	// Relative pin: the second generation must reuse pooled memory, not
	// double the per-op footprint. 1.5x leaves room for the extra AsyncOp,
	// closures, and one extra warm generation per pool class.
	if sb := serial.AllocedBytesPerOp(); sb > 0 && float64(piped.AllocedBytesPerOp()) > 1.5*float64(sb) {
		t.Errorf("pipelined B/op %d exceeds 1.5x serial %d — generation buffers not pooled",
			piped.AllocedBytesPerOp(), sb)
	}
}
