package pnetcdf_test

// Allocation regression pin for the pooled collective round: exchange and
// round buffers come from internal/bufpool and the aggregator hands its
// assembled iovec straight to the PFS, so bytes allocated per collective
// write are dominated by fixed mpi/pfs machinery, not by
// rounds x cb_buffer_size copies. Before pooling this shape allocated over
// 100 MB/op; the pin catches any return to per-round buffer churn.

import (
	"testing"

	"pnetcdf/internal/mpi"
	"pnetcdf/internal/mpiio"
	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/pfs"
)

func collectiveWriteOnce(tb testing.TB) {
	const ranks = 4
	const blockLen = 64 << 10
	const nBlocks = 4 // 256 KiB per rank
	fs := pfs.New(pfs.DefaultConfig())
	err := mpi.Run(ranks, mpi.DefaultNet(), func(c *mpi.Comm) error {
		info := mpi.NewInfo()
		info.Set("cb_buffer_size", "131072")
		f, err := mpiio.Open(c, fs, "alloc.nc", mpiio.ModeRdWr|mpiio.ModeCreate, info)
		if err != nil {
			return err
		}
		ft, err := mpitype.Vector(nBlocks, blockLen, ranks*blockLen, mpitype.Contig(1))
		if err != nil {
			return err
		}
		if err := f.SetView(int64(c.Rank())*blockLen, ft); err != nil {
			return err
		}
		buf := make([]byte, nBlocks*blockLen)
		for j := range buf {
			buf[j] = byte(c.Rank())
		}
		if err := f.WriteAtAll(0, buf); err != nil {
			return err
		}
		return f.Close()
	})
	if err != nil {
		tb.Fatal(err)
	}
}

func TestAllocsCollectiveRound(t *testing.T) {
	collectiveWriteOnce(t) // warm the buffer pools
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			collectiveWriteOnce(b)
		}
	})
	t.Logf("collective write: %d allocs/op, %d B/op", res.AllocsPerOp(), res.AllocedBytesPerOp())
	// The op includes a fresh pfs.New, file create, and 4-rank mpi.Run; the
	// budget covers that fixed machinery (chunk storage for 1 MiB of file
	// data, goroutine stacks) with headroom, but not per-round copies of the
	// 1 MiB payload across the 8 rounds this shape produces.
	if res.AllocedBytesPerOp() > 8<<20 {
		t.Errorf("collective write allocates %d B/op, want <= %d", res.AllocedBytesPerOp(), 8<<20)
	}
	if res.AllocsPerOp() > 2000 {
		t.Errorf("collective write allocates %d objects/op, want <= 2000", res.AllocsPerOp())
	}
}
