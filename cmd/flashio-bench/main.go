// Command flashio-bench regenerates the paper's Figure 7: the FLASH I/O
// benchmark (checkpoint, plotfile, plotfile with corners) through PnetCDF
// and the HDF5-style library, on a simulated ASCI White Frost-class system
// (2-node GPFS I/O system).
//
// Usage:
//
//	flashio-bench                       # all six charts at default scales
//	flashio-bench -block 16             # only the 16x16x16 charts
//	flashio-bench -procs 16,32,64,128   # choose the process counts
//	flashio-bench -blocks-per-proc 20   # shrink memory use for large runs
//
// Note on scale: the paper ran to 512 processes on real hardware. Every
// simulated process here holds its real FLASH block data in this process's
// memory, so default process counts are kept moderate; raise -procs as far
// as memory allows (the -blocks-per-proc flag trades per-process volume for
// process count while keeping the access pattern identical).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pnetcdf/internal/bench"
	"pnetcdf/internal/flash"
)

var (
	block    = flag.String("block", "both", "block size: 8, 16 or both")
	procsStr = flag.String("procs", "", "comma-separated process counts")
	bpp      = flag.Int("blocks-per-proc", 0, "blocks per process (default 80, the benchmark's value)")
	files    = flag.String("files", "all", "checkpoint, plotfile, corners or all")
	read     = flag.Bool("read", false, "measure checkpoint read-back instead (the paper's future-work comparison)")
)

func main() {
	flag.Parse()
	machine := bench.ASCIFrost()
	var configs []flash.Config
	switch *block {
	case "8":
		configs = []flash.Config{flash.Default8()}
	case "16":
		configs = []flash.Config{flash.Default16()}
	case "both":
		configs = []flash.Config{flash.Default8(), flash.Default16()}
	default:
		fmt.Fprintln(os.Stderr, "flashio-bench: -block must be 8, 16 or both")
		os.Exit(2)
	}
	var kinds []bench.FlashFile
	if *read {
		*files = "checkpoint"
	}
	switch strings.ToLower(*files) {
	case "checkpoint":
		kinds = []bench.FlashFile{bench.FlashCheckpoint}
	case "plotfile":
		kinds = []bench.FlashFile{bench.FlashPlotfile}
	case "corners":
		kinds = []bench.FlashFile{bench.FlashCorners}
	case "all":
		kinds = []bench.FlashFile{bench.FlashCheckpoint, bench.FlashPlotfile, bench.FlashCorners}
	default:
		fmt.Fprintln(os.Stderr, "flashio-bench: -files must be checkpoint, plotfile, corners or all")
		os.Exit(2)
	}
	for _, cfg := range configs {
		if *bpp > 0 {
			cfg.BlocksPerProc = *bpp
		}
		plist := defaultProcs(cfg)
		if *procsStr != "" {
			plist = nil
			for _, s := range strings.Split(*procsStr, ",") {
				var p int
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &p); err != nil || p < 1 {
					fmt.Fprintf(os.Stderr, "flashio-bench: bad proc count %q\n", s)
					os.Exit(2)
				}
				plist = append(plist, p)
			}
		}
		for _, kind := range kinds {
			fig, err := bench.RunFigure7(bench.Fig7Options{
				Machine: machine,
				Config:  cfg,
				File:    kind,
				Procs:   plist,
				Discard: true,
				Read:    *read,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "flashio-bench:", err)
				os.Exit(1)
			}
			bench.WriteFigure7(os.Stdout, fig)
			fmt.Println()
		}
	}
}

// defaultProcs keeps the default run within a laptop-class memory budget:
// the 8^3 blocks are cheap (8 MB/proc checkpoint), the 16^3 blocks hold
// ~9 MB of guarded data per unknown per process.
func defaultProcs(cfg flash.Config) []int {
	if cfg.NXB >= 16 {
		return []int{4, 8, 16, 32}
	}
	return []int{4, 8, 16, 32, 64}
}
