// Command flashio-bench regenerates the paper's Figure 7: the FLASH I/O
// benchmark (checkpoint, plotfile, plotfile with corners) through PnetCDF
// and the HDF5-style library, on a simulated ASCI White Frost-class system
// (2-node GPFS I/O system).
//
// Usage:
//
//	flashio-bench                       # all six charts at default scales
//	flashio-bench -block 16             # only the 16x16x16 charts
//	flashio-bench -procs 16,32,64,128   # choose the process counts
//	flashio-bench -blocks-per-proc 20   # shrink memory use for large runs
//	flashio-bench -stats                # per-layer I/O statistics per run
//	flashio-bench -trace out.jsonl      # dump the event trace (see nctrace)
//	flashio-bench -span-out spans.json  # Chrome-trace spans of the last run
//	flashio-bench -metrics-addr :9090   # live JSON metrics during the sweep
//	flashio-bench -json BENCH_flashio.json   # machine-readable results
//	flashio-bench -fault-rate 0.01 -stats    # inject transient faults; see
//	                                         # the retry counters for the cost
//	flashio-bench -cb-buffer-size 65536 -cb-nodes 2 -cb-pipeline disable
//	                                    # force multi-round collectives and
//	                                    # compare serial vs pipelined rounds
//	flashio-bench -out f.nc             # dump the raw output image (for
//	                                    # ncdiff byte-identity checks)
//	flashio-bench -ft-timeout 200ms -kill-rank 3 -kill-point mid_exchange
//	                                    # kill a rank mid-collective; the
//	                                    # survivors detect, shrink and fail
//	                                    # over (see ft_* counters)
//
// Note on scale: the paper ran to 512 processes on real hardware. Every
// simulated process here holds its real FLASH block data in this process's
// memory, so default process counts are kept moderate; raise -procs as far
// as memory allows (the -blocks-per-proc flag trades per-process volume for
// process count while keeping the access pattern identical).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"

	"pnetcdf/internal/bench"
	"pnetcdf/internal/cmdutil"
	"pnetcdf/internal/flash"
	"pnetcdf/internal/iostat"
	"pnetcdf/internal/metrics"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/span"
)

const tool = "flashio-bench"

var (
	block     = flag.String("block", "both", "block size: 8, 16 or both")
	procsStr  = flag.String("procs", "", "comma-separated process counts")
	bpp       = flag.Int("blocks-per-proc", 0, "blocks per process (default 80, the benchmark's value)")
	files     = flag.String("files", "all", "checkpoint, plotfile, corners or all")
	read      = flag.Bool("read", false, "measure checkpoint read-back instead (the paper's future-work comparison)")
	stats     = flag.Bool("stats", false, "print per-layer I/O statistics after each PnetCDF run")
	traceOut  = flag.String("trace", "", "write a JSON-lines event trace of the PnetCDF runs to this file")
	spanOut   = flag.String("span-out", "", "write the last PnetCDF run's spans as Chrome trace-event JSON (see nctrace)")
	metricsAt = flag.String("metrics-addr", "", "serve live JSON metrics on this address for the duration of the sweep")
	jsonOut   = flag.String("json", "", "write machine-readable results (implies -stats) to this file")
	faultRate = flag.Float64("fault-rate", 0, "transient-fault probability per 64 KiB transferred (0 disables injection)")
	cbPart    = flag.String("cb-partition", "", "two-phase file-domain partitioning: even or balanced (default: library default)")
	cbPipe    = flag.String("cb-pipeline", "", "pipelined two-phase rounds: enable or disable (default: library default)")
	cbBuf     = flag.Int64("cb-buffer-size", 0, "aggregator staging-buffer bytes per two-phase round (default: library default; small values force multi-round collectives)")
	cbNodes   = flag.Int("cb-nodes", 0, "number of collective-buffering aggregators (default: library default; ROMIO practice is the I/O-node count)")
	outFile   = flag.String("out", "", "dump the raw image of each PnetCDF output file to this path (disables Discard; last run wins)")
	faultSeed = flag.Uint64("fault-seed", 1, "seed for the deterministic fault schedule")
	ftTimeout = flag.String("ft-timeout", "", "deadline for the rank-failure detector (e.g. 200ms); sets "+mpi.FTTimeoutEnv+" for the runs (empty keeps detection off)")
	killRank  = flag.Int("kill-rank", -1, "world rank to kill at -kill-point during the PnetCDF runs (-1 disables)")
	killPoint = flag.String("kill-point", "", "crash point for -kill-rank: before_pack, mid_exchange or after_issue")
	killOcc   = flag.Int64("kill-occurrence", 0, "which passage of -kill-rank through -kill-point fires (0-based)")
	cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
)

// benchRecord is one PnetCDF data point in the -json output.
type benchRecord struct {
	File     string           `json:"file"`
	Block    string           `json:"block"`
	Procs    int              `json:"procs"`
	MBps     float64          `json:"mbps"`
	HDF5MBps float64          `json:"hdf5_mbps"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// benchOutput is the top-level -json document.
type benchOutput struct {
	Benchmark string        `json:"benchmark"`
	Machine   string        `json:"machine"`
	Read      bool          `json:"read"`
	Runs      []benchRecord `json:"runs"`
}

func main() {
	flag.Parse()
	defer cmdutil.StartProfiles(tool, *cpuProf, *memProf)()
	if (*killRank >= 0) != (*killPoint != "") {
		cmdutil.Usagef("flashio-bench: -kill-rank and -kill-point must be set together")
	}
	if *killPoint != "" && *ftTimeout == "" {
		cmdutil.Usagef("flashio-bench: -kill-point needs -ft-timeout (without the detector the survivors would hang by design)")
	}
	if *ftTimeout != "" {
		if err := os.Setenv(mpi.FTTimeoutEnv, *ftTimeout); err != nil {
			cmdutil.Fatal(tool, err)
		}
	}
	machine := bench.ASCIFrost()
	collect := *stats || *jsonOut != ""
	var configs []flash.Config
	switch *block {
	case "8":
		configs = []flash.Config{flash.Default8()}
	case "16":
		configs = []flash.Config{flash.Default16()}
	case "both":
		configs = []flash.Config{flash.Default8(), flash.Default16()}
	default:
		cmdutil.Usagef("flashio-bench: -block must be 8, 16 or both")
	}
	var kinds []bench.FlashFile
	if *read {
		*files = "checkpoint"
	}
	switch strings.ToLower(*files) {
	case "checkpoint":
		kinds = []bench.FlashFile{bench.FlashCheckpoint}
	case "plotfile":
		kinds = []bench.FlashFile{bench.FlashPlotfile}
	case "corners":
		kinds = []bench.FlashFile{bench.FlashCorners}
	case "all":
		kinds = []bench.FlashFile{bench.FlashCheckpoint, bench.FlashPlotfile, bench.FlashCorners}
	default:
		cmdutil.Usagef("flashio-bench: -files must be checkpoint, plotfile, corners or all")
	}
	var trace *iostat.Trace
	if *traceOut != "" {
		trace = iostat.NewTrace(iostat.DefaultTraceCap)
	}
	var spans *span.Sink
	if *spanOut != "" {
		spans = new(span.Sink)
	}
	var runsDone atomic.Int64
	reg := new(metrics.Registry)
	reg.Set("benchmark", "flashio")
	reg.Set("machine", machine.Name)
	reg.Publish("runs_completed", func() any { return runsDone.Load() })
	if trace != nil {
		reg.Publish("trace_dropped", func() any { return trace.Dropped() })
	}
	if spans != nil {
		reg.Publish("span_count", func() any { s, _ := spans.Snapshot(); return len(s) })
		reg.Publish("span_dropped", func() any { _, d := spans.Snapshot(); return d })
	}
	defer cmdutil.StartMetrics(tool, *metricsAt, reg)()
	out := benchOutput{Benchmark: "flashio", Machine: machine.Name, Read: *read}
	for _, cfg := range configs {
		if *bpp > 0 {
			cfg.BlocksPerProc = *bpp
		}
		plist := defaultProcs(cfg)
		if *procsStr != "" {
			plist = nil
			for _, s := range strings.Split(*procsStr, ",") {
				var p int
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &p); err != nil || p < 1 {
					cmdutil.Usagef("flashio-bench: bad proc count %q", s)
				}
				plist = append(plist, p)
			}
		}
		for _, kind := range kinds {
			hints := cmdutil.CollHints(*cbPart, *cbPipe)
			if *cbBuf > 0 || *cbNodes > 0 {
				if hints == nil {
					hints = mpi.NewInfo()
				}
				if *cbBuf > 0 {
					hints.Set("cb_buffer_size", strconv.FormatInt(*cbBuf, 10))
				}
				if *cbNodes > 0 {
					hints.Set("cb_nodes", strconv.Itoa(*cbNodes))
				}
			}
			fig, err := bench.RunFigure7(bench.Fig7Options{
				Machine: machine,
				Config:  cfg,
				File:    kind,
				Procs:   plist,
				Discard: *outFile == "",
				Read:    *read,
				Stats:   collect,
				Trace:   trace,
				Spans:   spans,
				Fault: bench.FaultOptions{
					Rate: *faultRate, Seed: *faultSeed,
					KillPoint: *killPoint, KillRank: *killRank, KillOccurrence: *killOcc,
				},
				Hints:    hints,
				DumpFile: *outFile,
			})
			cmdutil.Fatal(tool, err)
			bench.WriteFigure7(os.Stdout, fig)
			fmt.Println()
			for i, p := range fig.Procs {
				sum := fig.Stats[i]
				if *stats && sum != nil {
					fmt.Printf("I/O statistics: %s %s, %d procs (PnetCDF)\n",
						fig.File, fig.Block, p)
					iostat.WriteTable(os.Stdout, sum)
					fmt.Println()
				}
				rec := benchRecord{
					File:     fig.File.String(),
					Block:    fig.Block,
					Procs:    p,
					MBps:     fig.PnetCDF[i],
					HDF5MBps: fig.HDF5[i],
				}
				if sum != nil {
					rec.Counters = sum.KeyCounters()
					reg.Set("last_run_counters", sum.KeyCounters())
				}
				reg.Set("last_run", fmt.Sprintf("%s %s %d procs", fig.File, fig.Block, p))
				runsDone.Add(1)
				out.Runs = append(out.Runs, rec)
			}
		}
	}
	if trace != nil {
		f, err := os.Create(*traceOut)
		cmdutil.Fatal(tool, err)
		err = trace.WriteJSONL(f)
		cmdutil.Fatal(tool, err)
		cmdutil.Fatal(tool, f.Close())
		fmt.Printf("trace: %d events to %s (%d dropped)\n", trace.Len(), *traceOut, trace.Dropped())
	}
	if spans != nil {
		sp, dropped := spans.Snapshot()
		cmdutil.WriteSpanFile(tool, *spanOut, sp, dropped)
		fmt.Printf("spans: %d spans to %s (%d dropped)\n", len(sp), *spanOut, dropped)
	}
	if *jsonOut != "" {
		blob, err := json.MarshalIndent(out, "", "  ")
		cmdutil.Fatal(tool, err)
		cmdutil.Fatal(tool, os.WriteFile(*jsonOut, append(blob, '\n'), 0o644))
		fmt.Printf("results: %d runs to %s\n", len(out.Runs), *jsonOut)
	}
}

// defaultProcs keeps the default run within a laptop-class memory budget:
// the 8^3 blocks are cheap (8 MB/proc checkpoint), the 16^3 blocks hold
// ~9 MB of guarded data per unknown per process.
func defaultProcs(cfg flash.Config) []int {
	if cfg.NXB >= 16 {
		return []int{4, 8, 16, 32}
	}
	return []int{4, 8, 16, 32, 64}
}
