// Command ncgen compiles CDL text into a netCDF classic file, like the
// Unidata ncgen utility (classic-model subset).
//
// Usage:
//
//	ncgen -o out.nc input.cdl
//	ncgen -o out.nc -k 2 input.cdl   # CDF-2 (64-bit offsets)
package main

import (
	"flag"
	"os"

	"pnetcdf/internal/cdl"
	"pnetcdf/internal/cmdutil"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/netcdf"
)

var (
	output = flag.String("o", "", "output netCDF file (required)")
	kind   = flag.Int("k", 1, "file kind: 1=classic, 2=64-bit offset, 5=64-bit data")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 || *output == "" {
		cmdutil.Usagef("usage: ncgen -o out.nc [-k 1|2|5] input.cdl")
	}
	src, err := os.ReadFile(flag.Arg(0))
	cmdutil.Fatal("ncgen", err)
	schema, err := cdl.Parse(string(src))
	cmdutil.Fatal("ncgen", err)
	f, err := os.OpenFile(*output, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	cmdutil.Fatal("ncgen", err)
	mode := nctype.Clobber
	switch *kind {
	case 2:
		mode |= nctype.Bit64Offset
	case 5:
		mode |= nctype.Bit64Data
	}
	d, err := netcdf.Create(netcdf.OSStore{F: f}, mode)
	cmdutil.Fatal("ncgen", err)
	cmdutil.Fatal("ncgen", schema.Build(d))
	cmdutil.Fatal("ncgen", d.Close())
}
