// Command ncgen compiles CDL text into a netCDF classic file, like the
// Unidata ncgen utility (classic-model subset).
//
// Usage:
//
//	ncgen -o out.nc input.cdl
//	ncgen -o out.nc -k 2 input.cdl   # CDF-2 (64-bit offsets)
package main

import (
	"flag"
	"fmt"
	"os"

	"pnetcdf/internal/cdl"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/netcdf"
)

var (
	output = flag.String("o", "", "output netCDF file (required)")
	kind   = flag.Int("k", 1, "file kind: 1=classic, 2=64-bit offset, 5=64-bit data")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 || *output == "" {
		fmt.Fprintln(os.Stderr, "usage: ncgen -o out.nc [-k 1|2|5] input.cdl")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	schema, err := cdl.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	f, err := os.OpenFile(*output, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		fatal(err)
	}
	mode := nctype.Clobber
	switch *kind {
	case 2:
		mode |= nctype.Bit64Offset
	case 5:
		mode |= nctype.Bit64Data
	}
	d, err := netcdf.Create(netcdf.OSStore{F: f}, mode)
	if err != nil {
		fatal(err)
	}
	if err := schema.Build(d); err != nil {
		fatal(err)
	}
	if err := d.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ncgen:", err)
	os.Exit(1)
}
