// Command nccopy copies a netCDF classic file, optionally converting the
// format version and re-laying-out the data with alignment — the
// re-organization role the paper assigns to external tools like the netCDF
// Operators ("these features can all be achieved by external software").
//
// Usage:
//
//	nccopy [-k 1|2|5] [-align N] in.nc out.nc
//
// -k converts the output format version (default: keep the input's);
// -align rounds the data-section start and each fixed variable's offset up
// to N bytes (useful to match a file system stripe).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"pnetcdf/internal/cmdutil"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/netcdf"
)

var (
	kind  = flag.Int("k", 0, "output kind: 1=classic, 2=64-bit offset, 5=64-bit data (0: same as input)")
	align = flag.Int64("align", 1, "align data section and fixed variables to this many bytes")
)

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		cmdutil.Usagef("usage: nccopy [-k 1|2|5] [-align N] in.nc out.nc")
	}
	cmdutil.Fatal("nccopy", run(flag.Arg(0), flag.Arg(1)))
}

func run(inPath, outPath string) (err error) {
	in, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, in.Close()) }()
	src, err := netcdf.Open(netcdf.OSStore{F: in}, nctype.NoWrite)
	if err != nil {
		return err
	}
	mode := nctype.Clobber
	switch *kind {
	case 0:
		switch src.Header().Version {
		case 2:
			mode |= nctype.Bit64Offset
		case 5:
			mode |= nctype.Bit64Data
		}
	case 1:
	case 2:
		mode |= nctype.Bit64Offset
	case 5:
		mode |= nctype.Bit64Data
	default:
		return fmt.Errorf("bad -k %d", *kind)
	}
	outF, err := os.OpenFile(outPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	dst, err := netcdf.Create(netcdf.OSStore{F: outF}, mode,
		netcdf.WithHeaderAlign(*align))
	if err != nil {
		return err
	}
	if err := copyDataset(src, dst); err != nil {
		return err
	}
	return dst.Close()
}

func copyDataset(src, dst *netcdf.Dataset) error {
	h := src.Header()
	// Dimensions, in order.
	for _, d := range h.Dims {
		if _, err := dst.DefDim(d.Name, d.Len); err != nil {
			return err
		}
	}
	// Global attributes.
	if err := copyAttrs(src, dst, netcdf.GlobalID, netcdf.GlobalID); err != nil {
		return err
	}
	// Variables and their attributes.
	for i := range h.Vars {
		v := &h.Vars[i]
		id, err := dst.DefVar(v.Name, v.Type, v.DimIDs)
		if err != nil {
			return err
		}
		if err := copyAttrs(src, dst, i, id); err != nil {
			return err
		}
	}
	if err := dst.EndDef(); err != nil {
		return err
	}
	// Data, variable by variable, record-batched for record variables.
	for i := range h.Vars {
		if err := copyVarData(src, dst, i); err != nil {
			return fmt.Errorf("variable %q: %w", h.Vars[i].Name, err)
		}
	}
	return nil
}

func copyAttrs(src, dst *netcdf.Dataset, fromID, toID int) error {
	names, err := src.AttrNames(fromID)
	if err != nil {
		return err
	}
	for _, name := range names {
		typ, val, err := src.GetAttr(fromID, name)
		if err != nil {
			return err
		}
		if err := dst.PutAttr(toID, name, typ, val); err != nil {
			return err
		}
	}
	return nil
}

func copyVarData(src, dst *netcdf.Dataset, varid int) error {
	shape, err := src.VarShape(varid)
	if err != nil {
		return err
	}
	_, typ, _, err := src.InqVar(varid)
	if err != nil {
		return err
	}
	n := int64(1)
	for _, s := range shape {
		n *= s
	}
	if n == 0 {
		return nil
	}
	buf, err := netcdf.MakeLike(bufferFor(typ), n)
	if err != nil {
		return err
	}
	if err := src.GetVar(varid, buf); err != nil {
		return err
	}
	start := make([]int64, len(shape))
	return dst.PutVara(varid, start, shape, buf)
}

// bufferFor returns a zero-length slice of the natural Go type for t.
func bufferFor(t nctype.Type) any {
	switch t {
	case nctype.Char, nctype.UByte:
		return []uint8{}
	case nctype.Byte:
		return []int8{}
	case nctype.Short:
		return []int16{}
	case nctype.UShort:
		return []uint16{}
	case nctype.Int:
		return []int32{}
	case nctype.UInt:
		return []uint32{}
	case nctype.Float:
		return []float32{}
	case nctype.Int64:
		return []int64{}
	case nctype.UInt64:
		return []uint64{}
	default:
		return []float64{}
	}
}
