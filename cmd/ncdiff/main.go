// Command ncdiff compares two netCDF classic files structurally and (by
// default) element by element, like the nccmp utility.
//
// Usage:
//
//	ncdiff [-h] [-t tolerance] a.nc b.nc
//
// -h compares headers only; -t sets an absolute tolerance for floating
// point comparisons (default 0: exact).
//
// Exit status 0 when the files match, 1 when they differ.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"pnetcdf/internal/cdf"
	"pnetcdf/internal/cmdutil"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/netcdf"
)

var (
	headerOnly = flag.Bool("h", false, "compare headers only")
	tol        = flag.Float64("t", 0, "absolute tolerance for float comparisons")
)

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		cmdutil.Usagef("usage: ncdiff [-h] [-t tol] a.nc b.nc")
	}
	diffs, err := run(flag.Arg(0), flag.Arg(1))
	if err != nil {
		// Like diff/cmp: 1 means the files differ, 2 means trouble.
		fmt.Fprintln(os.Stderr, "ncdiff:", err)
		os.Exit(2)
	}
	if diffs == 0 {
		fmt.Println("files are identical")
		return
	}
	fmt.Printf("%d difference(s)\n", diffs)
	os.Exit(1)
}

func open(path string) (*netcdf.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return netcdf.Open(netcdf.OSStore{F: f}, nctype.NoWrite)
}

func run(pathA, pathB string) (int, error) {
	a, err := open(pathA)
	if err != nil {
		return 0, err
	}
	b, err := open(pathB)
	if err != nil {
		return 0, err
	}
	diffs := 0
	report := func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
		diffs++
	}
	ha, hb := a.Header(), b.Header()
	// Dimensions (order-insensitive by name).
	for _, d := range ha.Dims {
		j := hb.FindDim(d.Name)
		if j < 0 {
			report("dimension %q only in %s", d.Name, pathA)
			continue
		}
		if hb.Dims[j].Len != d.Len {
			report("dimension %q: %d vs %d", d.Name, d.Len, hb.Dims[j].Len)
		}
	}
	for _, d := range hb.Dims {
		if ha.FindDim(d.Name) < 0 {
			report("dimension %q only in %s", d.Name, pathB)
		}
	}
	if ha.NumRecs != hb.NumRecs {
		report("record counts differ: %d vs %d", ha.NumRecs, hb.NumRecs)
	}
	// Attributes.
	diffs += diffAttrs("global", ha.GAttrs, hb.GAttrs)
	// Variables.
	for i := range ha.Vars {
		va := &ha.Vars[i]
		j := hb.FindVar(va.Name)
		if j < 0 {
			report("variable %q only in %s", va.Name, pathA)
			continue
		}
		vb := &hb.Vars[j]
		if va.Type != vb.Type {
			report("variable %q: type %v vs %v", va.Name, va.Type, vb.Type)
			continue
		}
		if len(va.DimIDs) != len(vb.DimIDs) {
			report("variable %q: rank %d vs %d", va.Name, len(va.DimIDs), len(vb.DimIDs))
			continue
		}
		sameShape := true
		for k := range va.DimIDs {
			if ha.Dims[va.DimIDs[k]].Name != hb.Dims[vb.DimIDs[k]].Name {
				report("variable %q: dim %d is %q vs %q", va.Name, k,
					ha.Dims[va.DimIDs[k]].Name, hb.Dims[vb.DimIDs[k]].Name)
				sameShape = false
			}
		}
		diffs += diffAttrs(va.Name, va.Attrs, vb.Attrs)
		if *headerOnly || !sameShape {
			continue
		}
		n, err := diffData(a, b, i, j, va)
		if err != nil {
			return diffs, err
		}
		diffs += n
	}
	for j := range hb.Vars {
		if ha.FindVar(hb.Vars[j].Name) < 0 {
			report("variable %q only in %s", hb.Vars[j].Name, pathB)
		}
	}
	return diffs, nil
}

func diffAttrs(owner string, as, bs []cdf.Attr) int {
	diffs := 0
	for _, a := range as {
		j := cdf.FindAttr(bs, a.Name)
		if j < 0 {
			fmt.Printf("%s attribute %q missing in second file\n", owner, a.Name)
			diffs++
			continue
		}
		b := bs[j]
		if a.Type != b.Type || a.Nelems != b.Nelems || string(a.Values) != string(b.Values) {
			fmt.Printf("%s attribute %q differs\n", owner, a.Name)
			diffs++
		}
	}
	for _, b := range bs {
		if cdf.FindAttr(as, b.Name) < 0 {
			fmt.Printf("%s attribute %q missing in first file\n", owner, b.Name)
			diffs++
		}
	}
	return diffs
}

func diffData(a, b *netcdf.Dataset, ia, ib int, v *cdf.Var) (int, error) {
	shape, err := a.VarShape(ia)
	if err != nil {
		return 0, err
	}
	n := int64(1)
	for _, s := range shape {
		n *= s
	}
	if n == 0 {
		return 0, nil
	}
	da := make([]float64, n)
	db := make([]float64, n)
	if v.Type == nctype.Char {
		ba := make([]byte, n)
		bb := make([]byte, n)
		if err := a.GetVar(ia, ba); err != nil {
			return 0, err
		}
		if err := b.GetVar(ib, bb); err != nil {
			return 0, err
		}
		for i := range ba {
			if ba[i] != bb[i] {
				fmt.Printf("variable %q: first text difference at element %d\n", v.Name, i)
				return 1, nil
			}
		}
		return 0, nil
	}
	if err := a.GetVar(ia, da); err != nil {
		return 0, err
	}
	if err := b.GetVar(ib, db); err != nil {
		return 0, err
	}
	count := 0
	first := int64(-1)
	for i := range da {
		if math.Abs(da[i]-db[i]) > *tol && !(math.IsNaN(da[i]) && math.IsNaN(db[i])) {
			if first < 0 {
				first = int64(i)
			}
			count++
		}
	}
	if count > 0 {
		fmt.Printf("variable %q: %d element(s) differ (first at %d: %v vs %v)\n",
			v.Name, count, first, da[first], db[first])
		return 1, nil
	}
	return 0, nil
}
