// Command h5dump prints the structure (and optionally data) of an h5sim
// hierarchical container living in a simulated file system image produced
// by `flashio-bench -keep` style runs, or — its main use — demonstrates the
// comparator's self-describing format: it rebuilds a small container and
// walks it.
//
// Because h5sim files live inside the simulated parallel file system (they
// are the HDF5-side comparator, not an on-disk interchange format), this
// tool synthesizes a demonstration container when run without arguments and
// dumps it, exercising the full metadata path: superblock, group walks,
// object headers, attributes, hyperslab reads.
//
// Usage:
//
//	h5dump            # build + dump the demo container
package main

import (
	"errors"
	"fmt"
	"strings"

	"pnetcdf/internal/cmdutil"
	"pnetcdf/internal/h5sim"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/pfs"
)

func main() {
	fsys := pfs.New(pfs.DefaultConfig())
	err := mpi.Run(1, mpi.DefaultNet(), func(c *mpi.Comm) error {
		if err := build(c, fsys); err != nil {
			return err
		}
		f, err := h5sim.OpenFile(c, fsys, "demo.h5", true, nil)
		if err != nil {
			return err
		}
		fmt.Println("HDF5-sim container \"demo.h5\" {")
		if err := walk(f, "/", 0); err != nil {
			return errors.Join(err, f.Close())
		}
		fmt.Println("}")
		return f.Close()
	})
	cmdutil.Fatal("h5dump", err)
}

func build(c *mpi.Comm, fsys *pfs.FS) error {
	f, err := h5sim.CreateFile(c, fsys, "demo.h5", nil)
	if err != nil {
		return err
	}
	if err := f.CreateGroup("/simulation"); err != nil {
		return err
	}
	ds, err := f.CreateDataset("/simulation/density", nctype.Double, []int64{2, 3})
	if err != nil {
		return err
	}
	if err := ds.PutAttr("units", nctype.Char, "g/cm3"); err != nil {
		return err
	}
	if err := ds.WriteAll(h5sim.Select{Start: []int64{0, 0}, Count: []int64{2, 3}},
		nil, []float64{1.1, 1.2, 1.3, 2.1, 2.2, 2.3}); err != nil {
		return err
	}
	if err := ds.Close(); err != nil {
		return err
	}
	small, err := f.CreateDataset("/step", nctype.Int, []int64{4})
	if err != nil {
		return err
	}
	if err := small.WriteAll(h5sim.Select{Start: []int64{0}, Count: []int64{4}},
		nil, []int32{10, 20, 30, 40}); err != nil {
		return err
	}
	if err := small.Close(); err != nil {
		return err
	}
	return f.Close()
}

func walk(f *h5sim.File, path string, depth int) error {
	names, err := f.List(path)
	if err != nil {
		return err
	}
	indent := strings.Repeat("   ", depth+1)
	for _, name := range names {
		child := path
		if !strings.HasSuffix(child, "/") {
			child += "/"
		}
		child += name
		if f.IsGroup(child) {
			fmt.Printf("%sGROUP %q {\n", indent, name)
			if err := walk(f, child, depth+1); err != nil {
				return err
			}
			fmt.Printf("%s}\n", indent)
			continue
		}
		ds, err := f.OpenDataset(child)
		if err != nil {
			return err
		}
		fmt.Printf("%sDATASET %q { %s %v }\n", indent, name, ds.Type(), ds.Dims())
		n := int64(1)
		for _, d := range ds.Dims() {
			n *= d
		}
		if n <= 16 {
			sel := h5sim.Select{Start: make([]int64, len(ds.Dims())), Count: ds.Dims()}
			switch ds.Type() {
			case nctype.Double:
				buf := make([]float64, n)
				if err := ds.ReadAll(sel, nil, buf); err != nil {
					return errors.Join(err, ds.Close())
				}
				fmt.Printf("%s   DATA %v\n", indent, buf)
			case nctype.Int:
				buf := make([]int32, n)
				if err := ds.ReadAll(sel, nil, buf); err != nil {
					return errors.Join(err, ds.Close())
				}
				fmt.Printf("%s   DATA %v\n", indent, buf)
			}
		}
		if _, v, err := ds.GetAttr("units"); err == nil {
			fmt.Printf("%s   ATTRIBUTE units = %q\n", indent, string(v.([]byte)))
		}
		if err := ds.Close(); err != nil {
			return err
		}
	}
	return nil
}
