// Command pnetcdf-bench regenerates the paper's Figure 6: read and write
// bandwidth of a 3-D array through serial netCDF (one process) and PnetCDF
// (collective I/O) over the seven partition patterns of Figure 5, on a
// simulated SDSC Blue Horizon-class system (12 GPFS I/O nodes).
//
// Usage:
//
//	pnetcdf-bench                 # both 64 MB charts (write + read)
//	pnetcdf-bench -size 1gb      # the 1 GB charts (procs up to 32)
//	pnetcdf-bench -op write      # only the write chart
//	pnetcdf-bench -ablate        # the design-choice ablations
//	pnetcdf-bench -stats         # per-layer I/O statistics per run
//	pnetcdf-bench -trace t.jsonl # dump the event trace (see nctrace)
//	pnetcdf-bench -span-out s.json       # Chrome-trace spans of the last run
//	pnetcdf-bench -metrics-addr :9090    # live JSON metrics during the sweep
//	pnetcdf-bench -fault-rate 0.01 -stats  # inject transient faults
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync/atomic"

	"pnetcdf/internal/bench"
	"pnetcdf/internal/cmdutil"
	"pnetcdf/internal/iostat"
	"pnetcdf/internal/metrics"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/span"
)

const tool = "pnetcdf-bench"

var (
	size      = flag.String("size", "64mb", "dataset size: 64mb or 1gb")
	op        = flag.String("op", "both", "operation: write, read or both")
	procs     = flag.String("procs", "", "comma-separated process counts (default per paper)")
	ablate    = flag.Bool("ablate", false, "run the design-choice ablations instead")
	stats     = flag.Bool("stats", false, "print per-layer I/O statistics after each run")
	traceOut  = flag.String("trace", "", "write a JSON-lines event trace to this file")
	spanOut   = flag.String("span-out", "", "write the last run's spans as Chrome trace-event JSON (see nctrace)")
	metricsAt = flag.String("metrics-addr", "", "serve live JSON metrics on this address for the duration of the sweep")
	faultRate = flag.Float64("fault-rate", 0, "transient-fault probability per 64 KiB transferred (0 disables injection)")
	cbPart    = flag.String("cb-partition", "", "two-phase file-domain partitioning: even or balanced (default: library default)")
	cbPipe    = flag.String("cb-pipeline", "", "pipelined two-phase rounds: enable or disable (default: library default)")
	faultSeed = flag.Uint64("fault-seed", 1, "seed for the deterministic fault schedule")
	ftTimeout = flag.String("ft-timeout", "", "deadline for the rank-failure detector (e.g. 200ms); sets "+mpi.FTTimeoutEnv+" for the runs (empty keeps detection off)")
	cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
)

func main() {
	flag.Parse()
	defer cmdutil.StartProfiles(tool, *cpuProf, *memProf)()
	if *ftTimeout != "" {
		if err := os.Setenv(mpi.FTTimeoutEnv, *ftTimeout); err != nil {
			cmdutil.Fatal(tool, err)
		}
	}
	machine := bench.SDSCBlueHorizon()
	if *ablate {
		runAblations(machine)
		return
	}
	var dims [3]int64
	var plist []int
	discard := false
	switch strings.ToLower(*size) {
	case "64mb":
		dims = bench.Dims64MB
		plist = []int{1, 2, 4, 8, 16}
	case "1gb":
		dims = bench.Dims1GB
		plist = []int{1, 2, 4, 8, 16, 32}
		discard = true // timing-only storage for the large runs
	default:
		cmdutil.Usagef("pnetcdf-bench: -size must be 64mb or 1gb")
	}
	if *procs != "" {
		plist = nil
		for _, s := range strings.Split(*procs, ",") {
			var p int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &p); err != nil || p < 1 {
				cmdutil.Usagef("pnetcdf-bench: bad proc count %q", s)
			}
			plist = append(plist, p)
		}
	}
	ops := []bool{false, true} // write, read
	switch strings.ToLower(*op) {
	case "write":
		ops = []bool{false}
	case "read":
		ops = []bool{true}
	case "both":
	default:
		cmdutil.Usagef("pnetcdf-bench: -op must be write, read or both")
	}
	var trace *iostat.Trace
	if *traceOut != "" {
		trace = iostat.NewTrace(iostat.DefaultTraceCap)
	}
	var spans *span.Sink
	if *spanOut != "" {
		spans = new(span.Sink)
	}
	var runsDone atomic.Int64
	reg := new(metrics.Registry)
	reg.Set("benchmark", "pnetcdf")
	reg.Set("machine", machine.Name)
	reg.Publish("charts_completed", func() any { return runsDone.Load() })
	if trace != nil {
		reg.Publish("trace_dropped", func() any { return trace.Dropped() })
	}
	if spans != nil {
		reg.Publish("span_count", func() any { s, _ := spans.Snapshot(); return len(s) })
		reg.Publish("span_dropped", func() any { _, d := spans.Snapshot(); return d })
	}
	defer cmdutil.StartMetrics(tool, *metricsAt, reg)()
	for _, read := range ops {
		fig, err := bench.RunFigure6(bench.Fig6Options{
			Machine: machine,
			Dims:    dims,
			Procs:   plist,
			Read:    read,
			Discard: discard,
			Stats:   *stats,
			Trace:   trace,
			Spans:   spans,
			Fault:   bench.FaultOptions{Rate: *faultRate, Seed: *faultSeed},
			Hints:   cmdutil.CollHints(*cbPart, *cbPipe),
		})
		cmdutil.Fatal(tool, err)
		reg.Set("last_chart", fig.Op)
		runsDone.Add(1)
		bench.WriteFigure6(os.Stdout, fig)
		fmt.Println()
		if *stats {
			for _, part := range bench.AllPartitions {
				sums := fig.Stats[part]
				for i, p := range fig.Procs {
					if i >= len(sums) || sums[i] == nil {
						continue
					}
					fmt.Printf("I/O statistics: %s partition %v, %d procs\n",
						fig.Op, part, p)
					iostat.WriteTable(os.Stdout, sums[i])
					fmt.Println()
				}
			}
		}
	}
	if trace != nil {
		f, err := os.Create(*traceOut)
		cmdutil.Fatal(tool, err)
		err = trace.WriteJSONL(f)
		cmdutil.Fatal(tool, err)
		cmdutil.Fatal(tool, f.Close())
		fmt.Printf("trace: %d events to %s (%d dropped)\n", trace.Len(), *traceOut, trace.Dropped())
	}
	if spans != nil {
		sp, dropped := spans.Snapshot()
		cmdutil.WriteSpanFile(tool, *spanOut, sp, dropped)
		fmt.Printf("spans: %d spans to %s (%d dropped)\n", len(sp), *spanOut, dropped)
	}
}

func runAblations(m bench.MachineSpec) {
	fmt.Println("Design-choice ablations (SDSC-class machine, virtual time)")
	type runner func() (bench.AblationResult, error)
	for _, r := range []runner{
		func() (bench.AblationResult, error) { return bench.AblationTwoPhase(m, [3]int64{128, 128, 128}, 8) },
		func() (bench.AblationResult, error) { return bench.AblationSieving(m, [3]int64{64, 64, 128}, 4) },
		func() (bench.AblationResult, error) { return bench.AblationHeaderStrategy(m, 500, 16) },
		func() (bench.AblationResult, error) { return bench.AblationRecordBatch(m, 24, 4, 8, 64<<10) },
		func() (bench.AblationResult, error) { return bench.AblationLayout(m, 8) },
		func() (bench.AblationResult, error) { return bench.AblationPrefetch(m, 8, 200) },
		func() (bench.AblationResult, error) { return bench.AblationVarAlign(m, 16, 4) },
	} {
		res, err := r()
		cmdutil.Fatal(tool, err)
		fmt.Println(" ", res)
	}
}
