// Command ncdump prints the CDL text representation of a netCDF classic
// file (CDF-1/2/5), like the Unidata ncdump utility. It operates on real
// files on the local filesystem, which this module's serial library writes
// natively.
//
// Usage:
//
//	ncdump [-h] file.nc
//
// -h prints only the header (no data section).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pnetcdf/internal/cdf"
	"pnetcdf/internal/cmdutil"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/netcdf"
)

var headerOnly = flag.Bool("h", false, "show header information only, no data")

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		cmdutil.Usagef("usage: ncdump [-h] file.nc")
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	cmdutil.Fatal("ncdump", err)
	d, err := netcdf.Open(netcdf.OSStore{F: f}, nctype.NoWrite)
	cmdutil.Fatal("ncdump", err)
	err = dump(os.Stdout, d, strings.TrimSuffix(filepath.Base(path), ".nc"), !*headerOnly)
	cmdutil.Fatal("ncdump", err)
	cmdutil.Fatal("ncdump", f.Close())
}

func dump(w *os.File, d *netcdf.Dataset, name string, withData bool) error {
	h := d.Header()
	fmt.Fprintf(w, "netcdf %s {\n", name)
	if len(h.Dims) > 0 {
		fmt.Fprintln(w, "dimensions:")
		for _, dim := range h.Dims {
			if dim.IsUnlimited() {
				fmt.Fprintf(w, "\t%s = UNLIMITED ; // (%d currently)\n", dim.Name, h.NumRecs)
			} else {
				fmt.Fprintf(w, "\t%s = %d ;\n", dim.Name, dim.Len)
			}
		}
	}
	if len(h.Vars) > 0 {
		fmt.Fprintln(w, "variables:")
		for i := range h.Vars {
			v := &h.Vars[i]
			var dims []string
			for _, id := range v.DimIDs {
				dims = append(dims, h.Dims[id].Name)
			}
			decl := v.Name
			if len(dims) > 0 {
				decl += "(" + strings.Join(dims, ", ") + ")"
			}
			fmt.Fprintf(w, "\t%s %s ;\n", v.Type, decl)
			for _, a := range v.Attrs {
				fmt.Fprintf(w, "\t\t%s:%s = %s ;\n", v.Name, a.Name, attrCDL(a))
			}
		}
	}
	if len(h.GAttrs) > 0 {
		fmt.Fprintln(w, "\n// global attributes:")
		for _, a := range h.GAttrs {
			fmt.Fprintf(w, "\t\t:%s = %s ;\n", a.Name, attrCDL(a))
		}
	}
	if withData && len(h.Vars) > 0 {
		fmt.Fprintln(w, "data:")
		for i := range h.Vars {
			if err := dumpVarData(w, d, i); err != nil {
				return err
			}
		}
	}
	fmt.Fprintln(w, "}")
	return nil
}

func attrCDL(a cdf.Attr) string {
	val, err := cdf.DecodeAttrValue(a)
	if err != nil {
		return "?"
	}
	if a.Type == nctype.Char {
		return fmt.Sprintf("%q", string(val.([]byte)))
	}
	return joinNumbers(val, a.Type)
}

func joinNumbers(val any, t nctype.Type) string {
	var parts []string
	add := func(s string) { parts = append(parts, s) }
	switch vs := val.(type) {
	case []int8:
		for _, v := range vs {
			add(fmt.Sprintf("%db", v))
		}
	case []int16:
		for _, v := range vs {
			add(fmt.Sprintf("%ds", v))
		}
	case []int32:
		for _, v := range vs {
			add(fmt.Sprintf("%d", v))
		}
	case []int64:
		for _, v := range vs {
			add(fmt.Sprintf("%dL", v))
		}
	case []uint8:
		for _, v := range vs {
			add(fmt.Sprintf("%dub", v))
		}
	case []uint16:
		for _, v := range vs {
			add(fmt.Sprintf("%dus", v))
		}
	case []uint32:
		for _, v := range vs {
			add(fmt.Sprintf("%du", v))
		}
	case []uint64:
		for _, v := range vs {
			add(fmt.Sprintf("%dull", v))
		}
	case []float32:
		for _, v := range vs {
			add(fmt.Sprintf("%gf", v))
		}
	case []float64:
		for _, v := range vs {
			add(fmt.Sprintf("%g", v))
		}
	}
	return strings.Join(parts, ", ")
}

func dumpVarData(w *os.File, d *netcdf.Dataset, varid int) error {
	h := d.Header()
	v := &h.Vars[varid]
	shape := h.VarShape(v)
	n := int64(1)
	for _, s := range shape {
		n *= s
	}
	if n == 0 {
		fmt.Fprintf(w, " %s = ;\n", v.Name)
		return nil
	}
	const maxShown = 4096
	shown := n
	truncated := false
	if shown > maxShown {
		shown = maxShown
		truncated = true
	}
	var buf any
	switch v.Type {
	case nctype.Char:
		buf = make([]byte, n)
	case nctype.Byte:
		buf = make([]int8, n)
	case nctype.Short:
		buf = make([]int16, n)
	case nctype.Int:
		buf = make([]int32, n)
	case nctype.Float:
		buf = make([]float32, n)
	case nctype.Double:
		buf = make([]float64, n)
	case nctype.UByte:
		buf = make([]uint8, n)
	case nctype.UShort:
		buf = make([]uint16, n)
	case nctype.UInt:
		buf = make([]uint32, n)
	case nctype.Int64:
		buf = make([]int64, n)
	case nctype.UInt64:
		buf = make([]uint64, n)
	}
	if err := d.GetVar(varid, buf); err != nil {
		return err
	}
	fmt.Fprintf(w, " %s = ", v.Name)
	if v.Type == nctype.Char {
		fmt.Fprintf(w, "%q", string(truncateBytes(buf.([]byte), int(shown))))
	} else {
		fmt.Fprint(w, joinNumbersN(buf, int(shown)))
	}
	if truncated {
		fmt.Fprintf(w, ", ... (%d values total)", n)
	}
	fmt.Fprintln(w, " ;")
	return nil
}

func truncateBytes(b []byte, n int) []byte {
	if len(b) > n {
		return b[:n]
	}
	return b
}

func joinNumbersN(val any, n int) string {
	var parts []string
	add := func(s string) {
		if len(parts) < n {
			parts = append(parts, s)
		}
	}
	switch vs := val.(type) {
	case []int8:
		for _, v := range vs {
			add(fmt.Sprintf("%d", v))
		}
	case []int16:
		for _, v := range vs {
			add(fmt.Sprintf("%d", v))
		}
	case []int32:
		for _, v := range vs {
			add(fmt.Sprintf("%d", v))
		}
	case []int64:
		for _, v := range vs {
			add(fmt.Sprintf("%d", v))
		}
	case []uint8:
		for _, v := range vs {
			add(fmt.Sprintf("%d", v))
		}
	case []uint16:
		for _, v := range vs {
			add(fmt.Sprintf("%d", v))
		}
	case []uint32:
		for _, v := range vs {
			add(fmt.Sprintf("%d", v))
		}
	case []uint64:
		for _, v := range vs {
			add(fmt.Sprintf("%d", v))
		}
	case []float32:
		for _, v := range vs {
			add(fmt.Sprintf("%g", v))
		}
	case []float64:
		for _, v := range vs {
			add(fmt.Sprintf("%g", v))
		}
	}
	return strings.Join(parts, ", ")
}
