// nclint runs the project's static-analysis suite (internal/analysis) over
// the module: collective-call symmetry, pfs lock ordering, bufpool Get/Put
// discipline, pfs cost-model accounting, unchecked I/O teardown errors, and
// AsyncOp Wait pairing. It exits 1 when any diagnostic is reported, so
// verify.sh can gate on it.
//
// By default the suite runs in interprocedural mode: a module-wide call
// graph with per-function summaries (DESIGN.md §14) lets the checkers see
// collectives, pooled-buffer escapes, lock acquisitions and Wait calls
// through helper functions, including across packages. -interp=false falls
// back to the older per-function analysis.
//
// Usage:
//
//	nclint [-c checker,checker] [-json] [-interp=false] [-list] [packages]
//
// Package patterns are accepted for interface-compatibility with go vet
// (`nclint ./...`) but the tool always analyzes the whole module containing
// the working directory: the invariants it checks are cross-package ones.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pnetcdf/internal/analysis"
	"pnetcdf/internal/cmdutil"
)

// jsonDiag is the machine-readable diagnostic shape emitted by -json: one
// object per line-ordered finding, the same fields the text form prints.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Checker string `json:"checker"`
	Message string `json:"message"`
}

func main() {
	const tool = "nclint"
	var (
		checkers = flag.String("c", "", "comma-separated checker names to run (default: all)")
		list     = flag.Bool("list", false, "list available checkers and exit")
		jsonOut  = flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
		interp   = flag.Bool("interp", true, "interprocedural mode: module call graph + function summaries")
	)
	flag.Var(aliasValue{checkers}, "checker", "alias of -c")
	flag.Parse()

	if *list {
		for _, c := range analysis.All() {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return
	}

	suite, err := analysis.ByName(*checkers)
	if err != nil {
		cmdutil.Usagef("%s: %v", tool, err)
	}

	wd, err := os.Getwd()
	cmdutil.Fatal(tool, err)
	root, err := analysis.FindModuleRoot(wd)
	cmdutil.Fatal(tool, err)
	loader, err := analysis.NewLoader(root)
	cmdutil.Fatal(tool, err)
	pkgs, err := loader.LoadModule()
	cmdutil.Fatal(tool, err)

	var diags []analysis.Diagnostic
	if *interp {
		diags = analysis.RunCheckersInterp(pkgs, suite)
	} else {
		diags = analysis.RunCheckers(pkgs, suite)
	}

	rel := func(file string) string {
		if r, err := filepath.Rel(wd, file); err == nil && len(r) < len(file) {
			return r
		}
		return file
	}
	if *jsonOut {
		out := []jsonDiag{}
		for _, d := range diags {
			out = append(out, jsonDiag{File: rel(d.Pos.Filename), Line: d.Pos.Line, Checker: d.Checker, Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			cmdutil.Fatal(tool, err)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d: [%s] %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Checker, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "%s: %d diagnostic(s)\n", tool, len(diags))
		os.Exit(1)
	}
}

// aliasValue makes a second flag name write through to an existing one.
type aliasValue struct{ s *string }

func (a aliasValue) String() string {
	if a.s == nil {
		return ""
	}
	return *a.s
}
func (a aliasValue) Set(v string) error { *a.s = v; return nil }
