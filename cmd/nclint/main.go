// nclint runs the project's static-analysis suite (internal/analysis) over
// the module: collective-call symmetry, pfs lock ordering, bufpool Get/Put
// discipline, pfs cost-model accounting, and unchecked I/O teardown errors.
// It exits 1 when any diagnostic is reported, so verify.sh can gate on it.
//
// Usage:
//
//	nclint [-c checker,checker] [-list] [packages]
//
// Package patterns are accepted for interface-compatibility with go vet
// (`nclint ./...`) but the tool always analyzes the whole module containing
// the working directory: the invariants it checks are cross-package ones.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pnetcdf/internal/analysis"
	"pnetcdf/internal/cmdutil"
)

func main() {
	const tool = "nclint"
	var (
		checkers = flag.String("c", "", "comma-separated checker names to run (default: all)")
		list     = flag.Bool("list", false, "list available checkers and exit")
	)
	flag.Parse()

	if *list {
		for _, c := range analysis.All() {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return
	}

	suite, err := analysis.ByName(*checkers)
	if err != nil {
		cmdutil.Usagef("%s: %v", tool, err)
	}

	wd, err := os.Getwd()
	cmdutil.Fatal(tool, err)
	root, err := analysis.FindModuleRoot(wd)
	cmdutil.Fatal(tool, err)
	loader, err := analysis.NewLoader(root)
	cmdutil.Fatal(tool, err)
	pkgs, err := loader.LoadModule()
	cmdutil.Fatal(tool, err)

	diags := analysis.RunCheckers(pkgs, suite)
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(wd, file); err == nil && len(rel) < len(file) {
			file = rel
		}
		fmt.Printf("%s:%d: [%s] %s\n", file, d.Pos.Line, d.Checker, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "%s: %d diagnostic(s)\n", tool, len(diags))
		os.Exit(1)
	}
}
