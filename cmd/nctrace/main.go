// Command nctrace inspects the two trace artifacts the benchmarks emit.
//
// Given a JSON-lines I/O event trace (the -trace flag, see internal/iostat)
// it prints per-layer operation counts, a request-size histogram, the
// per-rank timeline, and — given the file system geometry — the per-server
// load split that explains flattening bandwidth curves.
//
// Given a Chrome trace-event span file (the -span-out flag, see
// internal/span; the same file loads in Perfetto), the subcommands analyze
// the collective pipeline:
//
//	nctrace timeline spans.json    # per-rank span tree
//	nctrace critical spans.json    # which rank+phase bounded each round
//	nctrace imbalance spans.json   # per-phase rank load spread
//
// Usage:
//
//	nctrace trace.jsonl                      # event-trace summary
//	nctrace -servers 12 -stripe 262144 t.jsonl   # add per-server load
//	nctrace -layer pfs t.jsonl              # restrict to one layer
//	nctrace -rank 3 timeline spans.json     # one rank's span tree
//	nctrace -buckets 8 imbalance spans.json # histogram resolution
package main

import (
	"flag"
	"fmt"
	"math"
	"math/bits"
	"os"
	"sort"

	"pnetcdf/internal/cmdutil"
	"pnetcdf/internal/iostat"
	"pnetcdf/internal/span"
)

const tool = "nctrace"

var (
	servers = flag.Int("servers", 0, "I/O server count for per-server load (0 = skip)")
	stripe  = flag.Int64("stripe", 256<<10, "stripe size in bytes for per-server load")
	layer   = flag.String("layer", "", "restrict the summary to one layer (pfs, mpiio, pnetcdf)")
	rank    = flag.Int("rank", -1, "timeline: restrict to one rank (-1 = all)")
	buckets = flag.Int("buckets", 6, "imbalance: histogram bucket count")
)

const usage = "usage: nctrace [flags] trace.jsonl\n" +
	"       nctrace [flags] {timeline|critical|imbalance} spans.json"

func main() {
	flag.Parse()
	if *stripe < 1 {
		cmdutil.Usagef("nctrace: -stripe must be positive")
	}
	args := flag.Args()
	if len(args) == 2 {
		switch args[0] {
		case "timeline", "critical", "imbalance":
			spans, dropped := readSpans(args[1])
			warnSpanDropped(dropped)
			switch args[0] {
			case "timeline":
				spanTimeline(spans, *rank)
			case "critical":
				spanCritical(spans)
			case "imbalance":
				spanImbalance(spans, *buckets)
			}
			return
		}
	}
	if len(args) != 1 {
		cmdutil.Usagef(usage)
	}
	f, err := os.Open(args[0])
	cmdutil.Fatal(tool, err)
	events, err := iostat.ReadJSONL(f)
	cmdutil.Fatal(tool, err)
	cmdutil.Fatal(tool, f.Close())
	events, dropped := iostat.SplitMeta(events)
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "%s: WARNING: the trace ring overwrote %d events — this trace is INCOMPLETE\n", tool, dropped)
	}
	if *layer != "" {
		kept := events[:0]
		for _, e := range events {
			if e.Layer == *layer {
				kept = append(kept, e)
			}
		}
		events = kept
	}
	if len(events) == 0 {
		fmt.Println("no events")
		return
	}
	fmt.Printf("%d events\n\n", len(events))
	opTable(events)
	sizeHistogram(events)
	rankTimeline(events)
	if *servers > 0 {
		serverLoad(events, *servers, *stripe)
	}
}

// readSpans loads a Chrome trace-event span file (-span-out output).
func readSpans(path string) ([]span.Span, int64) {
	f, err := os.Open(path)
	cmdutil.Fatal(tool, err)
	spans, dropped, err := span.ReadChromeTrace(f)
	cmdutil.Fatal(tool, err)
	cmdutil.Fatal(tool, f.Close())
	return spans, dropped
}

func warnSpanDropped(dropped int64) {
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "%s: WARNING: the span recorder dropped %d spans — this trace is INCOMPLETE; raise the span capacity or sample\n", tool, dropped)
	}
}

// spanTimeline prints each rank's span tree in start order, indented by
// nesting depth — the textual form of what Perfetto draws.
func spanTimeline(spans []span.Span, only int) {
	if len(spans) == 0 {
		fmt.Println("no spans")
		return
	}
	byRank := map[int][]span.Span{}
	for _, s := range spans {
		byRank[s.Rank] = append(byRank[s.Rank], s)
	}
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		if only >= 0 && r != only {
			continue
		}
		rs := byRank[r]
		depth := map[int64]int{}
		byID := map[int64]span.Span{}
		for _, s := range rs {
			byID[s.ID] = s
		}
		var depthOf func(id int64) int
		depthOf = func(id int64) int {
			if d, ok := depth[id]; ok {
				return d
			}
			s := byID[id]
			d := 0
			if s.Parent != 0 {
				if _, ok := byID[s.Parent]; ok {
					d = depthOf(s.Parent) + 1
				}
			}
			depth[id] = d
			return d
		}
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].Start != rs[j].Start {
				return rs[i].Start < rs[j].Start
			}
			return rs[i].ID < rs[j].ID
		})
		fmt.Printf("rank %d (%d spans)\n", r, len(rs))
		for _, s := range rs {
			pad := ""
			for i := 0; i < depthOf(s.ID); i++ {
				pad += "  "
			}
			extra := ""
			if s.Round >= 0 {
				extra += fmt.Sprintf(" round=%d", s.Round)
			}
			if s.Bytes > 0 {
				extra += fmt.Sprintf(" bytes=%d", s.Bytes)
			}
			fmt.Printf("  %12.6f %10.6f  %s%s%s\n", s.Start, s.Dur(), pad, s.Phase, extra)
		}
		fmt.Println()
	}
}

// spanCritical prints the per-round critical path: which rank, doing what,
// set the pace of each two-phase round.
func spanCritical(spans []span.Span) {
	rounds := span.CriticalPath(spans)
	if len(rounds) == 0 {
		fmt.Println("no collective rounds in trace")
		return
	}
	fmt.Printf("critical path (%d rounds)\n", len(rounds))
	fmt.Printf("  %4s %5s   %-10s %4s %12s %12s %8s\n",
		"coll", "round", "phase", "rank", "work(s)", "mean(s)", "spread")
	for _, rc := range rounds {
		fmt.Printf("  %4d %5d   %-10s %4d %12.6f %12.6f %7.2fx\n",
			rc.Coll, rc.Round, rc.Phase, rc.Rank, rc.Work, rc.Mean, rc.Spread())
	}
	fmt.Println()
	counts := span.BoundCounts(rounds)
	ranks := make([]int, 0, len(counts))
	for r := range counts {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	fmt.Println("rounds bounded per rank (the straggler census)")
	for _, r := range ranks {
		fmt.Printf("  rank %3d  %4d/%d %s\n", r, counts[r], len(rounds), barString(40*counts[r]/len(rounds)))
	}
}

// spanImbalance prints per-phase rank load: who spent how long in each
// phase, the max/mean imbalance factor, and a load histogram.
func spanImbalance(spans []span.Span, nbuckets int) {
	if nbuckets < 1 {
		nbuckets = 1
	}
	loads := span.AllLoads(spans)
	if len(loads) == 0 {
		fmt.Println("no spans")
		return
	}
	fmt.Println("per-phase rank load (seconds in phase, most imbalanced first)")
	for _, l := range loads {
		fmt.Printf("\n  %-12s calls=%d bytes=%d\n", l.Phase, l.Calls, l.Bytes)
		fmt.Printf("    min=%.6f mean=%.6f max=%.6f (rank %d)  imbalance=%.3fx",
			l.Min, l.Mean, l.Max, l.MaxRank, l.Imbalance())
		if bi := l.ByteImbalance(); bi > 0 {
			fmt.Printf("  byte-imbalance=%.3fx", bi)
		}
		fmt.Println()
		counts, labels := l.Histogram(nbuckets)
		maxC := 0
		for _, c := range counts {
			if c > maxC {
				maxC = c
			}
		}
		if maxC == 0 {
			continue
		}
		for i, c := range counts {
			fmt.Printf("    %-24s %4d %s\n", labels[i], c, barString(30*c/maxC))
		}
	}
	if pa := span.PlannedVsActual(spans); len(pa) > 0 {
		fmt.Println("\nbalanced partition: planned vs actual aggregator bytes")
		fmt.Printf("  %6s %14s %14s %8s\n", "rank", "planned", "actual", "ratio")
		for _, p := range pa {
			ratio := "-"
			if p.Planned > 0 {
				ratio = fmt.Sprintf("%.3f", float64(p.Actual)/float64(p.Planned))
			}
			fmt.Printf("  %6d %14d %14d %8s\n", p.Rank, p.Planned, p.Actual, ratio)
		}
	}
}

// opTable prints per (layer, op) counts, bytes and extent totals.
func opTable(events []iostat.Event) {
	type key struct{ layer, op string }
	type agg struct {
		calls, bytes, extents int64
		time                  float64
	}
	m := map[key]*agg{}
	for _, e := range events {
		k := key{e.Layer, e.Op}
		a := m[k]
		if a == nil {
			a = &agg{}
			m[k] = a
		}
		a.calls++
		a.bytes += e.Len
		a.extents += int64(e.Extents)
		a.time += e.End - e.Start
	}
	keys := make([]key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].layer != keys[j].layer {
			return keys[i].layer < keys[j].layer
		}
		return keys[i].op < keys[j].op
	})
	fmt.Printf("%-8s %-12s %8s %14s %12s %10s %12s\n",
		"layer", "op", "calls", "bytes", "avg-size", "extents", "time(s)")
	for _, k := range keys {
		a := m[k]
		avg := int64(0)
		if a.calls > 0 {
			avg = a.bytes / a.calls
		}
		fmt.Printf("%-8s %-12s %8d %14d %12d %10d %12.4f\n",
			k.layer, k.op, a.calls, a.bytes, avg, a.extents, a.time)
	}
	fmt.Println()
}

// sizeHistogram prints the power-of-two request-size distribution of the
// lowest traced layer present (pfs when available), the quantity Thakur et
// al. correlate with MPI-IO performance.
func sizeHistogram(events []iostat.Event) {
	histLayer := "pfs"
	found := false
	for _, e := range events {
		if e.Layer == histLayer {
			found = true
			break
		}
	}
	if !found {
		histLayer = events[0].Layer
	}
	var buckets [64]int64
	total := 0
	for _, e := range events {
		if e.Layer != histLayer || e.Len <= 0 {
			continue
		}
		buckets[bits.Len64(uint64(e.Len)-1)]++
		total++
	}
	if total == 0 {
		return
	}
	fmt.Printf("request sizes (%s layer)\n", histLayer)
	maxCount := int64(0)
	for _, c := range buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		bar := int(40 * c / maxCount)
		fmt.Printf("  <=%10s %8d %s\n", humanSize(int64(1)<<i), c, barString(bar))
	}
	fmt.Println()
}

func barString(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

func humanSize(b int64) string {
	switch {
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%dKiB", b>>10)
	case b < 1<<30:
		return fmt.Sprintf("%dMiB", b>>20)
	default:
		return fmt.Sprintf("%dGiB", b>>30)
	}
}

// rankTimeline prints one row per rank: event count, bytes, busy time and
// the [first-start, last-end] span on the virtual clock.
func rankTimeline(events []iostat.Event) {
	type agg struct {
		events, bytes int64
		busy          float64
		first, last   float64
		seen          bool
	}
	m := map[int]*agg{}
	for _, e := range events {
		a := m[e.Rank]
		if a == nil {
			a = &agg{}
			m[e.Rank] = a
		}
		a.events++
		a.bytes += e.Len
		a.busy += e.End - e.Start
		if !a.seen || e.Start < a.first {
			a.first = e.Start
		}
		if !a.seen || e.End > a.last {
			a.last = e.End
		}
		a.seen = true
	}
	ranks := make([]int, 0, len(m))
	for r := range m {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	fmt.Printf("per-rank timeline (virtual seconds)\n")
	fmt.Printf("  %6s %8s %14s %10s %10s %10s\n", "rank", "events", "bytes", "first", "last", "busy")
	for _, r := range ranks {
		a := m[r]
		fmt.Printf("  %6d %8d %14d %10.4f %10.4f %10.4f\n",
			r, a.events, a.bytes, a.first, a.last, a.busy)
	}
	fmt.Println()
}

// serverLoad maps pfs request bytes to striped servers and reports the
// imbalance (max/mean) — the quantity that caps aggregate bandwidth when
// the access pattern favors a subset of the servers.
func serverLoad(events []iostat.Event, nservers int, stripeSize int64) {
	load := make([]int64, nservers)
	for _, e := range events {
		if e.Layer != "pfs" || e.Len <= 0 || e.Off < 0 {
			continue
		}
		// Walk the request stripe by stripe. Contiguity within the event is
		// assumed (extents are not in the dump), which is exact for the
		// merged requests the pfs layer issues.
		off, n := e.Off, e.Len
		for n > 0 {
			srv := (off / stripeSize) % int64(nservers)
			k := stripeSize - off%stripeSize
			if k > n {
				k = n
			}
			load[srv] += k
			off += k
			n -= k
		}
	}
	var sum, max int64
	for _, b := range load {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return
	}
	mean := float64(sum) / float64(nservers)
	fmt.Printf("per-server load (%d servers, %s stripe)\n", nservers, humanSize(stripeSize))
	for s, b := range load {
		fmt.Printf("  server %2d %14d (%.1f%%)\n", s, b, 100*float64(b)/float64(sum))
	}
	imb := math.Inf(1)
	if mean > 0 {
		imb = float64(max) / mean
	}
	fmt.Printf("  imbalance max/mean = %.3f\n", imb)
}
