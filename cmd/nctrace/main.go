// Command nctrace summarizes a JSON-lines I/O trace produced by the
// benchmarks' -trace flag (see internal/iostat): per-layer operation
// counts, a request-size histogram, the per-rank timeline, and — given the
// file system geometry — the per-server load split that explains
// flattening bandwidth curves.
//
// Usage:
//
//	nctrace trace.jsonl                      # summary
//	nctrace -servers 12 -stripe 262144 t.jsonl   # add per-server load
//	nctrace -layer pfs t.jsonl              # restrict to one layer
package main

import (
	"flag"
	"fmt"
	"math"
	"math/bits"
	"os"
	"sort"

	"pnetcdf/internal/cmdutil"
	"pnetcdf/internal/iostat"
)

const tool = "nctrace"

var (
	servers = flag.Int("servers", 0, "I/O server count for per-server load (0 = skip)")
	stripe  = flag.Int64("stripe", 256<<10, "stripe size in bytes for per-server load")
	layer   = flag.String("layer", "", "restrict the summary to one layer (pfs, mpiio, pnetcdf)")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		cmdutil.Usagef("usage: nctrace [-servers N] [-stripe BYTES] [-layer L] trace.jsonl")
	}
	if *stripe < 1 {
		cmdutil.Usagef("nctrace: -stripe must be positive")
	}
	f, err := os.Open(flag.Arg(0))
	cmdutil.Fatal(tool, err)
	events, err := iostat.ReadJSONL(f)
	cmdutil.Fatal(tool, err)
	cmdutil.Fatal(tool, f.Close())
	if *layer != "" {
		kept := events[:0]
		for _, e := range events {
			if e.Layer == *layer {
				kept = append(kept, e)
			}
		}
		events = kept
	}
	if len(events) == 0 {
		fmt.Println("no events")
		return
	}
	fmt.Printf("%d events\n\n", len(events))
	opTable(events)
	sizeHistogram(events)
	rankTimeline(events)
	if *servers > 0 {
		serverLoad(events, *servers, *stripe)
	}
}

// opTable prints per (layer, op) counts, bytes and extent totals.
func opTable(events []iostat.Event) {
	type key struct{ layer, op string }
	type agg struct {
		calls, bytes, extents int64
		time                  float64
	}
	m := map[key]*agg{}
	for _, e := range events {
		k := key{e.Layer, e.Op}
		a := m[k]
		if a == nil {
			a = &agg{}
			m[k] = a
		}
		a.calls++
		a.bytes += e.Len
		a.extents += int64(e.Extents)
		a.time += e.End - e.Start
	}
	keys := make([]key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].layer != keys[j].layer {
			return keys[i].layer < keys[j].layer
		}
		return keys[i].op < keys[j].op
	})
	fmt.Printf("%-8s %-12s %8s %14s %12s %10s %12s\n",
		"layer", "op", "calls", "bytes", "avg-size", "extents", "time(s)")
	for _, k := range keys {
		a := m[k]
		avg := int64(0)
		if a.calls > 0 {
			avg = a.bytes / a.calls
		}
		fmt.Printf("%-8s %-12s %8d %14d %12d %10d %12.4f\n",
			k.layer, k.op, a.calls, a.bytes, avg, a.extents, a.time)
	}
	fmt.Println()
}

// sizeHistogram prints the power-of-two request-size distribution of the
// lowest traced layer present (pfs when available), the quantity Thakur et
// al. correlate with MPI-IO performance.
func sizeHistogram(events []iostat.Event) {
	histLayer := "pfs"
	found := false
	for _, e := range events {
		if e.Layer == histLayer {
			found = true
			break
		}
	}
	if !found {
		histLayer = events[0].Layer
	}
	var buckets [64]int64
	total := 0
	for _, e := range events {
		if e.Layer != histLayer || e.Len <= 0 {
			continue
		}
		buckets[bits.Len64(uint64(e.Len)-1)]++
		total++
	}
	if total == 0 {
		return
	}
	fmt.Printf("request sizes (%s layer)\n", histLayer)
	maxCount := int64(0)
	for _, c := range buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		bar := int(40 * c / maxCount)
		fmt.Printf("  <=%10s %8d %s\n", humanSize(int64(1)<<i), c, barString(bar))
	}
	fmt.Println()
}

func barString(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

func humanSize(b int64) string {
	switch {
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%dKiB", b>>10)
	case b < 1<<30:
		return fmt.Sprintf("%dMiB", b>>20)
	default:
		return fmt.Sprintf("%dGiB", b>>30)
	}
}

// rankTimeline prints one row per rank: event count, bytes, busy time and
// the [first-start, last-end] span on the virtual clock.
func rankTimeline(events []iostat.Event) {
	type agg struct {
		events, bytes int64
		busy          float64
		first, last   float64
		seen          bool
	}
	m := map[int]*agg{}
	for _, e := range events {
		a := m[e.Rank]
		if a == nil {
			a = &agg{}
			m[e.Rank] = a
		}
		a.events++
		a.bytes += e.Len
		a.busy += e.End - e.Start
		if !a.seen || e.Start < a.first {
			a.first = e.Start
		}
		if !a.seen || e.End > a.last {
			a.last = e.End
		}
		a.seen = true
	}
	ranks := make([]int, 0, len(m))
	for r := range m {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	fmt.Printf("per-rank timeline (virtual seconds)\n")
	fmt.Printf("  %6s %8s %14s %10s %10s %10s\n", "rank", "events", "bytes", "first", "last", "busy")
	for _, r := range ranks {
		a := m[r]
		fmt.Printf("  %6d %8d %14d %10.4f %10.4f %10.4f\n",
			r, a.events, a.bytes, a.first, a.last, a.busy)
	}
	fmt.Println()
}

// serverLoad maps pfs request bytes to striped servers and reports the
// imbalance (max/mean) — the quantity that caps aggregate bandwidth when
// the access pattern favors a subset of the servers.
func serverLoad(events []iostat.Event, nservers int, stripeSize int64) {
	load := make([]int64, nservers)
	for _, e := range events {
		if e.Layer != "pfs" || e.Len <= 0 || e.Off < 0 {
			continue
		}
		// Walk the request stripe by stripe. Contiguity within the event is
		// assumed (extents are not in the dump), which is exact for the
		// merged requests the pfs layer issues.
		off, n := e.Off, e.Len
		for n > 0 {
			srv := (off / stripeSize) % int64(nservers)
			k := stripeSize - off%stripeSize
			if k > n {
				k = n
			}
			load[srv] += k
			off += k
			n -= k
		}
	}
	var sum, max int64
	for _, b := range load {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return
	}
	mean := float64(sum) / float64(nservers)
	fmt.Printf("per-server load (%d servers, %s stripe)\n", nservers, humanSize(stripeSize))
	for s, b := range load {
		fmt.Printf("  server %2d %14d (%.1f%%)\n", s, b, 100*float64(b)/float64(sum))
	}
	imb := math.Inf(1)
	if mean > 0 {
		imb = float64(max) / mean
	}
	fmt.Printf("  imbalance max/mean = %.3f\n", imb)
}
