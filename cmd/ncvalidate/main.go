// Command ncvalidate is an fsck for netCDF classic files: it decodes the
// header, checks the structural rules (names, dimensions, types) and the
// layout invariants (slot sizes, overlaps, record geometry, file size), and
// reports everything it finds.
//
// Usage:
//
//	ncvalidate file.nc [more.nc ...]
//
// Exit status 0 if every file is clean, 1 otherwise.
package main

import (
	"fmt"
	"os"

	"pnetcdf/internal/cdf"
	"pnetcdf/internal/cmdutil"
)

func main() {
	if len(os.Args) < 2 {
		cmdutil.Usagef("usage: ncvalidate file.nc [more.nc ...]")
	}
	bad := false
	for _, path := range os.Args[1:] {
		img, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ncvalidate: %v\n", err)
			bad = true
			continue
		}
		h, issues, err := cdf.CheckFile(img)
		if err != nil {
			// An unreadable in-place header may be a crash mid header
			// commit; classify it by the commit journal at the tail.
			if rec := cdf.RecoverJournal(img); rec != nil {
				if rh, rerr := cdf.Decode(rec); rerr == nil {
					fmt.Printf("%s: TORN HEADER, recoverable: commit journal holds a valid header (%d dims, %d vars, %d records); reopen writable to repair\n",
						path, len(rh.Dims), len(rh.Vars), rh.NumRecs)
					bad = true
					continue
				}
			}
			fmt.Printf("%s: INVALID: %v\n", path, err)
			bad = true
			continue
		}
		if len(issues) > 0 {
			fmt.Printf("%s: %d layout issue(s):\n", path, len(issues))
			for _, iss := range issues {
				fmt.Printf("  - %s\n", iss)
			}
			bad = true
			continue
		}
		kind := map[int]string{1: "classic", 2: "64-bit offset", 5: "64-bit data"}[h.Version]
		fmt.Printf("%s: OK (%s format, %d dims, %d vars, %d records)\n",
			path, kind, len(h.Dims), len(h.Vars), h.NumRecs)
	}
	if bad {
		os.Exit(1)
	}
}
