package pnetcdf_test

// Benchmarks regenerating the paper's evaluation, one per figure series
// (plus the design-choice ablations and substrate microbenchmarks). Virtual
// bandwidths are reported as "sim-MB/s" custom metrics; wall-clock ns/op
// measures the simulator itself. Paper-scale runs live in
// cmd/pnetcdf-bench and cmd/flashio-bench.

import (
	"testing"

	"pnetcdf/internal/bench"
	"pnetcdf/internal/cdf"
	"pnetcdf/internal/flash"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/netcdf"
)

// fig6Dims is a 16 MB array: big enough for the cost model's asymptotics,
// small enough for `go test -bench`.
var fig6Dims = [3]int64{128, 128, 256}

func benchFig6(b *testing.B, read bool, part bench.Partition, procs int) {
	b.ReportAllocs()
	var last *bench.Figure6
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunFigure6(bench.Fig6Options{
			Machine:    bench.SDSCBlueHorizon(),
			Dims:       fig6Dims,
			Procs:      []int{procs},
			Partitions: []bench.Partition{part},
			Read:       read,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	b.ReportMetric(last.Points[part][0], "sim-MB/s")
	b.ReportMetric(last.SerialMBps, "serial-sim-MB/s")
}

// Figure 6, write chart: one series per partition at 8 processes, plus the
// process-count sweep for the Z partition.
func BenchmarkFigure6WriteZ8(b *testing.B)   { benchFig6(b, false, bench.PartZ, 8) }
func BenchmarkFigure6WriteY8(b *testing.B)   { benchFig6(b, false, bench.PartY, 8) }
func BenchmarkFigure6WriteX8(b *testing.B)   { benchFig6(b, false, bench.PartX, 8) }
func BenchmarkFigure6WriteZY8(b *testing.B)  { benchFig6(b, false, bench.PartZY, 8) }
func BenchmarkFigure6WriteZX8(b *testing.B)  { benchFig6(b, false, bench.PartZX, 8) }
func BenchmarkFigure6WriteYX8(b *testing.B)  { benchFig6(b, false, bench.PartYX, 8) }
func BenchmarkFigure6WriteZYX8(b *testing.B) { benchFig6(b, false, bench.PartZYX, 8) }

// Figure 6, read chart.
func BenchmarkFigure6ReadZ8(b *testing.B) { benchFig6(b, true, bench.PartZ, 8) }
func BenchmarkFigure6ReadX8(b *testing.B) { benchFig6(b, true, bench.PartX, 8) }

// Process-count scaling (the growth the paper's Figure 6 shows).
func BenchmarkFigure6WriteZ1(b *testing.B)  { benchFig6(b, false, bench.PartZ, 1) }
func BenchmarkFigure6WriteZ2(b *testing.B)  { benchFig6(b, false, bench.PartZ, 2) }
func BenchmarkFigure6WriteZ4(b *testing.B)  { benchFig6(b, false, bench.PartZ, 4) }
func BenchmarkFigure6WriteZ16(b *testing.B) { benchFig6(b, false, bench.PartZ, 16) }

// flashBenchCfg shrinks the FLASH run for test time while keeping the
// structure (guard stripping, 24-variable checkpoint pattern scaled to 6).
var flashBenchCfg = flash.Config{NXB: 8, NYB: 8, NZB: 8, NGuard: 4, NVar: 6, NPlotVar: 2, BlocksPerProc: 8}

func benchFig7(b *testing.B, file bench.FlashFile, procs int) {
	b.ReportAllocs()
	var last *bench.Figure7
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunFigure7(bench.Fig7Options{
			Machine: bench.ASCIFrost(),
			Config:  flashBenchCfg,
			File:    file,
			Procs:   []int{procs},
		})
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	b.ReportMetric(last.PnetCDF[0], "pnetcdf-sim-MB/s")
	b.ReportMetric(last.HDF5[0], "hdf5-sim-MB/s")
}

// Figure 7: the six chart kinds (checkpoint / plotfile / corners) at two
// process counts each.
func BenchmarkFigure7Checkpoint8(b *testing.B)  { benchFig7(b, bench.FlashCheckpoint, 8) }
func BenchmarkFigure7Checkpoint16(b *testing.B) { benchFig7(b, bench.FlashCheckpoint, 16) }
func BenchmarkFigure7Plotfile8(b *testing.B)    { benchFig7(b, bench.FlashPlotfile, 8) }
func BenchmarkFigure7Plotfile16(b *testing.B)   { benchFig7(b, bench.FlashPlotfile, 16) }
func BenchmarkFigure7Corners8(b *testing.B)     { benchFig7(b, bench.FlashCorners, 8) }
func BenchmarkFigure7Corners16(b *testing.B)    { benchFig7(b, bench.FlashCorners, 16) }

// Ablations (DESIGN.md §5).
func BenchmarkAblationTwoPhase(b *testing.B) {
	var res bench.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.AblationTwoPhase(bench.SDSCBlueHorizon(), [3]int64{64, 64, 128}, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup(), "speedup")
}

func BenchmarkAblationSieving(b *testing.B) {
	var res bench.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.AblationSieving(bench.SDSCBlueHorizon(), [3]int64{32, 64, 64}, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup(), "speedup")
}

func BenchmarkAblationHeaderStrategy(b *testing.B) {
	var res bench.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.AblationHeaderStrategy(bench.SDSCBlueHorizon(), 300, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup(), "speedup")
}

func BenchmarkAblationRecordBatch(b *testing.B) {
	var res bench.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.AblationRecordBatch(bench.SDSCBlueHorizon(), 12, 2, 4, 16<<10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup(), "speedup")
}

func BenchmarkAblationLayout(b *testing.B) {
	var res bench.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.AblationLayout(bench.SDSCBlueHorizon(), 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup(), "speedup")
}

// Substrate microbenchmarks: the real-CPU hot paths.

func BenchmarkHeaderEncodeDecode(b *testing.B) {
	h := &cdf.Header{Version: 2}
	h.Dims = []cdf.Dim{{Name: "t", Len: 0}, {Name: "y", Len: 512}, {Name: "x", Len: 1024}}
	for i := 0; i < 64; i++ {
		h.Vars = append(h.Vars, cdf.Var{
			Name: "var_number_" + string(rune('a'+i%26)) + string(rune('a'+i/26)),
			Type: nctype.Float, DimIDs: []int{0, 1, 2},
		})
	}
	if err := h.ComputeLayout(1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob := h.Encode()
		if _, err := cdf.Decode(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXDREncodeFloat32(b *testing.B) {
	src := make([]float32, 1<<16)
	dst := make([]byte, 0, 4<<16)
	b.SetBytes(4 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = cdf.EncodeSlice(dst[:0], nctype.Float, src)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectiveWrite(b *testing.B) {
	// Wall-clock cost of one 4-rank collective write through the whole
	// stack (simulator overhead, not simulated time).
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := bench.RunFigure6(bench.Fig6Options{
			Machine:    bench.SDSCBlueHorizon(),
			Dims:       [3]int64{32, 64, 64},
			Procs:      []int{4},
			Partitions: []bench.Partition{bench.PartZY},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPIAllreduce(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(8, mpi.DefaultNet(), func(c *mpi.Comm) error {
			for j := 0; j < 10; j++ {
				c.AllreduceI64([]int64{int64(c.Rank())}, mpi.OpSum)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationVarAlign(b *testing.B) {
	var res bench.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.AblationVarAlign(bench.SDSCBlueHorizon(), 12, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup(), "speedup")
}

func BenchmarkAblationPrefetch(b *testing.B) {
	var res bench.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.AblationPrefetch(bench.SDSCBlueHorizon(), 4, 60)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup(), "speedup")
}

func BenchmarkFigure7ReadBack(b *testing.B) {
	// The §6 future-work experiment at bench scale.
	b.ReportAllocs()
	var last *bench.Figure7
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunFigure7(bench.Fig7Options{
			Machine: bench.ASCIFrost(),
			Config:  flashBenchCfg,
			File:    bench.FlashCheckpoint,
			Procs:   []int{8},
			Read:    true,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	b.ReportMetric(last.PnetCDF[0], "pnetcdf-sim-MB/s")
	b.ReportMetric(last.HDF5[0], "hdf5-sim-MB/s")
}

func BenchmarkSubarrayFlatten(b *testing.B) {
	// The access-geometry hot path: X-partition of a 256^3 array produces
	// 64k segments.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := mpitype.Subarray(
			[]int64{256, 256, 256}, []int64{256, 256, 32}, []int64{0, 0, 64}, 4)
		if err != nil {
			b.Fatal(err)
		}
		if d.NumSegments() != 256*256 {
			b.Fatalf("segments = %d", d.NumSegments())
		}
	}
}

func BenchmarkSerialPutVara(b *testing.B) {
	// Serial library throughput: 1 MB strided row writes through the page
	// cache (wall-clock, measures the real library code).
	store := &netcdf.MemStore{}
	d, err := netcdf.Create(store, nctype.Clobber)
	if err != nil {
		b.Fatal(err)
	}
	y, _ := d.DefDim("y", 512)
	x, _ := d.DefDim("x", 512)
	v, _ := d.DefVar("v", nctype.Float, []int{y, x})
	if err := d.EndDef(); err != nil {
		b.Fatal(err)
	}
	row := make([]float32, 512)
	b.SetBytes(512 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.PutVara(v, []int64{int64(i % 512), 0}, []int64{1, 512}, row); err != nil {
			b.Fatal(err)
		}
	}
}
