// Package pnetcdf is a pure-Go reproduction of "Parallel netCDF: A
// High-Performance Scientific I/O Interface" (Li et al., SC 2003).
//
// The system lives in internal packages, bottom-up:
//
//   - internal/nctype, internal/cdf: the netCDF classic file format
//     (CDF-1/2/5) — header codec, layout rules, external data encoding.
//   - internal/mpi: an in-process MPI runtime (goroutine ranks, tag-matched
//     messaging, collectives) with virtual-time accounting.
//   - internal/pfs: a striped parallel file system simulator (GPFS-class)
//     storing real bytes under a virtual-time cost model.
//   - internal/mpitype, internal/mpiio: MPI datatypes and MPI-IO with data
//     sieving and two-phase collective I/O (ROMIO-style).
//   - internal/netcdf: the serial netCDF library (the paper's baseline).
//   - internal/core: PnetCDF itself — the ncmpi_*-style parallel API.
//   - internal/h5sim: the parallel-HDF5-style comparator library.
//   - internal/flash: the FLASH I/O benchmark kernel.
//   - internal/bench: the harness regenerating the paper's Figures 6 and 7
//     and the design-choice ablations.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every figure series at test-friendly scale;
// cmd/pnetcdf-bench and cmd/flashio-bench run them at paper scale.
package pnetcdf
