// Package integration runs cross-layer scenarios spanning the whole stack:
// parallel writers against serial readers, decomposition changes between
// write and read, define-mode cycles with live data, large-file (CDF-2)
// handling, hint sweeps, and randomized cross-library fuzzing.
package integration

import (
	"fmt"
	"math/rand"
	"testing"

	"pnetcdf/internal/cdl"
	"pnetcdf/internal/core"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/netcdf"
	"pnetcdf/internal/pfs"
)

func newFS() *pfs.FS { return pfs.New(pfs.DefaultConfig()) }

// TestWriteWithPReadWithQ writes a 3-D variable with one process count and
// rereads it with several different ones; every decomposition must see the
// same bytes.
func TestWriteWithPReadWithQ(t *testing.T) {
	fsys := newFS()
	const Z, Y, X = 12, 10, 8
	value := func(z, y, x int64) float64 {
		return float64(z)*10000 + float64(y)*100 + float64(x)
	}
	// Write with 3 processes, Z-partitioned.
	err := mpi.Run(3, mpi.DefaultNet(), func(c *mpi.Comm) error {
		d, err := core.Create(c, fsys, "pq.nc", nctype.Clobber, nil)
		if err != nil {
			return err
		}
		z, _ := d.DefDim("z", Z)
		y, _ := d.DefDim("y", Y)
		x, _ := d.DefDim("x", X)
		v, _ := d.DefVar("field", nctype.Double, []int{z, y, x})
		if err := d.EndDef(); err != nil {
			return err
		}
		share := Z / 3
		z0 := int64(c.Rank() * share)
		buf := make([]float64, share*Y*X)
		i := 0
		for zz := z0; zz < z0+int64(share); zz++ {
			for yy := int64(0); yy < Y; yy++ {
				for xx := int64(0); xx < X; xx++ {
					buf[i] = value(zz, yy, xx)
					i++
				}
			}
		}
		if err := d.PutVaraAll(v, []int64{z0, 0, 0}, []int64{int64(share), Y, X}, buf); err != nil {
			return err
		}
		return d.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reread with 1, 2, 4, 5 processes, X-partitioned (different axis).
	for _, q := range []int{1, 2, 4, 5} {
		err := mpi.Run(q, mpi.DefaultNet(), func(c *mpi.Comm) error {
			d, err := core.Open(c, fsys, "pq.nc", nctype.NoWrite, nil)
			if err != nil {
				return err
			}
			base := X / int64(q)
			rem := X % int64(q)
			x0 := base*int64(c.Rank()) + min64(int64(c.Rank()), rem)
			cnt := base
			if int64(c.Rank()) < rem {
				cnt++
			}
			if cnt == 0 {
				return d.Close()
			}
			buf := make([]float64, Z*Y*cnt)
			if err := d.GetVaraAll(d.VarID("field"), []int64{0, 0, x0}, []int64{Z, Y, cnt}, buf); err != nil {
				return err
			}
			i := 0
			for zz := int64(0); zz < Z; zz++ {
				for yy := int64(0); yy < Y; yy++ {
					for xx := x0; xx < x0+cnt; xx++ {
						if buf[i] != value(zz, yy, xx) {
							return fmt.Errorf("q=%d rank=%d: (%d,%d,%d) = %v", q, c.Rank(), zz, yy, xx, buf[i])
						}
						i++
					}
				}
			}
			return d.Close()
		})
		if err != nil {
			t.Fatalf("reread with %d procs: %v", q, err)
		}
	}
}

// TestCDF2LargeOffsets builds a CDF-2 file whose second variable begins
// beyond 2 GiB and verifies access to it from multiple processes. Discard
// keeps memory flat; correctness is verified through the retained header
// and small probe writes.
func TestCDF2LargeOffsets(t *testing.T) {
	cfg := pfs.DefaultConfig()
	cfg.Discard = true
	fsys := pfs.New(cfg)
	err := mpi.Run(2, mpi.DefaultNet(), func(c *mpi.Comm) error {
		d, err := core.Create(c, fsys, "big.nc", nctype.Bit64Offset, nil)
		if err != nil {
			return err
		}
		z, _ := d.DefDim("z", 640)
		y, _ := d.DefDim("y", 1024)
		x, _ := d.DefDim("x", 1024)
		big, err := d.DefVar("big", nctype.Float, []int{z, y, x}) // 2.5 GiB
		if err != nil {
			return err
		}
		small, err := d.DefVar("tail", nctype.Int, []int{x})
		if err != nil {
			return err
		}
		if err := d.EndDef(); err != nil {
			return err
		}
		h := d.Header()
		if h.Vars[small].Begin < (1 << 31) {
			return fmt.Errorf("tail begins at %d, expected beyond 2 GiB", h.Vars[small].Begin)
		}
		// Write a sliver of the big variable and the small one (small writes
		// are retained even in Discard mode).
		if err := d.PutVaraAll(big, []int64{639, 1023, 0}, []int64{1, 1, 4},
			[]float32{1, 2, 3, 4}); err != nil {
			return err
		}
		vals := make([]int32, 512)
		for i := range vals {
			vals[i] = int32(i ^ 0x55)
		}
		if err := d.PutVaraAll(small, []int64{int64(c.Rank() * 512)}, []int64{512}, vals); err != nil {
			return err
		}
		got := make([]int32, 4)
		if err := d.GetVaraAll(small, []int64{1000}, []int64{4}, got); err != nil {
			return err
		}
		for i := range got {
			if got[i] != int32((1000-512+i)^0x55) {
				return fmt.Errorf("tail[%d] = %d", 1000+i, got[i])
			}
		}
		return d.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRedefCycleWithDataUnderLoad interleaves define-mode cycles with
// parallel data access.
func TestRedefCycleWithDataUnderLoad(t *testing.T) {
	fsys := newFS()
	err := mpi.Run(4, mpi.DefaultNet(), func(c *mpi.Comm) error {
		d, err := core.Create(c, fsys, "cycle.nc", nctype.Clobber, nil)
		if err != nil {
			return err
		}
		x, _ := d.DefDim("x", 16)
		v0, _ := d.DefVar("v0", nctype.Int, []int{x})
		if err := d.EndDef(); err != nil {
			return err
		}
		vals := make([]int32, 4)
		for i := range vals {
			vals[i] = int32(c.Rank()*10 + i)
		}
		if err := d.PutVaraAll(v0, []int64{int64(c.Rank() * 4)}, []int64{4}, vals); err != nil {
			return err
		}
		// Three define cycles, each adding a variable and rewriting data.
		for cycle := 1; cycle <= 3; cycle++ {
			if err := d.Redef(); err != nil {
				return err
			}
			name := fmt.Sprintf("v%d", cycle)
			vn, err := d.DefVar(name, nctype.Float, []int{x})
			if err != nil {
				return err
			}
			if err := d.PutAttr(vn, "cycle", nctype.Int, int32(cycle)); err != nil {
				return err
			}
			if err := d.EndDef(); err != nil {
				return err
			}
			fv := make([]float32, 4)
			for i := range fv {
				fv[i] = float32(cycle*100 + c.Rank()*10 + i)
			}
			if err := d.PutVaraAll(vn, []int64{int64(c.Rank() * 4)}, []int64{4}, fv); err != nil {
				return err
			}
			// v0 must survive every relocation.
			got := make([]int32, 4)
			if err := d.GetVaraAll(v0, []int64{int64(c.Rank() * 4)}, []int64{4}, got); err != nil {
				return err
			}
			for i := range got {
				if got[i] != int32(c.Rank()*10+i) {
					return fmt.Errorf("cycle %d: v0 lost: %v", cycle, got)
				}
			}
		}
		return d.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Final structure check through the serial library.
	pf, _, _ := fsys.Open("cycle.nc", 0)
	sd, err := netcdf.Open(pfs.NewSerialFile(pf, 0), nctype.NoWrite)
	if err != nil {
		t.Fatal(err)
	}
	if sd.NumVars() != 4 {
		t.Fatalf("vars = %d", sd.NumVars())
	}
	f3 := make([]float32, 16)
	if err := sd.GetVar(sd.VarID("v3"), f3); err != nil {
		t.Fatal(err)
	}
	if f3[5] != 310+1 {
		t.Fatalf("v3[5] = %v", f3[5])
	}
}

// TestRandomizedCrossLibraryFuzz writes random subarrays in parallel and
// mirrors every operation in an in-memory oracle; afterwards the file is
// read with the serial library and compared element by element.
func TestRandomizedCrossLibraryFuzz(t *testing.T) {
	fsys := newFS()
	const Z, Y, X = 6, 7, 9
	oracle := make([]float64, Z*Y*X)
	rng := rand.New(rand.NewSource(20260706))
	type op struct {
		start, count [3]int64
		vals         []float64
	}
	// Pre-generate disjoint-rank operations: each round, each rank writes a
	// random block of its own Z-slice, so collective writes never overlap.
	var rounds [][]op
	const nprocs = 3
	for r := 0; r < 25; r++ {
		var ops []op
		for rank := 0; rank < nprocs; rank++ {
			z0 := int64(rank * 2)
			o := op{}
			o.start = [3]int64{z0 + rng.Int63n(2), rng.Int63n(Y), rng.Int63n(X)}
			o.count = [3]int64{1, rng.Int63n(Y-o.start[1]) + 1, rng.Int63n(X-o.start[2]) + 1}
			n := o.count[0] * o.count[1] * o.count[2]
			o.vals = make([]float64, n)
			for i := range o.vals {
				o.vals[i] = rng.Float64()
			}
			ops = append(ops, o)
			// Mirror into the oracle.
			i := 0
			for zz := o.start[0]; zz < o.start[0]+o.count[0]; zz++ {
				for yy := o.start[1]; yy < o.start[1]+o.count[1]; yy++ {
					for xx := o.start[2]; xx < o.start[2]+o.count[2]; xx++ {
						oracle[(zz*Y+yy)*X+xx] = o.vals[i]
						i++
					}
				}
			}
		}
		rounds = append(rounds, ops)
	}
	err := mpi.Run(nprocs, mpi.DefaultNet(), func(c *mpi.Comm) error {
		d, err := core.Create(c, fsys, "fuzz.nc", nctype.Clobber, nil)
		if err != nil {
			return err
		}
		z, _ := d.DefDim("z", Z)
		y, _ := d.DefDim("y", Y)
		x, _ := d.DefDim("x", X)
		v, _ := d.DefVar("field", nctype.Double, []int{z, y, x})
		if err := d.EndDef(); err != nil {
			return err
		}
		for _, ops := range rounds {
			o := ops[c.Rank()]
			if err := d.PutVaraAll(v, o.start[:], o.count[:], o.vals); err != nil {
				return err
			}
		}
		return d.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	pf, _, _ := fsys.Open("fuzz.nc", 0)
	sd, err := netcdf.Open(pfs.NewSerialFile(pf, 0), nctype.NoWrite)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, Z*Y*X)
	if err := sd.GetVar(sd.VarID("field"), got); err != nil {
		t.Fatal(err)
	}
	for i := range oracle {
		if got[i] != oracle[i] {
			t.Fatalf("element %d: %v != %v", i, got[i], oracle[i])
		}
	}
}

// TestCDLToParallelPipeline compiles a CDL schema serially, then extends the
// dataset in parallel (appending records), then dumps the structure back.
func TestCDLToParallelPipeline(t *testing.T) {
	fsys := newFS()
	src := `netcdf station {
	dimensions: time = UNLIMITED ; s = 4 ;
	variables:
		float obs(time, s) ;
			obs:units = "degC" ;
	data:
		obs = 1, 2, 3, 4 ;
	}`
	schema, err := cdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	pf, _ := fsys.Create("station.nc", 0)
	sd, err := netcdf.Create(pfs.NewSerialFile(pf, 0), nctype.Clobber)
	if err != nil {
		t.Fatal(err)
	}
	if err := schema.Build(sd); err != nil {
		t.Fatal(err)
	}
	if err := sd.Close(); err != nil {
		t.Fatal(err)
	}
	// Parallel append of 3 more records.
	err = mpi.Run(4, mpi.DefaultNet(), func(c *mpi.Comm) error {
		d, err := core.Open(c, fsys, "station.nc", nctype.Write, nil)
		if err != nil {
			return err
		}
		if d.NumRecs() != 1 {
			return fmt.Errorf("NumRecs = %d", d.NumRecs())
		}
		for rec := int64(1); rec <= 3; rec++ {
			val := []float32{float32(rec*10 + int64(c.Rank()))}
			if err := d.PutVaraAll(d.VarID("obs"), []int64{rec, int64(c.Rank())}, []int64{1, 1}, val); err != nil {
				return err
			}
		}
		if d.NumRecs() != 4 {
			return fmt.Errorf("NumRecs after append = %d", d.NumRecs())
		}
		return d.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Verify serially.
	pf2, _, _ := fsys.Open("station.nc", 0)
	rd, err := netcdf.Open(pfs.NewSerialFile(pf2, 0), nctype.NoWrite)
	if err != nil {
		t.Fatal(err)
	}
	if rd.NumRecs() != 4 {
		t.Fatalf("final NumRecs = %d", rd.NumRecs())
	}
	all := make([]float32, 16)
	if err := rd.GetVar(rd.VarID("obs"), all); err != nil {
		t.Fatal(err)
	}
	if all[0] != 1 || all[3] != 4 { // CDL record
		t.Fatalf("record 0 = %v", all[:4])
	}
	if all[4+2] != 12 || all[12+3] != 33 { // appended records
		t.Fatalf("appended = %v", all[4:])
	}
}

// TestHintSweepConsistency writes the same dataset under many hint
// combinations; all resulting files must be byte-identical in their data
// regions (hints tune performance, never semantics).
func TestHintSweepConsistency(t *testing.T) {
	hints := []*mpi.Info{
		nil,
		mpi.NewInfo().Set("romio_cb_write", "disable"),
		mpi.NewInfo().Set("romio_ds_write", "disable").Set("romio_cb_write", "disable"),
		mpi.NewInfo().Set("cb_nodes", "2"),
		mpi.NewInfo().Set("cb_buffer_size", "8192"),
		mpi.NewInfo().Set("nc_header_align_size", "1024"),
		mpi.NewInfo().Set("cb_partition", "balanced"),
		mpi.NewInfo().Set("cb_partition", "balanced").Set("cb_partition_buckets", "16"),
		mpi.NewInfo().Set("cb_partition", "balanced").Set("cb_nodes", "2").Set("cb_buffer_size", "8192"),
	}
	var reference []float64
	for hi, info := range hints {
		fsys := newFS()
		err := mpi.Run(3, mpi.DefaultNet(), func(c *mpi.Comm) error {
			d, err := core.Create(c, fsys, "h.nc", nctype.Clobber, info)
			if err != nil {
				return err
			}
			z, _ := d.DefDim("z", 6)
			x, _ := d.DefDim("x", 10)
			v, _ := d.DefVar("v", nctype.Double, []int{z, x})
			if err := d.EndDef(); err != nil {
				return err
			}
			buf := make([]float64, 2*10)
			for i := range buf {
				buf[i] = float64(c.Rank()*1000 + i)
			}
			if err := d.PutVaraAll(v, []int64{int64(c.Rank() * 2), 0}, []int64{2, 10}, buf); err != nil {
				return err
			}
			return d.Close()
		})
		if err != nil {
			t.Fatalf("hints %d: %v", hi, err)
		}
		pf, _, _ := fsys.Open("h.nc", 0)
		sd, err := netcdf.Open(pfs.NewSerialFile(pf, 0), nctype.NoWrite)
		if err != nil {
			t.Fatalf("hints %d: %v", hi, err)
		}
		got := make([]float64, 60)
		if err := sd.GetVar(sd.VarID("v"), got); err != nil {
			t.Fatalf("hints %d: %v", hi, err)
		}
		if reference == nil {
			reference = got
			continue
		}
		for i := range got {
			if got[i] != reference[i] {
				t.Fatalf("hints %d: element %d differs: %v != %v", hi, i, got[i], reference[i])
			}
		}
	}
}

// TestManyVariablesManyRanks stresses the header machinery: 150 variables,
// 8 ranks, round-robin writes, serial verification.
func TestManyVariablesManyRanks(t *testing.T) {
	fsys := newFS()
	const nvars = 150
	err := mpi.Run(8, mpi.DefaultNet(), func(c *mpi.Comm) error {
		d, err := core.Create(c, fsys, "many.nc", nctype.Clobber, nil)
		if err != nil {
			return err
		}
		x, _ := d.DefDim("x", 8)
		ids := make([]int, nvars)
		for i := 0; i < nvars; i++ {
			ids[i], err = d.DefVar(fmt.Sprintf("v%03d", i), nctype.Int, []int{x})
			if err != nil {
				return err
			}
		}
		if err := d.EndDef(); err != nil {
			return err
		}
		for i, id := range ids {
			if err := d.PutVaraAll(id, []int64{int64(c.Rank())}, []int64{1},
				[]int32{int32(i*100 + c.Rank())}); err != nil {
				return err
			}
		}
		return d.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	pf, _, _ := fsys.Open("many.nc", 0)
	sd, err := netcdf.Open(pfs.NewSerialFile(pf, 0), nctype.NoWrite)
	if err != nil {
		t.Fatal(err)
	}
	if sd.NumVars() != nvars {
		t.Fatalf("vars = %d", sd.NumVars())
	}
	for _, i := range []int{0, 77, 149} {
		got := make([]int32, 8)
		if err := sd.GetVar(sd.VarID(fmt.Sprintf("v%03d", i)), got); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 8; r++ {
			if got[r] != int32(i*100+r) {
				t.Fatalf("v%03d[%d] = %d", i, r, got[r])
			}
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TestRandomSchemaCrossLibrary generates random datasets (dims, var ranks,
// types, record or fixed), writes them in parallel, and re-reads everything
// with the serial library.
func TestRandomSchemaCrossLibrary(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	types := []nctype.Type{nctype.Byte, nctype.Short, nctype.Int, nctype.Float, nctype.Double}
	for trial := 0; trial < 8; trial++ {
		fsys := newFS()
		ndims := rng.Intn(3) + 1
		dims := make([]int64, ndims)
		for i := range dims {
			dims[i] = int64(rng.Intn(5) + 1)
		}
		hasRec := rng.Intn(2) == 0
		nvars := rng.Intn(4) + 1
		varTypes := make([]nctype.Type, nvars)
		varRanks := make([]int, nvars)
		varRec := make([]bool, nvars)
		for i := range varTypes {
			varTypes[i] = types[rng.Intn(len(types))]
			varRanks[i] = rng.Intn(ndims + 1)
			varRec[i] = hasRec && rng.Intn(2) == 0
		}
		nrecs := int64(rng.Intn(3) + 1)
		nprocs := rng.Intn(3) + 1

		value := func(vi int, flat int64) int64 { return int64(vi*13+trial)%50 + flat%50 }

		err := mpi.Run(nprocs, mpi.DefaultNet(), func(c *mpi.Comm) error {
			d, err := core.Create(c, fsys, "rs.nc", nctype.Clobber, nil)
			if err != nil {
				return err
			}
			var recDim int
			if hasRec {
				recDim, _ = d.DefDim("rec", 0)
			}
			dimIDs := make([]int, ndims)
			for i := range dims {
				dimIDs[i], err = d.DefDim(fmt.Sprintf("d%d", i), dims[i])
				if err != nil {
					return err
				}
			}
			varIDs := make([]int, nvars)
			for i := range varIDs {
				ids := append([]int(nil), dimIDs[:varRanks[i]]...)
				if varRec[i] {
					ids = append([]int{recDim}, ids...)
				}
				varIDs[i], err = d.DefVar(fmt.Sprintf("v%d", i), varTypes[i], ids)
				if err != nil {
					return err
				}
			}
			if err := d.EndDef(); err != nil {
				return err
			}
			// Rank 0 writes everything (simplest exhaustive coverage);
			// everyone participates collectively with empty shares.
			for vi, v := range varIDs {
				shape, _ := d.VarShape(v)
				if varRec[vi] {
					shape[0] = nrecs
				}
				n := int64(1)
				for _, s := range shape {
					n *= s
				}
				start := make([]int64, len(shape))
				count := append([]int64(nil), shape...)
				buf := make([]int32, n)
				for j := range buf {
					buf[j] = int32(value(vi, int64(j)))
				}
				// Rank 0 writes; others pass empty shares — except for pure
				// scalars, which every rank writes identically (a scalar has
				// no dimension to zero out).
				if c.Rank() != 0 && len(count) > 0 {
					for i := range count {
						count[i] = 0
					}
					buf = nil
				}
				if err := d.PutVaraAll(v, start, count, buf); err != nil {
					return fmt.Errorf("trial %d var %d (type %v rank %d rec %v): %w",
						trial, vi, varTypes[vi], varRanks[vi], varRec[vi], err)
				}
			}
			return d.Close()
		})
		if err != nil {
			t.Fatal(err)
		}
		// Serial verification of every element of every variable.
		pf, _, _ := fsys.Open("rs.nc", 0)
		sd, err := netcdf.Open(pfs.NewSerialFile(pf, 0), nctype.NoWrite)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for vi := 0; vi < nvars; vi++ {
			id := sd.VarID(fmt.Sprintf("v%d", vi))
			shape, _ := sd.VarShape(id)
			n := int64(1)
			for _, s := range shape {
				n *= s
			}
			if n == 0 {
				continue
			}
			got := make([]int32, n)
			if err := sd.GetVar(id, got); err != nil {
				t.Fatalf("trial %d var %d: %v", trial, vi, err)
			}
			for j := range got {
				if got[j] != int32(value(vi, int64(j))) {
					t.Fatalf("trial %d var %d elem %d = %d, want %d",
						trial, vi, j, got[j], value(vi, int64(j)))
				}
			}
		}
	}
}
