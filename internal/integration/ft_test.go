// Rank-failure scenarios across the full stack (DESIGN.md §8): the paper's
// FLASH checkpoint workload with a rank killed mid-collective, and record
// variables under rank death. The acceptance criteria: no survivor hangs,
// the file validates, survivor data is byte-identical to an undisturbed
// run, and the record count stays consistent across the failure.
package integration

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pnetcdf/internal/cdf"
	"pnetcdf/internal/core"
	"pnetcdf/internal/fault"
	"pnetcdf/internal/flash"
	"pnetcdf/internal/iostat"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/mpiio"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/pfs"
)

const ftDetectTimeout = 20 * time.Millisecond

// TestFlashCheckpointRankFailure is the headline scenario: an 8-process
// FLASH checkpoint with one non-root rank killed mid-exchange. The
// survivors must detect the death, shrink, fail over, and finish a file
// that validates and matches the undisturbed run everywhere outside the
// dead rank's own blocks.
func TestFlashCheckpointRankFailure(t *testing.T) {
	const nprocs, victim = 8, 3
	cfg := flashCfg()

	writeOnce := func(fsys *pfs.FS, ft bool) (stats map[string]int64, degraded []error) {
		t.Helper()
		var mu sync.Mutex
		stats = map[string]int64{}
		fn := func(c *mpi.Comm) error {
			c.Proc().SetStats(iostat.New())
			rep, err := flash.WriteCheckpointPnetCDF(c, fsys, "chk.nc", cfg, nil)
			if err != nil {
				return err
			}
			st := c.Proc().Stats()
			mu.Lock()
			for _, ctr := range []iostat.Counter{
				iostat.FTFailuresDetected, iostat.FTCommShrinks,
				iostat.FTFailoverRounds, iostat.FTDegradedCompletions,
			} {
				stats[ctr.String()] += st.Get(ctr)
			}
			if c.Rank() == 0 {
				degraded = rep.Degraded
			}
			mu.Unlock()
			return nil
		}
		var err error
		if ft {
			err = mpi.RunFT(nprocs, mpi.DefaultNet(), ftDetectTimeout, fn)
		} else {
			err = mpi.Run(nprocs, mpi.DefaultNet(), fn)
		}
		if err != nil {
			t.Fatal(err)
		}
		return stats, degraded
	}

	cleanFS := pfs.New(pfs.DefaultConfig())
	writeOnce(cleanFS, false)
	clean := readPFSFile(t, cleanFS, "chk.nc")

	killFS := pfs.New(pfs.DefaultConfig())
	inj := fault.New(fault.Config{Seed: 1})
	inj.KillRankAt(victim, fault.KillMidExchange, 6)
	killFS.SetFault(inj)
	stats, degraded := writeOnce(killFS, true)
	killed := readPFSFile(t, killFS, "chk.nc")

	if inj.Injected() == 0 {
		t.Fatal("kill never fired; scenario proves nothing")
	}
	if stats["ft_failures_detected"] == 0 || stats["ft_comm_shrinks"] == 0 {
		t.Fatalf("failure not detected/shrunk: %v", stats)
	}
	if stats["ft_failover_rounds"] == 0 {
		t.Fatalf("no failover rounds replayed: %v", stats)
	}
	// The file must still be a structurally valid netCDF file.
	hdr, issues, err := cdf.CheckFile(killed)
	if err != nil || len(issues) != 0 {
		t.Fatalf("killed-run checkpoint fails validation: %v %v", err, issues)
	}
	if len(killed) != len(clean) {
		t.Fatalf("killed-run file is %d bytes, clean %d", len(killed), len(clean))
	}
	// Byte identity outside the victim's exclusive regions: every variable
	// is laid out with tot_blocks outermost, so the victim's share of each
	// is one contiguous slab of its fixed part.
	tot := int64(nprocs * cfg.BlocksPerProc)
	victimRegion := func(off int64) bool {
		for _, v := range hdr.Vars {
			per := v.VSize / tot // bytes per block (vsize includes padding; per-block share is exact here)
			lo := v.Begin + int64(victim*cfg.BlocksPerProc)*per
			hi := lo + int64(cfg.BlocksPerProc)*per
			if off >= lo && off < hi {
				return true
			}
		}
		return false
	}
	for j := range clean {
		if clean[j] != killed[j] && !victimRegion(int64(j)) {
			t.Fatalf("killed run diverges from clean run at byte %d, outside the victim's regions", j)
		}
	}
	// The degraded completions recorded by the library must match what the
	// flash writer reported to its caller.
	if int64(len(degraded)) == 0 && stats["ft_degraded_completions"] > 0 {
		t.Fatalf("library counted %d degraded completions but the writer reported none",
			stats["ft_degraded_completions"])
	}
	for _, derr := range degraded {
		de, ok := mpiio.AsDegraded(derr)
		if !ok {
			t.Fatalf("writer recorded a non-degraded error: %v", derr)
		}
		for _, x := range de.Missing {
			for off := x.Off; off < x.Off+x.Len; off += 512 {
				if !victimRegion(off) {
					t.Fatalf("missing extent %+v reaches outside the victim's regions", x)
				}
			}
		}
	}
	// The checkpoint stays reopenable: a fresh single-process world can
	// open it and read a survivor's metadata back.
	err = mpi.Run(1, mpi.DefaultNet(), func(c *mpi.Comm) error {
		d, err := core.Open(c, killFS, "chk.nc", nctype.NoWrite, nil)
		if err != nil {
			return err
		}
		lref := make([]int32, cfg.BlocksPerProc)
		if err := d.GetVaraAll(0, []int64{0}, []int64{int64(cfg.BlocksPerProc)}, lref); err != nil {
			return err
		}
		for i, v := range lref {
			if want := int32(1 + i%4); v != want {
				return fmt.Errorf("rank 0 lrefine[%d] = %d after failover, want %d", i, v, want)
			}
		}
		return d.Close()
	})
	if err != nil {
		t.Fatalf("reopen after rank failure: %v", err)
	}
}

// TestRecordVarNumRecsAfterRankFailure: killing a rank during a record
// write must leave the record count consistent — the survivors' failover
// completes the record, numrecs reflects every record started, and the
// dataset keeps working (and growing) on the shrunken communicator.
func TestRecordVarNumRecsAfterRankFailure(t *testing.T) {
	const nprocs, victim = 4, 2
	fsys := pfs.New(pfs.DefaultConfig())
	inj := fault.New(fault.Config{Seed: 5})
	fsys.SetFault(inj)
	err := mpi.RunFT(nprocs, mpi.DefaultNet(), ftDetectTimeout, func(c *mpi.Comm) error {
		// The in-place shrink renumbers c.Rank() mid-run (ULFM semantics);
		// pin this process's data placement to its original rank.
		rank := c.Rank()
		d, err := core.Create(c, fsys, "rec.nc", nctype.Clobber, nil)
		if err != nil {
			return err
		}
		tdim, _ := d.DefDim("time", 0)
		x, _ := d.DefDim("x", int64(nprocs*64))
		v, _ := d.DefVar("v", nctype.Double, []int{tdim, x})
		if err := d.EndDef(); err != nil {
			return err
		}
		buf := make([]float64, 64)
		for i := range buf {
			buf[i] = float64(rank*1000 + i + 1)
		}
		write := func(rec int64) error {
			return d.PutVaraAll(v, []int64{rec, int64(rank) * 64}, []int64{1, 64}, buf)
		}
		if err := write(0); err != nil {
			return err
		}
		c.Barrier()
		// Arm the kill only now, so it deterministically lands in record
		// 1's collective regardless of how many rounds came before.
		if rank == victim {
			inj.KillRank(victim, fault.KillBeforePack)
		}
		c.Barrier()
		err = write(1)
		if err != nil {
			if _, ok := mpiio.AsDegraded(err); !ok {
				return fmt.Errorf("rank %d: record write under kill: %v", c.Rank(), err)
			}
		}
		// Life goes on for the survivors: another record on the shrunken
		// communicator (the victim's slice of it is simply never written).
		if err := write(2); err != nil {
			if _, ok := mpiio.AsDegraded(err); !ok {
				return fmt.Errorf("rank %d: post-failover record write: %v", c.Rank(), err)
			}
		}
		if got := d.NumRecs(); got != 3 {
			return fmt.Errorf("rank %d: NumRecs = %d after failover, want 3", c.Rank(), got)
		}
		return d.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if inj.Injected() == 0 {
		t.Fatal("kill never fired")
	}
	img := readPFSFile(t, fsys, "rec.nc")
	hdr, issues, err := cdf.CheckFile(img)
	if err != nil || len(issues) != 0 {
		t.Fatalf("record file fails validation after rank failure: %v %v", err, issues)
	}
	if hdr.NumRecs != 3 {
		t.Fatalf("on-disk numrecs = %d after failover, want 3", hdr.NumRecs)
	}
	// Survivor data of the killed record must be intact on re-read.
	err = mpi.Run(1, mpi.DefaultNet(), func(c *mpi.Comm) error {
		d, err := core.Open(c, fsys, "rec.nc", nctype.NoWrite, nil)
		if err != nil {
			return err
		}
		got := make([]float64, 64)
		for _, r := range []int{0, nprocs - 1} {
			if r == victim {
				continue
			}
			if err := d.GetVaraAll(0, []int64{1, int64(r) * 64}, []int64{1, 64}, got); err != nil {
				return err
			}
			for i, x := range got {
				if want := float64(r*1000 + i + 1); x != want {
					return fmt.Errorf("record 1, rank %d slice, elem %d = %v, want %v", r, i, x, want)
				}
			}
		}
		return d.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWaitAllEmptyQueue: WaitAll with nothing queued is a legal collective
// no-op on every rank — including mixed worlds where only some ranks
// queued work (the fused batch must agree on emptiness collectively).
func TestWaitAllEmptyQueue(t *testing.T) {
	fsys := pfs.New(pfs.DefaultConfig())
	err := mpi.Run(4, mpi.DefaultNet(), func(c *mpi.Comm) error {
		d, err := core.Create(c, fsys, "wq.nc", nctype.Clobber, nil)
		if err != nil {
			return err
		}
		x, _ := d.DefDim("x", 256)
		v, _ := d.DefVar("v", nctype.Int, []int{x})
		if err := d.EndDef(); err != nil {
			return err
		}
		// All ranks empty.
		for i := 0; i < 2; i++ {
			if err := d.WaitAll(); err != nil {
				return fmt.Errorf("empty WaitAll #%d: %w", i, err)
			}
			if got := d.PendingRequests(); got != 0 {
				return fmt.Errorf("PendingRequests = %d after empty WaitAll", got)
			}
		}
		// Only rank 1 queues; everyone still calls WaitAll.
		if c.Rank() == 1 {
			vals := make([]int32, 64)
			for i := range vals {
				vals[i] = int32(i)
			}
			if _, err := d.IPutVara(v, []int64{64}, []int64{64}, vals); err != nil {
				return err
			}
		}
		if err := d.WaitAll(); err != nil {
			return fmt.Errorf("mixed WaitAll: %w", err)
		}
		if got := d.PendingRequests(); got != 0 {
			return fmt.Errorf("PendingRequests = %d after mixed WaitAll", got)
		}
		return d.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// The lone queued write must have landed.
	err = mpi.Run(1, mpi.DefaultNet(), func(c *mpi.Comm) error {
		d, err := core.Open(c, fsys, "wq.nc", nctype.NoWrite, nil)
		if err != nil {
			return err
		}
		got := make([]int32, 64)
		if err := d.GetVaraAll(0, []int64{64}, []int64{64}, got); err != nil {
			return err
		}
		for i, v := range got {
			if v != int32(i) {
				return errors.New("queued write lost through empty-queue WaitAlls")
			}
		}
		return d.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}
