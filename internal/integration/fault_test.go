// Fault-injection scenarios across the full stack: the paper's FLASH
// checkpoint workload under a transient fault rate, and crash points armed
// inside the parallel header commit.
package integration

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"pnetcdf/internal/cdf"
	"pnetcdf/internal/core"
	"pnetcdf/internal/fault"
	"pnetcdf/internal/flash"
	"pnetcdf/internal/iostat"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/pfs"
)

// readPFSFile pulls a file's raw bytes out of the simulated file system.
func readPFSFile(t *testing.T, fsys *pfs.FS, name string) []byte {
	t.Helper()
	pf, _, err := fsys.Open(name, 0)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, pf.Size())
	if len(img) > 0 {
		if _, err := pfs.NewSerialFile(pf, 0).ReadAt(img, 0); err != nil {
			t.Fatal(err)
		}
	}
	return img
}

// flashCfg is a reduced-variable-count FLASH configuration at the paper's
// 8x8x8 block shape, sized so the 8-rank double run stays quick while still
// moving tens of megabytes.
func flashCfg() flash.Config {
	return flash.Config{NXB: 8, NYB: 8, NZB: 8, NGuard: 4, NVar: 12, NPlotVar: 2, BlocksPerProc: 20}
}

// TestFlashCheckpointUnderTransientFaults is the acceptance scenario: an
// 8-process FLASH checkpoint run at a 1% transient fault rate (drawn per
// 64 KiB server-request unit) must complete, produce checkpoints
// byte-identical to the fault-free run, and account the recovery work in
// the retry counters.
func TestFlashCheckpointUnderTransientFaults(t *testing.T) {
	const files = 2
	run := func(fsys *pfs.FS) (imgs [][]byte, retries int64) {
		t.Helper()
		var mu sync.Mutex
		err := mpi.Run(8, mpi.DefaultNet(), func(c *mpi.Comm) error {
			c.Proc().SetStats(iostat.New())
			for i := 0; i < files; i++ {
				if _, err := flash.WriteCheckpointPnetCDF(c, fsys, fmt.Sprintf("chk%d.nc", i), flashCfg(), nil); err != nil {
					return err
				}
			}
			mu.Lock()
			retries += c.Proc().Stats().Get(iostat.IORetries) + c.Proc().Stats().Get(iostat.PfsRetries)
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < files; i++ {
			imgs = append(imgs, readPFSFile(t, fsys, fmt.Sprintf("chk%d.nc", i)))
		}
		return imgs, retries
	}
	clean, _ := run(pfs.New(pfs.DefaultConfig()))
	faulty := pfs.New(pfs.DefaultConfig())
	in := fault.New(fault.Config{Seed: 2003, ReadErrRate: 0.01, WriteErrRate: 0.01, ShortRate: 0.01, FaultUnit: 64 << 10})
	faulty.SetFault(in)
	injected, retries := run(faulty)
	if in.Injected() == 0 {
		t.Fatal("no faults injected at 1%; workload too small to prove anything")
	}
	if retries == 0 {
		t.Fatal("faults injected but no retries accounted in iostat")
	}
	for i := 0; i < files; i++ {
		if len(clean[i]) != len(injected[i]) {
			t.Fatalf("faulted checkpoint %d is %d bytes, clean is %d", i, len(injected[i]), len(clean[i]))
		}
		for j := range clean[i] {
			if clean[i][j] != injected[i][j] {
				t.Fatalf("faulted checkpoint %d diverges from clean run at byte %d", i, j)
			}
		}
		// The checkpoint must also be a valid netCDF file.
		if _, issues, err := cdf.CheckFile(injected[i]); err != nil || len(issues) != 0 {
			t.Fatalf("faulted checkpoint %d fails validation: %v %v", i, err, issues)
		}
	}
}

// TestParallelHeaderCommitCrashSweep arms crash points across the header
// region, record data, and the journal while a parallel dataset grows its
// record count. Whatever byte the "process" dies at, the abandoned file
// must open as the old or the new header — and a write-mode reopen must
// repair it for plain serial readers.
func TestParallelHeaderCommitCrashSweep(t *testing.T) {
	for _, at := range []int64{0, 2, 5, 9, 40, 100, 4096, 1 << 20} {
		at := at
		t.Run(fmt.Sprintf("crash@%d", at), func(t *testing.T) {
			fsys := pfs.New(pfs.DefaultConfig())
			// Build a clean 2-record file.
			err := mpi.Run(2, mpi.DefaultNet(), func(c *mpi.Comm) error {
				d, err := core.Create(c, fsys, "c.nc", nctype.Clobber, nil)
				if err != nil {
					return err
				}
				tdim, _ := d.DefDim("time", 0)
				x, _ := d.DefDim("x", 16)
				v, _ := d.DefVar("v", nctype.Double, []int{tdim, x})
				if err := d.EndDef(); err != nil {
					return err
				}
				buf := make([]float64, 8)
				for i := range buf {
					buf[i] = float64(i + 1)
				}
				for rec := int64(0); rec < 2; rec++ {
					start := []int64{rec, int64(c.Rank()) * 8}
					if err := d.PutVaraAll(v, start, []int64{1, 8}, buf); err != nil {
						return err
					}
				}
				return d.Close()
			})
			if err != nil {
				t.Fatal(err)
			}
			// Reopen, grow to 3 records, and crash during the sync.
			in := fault.New(fault.Config{Seed: 7})
			fsys.SetFault(in)
			err = mpi.Run(2, mpi.DefaultNet(), func(c *mpi.Comm) error {
				d, err := core.Open(c, fsys, "c.nc", nctype.Write, nil)
				if err != nil {
					return err
				}
				buf := make([]float64, 8)
				for i := range buf {
					buf[i] = 99
				}
				if err := d.PutVaraAll(0, []int64{2, int64(c.Rank()) * 8}, []int64{1, 8}, buf); err != nil {
					return err
				}
				if c.Rank() == 0 {
					in.ArmCrash(at, false)
				}
				c.Barrier()
				if err := d.Sync(); err != nil {
					if errors.Is(err, fault.ErrCrashed) || errors.Is(err, mpi.ErrPeerFailed) {
						return nil // process died mid-commit; abandon the file
					}
					return err
				}
				return nil // crash byte not reached by this sync
			})
			fsys.SetFault(nil)
			if err != nil {
				t.Fatal(err)
			}
			// The wreckage must classify: valid in-place header, or a
			// journal holding the new one.
			img := readPFSFile(t, fsys, "c.nc")
			if _, _, err := cdf.CheckFile(append([]byte(nil), img...)); err != nil {
				if rec := cdf.RecoverJournal(img); rec == nil {
					t.Fatalf("crashed file has neither readable header nor journal: %v", err)
				}
			}
			// A write-mode parallel open must recover and repair.
			err = mpi.Run(2, mpi.DefaultNet(), func(c *mpi.Comm) error {
				d, err := core.Open(c, fsys, "c.nc", nctype.Write, nil)
				if err != nil {
					return err
				}
				n := d.NumRecs()
				if n != 2 && n != 3 {
					return fmt.Errorf("NumRecs=%d after crash, want 2 or 3", n)
				}
				got := make([]float64, 8)
				for rec := int64(0); rec < n; rec++ {
					if err := d.GetVaraAll(0, []int64{rec, int64(c.Rank()) * 8}, []int64{1, 8}, got); err != nil {
						return fmt.Errorf("read rec %d: %w", rec, err)
					}
				}
				return d.Close()
			})
			if err != nil {
				t.Fatal(err)
			}
			// After repair, the in-place header is readable again.
			if _, err := cdf.Decode(readPFSFile(t, fsys, "c.nc")); err != nil {
				t.Fatalf("in-place header still torn after write-mode reopen: %v", err)
			}
		})
	}
}
