package pfs

import (
	"sync"
	"sync/atomic"
)

// The chunk store behind every simulated file. Data lives in sparse 256 KiB
// chunks spread over a fixed number of lock shards, so concurrent rank
// goroutines writing disjoint regions of one file do not convoy on a single
// file mutex (DESIGN.md "Hot path: memory and locking discipline").
//
// Consistency model: one chunk access is atomic; a multi-chunk request is
// not. Concurrent requests to overlapping ranges may interleave per chunk —
// the same guarantee a real parallel file system gives unaligned concurrent
// writers, and the reason the MPI-IO layer above takes the range RMW lock
// around its read-modify-write windows.

// storeShards is the number of chunk lock shards per file. Power of two;
// chunks are distributed round-robin, so the k goroutines of a k-rank run
// touching adjacent file regions land on distinct shards.
const storeShards = 32

type storeShard struct {
	mu     sync.Mutex
	chunks map[int64][]byte
	// Pad to a cache line so shard locks on adjacent ranks do not false-share.
	_ [64 - 8]byte //nolint:unused
}

// chunkStore is the sharded chunk map plus the file size.
type chunkStore struct {
	size   atomic.Int64
	shards [storeShards]storeShard
}

func (s *chunkStore) shard(chunkIdx int64) *storeShard {
	return &s.shards[chunkIdx&(storeShards-1)]
}

// grow raises the stored size to at least end (monotonic max via CAS, so
// concurrent writers never shrink each other's growth).
func (s *chunkStore) grow(end int64) {
	for {
		cur := s.size.Load()
		if end <= cur || s.size.CompareAndSwap(cur, end) {
			return
		}
	}
}

// writeAt copies p into the chunks covering [off, off+len(p)). With discard,
// only the size is tracked (timing-only bulk data).
func (s *chunkStore) writeAt(p []byte, off int64, discard bool) {
	s.grow(off + int64(len(p)))
	if discard {
		return
	}
	for len(p) > 0 {
		idx := off / chunkSize
		cOff := off % chunkSize
		n := chunkSize - cOff
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		sh := s.shard(idx)
		sh.mu.Lock()
		c := sh.chunks[idx]
		if c == nil {
			c = make([]byte, chunkSize)
			if sh.chunks == nil {
				sh.chunks = map[int64][]byte{}
			}
			sh.chunks[idx] = c
		}
		copy(c[cOff:cOff+n], p[:n])
		sh.mu.Unlock()
		p = p[n:]
		off += n
	}
}

// readAt fills p from the chunks at off; holes and bytes beyond EOF read as
// zero.
func (s *chunkStore) readAt(p []byte, off int64) {
	for len(p) > 0 {
		idx := off / chunkSize
		cOff := off % chunkSize
		n := chunkSize - cOff
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		sh := s.shard(idx)
		sh.mu.Lock()
		c := sh.chunks[idx]
		if c != nil {
			copy(p[:n], c[cOff:cOff+n])
		}
		sh.mu.Unlock()
		if c == nil {
			clear(p[:n])
		}
		p = p[n:]
		off += n
	}
}

// truncate sets the size, discarding chunks beyond it and zeroing the tail
// of the boundary chunk. It takes every shard lock (in order) so no writer
// holds a chunk mid-copy while its storage is reclaimed.
func (s *chunkStore) truncate(size int64) {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	if size < s.size.Load() {
		first := size / chunkSize
		for i := range s.shards {
			for idx := range s.shards[i].chunks {
				if idx > first {
					delete(s.shards[i].chunks, idx)
				}
			}
		}
		sh := s.shard(first)
		if c := sh.chunks[first]; c != nil {
			clear(c[size%chunkSize:])
		}
	}
	s.size.Store(size)
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
}

// rangeLock grants exclusive access to byte ranges of one file. The data
// sieving write path locks exactly its read-modify-write window, so sieving
// writers touching disjoint regions proceed in parallel instead of
// serializing on one file-wide mutex as they did behind the old rmw lock.
type rangeLock struct {
	mu   sync.Mutex
	cond *sync.Cond
	held []Segment
}

// lock blocks until [off, off+n) overlaps no held range, then claims it.
// Zero-length ranges are no-ops.
func (l *rangeLock) lock(off, n int64) {
	if n <= 0 {
		return
	}
	l.mu.Lock()
	if l.cond == nil {
		l.cond = sync.NewCond(&l.mu)
	}
	for l.overlaps(off, n) {
		l.cond.Wait()
	}
	l.held = append(l.held, Segment{Off: off, Len: n})
	l.mu.Unlock()
}

// unlock releases a range previously claimed with lock. The range must match
// a held claim exactly.
func (l *rangeLock) unlock(off, n int64) {
	if n <= 0 {
		return
	}
	l.mu.Lock()
	for i, h := range l.held {
		if h.Off == off && h.Len == n {
			last := len(l.held) - 1
			l.held[i] = l.held[last]
			l.held = l.held[:last]
			l.mu.Unlock()
			if l.cond != nil {
				l.cond.Broadcast()
			}
			return
		}
	}
	l.mu.Unlock()
	panic("pfs: unlock of range not held")
}

func (l *rangeLock) overlaps(off, n int64) bool {
	for _, h := range l.held {
		if off < h.Off+h.Len && h.Off < off+n {
			return true
		}
	}
	return false
}
