package pfs

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// Concurrent stress over the sharded data plane, meant to run under the race
// detector (verify.sh does): simulated rank goroutines hammer one file's
// chunk shards with disjoint and overlapping vectored I/O, serialize a
// read-modify-write counter through the RMW range lock, and churn the
// RWMutex file table — all the locking added for the zero-copy path.

func TestConcurrentShardedStress(t *testing.T) {
	const (
		ranks   = 16
		iters   = 50
		blockSz = 8 << 10
	)
	fs := New(DefaultConfig())
	f, _ := fs.Create("stress.dat", 0)

	// Region map: [0,8) RMW counter; one chunk at chunkSize holds the
	// overlapping-writer target; disjoint per-rank blocks start at 2*chunkSize.
	const counterOff = int64(0)
	const sharedOff = int64(chunkSize)
	disjointOff := func(rank int) int64 { return int64(2*chunkSize + rank*blockSz) }

	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			h, _, err := fs.Open("stress.dat", 0)
			if err != nil {
				t.Error(err)
				return
			}
			own := make([]byte, blockSz)
			for i := range own {
				own[i] = byte(rank)
			}
			shared := make([]byte, 4<<10)
			for i := range shared {
				shared[i] = byte(rank)
			}
			got := make([]byte, blockSz)
			for i := 0; i < iters; i++ {
				// Disjoint vectored write + read-back on private range.
				segs := []Segment{
					{Off: disjointOff(rank), Len: blockSz / 2},
					{Off: disjointOff(rank) + blockSz/2, Len: blockSz / 2},
				}
				iov := [][]byte{own[:blockSz/4], own[blockSz/4:]}
				if _, err := h.WriteVec(0, segs, iov); err != nil {
					t.Error(err)
					return
				}
				if _, err := h.ReadAt(0, got, disjointOff(rank)); err != nil {
					t.Error(err)
					return
				}
				for j, b := range got {
					if b != byte(rank) {
						t.Errorf("rank %d torn private read at %d: %d", rank, j, b)
						return
					}
				}
				// Overlapping single-chunk write: every rank targets the same
				// range; atomicity is per chunk, so any interleaving is a
				// race-detector workout without a data race.
				if _, err := h.WriteAt(0, shared, sharedOff); err != nil {
					t.Error(err)
					return
				}
				// RMW-locked counter increment: the range lock must make the
				// read-increment-write atomic across ranks.
				h.LockRMW(counterOff, 8)
				cnt := make([]byte, 8)
				if _, err := h.ReadAt(0, cnt, counterOff); err != nil {
					t.Error(err)
					h.UnlockRMW(counterOff, 8)
					return
				}
				binary.BigEndian.PutUint64(cnt, binary.BigEndian.Uint64(cnt)+1)
				if _, err := h.WriteAt(0, cnt, counterOff); err != nil {
					t.Error(err)
					h.UnlockRMW(counterOff, 8)
					return
				}
				h.UnlockRMW(counterOff, 8)
			}
		}(r)
	}
	// Concurrently churn the file table: create/stat/remove other names
	// while the rank goroutines hold and use handles from it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters*4; i++ {
			name := fmt.Sprintf("churn-%d.dat", i%8)
			fs.Create(name, 0)
			if !fs.Exists(name) {
				t.Errorf("churn: %s vanished", name)
				return
			}
			fs.Names()
			if err := fs.Remove(name); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	cnt := make([]byte, 8)
	if _, err := f.ReadAt(0, cnt, counterOff); err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(cnt); got != ranks*iters {
		t.Errorf("RMW counter = %d, want %d (lost updates mean the range lock failed)", got, ranks*iters)
	}
	shared := make([]byte, 4<<10)
	if _, err := f.ReadAt(0, shared, sharedOff); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(shared); i++ {
		if shared[i] != shared[0] {
			t.Errorf("single-chunk write not atomic: byte %d = %d, byte 0 = %d", i, shared[i], shared[0])
			break
		}
	}
	for r := 0; r < ranks; r++ {
		got := make([]byte, blockSz)
		if _, err := f.ReadAt(0, got, disjointOff(r)); err != nil {
			t.Fatal(err)
		}
		for j, b := range got {
			if b != byte(r) {
				t.Fatalf("final private block of rank %d corrupt at %d: %d", r, j, b)
			}
		}
	}
}
