package pfs

import (
	"pnetcdf/internal/fault"
	"pnetcdf/internal/iostat"
)

// SerialFile adapts a pfs File to a plain sequential-error interface (the
// shape of os.File's random-access subset) while tracking virtual time
// internally. The serial netCDF library runs on top of it, which is how the
// paper's "serial netCDF through one process" baseline gets timed under the
// same storage model as the parallel library.
//
// Transient faults injected at the pfs layer are retried here under
// fault.DefaultRetryPolicy (the serial library has no MPI-IO layer to do
// it); permanent errors propagate to the caller.
type SerialFile struct {
	f     *File
	now   float64
	retry fault.RetryPolicy
}

// NewSerialFile wraps f with an internal clock starting at t.
func NewSerialFile(f *File, t float64) *SerialFile {
	return &SerialFile{f: f, now: t, retry: fault.DefaultRetryPolicy()}
}

// ReadAt implements io.ReaderAt against the simulated store. Reads beyond
// EOF zero-fill, matching the zero-fill semantics netCDF relies on.
func (s *SerialFile) ReadAt(p []byte, off int64) (int, error) {
	err := s.do(func(t float64) (float64, error) { return s.f.ReadAt(t, p, off) })
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

// WriteAt implements io.WriterAt against the simulated store.
func (s *SerialFile) WriteAt(p []byte, off int64) (int, error) {
	err := s.do(func(t float64) (float64, error) { return s.f.WriteAt(t, p, off) })
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

// do runs op under the retry policy, advancing the internal clock through
// backoff waits and recording retry effort in the handle's iostat.
func (s *SerialFile) do(op func(t float64) (float64, error)) error {
	done, retries, backoff, err := s.retry.Do(s.now, op)
	s.now = done
	if retries > 0 {
		s.f.stats.Add(iostat.PfsRetries, int64(retries))
		s.f.stats.AddTime(iostat.PfsBackoffTimeNs, backoff)
	}
	return err
}

// Size returns the file size.
func (s *SerialFile) Size() (int64, error) { return s.f.Size(), nil }

// Truncate resizes the file.
//
//nclint:allow=accounting -- metadata-only: no bytes move, so there is no transfer size for the cost model to charge
func (s *SerialFile) Truncate(n int64) error {
	s.f.Truncate(n)
	return nil
}

// Sync flushes, advancing the clock past all pending server work.
func (s *SerialFile) Sync() error {
	s.now = s.f.Sync(s.now)
	return nil
}

// Close is a no-op for the simulated store.
func (s *SerialFile) Close() error { return nil }

// Clock returns the handle's current virtual time.
func (s *SerialFile) Clock() float64 { return s.now }

// SetClock resets the handle's virtual time (benchmark phase boundaries).
func (s *SerialFile) SetClock(t float64) { s.now = t }
