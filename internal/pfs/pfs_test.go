package pfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func testFS() *FS {
	cfg := DefaultConfig()
	return New(cfg)
}

func TestCreateOpenRemove(t *testing.T) {
	fs := testFS()
	f, t1 := fs.Create("a.nc", 0)
	if t1 <= 0 {
		t.Fatal("Create charged no time")
	}
	if f.Name() != "a.nc" || f.Size() != 0 {
		t.Fatalf("fresh file: name=%q size=%d", f.Name(), f.Size())
	}
	if !fs.Exists("a.nc") || fs.Exists("b.nc") {
		t.Fatal("Exists wrong")
	}
	if _, _, err := fs.Open("missing", 0); err == nil {
		t.Fatal("Open missing succeeded")
	}
	g, _, err := fs.Open("a.nc", t1)
	if err != nil {
		t.Fatal(err)
	}
	// Handles share data.
	f.WriteAt(0, []byte("xyz"), 0)
	buf := make([]byte, 3)
	g.ReadAt(0, buf, 0)
	if string(buf) != "xyz" {
		t.Fatalf("shared data: %q", buf)
	}
	if err := fs.Remove("a.nc"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("a.nc"); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	fs := testFS()
	f, _ := fs.Create("f", 0)
	data := make([]byte, 3*chunkSize+123) // spans chunks with odd tail
	for i := range data {
		data[i] = byte(i * 7)
	}
	f.WriteAt(0, data, 41) // unaligned offset
	got := make([]byte, len(data))
	f.ReadAt(0, got, 41)
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch across chunk boundaries")
	}
	if f.Size() != 41+int64(len(data)) {
		t.Fatalf("size = %d", f.Size())
	}
	// Holes and beyond-EOF reads are zero.
	head := make([]byte, 41)
	f.ReadAt(0, head, 0)
	for _, b := range head {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
	tail := make([]byte, 10)
	f.ReadAt(0, tail, f.Size()+100)
	for _, b := range tail {
		if b != 0 {
			t.Fatal("beyond-EOF not zero")
		}
	}
}

func TestVectoredIO(t *testing.T) {
	fs := testFS()
	f, _ := fs.Create("f", 0)
	segs := []Segment{{Off: 10, Len: 4}, {Off: 100, Len: 6}, {Off: 1 << 20, Len: 5}}
	src := []byte("aaaabbbbbbccccc")
	f.WriteV(0, segs, src)
	dst := make([]byte, len(src))
	f.ReadV(0, segs, dst)
	if !bytes.Equal(dst, src) {
		t.Fatalf("vectored round trip: %q", dst)
	}
	one := make([]byte, 6)
	f.ReadAt(0, one, 100)
	if string(one) != "bbbbbb" {
		t.Fatalf("middle segment: %q", one)
	}
}

func TestTruncate(t *testing.T) {
	fs := testFS()
	f, _ := fs.Create("f", 0)
	data := bytes.Repeat([]byte{0xFF}, 2*chunkSize)
	f.WriteAt(0, data, 0)
	f.Truncate(100)
	if f.Size() != 100 {
		t.Fatalf("size after truncate = %d", f.Size())
	}
	f.Truncate(2 * chunkSize)
	got := make([]byte, 2*chunkSize)
	f.ReadAt(0, got, 0)
	for i := 0; i < 100; i++ {
		if got[i] != 0xFF {
			t.Fatal("truncate destroyed retained data")
		}
	}
	for i := 100; i < len(got); i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d not zeroed after shrink+grow", i)
		}
	}
}

func TestTimeMonotonicAndSizeScaling(t *testing.T) {
	fs := testFS()
	f, t0 := fs.Create("f", 0)
	small := make([]byte, 4<<10)
	big := make([]byte, 16<<20)
	t1, _ := f.WriteAt(t0, small, 0)
	if t1 <= t0 {
		t.Fatal("write completion not after issue")
	}
	fs.ResetClock()
	ts, _ := f.WriteAt(0, small, 0) // duration of small write from idle
	fs.ResetClock()
	tb, _ := f.WriteAt(0, big, 0)
	if tb <= ts {
		t.Fatalf("16 MB write (%v) not slower than 4 KB (%v)", tb, ts)
	}
}

func TestAggregateBandwidthSaturates(t *testing.T) {
	// Total service time for N bytes spread over the servers cannot imply
	// more than NumServers * WriteBW of aggregate bandwidth.
	fs := testFS()
	f, _ := fs.Create("f", 0)
	nbytes := int64(256 << 20)
	done, _ := f.WriteV(0, []Segment{{Off: 0, Len: nbytes}}, make([]byte, nbytes))
	bw := float64(nbytes) / done
	if bw > fs.PeakWriteBW()*1.01 {
		t.Fatalf("write bandwidth %.0f exceeds peak %.0f", bw, fs.PeakWriteBW())
	}
	// And it should get reasonably close for one huge contiguous write
	// pipelined against the client link... unless the client link itself is
	// the bottleneck, which it is here by design (single writer).
	if bw > fs.Config().ClientBW*1.01 {
		t.Fatalf("single client exceeded its link: %.0f > %.0f", bw, fs.Config().ClientBW)
	}
}

func TestManyClientsBeatOneClient(t *testing.T) {
	// The core scaling effect of Figure 6: multiple concurrent writers
	// achieve higher aggregate bandwidth than one, up to the server pool.
	cfg := DefaultConfig()
	total := int64(64 << 20)

	oneFS := New(cfg)
	f1, _ := oneFS.Create("f", 0)
	oneDone, _ := f1.WriteV(0, []Segment{{0, total}}, make([]byte, total))

	nClients := 8
	manyFS := New(cfg)
	f2, _ := manyFS.Create("f", 0)
	share := total / int64(nClients)
	var wg sync.WaitGroup
	dones := make([]float64, nClients)
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			off := int64(c) * share
			dones[c], _ = f2.WriteV(0, []Segment{{off, share}}, make([]byte, share))
		}(c)
	}
	wg.Wait()
	manyDone := 0.0
	for _, d := range dones {
		if d > manyDone {
			manyDone = d
		}
	}
	if manyDone >= oneDone {
		t.Fatalf("8 clients (%.3fs) not faster than 1 client (%.3fs)", manyDone, oneDone)
	}
}

func TestSeekPenaltyForDiscontiguity(t *testing.T) {
	// Many small scattered segments must cost far more than one contiguous
	// request of the same total size — the reason data sieving and two-phase
	// I/O exist.
	cfg := DefaultConfig()
	total := int64(8 << 20)

	fsA := New(cfg)
	fA, _ := fsA.Create("f", 0)
	contig, _ := fA.WriteV(0, []Segment{{0, total}}, make([]byte, total))

	fsB := New(cfg)
	fB, _ := fsB.Create("f", 0)
	const nseg = 2048
	segs := make([]Segment, nseg)
	segLen := total / nseg
	for i := range segs {
		segs[i] = Segment{Off: int64(i) * segLen * 3, Len: segLen} // strided
	}
	scattered, _ := fB.WriteV(0, segs, make([]byte, total))

	if scattered < 3*contig {
		t.Fatalf("scattered (%.4fs) not clearly slower than contiguous (%.4fs)", scattered, contig)
	}
}

func TestReadsFasterThanWrites(t *testing.T) {
	fs := testFS()
	f, _ := fs.Create("f", 0)
	n := int64(32 << 20)
	buf := make([]byte, n)
	wDone, _ := f.WriteV(0, []Segment{{0, n}}, buf)
	fs.ResetClock()
	rDone, _ := f.ReadV(0, []Segment{{0, n}}, buf)
	if rDone >= wDone {
		t.Fatalf("read (%.3fs) not faster than write (%.3fs)", rDone, wDone)
	}
}

func TestMergeSegments(t *testing.T) {
	got := merge([]Segment{{10, 5}, {15, 5}, {30, 2}, {0, 4}, {31, 10}})
	want := []Segment{{0, 4}, {10, 10}, {30, 11}}
	if len(got) != len(want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v, want %v", got, want)
		}
	}
}

func TestCountCongruent(t *testing.T) {
	// Oracle by brute force.
	f := func(a8, span8, r8, m8 uint8) bool {
		a, span := int64(a8), int64(span8)
		m := int64(m8%16) + 1
		r := int64(r8) % m
		b := a + span
		var want int64
		for k := a; k <= b; k++ {
			if k%m == r {
				want++
			}
		}
		return countCongruent(a, b, r, m) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRandomReadAfterWrite(t *testing.T) {
	// Property: arbitrary interleaved writes then reads behave like a flat
	// byte array.
	fs := testFS()
	f, _ := fs.Create("f", 0)
	oracle := make([]byte, 1<<20)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		off := rng.Int63n(int64(len(oracle) - 4096))
		n := rng.Intn(4096) + 1
		if rng.Intn(2) == 0 {
			p := make([]byte, n)
			rng.Read(p)
			copy(oracle[off:], p)
			f.WriteAt(0, p, off)
		} else {
			got := make([]byte, n)
			f.ReadAt(0, got, off)
			if !bytes.Equal(got, oracle[off:off+int64(n)]) {
				t.Fatalf("iter %d: read mismatch at %d+%d", i, off, n)
			}
		}
	}
}

func TestDiscardModeTracksSizeOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Discard = true
	fs := New(cfg)
	f, _ := fs.Create("f", 0)
	done, _ := f.WriteAt(0, bytes.Repeat([]byte{1}, 1<<20), 0)
	if done <= 0 {
		t.Fatal("discard mode charged no time")
	}
	if f.Size() != 1<<20 {
		t.Fatalf("discard mode lost size: %d", f.Size())
	}
	got := make([]byte, 16)
	f.ReadAt(0, got, 0)
	for _, b := range got {
		if b != 0 {
			t.Fatal("discard mode retained data")
		}
	}
}

func TestSerialFileAdapter(t *testing.T) {
	fs := testFS()
	f, t0 := fs.Create("f", 0)
	s := NewSerialFile(f, t0)
	if _, err := s.WriteAt([]byte("hello"), 3); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := s.ReadAt(buf, 3); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("adapter round trip: %q", buf)
	}
	if s.Clock() <= t0 {
		t.Fatal("adapter clock did not advance")
	}
	if sz, _ := s.Size(); sz != 8 {
		t.Fatalf("size = %d", sz)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if sz, _ := s.Size(); sz != 4 {
		t.Fatalf("size after truncate = %d", sz)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNamesSorted(t *testing.T) {
	fs := testFS()
	for _, n := range []string{"c", "a", "b"} {
		fs.Create(n, 0)
	}
	names := fs.Names()
	if fmt.Sprint(names) != "[a b c]" {
		t.Fatalf("Names = %v", names)
	}
}

func TestUnalignedWritePaysRMW(t *testing.T) {
	// A write of one stripe's worth of data that is stripe-aligned must be
	// cheaper than the same write misaligned by half a stripe (which touches
	// two partial blocks and pays two read-modify-writes).
	// At a size where every server is busy either way (so striping
	// parallelism cannot mask the penalty), the misaligned variant touches
	// two partial blocks and pays their read-before-write.
	cfg := DefaultConfig()
	stripe := cfg.StripeSize
	n := stripe * int64(2*cfg.NumServers) // two full rounds of the server ring

	fsA := New(cfg)
	fa, _ := fsA.Create("a", 0)
	aligned, _ := fa.WriteV(0, []Segment{{Off: 0, Len: n}}, make([]byte, n))

	fsB := New(cfg)
	fb, _ := fsB.Create("b", 0)
	misaligned, _ := fb.WriteV(0, []Segment{{Off: stripe / 2, Len: n}}, make([]byte, n))

	if misaligned <= aligned {
		t.Fatalf("misaligned write (%.5fs) not costlier than aligned (%.5fs)", misaligned, aligned)
	}
	// Reads never pay RMW: the gap must be much smaller.
	fsC := New(cfg)
	fc, _ := fsC.Create("c", 0)
	alignedR, _ := fc.ReadV(0, []Segment{{Off: 0, Len: n}}, make([]byte, n))
	fsD := New(cfg)
	fd, _ := fsD.Create("d", 0)
	misalignedR, _ := fd.ReadV(0, []Segment{{Off: stripe / 2, Len: n}}, make([]byte, n))
	if misalignedR > alignedR*1.10 {
		t.Fatalf("misaligned read (%.5fs) penalized like a write (aligned %.5fs)", misalignedR, alignedR)
	}
}

func TestDiscardThresholdKeepsMetadata(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Discard = true
	cfg.DiscardThreshold = 4096
	fs := New(cfg)
	f, _ := fs.Create("f", 0)
	// Small (metadata-sized) write is retained.
	f.WriteAt(0, []byte("superblock!"), 0)
	// Large (bulk) write is dropped.
	f.WriteAt(0, bytes.Repeat([]byte{0xAB}, 8192), 1024)
	small := make([]byte, 11)
	f.ReadAt(0, small, 0)
	if string(small) != "superblock!" {
		t.Fatalf("metadata lost in discard mode: %q", small)
	}
	bulk := make([]byte, 16)
	f.ReadAt(0, bulk, 2048)
	for _, b := range bulk {
		if b != 0 {
			t.Fatal("bulk data retained in discard mode")
		}
	}
	if f.Size() != 1024+8192 {
		t.Fatalf("size = %d", f.Size())
	}
}
