// Package pfs simulates a striped parallel file system in the spirit of the
// GPFS installations used in the paper's evaluation (SDSC Blue Horizon with
// 12 I/O nodes, ASCI White Frost with a 2-node I/O system).
//
// Correctness and performance are deliberately separated:
//
//   - Data is stored for real. Every write lands in sparse 256 KiB chunks
//     and every read returns exactly the bytes written, so the libraries
//     built on top are verified end to end, byte for byte.
//
//   - Time is virtual. Each I/O call takes the caller's virtual time and
//     returns the completion time under a cost model with a fixed pool of
//     I/O servers: a request is charged network injection on the client
//     link (pipelined in windows), then per-server seek time per
//     discontiguous extent plus bytes/bandwidth, serialized on each
//     server's queue. Aggregate bandwidth therefore saturates at
//     NumServers x per-server bandwidth no matter how many clients issue
//     I/O — the effect behind the flattening curves in the paper's
//     Figure 6 — while many small discontiguous requests drown in seek
//     time — the effect that makes collective I/O win.
//
// The cost model is the substitution for the paper's physical disk arrays
// (DESIGN.md §2); all libraries above it move real bytes.
//
// The data plane is built not to convoy: the file table is behind an
// RWMutex, chunk data behind per-file lock shards (store.go), and the
// vectored entry points ReadVec/WriteVec accept an iovec so callers hand
// their round buffers down without a coalescing copy. Only the cost model's
// server queues (srvMu) are a single lock, because they model a genuinely
// shared resource.
package pfs

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"pnetcdf/internal/fault"
	"pnetcdf/internal/iostat"
	"pnetcdf/internal/span"
)

// Segment is one contiguous file extent of an I/O request.
type Segment struct {
	Off int64
	Len int64
}

// Config describes the simulated storage system.
type Config struct {
	// NumServers is the number of I/O servers (disks) the file system
	// stripes across.
	NumServers int
	// StripeSize is the striping unit in bytes.
	StripeSize int64
	// SeekTime is charged per discontiguous extent per server per request.
	SeekTime float64
	// ReadBW and WriteBW are per-server bandwidths in bytes/second.
	ReadBW  float64
	WriteBW float64
	// ClientBW is the bandwidth of one client's link to the I/O system.
	ClientBW float64
	// NetLatency is the one-way client/server request latency.
	NetLatency float64
	// PerReqOverhead is a fixed per-server charge per request batch
	// (request handling, metadata lookup).
	PerReqOverhead float64
	// PipeChunk is the pipelining window: client injection and server
	// service overlap at this granularity.
	PipeChunk int64
	// OpenCost is the virtual time to open or create a file.
	OpenCost float64
	// SyncCost is the virtual time for a flush barrier.
	SyncCost float64
	// Discard, when true, skips retention of bulk data (timing only):
	// writes of DiscardThreshold bytes or more vanish, smaller writes —
	// file headers, object metadata, group tables — are kept so the
	// libraries' metadata paths still function. Benchmarks over very large
	// synthetic files use it; tests never do.
	Discard bool
	// DiscardThreshold is the bulk-data cutoff for Discard (default 1 MiB).
	DiscardThreshold int64
}

// DefaultConfig resembles the SDSC system in the paper: 12 I/O nodes and an
// aggregate peak of roughly 1.5 GB/s, with writes considerably slower than
// reads (GPFS write commit).
func DefaultConfig() Config {
	return Config{
		NumServers:     12,
		StripeSize:     256 << 10,
		SeekTime:       1.5e-3,
		ReadBW:         125e6,
		WriteBW:        30e6,
		ClientBW:       220e6,
		NetLatency:     60e-6,
		PerReqOverhead: 150e-6,
		PipeChunk:      4 << 20,
		OpenCost:       2e-3,
		SyncCost:       1e-3,
	}
}

const chunkSize = 256 << 10

// FS is one simulated file system instance.
type FS struct {
	cfg Config

	// mu guards the name -> file table. Lookups (Open, Exists) take the
	// read side so concurrent rank goroutines opening handles do not
	// serialize; only Create/Remove take the write side.
	mu    sync.RWMutex
	files map[string]*fileData

	srvMu sync.Mutex
	busy  []float64 // per-server busy-until, virtual seconds

	// inj injects faults into every handle's I/O (nil = faults off).
	inj *fault.Injector
}

type fileData struct {
	name  string
	store chunkStore
	rmw   rangeLock // read-modify-write range lock for data sieving writes
}

// New creates a file system with the given configuration.
func New(cfg Config) *FS {
	if cfg.NumServers < 1 {
		cfg.NumServers = 1
	}
	if cfg.StripeSize < 1 {
		cfg.StripeSize = 256 << 10
	}
	if cfg.PipeChunk < 1 {
		cfg.PipeChunk = 4 << 20
	}
	if cfg.DiscardThreshold < 1 {
		cfg.DiscardThreshold = 1 << 20
	}
	return &FS{
		cfg:   cfg,
		files: map[string]*fileData{},
		busy:  make([]float64, cfg.NumServers),
	}
}

// Config returns the file system's configuration.
func (fs *FS) Config() Config { return fs.cfg }

// SetFault installs (or with nil removes) the fault injector consulted by
// every read/write request on this file system. The injector's short-read
// rate is ignored at this layer: pfs requests complete fully or fail, and
// short transfers are exercised at the store level (fault.FaultyStore).
func (fs *FS) SetFault(in *fault.Injector) { fs.inj = in }

// Fault returns the installed injector (nil when faults are off).
func (fs *FS) Fault() *fault.Injector { return fs.inj }

// PeakReadBW returns the aggregate read bandwidth ceiling in bytes/second.
func (fs *FS) PeakReadBW() float64 { return float64(fs.cfg.NumServers) * fs.cfg.ReadBW }

// PeakWriteBW returns the aggregate write bandwidth ceiling in bytes/second.
func (fs *FS) PeakWriteBW() float64 { return float64(fs.cfg.NumServers) * fs.cfg.WriteBW }

// File is an open handle. Handles are cheap; all handles to one name share
// the underlying data.
type File struct {
	fs *FS
	fd *fileData

	// stats/trace record this handle's I/O (nil = disabled). A handle is
	// owned by one rank in the parallel libraries, so the per-handle
	// collectors are the rank's collectors.
	stats *iostat.Stats
	trace *iostat.Trace
	spans *span.Recorder
	rank  int

	// ioMu and ioPrevEnd model the handle's I/O channel for the async
	// entry points (async.go): an async op starts no earlier than the
	// previous op's virtual completion on this handle, so overlapped
	// requests from one rank still serialize in virtual time the way one
	// client's outstanding requests serialize on its link.
	ioMu      sync.Mutex
	ioPrevEnd float64
}

// SetStats installs the handle's iostat collectors; rank labels trace
// events (use -1 outside an MPI context). Nil collectors disable
// recording.
func (f *File) SetStats(s *iostat.Stats, t *iostat.Trace, rank int) {
	f.stats, f.trace, f.rank = s, t, rank
}

// SetSpans installs the handle's span recorder (nil = disabled). Every
// request batch — including attempts killed by fault injection, which a
// retry above re-issues — records one pfs_read/pfs_write leaf span.
func (f *File) SetSpans(r *span.Recorder) { f.spans = r }

// Create opens name, truncating it to zero length, and charges OpenCost.
func (fs *FS) Create(name string, t float64) (*File, float64) {
	fs.mu.Lock()
	fd := &fileData{name: name}
	fs.files[name] = fd
	fs.mu.Unlock()
	return &File{fs: fs, fd: fd}, t + fs.cfg.OpenCost
}

// Open opens an existing file and charges OpenCost.
func (fs *FS) Open(name string, t float64) (*File, float64, error) {
	fs.mu.RLock()
	fd := fs.files[name]
	fs.mu.RUnlock()
	if fd == nil {
		return nil, t, fmt.Errorf("pfs: open %s: no such file", name)
	}
	return &File{fs: fs, fd: fd}, t + fs.cfg.OpenCost, nil
}

// Exists reports whether name exists.
func (fs *FS) Exists(name string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.files[name] != nil
}

// Remove deletes a file.
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.files[name] == nil {
		return fmt.Errorf("pfs: remove %s: no such file", name)
	}
	delete(fs.files, name)
	return nil
}

// Names returns all file names, sorted.
func (fs *FS) Names() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ResetClock zeroes the server queues; harnesses call it between measured
// phases so one phase's backlog does not leak into the next.
func (fs *FS) ResetClock() {
	fs.srvMu.Lock()
	for i := range fs.busy {
		fs.busy[i] = 0
	}
	fs.srvMu.Unlock()
}

// Name returns the file's name.
func (f *File) Name() string { return f.fd.name }

// Size returns the file's current size in bytes.
func (f *File) Size() int64 { return f.fd.store.size.Load() }

// Truncate sets the file size, discarding data beyond it.
//
//nclint:allow=accounting -- metadata-only: no bytes move, so there is no transfer size for the cost model to charge
func (f *File) Truncate(size int64) { f.fd.store.truncate(size) }

// LockRMW acquires the file's read-modify-write range lock over
// [off, off+n). ROMIO-style data sieving writes take it around their
// read/modify/write window so concurrent sieving writers to overlapping
// regions do not lose updates; writers to disjoint windows proceed in
// parallel.
func (f *File) LockRMW(off, n int64) { f.fd.rmw.lock(off, n) }

// UnlockRMW releases a range claimed with LockRMW (same off and n).
func (f *File) UnlockRMW(off, n int64) { f.fd.rmw.unlock(off, n) }

// WriteAt writes p at off, issued at virtual time t, and returns the
// completion time. Errors are injected faults: fault.IsTransient errors may
// clear on a re-issue (writes are idempotent — re-issuing rewrites the full
// range), others are permanent.
func (f *File) WriteAt(t float64, p []byte, off int64) (float64, error) {
	return f.WriteVec(t, []Segment{{Off: off, Len: int64(len(p))}}, [][]byte{p})
}

// ReadAt reads len(p) bytes at off, issued at virtual time t, and returns
// the completion time.
func (f *File) ReadAt(t float64, p []byte, off int64) (float64, error) {
	return f.ReadVec(t, []Segment{{Off: off, Len: int64(len(p))}}, [][]byte{p})
}

// WriteV writes the segments, taking consecutive bytes from src, as one
// request batch.
func (f *File) WriteV(t float64, segs []Segment, src []byte) (float64, error) {
	return f.WriteVec(t, segs, [][]byte{src})
}

// ReadV reads the segments into consecutive bytes of dst as one request
// batch.
func (f *File) ReadV(t float64, segs []Segment, dst []byte) (float64, error) {
	return f.ReadVec(t, segs, [][]byte{dst})
}

// inject consults the file system's injector for one request batch and
// returns its outcome. total is the payload size; off identifies the batch
// by its first byte.
func (f *File) inject(op fault.Op, segs []Segment, total int64) fault.Outcome {
	off := int64(0)
	if len(segs) > 0 {
		off = segs[0].Off
	}
	return f.fs.inj.Decide(f.rank, op, off, total)
}

// iovTotal sums an iovec's byte count.
func iovTotal(iov [][]byte) int64 {
	var n int64
	for _, p := range iov {
		n += int64(len(p))
	}
	return n
}

// iovCursor walks an iovec as one logical byte stream.
type iovCursor struct {
	iov []([]byte)
	i   int // current iovec entry
	pos int // consumed bytes within entry i
}

// next returns the longest contiguous piece available at the cursor, at most
// n bytes, and advances past it.
func (c *iovCursor) next(n int64) []byte {
	for c.i < len(c.iov) && c.pos == len(c.iov[c.i]) {
		c.i++
		c.pos = 0
	}
	p := c.iov[c.i][c.pos:]
	if int64(len(p)) > n {
		p = p[:n]
	}
	c.pos += len(p)
	return p
}

// WriteVec writes the segments, taking consecutive bytes from the iovec, as
// one request batch. Segments should be sorted and non-overlapping; the cost
// model charges one seek per (merged) extent per server, identically to an
// equivalent WriteV — the iovec only removes the caller's coalescing copy.
// The iovec's total length must equal the segments' total length; entry
// boundaries need not align with segment boundaries.
//
// Under fault injection a transient error leaves an injector-chosen prefix
// of the payload on disk (the bytes that moved before the request died); a
// re-issue of the identical request is safe and rewrites the full range. An
// armed crash point keeps only the bytes before the crash byte, optionally
// truncates the file, and fails permanently with fault.ErrCrashed.
func (f *File) WriteVec(t float64, segs []Segment, iov [][]byte) (float64, error) {
	var total int64
	for _, s := range segs {
		total += s.Len
	}
	if n := iovTotal(iov); n != total {
		return t, fmt.Errorf("pfs: writevec iovec holds %d bytes, segments need %d", n, total)
	}
	t0 := t
	if f.fs.inj != nil {
		out := f.inject(fault.OpWrite, segs, total)
		t += out.Delay
		if out.Err != nil {
			f.applyWritePrefix(segs, iov, out)
			if out.TruncateTo >= 0 {
				f.Truncate(out.TruncateTo)
			}
			f.stats.Add(iostat.PfsFaultsInjected, 1)
			done := t + f.fs.cfg.NetLatency
			f.spans.Record(span.PFSWrite, -1, t0, done, out.N)
			return done, out.Err
		}
		if out.Delay > 0 {
			f.stats.Add(iostat.PfsFaultsInjected, 1)
		}
	}
	f.storeWriteVec(segs, iov, total)
	done, extents := f.fs.charge(t, segs, false, f.stats)
	f.record(iostat.PfsWriteCalls, iostat.PfsBytesWritten, iostat.PfsWriteExtents,
		"write", t, done, segs, total, extents)
	f.spans.Record(span.PFSWrite, -1, t0, done, total)
	return done, nil
}

// storeWriteVec lands the full payload: each segment takes the next bytes of
// the iovec, split into at most chunk-sized pieces by the cursor.
func (f *File) storeWriteVec(segs []Segment, iov [][]byte, total int64) {
	cur := iovCursor{iov: iov}
	for _, s := range segs {
		discard := f.fs.cfg.Discard && s.Len >= f.fs.cfg.DiscardThreshold
		off := s.Off
		for remain := s.Len; remain > 0; {
			p := cur.next(remain)
			f.fd.store.writeAt(p, off, discard)
			off += int64(len(p))
			remain -= int64(len(p))
		}
	}
	_ = total
}

// applyWritePrefix stores the partial payload a faulted write leaves
// behind. For a crash the cut is by absolute file offset (out.N bytes past
// the first segment's start); for a transient error it is the first out.N
// payload bytes. Within an affected segment the prefix lands byte-exact.
func (f *File) applyWritePrefix(segs []Segment, iov [][]byte, out fault.Outcome) {
	remain := out.N
	cur := iovCursor{iov: iov}
	for _, s := range segs {
		if remain <= 0 {
			return
		}
		discard := f.fs.cfg.Discard && s.Len >= f.fs.cfg.DiscardThreshold
		off := s.Off
		segRemain := s.Len
		for segRemain > 0 {
			p := cur.next(segRemain)
			if int64(len(p)) > remain {
				p = p[:remain]
			}
			if len(p) > 0 {
				f.fd.store.writeAt(p, off, discard)
			}
			off += int64(len(p))
			segRemain -= int64(len(p))
			remain -= int64(len(p))
			if remain <= 0 {
				// Skip the rest of this segment in the cursor before
				// returning (nothing left to land anywhere).
				return
			}
		}
	}
}

// ReadVec reads the segments into consecutive bytes of the iovec as one
// request batch. The iovec's total length must equal the segments' total
// length; entry boundaries need not align with segment boundaries.
func (f *File) ReadVec(t float64, segs []Segment, iov [][]byte) (float64, error) {
	var total int64
	for _, s := range segs {
		total += s.Len
	}
	if n := iovTotal(iov); n != total {
		return t, fmt.Errorf("pfs: readvec iovec holds %d bytes, segments need %d", n, total)
	}
	t0 := t
	if f.fs.inj != nil {
		out := f.inject(fault.OpRead, segs, total)
		t += out.Delay
		if out.Err != nil {
			f.stats.Add(iostat.PfsFaultsInjected, 1)
			done := t + f.fs.cfg.NetLatency
			f.spans.Record(span.PFSRead, -1, t0, done, 0)
			return done, out.Err
		}
		if out.Delay > 0 {
			f.stats.Add(iostat.PfsFaultsInjected, 1)
		}
	}
	cur := iovCursor{iov: iov}
	for _, s := range segs {
		off := s.Off
		for remain := s.Len; remain > 0; {
			p := cur.next(remain)
			f.fd.store.readAt(p, off)
			off += int64(len(p))
			remain -= int64(len(p))
		}
	}
	done, extents := f.fs.charge(t, segs, true, f.stats)
	f.record(iostat.PfsReadCalls, iostat.PfsBytesRead, iostat.PfsReadExtents,
		"read", t, done, segs, total, extents)
	f.spans.Record(span.PFSRead, -1, t0, done, total)
	return done, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// record accumulates one request batch's counters and trace event.
func (f *File) record(calls, bytes, exts iostat.Counter, op string, start, end float64, segs []Segment, total int64, extents int) {
	if f.stats == nil && f.trace == nil {
		return
	}
	f.stats.Add(calls, 1)
	f.stats.Add(bytes, total)
	f.stats.Add(exts, int64(extents))
	off := int64(-1)
	if len(segs) > 0 {
		off = segs[0].Off
	}
	f.trace.Record(iostat.Event{
		Layer: "pfs", Op: op, Rank: f.rank,
		Off: off, Len: total, Extents: extents, Start: start, End: end,
	})
}

// Sync flushes; a fixed-cost barrier against all servers.
func (f *File) Sync(t float64) float64 {
	fs := f.fs
	fs.srvMu.Lock()
	defer fs.srvMu.Unlock()
	done := t + fs.cfg.SyncCost
	for i := range fs.busy {
		if fs.busy[i] > done {
			done = fs.busy[i]
		}
	}
	return done + fs.cfg.NetLatency
}

// charge applies the cost model for one request batch issued at t and
// returns the completion time plus the number of merged extents. When st is
// non-nil it is credited with the seek/transfer time split and the
// partial-block read-modify-write penalty the model charged.
func (fs *FS) charge(t float64, segs []Segment, read bool, st *iostat.Stats) (float64, int) {
	cfg := fs.cfg
	var total int64
	for _, s := range segs {
		total += s.Len
	}
	nMerged := 0
	if total == 0 {
		forEachMerged(segs, func(Segment) { nMerged++ })
		return t + cfg.NetLatency, nMerged
	}
	// Per-server extent counts and byte totals; for writes, also the
	// distinct partially-covered stripe blocks, which cost a
	// read-modify-write on GPFS-class systems (the reason ROMIO aligns
	// collective-buffering file domains to the stripe size).
	extents := make([]int64, cfg.NumServers)
	bytes := make([]int64, cfg.NumServers)
	rmwBlocks := map[int64]bool{}
	forEachMerged(segs, func(s Segment) {
		nMerged++
		if s.Len == 0 {
			return
		}
		first := s.Off / cfg.StripeSize
		last := (s.Off + s.Len - 1) / cfg.StripeSize
		if !read {
			if s.Off%cfg.StripeSize != 0 {
				rmwBlocks[first] = true
			}
			if (s.Off+s.Len)%cfg.StripeSize != 0 {
				rmwBlocks[last] = true
			}
		}
		for srv := 0; srv < cfg.NumServers; srv++ {
			cnt := countCongruent(first, last, int64(srv), int64(cfg.NumServers))
			if cnt == 0 {
				continue
			}
			extents[srv]++
			b := cnt * cfg.StripeSize
			if first%int64(cfg.NumServers) == int64(srv) {
				b -= s.Off - first*cfg.StripeSize
			}
			if last%int64(cfg.NumServers) == int64(srv) {
				b -= (last+1)*cfg.StripeSize - (s.Off + s.Len)
			}
			bytes[srv] += b
		}
	})
	// Charge each partial block's read-before-write to its server.
	rmwExtra := make([]float64, cfg.NumServers)
	for blk := range rmwBlocks {
		srv := int(blk % int64(cfg.NumServers))
		rmwExtra[srv] += cfg.SeekTime + float64(cfg.StripeSize)/cfg.ReadBW
	}
	bw := cfg.WriteBW
	if read {
		bw = cfg.ReadBW
	}
	if st != nil {
		var seek, xfer float64
		for srv := 0; srv < cfg.NumServers; srv++ {
			if bytes[srv] == 0 {
				continue
			}
			seek += float64(extents[srv])*cfg.SeekTime + cfg.PerReqOverhead
			xfer += float64(bytes[srv]) / bw
		}
		// Partial-block penalty: one seek plus one stripe read per block.
		seek += float64(len(rmwBlocks)) * cfg.SeekTime
		xfer += float64(len(rmwBlocks)) * float64(cfg.StripeSize) / cfg.ReadBW
		st.AddTime(iostat.PfsSeekTimeNs, seek)
		st.AddTime(iostat.PfsTransferTimeNs, xfer)
		st.Add(iostat.PfsRMWBlocks, int64(len(rmwBlocks)))
		st.Add(iostat.PfsRMWBytes, int64(len(rmwBlocks))*cfg.StripeSize)
	}
	// Pipeline the client link against the server queues in windows.
	nWindows := (total + cfg.PipeChunk - 1) / cfg.PipeChunk
	fs.srvMu.Lock()
	defer fs.srvMu.Unlock()
	complete := t
	for w := int64(0); w < nWindows; w++ {
		// Client has injected (w+1) windows by this time.
		injected := (w + 1) * cfg.PipeChunk
		if injected > total {
			injected = total
		}
		arrive := t + cfg.NetLatency + float64(injected)/cfg.ClientBW
		for srv := 0; srv < cfg.NumServers; srv++ {
			if bytes[srv] == 0 {
				continue
			}
			service := float64(bytes[srv]) / float64(nWindows) / bw
			if w == 0 {
				service += cfg.PerReqOverhead + float64(extents[srv])*cfg.SeekTime + rmwExtra[srv]
			}
			start := math.Max(arrive, fs.busy[srv])
			fs.busy[srv] = start + service
			if fs.busy[srv] > complete {
				complete = fs.busy[srv]
			}
		}
	}
	return complete + cfg.NetLatency, nMerged
}

// forEachMerged visits the coalesced extents of segs (adjacent or
// overlapping segments merged) so the seek charge reflects true
// discontiguity. The common case — callers pass sorted segments — streams
// with no allocation; unsorted input falls back to a sorted copy.
func forEachMerged(segs []Segment, fn func(Segment)) {
	if len(segs) == 0 {
		return
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Off < segs[i-1].Off {
			sorted := make([]Segment, len(segs))
			copy(sorted, segs)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i].Off < sorted[j].Off })
			segs = sorted
			break
		}
	}
	cur := segs[0]
	for _, s := range segs[1:] {
		if s.Off <= cur.Off+cur.Len {
			if end := s.Off + s.Len; end > cur.Off+cur.Len {
				cur.Len = end - cur.Off
			}
		} else {
			fn(cur)
			cur = s
		}
	}
	fn(cur)
}

// merge coalesces sorted, adjacent or overlapping segments; retained for
// tests and callers that need the materialized list.
func merge(segs []Segment) []Segment {
	if len(segs) <= 1 {
		return segs
	}
	out := make([]Segment, 0, len(segs))
	forEachMerged(segs, func(s Segment) { out = append(out, s) })
	return out
}

// countCongruent counts integers in [a, b] congruent to r mod m.
func countCongruent(a, b, r, m int64) int64 {
	if b < a {
		return 0
	}
	// First k >= a with k ≡ r (mod m).
	k := a + ((r-a)%m+m)%m
	if k > b {
		return 0
	}
	return (b-k)/m + 1
}
