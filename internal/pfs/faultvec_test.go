package pfs

import (
	"bytes"
	"errors"
	"testing"

	"pnetcdf/internal/fault"
	"pnetcdf/internal/iostat"
)

// Fault coverage for the vectored entry points: a transient error or crash
// must leave exactly the injector-chosen payload prefix on disk — byte-exact
// even when the cut lands mid-iovec-entry and mid-segment — a re-issue must
// resume to a complete, correct write, and iostat must count only the bytes
// the successful batch moved.

// vecSegs/vecIov build a 3-segment, 60-byte request whose iovec entry
// boundaries (7, 25, 28) align with neither each other nor the segment
// boundaries (10, 20, 30).
func vecSegs() []Segment {
	return []Segment{{Off: 0, Len: 10}, {Off: 100, Len: 20}, {Off: 200, Len: 30}}
}

func vecPayload() []byte {
	p := make([]byte, 60)
	for i := range p {
		p[i] = byte(i + 1) // nonzero, so "not written" is distinguishable
	}
	return p
}

func vecIov(p []byte) [][]byte {
	return [][]byte{p[:7], p[7:32], p[32:]}
}

// findWriteFaultSeed scans for a seed whose first write decision for this
// batch is a transient error cutting the payload strictly inside (lo, hi),
// and whose first retry succeeds. Probing a throwaway injector per seed
// keeps the real injector's occurrence counters clean.
func findWriteFaultSeed(t *testing.T, cfg fault.Config, off, n, lo, hi int64) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 50000; seed++ {
		cfg.Seed = seed
		in := fault.New(cfg)
		first := in.Decide(0, fault.OpWrite, off, n)
		if !errors.Is(first.Err, fault.ErrTransient) || first.N <= lo || first.N >= hi {
			continue
		}
		if retry := in.Decide(0, fault.OpWrite, off, n); retry.Err == nil && retry.N == n {
			return seed
		}
	}
	t.Fatal("no suitable fault seed found")
	return 0
}

// readBack returns the file content over seg with injection disabled.
func readBack(t *testing.T, fs *FS, f *File, seg Segment) []byte {
	t.Helper()
	saved := fs.Fault()
	fs.SetFault(nil)
	defer fs.SetFault(saved)
	buf := make([]byte, seg.Len)
	if _, err := f.ReadAt(0, buf, seg.Off); err != nil {
		t.Fatalf("readback: %v", err)
	}
	return buf
}

// wantPrefix computes the expected content of seg after the first n payload
// bytes of the batch have landed.
func wantPrefix(segs []Segment, payload []byte, n int64, seg Segment) []byte {
	want := make([]byte, seg.Len)
	pos := int64(0)
	for _, s := range segs {
		landed := min64(n-pos, s.Len)
		if s == seg && landed > 0 {
			copy(want, payload[pos:pos+landed])
		}
		pos += s.Len
		if pos >= n {
			break
		}
	}
	return want
}

func TestWriteVecTransientLeavesExactPrefix(t *testing.T) {
	segs := vecSegs()
	payload := vecPayload()
	cfg := fault.Config{WriteErrRate: 0.5}
	// Cut inside the second iovec entry AND the second segment: payload
	// bytes 10..30 are segment 2; iovec entry 2 covers bytes 7..32.
	seed := findWriteFaultSeed(t, cfg, 0, 60, 12, 30)
	cfg.Seed = seed

	fs := New(DefaultConfig())
	fs.SetFault(fault.New(cfg))
	f, _ := fs.Create("vec.dat", 0)
	st := iostat.New()
	f.SetStats(st, nil, 0)

	_, err := f.WriteVec(0, segs, vecIov(payload))
	if !errors.Is(err, fault.ErrTransient) {
		t.Fatalf("err = %v, want transient", err)
	}
	// Reconstruct the injected outcome to learn the prefix length.
	probe := fault.New(cfg)
	n := probe.Decide(0, fault.OpWrite, 0, 60).N
	if n <= 12 || n >= 30 {
		t.Fatalf("probe N = %d outside the selected band", n)
	}
	for _, s := range segs {
		got := readBack(t, fs, f, s)
		want := wantPrefix(segs, payload, n, s)
		if !bytes.Equal(got, want) {
			t.Errorf("after fault, seg %+v = %v, want %v (prefix %d)", s, got, want, n)
		}
	}
	if got := st.Get(iostat.PfsFaultsInjected); got != 1 {
		t.Errorf("faults injected = %d, want 1", got)
	}
	if got := st.Get(iostat.PfsBytesWritten); got != 0 {
		t.Errorf("bytes written after failed batch = %d, want 0 (only successful batches count)", got)
	}

	// Re-issuing the identical request is idempotent recovery: the retry
	// succeeds (occurrence advanced) and rewrites the full range.
	if _, err := f.WriteVec(0, segs, vecIov(payload)); err != nil {
		t.Fatalf("retry: %v", err)
	}
	pos := int64(0)
	for _, s := range segs {
		got := readBack(t, fs, f, s)
		if !bytes.Equal(got, payload[pos:pos+s.Len]) {
			t.Errorf("after retry, seg %+v = %v, want %v", s, got, payload[pos:pos+s.Len])
		}
		pos += s.Len
	}
	if got := st.Get(iostat.PfsBytesWritten); got != 60 {
		t.Errorf("bytes written = %d, want exactly 60", got)
	}
	if got := st.Get(iostat.PfsWriteCalls); got != 1 {
		t.Errorf("write calls = %d, want 1 (failed batch not counted)", got)
	}
}

func TestWriteVecRetryPolicyCompletes(t *testing.T) {
	segs := vecSegs()
	payload := vecPayload()
	cfg := fault.Config{WriteErrRate: 0.5}
	cfg.Seed = findWriteFaultSeed(t, cfg, 0, 60, 1, 60)

	fs := New(DefaultConfig())
	fs.SetFault(fault.New(cfg))
	f, _ := fs.Create("vec.dat", 0)

	_, retries, _, err := fault.DefaultRetryPolicy().Do(0, func(t float64) (float64, error) {
		return f.WriteVec(t, segs, vecIov(payload))
	})
	if err != nil {
		t.Fatalf("retried write: %v", err)
	}
	if retries < 1 {
		t.Fatalf("retries = %d, want >= 1 (seed was chosen to fault first)", retries)
	}
	pos := int64(0)
	for _, s := range segs {
		got := readBack(t, fs, f, s)
		if !bytes.Equal(got, payload[pos:pos+s.Len]) {
			t.Errorf("seg %+v = %v, want %v", s, got, payload[pos:pos+s.Len])
		}
		pos += s.Len
	}
}

func TestReadVecTransientRetry(t *testing.T) {
	segs := vecSegs()
	payload := vecPayload()

	fs := New(DefaultConfig())
	f, _ := fs.Create("vec.dat", 0)
	if _, err := f.WriteVec(0, segs, vecIov(payload)); err != nil {
		t.Fatal(err)
	}

	// Find a seed whose first read decision faults and whose retry clears.
	var seed uint64
	for s := uint64(1); s < 50000; s++ {
		in := fault.New(fault.Config{Seed: s, ReadErrRate: 0.5})
		if !errors.Is(in.Decide(0, fault.OpRead, 0, 60).Err, fault.ErrTransient) {
			continue
		}
		if in.Decide(0, fault.OpRead, 0, 60).Err == nil {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no read fault seed found")
	}
	fs.SetFault(fault.New(fault.Config{Seed: seed, ReadErrRate: 0.5}))
	st := iostat.New()
	f.SetStats(st, nil, 0)

	dst := make([]byte, 60)
	iov := [][]byte{dst[:13], dst[13:41], dst[41:]}
	_, err := f.ReadVec(0, segs, iov)
	if !errors.Is(err, fault.ErrTransient) {
		t.Fatalf("first read err = %v, want transient", err)
	}
	if _, err := f.ReadVec(0, segs, iov); err != nil {
		t.Fatalf("read retry: %v", err)
	}
	if !bytes.Equal(dst, payload) {
		t.Errorf("read back %v, want %v", dst, payload)
	}
	if got := st.Get(iostat.PfsBytesRead); got != 60 {
		t.Errorf("bytes read = %d, want exactly 60", got)
	}
	if got := st.Get(iostat.PfsReadCalls); got != 1 {
		t.Errorf("read calls = %d, want 1", got)
	}
	if got := st.Get(iostat.PfsFaultsInjected); got != 1 {
		t.Errorf("faults injected = %d, want 1", got)
	}
}

func TestWriteVecCrashCutsMidIovec(t *testing.T) {
	segs := vecSegs()
	payload := vecPayload()

	fs := New(DefaultConfig())
	inj := fault.New(fault.Config{})
	fs.SetFault(inj)
	f, _ := fs.Create("vec.dat", 0)

	// Crash 25 payload bytes in: inside iovec entry 2 and segment 2.
	inj.ArmCrash(25, false)
	_, err := f.WriteVec(0, segs, vecIov(payload))
	if !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	for _, s := range segs {
		got := readBack(t, fs, f, s)
		want := wantPrefix(segs, payload, 25, s)
		if !bytes.Equal(got, want) {
			t.Errorf("after crash, seg %+v = %v, want %v", s, got, want)
		}
	}
}

func TestWriteVecCrashTruncatesFile(t *testing.T) {
	segs := vecSegs()
	payload := vecPayload()

	fs := New(DefaultConfig())
	inj := fault.New(fault.Config{})
	fs.SetFault(inj)
	f, _ := fs.Create("vec.dat", 0)
	if _, err := f.WriteVec(0, segs, vecIov(payload)); err != nil {
		t.Fatal(err)
	}

	// The crash point is payload-relative to the batch start (offset 0,
	// 60 payload bytes): byte 40 cuts inside the third segment.
	inj.ArmCrash(40, true)
	if _, err := f.WriteVec(0, segs, vecIov(payload)); !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if got := f.Size(); got != 40 {
		t.Errorf("size after crash-truncate = %d, want 40", got)
	}
}
