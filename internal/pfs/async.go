// Async I/O: WriteVecAsync/ReadVecAsync issue a request batch and return a
// completion token instead of blocking, so the two-phase collective path can
// overlap one round's aggregator I/O with the next round's pack/exchange
// (DESIGN.md §13).
//
// Virtual time and real time are split the same way they are everywhere else
// in pfs. All virtual accounting is computed synchronously at issue, on the
// caller's goroutine: fault-injection decisions, cost-model charging
// (FS.charge), iostat counters, the trace event, and the pfs span. The
// token's start is max(issueTime, previous op's end) on the handle's I/O
// channel — a rank's outstanding requests serialize in virtual time even
// when they overlap in wall-clock time — and its end is the charged
// completion. Only the byte movement (chunk-store writes/reads) runs on a
// background goroutine, so wall-clock benchmarks genuinely overlap the
// memcpy/storage work with whatever the caller does next. The caller's rank
// clock must advance only at Wait.
//
// The caller must not touch segs, iov, or the iovec's buffers between issue
// and Wait. At most one async op should be in flight per handle at a time
// (the depth-2 pipeline's invariant); this keeps the fault injector's
// per-rank occurrence counters in program order, so a seeded run stays
// deterministic.
package pfs

import (
	"fmt"

	"pnetcdf/internal/fault"
	"pnetcdf/internal/iostat"
	"pnetcdf/internal/span"
)

// AsyncOp is the completion token of one in-flight async request batch. Its
// virtual times are fixed at issue; Wait joins the background byte movement.
type AsyncOp struct {
	done  chan struct{}
	start float64 // virtual start on the handle's I/O channel
	end   float64 // virtual completion
	err   error
}

// Wait blocks until the operation's byte movement has landed and returns
// its virtual completion time and error. end may be earlier than the
// caller's current clock — the I/O finished (in virtual time) while the
// rank was busy elsewhere; callers advance their clock to max(clock, end).
func (op *AsyncOp) Wait() (float64, error) {
	<-op.done
	return op.end, op.err
}

// Start returns the operation's virtual start time on the handle's I/O
// channel: max(issue time, previous op's end).
func (op *AsyncOp) Start() float64 { return op.start }

// completedOp returns an already-finished token carrying err; used for
// validation failures that never reach the cost model.
func completedOp(t float64, err error) *AsyncOp {
	op := &AsyncOp{done: make(chan struct{}), start: t, end: t, err: err}
	close(op.done)
	return op
}

// issueAsync performs the synchronous half of an async request: under ioMu
// it places the op on the handle's I/O channel, consults the fault
// injector, and charges the cost model, filling in op.start/end/err. It
// returns the injector outcome (only meaningful when op.err != nil) and the
// merged-extent count for accounting.
func (f *File) issueAsync(op *AsyncOp, t float64, kind fault.Op, segs []Segment, total int64, read bool) (fault.Outcome, int) {
	f.ioMu.Lock()
	defer f.ioMu.Unlock()
	start := t
	if f.ioPrevEnd > start {
		start = f.ioPrevEnd
	}
	op.start = start
	tt := start
	if f.fs.inj != nil {
		out := f.inject(kind, segs, total)
		tt += out.Delay
		if out.Err != nil {
			f.stats.Add(iostat.PfsFaultsInjected, 1)
			op.end = tt + f.fs.cfg.NetLatency
			op.err = out.Err
			f.ioPrevEnd = op.end
			return out, 0
		}
		if out.Delay > 0 {
			f.stats.Add(iostat.PfsFaultsInjected, 1)
		}
	}
	done, extents := f.fs.charge(tt, segs, read, f.stats)
	op.end = done
	f.ioPrevEnd = done
	return fault.Outcome{}, extents
}

// WriteVecAsync issues WriteVec's request batch asynchronously and returns
// its completion token. Semantics — validation, fault injection (transient
// prefix, crash truncation), cost-model charging, counters, spans — are
// identical to WriteVec; only the chunk-store byte movement is deferred to
// a background goroutine joined by Wait. See the package comment in this
// file for the aliasing and in-flight-depth rules.
func (f *File) WriteVecAsync(t float64, segs []Segment, iov [][]byte) *AsyncOp {
	var total int64
	for _, s := range segs {
		total += s.Len
	}
	if n := iovTotal(iov); n != total {
		return completedOp(t, fmt.Errorf("pfs: writevec iovec holds %d bytes, segments need %d", n, total))
	}
	op := &AsyncOp{done: make(chan struct{})}
	out, extents := f.issueAsync(op, t, fault.OpWrite, segs, total, false)
	if op.err != nil {
		f.spans.Record(span.PFSWrite, -1, op.start, op.end, out.N)
		go func() {
			defer close(op.done)
			f.applyWritePrefix(segs, iov, out)
			if out.TruncateTo >= 0 {
				f.Truncate(out.TruncateTo)
			}
		}()
		return op
	}
	f.record(iostat.PfsWriteCalls, iostat.PfsBytesWritten, iostat.PfsWriteExtents,
		"write", op.start, op.end, segs, total, extents)
	f.spans.Record(span.PFSWrite, -1, op.start, op.end, total)
	go func() {
		defer close(op.done)
		f.storeWriteVec(segs, iov, total)
	}()
	return op
}

// ReadVAsync issues ReadV's request batch asynchronously: the segments are
// read into consecutive bytes of dst once Wait returns.
func (f *File) ReadVAsync(t float64, segs []Segment, dst []byte) *AsyncOp {
	return f.ReadVecAsync(t, segs, [][]byte{dst})
}

// ReadVecAsync issues ReadVec's request batch asynchronously and returns
// its completion token; the iovec is filled by the background goroutine and
// must not be read until Wait returns.
func (f *File) ReadVecAsync(t float64, segs []Segment, iov [][]byte) *AsyncOp {
	var total int64
	for _, s := range segs {
		total += s.Len
	}
	if n := iovTotal(iov); n != total {
		return completedOp(t, fmt.Errorf("pfs: readvec iovec holds %d bytes, segments need %d", n, total))
	}
	op := &AsyncOp{done: make(chan struct{})}
	_, extents := f.issueAsync(op, t, fault.OpRead, segs, total, true)
	if op.err != nil {
		f.spans.Record(span.PFSRead, -1, op.start, op.end, 0)
		close(op.done)
		return op
	}
	f.record(iostat.PfsReadCalls, iostat.PfsBytesRead, iostat.PfsReadExtents,
		"read", op.start, op.end, segs, total, extents)
	f.spans.Record(span.PFSRead, -1, op.start, op.end, total)
	go func() {
		defer close(op.done)
		cur := iovCursor{iov: iov}
		for _, s := range segs {
			off := s.Off
			for remain := s.Len; remain > 0; {
				p := cur.next(remain)
				f.fd.store.readAt(p, off)
				off += int64(len(p))
				remain -= int64(len(p))
			}
		}
	}()
	return op
}
