package mpitype

import "fmt"

// Pack gathers the units selected by count instances of d (tiled from offset
// 0 of src) into a contiguous dst buffer, like MPI_Pack. Units are bytes
// here. dst must hold count*d.Size() bytes; src must span count*d.Extent().
func Pack(src []byte, d Datatype, count int64, dst []byte) error {
	need := count * d.size
	if int64(len(dst)) < need {
		return fmt.Errorf("mpitype: pack dst %d < %d", len(dst), need)
	}
	pos := int64(0)
	for i := int64(0); i < count; i++ {
		base := i * d.extent
		for _, s := range d.segs {
			copy(dst[pos:pos+s.Len], src[base+s.Off:base+s.Off+s.Len])
			pos += s.Len
		}
	}
	return nil
}

// Unpack scatters a contiguous src buffer into the units selected by count
// instances of d within dst, like MPI_Unpack.
func Unpack(src []byte, d Datatype, count int64, dst []byte) error {
	need := count * d.size
	if int64(len(src)) < need {
		return fmt.Errorf("mpitype: unpack src %d < %d", len(src), need)
	}
	pos := int64(0)
	for i := int64(0); i < count; i++ {
		base := i * d.extent
		for _, s := range d.segs {
			copy(dst[base+s.Off:base+s.Off+s.Len], src[pos:pos+s.Len])
			pos += s.Len
		}
	}
	return nil
}

// GatherElems collects the elements selected by segs (element units) from
// src into a new slice, in segment order. The flexible PnetCDF API uses it
// to linearize noncontiguous user memory.
func GatherElems[T any](src []T, segs []Segment) ([]T, error) {
	var n int64
	for _, s := range segs {
		n += s.Len
	}
	out := make([]T, 0, n)
	for _, s := range segs {
		if s.Off < 0 || s.Off+s.Len > int64(len(src)) {
			return nil, fmt.Errorf("mpitype: element segment %+v outside buffer of %d", s, len(src))
		}
		out = append(out, src[s.Off:s.Off+s.Len]...)
	}
	return out, nil
}

// ScatterElems writes contiguous elements of src into the positions selected
// by segs within dst — the inverse of GatherElems.
func ScatterElems[T any](src []T, segs []Segment, dst []T) error {
	pos := int64(0)
	for _, s := range segs {
		if s.Off < 0 || s.Off+s.Len > int64(len(dst)) {
			return fmt.Errorf("mpitype: element segment %+v outside buffer of %d", s, len(dst))
		}
		copy(dst[s.Off:s.Off+s.Len], src[pos:pos+s.Len])
		pos += s.Len
	}
	return nil
}
