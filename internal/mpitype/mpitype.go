// Package mpitype implements MPI derived datatypes as flattened typemaps:
// a Datatype is a sorted list of (offset, length) segments within an extent,
// plus the MPI size/extent distinction that makes tiling work.
//
// File views in the MPI-IO layer are Datatypes whose unit is bytes; the
// PnetCDF flexible API also builds memory Datatypes whose unit is elements
// of the user's Go slice (the constructors are unit-agnostic). Subarray is
// the workhorse: PnetCDF turns every start/count/stride request into a
// subarray (or indexed) file type exactly as the paper describes
// ("we represent the data access pattern as an MPI file view ... constructed
// from the variable metadata and start[], count[], stride[], imap[]
// arguments").
package mpitype

import (
	"errors"
	"fmt"
	"sort"

	"pnetcdf/internal/span"
)

// Segment is one contiguous run of units within a datatype's extent.
type Segment struct {
	Off int64
	Len int64
}

// Datatype is an immutable flattened typemap. The zero value is an empty
// type (size 0, extent 0).
type Datatype struct {
	size   int64
	extent int64
	segs   []Segment // sorted by Off, non-overlapping, within [0, extent]
}

// Size returns the number of data units the type selects per instance.
func (d Datatype) Size() int64 { return d.size }

// Extent returns the span one instance occupies; tiling places instance i
// at displacement i*Extent.
func (d Datatype) Extent() int64 { return d.extent }

// Segments returns a copy of the flattened typemap.
func (d Datatype) Segments() []Segment {
	return append([]Segment(nil), d.segs...)
}

// NumSegments returns the number of contiguous pieces per instance.
func (d Datatype) NumSegments() int { return len(d.segs) }

// IsContiguous reports whether the type is one gap-free run starting at 0
// whose extent equals its size.
func (d Datatype) IsContiguous() bool {
	return len(d.segs) == 0 && d.size == 0 ||
		len(d.segs) == 1 && d.segs[0].Off == 0 && d.segs[0].Len == d.size && d.extent == d.size
}

// Contig returns a contiguous type of n units.
func Contig(n int64) Datatype {
	if n <= 0 {
		return Datatype{}
	}
	return Datatype{size: n, extent: n, segs: []Segment{{0, n}}}
}

// FromSegments builds a type from explicit segments (they are sorted and
// merged). extent < end-of-last-segment is an error.
func FromSegments(segs []Segment, extent int64) (Datatype, error) {
	cleaned := make([]Segment, 0, len(segs))
	for _, s := range segs {
		if s.Len < 0 || s.Off < 0 {
			return Datatype{}, fmt.Errorf("mpitype: negative segment %+v", s)
		}
		if s.Len > 0 {
			cleaned = append(cleaned, s)
		}
	}
	// Constructors generate ascending segments; skip the sort when input is
	// already ordered (the common case) so building large flattened views
	// stays linear.
	ordered := true
	for i := 1; i < len(cleaned); i++ {
		if cleaned[i].Off < cleaned[i-1].Off {
			ordered = false
			break
		}
	}
	if !ordered {
		sort.Slice(cleaned, func(i, j int) bool { return cleaned[i].Off < cleaned[j].Off })
	}
	var merged []Segment
	var size int64
	for _, s := range cleaned {
		if n := len(merged); n > 0 {
			last := &merged[n-1]
			if s.Off < last.Off+last.Len {
				return Datatype{}, fmt.Errorf("mpitype: overlapping segments at %d", s.Off)
			}
			if s.Off == last.Off+last.Len {
				last.Len += s.Len
				size += s.Len
				continue
			}
		}
		merged = append(merged, s)
		size += s.Len
	}
	end := int64(0)
	if len(merged) > 0 {
		end = merged[len(merged)-1].Off + merged[len(merged)-1].Len
	}
	if extent < end {
		return Datatype{}, fmt.Errorf("mpitype: extent %d smaller than typemap end %d", extent, end)
	}
	return Datatype{size: size, extent: extent, segs: merged}, nil
}

// Contiguous replicates base count times back to back, like
// MPI_Type_contiguous.
func Contiguous(count int64, base Datatype) (Datatype, error) {
	if count < 0 {
		return Datatype{}, errors.New("mpitype: negative count")
	}
	return tile(count, base.extent, 1, base)
}

// Vector replicates blocklen consecutive base instances count times with a
// stride (in base extents) between block starts, like MPI_Type_vector.
func Vector(count, blocklen, stride int64, base Datatype) (Datatype, error) {
	if count < 0 || blocklen < 0 {
		return Datatype{}, errors.New("mpitype: negative count/blocklen")
	}
	if count > 1 && stride < blocklen {
		return Datatype{}, fmt.Errorf("mpitype: vector stride %d < blocklen %d would overlap", stride, blocklen)
	}
	return tile(count, stride*base.extent, blocklen, base)
}

// Hvector is Vector with the stride given in units rather than base extents,
// like MPI_Type_create_hvector.
func Hvector(count, blocklen, strideUnits int64, base Datatype) (Datatype, error) {
	if count < 0 || blocklen < 0 {
		return Datatype{}, errors.New("mpitype: negative count/blocklen")
	}
	if count > 1 && strideUnits < blocklen*base.extent {
		return Datatype{}, errors.New("mpitype: hvector stride would overlap")
	}
	return tile(count, strideUnits, blocklen, base)
}

// tile places blocklen back-to-back base instances at displacements
// 0, blockStride, 2*blockStride, ... Adjacent runs merge as they are
// generated (via Tiled), so a vector of a contiguous base flattens to one
// segment per block — not one per element.
func tile(count, blockStride, blocklen int64, base Datatype) (Datatype, error) {
	var segs []Segment
	for i := int64(0); i < count; i++ {
		segs = base.Tiled(segs, i*blockStride, blocklen)
	}
	extent := int64(0)
	if count > 0 {
		extent = (count-1)*blockStride + blocklen*base.extent
	}
	return FromSegments(segs, extent)
}

// Indexed places blocks of blocklens[i] base instances at displacements
// displs[i] (in base extents), like MPI_Type_indexed.
func Indexed(blocklens, displs []int64, base Datatype) (Datatype, error) {
	if len(blocklens) != len(displs) {
		return Datatype{}, errors.New("mpitype: blocklens/displs length mismatch")
	}
	var segs []Segment
	extent := int64(0)
	for i := range blocklens {
		disp := displs[i] * base.extent
		segs = base.Tiled(segs, disp, blocklens[i])
		if end := disp + blocklens[i]*base.extent; end > extent {
			extent = end
		}
	}
	return FromSegments(segs, extent)
}

// Hindexed places blocks at unit displacements, like
// MPI_Type_create_hindexed.
func Hindexed(blocklens, displsUnits []int64, base Datatype) (Datatype, error) {
	if len(blocklens) != len(displsUnits) {
		return Datatype{}, errors.New("mpitype: blocklens/displs length mismatch")
	}
	var segs []Segment
	extent := int64(0)
	for i := range blocklens {
		segs = base.Tiled(segs, displsUnits[i], blocklens[i])
		if end := displsUnits[i] + blocklens[i]*base.extent; end > extent {
			extent = end
		}
	}
	return FromSegments(segs, extent)
}

// Subarray selects an n-dimensional block (starts[i], subsizes[i]) out of an
// array of shape sizes (row-major, most significant dimension first), with
// elem units per element, like MPI_Type_create_subarray. The extent is the
// full array, so tiling steps whole arrays — exactly what record-variable
// access needs.
func Subarray(sizes, subsizes, starts []int64, elem int64) (Datatype, error) {
	nd := len(sizes)
	if len(subsizes) != nd || len(starts) != nd {
		return Datatype{}, errors.New("mpitype: subarray rank mismatch")
	}
	if elem <= 0 {
		return Datatype{}, errors.New("mpitype: subarray elem size must be positive")
	}
	total := elem
	for i, s := range sizes {
		if s < 0 || subsizes[i] < 0 || starts[i] < 0 || starts[i]+subsizes[i] > s {
			return Datatype{}, fmt.Errorf("mpitype: subarray dim %d out of bounds (size %d, sub %d, start %d)",
				i, s, subsizes[i], starts[i])
		}
		total *= s
	}
	for _, ss := range subsizes {
		if ss == 0 {
			return Datatype{size: 0, extent: total}, nil
		}
	}
	if nd == 0 {
		return Datatype{size: elem, extent: elem, segs: []Segment{{0, elem}}}, nil
	}
	// Collapse trailing full dimensions into the contiguous run.
	run := elem
	last := nd - 1
	for last >= 0 && subsizes[last] == sizes[last] && starts[last] == 0 {
		run *= sizes[last]
		last--
	}
	if last < 0 {
		// Whole array.
		return Datatype{size: total, extent: total, segs: []Segment{{0, total}}}, nil
	}
	run *= subsizes[last]
	// Strides of each dimension in units.
	strides := make([]int64, nd)
	strides[nd-1] = elem
	for i := nd - 2; i >= 0; i-- {
		strides[i] = strides[i+1] * sizes[i+1]
	}
	// Iterate over the outer dims [0, last); the run covers dim `last`'s
	// subsize and everything inside.
	nRows := int64(1)
	for i := 0; i < last; i++ {
		nRows *= subsizes[i]
	}
	segs := make([]Segment, 0, nRows)
	idx := make([]int64, last)
	for r := int64(0); r < nRows; r++ {
		off := starts[last] * strides[last]
		for i := 0; i < last; i++ {
			off += (starts[i] + idx[i]) * strides[i]
		}
		segs = append(segs, Segment{Off: off, Len: run})
		for i := last - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < subsizes[i] {
				break
			}
			idx[i] = 0
		}
	}
	return FromSegments(segs, total)
}

// Resized returns d with a new extent, like MPI_Type_create_resized with
// lb = 0. The new extent may exceed or trail inside the typemap end only if
// it still covers all segments.
func Resized(d Datatype, extent int64) (Datatype, error) {
	return FromSegments(d.segs, extent)
}

// Tiled appends to dst the absolute segments of count instances of d placed
// at disp, disp+Extent, disp+2*Extent, ... with adjacent runs merged.
func (d Datatype) Tiled(dst []Segment, disp int64, count int64) []Segment {
	for i := int64(0); i < count; i++ {
		base := disp + i*d.extent
		for _, s := range d.segs {
			abs := Segment{Off: base + s.Off, Len: s.Len}
			if n := len(dst); n > 0 && dst[n-1].Off+dst[n-1].Len == abs.Off {
				dst[n-1].Len += abs.Len
			} else {
				dst = append(dst, abs)
			}
		}
	}
	return dst
}

// SegmentsForRange walks the tiling of d starting at displacement disp,
// skips the first skipUnits data units, and returns the absolute segments
// covering the next nUnits data units. This is how a file view plus a file
// pointer offset turns into I/O extents.
func (d Datatype) SegmentsForRange(disp, skipUnits, nUnits int64) ([]Segment, error) {
	if d.size == 0 {
		if nUnits == 0 {
			return nil, nil
		}
		return nil, errors.New("mpitype: reading data units through an empty type")
	}
	var out []Segment
	tileIdx := skipUnits / d.size
	skip := skipUnits % d.size
	for nUnits > 0 {
		base := disp + tileIdx*d.extent
		for _, s := range d.segs {
			if nUnits == 0 {
				break
			}
			off, l := s.Off, s.Len
			if skip > 0 {
				if skip >= l {
					skip -= l
					continue
				}
				off += skip
				l -= skip
				skip = 0
			}
			if l > nUnits {
				l = nUnits
			}
			abs := Segment{Off: base + off, Len: l}
			if n := len(out); n > 0 && out[n-1].Off+out[n-1].Len == abs.Off {
				out[n-1].Len += abs.Len
			} else {
				out = append(out, abs)
			}
			nUnits -= l
		}
		tileIdx++
	}
	return out, nil
}

// SegmentsForRangeSpan is SegmentsForRange wrapped in a "flatten" span on
// rec (nil = no recording): the view-resolve step of the collective
// pipeline, with the span's byte count carrying the number of file extents
// the flattening produced.
func (d Datatype) SegmentsForRangeSpan(disp, skipUnits, nUnits int64, rec *span.Recorder) ([]Segment, error) {
	if rec == nil {
		return d.SegmentsForRange(disp, skipUnits, nUnits)
	}
	sp := rec.Begin(span.Flatten)
	segs, err := d.SegmentsForRange(disp, skipUnits, nUnits)
	sp.SetBytes(int64(len(segs)))
	sp.End()
	return segs, err
}
