package mpitype

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func segsEq(a, b []Segment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestContig(t *testing.T) {
	d := Contig(16)
	if d.Size() != 16 || d.Extent() != 16 || !d.IsContiguous() {
		t.Fatalf("Contig(16): size=%d extent=%d contig=%v", d.Size(), d.Extent(), d.IsContiguous())
	}
	z := Contig(0)
	if z.Size() != 0 || z.NumSegments() != 0 {
		t.Fatal("Contig(0) not empty")
	}
}

func TestFromSegmentsMergesAndValidates(t *testing.T) {
	d, err := FromSegments([]Segment{{8, 4}, {0, 4}, {4, 4}, {20, 2}}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !segsEq(d.Segments(), []Segment{{0, 12}, {20, 2}}) {
		t.Fatalf("merged = %v", d.Segments())
	}
	if d.Size() != 14 || d.Extent() != 30 {
		t.Fatalf("size=%d extent=%d", d.Size(), d.Extent())
	}
	if _, err := FromSegments([]Segment{{0, 4}, {2, 4}}, 10); err == nil {
		t.Fatal("overlap accepted")
	}
	if _, err := FromSegments([]Segment{{0, 4}}, 2); err == nil {
		t.Fatal("short extent accepted")
	}
	if _, err := FromSegments([]Segment{{-1, 4}}, 10); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestVector(t *testing.T) {
	// 3 blocks of 2 units, stride 4: XX..XX..XX
	d, err := Vector(3, 2, 4, Contig(1))
	if err != nil {
		t.Fatal(err)
	}
	want := []Segment{{0, 2}, {4, 2}, {8, 2}}
	if !segsEq(d.Segments(), want) {
		t.Fatalf("vector segs = %v, want %v", d.Segments(), want)
	}
	if d.Size() != 6 || d.Extent() != 10 {
		t.Fatalf("size=%d extent=%d", d.Size(), d.Extent())
	}
	if _, err := Vector(2, 3, 2, Contig(1)); err == nil {
		t.Fatal("overlapping vector accepted")
	}
}

func TestContiguousOfVector(t *testing.T) {
	v, _ := Vector(2, 1, 2, Contig(1)) // X.X (extent 3)
	d, err := Contiguous(2, v)
	if err != nil {
		t.Fatal(err)
	}
	// Tiling at extent 3: X.XX.X
	want := []Segment{{0, 1}, {2, 2}, {5, 1}}
	if !segsEq(d.Segments(), want) {
		t.Fatalf("segs = %v, want %v", d.Segments(), want)
	}
}

func TestIndexedAndHindexed(t *testing.T) {
	d, err := Indexed([]int64{2, 1}, []int64{0, 5}, Contig(2))
	if err != nil {
		t.Fatal(err)
	}
	// blocks: 2 elems at displ 0 (4 units), 1 elem at displ 5 (offset 10)
	want := []Segment{{0, 4}, {10, 2}}
	if !segsEq(d.Segments(), want) {
		t.Fatalf("indexed = %v, want %v", d.Segments(), want)
	}
	h, err := Hindexed([]int64{1, 1}, []int64{3, 9}, Contig(2))
	if err != nil {
		t.Fatal(err)
	}
	want = []Segment{{3, 2}, {9, 2}}
	if !segsEq(h.Segments(), want) {
		t.Fatalf("hindexed = %v, want %v", h.Segments(), want)
	}
}

func TestSubarray2D(t *testing.T) {
	// 4x6 array of 1-unit elements; take rows 1..2, cols 2..4.
	d, err := Subarray([]int64{4, 6}, []int64{2, 3}, []int64{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []Segment{{8, 3}, {14, 3}}
	if !segsEq(d.Segments(), want) {
		t.Fatalf("subarray = %v, want %v", d.Segments(), want)
	}
	if d.Extent() != 24 || d.Size() != 6 {
		t.Fatalf("size=%d extent=%d", d.Size(), d.Extent())
	}
}

func TestSubarrayFullTrailingDimsCollapse(t *testing.T) {
	// Full trailing dims -> one segment per outer index.
	d, err := Subarray([]int64{5, 4, 3}, []int64{2, 4, 3}, []int64{1, 0, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []Segment{{48, 96}}
	if !segsEq(d.Segments(), want) {
		t.Fatalf("segs = %v, want %v (collapsed contiguous slab)", d.Segments(), want)
	}
	// Whole array collapses to one run.
	w, err := Subarray([]int64{5, 4}, []int64{5, 4}, []int64{0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !w.IsContiguous() || w.Size() != 40 {
		t.Fatalf("whole-array subarray not contiguous: %v", w.Segments())
	}
}

func TestSubarrayZeroAndErrors(t *testing.T) {
	d, err := Subarray([]int64{4, 4}, []int64{0, 4}, []int64{0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 0 || d.Extent() != 16 {
		t.Fatalf("zero subarray: size=%d extent=%d", d.Size(), d.Extent())
	}
	if _, err := Subarray([]int64{4}, []int64{3}, []int64{2}, 1); err == nil {
		t.Fatal("out-of-bounds subarray accepted")
	}
	if _, err := Subarray([]int64{4}, []int64{1, 1}, []int64{0}, 1); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, err := Subarray([]int64{4}, []int64{1}, []int64{0}, 0); err == nil {
		t.Fatal("zero elem size accepted")
	}
}

// Oracle: subarray segments must select exactly the elements a nested loop
// selects.
func TestQuickSubarrayOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := rng.Intn(3) + 1
		sizes := make([]int64, nd)
		subs := make([]int64, nd)
		starts := make([]int64, nd)
		for i := range sizes {
			sizes[i] = int64(rng.Intn(5) + 1)
			subs[i] = int64(rng.Intn(int(sizes[i]))) + 1
			starts[i] = int64(rng.Intn(int(sizes[i]-subs[i]) + 1))
		}
		elem := int64(rng.Intn(3) + 1)
		d, err := Subarray(sizes, subs, starts, elem)
		if err != nil {
			return false
		}
		// Build the oracle set of selected units.
		total := elem
		for _, s := range sizes {
			total *= s
		}
		want := make([]bool, total)
		var walk func(dim int, off int64)
		walk = func(dim int, off int64) {
			if dim == nd {
				for u := int64(0); u < elem; u++ {
					want[off*elem+u] = true
				}
				return
			}
			stride := int64(1)
			for i := dim + 1; i < nd; i++ {
				stride *= sizes[i]
			}
			for k := starts[dim]; k < starts[dim]+subs[dim]; k++ {
				walk(dim+1, off+k*stride)
			}
		}
		walk(0, 0)
		got := make([]bool, total)
		for _, s := range d.Segments() {
			for u := s.Off; u < s.Off+s.Len; u++ {
				got[u] = true
			}
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResized(t *testing.T) {
	d, _ := FromSegments([]Segment{{0, 4}}, 4)
	r, err := Resized(d, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r.Extent() != 16 || r.Size() != 4 {
		t.Fatalf("resized: size=%d extent=%d", r.Size(), r.Extent())
	}
	segs := r.Tiled(nil, 0, 3)
	want := []Segment{{0, 4}, {16, 4}, {32, 4}}
	if !segsEq(segs, want) {
		t.Fatalf("tiled resized = %v, want %v", segs, want)
	}
	if _, err := Resized(d, 2); err == nil {
		t.Fatal("shrinking below typemap end accepted")
	}
}

func TestTiledMergesAcrossInstances(t *testing.T) {
	d := Contig(8)
	segs := d.Tiled(nil, 100, 4)
	if !segsEq(segs, []Segment{{100, 32}}) {
		t.Fatalf("contig tiling should merge: %v", segs)
	}
}

func TestSegmentsForRange(t *testing.T) {
	// Filetype X.X. (2 units data per 4-unit extent), disp 100. The raw
	// vector extent is 3 (typemap end), so resize to 4 for clean tiling.
	v, err := Vector(2, 1, 2, Contig(1))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Resized(v, 4)
	if err != nil {
		t.Fatal(err)
	}
	// First 5 data units: tiles at 100 (units 0,2) 104 (units 4,6) 108 (unit 8)
	segs, err := d.SegmentsForRange(100, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []Segment{{100, 1}, {102, 1}, {104, 1}, {106, 1}, {108, 1}}
	if !segsEq(segs, want) {
		t.Fatalf("range = %v, want %v", segs, want)
	}
	// Skip 3 data units, read 2: units 3,4 -> offsets 106, 108.
	segs, err = d.SegmentsForRange(100, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want = []Segment{{106, 1}, {108, 1}}
	if !segsEq(segs, want) {
		t.Fatalf("skip range = %v, want %v", segs, want)
	}
	// Contiguous view merges into a single extent.
	c := Contig(4)
	segs, err = c.SegmentsForRange(0, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !segsEq(segs, []Segment{{2, 10}}) {
		t.Fatalf("contig range = %v", segs)
	}
	// Empty type cannot produce data units.
	if _, err := (Datatype{}).SegmentsForRange(0, 0, 1); err == nil {
		t.Fatal("empty type produced data")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	d, err := Subarray([]int64{4, 4}, []int64{2, 2}, []int64{1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 32) // two instances
	for i := range src {
		src[i] = byte(i)
	}
	packed := make([]byte, 2*d.Size())
	if err := Pack(src, d, 2, packed); err != nil {
		t.Fatal(err)
	}
	want := []byte{5, 6, 9, 10, 16 + 5, 16 + 6, 16 + 9, 16 + 10}
	if !bytes.Equal(packed, want) {
		t.Fatalf("packed = %v, want %v", packed, want)
	}
	dst := make([]byte, 32)
	if err := Unpack(packed, d, 2, dst); err != nil {
		t.Fatal(err)
	}
	for _, s := range d.Tiled(nil, 0, 2) {
		for u := s.Off; u < s.Off+s.Len; u++ {
			if dst[u] != src[u] {
				t.Fatalf("unpack unit %d: %d != %d", u, dst[u], src[u])
			}
		}
	}
	if err := Pack(src, d, 2, make([]byte, 3)); err == nil {
		t.Fatal("short pack dst accepted")
	}
	if err := Unpack(make([]byte, 3), d, 2, dst); err == nil {
		t.Fatal("short unpack src accepted")
	}
}

func TestGatherScatterElems(t *testing.T) {
	src := []float32{0, 1, 2, 3, 4, 5, 6, 7}
	segs := []Segment{{1, 2}, {5, 3}}
	got, err := GatherElems(src, segs)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 2, 5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gather = %v", got)
		}
	}
	dst := make([]float32, 8)
	if err := ScatterElems(got, segs, dst); err != nil {
		t.Fatal(err)
	}
	if dst[1] != 1 || dst[6] != 6 || dst[0] != 0 {
		t.Fatalf("scatter = %v", dst)
	}
	if _, err := GatherElems(src, []Segment{{7, 3}}); err == nil {
		t.Fatal("out-of-bounds gather accepted")
	}
	if err := ScatterElems(got, []Segment{{7, 5}}, dst); err == nil {
		t.Fatal("out-of-bounds scatter accepted")
	}
}

// Property: Pack then Unpack into a zeroed buffer reproduces exactly the
// selected units and nothing else.
func TestQuickPackUnpack(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := Vector(int64(rng.Intn(4)+1), int64(rng.Intn(3)+1), int64(rng.Intn(3)+4), Contig(int64(rng.Intn(3)+1)))
		if err != nil {
			return false
		}
		count := int64(rng.Intn(3) + 1)
		src := make([]byte, count*d.Extent())
		rng.Read(src)
		packed := make([]byte, count*d.Size())
		if Pack(src, d, count, packed) != nil {
			return false
		}
		dst := make([]byte, len(src))
		if Unpack(packed, d, count, dst) != nil {
			return false
		}
		sel := make([]bool, len(src))
		for _, s := range d.Tiled(nil, 0, count) {
			for u := s.Off; u < s.Off+s.Len; u++ {
				sel[u] = true
			}
		}
		for i := range src {
			if sel[i] && dst[i] != src[i] {
				return false
			}
			if !sel[i] && dst[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: size equals the sum of segment lengths and segments stay within
// the extent, for random subarrays.
func TestQuickInvariants(t *testing.T) {
	f := func(a, b, c uint8) bool {
		sizes := []int64{int64(a%6) + 1, int64(b%6) + 1, int64(c%6) + 1}
		subs := []int64{sizes[0], (sizes[1] + 1) / 2, (sizes[2] + 1) / 2}
		starts := []int64{0, sizes[1] - subs[1], sizes[2] - subs[2]}
		d, err := Subarray(sizes, subs, starts, 4)
		if err != nil {
			return false
		}
		var sum int64
		for _, s := range d.Segments() {
			sum += s.Len
			if s.Off < 0 || s.Off+s.Len > d.Extent() {
				return false
			}
		}
		return sum == d.Size() && d.Size() == 4*subs[0]*subs[1]*subs[2]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHvector(t *testing.T) {
	// 3 blocks of 2 units with a 7-unit byte stride.
	d, err := Hvector(3, 2, 7, Contig(1))
	if err != nil {
		t.Fatal(err)
	}
	want := []Segment{{Off: 0, Len: 2}, {Off: 7, Len: 2}, {Off: 14, Len: 2}}
	if !segsEq(d.Segments(), want) {
		t.Fatalf("hvector = %v, want %v", d.Segments(), want)
	}
	if d.Size() != 6 || d.Extent() != 16 {
		t.Fatalf("size=%d extent=%d", d.Size(), d.Extent())
	}
	if _, err := Hvector(2, 3, 2, Contig(1)); err == nil {
		t.Fatal("overlapping hvector accepted")
	}
	if _, err := Hvector(-1, 1, 4, Contig(1)); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestContiguousEdgeCases(t *testing.T) {
	z, err := Contiguous(0, Contig(4))
	if err != nil {
		t.Fatal(err)
	}
	if z.Size() != 0 || z.Extent() != 0 {
		t.Fatalf("zero contiguous: size=%d extent=%d", z.Size(), z.Extent())
	}
	if _, err := Contiguous(-2, Contig(4)); err == nil {
		t.Fatal("negative count accepted")
	}
	// Contiguous of contiguous collapses to one segment.
	d, err := Contiguous(5, Contig(3))
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsContiguous() || d.Size() != 15 {
		t.Fatalf("contig of contig: %v", d.Segments())
	}
}

func TestIndexedLengthMismatch(t *testing.T) {
	if _, err := Indexed([]int64{1, 2}, []int64{0}, Contig(1)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Hindexed([]int64{1}, []int64{0, 5}, Contig(1)); err == nil {
		t.Fatal("hindexed length mismatch accepted")
	}
}
