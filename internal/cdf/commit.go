package cdf

import (
	"encoding/binary"
	"hash/crc32"
)

// Crash-consistent header commit support.
//
// An in-place header rewrite cannot be atomic: a crash mid-write leaves a
// torn header. The commit protocol therefore journals the new header image
// past the end of the data before touching the header region:
//
//  1. write [image][trailer] at EOF (the journal);
//  2. invalidate the in-place magic (zero the first 4 bytes);
//  3. write the new header body (bytes 4..);
//  4. publish: write the magic (bytes 0..4) last.
//
// A crash at any byte leaves one of two states: the old header intact
// (steps 1 and earlier — a torn journal has no valid trailer and is
// ignored), or an unreadable in-place header plus a complete journal from
// which the new header is recovered. Trailing journal bytes after a
// successful commit are legal — CheckLayout explicitly tolerates files
// larger than the header declares — and are overwritten harmlessly by
// later record appends.
//
// The trailer sits at the very end so it can be found from the file size
// alone: [imageLen 8B BE][crc32(image) 4B BE][magic "PNCJ" 4B].

// JournalMagic terminates a valid commit journal.
const JournalMagic = "PNCJ"

// JournalTrailerSize is the byte size of the journal trailer.
const JournalTrailerSize = 16

// EncodeJournal wraps a header image in the commit-journal envelope to be
// written at EOF.
func EncodeJournal(image []byte) []byte {
	out := make([]byte, 0, len(image)+JournalTrailerSize)
	out = append(out, image...)
	out = binary.BigEndian.AppendUint64(out, uint64(len(image)))
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(image))
	out = append(out, JournalMagic...)
	return out
}

// ParseJournalTrailer inspects the final JournalTrailerSize bytes of a file
// and returns the journaled image length and checksum. ok is false when no
// journal terminates the file (wrong magic or nonsensical length).
func ParseJournalTrailer(trailer []byte) (imageLen int64, crc uint32, ok bool) {
	if len(trailer) != JournalTrailerSize {
		return 0, 0, false
	}
	if string(trailer[12:]) != JournalMagic {
		return 0, 0, false
	}
	imageLen = int64(binary.BigEndian.Uint64(trailer[:8]))
	crc = binary.BigEndian.Uint32(trailer[8:12])
	if imageLen <= 0 {
		return 0, 0, false
	}
	return imageLen, crc, true
}

// VerifyJournalImage reports whether image matches the trailer checksum.
func VerifyJournalImage(image []byte, crc uint32) bool {
	return crc32.ChecksumIEEE(image) == crc
}

// RecoverJournal scans a whole-file image for a commit journal at its tail
// and returns the journaled header image, or nil when none is present or it
// fails verification.
func RecoverJournal(img []byte) []byte {
	if len(img) < JournalTrailerSize {
		return nil
	}
	n, crc, ok := ParseJournalTrailer(img[len(img)-JournalTrailerSize:])
	if !ok || n > int64(len(img)-JournalTrailerSize) {
		return nil
	}
	image := img[int64(len(img))-JournalTrailerSize-n : int64(len(img))-JournalTrailerSize]
	if !VerifyJournalImage(image, crc) {
		return nil
	}
	return image
}

// MaxRecsForSize returns the largest record count the file size can hold —
// the read-time clamp against a NumRecs field that is ahead of the data
// actually on disk (a torn numrecs write, or a writer that died between
// growing NumRecs and flushing the records).
func (h *Header) MaxRecsForSize(fileSize int64) int64 {
	recSize := h.RecSize()
	if h.NumRecVars() == 0 || recSize <= 0 {
		return h.NumRecs
	}
	avail := fileSize - h.RecordStart()
	if avail <= 0 {
		return 0
	}
	return avail / recSize
}
