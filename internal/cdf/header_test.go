package cdf

import (
	"bytes"
	"testing"

	"pnetcdf/internal/nctype"
)

// simpleHeader builds the small dataset used throughout these tests:
//
//	dimensions: lat=3, lon=4, time=UNLIMITED
//	variables:  float temp(time, lat, lon); int mask(lat, lon)
//	global att: title = "t"
func simpleHeader(t *testing.T, version int) *Header {
	t.Helper()
	h := &Header{Version: version}
	h.Dims = []Dim{{"lat", 3}, {"lon", 4}, {"time", 0}}
	att, err := MakeAttr("title", nctype.Char, "t")
	if err != nil {
		t.Fatalf("MakeAttr: %v", err)
	}
	h.GAttrs = []Attr{att}
	h.Vars = []Var{
		{Name: "temp", DimIDs: []int{2, 0, 1}, Type: nctype.Float},
		{Name: "mask", DimIDs: []int{0, 1}, Type: nctype.Int},
	}
	if err := h.ComputeLayout(1); err != nil {
		t.Fatalf("ComputeLayout: %v", err)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return h
}

func TestGoldenCDF1Header(t *testing.T) {
	// A minimal file with one dimension and one variable, whose encoding is
	// constructed by hand from the classic format specification.
	h := &Header{Version: 1}
	h.Dims = []Dim{{"x", 2}}
	h.Vars = []Var{{Name: "v", DimIDs: []int{0}, Type: nctype.Short}}
	if err := h.ComputeLayout(1); err != nil {
		t.Fatal(err)
	}
	got := h.Encode()
	want := []byte{
		'C', 'D', 'F', 1,
		0, 0, 0, 0, // numrecs = 0
		0, 0, 0, 0x0A, // NC_DIMENSION
		0, 0, 0, 1, // nelems = 1
		0, 0, 0, 1, // name len 1
		'x', 0, 0, 0, // "x" padded
		0, 0, 0, 2, // dim length 2
		0, 0, 0, 0, 0, 0, 0, 0, // gatt_list ABSENT
		0, 0, 0, 0x0B, // NC_VARIABLE
		0, 0, 0, 1, // nelems = 1
		0, 0, 0, 1, // name len 1
		'v', 0, 0, 0, // "v" padded
		0, 0, 0, 1, // ndims = 1
		0, 0, 0, 0, // dimid 0
		0, 0, 0, 0, 0, 0, 0, 0, // vatt_list ABSENT
		0, 0, 0, 3, // nc_type = NC_SHORT
		0, 0, 0, 4, // vsize = 2*2 rounded to 4
		0, 0, 0, 80, // begin = header size (80)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden mismatch:\n got %v\nwant %v", got, want)
	}
	if h.EncodedSize() != int64(len(want)) {
		t.Fatalf("EncodedSize = %d, want %d", h.EncodedSize(), len(want))
	}
	if h.Vars[0].Begin != 80 {
		t.Fatalf("begin = %d, want 80", h.Vars[0].Begin)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, version := range []int{1, 2, 5} {
		h := simpleHeader(t, version)
		h.NumRecs = 7
		if err := h.ComputeLayout(1); err != nil {
			t.Fatal(err)
		}
		buf := h.Encode()
		if int64(len(buf)) != h.EncodedSize() {
			t.Fatalf("v%d: len(Encode())=%d EncodedSize=%d", version, len(buf), h.EncodedSize())
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("v%d: Decode: %v", version, err)
		}
		if !got.Equal(h) {
			t.Fatalf("v%d: decoded header differs:\n got %+v\nwant %+v", version, got, h)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a netcdf file"),
		[]byte{'C', 'D', 'F', 3},       // bad version
		[]byte{'C', 'D', 'F', 1, 0, 0}, // truncated numrecs
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: Decode accepted garbage", i)
		}
	}
}

func TestDecodeTruncatedEverywhere(t *testing.T) {
	h := simpleHeader(t, 1)
	buf := h.Encode()
	for n := 0; n < len(buf); n++ {
		if _, err := Decode(buf[:n]); err == nil {
			t.Fatalf("Decode accepted %d-byte prefix of %d-byte header", n, len(buf))
		}
	}
}

func TestLayoutFixedThenRecord(t *testing.T) {
	h := simpleHeader(t, 1)
	temp, mask := &h.Vars[0], &h.Vars[1]
	if !h.IsRecordVar(temp) {
		t.Fatal("temp should be a record variable")
	}
	if h.IsRecordVar(mask) {
		t.Fatal("mask should be fixed")
	}
	// mask (fixed) must start right after the header, temp (record) after it.
	if mask.Begin != Round4(h.EncodedSize()) {
		t.Fatalf("mask.Begin=%d, want %d", mask.Begin, Round4(h.EncodedSize()))
	}
	if mask.VSize != 3*4*4 {
		t.Fatalf("mask.VSize=%d, want 48", mask.VSize)
	}
	if temp.Begin != mask.Begin+mask.VSize {
		t.Fatalf("temp.Begin=%d, want %d", temp.Begin, mask.Begin+mask.VSize)
	}
	if temp.VSize != 3*4*4 { // one record: lat*lon floats
		t.Fatalf("temp.VSize=%d, want 48", temp.VSize)
	}
	if h.RecSize() != temp.VSize {
		t.Fatalf("RecSize=%d, want %d", h.RecSize(), temp.VSize)
	}
}

func TestSingleRecordVarNoPadding(t *testing.T) {
	// With exactly one record variable of a small type, records are packed
	// with no padding (the classic special case).
	h := &Header{Version: 1}
	h.Dims = []Dim{{"t", 0}, {"x", 3}}
	h.Vars = []Var{{Name: "v", DimIDs: []int{0, 1}, Type: nctype.Short}}
	if err := h.ComputeLayout(1); err != nil {
		t.Fatal(err)
	}
	if h.Vars[0].VSize != 6 {
		t.Fatalf("single record var VSize=%d, want unpadded 6", h.Vars[0].VSize)
	}
	// Adding a second record variable restores padding.
	h.Vars = append(h.Vars, Var{Name: "w", DimIDs: []int{0}, Type: nctype.Byte})
	if err := h.ComputeLayout(1); err != nil {
		t.Fatal(err)
	}
	if h.Vars[0].VSize != 8 {
		t.Fatalf("record var VSize=%d, want padded 8", h.Vars[0].VSize)
	}
	if h.Vars[1].VSize != 4 {
		t.Fatalf("record var VSize=%d, want padded 4", h.Vars[1].VSize)
	}
	if h.RecSize() != 12 {
		t.Fatalf("RecSize=%d, want 12", h.RecSize())
	}
}

func TestRecordInterleaving(t *testing.T) {
	// Figure 1: records of all record variables are interleaved; record r of
	// variable v lives at v.Begin + r*RecSize().
	h := &Header{Version: 1}
	h.Dims = []Dim{{"t", 0}, {"x", 2}}
	h.Vars = []Var{
		{Name: "a", DimIDs: []int{0, 1}, Type: nctype.Int},
		{Name: "b", DimIDs: []int{0, 1}, Type: nctype.Int},
	}
	if err := h.ComputeLayout(1); err != nil {
		t.Fatal(err)
	}
	a, b := &h.Vars[0], &h.Vars[1]
	if b.Begin != a.Begin+a.VSize {
		t.Fatalf("b.Begin=%d, want %d", b.Begin, a.Begin+a.VSize)
	}
	if h.RecordOffset(a, 1) != a.Begin+16 {
		t.Fatalf("record 1 of a at %d, want %d", h.RecordOffset(a, 1), a.Begin+16)
	}
	if h.RecordOffset(b, 1) <= h.RecordOffset(a, 1) {
		t.Fatal("records must interleave in defined order")
	}
}

func TestCDF1OffsetOverflow(t *testing.T) {
	h := &Header{Version: 1}
	h.Dims = []Dim{{"x", 1 << 20}, {"y", 1 << 10}}
	h.Vars = []Var{
		{Name: "big", DimIDs: []int{0, 1}, Type: nctype.Double}, // 8 GiB
	}
	if err := h.ComputeLayout(1); err == nil {
		t.Fatal("CDF-1 must reject variables larger than 2 GiB")
	}
	h.Version = 2
	if err := h.ComputeLayout(1); err != nil {
		t.Fatalf("CDF-2 should accept an 8 GiB variable: %v", err)
	}
}

func TestHeaderAlignHint(t *testing.T) {
	h := simpleHeader(t, 1)
	if err := h.ComputeLayout(1024); err != nil {
		t.Fatal(err)
	}
	if h.DataStart()%1024 != 0 {
		t.Fatalf("data start %d not aligned to 1024", h.DataStart())
	}
}

func TestValidateCatchesMistakes(t *testing.T) {
	mk := func(mut func(*Header)) error {
		h := simpleHeader(t, 1)
		mut(h)
		return h.Validate()
	}
	cases := []struct {
		name string
		mut  func(*Header)
	}{
		{"dup dim", func(h *Header) { h.Dims = append(h.Dims, Dim{"lat", 5}) }},
		{"two unlimited", func(h *Header) { h.Dims = append(h.Dims, Dim{"t2", 0}) }},
		{"bad dimid", func(h *Header) { h.Vars[0].DimIDs = []int{99} }},
		{"record dim not first", func(h *Header) { h.Vars[0].DimIDs = []int{0, 2, 1} }},
		{"dup var", func(h *Header) { h.Vars[1].Name = "temp" }},
		{"bad name", func(h *Header) { h.Vars[1].Name = "a/b" }},
		{"bad type", func(h *Header) { h.Vars[1].Type = nctype.Type(99) }},
		{"cdf2 type in cdf1", func(h *Header) { h.Vars[1].Type = nctype.UInt64 }},
		{"negative dim", func(h *Header) { h.Dims[0].Len = -2 }},
	}
	for _, c := range cases {
		if err := mk(c.mut); err == nil {
			t.Errorf("%s: Validate accepted invalid header", c.name)
		}
	}
}

func TestCheckName(t *testing.T) {
	good := []string{"x", "_temp", "9lives", "a-b.c", "temp_2m"}
	for _, n := range good {
		if err := CheckName(n); err != nil {
			t.Errorf("CheckName(%q) = %v, want nil", n, err)
		}
	}
	bad := []string{"", " lead", "trail ", "a/b", "a\x01b", string(make([]byte, 300))}
	for _, n := range bad {
		if err := CheckName(n); err == nil {
			t.Errorf("CheckName(%q) accepted", n)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	h := simpleHeader(t, 1)
	c := h.Clone()
	c.Dims[0].Len = 99
	c.Vars[0].DimIDs[0] = 0
	c.GAttrs[0].Values[0] = 'X'
	if h.Dims[0].Len == 99 || h.Vars[0].DimIDs[0] == 0 || h.GAttrs[0].Values[0] == 'X' {
		t.Fatal("Clone shares memory with the original")
	}
	if !h.Clone().Equal(h) {
		t.Fatal("Clone not Equal to original")
	}
}

func TestFileSizeAndRecordStart(t *testing.T) {
	h := simpleHeader(t, 1)
	h.NumRecs = 5
	if err := h.ComputeLayout(1); err != nil {
		t.Fatal(err)
	}
	wantEnd := h.RecordStart() + 5*h.RecSize()
	if h.FileSize() != wantEnd {
		t.Fatalf("FileSize=%d, want %d", h.FileSize(), wantEnd)
	}
}

func TestVarShape(t *testing.T) {
	h := simpleHeader(t, 1)
	h.NumRecs = 9
	shape := h.VarShape(&h.Vars[0])
	if len(shape) != 3 || shape[0] != 9 || shape[1] != 3 || shape[2] != 4 {
		t.Fatalf("VarShape = %v, want [9 3 4]", shape)
	}
}

// Fuzz-style robustness: Decode must reject (not panic on) arbitrary
// mutations of a valid header.
func TestDecodeMutatedHeaderNeverPanics(t *testing.T) {
	h := simpleHeader(t, 1)
	base := h.Encode()
	for i := 0; i < len(base); i++ {
		for _, b := range []byte{0x00, 0xFF, 0x7F, base[i] + 1} {
			buf := append([]byte(nil), base...)
			buf[i] = b
			// Either a valid decode or an error — never a panic.
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("Decode panicked with byte %d = %#x: %v", i, b, r)
					}
				}()
				_, _ = Decode(buf)
			}()
		}
	}
}

func TestDecodeRandomBytesNeverPanic(t *testing.T) {
	rng := newTestRand()
	for i := 0; i < 2000; i++ {
		n := rng.Intn(200)
		buf := make([]byte, n+4)
		copy(buf, []byte{'C', 'D', 'F', byte(1 + rng.Intn(5))})
		rng.Read(buf[4:])
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on random input %d: %v", i, r)
				}
			}()
			_, _ = Decode(buf)
		}()
	}
}

func TestCheckLayoutCleanAndCorrupted(t *testing.T) {
	h := simpleHeader(t, 1)
	h.NumRecs = 2
	if err := h.ComputeLayout(1); err != nil {
		t.Fatal(err)
	}
	if issues := h.CheckLayout(h.FileSize()); len(issues) != 0 {
		t.Fatalf("clean layout flagged: %v", issues)
	}
	// A larger file (preallocation) is fine.
	if issues := h.CheckLayout(h.FileSize() + 4096); len(issues) != 0 {
		t.Fatalf("preallocated file flagged: %v", issues)
	}
	// Truncated file is caught.
	if issues := h.CheckLayout(h.FileSize() - 1); len(issues) == 0 {
		t.Fatal("truncated file not flagged")
	}
	// Overlapping fixed variables are caught.
	c := h.Clone()
	c.Vars[0].Begin = c.Vars[1].Begin // temp is record; use two fixed
	c2 := h.Clone()
	c2.Vars = append(c2.Vars, Var{Name: "extra", DimIDs: []int{0}, Type: nctype.Int,
		VSize: 12, Begin: c2.Vars[1].Begin + 4})
	if issues := c2.CheckLayout(-1); len(issues) == 0 {
		t.Fatal("overlapping fixed slots not flagged")
	}
	// Wrong vsize is caught.
	c3 := h.Clone()
	c3.Vars[1].VSize += 4
	found := false
	for _, iss := range c3.CheckLayout(-1) {
		if iss.Var == "mask" {
			found = true
		}
	}
	if !found {
		t.Fatal("bad vsize not flagged")
	}
	// Begin inside the header is caught.
	c4 := h.Clone()
	c4.Vars[1].Begin = 4
	if issues := c4.CheckLayout(-1); len(issues) == 0 {
		t.Fatal("begin inside header not flagged")
	}
}

func TestCheckFile(t *testing.T) {
	h := simpleHeader(t, 1)
	img := h.Encode()
	// Pad to full declared size.
	full := make([]byte, h.FileSize())
	copy(full, img)
	got, issues, err := CheckFile(full)
	if err != nil || len(issues) != 0 || got.FindVar("temp") < 0 {
		t.Fatalf("CheckFile: %v %v", issues, err)
	}
	if _, _, err := CheckFile([]byte("garbage")); err == nil {
		t.Fatal("CheckFile accepted garbage")
	}
}

func TestSmallHelpers(t *testing.T) {
	h := simpleHeader(t, 1)
	if h.UnlimitedDimID() != 2 {
		t.Fatalf("UnlimitedDimID = %d", h.UnlimitedDimID())
	}
	if h.FindDim("lon") != 1 || h.FindDim("absent") != -1 {
		t.Fatal("FindDim wrong")
	}
	if FindAttr(h.GAttrs, "title") != 0 || FindAttr(h.GAttrs, "x") != -1 {
		t.Fatal("FindAttr wrong")
	}
	ids := h.SortedVarIDsByBegin()
	// mask (fixed) precedes temp (record section).
	if len(ids) != 2 || h.Vars[ids[0]].Name != "mask" || h.Vars[ids[1]].Name != "temp" {
		t.Fatalf("SortedVarIDsByBegin = %v", ids)
	}
	n, err := DecodedHeaderSize(h.Encode())
	if err != nil || n != h.EncodedSize() {
		t.Fatalf("DecodedHeaderSize = %d (%v), want %d", n, err, h.EncodedSize())
	}
	if _, err := DecodedHeaderSize([]byte("junk")); err == nil {
		t.Fatal("DecodedHeaderSize accepted junk")
	}
	iss := LayoutIssue{Var: "v", Desc: "broken"}
	if iss.String() != `variable "v": broken` {
		t.Fatalf("issue string = %q", iss.String())
	}
	if (LayoutIssue{Desc: "file-level"}).String() != "file-level" {
		t.Fatalf("file-level issue string wrong")
	}
}

func TestDecodeAttrValueAllTypes(t *testing.T) {
	mk := func(tp nctype.Type, val any) Attr {
		a, err := MakeAttr("a", tp, val)
		if err != nil {
			t.Fatalf("MakeAttr %v: %v", tp, err)
		}
		return a
	}
	cases := []struct {
		attr Attr
		chk  func(any) bool
	}{
		{mk(nctype.Char, "xy"), func(v any) bool { return string(v.([]byte)) == "xy" }},
		{mk(nctype.Byte, []int8{-3}), func(v any) bool { return v.([]int8)[0] == -3 }},
		{mk(nctype.Short, []int16{7}), func(v any) bool { return v.([]int16)[0] == 7 }},
		{mk(nctype.Int, []int32{9}), func(v any) bool { return v.([]int32)[0] == 9 }},
		{mk(nctype.Float, []float32{1.5}), func(v any) bool { return v.([]float32)[0] == 1.5 }},
		{mk(nctype.Double, []float64{2.5}), func(v any) bool { return v.([]float64)[0] == 2.5 }},
	}
	for i, c := range cases {
		v, err := DecodeAttrValue(c.attr)
		if err != nil || !c.chk(v) {
			t.Fatalf("case %d: %v %v", i, v, err)
		}
	}
	// CDF-5 types.
	for _, tp := range []nctype.Type{nctype.UByte, nctype.UShort, nctype.UInt, nctype.Int64, nctype.UInt64} {
		a, err := MakeAttr("a", tp, []uint16{3})
		if err != nil {
			t.Fatalf("%v: %v", tp, err)
		}
		if _, err := DecodeAttrValue(a); err != nil {
			t.Fatalf("decode %v: %v", tp, err)
		}
	}
}

func TestFillBytesDefaultsAndCustom(t *testing.T) {
	v := &Var{Name: "v", Type: nctype.Float}
	buf := FillBytes(v, 3)
	got := make([]float32, 3)
	if err := DecodeSlice(buf, nctype.Float, got); err != nil {
		t.Fatal(err)
	}
	for _, x := range got {
		if x != nctype.FillFloat {
			t.Fatalf("default fill = %v", got)
		}
	}
	// Custom _FillValue attribute wins.
	fa, _ := MakeAttr("_FillValue", nctype.Float, []float32{-5})
	v.Attrs = []Attr{fa}
	buf = FillBytes(v, 2)
	if err := DecodeSlice(buf, nctype.Float, got[:2]); err != nil {
		t.Fatal(err)
	}
	if got[0] != -5 || got[1] != -5 {
		t.Fatalf("custom fill = %v", got[:2])
	}
	// Every default type produces the right width.
	for _, tp := range []nctype.Type{nctype.Byte, nctype.Char, nctype.Short, nctype.Int, nctype.Double, nctype.Int64} {
		w := &Var{Name: "w", Type: tp}
		if len(FillBytes(w, 4)) != 4*tp.Size() {
			t.Fatalf("fill width for %v", tp)
		}
	}
}

func TestSliceLenAndPromote(t *testing.T) {
	cases := map[int]any{
		1: []int8{0}, 2: []int16{0, 0}, 3: []int32{0, 0, 0},
		4: []int64{0, 0, 0, 0}, 5: []uint8{0, 0, 0, 0, 0},
		6: []uint16{0, 0, 0, 0, 0, 0}, 7: []uint32{0, 0, 0, 0, 0, 0, 0},
		8: []uint64{0, 0, 0, 0, 0, 0, 0, 0}, 9: make([]float32, 9),
		10: make([]float64, 10), 11: "elevenchars",
	}
	for n, v := range cases {
		if SliceLen(v) != n {
			t.Fatalf("SliceLen(%T) = %d, want %d", v, SliceLen(v), n)
		}
	}
	if SliceLen(struct{}{}) != -1 {
		t.Fatal("SliceLen of unsupported type")
	}
	// promoteScalar via MakeAttr for every scalar kind.
	for _, scalar := range []any{int8(1), int16(1), int32(1), int64(1), int(1),
		uint8(1), uint16(1), uint32(1), uint64(1), float32(1), float64(1)} {
		a, err := MakeAttr("s", nctype.Double, scalar)
		if err != nil || a.Nelems != 1 {
			t.Fatalf("scalar %T: %+v %v", scalar, a, err)
		}
	}
}
