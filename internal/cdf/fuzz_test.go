package cdf

import (
	"testing"

	"pnetcdf/internal/nctype"
)

// fuzzSeedHeader builds a representative header image for the fuzz corpus:
// dims (incl. unlimited), global and per-var attributes of several types,
// fixed and record variables.
func fuzzSeedHeader(version int) []byte {
	h := &Header{Version: version}
	h.Dims = []Dim{{Name: "time", Len: 0}, {Name: "x", Len: 7}, {Name: "y", Len: 3}}
	h.GAttrs = []Attr{
		mkAttr("title", nctype.Char, []byte("fuzz seed")),
		mkAttr("level", nctype.Int, []byte{0, 0, 0, 9}),
	}
	h.Vars = []Var{
		{Name: "grid", Type: nctype.Double, DimIDs: []int{1, 2},
			Attrs: []Attr{mkAttr("units", nctype.Char, []byte("m"))}},
		{Name: "temp", Type: nctype.Float, DimIDs: []int{0, 1}},
		{Name: "flag", Type: nctype.Byte, DimIDs: []int{}},
	}
	if err := h.ComputeLayout(1); err != nil {
		panic(err)
	}
	h.NumRecs = 4
	return h.Encode()
}

func mkAttr(name string, t nctype.Type, vals []byte) Attr {
	return Attr{Name: name, Type: t, Nelems: int64(len(vals)) / int64(t.Size()), Values: vals}
}

// FuzzDecode: the header decoder must never panic or over-allocate on
// hostile input — only return a header or an error. Seeds cover the three
// format versions plus images truncated at every crash point a torn header
// commit can produce (mid-magic, mid-numrecs, mid-body), and bit-flipped
// counts that historically tripped make() with negative sizes.
func FuzzDecode(f *testing.F) {
	for _, v := range []int{1, 2, 5} {
		img := fuzzSeedHeader(v)
		f.Add(img)
		// Crash-point truncations: a commit that died after writing only a
		// prefix of the header region.
		for _, cut := range []int{1, 3, 5, len(img) / 2, len(img) - 1} {
			if cut < len(img) {
				f.Add(append([]byte(nil), img[:cut]...)) //nolint:makezero
			}
		}
		// Torn magic: commit step 2 zeroes the magic before the body lands.
		torn := append([]byte(nil), img...)
		copy(torn, []byte{0, 0, 0, 0})
		f.Add(torn)
		// Hostile counts: sign-bit NumRecs (CDF-5) / huge NumRecs (CDF-1/2).
		evil := append([]byte(nil), img...)
		for i := 4; i < 12 && i < len(evil); i++ {
			evil[i] = 0xFF
		}
		f.Add(evil)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := Decode(data)
		if err != nil {
			return
		}
		// A successful decode must survive its own invariants: re-encode
		// and layout computation must not panic either.
		if h.Validate() != nil {
			t.Fatalf("Decode returned header failing its own Validate")
		}
		_ = h.Encode()
		_ = h.FileSize()
		_ = h.RecSize()
	})
}
