// Package cdf implements the netCDF classic file format (CDF-1, CDF-2 and
// CDF-5): the binary header holding dimensions, global attributes and
// variable metadata, the layout rules placing fixed-size arrays contiguously
// and record variables interleaved by record, and the big-endian external
// data encoding.
//
// The package is pure encoding/decoding and layout arithmetic; it performs
// no I/O. Both the serial library (internal/netcdf) and the parallel library
// (internal/core) share it, which is what guarantees that files written by
// one are readable by the other — the property the paper relies on when it
// keeps "the original netCDF file format (version 3)".
package cdf

import (
	"fmt"
	"sort"

	"pnetcdf/internal/nctype"
)

// Dim is a named dimension. Len == 0 marks the unlimited (record) dimension.
type Dim struct {
	Name string
	Len  int64
}

// IsUnlimited reports whether d is the record dimension.
func (d Dim) IsUnlimited() bool { return d.Len == nctype.UnlimitedDim }

// Attr is an attribute: a name plus a small typed vector. Values holds the
// external (big-endian) representation; Nelems is the number of values.
type Attr struct {
	Name   string
	Type   nctype.Type
	Nelems int64
	Values []byte
}

// Var describes one variable: its shape (dimension IDs into the header's
// dimension list), attributes, external type, and file layout (Begin offset
// and VSize, the per-record or whole-array external size).
type Var struct {
	Name   string
	DimIDs []int
	Attrs  []Attr
	Type   nctype.Type

	// VSize is the external size in bytes of the variable's fixed part: the
	// whole array for fixed variables, one record for record variables.
	// It includes the classic format's padding to a 4-byte boundary except
	// in the single-record-variable special case.
	VSize int64
	// Begin is the file offset of the variable's first byte.
	Begin int64
}

// Header is the in-memory model of a classic-format file header.
type Header struct {
	// Version is 1 (CDF-1), 2 (CDF-2) or 5 (CDF-5).
	Version int
	// NumRecs is the current number of records along the unlimited dimension.
	NumRecs int64
	Dims    []Dim
	GAttrs  []Attr
	Vars    []Var
}

// UnlimitedDimID returns the index of the record dimension, or -1.
func (h *Header) UnlimitedDimID() int {
	for i, d := range h.Dims {
		if d.IsUnlimited() {
			return i
		}
	}
	return -1
}

// IsRecordVar reports whether variable v uses the unlimited dimension.
// Per the classic format, the unlimited dimension may only appear as the
// first (most significant) dimension.
func (h *Header) IsRecordVar(v *Var) bool {
	return len(v.DimIDs) > 0 && h.Dims[v.DimIDs[0]].IsUnlimited()
}

// VarShape returns the dimension lengths of v in defined order. The record
// dimension, if present, is reported with the current NumRecs.
func (h *Header) VarShape(v *Var) []int64 {
	shape := make([]int64, len(v.DimIDs))
	for i, id := range v.DimIDs {
		if h.Dims[id].IsUnlimited() {
			shape[i] = h.NumRecs
		} else {
			shape[i] = h.Dims[id].Len
		}
	}
	return shape
}

// FindDim returns the ID of the dimension with the given name, or -1.
func (h *Header) FindDim(name string) int {
	for i, d := range h.Dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// FindVar returns the ID of the variable with the given name, or -1.
func (h *Header) FindVar(name string) int {
	for i := range h.Vars {
		if h.Vars[i].Name == name {
			return i
		}
	}
	return -1
}

// FindAttr returns the index of the named attribute in attrs, or -1.
func FindAttr(attrs []Attr, name string) int {
	for i := range attrs {
		if attrs[i].Name == name {
			return i
		}
	}
	return -1
}

// NumRecVars counts the record variables.
func (h *Header) NumRecVars() int {
	n := 0
	for i := range h.Vars {
		if h.IsRecordVar(&h.Vars[i]) {
			n++
		}
	}
	return n
}

// RecSize returns the external size of one full record: the sum of the
// per-record sizes of all record variables, honoring the classic format's
// single-record-variable special case (no inter-record padding).
func (h *Header) RecSize() int64 {
	var total int64
	for i := range h.Vars {
		if h.IsRecordVar(&h.Vars[i]) {
			total += h.Vars[i].VSize
		}
	}
	return total
}

// Clone returns a deep copy of the header. The parallel library keeps one
// clone per process and synchronizes them collectively.
func (h *Header) Clone() *Header {
	c := &Header{Version: h.Version, NumRecs: h.NumRecs}
	c.Dims = append([]Dim(nil), h.Dims...)
	c.GAttrs = cloneAttrs(h.GAttrs)
	c.Vars = make([]Var, len(h.Vars))
	for i, v := range h.Vars {
		nv := v
		nv.DimIDs = append([]int(nil), v.DimIDs...)
		nv.Attrs = cloneAttrs(v.Attrs)
		c.Vars[i] = nv
	}
	return c
}

func cloneAttrs(as []Attr) []Attr {
	if as == nil {
		return nil
	}
	out := make([]Attr, len(as))
	for i, a := range as {
		na := a
		na.Values = append([]byte(nil), a.Values...)
		out[i] = na
	}
	return out
}

// Equal reports whether two headers describe identical datasets (same
// structure and same layout). Used by the parallel library's define-mode
// consistency check.
func (h *Header) Equal(o *Header) bool {
	if h.Version != o.Version || h.NumRecs != o.NumRecs ||
		len(h.Dims) != len(o.Dims) || len(h.GAttrs) != len(o.GAttrs) ||
		len(h.Vars) != len(o.Vars) {
		return false
	}
	for i := range h.Dims {
		if h.Dims[i] != o.Dims[i] {
			return false
		}
	}
	if !attrsEqual(h.GAttrs, o.GAttrs) {
		return false
	}
	for i := range h.Vars {
		a, b := &h.Vars[i], &o.Vars[i]
		if a.Name != b.Name || a.Type != b.Type || a.VSize != b.VSize ||
			a.Begin != b.Begin || len(a.DimIDs) != len(b.DimIDs) {
			return false
		}
		for j := range a.DimIDs {
			if a.DimIDs[j] != b.DimIDs[j] {
				return false
			}
		}
		if !attrsEqual(a.Attrs, b.Attrs) {
			return false
		}
	}
	return true
}

func attrsEqual(a, b []Attr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Type != b[i].Type ||
			a[i].Nelems != b[i].Nelems || string(a[i].Values) != string(b[i].Values) {
			return false
		}
	}
	return true
}

// Validate checks structural invariants: name validity and uniqueness, at
// most one unlimited dimension used only in the leading position, valid
// dimension IDs, and valid types for the format version.
func (h *Header) Validate() error {
	if h.Version != 1 && h.Version != 2 && h.Version != 5 {
		return fmt.Errorf("%w: version %d", nctype.ErrVersion, h.Version)
	}
	seenDim := map[string]bool{}
	unlimited := 0
	for _, d := range h.Dims {
		if err := CheckName(d.Name); err != nil {
			return err
		}
		if seenDim[d.Name] {
			return fmt.Errorf("%w: dimension %q", nctype.ErrNameInUse, d.Name)
		}
		seenDim[d.Name] = true
		if d.Len < 0 {
			return fmt.Errorf("%w: dimension %q length %d", nctype.ErrBadDim, d.Name, d.Len)
		}
		if d.IsUnlimited() {
			unlimited++
		}
	}
	if unlimited > 1 {
		return nctype.ErrMultiUnlimited
	}
	if err := validateAttrs(h.GAttrs, h.Version); err != nil {
		return err
	}
	seenVar := map[string]bool{}
	for i := range h.Vars {
		v := &h.Vars[i]
		if err := CheckName(v.Name); err != nil {
			return err
		}
		if seenVar[v.Name] {
			return fmt.Errorf("%w: variable %q", nctype.ErrNameInUse, v.Name)
		}
		seenVar[v.Name] = true
		if !v.Type.Valid(h.Version) {
			return fmt.Errorf("%w: variable %q type %v", nctype.ErrBadType, v.Name, v.Type)
		}
		if len(v.DimIDs) > nctype.MaxDims {
			return nctype.ErrMaxDims
		}
		for pos, id := range v.DimIDs {
			if id < 0 || id >= len(h.Dims) {
				return fmt.Errorf("%w: variable %q dimid %d", nctype.ErrBadDim, v.Name, id)
			}
			if h.Dims[id].IsUnlimited() && pos != 0 {
				return fmt.Errorf("%w: variable %q", nctype.ErrUnlimPos, v.Name)
			}
		}
		if err := validateAttrs(v.Attrs, h.Version); err != nil {
			return err
		}
	}
	return nil
}

func validateAttrs(attrs []Attr, version int) error {
	seen := map[string]bool{}
	for _, a := range attrs {
		if err := CheckName(a.Name); err != nil {
			return err
		}
		if seen[a.Name] {
			return fmt.Errorf("%w: attribute %q", nctype.ErrNameInUse, a.Name)
		}
		seen[a.Name] = true
		if !a.Type.Valid(version) {
			return fmt.Errorf("%w: attribute %q type %v", nctype.ErrBadType, a.Name, a.Type)
		}
		if int64(len(a.Values)) != a.Nelems*int64(a.Type.Size()) {
			return fmt.Errorf("%w: attribute %q value size", nctype.ErrInvalidArg, a.Name)
		}
	}
	return nil
}

// CheckName validates a netCDF object name: nonempty, at most MaxNameLen
// bytes, beginning with a letter, digit or underscore, and containing no
// control characters, slashes, or trailing spaces.
func CheckName(name string) error {
	if name == "" || len(name) > nctype.MaxNameLen {
		return fmt.Errorf("%w: %q", nctype.ErrBadName, name)
	}
	c := name[0]
	if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
		return fmt.Errorf("%w: %q", nctype.ErrBadName, name)
	}
	for i := 0; i < len(name); i++ {
		if name[i] < 0x20 || name[i] == 0x7F || name[i] == '/' {
			return fmt.Errorf("%w: %q", nctype.ErrBadName, name)
		}
	}
	if name[len(name)-1] == ' ' {
		return fmt.Errorf("%w: %q", nctype.ErrBadName, name)
	}
	return nil
}

// SortedVarIDsByBegin returns variable IDs ordered by file offset; handy for
// layout inspection and for ncdump's data section.
func (h *Header) SortedVarIDsByBegin() []int {
	ids := make([]int, len(h.Vars))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return h.Vars[ids[a]].Begin < h.Vars[ids[b]].Begin })
	return ids
}
