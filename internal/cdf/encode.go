package cdf

import (
	"encoding/binary"

	"pnetcdf/internal/nctype"
)

// nonNegSize returns the width in bytes of a NON_NEG field for the format
// version: 4 for CDF-1/2, 8 for CDF-5.
func nonNegSize(version int) int64 {
	if version == 5 {
		return 8
	}
	return 4
}

// offsetSize returns the width of a variable Begin offset: 4 for CDF-1,
// 8 for CDF-2 and CDF-5.
func offsetSize(version int) int64 {
	if version == 1 {
		return 4
	}
	return 8
}

type headerWriter struct {
	buf     []byte
	version int
}

func (w *headerWriter) bytes(b []byte) { w.buf = append(w.buf, b...) }

func (w *headerWriter) pad4() {
	for len(w.buf)%4 != 0 {
		w.buf = append(w.buf, 0)
	}
}

func (w *headerWriter) uint32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

func (w *headerWriter) nonNeg(v int64) {
	if w.version == 5 {
		w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(v))
	} else {
		w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(v))
	}
}

func (w *headerWriter) offset(v int64) {
	if w.version == 1 {
		w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(v))
	} else {
		w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(v))
	}
}

func (w *headerWriter) name(s string) {
	w.nonNeg(int64(len(s)))
	w.bytes([]byte(s))
	w.pad4()
}

func (w *headerWriter) tagList(tag uint32, n int) {
	if n == 0 {
		w.uint32(nctype.TagAbsent)
		w.nonNeg(0)
		return
	}
	w.uint32(tag)
	w.nonNeg(int64(n))
}

func (w *headerWriter) attrs(attrs []Attr) {
	w.tagList(nctype.TagAttribute, len(attrs))
	for _, a := range attrs {
		w.name(a.Name)
		w.uint32(uint32(a.Type))
		w.nonNeg(a.Nelems)
		w.bytes(a.Values)
		w.pad4()
	}
}

// Encode serializes the header to its on-disk byte representation.
// ComputeLayout must have been called (Begin/VSize populated).
func (h *Header) Encode() []byte {
	w := &headerWriter{version: h.Version}
	w.bytes([]byte{'C', 'D', 'F', byte(h.Version)})
	w.nonNeg(h.NumRecs)
	// dim_list
	w.tagList(nctype.TagDimension, len(h.Dims))
	for _, d := range h.Dims {
		w.name(d.Name)
		w.nonNeg(d.Len)
	}
	// gatt_list
	w.attrs(h.GAttrs)
	// var_list
	w.tagList(nctype.TagVariable, len(h.Vars))
	for i := range h.Vars {
		v := &h.Vars[i]
		w.name(v.Name)
		w.nonNeg(int64(len(v.DimIDs)))
		for _, id := range v.DimIDs {
			w.nonNeg(int64(id))
		}
		w.attrs(v.Attrs)
		w.uint32(uint32(v.Type))
		w.nonNeg(v.VSize)
		w.offset(v.Begin)
	}
	return w.buf
}

// EncodedSize returns the exact byte length Encode will produce, without
// allocating the encoding. Layout computation needs this to place the first
// variable.
func (h *Header) EncodedSize() int64 {
	nn := nonNegSize(h.Version)
	size := int64(4) + nn // magic + numrecs
	size += 4 + nn        // dim_list tag+nelems
	for _, d := range h.Dims {
		size += nn + Round4(int64(len(d.Name))) + nn
	}
	size += attrsEncodedSize(h.GAttrs, nn)
	size += 4 + nn // var_list tag+nelems
	for i := range h.Vars {
		v := &h.Vars[i]
		size += nn + Round4(int64(len(v.Name)))
		size += nn + int64(len(v.DimIDs))*nn
		size += attrsEncodedSize(v.Attrs, nn)
		size += 4 + nn + offsetSize(h.Version)
	}
	return size
}

func attrsEncodedSize(attrs []Attr, nn int64) int64 {
	size := 4 + nn
	for _, a := range attrs {
		size += nn + Round4(int64(len(a.Name)))
		size += 4 + nn + Round4(int64(len(a.Values)))
	}
	return size
}
