package cdf

import (
	"encoding/binary"
	"fmt"
	"math"

	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
)

// Identity fast paths: when the memory element type already matches the
// external type bit-for-bit (modulo byte order), conversion is a bswap copy
// per contiguous run with no range checks or widening. These carry the bulk
// of real workloads — FLASH writes float32/float64 straight through — and
// are what makes the strided pack run at copy speed.

// checkSegs validates the element segments against src and returns their
// total element count.
func checkSegs[T any](src []T, segs []mpitype.Segment) (int64, error) {
	var total int64
	for _, s := range segs {
		if s.Off < 0 || s.Len < 0 || s.Off+s.Len > int64(len(src)) {
			return 0, fmt.Errorf("mpitype: element segment %+v outside buffer of %d", s, len(src))
		}
		total += s.Len
	}
	return total, nil
}

// extend grows dst by n bytes WITHOUT zeroing when capacity suffices (the
// caller overwrites every byte) and returns the full slice plus the
// extension.
func extend(dst []byte, n int) ([]byte, []byte) {
	base := len(dst)
	if cap(dst)-base >= n {
		dst = dst[:base+n]
	} else {
		dst = append(dst, make([]byte, n)...)
	}
	return dst, dst[base:]
}

func encSegs8[S ~int8 | ~uint8](dst []byte, src []S, segs []mpitype.Segment) ([]byte, error) {
	total, err := checkSegs(src, segs)
	if err != nil {
		return dst, err
	}
	dst, o := extend(dst, int(total))
	for _, sg := range segs {
		run := src[sg.Off : sg.Off+sg.Len]
		for i, v := range run {
			o[i] = byte(v)
		}
		o = o[len(run):]
	}
	return dst, nil
}

func encSegs16[S ~int16 | ~uint16](dst []byte, src []S, segs []mpitype.Segment) ([]byte, error) {
	total, err := checkSegs(src, segs)
	if err != nil {
		return dst, err
	}
	dst, o := extend(dst, int(total)*2)
	for _, sg := range segs {
		for _, v := range src[sg.Off : sg.Off+sg.Len] {
			binary.BigEndian.PutUint16(o, uint16(v))
			o = o[2:]
		}
	}
	return dst, nil
}

func encSegs32[S ~int32 | ~uint32](dst []byte, src []S, segs []mpitype.Segment) ([]byte, error) {
	total, err := checkSegs(src, segs)
	if err != nil {
		return dst, err
	}
	dst, o := extend(dst, int(total)*4)
	for _, sg := range segs {
		for _, v := range src[sg.Off : sg.Off+sg.Len] {
			binary.BigEndian.PutUint32(o, uint32(v))
			o = o[4:]
		}
	}
	return dst, nil
}

func encSegs64[S ~int64 | ~uint64](dst []byte, src []S, segs []mpitype.Segment) ([]byte, error) {
	total, err := checkSegs(src, segs)
	if err != nil {
		return dst, err
	}
	dst, o := extend(dst, int(total)*8)
	for _, sg := range segs {
		for _, v := range src[sg.Off : sg.Off+sg.Len] {
			binary.BigEndian.PutUint64(o, uint64(v))
			o = o[8:]
		}
	}
	return dst, nil
}

func encSegsF32(dst []byte, src []float32, segs []mpitype.Segment) ([]byte, error) {
	total, err := checkSegs(src, segs)
	if err != nil {
		return dst, err
	}
	dst, o := extend(dst, int(total)*4)
	for _, sg := range segs {
		run := src[sg.Off : sg.Off+sg.Len]
		// Pack four elements into two 8-byte stores per iteration: runs from
		// flattened subarrays are short (the innermost dim), so shrinking the
		// per-element slice bookkeeping matters more than it would on a long
		// contiguous loop.
		i := 0
		for ; i+3 < len(run); i += 4 {
			w0 := uint64(math.Float32bits(run[i]))<<32 | uint64(math.Float32bits(run[i+1]))
			w1 := uint64(math.Float32bits(run[i+2]))<<32 | uint64(math.Float32bits(run[i+3]))
			binary.BigEndian.PutUint64(o, w0)
			binary.BigEndian.PutUint64(o[8:], w1)
			o = o[16:]
		}
		for ; i < len(run); i++ {
			binary.BigEndian.PutUint32(o, math.Float32bits(run[i]))
			o = o[4:]
		}
	}
	return dst, nil
}

func encSegsF64(dst []byte, src []float64, segs []mpitype.Segment) ([]byte, error) {
	total, err := checkSegs(src, segs)
	if err != nil {
		return dst, err
	}
	dst, o := extend(dst, int(total)*8)
	for _, sg := range segs {
		for _, v := range src[sg.Off : sg.Off+sg.Len] {
			binary.BigEndian.PutUint64(o, math.Float64bits(v))
			o = o[8:]
		}
	}
	return dst, nil
}

// Decode counterparts: scatter consecutive external values into the element
// positions segs selects. src length is checked against the total.

func decCheck[T any](src []byte, segs []mpitype.Segment, dst []T, esz int) (int64, error) {
	total, err := checkSegs(dst, segs)
	if err != nil {
		return 0, err
	}
	if int64(len(src)) < total*int64(esz) {
		return 0, nctype.ErrCountMismatch
	}
	return total, nil
}

func decSegs8[S ~int8 | ~uint8](src []byte, segs []mpitype.Segment, dst []S) error {
	if _, err := decCheck(src, segs, dst, 1); err != nil {
		return err
	}
	for _, sg := range segs {
		run := dst[sg.Off : sg.Off+sg.Len]
		for i := range run {
			run[i] = S(src[i])
		}
		src = src[len(run):]
	}
	return nil
}

func decSegs16[S ~int16 | ~uint16](src []byte, segs []mpitype.Segment, dst []S) error {
	if _, err := decCheck(src, segs, dst, 2); err != nil {
		return err
	}
	for _, sg := range segs {
		run := dst[sg.Off : sg.Off+sg.Len]
		for i := range run {
			run[i] = S(binary.BigEndian.Uint16(src[i*2:]))
		}
		src = src[len(run)*2:]
	}
	return nil
}

func decSegs32[S ~int32 | ~uint32](src []byte, segs []mpitype.Segment, dst []S) error {
	if _, err := decCheck(src, segs, dst, 4); err != nil {
		return err
	}
	for _, sg := range segs {
		run := dst[sg.Off : sg.Off+sg.Len]
		for i := range run {
			run[i] = S(binary.BigEndian.Uint32(src[i*4:]))
		}
		src = src[len(run)*4:]
	}
	return nil
}

func decSegs64[S ~int64 | ~uint64](src []byte, segs []mpitype.Segment, dst []S) error {
	if _, err := decCheck(src, segs, dst, 8); err != nil {
		return err
	}
	for _, sg := range segs {
		run := dst[sg.Off : sg.Off+sg.Len]
		for i := range run {
			run[i] = S(binary.BigEndian.Uint64(src[i*8:]))
		}
		src = src[len(run)*8:]
	}
	return nil
}

func decSegsF32(src []byte, segs []mpitype.Segment, dst []float32) error {
	if _, err := decCheck(src, segs, dst, 4); err != nil {
		return err
	}
	for _, sg := range segs {
		run := dst[sg.Off : sg.Off+sg.Len]
		i := 0
		for ; i+3 < len(run); i += 4 {
			w0 := binary.BigEndian.Uint64(src)
			w1 := binary.BigEndian.Uint64(src[8:])
			run[i] = math.Float32frombits(uint32(w0 >> 32))
			run[i+1] = math.Float32frombits(uint32(w0))
			run[i+2] = math.Float32frombits(uint32(w1 >> 32))
			run[i+3] = math.Float32frombits(uint32(w1))
			src = src[16:]
		}
		for ; i < len(run); i++ {
			run[i] = math.Float32frombits(binary.BigEndian.Uint32(src))
			src = src[4:]
		}
	}
	return nil
}

func decSegsF64(src []byte, segs []mpitype.Segment, dst []float64) error {
	if _, err := decCheck(src, segs, dst, 8); err != nil {
		return err
	}
	for _, sg := range segs {
		run := dst[sg.Off : sg.Off+sg.Len]
		for i := range run {
			run[i] = math.Float64frombits(binary.BigEndian.Uint64(src[i*8:]))
		}
		src = src[len(run)*8:]
	}
	return nil
}
