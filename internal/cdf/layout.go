package cdf

import (
	"fmt"

	"pnetcdf/internal/nctype"
)

// Round4 rounds n up to the next multiple of four, the classic format's
// universal alignment unit.
func Round4(n int64) int64 { return (n + 3) &^ 3 }

// VarSlotSize returns the product of a variable's non-record dimension
// lengths times the external type size — the unpadded external size of the
// fixed part of the variable (the whole array for fixed variables, one
// record for record variables).
func (h *Header) VarSlotSize(v *Var) int64 {
	size := int64(v.Type.Size())
	for pos, id := range v.DimIDs {
		if pos == 0 && h.Dims[id].IsUnlimited() {
			continue
		}
		size *= h.Dims[id].Len
	}
	return size
}

// ComputeLayout assigns VSize and Begin to every variable following the
// classic layout rules (paper Figure 1):
//
//   - fixed-size variables are placed one after another, in defined order,
//     starting immediately after the header (optionally aligned to hAlign);
//   - record variables follow the fixed ones; within one record the record
//     variables appear in defined order, and whole records repeat along the
//     unlimited dimension;
//   - every per-variable slot is padded to a 4-byte boundary, except when
//     there is exactly one record variable, in which case its records are
//     packed with no padding (the classic special case).
//
// hAlign (>= 1) allows reserving extra space after the header so the header
// can grow without moving data; PnetCDF exposes this as the
// nc_header_align_size hint.
func (h *Header) ComputeLayout(hAlign int64) error {
	return h.ComputeLayoutAligned(hAlign, 1)
}

// ComputeLayoutAligned additionally aligns the start of every fixed-size
// variable to vAlign bytes (PnetCDF's nc_var_align_size hint, useful for
// matching file-system stripe boundaries).
func (h *Header) ComputeLayoutAligned(hAlign, vAlign int64) error {
	if hAlign < 1 {
		hAlign = 1
	}
	if vAlign < 1 {
		vAlign = 1
	}
	nrec := h.NumRecVars()
	// First pass: per-variable slot sizes.
	for i := range h.Vars {
		v := &h.Vars[i]
		raw := h.VarSlotSize(v)
		if nrec == 1 && h.IsRecordVar(v) {
			v.VSize = raw // single record variable: records are packed
		} else {
			v.VSize = Round4(raw)
		}
		if h.Version == 1 && v.VSize > 1<<31-4 {
			return fmt.Errorf("%w: %q needs CDF-2 or CDF-5", nctype.ErrVarSize, v.Name)
		}
	}
	// Second pass: begins. Fixed variables first, in defined order.
	hdrSize := h.EncodedSize()
	offset := Round4(hdrSize)
	if r := offset % hAlign; r != 0 {
		offset += hAlign - r
	}
	for i := range h.Vars {
		v := &h.Vars[i]
		if h.IsRecordVar(v) {
			continue
		}
		if r := offset % vAlign; r != 0 {
			offset += vAlign - r
		}
		v.Begin = offset
		offset += v.VSize
		if err := h.checkOffset(v); err != nil {
			return err
		}
	}
	// Record variables: their Begin is the offset of their slot within the
	// first record.
	for i := range h.Vars {
		v := &h.Vars[i]
		if !h.IsRecordVar(v) {
			continue
		}
		v.Begin = offset
		offset += v.VSize
		if err := h.checkOffset(v); err != nil {
			return err
		}
	}
	return nil
}

func (h *Header) checkOffset(v *Var) error {
	if h.Version == 1 && v.Begin > 1<<31-1 {
		return fmt.Errorf("%w: %q begin offset needs CDF-2 or CDF-5", nctype.ErrVarSize, v.Name)
	}
	return nil
}

// DataStart returns the file offset of the first data byte (the smallest
// Begin), or the encoded header size if there are no variables.
func (h *Header) DataStart() int64 {
	start := int64(-1)
	for i := range h.Vars {
		if start < 0 || h.Vars[i].Begin < start {
			start = h.Vars[i].Begin
		}
	}
	if start < 0 {
		return Round4(h.EncodedSize())
	}
	return start
}

// RecordStart returns the file offset where the record section begins: the
// Begin of the first record variable, or the end of the fixed section if
// there are no record variables.
func (h *Header) RecordStart() int64 {
	start := int64(-1)
	for i := range h.Vars {
		v := &h.Vars[i]
		if h.IsRecordVar(v) && (start < 0 || v.Begin < start) {
			start = v.Begin
		}
	}
	if start >= 0 {
		return start
	}
	return h.FixedEnd()
}

// FixedEnd returns the end offset of the fixed-variable section.
func (h *Header) FixedEnd() int64 {
	end := Round4(h.EncodedSize())
	for i := range h.Vars {
		v := &h.Vars[i]
		if !h.IsRecordVar(v) && v.Begin+v.VSize > end {
			end = v.Begin + v.VSize
		}
	}
	return end
}

// FileSize returns the total external size of the file given the current
// number of records.
func (h *Header) FileSize() int64 {
	size := h.FixedEnd()
	if h.NumRecVars() > 0 {
		rs := h.RecordStart()
		size = rs + h.NumRecs*h.RecSize()
	}
	return size
}

// RecordOffset returns the file offset of record rec of record variable v.
func (h *Header) RecordOffset(v *Var, rec int64) int64 {
	return v.Begin + rec*h.RecSize()
}
