package cdf

import (
	"errors"
	"fmt"
	"slices"

	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
)

// Fused run-length pack/unpack over a flattened typemap. The flexible and
// imap APIs describe the user's memory as element segments (runs of
// contiguous elements); the seed path materialized an intermediate linear
// slice (gather, then encode). These codecs walk the runs directly — one
// conversion pass per contiguous run, no intermediate allocation or copy —
// which is what makes the strided subarray pack wall-clock competitive with
// the contiguous one.

// EncodeSegs appends the external (big-endian) representation, as type t, of
// the elements segs selects from src. Segment offsets and lengths are in
// elements of src. Out-of-range values yield ErrRange but conversion
// continues, matching EncodeSlice.
func EncodeSegs(dst []byte, t nctype.Type, src any, segs []mpitype.Segment) ([]byte, error) {
	if t == nctype.Char {
		switch s := src.(type) {
		case []byte:
			return gatherSegs(dst, s, segs)
		case string:
			return gatherSegs(dst, s, segs)
		}
		return dst, fmt.Errorf("%w: memory type %T with external char", nctype.ErrTypeMismatch, src)
	}
	// Identity pairs (memory type == external type) take the no-check bswap
	// copy in xdrfast.go; everything else goes through the converting
	// fallback.
	switch s := src.(type) {
	case []int8:
		if t == nctype.Byte {
			return encSegs8(dst, s, segs)
		}
		return encodeSegsNum(dst, t, s, segs)
	case []int16:
		if t == nctype.Short {
			return encSegs16(dst, s, segs)
		}
		return encodeSegsNum(dst, t, s, segs)
	case []int32:
		if t == nctype.Int {
			return encSegs32(dst, s, segs)
		}
		return encodeSegsNum(dst, t, s, segs)
	case []int64:
		if t == nctype.Int64 {
			return encSegs64(dst, s, segs)
		}
		return encodeSegsNum(dst, t, s, segs)
	case []uint8:
		if t == nctype.UByte {
			return encSegs8(dst, s, segs)
		}
		return encodeSegsNum(dst, t, s, segs)
	case []uint16:
		if t == nctype.UShort {
			return encSegs16(dst, s, segs)
		}
		return encodeSegsNum(dst, t, s, segs)
	case []uint32:
		if t == nctype.UInt {
			return encSegs32(dst, s, segs)
		}
		return encodeSegsNum(dst, t, s, segs)
	case []uint64:
		if t == nctype.UInt64 {
			return encSegs64(dst, s, segs)
		}
		return encodeSegsNum(dst, t, s, segs)
	case []float32:
		if t == nctype.Float {
			return encSegsF32(dst, s, segs)
		}
		return encodeSegsNum(dst, t, s, segs)
	case []float64:
		if t == nctype.Double {
			return encSegsF64(dst, s, segs)
		}
		return encodeSegsNum(dst, t, s, segs)
	}
	return dst, fmt.Errorf("%w: unsupported memory type %T", nctype.ErrTypeMismatch, src)
}

func gatherSegs[S ~[]byte | ~string](dst []byte, src S, segs []mpitype.Segment) ([]byte, error) {
	for _, g := range segs {
		if g.Off < 0 || g.Off+g.Len > int64(len(src)) {
			return dst, fmt.Errorf("mpitype: element segment %+v outside buffer of %d", g, len(src))
		}
		dst = append(dst, src[g.Off:g.Off+g.Len]...)
	}
	return dst, nil
}

func encodeSegsNum[S number](dst []byte, t nctype.Type, src []S, segs []mpitype.Segment) ([]byte, error) {
	esz := t.Size()
	if esz == 0 {
		return dst, fmt.Errorf("%w: %v", nctype.ErrBadType, t)
	}
	var total int64
	for _, s := range segs {
		if s.Off < 0 || s.Len < 0 || s.Off+s.Len > int64(len(src)) {
			return dst, fmt.Errorf("mpitype: element segment %+v outside buffer of %d", s, len(src))
		}
		total += s.Len
	}
	// One growth step for the whole request; the per-run encodes then append
	// within capacity.
	dst = slices.Grow(dst, int(total)*esz)
	var firstErr error
	for _, s := range segs {
		var err error
		dst, err = encodeNum(dst, t, src[s.Off:s.Off+s.Len])
		if err != nil {
			if !errors.Is(err, ErrRange) {
				return dst, err
			}
			firstErr = err
		}
	}
	return dst, firstErr
}

// DecodeSegs decodes consecutive external values of type t from src into the
// element positions segs selects within dst — the inverse of EncodeSegs.
// src must hold external bytes for exactly the segments' total element
// count.
func DecodeSegs(src []byte, t nctype.Type, segs []mpitype.Segment, dst any) error {
	if t == nctype.Char {
		if d, ok := dst.([]byte); ok {
			pos := int64(0)
			for _, g := range segs {
				if g.Off < 0 || g.Off+g.Len > int64(len(d)) {
					return fmt.Errorf("mpitype: element segment %+v outside buffer of %d", g, len(d))
				}
				if int64(len(src)) < pos+g.Len {
					return nctype.ErrCountMismatch
				}
				copy(d[g.Off:g.Off+g.Len], src[pos:pos+g.Len])
				pos += g.Len
			}
			return nil
		}
		return fmt.Errorf("%w: memory type %T with external char", nctype.ErrTypeMismatch, dst)
	}
	switch d := dst.(type) {
	case []int8:
		if t == nctype.Byte {
			return decSegs8(src, segs, d)
		}
		return decodeSegsNum(src, t, segs, d)
	case []int16:
		if t == nctype.Short {
			return decSegs16(src, segs, d)
		}
		return decodeSegsNum(src, t, segs, d)
	case []int32:
		if t == nctype.Int {
			return decSegs32(src, segs, d)
		}
		return decodeSegsNum(src, t, segs, d)
	case []int64:
		if t == nctype.Int64 {
			return decSegs64(src, segs, d)
		}
		return decodeSegsNum(src, t, segs, d)
	case []uint8:
		if t == nctype.UByte {
			return decSegs8(src, segs, d)
		}
		return decodeSegsNum(src, t, segs, d)
	case []uint16:
		if t == nctype.UShort {
			return decSegs16(src, segs, d)
		}
		return decodeSegsNum(src, t, segs, d)
	case []uint32:
		if t == nctype.UInt {
			return decSegs32(src, segs, d)
		}
		return decodeSegsNum(src, t, segs, d)
	case []uint64:
		if t == nctype.UInt64 {
			return decSegs64(src, segs, d)
		}
		return decodeSegsNum(src, t, segs, d)
	case []float32:
		if t == nctype.Float {
			return decSegsF32(src, segs, d)
		}
		return decodeSegsNum(src, t, segs, d)
	case []float64:
		if t == nctype.Double {
			return decSegsF64(src, segs, d)
		}
		return decodeSegsNum(src, t, segs, d)
	}
	return fmt.Errorf("%w: unsupported memory type %T", nctype.ErrTypeMismatch, dst)
}

func decodeSegsNum[S number](src []byte, t nctype.Type, segs []mpitype.Segment, dst []S) error {
	esz := int64(t.Size())
	if esz == 0 {
		return fmt.Errorf("%w: %v", nctype.ErrBadType, t)
	}
	pos := int64(0)
	for _, s := range segs {
		if s.Off < 0 || s.Len < 0 || s.Off+s.Len > int64(len(dst)) {
			return fmt.Errorf("mpitype: element segment %+v outside buffer of %d", s, len(dst))
		}
		if int64(len(src)) < pos+s.Len*esz {
			return nctype.ErrCountMismatch
		}
		if err := decodeNum(src[pos:], t, dst[s.Off:s.Off+s.Len]); err != nil {
			return err
		}
		pos += s.Len * esz
	}
	return nil
}
