package cdf

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pnetcdf/internal/nctype"
)

func TestEncodeDecodeExactTypes(t *testing.T) {
	check := func(name string, tp nctype.Type, src, dst any, eq func() bool) {
		buf, err := EncodeSlice(nil, tp, src)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if err := DecodeSlice(buf, tp, dst); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !eq() {
			t.Fatalf("%s: round trip mismatch: %v -> %v", name, src, dst)
		}
	}
	{
		src := []int8{-128, -1, 0, 1, 127}
		dst := make([]int8, len(src))
		check("byte", nctype.Byte, src, dst, func() bool { return sliceEq(src, dst) })
	}
	{
		src := []int16{-32768, -7, 0, 9, 32767}
		dst := make([]int16, len(src))
		check("short", nctype.Short, src, dst, func() bool { return sliceEq(src, dst) })
	}
	{
		src := []int32{math.MinInt32, -1, 0, 42, math.MaxInt32}
		dst := make([]int32, len(src))
		check("int", nctype.Int, src, dst, func() bool { return sliceEq(src, dst) })
	}
	{
		src := []float32{-1.5, 0, float32(math.Pi), math.MaxFloat32}
		dst := make([]float32, len(src))
		check("float", nctype.Float, src, dst, func() bool { return sliceEq(src, dst) })
	}
	{
		src := []float64{-1.5, 0, math.Pi, math.MaxFloat64}
		dst := make([]float64, len(src))
		check("double", nctype.Double, src, dst, func() bool { return sliceEq(src, dst) })
	}
	{
		src := []int64{math.MinInt64, -1, 0, math.MaxInt64}
		dst := make([]int64, len(src))
		check("int64", nctype.Int64, src, dst, func() bool { return sliceEq(src, dst) })
	}
	{
		src := []uint64{0, 1, math.MaxUint64}
		dst := make([]uint64, len(src))
		check("uint64", nctype.UInt64, src, dst, func() bool { return sliceEq(src, dst) })
	}
}

func sliceEq[S comparable](a, b []S) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBigEndianOnDisk(t *testing.T) {
	buf, err := EncodeSlice(nil, nctype.Int, []int32{0x01020304})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 4}
	if string(buf) != string(want) {
		t.Fatalf("int32 encoding = %v, want big-endian %v", buf, want)
	}
	buf, err = EncodeSlice(nil, nctype.Float, []float32{1.0})
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string([]byte{0x3F, 0x80, 0, 0}) {
		t.Fatalf("float encoding = %v, want IEEE big-endian", buf)
	}
}

func TestCrossTypeConversion(t *testing.T) {
	// float64 memory -> int external (C truncation semantics).
	buf, err := EncodeSlice(nil, nctype.Int, []float64{1.9, -2.9, 3.0})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int32, 3)
	if err := DecodeSlice(buf, nctype.Int, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != -2 || got[2] != 3 {
		t.Fatalf("truncation: got %v, want [1 -2 3]", got)
	}
	// short external read back as float64.
	buf, err = EncodeSlice(nil, nctype.Short, []int16{-5, 7})
	if err != nil {
		t.Fatal(err)
	}
	f := make([]float64, 2)
	if err := DecodeSlice(buf, nctype.Short, f); err != nil {
		t.Fatal(err)
	}
	if f[0] != -5 || f[1] != 7 {
		t.Fatalf("widening: got %v", f)
	}
}

func TestRangeErrors(t *testing.T) {
	cases := []struct {
		tp  nctype.Type
		src any
	}{
		{nctype.Byte, []int32{300}},
		{nctype.Byte, []int32{-300}},
		{nctype.Short, []int64{1 << 20}},
		{nctype.Int, []int64{1 << 40}},
		{nctype.UByte, []int16{-1}},
		{nctype.UShort, []int32{-1}},
		{nctype.UInt, []int64{-1}},
		{nctype.UInt64, []float64{-1}},
		{nctype.Float, []float64{1e300}},
	}
	for i, c := range cases {
		if _, err := EncodeSlice(nil, c.tp, c.src); !errors.Is(err, ErrRange) {
			t.Errorf("case %d (%v <- %v): err = %v, want ErrRange", i, c.tp, c.src, err)
		}
	}
	// In-range values of the same shapes must not error.
	if _, err := EncodeSlice(nil, nctype.Byte, []int32{-128, 127}); err != nil {
		t.Errorf("in-range byte: %v", err)
	}
}

func TestCharTextRules(t *testing.T) {
	buf, err := EncodeSlice(nil, nctype.Char, "hello")
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("char encoding = %q", buf)
	}
	// Numbers must not convert to text or vice versa.
	if _, err := EncodeSlice(nil, nctype.Char, []int32{1}); err == nil {
		t.Fatal("numeric memory accepted for char external")
	}
	if err := DecodeSlice(buf, nctype.Char, make([]float32, 5)); err == nil {
		t.Fatal("char external decoded into float memory")
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if err := DecodeSlice([]byte{1, 2}, nctype.Int, make([]int32, 1)); err == nil {
		t.Fatal("decode from short buffer must fail")
	}
}

func TestMakeAttrScalarsAndSlices(t *testing.T) {
	a, err := MakeAttr("x", nctype.Double, 2.5)
	if err != nil || a.Nelems != 1 || len(a.Values) != 8 {
		t.Fatalf("scalar attr: %+v err=%v", a, err)
	}
	a, err = MakeAttr("y", nctype.Int, []int32{1, 2, 3})
	if err != nil || a.Nelems != 3 || len(a.Values) != 12 {
		t.Fatalf("slice attr: %+v err=%v", a, err)
	}
	a, err = MakeAttr("s", nctype.Char, "units")
	if err != nil || a.Nelems != 5 {
		t.Fatalf("string attr: %+v err=%v", a, err)
	}
	if _, err = MakeAttr("bad", nctype.Int, struct{}{}); err == nil {
		t.Fatal("MakeAttr accepted unsupported value")
	}
}

// Property: encode/decode round-trips exactly for matching types.
func TestQuickRoundTripFloat64(t *testing.T) {
	f := func(src []float64) bool {
		buf, err := EncodeSlice(nil, nctype.Double, src)
		if err != nil {
			return false
		}
		dst := make([]float64, len(src))
		if err := DecodeSlice(buf, nctype.Double, dst); err != nil {
			return false
		}
		for i := range src {
			if src[i] != dst[i] && !(math.IsNaN(src[i]) && math.IsNaN(dst[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripInt32(t *testing.T) {
	f := func(src []int32) bool {
		buf, err := EncodeSlice(nil, nctype.Int, src)
		if err != nil {
			return false
		}
		dst := make([]int32, len(src))
		if err := DecodeSlice(buf, nctype.Int, dst); err != nil {
			return false
		}
		return sliceEq(src, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: encoded size is always nelems * type size.
func TestQuickEncodedSize(t *testing.T) {
	f := func(src []int16) bool {
		buf, err := EncodeSlice(nil, nctype.Short, src)
		return err == nil && len(buf) == 2*len(src)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: header encode/decode round-trips for arbitrary small datasets.
func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(dimLens []uint16, nvars uint8, recs uint16) bool {
		if len(dimLens) == 0 {
			dimLens = []uint16{1}
		}
		if len(dimLens) > 6 {
			dimLens = dimLens[:6]
		}
		h := &Header{Version: 2, NumRecs: int64(recs % 4)}
		for i, l := range dimLens {
			h.Dims = append(h.Dims, Dim{Name: dimName(i), Len: int64(l%64 + 1)})
		}
		nv := int(nvars%5) + 1
		for i := 0; i < nv; i++ {
			v := Var{Name: varName(i), Type: nctype.Float}
			v.DimIDs = []int{i % len(h.Dims)}
			h.Vars = append(h.Vars, v)
		}
		if err := h.ComputeLayout(1); err != nil {
			return false
		}
		got, err := Decode(h.Encode())
		return err == nil && got.Equal(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func dimName(i int) string { return string(rune('a'+i%26)) + "dim" }
func varName(i int) string { return string(rune('a'+i%26)) + "var" }

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(1234)) }
