package cdf

import (
	"encoding/binary"
	"fmt"

	"pnetcdf/internal/nctype"
)

type headerReader struct {
	buf     []byte
	pos     int
	version int
}

var errTruncated = fmt.Errorf("%w: truncated header", nctype.ErrNotNC)

func (r *headerReader) need(n int) error {
	if r.pos+n > len(r.buf) {
		return errTruncated
	}
	return nil
}

func (r *headerReader) uint32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *headerReader) nonNeg() (int64, error) {
	if r.version == 5 {
		if err := r.need(8); err != nil {
			return 0, err
		}
		v := int64(binary.BigEndian.Uint64(r.buf[r.pos:]))
		r.pos += 8
		// A hostile CDF-5 count with the top bit set must be rejected
		// here: downstream it sizes allocations (make([]int, nd)) and
		// loop bounds, where a negative value panics or wraps.
		if v < 0 {
			return 0, fmt.Errorf("%w: negative count", nctype.ErrNotNC)
		}
		return v, nil
	}
	v, err := r.uint32()
	return int64(v), err
}

func (r *headerReader) offset() (int64, error) {
	if r.version == 1 {
		v, err := r.uint32()
		return int64(v), err
	}
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := int64(binary.BigEndian.Uint64(r.buf[r.pos:]))
	r.pos += 8
	return v, nil
}

func (r *headerReader) skipPad() error {
	for r.pos%4 != 0 {
		if err := r.need(1); err != nil {
			return err
		}
		r.pos++
	}
	return nil
}

func (r *headerReader) name() (string, error) {
	n, err := r.nonNeg()
	if err != nil {
		return "", err
	}
	if n < 0 || n > nctype.MaxNameLen {
		return "", fmt.Errorf("%w: name length %d", nctype.ErrNotNC, n)
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, r.skipPad()
}

func (r *headerReader) tagList(wantTag uint32) (int64, error) {
	tag, err := r.uint32()
	if err != nil {
		return 0, err
	}
	n, err := r.nonNeg()
	if err != nil {
		return 0, err
	}
	switch {
	case tag == nctype.TagAbsent && n == 0:
		return 0, nil
	case tag == wantTag:
		return n, nil
	}
	return 0, fmt.Errorf("%w: bad list tag %#x", nctype.ErrNotNC, tag)
}

func (r *headerReader) attrs() ([]Attr, error) {
	n, err := r.tagList(nctype.TagAttribute)
	if err != nil {
		return nil, err
	}
	if n > nctype.MaxAttrs {
		return nil, fmt.Errorf("%w: %d attributes", nctype.ErrNotNC, n)
	}
	attrs := make([]Attr, 0, n)
	for i := int64(0); i < n; i++ {
		var a Attr
		if a.Name, err = r.name(); err != nil {
			return nil, err
		}
		t, err := r.uint32()
		if err != nil {
			return nil, err
		}
		a.Type = nctype.Type(t)
		if a.Type.Size() == 0 {
			return nil, fmt.Errorf("%w: attribute type %d", nctype.ErrNotNC, t)
		}
		if a.Nelems, err = r.nonNeg(); err != nil {
			return nil, err
		}
		// Bound Nelems by the buffer before multiplying so the byte count
		// cannot overflow, and the copy below cannot over-allocate.
		if a.Nelems > int64(len(r.buf)) {
			return nil, errTruncated
		}
		nbytes := a.Nelems * int64(a.Type.Size())
		if nbytes < 0 || int64(r.pos)+nbytes > int64(len(r.buf)) {
			return nil, errTruncated
		}
		a.Values = append([]byte(nil), r.buf[r.pos:r.pos+int(nbytes)]...)
		r.pos += int(nbytes)
		if err := r.skipPad(); err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
	}
	return attrs, nil
}

// Decode parses an on-disk header image. The buffer must contain at least
// the complete header; trailing bytes (data) are ignored.
func Decode(buf []byte) (*Header, error) {
	if len(buf) < 4 || buf[0] != 'C' || buf[1] != 'D' || buf[2] != 'F' {
		return nil, nctype.ErrNotNC
	}
	version := int(buf[3])
	if version != 1 && version != 2 && version != 5 {
		return nil, fmt.Errorf("%w: CDF-%d", nctype.ErrVersion, version)
	}
	r := &headerReader{buf: buf, pos: 4, version: version}
	h := &Header{Version: version}
	var err error
	if h.NumRecs, err = r.nonNeg(); err != nil {
		return nil, err
	}
	// dim_list
	ndims, err := r.tagList(nctype.TagDimension)
	if err != nil {
		return nil, err
	}
	if ndims > nctype.MaxDims {
		return nil, fmt.Errorf("%w: %d dimensions", nctype.ErrNotNC, ndims)
	}
	for i := int64(0); i < ndims; i++ {
		var d Dim
		if d.Name, err = r.name(); err != nil {
			return nil, err
		}
		if d.Len, err = r.nonNeg(); err != nil {
			return nil, err
		}
		h.Dims = append(h.Dims, d)
	}
	// gatt_list
	if h.GAttrs, err = r.attrs(); err != nil {
		return nil, err
	}
	// var_list
	nvars, err := r.tagList(nctype.TagVariable)
	if err != nil {
		return nil, err
	}
	if nvars > nctype.MaxVars {
		return nil, fmt.Errorf("%w: %d variables", nctype.ErrNotNC, nvars)
	}
	for i := int64(0); i < nvars; i++ {
		var v Var
		if v.Name, err = r.name(); err != nil {
			return nil, err
		}
		nd, err := r.nonNeg()
		if err != nil {
			return nil, err
		}
		if nd > nctype.MaxDims {
			return nil, nctype.ErrMaxDims
		}
		v.DimIDs = make([]int, nd)
		for j := range v.DimIDs {
			id, err := r.nonNeg()
			if err != nil {
				return nil, err
			}
			if id < 0 || id >= int64(len(h.Dims)) {
				return nil, fmt.Errorf("%w: dimid %d", nctype.ErrNotNC, id)
			}
			v.DimIDs[j] = int(id)
		}
		if v.Attrs, err = r.attrs(); err != nil {
			return nil, err
		}
		t, err := r.uint32()
		if err != nil {
			return nil, err
		}
		v.Type = nctype.Type(t)
		if !v.Type.Valid(version) {
			return nil, fmt.Errorf("%w: variable type %d", nctype.ErrNotNC, t)
		}
		if v.VSize, err = r.nonNeg(); err != nil {
			return nil, err
		}
		if v.Begin, err = r.offset(); err != nil {
			return nil, err
		}
		if v.Begin < 0 {
			return nil, fmt.Errorf("%w: variable %q begin %d", nctype.ErrNotNC, v.Name, v.Begin)
		}
		h.Vars = append(h.Vars, v)
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// DecodedHeaderSize reports how many bytes of buf the header occupies; it is
// the position reached by a successful Decode. Returns an error for a
// malformed header.
func DecodedHeaderSize(buf []byte) (int64, error) {
	h, err := Decode(buf)
	if err != nil {
		return 0, err
	}
	return h.EncodedSize(), nil
}
