package cdf

import (
	"fmt"
	"sort"
)

// A LayoutIssue describes one problem CheckLayout found.
type LayoutIssue struct {
	Var  string // offending variable ("" for file-level issues)
	Desc string
}

// String formats the issue for reports.
func (i LayoutIssue) String() string {
	if i.Var == "" {
		return i.Desc
	}
	return fmt.Sprintf("variable %q: %s", i.Var, i.Desc)
}

// CheckLayout verifies the file-layout invariants of a decoded header
// against the actual file size — the checks an fsck for netCDF performs:
//
//   - every variable's Begin lies at or after the header;
//   - VSize matches the recomputed slot size (including the padding rules);
//   - fixed variables do not overlap each other or the record section;
//   - record variables' slots do not overlap within a record;
//   - the file is large enough for the declared NumRecs.
//
// It returns all issues found (empty means the layout is sound).
func (h *Header) CheckLayout(fileSize int64) []LayoutIssue {
	var issues []LayoutIssue
	hdrEnd := h.EncodedSize()
	nrec := h.NumRecVars()

	type extent struct {
		name     string
		from, to int64
	}
	var fixed, record []extent
	for i := range h.Vars {
		v := &h.Vars[i]
		// Recompute the expected slot size.
		raw := h.VarSlotSize(v)
		want := Round4(raw)
		if nrec == 1 && h.IsRecordVar(v) {
			want = raw
		}
		if v.VSize != want {
			issues = append(issues, LayoutIssue{v.Name,
				fmt.Sprintf("vsize %d, recomputed %d", v.VSize, want)})
		}
		if v.Begin < hdrEnd {
			issues = append(issues, LayoutIssue{v.Name,
				fmt.Sprintf("begin %d overlaps the header (ends %d)", v.Begin, hdrEnd)})
		}
		e := extent{v.Name, v.Begin, v.Begin + v.VSize}
		if h.IsRecordVar(v) {
			record = append(record, e)
		} else {
			fixed = append(fixed, e)
		}
	}
	overlapCheck := func(kind string, exts []extent) {
		sort.Slice(exts, func(a, b int) bool { return exts[a].from < exts[b].from })
		for i := 1; i < len(exts); i++ {
			if exts[i].from < exts[i-1].to {
				issues = append(issues, LayoutIssue{exts[i].name,
					fmt.Sprintf("%s slot [%d,%d) overlaps %q [%d,%d)", kind,
						exts[i].from, exts[i].to,
						exts[i-1].name, exts[i-1].from, exts[i-1].to)})
			}
		}
	}
	overlapCheck("fixed", fixed)
	overlapCheck("record", record)
	// Fixed section must not extend into the record section.
	if len(record) > 0 {
		recStart := h.RecordStart()
		for _, e := range fixed {
			if e.to > recStart {
				issues = append(issues, LayoutIssue{e.name,
					fmt.Sprintf("fixed slot ends at %d, inside the record section (starts %d)", e.to, recStart)})
			}
		}
		// Record slots must fall within one record's span.
		recSize := h.RecSize()
		for _, e := range record {
			if e.to > recStart+recSize {
				issues = append(issues, LayoutIssue{e.name,
					fmt.Sprintf("record slot ends at %d, beyond one record (%d)", e.to, recStart+recSize)})
			}
		}
	}
	// File size must cover the declared contents. (A file may be *larger* —
	// preallocation or alignment tails are legal.)
	if need := h.FileSize(); fileSize >= 0 && fileSize < need {
		issues = append(issues, LayoutIssue{"",
			fmt.Sprintf("file is %d bytes but the header declares %d (numrecs %d)", fileSize, need, h.NumRecs)})
	}
	return issues
}

// CheckFile decodes and fully validates a file image: header syntax,
// structural rules (Validate) and layout invariants (CheckLayout).
func CheckFile(img []byte) (*Header, []LayoutIssue, error) {
	h, err := Decode(img)
	if err != nil {
		return nil, nil, err
	}
	if err := h.Validate(); err != nil {
		return h, nil, err
	}
	return h, h.CheckLayout(int64(len(img))), nil
}
