package cdf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
)

// ErrRange mirrors netCDF's NC_ERANGE: one or more values were outside the
// range of the target type. Following the C library, conversion continues
// for the remaining values and the error is reported at the end.
var ErrRange = errors.New("netcdf: numeric conversion out of range")

type number interface {
	~int8 | ~int16 | ~int32 | ~int64 | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// EncodeSlice appends the external (big-endian) representation of src, as
// external type t, to dst and returns the extended slice. src must be one of
// the supported numeric slice types, or []byte/string when t is Char.
// Numeric values are converted with C-style truncation; out-of-range values
// yield ErrRange but are still written (wrapped), matching netCDF semantics.
// A contiguous buffer is a single-run case of EncodeSegs, so the identity
// fast paths apply here too.
func EncodeSlice(dst []byte, t nctype.Type, src any) ([]byte, error) {
	if t == nctype.Char {
		switch s := src.(type) {
		case []byte:
			return append(dst, s...), nil
		case string:
			return append(dst, s...), nil
		}
		return dst, fmt.Errorf("%w: memory type %T with external char", nctype.ErrTypeMismatch, src)
	}
	n := SliceLen(src)
	if n < 0 {
		return dst, fmt.Errorf("%w: unsupported memory type %T", nctype.ErrTypeMismatch, src)
	}
	return EncodeSegs(dst, t, src, []mpitype.Segment{{Off: 0, Len: int64(n)}})
}

// encodeNum converts src to external type t, appending to dst. The output
// region is presized in one step and filled by index, so the conversion loop
// carries no append bookkeeping and a caller that recycles dst across calls
// (ext-buffer pooling in core) triggers no growth at all.
func encodeNum[S number](dst []byte, t nctype.Type, src []S) ([]byte, error) {
	esz := t.Size()
	if esz == 0 || t == nctype.Char {
		if t == nctype.Char {
			return dst, nctype.ErrTypeMismatch
		}
		return dst, fmt.Errorf("%w: %v", nctype.ErrBadType, t)
	}
	base := len(dst)
	n := len(src) * esz
	if cap(dst)-base >= n {
		// Extend within capacity without clearing: every byte of the
		// extension is overwritten below.
		dst = dst[:base+n]
	} else {
		dst = append(dst, make([]byte, n)...)
	}
	out := dst[base:]
	rangeErr := false
	switch t {
	case nctype.Byte:
		for i, v := range src {
			x := int64(v)
			if x < math.MinInt8 || x > math.MaxInt8 {
				rangeErr = true
			}
			out[i] = byte(int8(x))
		}
	case nctype.UByte:
		for i, v := range src {
			x := int64(v)
			if x < 0 || x > math.MaxUint8 {
				rangeErr = true
			}
			out[i] = byte(x)
		}
	case nctype.Short:
		for i, v := range src {
			x := int64(v)
			if x < math.MinInt16 || x > math.MaxInt16 {
				rangeErr = true
			}
			binary.BigEndian.PutUint16(out[i*2:], uint16(int16(x)))
		}
	case nctype.UShort:
		for i, v := range src {
			x := int64(v)
			if x < 0 || x > math.MaxUint16 {
				rangeErr = true
			}
			binary.BigEndian.PutUint16(out[i*2:], uint16(x))
		}
	case nctype.Int:
		for i, v := range src {
			x := int64(v)
			if x < math.MinInt32 || x > math.MaxInt32 {
				rangeErr = true
			}
			binary.BigEndian.PutUint32(out[i*4:], uint32(int32(x)))
		}
	case nctype.UInt:
		for i, v := range src {
			x := int64(v)
			if x < 0 || x > math.MaxUint32 {
				rangeErr = true
			}
			binary.BigEndian.PutUint32(out[i*4:], uint32(x))
		}
	case nctype.Int64:
		for i, v := range src {
			binary.BigEndian.PutUint64(out[i*8:], uint64(int64(v)))
		}
	case nctype.UInt64:
		for i, v := range src {
			if isNeg(v) {
				rangeErr = true
			}
			binary.BigEndian.PutUint64(out[i*8:], uint64(int64(v)))
		}
	case nctype.Float:
		for i, v := range src {
			f := float64(v)
			if f > math.MaxFloat32 || f < -math.MaxFloat32 {
				rangeErr = true
			}
			binary.BigEndian.PutUint32(out[i*4:], math.Float32bits(float32(f)))
		}
	case nctype.Double:
		for i, v := range src {
			binary.BigEndian.PutUint64(out[i*8:], math.Float64bits(float64(v)))
		}
	}
	if rangeErr {
		return dst, ErrRange
	}
	return dst, nil
}

func isNeg[S number](v S) bool { return float64(v) < 0 }

// DecodeSlice decodes len(dst-slice) external values of type t from src into
// dst, which must be a supported numeric slice, or []byte when t is Char.
// src must hold at least n*t.Size() bytes.
func DecodeSlice(src []byte, t nctype.Type, dst any) error {
	if t == nctype.Char {
		if d, ok := dst.([]byte); ok {
			if len(src) < len(d) {
				return nctype.ErrCountMismatch
			}
			copy(d, src)
			return nil
		}
		return fmt.Errorf("%w: memory type %T with external char", nctype.ErrTypeMismatch, dst)
	}
	n := SliceLen(dst)
	if n < 0 || isString(dst) {
		return fmt.Errorf("%w: unsupported memory type %T", nctype.ErrTypeMismatch, dst)
	}
	return DecodeSegs(src, t, []mpitype.Segment{{Off: 0, Len: int64(n)}}, dst)
}

func isString(v any) bool {
	_, ok := v.(string)
	return ok
}

func decodeNum[S number](src []byte, t nctype.Type, dst []S) error {
	esz := t.Size()
	if esz == 0 {
		return fmt.Errorf("%w: %v", nctype.ErrBadType, t)
	}
	if len(src) < len(dst)*esz {
		return nctype.ErrCountMismatch
	}
	switch t {
	case nctype.Byte:
		for i := range dst {
			dst[i] = S(int8(src[i]))
		}
	case nctype.UByte:
		for i := range dst {
			dst[i] = S(src[i])
		}
	case nctype.Short:
		for i := range dst {
			dst[i] = S(int16(binary.BigEndian.Uint16(src[i*2:])))
		}
	case nctype.UShort:
		for i := range dst {
			dst[i] = S(binary.BigEndian.Uint16(src[i*2:]))
		}
	case nctype.Int:
		for i := range dst {
			dst[i] = S(int32(binary.BigEndian.Uint32(src[i*4:])))
		}
	case nctype.UInt:
		for i := range dst {
			dst[i] = S(binary.BigEndian.Uint32(src[i*4:]))
		}
	case nctype.Int64:
		for i := range dst {
			dst[i] = S(int64(binary.BigEndian.Uint64(src[i*8:])))
		}
	case nctype.UInt64:
		for i := range dst {
			dst[i] = S(binary.BigEndian.Uint64(src[i*8:]))
		}
	case nctype.Float:
		for i := range dst {
			dst[i] = S(math.Float32frombits(binary.BigEndian.Uint32(src[i*4:])))
		}
	case nctype.Double:
		for i := range dst {
			dst[i] = S(math.Float64frombits(binary.BigEndian.Uint64(src[i*8:])))
		}
	default:
		return fmt.Errorf("%w: %v", nctype.ErrBadType, t)
	}
	return nil
}

// SliceLen returns the number of elements in any supported buffer type, or
// -1 if the type is unsupported.
func SliceLen(buf any) int {
	switch b := buf.(type) {
	case []int8:
		return len(b)
	case []int16:
		return len(b)
	case []int32:
		return len(b)
	case []int64:
		return len(b)
	case []uint8:
		return len(b)
	case []uint16:
		return len(b)
	case []uint32:
		return len(b)
	case []uint64:
		return len(b)
	case []float32:
		return len(b)
	case []float64:
		return len(b)
	case string:
		return len(b)
	}
	return -1
}

// MakeAttr builds an Attr from a Go value (scalar or slice of a supported
// type, or a string for Char attributes).
func MakeAttr(name string, t nctype.Type, value any) (Attr, error) {
	value = promoteScalar(value)
	n := SliceLen(value)
	if n < 0 {
		return Attr{}, fmt.Errorf("%w: attribute value %T", nctype.ErrTypeMismatch, value)
	}
	buf, err := EncodeSlice(nil, t, value)
	if err != nil {
		return Attr{}, err
	}
	return Attr{Name: name, Type: t, Nelems: int64(n), Values: buf}, nil
}

func promoteScalar(v any) any {
	switch s := v.(type) {
	case int8:
		return []int8{s}
	case int16:
		return []int16{s}
	case int32:
		return []int32{s}
	case int64:
		return []int64{s}
	case int:
		return []int64{int64(s)}
	case uint8:
		return []uint8{s}
	case uint16:
		return []uint16{s}
	case uint32:
		return []uint32{s}
	case uint64:
		return []uint64{s}
	case float32:
		return []float32{s}
	case float64:
		return []float64{s}
	}
	return v
}
