package cdf

import "pnetcdf/internal/nctype"

// DecodeAttrValue decodes an attribute's external bytes into a typed Go
// slice ([]byte for Char).
func DecodeAttrValue(a Attr) (any, error) {
	n := int(a.Nelems)
	switch a.Type {
	case nctype.Char:
		return append([]byte(nil), a.Values...), nil
	case nctype.Byte:
		out := make([]int8, n)
		return out, DecodeSlice(a.Values, a.Type, out)
	case nctype.Short:
		out := make([]int16, n)
		return out, DecodeSlice(a.Values, a.Type, out)
	case nctype.Int:
		out := make([]int32, n)
		return out, DecodeSlice(a.Values, a.Type, out)
	case nctype.Float:
		out := make([]float32, n)
		return out, DecodeSlice(a.Values, a.Type, out)
	case nctype.Double:
		out := make([]float64, n)
		return out, DecodeSlice(a.Values, a.Type, out)
	case nctype.UByte:
		out := make([]uint8, n)
		return out, DecodeSlice(a.Values, a.Type, out)
	case nctype.UShort:
		out := make([]uint16, n)
		return out, DecodeSlice(a.Values, a.Type, out)
	case nctype.UInt:
		out := make([]uint32, n)
		return out, DecodeSlice(a.Values, a.Type, out)
	case nctype.Int64:
		out := make([]int64, n)
		return out, DecodeSlice(a.Values, a.Type, out)
	case nctype.UInt64:
		out := make([]uint64, n)
		return out, DecodeSlice(a.Values, a.Type, out)
	}
	return nil, nctype.ErrBadType
}

// FillBytes builds n external fill values for variable v, honoring a
// _FillValue attribute of the variable's own type when present, otherwise
// using the netCDF default fill value for the type.
func FillBytes(v *Var, n int64) []byte {
	esz := int64(v.Type.Size())
	one := make([]byte, esz)
	if i := FindAttr(v.Attrs, "_FillValue"); i >= 0 && v.Attrs[i].Type == v.Type && v.Attrs[i].Nelems >= 1 {
		copy(one, v.Attrs[i].Values[:esz])
	} else {
		var enc []byte
		var err error
		switch v.Type {
		case nctype.Byte:
			enc, err = EncodeSlice(nil, v.Type, []int8{nctype.FillByte})
		case nctype.Char:
			enc = []byte{nctype.FillChar}
		case nctype.Short:
			enc, err = EncodeSlice(nil, v.Type, []int16{nctype.FillShort})
		case nctype.Int:
			enc, err = EncodeSlice(nil, v.Type, []int32{nctype.FillInt})
		case nctype.Float:
			enc, err = EncodeSlice(nil, v.Type, []float32{nctype.FillFloat})
		case nctype.Double:
			enc, err = EncodeSlice(nil, v.Type, []float64{nctype.FillDouble})
		default:
			enc = make([]byte, esz)
		}
		if err == nil && int64(len(enc)) == esz {
			copy(one, enc)
		}
	}
	out := make([]byte, n*esz)
	for i := int64(0); i < n; i++ {
		copy(out[i*esz:], one)
	}
	return out
}
