package flash

import (
	"fmt"
	"testing"

	"pnetcdf/internal/core"
	"pnetcdf/internal/h5sim"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/netcdf"
	"pnetcdf/internal/pfs"
)

// tiny config keeps tests fast while exercising every code path.
func tinyConfig() Config {
	return Config{NXB: 4, NYB: 4, NZB: 4, NGuard: 2, NVar: 5, NPlotVar: 2, BlocksPerProc: 3}
}

func TestFillUnknownGuardStripping(t *testing.T) {
	cfg := tinyConfig()
	buf := cfg.FillUnknown(1, 10, 2)
	gz, gy, gx := cfg.guardedDims()
	if len(buf) != 2*gz*gy*gx {
		t.Fatalf("len = %d", len(buf))
	}
	// Guard corner must be poison; interior must be the synthetic field.
	if buf[0] != -9.99e33 {
		t.Fatalf("guard = %v", buf[0])
	}
	g := cfg.NGuard
	idx := ((g)*gy+(g))*gx + g // interior (0,0,0) of block 0
	if buf[idx] != CellValue(1, 10, 0, 0, 0) {
		t.Fatalf("interior = %v, want %v", buf[idx], CellValue(1, 10, 0, 0, 0))
	}
}

func TestCornerValueIsNeighborAverage(t *testing.T) {
	cfg := tinyConfig()
	got := CornerValue(cfg, 0, 5, 1, 1, 1)
	var want float64
	for dz := 0; dz <= 1; dz++ {
		for dy := 0; dy <= 1; dy++ {
			for dx := 0; dx <= 1; dx++ {
				want += CellValue(0, 5, 1-dz, 1-dy, 1-dx)
			}
		}
	}
	want /= 8
	if got != want {
		t.Fatalf("corner = %v, want %v", got, want)
	}
}

func TestUnknownNames(t *testing.T) {
	names := UnknownNames(24)
	if len(names) != 24 || names[0] != "dens" || names[12] != "ab00" {
		t.Fatalf("names = %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %s", n)
		}
		seen[n] = true
	}
}

func TestCheckpointPnetCDFRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	fsys := pfs.New(pfs.DefaultConfig())
	const p = 4
	var rep Report
	err := mpi.Run(p, mpi.DefaultNet(), func(c *mpi.Comm) error {
		r, err := WriteCheckpointPnetCDF(c, fsys, "chk.nc", cfg, nil)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			rep = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := int64(p * cfg.BlocksPerProc * cfg.NZB * cfg.NYB * cfg.NXB * cfg.NVar * 8)
	if rep.Bytes != wantBytes {
		t.Fatalf("bytes = %d, want %d", rep.Bytes, wantBytes)
	}
	if rep.Seconds <= 0 || rep.BandwidthMBps() <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	// Serial verification: open the checkpoint with the serial library and
	// spot-check interior values across blocks owned by different ranks.
	pf, _, err := fsys.Open("chk.nc", 0)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := netcdf.Open(pfs.NewSerialFile(pf, 0), nctype.NoWrite)
	if err != nil {
		t.Fatal(err)
	}
	if sd.NumVars() != 3+cfg.NVar {
		t.Fatalf("vars = %d", sd.NumVars())
	}
	names := UnknownNames(cfg.NVar)
	for vi, name := range names {
		id := sd.VarID(name)
		if id < 0 {
			t.Fatalf("missing %s", name)
		}
		for _, gb := range []int{0, cfg.BlocksPerProc, p*cfg.BlocksPerProc - 1} {
			one := make([]float64, 1)
			if err := sd.GetVar1(id, []int64{int64(gb), 1, 2, 3}, one); err != nil {
				t.Fatal(err)
			}
			if one[0] != CellValue(vi, gb, 1, 2, 3) {
				t.Fatalf("%s block %d = %v, want %v (guard cells leaked?)",
					name, gb, one[0], CellValue(vi, gb, 1, 2, 3))
			}
		}
	}
	// Tree metadata.
	lref := make([]int32, p*cfg.BlocksPerProc)
	if err := sd.GetVar(sd.VarID("lrefine"), lref); err != nil {
		t.Fatal(err)
	}
	for gb := range lref {
		if lref[gb] != int32(1+gb%4) {
			t.Fatalf("lrefine[%d] = %d", gb, lref[gb])
		}
	}
}

func TestCheckpointH5RoundTrip(t *testing.T) {
	cfg := tinyConfig()
	fsys := pfs.New(pfs.DefaultConfig())
	const p = 2
	err := mpi.Run(p, mpi.DefaultNet(), func(c *mpi.Comm) error {
		if _, err := WriteCheckpointH5(c, fsys, "chk.h5", cfg, nil); err != nil {
			return err
		}
		// Parallel verification with the h5sim reader.
		f, err := h5sim.OpenFile(c, fsys, "chk.h5", true, nil)
		if err != nil {
			return err
		}
		ds, err := f.OpenDataset("/dens")
		if err != nil {
			return err
		}
		one := make([]float64, 1)
		gb := c.Rank() * cfg.BlocksPerProc
		fsel := h5sim.Select{Start: []int64{int64(gb), 0, 1, 2}, Count: []int64{1, 1, 1, 1}}
		if err := ds.ReadAll(fsel, nil, one); err != nil {
			return err
		}
		if one[0] != CellValue(0, gb, 0, 1, 2) {
			return fmt.Errorf("dens[%d] = %v, want %v", gb, one[0], CellValue(0, gb, 0, 1, 2))
		}
		ds.Close()
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlotfilesBothBackends(t *testing.T) {
	cfg := tinyConfig()
	fsys := pfs.New(pfs.DefaultConfig())
	err := mpi.Run(2, mpi.DefaultNet(), func(c *mpi.Comm) error {
		if _, err := WritePlotfilePnetCDF(c, fsys, "plt.nc", cfg, nil); err != nil {
			return err
		}
		if _, err := WriteCornerPlotfilePnetCDF(c, fsys, "crn.nc", cfg, nil); err != nil {
			return err
		}
		if _, err := WritePlotfileH5(c, fsys, "plt.h5", cfg, nil); err != nil {
			return err
		}
		if _, err := WriteCornerPlotfileH5(c, fsys, "crn.h5", cfg, nil); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Verify the corner plotfile serially: float32, corner dims, averaged
	// values.
	pf, _, err := fsys.Open("crn.nc", 0)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := netcdf.Open(pfs.NewSerialFile(pf, 0), nctype.NoWrite)
	if err != nil {
		t.Fatal(err)
	}
	_, l, err := sd.InqDim(sd.DimID("nzb"))
	if err != nil || l != int64(cfg.NZB+1) {
		t.Fatalf("corner dim = %d (%v)", l, err)
	}
	one := make([]float32, 1)
	if err := sd.GetVar1(sd.VarID("dens"), []int64{3, 2, 2, 2}, one); err != nil {
		t.Fatal(err)
	}
	want := float32(CornerValue(cfg, 0, 3, 2, 2, 2))
	if one[0] != want {
		t.Fatalf("corner dens = %v, want %v", one[0], want)
	}
	// Centered plotfile keeps cell dims and float type.
	pf2, _, _ := fsys.Open("plt.nc", 0)
	sd2, err := netcdf.Open(pfs.NewSerialFile(pf2, 0), nctype.NoWrite)
	if err != nil {
		t.Fatal(err)
	}
	_, typ, _, err := sd2.InqVar(sd2.VarID("velx"))
	if err != nil || typ != nctype.Float {
		t.Fatalf("plotfile type = %v (%v)", typ, err)
	}
	if sd2.NumVars() != 3+cfg.NPlotVar {
		t.Fatalf("plotfile vars = %d", sd2.NumVars())
	}
}

func TestPnetCDFBeatsH5(t *testing.T) {
	// The Figure 7 headline on a small scale: same workload, PnetCDF
	// completes in less virtual time than the HDF5-style library.
	cfg := tinyConfig()
	const p = 4
	var nc, h5 Report
	fsys1 := pfs.New(pfs.DefaultConfig())
	if err := mpi.Run(p, mpi.DefaultNet(), func(c *mpi.Comm) error {
		r, err := WriteCheckpointPnetCDF(c, fsys1, "a.nc", cfg, nil)
		if c.Rank() == 0 {
			nc = r
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	fsys2 := pfs.New(pfs.DefaultConfig())
	if err := mpi.Run(p, mpi.DefaultNet(), func(c *mpi.Comm) error {
		r, err := WriteCheckpointH5(c, fsys2, "a.h5", cfg, nil)
		if c.Rank() == 0 {
			h5 = r
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if nc.Seconds >= h5.Seconds {
		t.Fatalf("PnetCDF (%.4fs) not faster than HDF5-style (%.4fs)", nc.Seconds, h5.Seconds)
	}
	t.Logf("checkpoint: PnetCDF %.1f MB/s vs H5 %.1f MB/s", nc.BandwidthMBps(), h5.BandwidthMBps())
}

func TestCheckpointReadBackBothLibraries(t *testing.T) {
	// The restart path: write a checkpoint, read it back with both
	// libraries, and make sure the read machinery returns sane reports.
	cfg := tinyConfig()
	const p = 3
	fsys := pfs.New(pfs.DefaultConfig())
	err := mpi.Run(p, mpi.DefaultNet(), func(c *mpi.Comm) error {
		if _, err := WriteCheckpointPnetCDF(c, fsys, "rb.nc", cfg, nil); err != nil {
			return err
		}
		rep, err := ReadCheckpointPnetCDF(c, fsys, "rb.nc", cfg, nil)
		if err != nil {
			return err
		}
		want := int64(p * cfg.BlocksPerProc * cfg.NZB * cfg.NYB * cfg.NXB * cfg.NVar * 8)
		if rep.Bytes != want {
			return fmt.Errorf("pnetcdf read bytes = %d, want %d", rep.Bytes, want)
		}
		if rep.Seconds <= 0 {
			return fmt.Errorf("pnetcdf read took no time")
		}
		if _, err := WriteCheckpointH5(c, fsys, "rb.h5", cfg, nil); err != nil {
			return err
		}
		rep, err = ReadCheckpointH5(c, fsys, "rb.h5", cfg, nil)
		if err != nil {
			return err
		}
		if rep.Bytes != want || rep.Seconds <= 0 {
			return fmt.Errorf("h5 read report = %+v", rep)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadCheckpointValuesExact(t *testing.T) {
	// ReadCheckpointPnetCDF scatters into guarded buffers; verify the
	// interior landed correctly by reimplementing the read with value
	// checking through the public API.
	cfg := tinyConfig()
	fsys := pfs.New(pfs.DefaultConfig())
	err := mpi.Run(2, mpi.DefaultNet(), func(c *mpi.Comm) error {
		if _, err := WriteCheckpointPnetCDF(c, fsys, "rv.nc", cfg, nil); err != nil {
			return err
		}
		d, err := core.Open(c, fsys, "rv.nc", nctype.NoWrite, nil)
		if err != nil {
			return err
		}
		gz := cfg.NZB + 2*cfg.NGuard
		gy := cfg.NYB + 2*cfg.NGuard
		gx := cfg.NXB + 2*cfg.NGuard
		memtype, err := mpitype.Subarray(
			[]int64{int64(cfg.BlocksPerProc), int64(gz), int64(gy), int64(gx)},
			[]int64{int64(cfg.BlocksPerProc), int64(cfg.NZB), int64(cfg.NYB), int64(cfg.NXB)},
			[]int64{0, int64(cfg.NGuard), int64(cfg.NGuard), int64(cfg.NGuard)}, 1)
		if err != nil {
			return err
		}
		first := c.Rank() * cfg.BlocksPerProc
		buf := make([]float64, cfg.BlocksPerProc*gz*gy*gx)
		if err := d.GetVaraTypeAll(d.VarID("velx"),
			[]int64{int64(first), 0, 0, 0},
			[]int64{int64(cfg.BlocksPerProc), int64(cfg.NZB), int64(cfg.NYB), int64(cfg.NXB)},
			buf, memtype); err != nil {
			return err
		}
		// Spot-check interiors and confirm guards stayed zero.
		g := cfg.NGuard
		for b := 0; b < cfg.BlocksPerProc; b++ {
			base := b * gz * gy * gx
			idx := base + ((1+g)*gy+(2+g))*gx + (3 + g)
			want := CellValue(1, first+b, 1, 2, 3) // velx is unknown index 1
			if buf[idx] != want {
				return fmt.Errorf("block %d interior = %v, want %v", b, buf[idx], want)
			}
			if buf[base] != 0 {
				return fmt.Errorf("guard cell written during read: %v", buf[base])
			}
		}
		return d.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}
