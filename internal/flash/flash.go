// Package flash reimplements the FLASH I/O benchmark (Zingale et al.), the
// workload of the paper's Figure 7. FLASH is a block-structured AMR
// hydrodynamics code; its I/O benchmark recreates the primary data
// structures — per-process AMR sub-blocks of 8x8x8 or 16x16x16 cells with a
// perimeter of 4 guard cells, 80 blocks per process, 24 cell-centered
// unknowns — and produces three files per run:
//
//   - a checkpoint (all 24 unknowns, double precision),
//   - a plotfile with centered data (4 plot variables, single precision),
//   - a plotfile with corner data (the same variables interpolated to cell
//     corners).
//
// Every file also carries the AMR tree metadata (refinement level, node
// type, coordinates, block sizes, bounding boxes). The guard cells are held
// in memory but never written: the PnetCDF writer strips them with a
// flexible-API subarray memory type, the h5sim writer with a memory-space
// hyperslab — the same mechanism the respective real libraries use.
package flash

import (
	"fmt"

	"pnetcdf/internal/core"
	"pnetcdf/internal/h5sim"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/mpiio"
	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/pfs"
)

// Config sizes the benchmark.
type Config struct {
	NXB, NYB, NZB int // interior cells per block per dimension
	NGuard        int // guard cells on each side
	NVar          int // checkpoint unknowns (24 in FLASH)
	NPlotVar      int // plotfile variables (4 in the benchmark)
	BlocksPerProc int // 80 in the benchmark
}

// Default8 is the paper's 8x8x8 configuration.
func Default8() Config {
	return Config{NXB: 8, NYB: 8, NZB: 8, NGuard: 4, NVar: 24, NPlotVar: 4, BlocksPerProc: 80}
}

// Default16 is the paper's 16x16x16 configuration.
func Default16() Config {
	c := Default8()
	c.NXB, c.NYB, c.NZB = 16, 16, 16
	return c
}

// UnknownNames returns FLASH-style variable names ("dens", "velx", ... then
// synthesized names up to n).
func UnknownNames(n int) []string {
	base := []string{
		"dens", "velx", "vely", "velz", "pres", "ener", "temp", "gamc",
		"game", "enuc", "gpot", "flam",
	}
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if i < len(base) {
			names = append(names, base[i])
		} else {
			names = append(names, fmt.Sprintf("ab%02d", i-len(base)))
		}
	}
	return names
}

// CellValue is the deterministic synthetic field: a function of the unknown
// index, the global block number and the cell coordinate, so any reader can
// verify any cell without reference data.
func CellValue(varIdx, globalBlock int, z, y, x int) float64 {
	return float64(varIdx+1)*1e3 + float64(globalBlock) + float64(z)*0.25 + float64(y)*0.0625 + float64(x)*0.015625
}

// CornerValue is the corner-interpolated field: the average of the (up to 8)
// adjacent cell-centered values, which the guarded block makes available
// without communication — exactly what the benchmark's corner plotfile does.
func CornerValue(cfg Config, varIdx, globalBlock int, z, y, x int) float64 {
	var sum float64
	for dz := -1; dz <= 0; dz++ {
		for dy := -1; dy <= 0; dy++ {
			for dx := -1; dx <= 0; dx++ {
				sum += CellValue(varIdx, globalBlock, z+dz, y+dy, x+dx)
			}
		}
	}
	return sum / 8
}

// guardedDims returns the in-memory block shape including guard cells.
func (cfg Config) guardedDims() (gz, gy, gx int) {
	return cfg.NZB + 2*cfg.NGuard, cfg.NYB + 2*cfg.NGuard, cfg.NXB + 2*cfg.NGuard
}

// FillUnknown builds the guarded in-memory blocks for one unknown:
// shape (blocks, gz, gy, gx) with the interior holding CellValue and the
// guard cells holding a poison value that must never appear in a file.
func (cfg Config) FillUnknown(varIdx, firstGlobalBlock, nblocks int) []float64 {
	gz, gy, gx := cfg.guardedDims()
	buf := make([]float64, nblocks*gz*gy*gx)
	for i := range buf {
		buf[i] = -9.99e33 // guard poison
	}
	g := cfg.NGuard
	for b := 0; b < nblocks; b++ {
		gb := firstGlobalBlock + b
		base := b * gz * gy * gx
		for z := 0; z < cfg.NZB; z++ {
			for y := 0; y < cfg.NYB; y++ {
				row := base + ((z+g)*gy+(y+g))*gx + g
				for x := 0; x < cfg.NXB; x++ {
					buf[row+x] = CellValue(varIdx, gb, z, y, x)
				}
			}
		}
	}
	return buf
}

// FillCorners builds the unguarded corner data for one unknown: shape
// (blocks, NZB+1, NYB+1, NXB+1).
func (cfg Config) FillCorners(varIdx, firstGlobalBlock, nblocks int) []float32 {
	cz, cy, cx := cfg.NZB+1, cfg.NYB+1, cfg.NXB+1
	buf := make([]float32, nblocks*cz*cy*cx)
	i := 0
	for b := 0; b < nblocks; b++ {
		gb := firstGlobalBlock + b
		for z := 0; z <= cfg.NZB; z++ {
			for y := 0; y <= cfg.NYB; y++ {
				for x := 0; x <= cfg.NXB; x++ {
					buf[i] = float32(CornerValue(cfg, varIdx, gb, z, y, x))
					i++
				}
			}
		}
	}
	return buf
}

// treeData generates the per-block AMR metadata for a process.
func treeData(first, n int) (lrefine, nodetype []int32, coords []float64) {
	lrefine = make([]int32, n)
	nodetype = make([]int32, n)
	coords = make([]float64, n*3)
	for b := 0; b < n; b++ {
		gb := first + b
		lrefine[b] = int32(1 + gb%4)
		nodetype[b] = int32(1)
		for d := 0; d < 3; d++ {
			coords[b*3+d] = float64(gb) + float64(d)*0.1
		}
	}
	return
}

// Report summarizes one output file.
type Report struct {
	Bytes   int64   // data bytes written by all processes
	Seconds float64 // virtual makespan of the output phase

	// Degraded holds one *mpiio.DegradedError per variable whose collective
	// write completed without a failed rank's data (DESIGN.md §8). A
	// degraded checkpoint is still a valid, validatable file — the solver
	// decides whether missing blocks are tolerable — so the writer records
	// the losses and keeps writing the remaining variables rather than
	// abandoning the file.
	Degraded []error
}

// BandwidthMBps returns the aggregate bandwidth in MB/s.
func (r Report) BandwidthMBps() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Seconds / 1e6
}

// WriteCheckpointPnetCDF produces a checkpoint with the parallel netCDF
// library: one record-free variable per unknown of shape
// (tot_blocks, nzb, nyb, nxb) in double precision, plus tree metadata.
func WriteCheckpointPnetCDF(comm *mpi.Comm, fsys *pfs.FS, path string, cfg Config, info *mpi.Info) (Report, error) {
	return writePnetCDF(comm, fsys, path, cfg, info, cfg.NVar, false)
}

// WritePlotfilePnetCDF produces a centered plotfile (NPlotVar float32
// variables).
func WritePlotfilePnetCDF(comm *mpi.Comm, fsys *pfs.FS, path string, cfg Config, info *mpi.Info) (Report, error) {
	return writePnetCDF(comm, fsys, path, cfg, info, cfg.NPlotVar, false)
}

// WriteCornerPlotfilePnetCDF produces a corner plotfile (NPlotVar float32
// variables at cell corners).
func WriteCornerPlotfilePnetCDF(comm *mpi.Comm, fsys *pfs.FS, path string, cfg Config, info *mpi.Info) (Report, error) {
	return writePnetCDF(comm, fsys, path, cfg, info, cfg.NPlotVar, true)
}

func writePnetCDF(comm *mpi.Comm, fsys *pfs.FS, path string, cfg Config, info *mpi.Info, nvar int, corners bool) (Report, error) {
	nprocs := comm.Size()
	tot := nprocs * cfg.BlocksPerProc
	first := comm.Rank() * cfg.BlocksPerProc
	checkpoint := nvar == cfg.NVar && !corners

	t0 := comm.Clock()
	d, err := core.Create(comm, fsys, path, nctype.Bit64Offset, info)
	if err != nil {
		return Report{}, err
	}
	// Dimensions.
	dimBlocks, _ := d.DefDim("tot_blocks", int64(tot))
	zname, yname, xname := cfg.NZB, cfg.NYB, cfg.NXB
	if corners {
		zname, yname, xname = cfg.NZB+1, cfg.NYB+1, cfg.NXB+1
	}
	dimZ, _ := d.DefDim("nzb", int64(zname))
	dimY, _ := d.DefDim("nyb", int64(yname))
	dimX, _ := d.DefDim("nxb", int64(xname))
	dim3, _ := d.DefDim("ndim", 3)
	// Tree metadata variables.
	vLref, _ := d.DefVar("lrefine", nctype.Int, []int{dimBlocks})
	vNode, _ := d.DefVar("nodetype", nctype.Int, []int{dimBlocks})
	vCoord, _ := d.DefVar("coordinates", nctype.Double, []int{dimBlocks, dim3})
	// Unknowns.
	typ := nctype.Double
	if !checkpoint {
		typ = nctype.Float
	}
	names := UnknownNames(nvar)
	varids := make([]int, nvar)
	for i, name := range names {
		v, err := d.DefVar(name, typ, []int{dimBlocks, dimZ, dimY, dimX})
		if err != nil {
			return Report{}, err
		}
		varids[i] = v
	}
	if err := d.EndDef(); err != nil {
		return Report{}, err
	}

	// A degraded completion (rank death survived by failover) loses only
	// data the dead rank held alone; the file and the remaining variables
	// are fine, so record it and continue instead of abandoning the file.
	var degraded []error
	tolerate := func(err error) error {
		if err == nil {
			return nil
		}
		if _, ok := mpiio.AsDegraded(err); ok {
			degraded = append(degraded, err)
			return nil
		}
		return err
	}

	// Tree metadata.
	lref, node, coords := treeData(first, cfg.BlocksPerProc)
	bstart := []int64{int64(first)}
	bcount := []int64{int64(cfg.BlocksPerProc)}
	if err := tolerate(d.PutVaraAll(vLref, bstart, bcount, lref)); err != nil {
		return Report{}, err
	}
	if err := tolerate(d.PutVaraAll(vNode, bstart, bcount, node)); err != nil {
		return Report{}, err
	}
	if err := tolerate(d.PutVaraAll(vCoord, []int64{int64(first), 0}, []int64{int64(cfg.BlocksPerProc), 3}, coords)); err != nil {
		return Report{}, err
	}

	var bytes int64
	gz, gy, gx := cfg.guardedDims()
	for i := range varids {
		fstart := []int64{int64(first), 0, 0, 0}
		fcount := []int64{int64(cfg.BlocksPerProc), int64(zname), int64(yname), int64(xname)}
		if corners {
			buf := cfg.FillCorners(i, first, cfg.BlocksPerProc)
			if err := tolerate(d.PutVaraAll(varids[i], fstart, fcount, buf)); err != nil {
				return Report{}, err
			}
			bytes += int64(len(buf)) * 4
			continue
		}
		// Centered data: strip guard cells with a flexible-API memory type,
		// straight from the guarded in-memory blocks.
		buf := cfg.FillUnknown(i, first, cfg.BlocksPerProc)
		memtype, err := mpitype.Subarray(
			[]int64{int64(cfg.BlocksPerProc), int64(gz), int64(gy), int64(gx)},
			[]int64{int64(cfg.BlocksPerProc), int64(cfg.NZB), int64(cfg.NYB), int64(cfg.NXB)},
			[]int64{0, int64(cfg.NGuard), int64(cfg.NGuard), int64(cfg.NGuard)}, 1)
		if err != nil {
			return Report{}, err
		}
		if err := tolerate(d.PutVaraTypeAll(varids[i], fstart, fcount, buf, memtype)); err != nil {
			return Report{}, err
		}
		bytes += memtype.Size() * int64(typ.Size())
	}
	if err := d.Close(); err != nil {
		return Report{}, err
	}
	end := comm.AllreduceF64([]float64{comm.Clock()}, mpi.OpMax)[0]
	totBytes := comm.AllreduceI64([]int64{bytes}, mpi.OpSum)[0]
	return Report{Bytes: totBytes, Seconds: end - t0, Degraded: degraded}, nil
}

// WriteCheckpointH5 produces the checkpoint with the HDF5-style library.
func WriteCheckpointH5(comm *mpi.Comm, fsys *pfs.FS, path string, cfg Config, info *mpi.Info) (Report, error) {
	return writeH5(comm, fsys, path, cfg, info, cfg.NVar, false)
}

// WritePlotfileH5 produces the centered plotfile with the HDF5-style
// library.
func WritePlotfileH5(comm *mpi.Comm, fsys *pfs.FS, path string, cfg Config, info *mpi.Info) (Report, error) {
	return writeH5(comm, fsys, path, cfg, info, cfg.NPlotVar, false)
}

// WriteCornerPlotfileH5 produces the corner plotfile with the HDF5-style
// library.
func WriteCornerPlotfileH5(comm *mpi.Comm, fsys *pfs.FS, path string, cfg Config, info *mpi.Info) (Report, error) {
	return writeH5(comm, fsys, path, cfg, info, cfg.NPlotVar, true)
}

func writeH5(comm *mpi.Comm, fsys *pfs.FS, path string, cfg Config, info *mpi.Info, nvar int, corners bool) (Report, error) {
	nprocs := comm.Size()
	tot := nprocs * cfg.BlocksPerProc
	first := comm.Rank() * cfg.BlocksPerProc
	checkpoint := nvar == cfg.NVar && !corners

	t0 := comm.Clock()
	f, err := h5sim.CreateFile(comm, fsys, path, info)
	if err != nil {
		return Report{}, err
	}
	zname, yname, xname := cfg.NZB, cfg.NYB, cfg.NXB
	if corners {
		zname, yname, xname = cfg.NZB+1, cfg.NYB+1, cfg.NXB+1
	}
	// Tree metadata datasets (each its own collective create/write/close).
	lref, node, coords := treeData(first, cfg.BlocksPerProc)
	writeMeta := func(name string, typ nctype.Type, dims []int64, fsel h5sim.Select, buf any) error {
		ds, err := f.CreateDataset(name, typ, dims)
		if err != nil {
			return err
		}
		if err := ds.WriteAll(fsel, nil, buf); err != nil {
			return err
		}
		return ds.Close()
	}
	if err := writeMeta("/lrefine", nctype.Int, []int64{int64(tot)},
		h5sim.Select{Start: []int64{int64(first)}, Count: []int64{int64(cfg.BlocksPerProc)}}, lref); err != nil {
		return Report{}, err
	}
	if err := writeMeta("/nodetype", nctype.Int, []int64{int64(tot)},
		h5sim.Select{Start: []int64{int64(first)}, Count: []int64{int64(cfg.BlocksPerProc)}}, node); err != nil {
		return Report{}, err
	}
	if err := writeMeta("/coordinates", nctype.Double, []int64{int64(tot), 3},
		h5sim.Select{Start: []int64{int64(first), 0}, Count: []int64{int64(cfg.BlocksPerProc), 3}}, coords); err != nil {
		return Report{}, err
	}

	typ := nctype.Double
	if !checkpoint {
		typ = nctype.Float
	}
	var bytes int64
	gz, gy, gx := cfg.guardedDims()
	names := UnknownNames(nvar)
	for i, name := range names {
		ds, err := f.CreateDataset("/"+name, typ, []int64{int64(tot), int64(zname), int64(yname), int64(xname)})
		if err != nil {
			return Report{}, err
		}
		fsel := h5sim.Select{
			Start: []int64{int64(first), 0, 0, 0},
			Count: []int64{int64(cfg.BlocksPerProc), int64(zname), int64(yname), int64(xname)},
		}
		if corners {
			buf := cfg.FillCorners(i, first, cfg.BlocksPerProc)
			if err := ds.WriteAll(fsel, nil, buf); err != nil {
				return Report{}, err
			}
			bytes += int64(len(buf)) * 4
		} else {
			buf := cfg.FillUnknown(i, first, cfg.BlocksPerProc)
			msel := &h5sim.Select{
				Dims:  []int64{int64(cfg.BlocksPerProc), int64(gz), int64(gy), int64(gx)},
				Start: []int64{0, int64(cfg.NGuard), int64(cfg.NGuard), int64(cfg.NGuard)},
				Count: []int64{int64(cfg.BlocksPerProc), int64(cfg.NZB), int64(cfg.NYB), int64(cfg.NXB)},
			}
			if err := ds.WriteAll(fsel, msel, buf); err != nil {
				return Report{}, err
			}
			bytes += int64(cfg.BlocksPerProc*cfg.NZB*cfg.NYB*cfg.NXB) * int64(typ.Size())
		}
		if err := ds.Close(); err != nil {
			return Report{}, err
		}
	}
	if err := f.Close(); err != nil {
		return Report{}, err
	}
	end := comm.AllreduceF64([]float64{comm.Clock()}, mpi.OpMax)[0]
	totBytes := comm.AllreduceI64([]int64{bytes}, mpi.OpSum)[0]
	return Report{Bytes: totBytes, Seconds: end - t0}, nil
}
