package flash

import (
	"fmt"

	"pnetcdf/internal/core"
	"pnetcdf/internal/h5sim"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/pfs"
)

// Checkpoint read-back: the paper's future-work question ("we are
// interested in seeing how read performance compares between PnetCDF and
// HDF5; perhaps without the additional synchronization of writes the
// performance is more comparable", §6). Each process reads its own blocks
// of every unknown back into guarded in-memory buffers — the restart path
// of the real FLASH code.

// ReadCheckpointPnetCDF reads every unknown's local blocks from a
// checkpoint written by WriteCheckpointPnetCDF, scattering into guarded
// buffers via the flexible API.
func ReadCheckpointPnetCDF(comm *mpi.Comm, fsys *pfs.FS, path string, cfg Config, info *mpi.Info) (Report, error) {
	first := comm.Rank() * cfg.BlocksPerProc
	t0 := comm.Clock()
	d, err := core.Open(comm, fsys, path, nctype.NoWrite, info)
	if err != nil {
		return Report{}, err
	}
	gz, gy, gx := cfg.guardedDims()
	memtype, err := mpitype.Subarray(
		[]int64{int64(cfg.BlocksPerProc), int64(gz), int64(gy), int64(gx)},
		[]int64{int64(cfg.BlocksPerProc), int64(cfg.NZB), int64(cfg.NYB), int64(cfg.NXB)},
		[]int64{0, int64(cfg.NGuard), int64(cfg.NGuard), int64(cfg.NGuard)}, 1)
	if err != nil {
		return Report{}, err
	}
	var bytes int64
	buf := make([]float64, cfg.BlocksPerProc*gz*gy*gx)
	for _, name := range UnknownNames(cfg.NVar) {
		v := d.VarID(name)
		if v < 0 {
			return Report{}, fmt.Errorf("flash: checkpoint missing %s", name)
		}
		fstart := []int64{int64(first), 0, 0, 0}
		fcount := []int64{int64(cfg.BlocksPerProc), int64(cfg.NZB), int64(cfg.NYB), int64(cfg.NXB)}
		if err := d.GetVaraTypeAll(v, fstart, fcount, buf, memtype); err != nil {
			return Report{}, err
		}
		bytes += memtype.Size() * 8
	}
	if err := d.Close(); err != nil {
		return Report{}, err
	}
	end := comm.AllreduceF64([]float64{comm.Clock()}, mpi.OpMax)[0]
	totBytes := comm.AllreduceI64([]int64{bytes}, mpi.OpSum)[0]
	return Report{Bytes: totBytes, Seconds: end - t0}, nil
}

// ReadCheckpointH5 reads every unknown back through the HDF5-style library
// (per-dataset collective open/read/close, memory hyperslab scatter).
func ReadCheckpointH5(comm *mpi.Comm, fsys *pfs.FS, path string, cfg Config, info *mpi.Info) (Report, error) {
	first := comm.Rank() * cfg.BlocksPerProc
	t0 := comm.Clock()
	f, err := h5sim.OpenFile(comm, fsys, path, true, info)
	if err != nil {
		return Report{}, err
	}
	gz, gy, gx := cfg.guardedDims()
	var bytes int64
	buf := make([]float64, cfg.BlocksPerProc*gz*gy*gx)
	msel := &h5sim.Select{
		Dims:  []int64{int64(cfg.BlocksPerProc), int64(gz), int64(gy), int64(gx)},
		Start: []int64{0, int64(cfg.NGuard), int64(cfg.NGuard), int64(cfg.NGuard)},
		Count: []int64{int64(cfg.BlocksPerProc), int64(cfg.NZB), int64(cfg.NYB), int64(cfg.NXB)},
	}
	for _, name := range UnknownNames(cfg.NVar) {
		ds, err := f.OpenDataset("/" + name)
		if err != nil {
			return Report{}, err
		}
		fsel := h5sim.Select{
			Start: []int64{int64(first), 0, 0, 0},
			Count: []int64{int64(cfg.BlocksPerProc), int64(cfg.NZB), int64(cfg.NYB), int64(cfg.NXB)},
		}
		if err := ds.ReadAll(fsel, msel, buf); err != nil {
			return Report{}, err
		}
		if err := ds.Close(); err != nil {
			return Report{}, err
		}
		bytes += int64(cfg.BlocksPerProc*cfg.NZB*cfg.NYB*cfg.NXB) * 8
	}
	if err := f.Close(); err != nil {
		return Report{}, err
	}
	end := comm.AllreduceF64([]float64{comm.Clock()}, mpi.OpMax)[0]
	totBytes := comm.AllreduceI64([]int64{bytes}, mpi.OpSum)[0]
	return Report{Bytes: totBytes, Seconds: end - t0}, nil
}
