package bench

import (
	"fmt"

	"pnetcdf/internal/core"
	"pnetcdf/internal/iostat"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/netcdf"
	"pnetcdf/internal/pfs"
	"pnetcdf/internal/span"
)

// Figure6 holds one chart of the paper's Figure 6: read or write bandwidth
// of a 3-D float array tt(Z,Y,X), serial netCDF (single process) against
// PnetCDF over the seven partitions and a range of process counts.
type Figure6 struct {
	Machine string
	Op      string // "read" or "write"
	Dims    [3]int64
	Bytes   int64
	// SerialMBps is the serial netCDF baseline (one process, whole array).
	SerialMBps float64
	// Points[partition][i] is the bandwidth with Procs[i] processes.
	Procs  []int
	Points map[Partition][]float64
	// Stats[partition][i] is the reduced iostat summary of the measured
	// phase (nil unless Fig6Options.Stats).
	Stats map[Partition][]*iostat.Summary
}

// Fig6Options configures a Figure 6 run.
type Fig6Options struct {
	Machine    MachineSpec
	Dims       [3]int64 // Z, Y, X extents of the float32 array
	Procs      []int
	Partitions []Partition
	Read       bool
	// Discard skips data retention in the simulated FS (large arrays).
	Discard bool
	// Stats enables per-rank iostat counters for the measured phase; the
	// reduced summaries land in Figure6.Stats.
	Stats bool
	// Trace, when non-nil, receives I/O events from every parallel run.
	Trace *iostat.Trace
	// Spans, when non-nil, enables per-rank span recording; each parallel
	// run's cross-rank merge replaces the sink's contents, so after the
	// sweep it holds the last run's spans.
	Spans *span.Sink
	// Fault injects deterministic transient faults into the runs.
	Fault FaultOptions
	// Hints are MPI-IO hints passed to every parallel create (e.g.
	// cb_partition=balanced). Nil uses the defaults.
	Hints *mpi.Info
}

// Dims64MB is the 64 MB dataset (256^3 float32).
var Dims64MB = [3]int64{256, 256, 256}

// Dims1GB is the 1 GB dataset (512x512x1024 float32).
var Dims1GB = [3]int64{512, 512, 1024}

const fig6VarName = "tt"

// RunFigure6 measures one chart.
func RunFigure6(opt Fig6Options) (*Figure6, error) {
	if len(opt.Partitions) == 0 {
		opt.Partitions = AllPartitions
	}
	nbytes := 4 * opt.Dims[0] * opt.Dims[1] * opt.Dims[2]
	op := "write"
	if opt.Read {
		op = "read"
	}
	fig := &Figure6{
		Machine: opt.Machine.Name, Op: op, Dims: opt.Dims, Bytes: nbytes,
		Procs: opt.Procs, Points: map[Partition][]float64{},
		Stats: map[Partition][]*iostat.Summary{},
	}
	serial, err := runFig6Serial(opt)
	if err != nil {
		return nil, err
	}
	fig.SerialMBps = serial
	for _, part := range opt.Partitions {
		for _, p := range opt.Procs {
			mbps, sum, err := runFig6Parallel(opt, part, p)
			if err != nil {
				return nil, fmt.Errorf("partition %v procs %d: %w", part, p, err)
			}
			fig.Points[part] = append(fig.Points[part], mbps)
			fig.Stats[part] = append(fig.Stats[part], sum)
		}
	}
	return fig, nil
}

// runFig6Serial measures the single-process serial netCDF baseline.
func runFig6Serial(opt Fig6Options) (float64, error) {
	cfg := opt.Machine.FS
	cfg.Discard = opt.Discard
	fsys := pfs.New(cfg)
	opt.Fault.apply(fsys)
	pf, t := fsys.Create("serial.nc", 0)
	sf := pfs.NewSerialFile(pf, t)
	mode := nctype.Clobber
	if opt.Dims[0]*opt.Dims[1]*opt.Dims[2]*4 > 1<<31-1 {
		mode |= nctype.Bit64Offset
	}
	d, err := netcdf.Create(sf, mode)
	if err != nil {
		return 0, err
	}
	z, _ := d.DefDim("Z", opt.Dims[0])
	y, _ := d.DefDim("Y", opt.Dims[1])
	x, _ := d.DefDim("X", opt.Dims[2])
	v, err := d.DefVar(fig6VarName, nctype.Float, []int{z, y, x})
	if err != nil {
		return 0, err
	}
	if err := d.EndDef(); err != nil {
		return 0, err
	}
	n := opt.Dims[0] * opt.Dims[1] * opt.Dims[2]
	buf := make([]float32, n)
	if opt.Read {
		// Populate untimed, then measure the read.
		if err := d.PutVar(v, buf); err != nil {
			return 0, err
		}
		if err := d.Sync(); err != nil {
			return 0, err
		}
		fsys.ResetClock()
		sf.SetClock(0)
		if err := d.GetVar(v, buf); err != nil {
			return 0, err
		}
		return float64(4*n) / sf.Clock() / 1e6, nil
	}
	fsys.ResetClock()
	sf.SetClock(0)
	if err := d.PutVar(v, buf); err != nil {
		return 0, err
	}
	if err := d.Sync(); err != nil {
		return 0, err
	}
	return float64(4*n) / sf.Clock() / 1e6, nil
}

// runFig6Parallel measures PnetCDF with one partition and process count.
func runFig6Parallel(opt Fig6Options, part Partition, nprocs int) (float64, *iostat.Summary, error) {
	cfg := opt.Machine.FS
	cfg.Discard = opt.Discard
	fsys := pfs.New(cfg)
	opt.Fault.apply(fsys)
	nbytes := 4 * opt.Dims[0] * opt.Dims[1] * opt.Dims[2]
	var makespan float64
	var sum *iostat.Summary
	err := mpi.Run(nprocs, opt.Machine.Net, func(c *mpi.Comm) error {
		if opt.Stats {
			c.Proc().SetStats(iostat.New())
		}
		c.Proc().SetTrace(opt.Trace)
		if opt.Spans != nil {
			proc := c.Proc()
			proc.SetSpans(span.NewRecorder(c.Rank(), proc.Clock))
		}
		mode := nctype.Clobber
		if nbytes > 1<<31-1 {
			mode |= nctype.Bit64Offset
		}
		d, err := core.Create(c, fsys, "par.nc", mode, opt.Hints)
		if err != nil {
			return err
		}
		z, _ := d.DefDim("Z", opt.Dims[0])
		y, _ := d.DefDim("Y", opt.Dims[1])
		x, _ := d.DefDim("X", opt.Dims[2])
		v, err := d.DefVar(fig6VarName, nctype.Float, []int{z, y, x})
		if err != nil {
			return err
		}
		if err := d.EndDef(); err != nil {
			return err
		}
		start, count := Decompose(part, opt.Dims, nprocs, c.Rank())
		buf := make([]float32, count[0]*count[1]*count[2])
		s := start[:]
		k := count[:]
		if opt.Read {
			if err := d.PutVaraAll(v, s, k, buf); err != nil {
				return err
			}
			if err := d.Sync(); err != nil {
				return err
			}
		}
		// Measured phase: zero the clocks and counters so setup I/O does
		// not pollute the measurement.
		c.Proc().SetClock(0)
		fsys.ResetClock()
		c.Proc().Stats().Reset()
		c.Proc().Spans().Reset()
		c.Barrier()
		t0 := c.Clock()
		if opt.Read {
			err = d.GetVaraAll(v, s, k, buf)
		} else {
			err = d.PutVaraAll(v, s, k, buf)
		}
		if err != nil {
			return err
		}
		if !opt.Read {
			if err := d.Sync(); err != nil {
				return err
			}
		}
		end := c.AllreduceF64([]float64{c.Clock()}, mpi.OpMax)[0]
		if c.Rank() == 0 {
			makespan = end - t0
		}
		if err := d.Close(); err != nil {
			return err
		}
		if opt.Stats {
			if s := iostat.Reduce(c, c.Proc().Stats()); s != nil {
				s.TraceDropped = opt.Trace.Dropped()
				sum = s
			}
		}
		if opt.Spans != nil {
			merged, dropped := span.Gather(c, c.Proc().Spans())
			if c.Rank() == 0 {
				opt.Spans.Replace(merged, dropped)
			}
		}
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	return float64(nbytes) / makespan / 1e6, sum, nil
}
