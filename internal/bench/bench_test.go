package bench

import (
	"bytes"
	"testing"

	"pnetcdf/internal/flash"
)

func TestBalancedFactors(t *testing.T) {
	cases := []struct {
		n, k int
		want []int
	}{
		{8, 1, []int{8}},
		{8, 2, []int{2, 4}},
		{8, 3, []int{2, 2, 2}},
		{16, 2, []int{4, 4}},
		{12, 2, []int{3, 4}},
		{7, 2, []int{7, 1}},
		{1, 3, []int{1, 1, 1}},
	}
	for _, c := range cases {
		got := balancedFactors(c.n, c.k)
		prod := 1
		for _, f := range got {
			prod *= f
		}
		if prod != c.n {
			t.Fatalf("factors(%d,%d) = %v, product %d", c.n, c.k, got, prod)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("factors(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
			}
		}
	}
}

func TestDecomposeCoversExactly(t *testing.T) {
	dims := [3]int64{8, 6, 10}
	for _, part := range AllPartitions {
		for _, nprocs := range []int{1, 2, 4, 8} {
			seen := map[[3]int64]int{}
			var total int64
			for r := 0; r < nprocs; r++ {
				start, count := Decompose(part, dims, nprocs, r)
				total += count[0] * count[1] * count[2]
				for z := start[0]; z < start[0]+count[0]; z++ {
					for y := start[1]; y < start[1]+count[1]; y++ {
						for x := start[2]; x < start[2]+count[2]; x++ {
							seen[[3]int64{z, y, x}]++
						}
					}
				}
				// Bounds.
				for d := 0; d < 3; d++ {
					if start[d] < 0 || start[d]+count[d] > dims[d] {
						t.Fatalf("%v p=%d r=%d: dim %d out of bounds: %v+%v",
							part, nprocs, r, d, start, count)
					}
				}
			}
			want := dims[0] * dims[1] * dims[2]
			if total != want {
				t.Fatalf("%v p=%d: covered %d cells, want %d", part, nprocs, total, want)
			}
			for cell, n := range seen {
				if n != 1 {
					t.Fatalf("%v p=%d: cell %v covered %d times", part, nprocs, cell, n)
				}
			}
		}
	}
}

func TestPartitionStrings(t *testing.T) {
	want := []string{"Z", "Y", "X", "ZY", "ZX", "YX", "ZYX"}
	for i, p := range AllPartitions {
		if p.String() != want[i] {
			t.Fatalf("partition %d = %s", i, p)
		}
	}
}

// smallMachine shrinks the simulated system so harness tests run fast.
func smallMachine() MachineSpec {
	m := SDSCBlueHorizon()
	return m
}

func TestFigure6SmallRun(t *testing.T) {
	fig, err := RunFigure6(Fig6Options{
		Machine:    smallMachine(),
		Dims:       [3]int64{32, 32, 32}, // 128 KB
		Procs:      []int{1, 4},
		Partitions: []Partition{PartZ, PartX},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fig.SerialMBps <= 0 {
		t.Fatal("serial baseline not measured")
	}
	for _, part := range []Partition{PartZ, PartX} {
		pts := fig.Points[part]
		if len(pts) != 2 {
			t.Fatalf("%v: %d points", part, len(pts))
		}
		for _, v := range pts {
			if v <= 0 {
				t.Fatalf("%v: nonpositive bandwidth %v", part, v)
			}
		}
	}
	var buf bytes.Buffer
	WriteFigure6(&buf, fig)
	if buf.Len() == 0 || !bytes.Contains(buf.Bytes(), []byte("serial netCDF")) {
		t.Fatalf("table output:\n%s", buf.String())
	}
}

func TestFigure6ScalesWithProcs(t *testing.T) {
	fig, err := RunFigure6(Fig6Options{
		Machine:    smallMachine(),
		Dims:       Dims64MB,
		Procs:      []int{1, 8},
		Partitions: []Partition{PartZ},
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := fig.Points[PartZ]
	// The paper's central scalability claim: more processes, more aggregate
	// bandwidth; and PnetCDF at 8 procs beats the serial baseline.
	if pts[1] <= pts[0] {
		t.Fatalf("no scaling: 1p=%.1f 8p=%.1f MB/s", pts[0], pts[1])
	}
	if pts[1] <= fig.SerialMBps {
		t.Fatalf("PnetCDF 8p (%.1f) not above serial (%.1f)", pts[1], fig.SerialMBps)
	}
}

func TestFigure7SmallRun(t *testing.T) {
	cfg := flash.Config{NXB: 4, NYB: 4, NZB: 4, NGuard: 2, NVar: 4, NPlotVar: 2, BlocksPerProc: 4}
	fig, err := RunFigure7(Fig7Options{
		Machine: ASCIFrost(),
		Config:  cfg,
		File:    FlashCheckpoint,
		Procs:   []int{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fig.Procs {
		if fig.PnetCDF[i] <= 0 || fig.HDF5[i] <= 0 {
			t.Fatalf("nonpositive bandwidth at %d procs", fig.Procs[i])
		}
		if fig.PnetCDF[i] <= fig.HDF5[i] {
			t.Fatalf("%d procs: PnetCDF (%.1f) not above HDF5 (%.1f)",
				fig.Procs[i], fig.PnetCDF[i], fig.HDF5[i])
		}
	}
	var buf bytes.Buffer
	WriteFigure7(&buf, fig)
	if !bytes.Contains(buf.Bytes(), []byte("PnetCDF")) {
		t.Fatalf("table output:\n%s", buf.String())
	}
}

func TestAblationsFavorChosenDesign(t *testing.T) {
	m := smallMachine()
	two, err := AblationTwoPhase(m, [3]int64{64, 64, 64}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if two.Speedup() <= 1 {
		t.Fatalf("two-phase not a win: %v", two)
	}
	sv, err := AblationSieving(m, [3]int64{32, 32, 64}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Speedup() <= 1 {
		t.Fatalf("sieving not a win: %v", sv)
	}
	hs, err := AblationHeaderStrategy(m, 200, 8)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Chosen <= 0 || hs.Baseline <= 0 {
		t.Fatalf("header ablation not measured: %v", hs)
	}
	rb, err := AblationRecordBatch(m, 8, 3, 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Speedup() <= 1 {
		t.Fatalf("record batching not a win: %v", rb)
	}
	lo, err := AblationLayout(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Speedup() <= 1 {
		t.Fatalf("linear layout not a win: %v", lo)
	}
}

func TestAblationPrefetch(t *testing.T) {
	res, err := AblationPrefetch(smallMachine(), 4, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup() <= 1 {
		t.Fatalf("prefetch hint not a win for small repeated reads: %v", res)
	}
}

func TestAblationVarAlign(t *testing.T) {
	res, err := AblationVarAlign(smallMachine(), 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup() <= 1 {
		t.Fatalf("var alignment not a win for independent writes: %v", res)
	}
}
