// Package bench is the measurement harness that regenerates the paper's
// evaluation: the Figure 6 scalability study (serial netCDF vs PnetCDF over
// seven 3-D partitions), the Figure 7 FLASH I/O comparison (PnetCDF vs the
// HDF5-style library), and the ablations over the design choices DESIGN.md
// calls out. Machines are simulated (internal/pfs + internal/mpi virtual
// time); data movement is real.
package bench

import (
	"fmt"
	"math"
)

// Partition names the seven decompositions of paper Figure 5: which axes of
// tt(Z,Y,X) are split across processes.
type Partition int

// The partition patterns, in the paper's order.
const (
	PartZ Partition = iota
	PartY
	PartX
	PartZY
	PartZX
	PartYX
	PartZYX
)

// AllPartitions lists the seven patterns in display order.
var AllPartitions = []Partition{PartZ, PartY, PartX, PartZY, PartZX, PartYX, PartZYX}

// String returns the paper's label.
func (p Partition) String() string {
	switch p {
	case PartZ:
		return "Z"
	case PartY:
		return "Y"
	case PartX:
		return "X"
	case PartZY:
		return "ZY"
	case PartZX:
		return "ZX"
	case PartYX:
		return "YX"
	case PartZYX:
		return "ZYX"
	}
	return fmt.Sprintf("Partition(%d)", int(p))
}

// axes returns the indices (0=Z, 1=Y, 2=X) the partition splits.
func (p Partition) axes() []int {
	switch p {
	case PartZ:
		return []int{0}
	case PartY:
		return []int{1}
	case PartX:
		return []int{2}
	case PartZY:
		return []int{0, 1}
	case PartZX:
		return []int{0, 2}
	case PartYX:
		return []int{1, 2}
	case PartZYX:
		return []int{0, 1, 2}
	}
	return nil
}

// balancedFactors splits n into k factors, as equal as possible, largest
// first (assigned to the most significant split axis).
func balancedFactors(n, k int) []int {
	out := make([]int, k)
	remaining := n
	for i := 0; i < k; i++ {
		if i == k-1 {
			out[i] = remaining
			break
		}
		// Aim at the (k-i)'th root of what is left: take the largest divisor
		// at or below it, falling back to the smallest divisor above 1.
		target := int(math.Round(math.Pow(float64(remaining), 1/float64(k-i))))
		if target < 1 {
			target = 1
		}
		best := 1
		for f := 1; f <= target; f++ {
			if remaining%f == 0 {
				best = f
			}
		}
		if best == 1 && remaining > 1 {
			best = remaining
			for f := 2; f < remaining; f++ {
				if remaining%f == 0 {
					best = f
					break
				}
			}
		}
		out[i] = best
		remaining /= best
	}
	return out
}

// Decompose returns this rank's (start, count) block of an array of the
// given dims under partition p with nprocs processes. Axes not split get the
// full extent. Processes are assigned in row-major order over the split
// grid.
func Decompose(p Partition, dims [3]int64, nprocs, rank int) (start, count [3]int64) {
	axes := p.axes()
	factors := balancedFactors(nprocs, len(axes))
	// Rank index within the split grid (row-major across axes order).
	coords := make([]int, len(axes))
	r := rank
	for i := len(axes) - 1; i >= 0; i-- {
		coords[i] = r % factors[i]
		r /= factors[i]
	}
	for d := 0; d < 3; d++ {
		start[d] = 0
		count[d] = dims[d]
	}
	for i, ax := range axes {
		parts := int64(factors[i])
		whole := dims[ax]
		base := whole / parts
		rem := whole % parts
		c := int64(coords[i])
		count[ax] = base
		if c < rem {
			count[ax]++
		}
		start[ax] = base*c + min64(c, rem)
	}
	return start, count
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
