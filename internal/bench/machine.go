package bench

import (
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/pfs"
)

// MachineSpec is a simulated platform: file system geometry plus
// interconnect. NewFS builds a fresh file system instance per experiment so
// server queues never leak between runs.
type MachineSpec struct {
	Name string
	FS   pfs.Config
	Net  mpi.NetConfig
}

// NewFS instantiates the machine's file system.
func (m MachineSpec) NewFS() *pfs.FS { return pfs.New(m.FS) }

// SDSCBlueHorizon models the system of the paper's §5.1 scalability study:
// an IBM SP with 12 GPFS I/O nodes, ~1.5 GB/s peak aggregate read bandwidth,
// writes substantially slower than reads (GPFS commit), and a per-client
// link that caps a single process in the low hundreds of MB/s — which is
// what bounds the serial netCDF baseline.
func SDSCBlueHorizon() MachineSpec {
	cfg := pfs.Config{
		NumServers:     12,
		StripeSize:     256 << 10,
		SeekTime:       1.2e-3,
		ReadBW:         75e6,
		WriteBW:        22e6,
		ClientBW:       160e6,
		NetLatency:     60e-6,
		PerReqOverhead: 200e-6,
		PipeChunk:      4 << 20,
		OpenCost:       3e-3,
		SyncCost:       1.5e-3,
	}
	return MachineSpec{Name: "SDSC Blue Horizon (sim)", FS: cfg, Net: mpi.DefaultNet()}
}

// ASCIFrost models the §5.2 FLASH platform: ASCI White Frost, a 68-node
// Power3 system attached to a 2-node GPFS I/O system. The small I/O-server
// pool is why the FLASH curves flatten near ~100 MB/s.
func ASCIFrost() MachineSpec {
	cfg := pfs.Config{
		NumServers:     2,
		StripeSize:     256 << 10,
		SeekTime:       1.0e-3,
		ReadBW:         90e6,
		WriteBW:        60e6,
		ClientBW:       160e6,
		NetLatency:     80e-6,
		PerReqOverhead: 250e-6,
		PipeChunk:      4 << 20,
		OpenCost:       3e-3,
		SyncCost:       1.5e-3,
	}
	return MachineSpec{Name: "ASCI White Frost (sim)", FS: cfg, Net: mpi.DefaultNet()}
}
