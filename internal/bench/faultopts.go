package bench

import (
	"pnetcdf/internal/fault"
	"pnetcdf/internal/pfs"
)

// FaultOptions configures deterministic fault injection for a bench run:
// transient read/write errors and short transfers at probability Rate per
// 64 KiB of payload, plus the occasional latency spike. The retry machinery
// absorbs the faults, so a faulted run must produce the same file as a
// clean one — the bench knobs exist to measure what that recovery costs
// (see the IORetries / PfsRetries / IOBackoffTime counters under -stats).
type FaultOptions struct {
	// Rate is the per-64KiB transient fault probability; 0 disables
	// injection entirely.
	Rate float64
	// Seed selects the deterministic fault schedule (same seed, same
	// faults, same virtual-time result).
	Seed uint64
	// KillPoint, when non-empty, arms a one-shot rank kill at the named
	// two-phase crash point (fault.KillBeforePack, fault.KillMidExchange,
	// fault.KillAfterIssue). The failure-tolerance path (DESIGN.md §8) only
	// engages when the deadline detector is also on (PNETCDF_FT_TIMEOUT);
	// without it a kill deadlocks the survivors by design, so the bench
	// flags set both together.
	KillPoint string
	// KillRank is the world rank to kill (meaningful with KillPoint).
	KillRank int
	// KillOccurrence selects which passage of KillRank through KillPoint
	// fires, 0-based (e.g. the Nth round's pack).
	KillOccurrence int64
}

// apply installs an injector on fsys when Rate is nonzero or a rank kill
// is armed.
func (fo FaultOptions) apply(fsys *pfs.FS) {
	if fo.Rate <= 0 && fo.KillPoint == "" {
		return
	}
	inj := fault.New(fault.Config{
		Seed:         fo.Seed,
		ReadErrRate:  fo.Rate,
		WriteErrRate: fo.Rate,
		ShortRate:    fo.Rate,
		LatencyRate:  fo.Rate,
		LatencySpike: 2e-3,
		FaultUnit:    64 << 10,
	})
	if fo.KillPoint != "" {
		inj.KillRankAt(fo.KillRank, fo.KillPoint, fo.KillOccurrence)
	}
	fsys.SetFault(inj)
}
