package bench

import (
	"fmt"

	"pnetcdf/internal/core"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/nctype"
)

// AblationPrefetch measures the nc_prefetch_vars hint (paper §4.1's
// open-time read optimization): a workload that opens a file and issues
// many small reads of a few variables, with and without the hint.
func AblationPrefetch(m MachineSpec, nprocs, nreads int) (AblationResult, error) {
	// Build the dataset once.
	fsys := m.NewFS()
	err := mpi.Run(1, m.Net, func(c *mpi.Comm) error {
		d, err := core.Create(c, fsys, "pf.nc", nctype.Clobber, nil)
		if err != nil {
			return err
		}
		x, _ := d.DefDim("x", 4096)
		for _, name := range []string{"coords", "mask", "area"} {
			v, err := d.DefVar(name, nctype.Double, []int{x})
			if err != nil {
				return err
			}
			_ = v
		}
		if err := d.EndDef(); err != nil {
			return err
		}
		buf := make([]float64, 4096)
		for _, name := range []string{"coords", "mask", "area"} {
			if err := d.PutVarAll(d.VarID(name), buf); err != nil {
				return err
			}
		}
		return d.Close()
	})
	if err != nil {
		return AblationResult{}, err
	}
	run := func(hint bool) (float64, error) {
		info := mpi.NewInfo()
		if hint {
			info.Set("nc_prefetch_vars", "coords,mask,area")
		}
		var makespan float64
		err := mpi.Run(nprocs, m.Net, func(c *mpi.Comm) error {
			c.Proc().SetClock(0)
			fsys.ResetClock()
			c.Barrier()
			t0 := c.Clock()
			d, err := core.Open(c, fsys, "pf.nc", nctype.NoWrite, info)
			if err != nil {
				return err
			}
			if err := d.BeginIndepData(); err != nil {
				return err
			}
			// Many small independent point reads: the pattern the paper's
			// hint discussion targets.
			one := make([]float64, 8)
			for i := 0; i < nreads; i++ {
				v := d.VarID([]string{"coords", "mask", "area"}[i%3])
				off := int64((i * 37) % 4000)
				if err := d.GetVara(v, []int64{off}, []int64{8}, one); err != nil {
					return err
				}
			}
			if err := d.EndIndepData(); err != nil {
				return err
			}
			end := c.AllreduceF64([]float64{c.Clock()}, mpi.OpMax)[0]
			if c.Rank() == 0 {
				makespan = end - t0
			}
			return d.Close()
		})
		return makespan, err
	}
	with, err := run(true)
	if err != nil {
		return AblationResult{}, err
	}
	without, err := run(false)
	if err != nil {
		return AblationResult{}, fmt.Errorf("without hint: %w", err)
	}
	return AblationResult{Name: "nc_prefetch_vars hint", Chosen: with, Baseline: without}, nil
}

// AblationVarAlign measures the nc_var_align_size hint: with the file
// system's partial-stripe read-modify-write, aligning variable starts to
// the stripe lets independent whole-variable writes skip the RMW penalty.
func AblationVarAlign(m MachineSpec, nvars, nprocs int) (AblationResult, error) {
	run := func(alignHint bool) (float64, error) {
		fsys := m.NewFS()
		stripe := m.FS.StripeSize
		info := mpi.NewInfo().Set("romio_cb_write", "disable") // independent writes
		if alignHint {
			info.Set("nc_var_align_size", fmt.Sprint(stripe))
		}
		var makespan float64
		err := mpi.Run(nprocs, m.Net, func(c *mpi.Comm) error {
			d, err := core.Create(c, fsys, "va.nc", nctype.Clobber, info)
			if err != nil {
				return err
			}
			// One stripe-sized variable per process; each process writes its
			// own variable independently (a per-rank-output pattern).
			x, _ := d.DefDim("x", stripe/4)
			ids := make([]int, nvars)
			for i := range ids {
				ids[i], _ = d.DefVar(fmt.Sprintf("v%02d", i), nctype.Float, []int{x})
			}
			if err := d.EndDef(); err != nil {
				return err
			}
			buf := make([]float32, stripe/4)
			c.Proc().SetClock(0)
			fsys.ResetClock()
			c.Barrier()
			t0 := c.Clock()
			if err := d.BeginIndepData(); err != nil {
				return err
			}
			for i, v := range ids {
				if i%nprocs == c.Rank() {
					//nclint:allow=collsym -- inside BeginIndepData/EndIndepData: PutVara takes the independent path, no collective is reached
					if err := d.PutVara(v, []int64{0}, []int64{stripe / 4}, buf); err != nil {
						return err
					}
				}
			}
			if err := d.EndIndepData(); err != nil {
				return err
			}
			end := c.AllreduceF64([]float64{c.Clock()}, mpi.OpMax)[0]
			if c.Rank() == 0 {
				makespan = end - t0
			}
			return d.Close()
		})
		return makespan, err
	}
	aligned, err := run(true)
	if err != nil {
		return AblationResult{}, err
	}
	unaligned, err := run(false)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{Name: "nc_var_align_size hint", Chosen: aligned, Baseline: unaligned}, nil
}
