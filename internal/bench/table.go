package bench

import (
	"fmt"
	"io"
)

// WriteFigure6 prints one Figure 6 chart as the table the paper plots:
// one row per partition, one column per process count, plus the serial
// baseline row.
func WriteFigure6(w io.Writer, fig *Figure6) {
	fmt.Fprintf(w, "%s %d MB — %s — bandwidth (MB/s)\n",
		titleCase(fig.Op), fig.Bytes>>20, fig.Machine)
	fmt.Fprintf(w, "  array tt(Z=%d, Y=%d, X=%d) float\n", fig.Dims[0], fig.Dims[1], fig.Dims[2])
	fmt.Fprintf(w, "  %-14s", "partition")
	for _, p := range fig.Procs {
		fmt.Fprintf(w, "%8dp", p)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-14s%8.1f  (single process, whole array)\n", "serial netCDF", fig.SerialMBps)
	for _, part := range AllPartitions {
		pts, ok := fig.Points[part]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-14s", part.String())
		for _, v := range pts {
			fmt.Fprintf(w, "%9.1f", v)
		}
		fmt.Fprintln(w)
	}
}

// WriteFigure7 prints one Figure 7 chart as a table: one row per process
// count with both libraries' bandwidths.
func WriteFigure7(w io.Writer, fig *Figure7) {
	fmt.Fprintf(w, "FLASH I/O (%s, %s) — %s — aggregate bandwidth (MB/s)\n",
		fig.File, fig.Block, fig.Machine)
	fmt.Fprintf(w, "  %8s %12s %12s %8s\n", "procs", "PnetCDF", "HDF5", "ratio")
	for i, p := range fig.Procs {
		ratio := 0.0
		if fig.HDF5[i] > 0 {
			ratio = fig.PnetCDF[i] / fig.HDF5[i]
		}
		fmt.Fprintf(w, "  %8d %12.1f %12.1f %7.2fx\n", p, fig.PnetCDF[i], fig.HDF5[i], ratio)
	}
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	if s[0] >= 'a' && s[0] <= 'z' {
		return string(s[0]-32) + s[1:]
	}
	return s
}
