package bench

import (
	"fmt"
	"os"

	"pnetcdf/internal/flash"
	"pnetcdf/internal/iostat"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/pfs"
	"pnetcdf/internal/span"
)

// FlashFile selects which of the three FLASH output files to benchmark.
type FlashFile int

// The three outputs of one FLASH I/O run.
const (
	FlashCheckpoint FlashFile = iota
	FlashPlotfile
	FlashCorners
)

// String names the output like the paper's chart titles.
func (f FlashFile) String() string {
	switch f {
	case FlashCheckpoint:
		return "Checkpoint"
	case FlashPlotfile:
		return "Plotfiles"
	case FlashCorners:
		return "Plotfiles w/corners"
	}
	return "?"
}

// Figure7 holds one chart of the paper's Figure 7: aggregate bandwidth of
// one FLASH output file, PnetCDF vs the HDF5-style library, across process
// counts.
type Figure7 struct {
	Machine string
	File    FlashFile
	Block   string // "8x8x8" or "16x16x16"
	Procs   []int
	PnetCDF []float64 // MB/s
	HDF5    []float64 // MB/s
	// Stats[i] is the reduced iostat summary of the PnetCDF run with
	// Procs[i] processes (nil unless Fig7Options.Stats).
	Stats []*iostat.Summary
}

// Fig7Options configures a Figure 7 run.
type Fig7Options struct {
	Machine MachineSpec
	Config  flash.Config
	File    FlashFile
	Procs   []int
	Discard bool
	// Read measures checkpoint read-back instead of writing — the paper's
	// future-work comparison (§6). Only meaningful with FlashCheckpoint.
	Read bool
	// Stats enables per-rank iostat counters for the PnetCDF runs; the
	// reduced summaries land in Figure7.Stats.
	Stats bool
	// Trace, when non-nil, receives I/O events from the PnetCDF runs.
	Trace *iostat.Trace
	// Spans, when non-nil, enables per-rank span recording for the PnetCDF
	// runs; each run's cross-rank merge replaces the sink's contents, so
	// after the sweep it holds the largest (last) run's spans.
	Spans *span.Sink
	// Fault injects deterministic transient faults into the runs; the
	// retry counters in Stats show the recovery cost.
	Fault FaultOptions
	// Hints are MPI-IO hints passed to the PnetCDF runs (e.g.
	// cb_partition=balanced). Nil uses the defaults.
	Hints *mpi.Info
	// DumpFile, when non-empty, writes the raw image of each PnetCDF run's
	// output file to this host path (later runs overwrite earlier ones, so
	// single-point sweeps give a deterministic artifact). Used for
	// byte-identity checks between hint settings (verify.sh PIPELINE=0);
	// incompatible with Discard, which drops the data being dumped.
	DumpFile string
}

// RunFigure7 measures one chart.
func RunFigure7(opt Fig7Options) (*Figure7, error) {
	block := fmt.Sprintf("%dx%dx%d", opt.Config.NXB, opt.Config.NYB, opt.Config.NZB)
	if opt.Read {
		block += ", read-back"
	}
	fig := &Figure7{
		Machine: opt.Machine.Name,
		File:    opt.File,
		Block:   block,
		Procs:   opt.Procs,
	}
	for _, p := range opt.Procs {
		nc, sum, err := runFlashOnce(opt, p, false)
		if err != nil {
			return nil, fmt.Errorf("pnetcdf %d procs: %w", p, err)
		}
		h5, _, err := runFlashOnce(opt, p, true)
		if err != nil {
			return nil, fmt.Errorf("hdf5 %d procs: %w", p, err)
		}
		fig.PnetCDF = append(fig.PnetCDF, nc.BandwidthMBps())
		fig.HDF5 = append(fig.HDF5, h5.BandwidthMBps())
		fig.Stats = append(fig.Stats, sum)
	}
	return fig, nil
}

func runFlashOnce(opt Fig7Options, nprocs int, hdf5 bool) (flash.Report, *iostat.Summary, error) {
	if hdf5 {
		// Rank kills target the PnetCDF failover path; the HDF5 comparison
		// run has no failover and would just lose a rank.
		opt.Fault.KillPoint = ""
	}
	cfg := opt.Machine.FS
	cfg.Discard = opt.Discard
	fsys := pfs.New(cfg)
	opt.Fault.apply(fsys)
	var rep flash.Report
	var sum *iostat.Summary
	collect := opt.Stats && !hdf5
	err := mpi.Run(nprocs, opt.Machine.Net, func(c *mpi.Comm) error {
		if collect {
			c.Proc().SetStats(iostat.New())
		}
		if !hdf5 {
			c.Proc().SetTrace(opt.Trace)
			if opt.Spans != nil {
				proc := c.Proc()
				proc.SetSpans(span.NewRecorder(c.Rank(), proc.Clock))
			}
		}
		var r flash.Report
		var err error
		switch {
		case opt.Read && hdf5:
			if _, err = flash.WriteCheckpointH5(c, fsys, "f.h5", opt.Config, nil); err != nil {
				return err
			}
			fsys.ResetClock()
			c.Proc().SetClock(0)
			c.Barrier()
			r, err = flash.ReadCheckpointH5(c, fsys, "f.h5", opt.Config, nil)
		case opt.Read:
			if _, err = flash.WriteCheckpointPnetCDF(c, fsys, "f.nc", opt.Config, opt.Hints); err != nil {
				return err
			}
			fsys.ResetClock()
			c.Proc().SetClock(0)
			c.Proc().Stats().Reset()
			c.Proc().Spans().Reset()
			c.Barrier()
			r, err = flash.ReadCheckpointPnetCDF(c, fsys, "f.nc", opt.Config, opt.Hints)
		case hdf5 && opt.File == FlashCheckpoint:
			r, err = flash.WriteCheckpointH5(c, fsys, "f.h5", opt.Config, nil)
		case hdf5 && opt.File == FlashPlotfile:
			r, err = flash.WritePlotfileH5(c, fsys, "f.h5", opt.Config, nil)
		case hdf5 && opt.File == FlashCorners:
			r, err = flash.WriteCornerPlotfileH5(c, fsys, "f.h5", opt.Config, nil)
		case opt.File == FlashCheckpoint:
			r, err = flash.WriteCheckpointPnetCDF(c, fsys, "f.nc", opt.Config, opt.Hints)
		case opt.File == FlashPlotfile:
			r, err = flash.WritePlotfilePnetCDF(c, fsys, "f.nc", opt.Config, opt.Hints)
		default:
			r, err = flash.WriteCornerPlotfilePnetCDF(c, fsys, "f.nc", opt.Config, opt.Hints)
		}
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			rep = r
		}
		if collect {
			if s := iostat.Reduce(c, c.Proc().Stats()); s != nil {
				s.TraceDropped = opt.Trace.Dropped()
				sum = s
			}
		}
		if !hdf5 && opt.Spans != nil {
			merged, dropped := span.Gather(c, c.Proc().Spans())
			if c.Rank() == 0 {
				opt.Spans.Replace(merged, dropped)
			}
		}
		return nil
	})
	if err == nil && !hdf5 && opt.DumpFile != "" {
		if cfg.Discard {
			return rep, sum, fmt.Errorf("DumpFile %q needs the file data, but Discard is set", opt.DumpFile)
		}
		err = dumpImage(fsys, "f.nc", opt.DumpFile)
	}
	return rep, sum, err
}

// dumpImage copies the raw bytes of a simulated file to a host path.
func dumpImage(fsys *pfs.FS, name, dst string) error {
	pf, _, err := fsys.Open(name, 0)
	if err != nil {
		return fmt.Errorf("dump %s: %w", name, err)
	}
	img := make([]byte, pf.Size())
	if _, err := pf.ReadAt(0, img, 0); err != nil {
		return fmt.Errorf("dump %s: %w", name, err)
	}
	return os.WriteFile(dst, img, 0o644)
}
