package bench

import (
	"bytes"
	"testing"

	"pnetcdf/internal/flash"
	"pnetcdf/internal/iostat"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/pfs"
)

// TestFlashPipelineAcceptance is the acceptance check for the pipelined
// two-phase path: an 8-rank FLASH checkpoint with cb_pipeline=enable must
// (a) write a file byte-identical to the serial loop — pipelining is a
// scheduling change only — and (b) actually overlap: the pipelined run
// reports nonzero io_pipelined_rounds and io_overlap_ns, the serial run
// reports zero for both.
func TestFlashPipelineAcceptance(t *testing.T) {
	cfg := flash.Default8()
	run := func(mode string) ([]byte, map[string]int64) {
		t.Helper()
		fsys := pfs.New(pfs.DefaultConfig())
		var counters map[string]int64
		err := mpi.Run(8, mpi.DefaultNet(), func(c *mpi.Comm) error {
			c.Proc().SetStats(iostat.New())
			// A staging buffer smaller than the aggregator file domains
			// gives each collective several rounds — the regime the
			// pipeline exists for (one round has nothing to overlap with).
			info := mpi.NewInfo().
				Set("cb_pipeline", mode).
				Set("cb_buffer_size", "65536")
			if _, err := flash.WriteCheckpointPnetCDF(c, fsys, "f.nc", cfg, info); err != nil {
				return err
			}
			if s := iostat.Reduce(c, c.Proc().Stats()); s != nil {
				counters = s.KeyCounters()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("cb_pipeline=%s: %v", mode, err)
		}
		pf, _, err := fsys.Open("f.nc", 0)
		if err != nil {
			t.Fatalf("cb_pipeline=%s: reopen: %v", mode, err)
		}
		img := make([]byte, pf.Size())
		if _, err := pf.ReadAt(0, img, 0); err != nil {
			t.Fatalf("cb_pipeline=%s: raw read: %v", mode, err)
		}
		return img, counters
	}

	serialImg, serialStats := run("disable")
	pipedImg, pipedStats := run("enable")

	if !bytes.Equal(serialImg, pipedImg) {
		t.Fatalf("pipelined checkpoint differs from serial: %d vs %d bytes",
			len(pipedImg), len(serialImg))
	}
	if pipedStats["io_pipelined_rounds"] == 0 {
		t.Fatal("pipelined run reports no io_pipelined_rounds — pipeline never engaged")
	}
	if pipedStats["io_overlap_ns"] == 0 {
		t.Fatal("pipelined run reports no io_overlap_ns — nothing overlapped")
	}
	if serialStats["io_pipelined_rounds"] != 0 || serialStats["io_overlap_ns"] != 0 {
		t.Fatalf("serial run reports pipeline activity: rounds=%d overlap=%d",
			serialStats["io_pipelined_rounds"], serialStats["io_overlap_ns"])
	}
}
