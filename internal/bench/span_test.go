package bench

import (
	"bytes"
	"testing"

	"pnetcdf/internal/flash"
	"pnetcdf/internal/span"
)

// TestFigure7SpanCriticalPath is the acceptance check for the span
// pipeline: an 8-rank FLASH checkpoint run with span recording must yield
// a cross-rank merge whose critical-path analysis names the bounding rank
// and phase of every two-phase round, and whose Chrome-trace export
// round-trips as valid trace-event JSON.
func TestFigure7SpanCriticalPath(t *testing.T) {
	cfg := flash.Config{NXB: 4, NYB: 4, NZB: 4, NGuard: 2, NVar: 4, NPlotVar: 2, BlocksPerProc: 4}
	sink := new(span.Sink)
	_, err := RunFigure7(Fig7Options{
		Machine: ASCIFrost(),
		Config:  cfg,
		File:    FlashCheckpoint,
		Procs:   []int{8},
		Spans:   sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	spans, dropped := sink.Snapshot()
	if len(spans) == 0 {
		t.Fatal("span sink empty after instrumented run")
	}
	if dropped != 0 {
		t.Fatalf("recorder dropped %d spans on a small run", dropped)
	}
	// All 8 ranks contributed to the merge.
	ranks := map[int]bool{}
	for _, s := range spans {
		ranks[s.Rank] = true
		if s.End < s.Start {
			t.Fatalf("span %v ends before it starts", s)
		}
	}
	if len(ranks) != 8 {
		t.Fatalf("merged spans cover %d ranks, want 8", len(ranks))
	}

	rounds := span.CriticalPath(spans)
	if len(rounds) == 0 {
		t.Fatal("critical path found no collective rounds")
	}
	phases := map[string]bool{
		span.Pack: true, span.Exchange: true,
		span.AggWrite: true, span.Round: true,
	}
	for _, rc := range rounds {
		if rc.Rank < 0 || rc.Rank >= 8 {
			t.Fatalf("round (%d,%d): bounding rank %d out of world", rc.Coll, rc.Round, rc.Rank)
		}
		if !phases[rc.Phase] {
			t.Fatalf("round (%d,%d): bounding phase %q not a round phase", rc.Coll, rc.Round, rc.Phase)
		}
		if rc.Work <= 0 {
			t.Fatalf("round (%d,%d): nonpositive bounding work %v", rc.Coll, rc.Round, rc.Work)
		}
	}
	if counts := span.BoundCounts(rounds); len(counts) == 0 {
		t.Fatal("no straggler census from the bound rounds")
	}

	// The FLASH checkpoint writes through one aggregator pipeline; the
	// aggregator load analysis must see agg_write time on at least one rank.
	agg := span.PhaseLoad(spans, span.AggWrite)
	if agg.Max <= 0 {
		t.Fatal("no aggregator write time in the merged spans")
	}

	// The export the bench tools write must be loadable trace-event JSON.
	var buf bytes.Buffer
	if err := span.WriteChromeTrace(&buf, spans, dropped); err != nil {
		t.Fatal(err)
	}
	back, d2, err := span.ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("emitted Chrome trace does not parse: %v", err)
	}
	if len(back) != len(spans) || d2 != dropped {
		t.Fatalf("round trip lost spans: %d -> %d", len(spans), len(back))
	}
}

// TestFigure6SpanSink: the Figure 6 harness wires the same sink; a small
// partitioned write must record collective write spans on every rank.
func TestFigure6SpanSink(t *testing.T) {
	sink := new(span.Sink)
	_, err := RunFigure6(Fig6Options{
		Machine:    smallMachine(),
		Dims:       [3]int64{32, 32, 32},
		Procs:      []int{4},
		Partitions: []Partition{PartZ},
		Spans:      sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	spans, _ := sink.Snapshot()
	colls := 0
	for _, s := range spans {
		if s.Phase == span.CollWrite {
			colls++
		}
	}
	if colls == 0 {
		t.Fatalf("no %s spans in the Figure 6 merge (%d spans total)", span.CollWrite, len(spans))
	}
}
