package bench

import (
	"fmt"

	"pnetcdf/internal/core"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/mpiio"
	"pnetcdf/internal/nctype"
)

// Ablations quantify the design choices DESIGN.md §5 calls out. Each
// returns virtual-time measurements for the choice made by PnetCDF and its
// alternative, so "how much did this decision buy" is a number.

// AblationResult is one on/off comparison.
type AblationResult struct {
	Name     string
	Chosen   float64 // seconds with the design as built
	Baseline float64 // seconds with the alternative
}

// Speedup returns Baseline/Chosen.
func (a AblationResult) Speedup() float64 {
	if a.Chosen <= 0 {
		return 0
	}
	return a.Baseline / a.Chosen
}

// String formats the comparison.
func (a AblationResult) String() string {
	return fmt.Sprintf("%-28s chosen %8.4fs  alternative %8.4fs  speedup %5.2fx",
		a.Name, a.Chosen, a.Baseline, a.Speedup())
}

// AblationTwoPhase compares collective (two-phase) and independent writes of
// an X-partitioned array — the optimization PnetCDF inherits from MPI-IO.
func AblationTwoPhase(m MachineSpec, dims [3]int64, nprocs int) (AblationResult, error) {
	run := func(enable bool) (float64, error) {
		fsys := m.NewFS()
		info := mpi.NewInfo()
		if !enable {
			info.Set("romio_cb_write", "disable")
		}
		var makespan float64
		err := mpi.Run(nprocs, m.Net, func(c *mpi.Comm) error {
			d, err := core.Create(c, fsys, "ab.nc", nctype.Clobber, info)
			if err != nil {
				return err
			}
			z, _ := d.DefDim("Z", dims[0])
			y, _ := d.DefDim("Y", dims[1])
			x, _ := d.DefDim("X", dims[2])
			v, _ := d.DefVar("tt", nctype.Float, []int{z, y, x})
			if err := d.EndDef(); err != nil {
				return err
			}
			start, count := Decompose(PartX, dims, nprocs, c.Rank())
			buf := make([]float32, count[0]*count[1]*count[2])
			c.Proc().SetClock(0)
			fsys.ResetClock()
			c.Barrier()
			t0 := c.Clock()
			if err := d.PutVaraAll(v, start[:], count[:], buf); err != nil {
				return err
			}
			end := c.AllreduceF64([]float64{c.Clock()}, mpi.OpMax)[0]
			if c.Rank() == 0 {
				makespan = end - t0
			}
			return d.Close()
		})
		return makespan, err
	}
	on, err := run(true)
	if err != nil {
		return AblationResult{}, err
	}
	off, err := run(false)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{Name: "two-phase collective I/O", Chosen: on, Baseline: off}, nil
}

// AblationSieving compares data sieving against per-segment reads for an
// independent strided read.
func AblationSieving(m MachineSpec, dims [3]int64, nprocs int) (AblationResult, error) {
	run := func(enable bool) (float64, error) {
		fsys := m.NewFS()
		info := mpi.NewInfo().Set("romio_cb_read", "disable").Set("romio_cb_write", "disable")
		if !enable {
			info.Set("romio_ds_read", "disable")
		}
		var makespan float64
		err := mpi.Run(nprocs, m.Net, func(c *mpi.Comm) error {
			d, err := core.Create(c, fsys, "ds.nc", nctype.Clobber, info)
			if err != nil {
				return err
			}
			z, _ := d.DefDim("Z", dims[0])
			y, _ := d.DefDim("Y", dims[1])
			x, _ := d.DefDim("X", dims[2])
			v, _ := d.DefVar("tt", nctype.Float, []int{z, y, x})
			if err := d.EndDef(); err != nil {
				return err
			}
			start, count := Decompose(PartX, dims, nprocs, c.Rank())
			buf := make([]float32, count[0]*count[1]*count[2])
			if err := d.BeginIndepData(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				whole := make([]float32, dims[0]*dims[1]*dims[2])
				//nclint:allow=collsym -- inside BeginIndepData/EndIndepData: PutVara takes the independent path, no collective is reached
				if err := d.PutVara(v, []int64{0, 0, 0}, dims[:], whole); err != nil {
					return err
				}
			}
			if err := d.EndIndepData(); err != nil {
				return err
			}
			c.Proc().SetClock(0)
			fsys.ResetClock()
			c.Barrier()
			t0 := c.Clock()
			if err := d.BeginIndepData(); err != nil {
				return err
			}
			if err := d.GetVara(v, start[:], count[:], buf); err != nil {
				return err
			}
			if err := d.EndIndepData(); err != nil {
				return err
			}
			end := c.AllreduceF64([]float64{c.Clock()}, mpi.OpMax)[0]
			if c.Rank() == 0 {
				makespan = end - t0
			}
			return d.Close()
		})
		return makespan, err
	}
	on, err := run(true)
	if err != nil {
		return AblationResult{}, err
	}
	off, err := run(false)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{Name: "data sieving (indep. strided read)", Chosen: on, Baseline: off}, nil
}

// AblationHeaderStrategy compares PnetCDF's root-reads-then-broadcast header
// handling against every process reading the header from the file — the
// design decision of paper §4.2.1.
func AblationHeaderStrategy(m MachineSpec, nvars, nprocs int) (AblationResult, error) {
	fsys := m.NewFS()
	// Build a dataset with a sizable header.
	err := mpi.Run(1, m.Net, func(c *mpi.Comm) error {
		d, err := core.Create(c, fsys, "hdr.nc", nctype.Clobber, nil)
		if err != nil {
			return err
		}
		x, _ := d.DefDim("x", 16)
		for i := 0; i < nvars; i++ {
			if _, err := d.DefVar(fmt.Sprintf("variable_with_long_name_%04d", i), nctype.Double, []int{x}); err != nil {
				return err
			}
		}
		return d.Close()
	})
	if err != nil {
		return AblationResult{}, err
	}
	// Chosen: collective open (root read + broadcast).
	var chosen float64
	err = mpi.Run(nprocs, m.Net, func(c *mpi.Comm) error {
		c.Proc().SetClock(0)
		fsys.ResetClock()
		c.Barrier()
		t0 := c.Clock()
		d, err := core.Open(c, fsys, "hdr.nc", nctype.NoWrite, nil)
		if err != nil {
			return err
		}
		end := c.AllreduceF64([]float64{c.Clock()}, mpi.OpMax)[0]
		if c.Rank() == 0 {
			chosen = end - t0
		}
		return d.Close()
	})
	if err != nil {
		return AblationResult{}, err
	}
	// Alternative: every rank reads the header itself.
	var baseline float64
	err = mpi.Run(nprocs, m.Net, func(c *mpi.Comm) error {
		c.Proc().SetClock(0)
		fsys.ResetClock()
		c.Barrier()
		t0 := c.Clock()
		f, err := mpiio.Open(c, fsys, "hdr.nc", mpiio.ModeRdOnly, nil)
		if err != nil {
			return err
		}
		sz, _ := f.Size()
		buf := make([]byte, sz)
		if err := f.ReadRaw(buf, 0); err != nil {
			return err
		}
		end := c.AllreduceF64([]float64{c.Clock()}, mpi.OpMax)[0]
		if c.Rank() == 0 {
			baseline = end - t0
		}
		return f.Close()
	})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{Name: "header: root read + bcast", Chosen: chosen, Baseline: baseline}, nil
}

// AblationRecordBatch compares per-variable record writes against the
// nonblocking batched path (IPutVara + WaitAll) for many record variables —
// the record-access optimization of paper §4.2.2.
func AblationRecordBatch(m MachineSpec, nvars, nrecs, nprocs int, perRank int64) (AblationResult, error) {
	run := func(batch bool) (float64, error) {
		fsys := m.NewFS()
		var makespan float64
		err := mpi.Run(nprocs, m.Net, func(c *mpi.Comm) error {
			d, err := core.Create(c, fsys, "rec.nc", nctype.Clobber, nil)
			if err != nil {
				return err
			}
			tdim, _ := d.DefDim("t", 0)
			xdim, _ := d.DefDim("x", perRank*int64(nprocs))
			varids := make([]int, nvars)
			for i := range varids {
				varids[i], _ = d.DefVar(fmt.Sprintf("u%02d", i), nctype.Float, []int{tdim, xdim})
			}
			if err := d.EndDef(); err != nil {
				return err
			}
			buf := make([]float32, perRank)
			start := []int64{0, int64(c.Rank()) * perRank}
			count := []int64{1, perRank}
			c.Proc().SetClock(0)
			fsys.ResetClock()
			c.Barrier()
			t0 := c.Clock()
			for rec := 0; rec < nrecs; rec++ {
				start[0] = int64(rec)
				if batch {
					for _, v := range varids {
						if _, err := d.IPutVara(v, start, count, buf); err != nil {
							return err
						}
					}
					if err := d.WaitAll(); err != nil {
						return err
					}
				} else {
					for _, v := range varids {
						if err := d.PutVaraAll(v, start, count, buf); err != nil {
							return err
						}
					}
				}
			}
			end := c.AllreduceF64([]float64{c.Clock()}, mpi.OpMax)[0]
			if c.Rank() == 0 {
				makespan = end - t0
			}
			return d.Close()
		})
		return makespan, err
	}
	batched, err := run(true)
	if err != nil {
		return AblationResult{}, err
	}
	oneByOne, err := run(false)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{Name: "record batching (iput+waitall)", Chosen: batched, Baseline: oneByOne}, nil
}

// AblationLayout compares writing n small fixed variables through the linear
// netCDF layout against the dispersed h5sim layout (paper §4.3's layout
// argument), using the FLASH-style writers at matched volume.
func AblationLayout(m MachineSpec, nprocs int) (AblationResult, error) {
	opt := Fig7Options{
		Machine: m,
		File:    FlashPlotfile,
		Procs:   []int{nprocs},
	}
	opt.Config.NXB, opt.Config.NYB, opt.Config.NZB = 8, 8, 8
	opt.Config.NGuard = 4
	opt.Config.NVar = 24
	opt.Config.NPlotVar = 8
	opt.Config.BlocksPerProc = 16
	nc, _, err := runFlashOnce(opt, nprocs, false)
	if err != nil {
		return AblationResult{}, err
	}
	h5, _, err := runFlashOnce(opt, nprocs, true)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{Name: "linear layout vs dispersed", Chosen: nc.Seconds, Baseline: h5.Seconds}, nil
}
