package bench

import (
	"bytes"
	"testing"

	"pnetcdf/internal/flash"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/pfs"
	"pnetcdf/internal/span"
)

// TestFlashBalancedPartitionAcceptance is the acceptance check for
// balanced file domains: an 8-rank FLASH checkpoint under
// cb_partition=balanced must (a) write a file byte-identical to even mode
// — partitioning may never change semantics — and (b) spread the
// aggregator write byte-load to max/mean <= 1.3x, with the plan_domain
// spans recording a plan that execution actually followed.
func TestFlashBalancedPartitionAcceptance(t *testing.T) {
	cfg := flash.Default8()
	run := func(mode string) ([]byte, []span.Span) {
		t.Helper()
		fsys := pfs.New(pfs.DefaultConfig())
		sink := new(span.Sink)
		err := mpi.Run(8, mpi.DefaultNet(), func(c *mpi.Comm) error {
			proc := c.Proc()
			proc.SetSpans(span.NewRecorder(c.Rank(), proc.Clock))
			info := mpi.NewInfo().Set("cb_partition", mode)
			if _, err := flash.WriteCheckpointPnetCDF(c, fsys, "f.nc", cfg, info); err != nil {
				return err
			}
			merged, dropped := span.Gather(c, proc.Spans())
			if c.Rank() == 0 {
				sink.Replace(merged, dropped)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		pf, _, err := fsys.Open("f.nc", 0)
		if err != nil {
			t.Fatalf("mode %s: reopen: %v", mode, err)
		}
		img := make([]byte, pf.Size())
		if _, err := pf.ReadAt(0, img, 0); err != nil {
			t.Fatalf("mode %s: raw read: %v", mode, err)
		}
		spans, _ := sink.Snapshot()
		return img, spans
	}

	evenImg, evenSpans := run("even")
	balImg, balSpans := run("balanced")

	if !bytes.Equal(evenImg, balImg) {
		t.Fatalf("balanced checkpoint differs from even: %d vs %d bytes", len(balImg), len(evenImg))
	}

	evenLoad := PhaseByteImbalance(evenSpans)
	balLoad := PhaseByteImbalance(balSpans)
	if balLoad <= 0 {
		t.Fatal("balanced run recorded no aggregator write bytes")
	}
	if balLoad > 1.3 {
		t.Fatalf("balanced agg_write byte imbalance %.3fx, want <= 1.3x (even mode: %.3fx)",
			balLoad, evenLoad)
	}

	// The plan must be visible (plan_domain spans) and honest: per
	// aggregator, the bytes actually written match the planned load.
	pa := span.PlannedVsActual(balSpans)
	if len(pa) == 0 {
		t.Fatal("balanced run emitted no plan_domain spans")
	}
	for _, p := range pa {
		if p.Planned <= 0 {
			t.Fatalf("rank %d: nonpositive planned bytes %d", p.Rank, p.Planned)
		}
		if p.Actual != p.Planned {
			t.Fatalf("rank %d: planned %d bytes but wrote %d", p.Rank, p.Planned, p.Actual)
		}
	}
	if evenPA := span.PlannedVsActual(evenSpans); evenPA != nil {
		t.Fatalf("even mode must not emit plan_domain spans, got %d", len(evenPA))
	}
}

// PhaseByteImbalance is the agg_write byte-load spread (max/mean).
func PhaseByteImbalance(spans []span.Span) float64 {
	return span.PhaseLoad(spans, span.AggWrite).ByteImbalance()
}
