package span_test

import (
	"testing"

	"pnetcdf/internal/span"
)

// buildWorld fabricates a merged trace: per rank, colls collective-write
// spans each with rounds two-phase rounds; in each round the rank does a
// pack (fixed 1ms), an exchange (exch[rank][coll][round] seconds), and an
// agg_write (agg[rank][coll][round] seconds), then an agreement sync pads
// every rank's round span to the same end. Each rank's clock is skewed by
// rank*1e6 seconds to prove the analyses are duration-based.
func buildWorld(ranks, colls, rounds int, exch, agg func(rank, coll, round int) float64) []span.Span {
	var out []span.Span
	for rank := 0; rank < ranks; rank++ {
		clk := &manualClock{t: float64(rank) * 1e6}
		r := span.NewRecorder(rank, clk.now)
		for c := 0; c < colls; c++ {
			cw := r.Begin(span.CollWrite)
			for rd := 0; rd < rounds; rd++ {
				roundSpan := r.Begin(span.Round)
				roundSpan.SetRound(rd)
				p := r.Begin(span.Pack)
				clk.t += 0.001
				p.End()
				e := r.Begin(span.Exchange)
				clk.t += exch(rank, c, rd)
				e.End()
				a := r.Begin(span.AggWrite)
				clk.t += agg(rank, c, rd)
				a.End()
				// Agreement sync: every rank's round ends at the max work
				// time; emulate by padding the clock to a common width.
				clk.t += 0.5
				roundSpan.End()
			}
			cw.End()
		}
		out = append(out, r.Spans()...)
	}
	return out
}

func TestCriticalPathNamesBoundingRankAndPhase(t *testing.T) {
	// 3 ranks, 2 collectives, 2 rounds. Designed stragglers:
	//   coll 0 round 0: rank 2's agg_write (50ms vs 1ms)
	//   coll 0 round 1: rank 1's exchange  (80ms vs 2ms)
	//   coll 1 round 0: rank 0's agg_write (60ms)
	//   coll 1 round 1: rank 2's exchange  (90ms)
	exch := func(rank, c, rd int) float64 {
		if c == 0 && rd == 1 && rank == 1 {
			return 0.080
		}
		if c == 1 && rd == 1 && rank == 2 {
			return 0.090
		}
		return 0.002
	}
	agg := func(rank, c, rd int) float64 {
		if c == 0 && rd == 0 && rank == 2 {
			return 0.050
		}
		if c == 1 && rd == 0 && rank == 0 {
			return 0.060
		}
		return 0.001
	}
	spans := buildWorld(3, 2, 2, exch, agg)
	rcs := span.CriticalPath(spans)
	if len(rcs) != 4 {
		t.Fatalf("got %d round reports, want 4: %+v", len(rcs), rcs)
	}
	want := []struct {
		coll, round, rank int
		phase             string
	}{
		{0, 0, 2, span.AggWrite},
		{0, 1, 1, span.Exchange},
		{1, 0, 0, span.AggWrite},
		{1, 1, 2, span.Exchange},
	}
	for i, w := range want {
		rc := rcs[i]
		if rc.Coll != w.coll || rc.Round != w.round {
			t.Fatalf("report %d keyed (%d,%d), want (%d,%d)", i, rc.Coll, rc.Round, w.coll, w.round)
		}
		if rc.Rank != w.rank || rc.Phase != w.phase {
			t.Errorf("coll %d round %d bounded by rank %d phase %q, want rank %d phase %q",
				rc.Coll, rc.Round, rc.Rank, rc.Phase, w.rank, w.phase)
		}
		if rc.Ranks != 3 {
			t.Errorf("coll %d round %d Ranks = %d, want 3", rc.Coll, rc.Round, rc.Ranks)
		}
		if rc.Work <= rc.Min || rc.Spread() <= 1 {
			t.Errorf("coll %d round %d work=%v min=%v spread=%v: no straggler signal",
				rc.Coll, rc.Round, rc.Work, rc.Min, rc.Spread())
		}
	}
	counts := span.BoundCounts(rcs)
	if counts[2] != 2 || counts[1] != 1 || counts[0] != 1 {
		t.Fatalf("BoundCounts = %v", counts)
	}
}

func TestCriticalPathSingleRank(t *testing.T) {
	f := func(rank, c, rd int) float64 { return 0.01 }
	spans := buildWorld(1, 1, 3, f, f)
	rcs := span.CriticalPath(spans)
	if len(rcs) != 3 {
		t.Fatalf("got %d reports, want 3", len(rcs))
	}
	for _, rc := range rcs {
		if rc.Rank != 0 || rc.Ranks != 1 {
			t.Fatalf("single-rank report = %+v", rc)
		}
	}
}

func TestCriticalPathEmptyAndNoRounds(t *testing.T) {
	if rcs := span.CriticalPath(nil); len(rcs) != 0 {
		t.Fatalf("empty trace produced %d reports", len(rcs))
	}
	// Spans with no round phases at all (e.g. independent I/O only).
	r := span.NewRecorder(0, nil)
	r.Begin(span.NCPut).End()
	if rcs := span.CriticalPath(r.Spans()); len(rcs) != 0 {
		t.Fatalf("roundless trace produced %d reports", len(rcs))
	}
}

// TestCriticalPathUnevenRanks: a round recorded by only a subset of ranks
// is analyzed over the ranks present.
func TestCriticalPathUnevenRanks(t *testing.T) {
	f := func(rank, c, rd int) float64 { return 0.01 * float64(rank+1) }
	spans := buildWorld(2, 1, 1, f, f)
	// Drop a third rank in by hand with only a round span, no collective
	// parent and no children.
	spans = append(spans, span.Span{
		ID: 999, Rank: 7, Phase: span.Round, Round: 0, Start: 0, End: 0.2,
	})
	rcs := span.CriticalPath(spans)
	// Rank 7's orphan round groups separately (no coll parent → coll -1).
	if len(rcs) != 2 {
		t.Fatalf("got %d reports, want 2: %+v", len(rcs), rcs)
	}
	if rcs[0].Coll != -1 || rcs[0].Rank != 7 || rcs[0].Ranks != 1 {
		t.Fatalf("orphan report = %+v", rcs[0])
	}
	if rcs[1].Ranks != 2 || rcs[1].Rank != 1 {
		t.Fatalf("main report = %+v", rcs[1])
	}
}

// TestCriticalPathPipelinedOverlap: the pipelined collective path records
// aggregator I/O as round-tagged leaves directly under the coll span whose
// intervals overlap the NEXT round's span (the round span itself closes at
// the end of the frontend exchange). The analysis must attribute that I/O
// to its own round and must not charge the overlapped stretch twice: the
// per-rank round works have to sum to the collective's wall time, not more.
func TestCriticalPathPipelinedOverlap(t *testing.T) {
	clk := &manualClock{}
	r := span.NewRecorder(0, clk.now)
	cw := r.Begin(span.CollWrite)
	// Round 0 frontend [0,2]: pack [0,1], exchange [1,2].
	rs0 := r.Begin(span.Round)
	rs0.SetRound(0)
	p := r.Begin(span.Pack)
	clk.t = 1
	p.End()
	e := r.Begin(span.Exchange)
	clk.t = 2
	e.End()
	rs0.End()
	// Round 1 frontend [2,4] while round 0's write is in flight.
	rs1 := r.Begin(span.Round)
	rs1.SetRound(1)
	p = r.Begin(span.Pack)
	clk.t = 3
	p.End()
	e = r.Begin(span.Exchange)
	clk.t = 4
	e.End()
	rs1.End()
	// Wait on round 0's write: issued at t=2, completed at t=5 — its
	// interval covers round 1's entire frontend. Recorded as a closed
	// round-tagged leaf under the still-open coll span, like the pipelined
	// write loop does.
	clk.t = 5
	r.Record(span.AggWrite, 0, 2, 5, 1024)
	// Drain: round 1's write runs serially [5,7].
	clk.t = 7
	r.Record(span.AggWrite, 1, 5, 7, 1024)
	cw.End()

	rcs := span.CriticalPath(r.Spans())
	if len(rcs) != 2 {
		t.Fatalf("got %d reports, want 2: %+v", len(rcs), rcs)
	}
	// Round 0 is charged [0,5]: frontend plus its overlapped write.
	if rcs[0].Round != 0 || rcs[0].Phase != span.AggWrite || rcs[0].Work != 5 {
		t.Errorf("round 0 = %+v, want work 5 bounded by agg_write", rcs[0])
	}
	// Round 1 is charged only [5,7]: the cursor clips out [2,5], already
	// attributed to round 0. Naive attribution (round-span start to last
	// span end) would report 5 here and double-count the overlap.
	if rcs[1].Round != 1 || rcs[1].Phase != span.AggWrite || rcs[1].Work != 2 {
		t.Errorf("round 1 = %+v, want work 2 bounded by agg_write", rcs[1])
	}
	if total := rcs[0].Work + rcs[1].Work; total != 7 {
		t.Errorf("round works sum to %v, want the coll wall time 7 (no double-counting)", total)
	}
}

func TestPhaseLoadAndHistogram(t *testing.T) {
	f := func(rank, c, rd int) float64 { return 0.01 }
	agg := func(rank, c, rd int) float64 { return 0.010 * float64(rank+1) }
	spans := buildWorld(4, 1, 2, f, agg)
	load := span.PhaseLoad(spans, span.AggWrite)
	if len(load.PerRank) != 4 || load.MaxRank != 3 {
		t.Fatalf("load = %+v", load)
	}
	// rank r does 2 rounds × 10ms(r+1): 20,40,60,80ms; mean 50ms; max/mean 1.6.
	if ib := load.Imbalance(); ib < 1.59 || ib > 1.61 {
		t.Fatalf("Imbalance() = %v, want 1.6", ib)
	}
	counts, labels := load.Histogram(3)
	if len(counts) != 3 || len(labels) != 3 {
		t.Fatalf("histogram = %v / %v", counts, labels)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 4 {
		t.Fatalf("histogram counted %d ranks, want 4", total)
	}

	loads := span.AllLoads(spans)
	if len(loads) == 0 || loads[0].Phase != span.AggWrite {
		t.Fatalf("AllLoads most-imbalanced = %+v", loads[:1])
	}
	// Uniform phase: histogram of identical values collapses to one bucket.
	// (Built without clock skew so the durations are bit-identical.)
	uniform := []span.Span{
		{ID: 1, Rank: 0, Phase: span.Pack, Start: 0, End: 1},
		{ID: 1, Rank: 1, Phase: span.Pack, Start: 5, End: 6},
	}
	packLoad := span.PhaseLoad(uniform, span.Pack)
	counts, _ = packLoad.Histogram(3)
	if len(counts) != 1 || counts[0] != 2 {
		t.Fatalf("uniform histogram = %v", counts)
	}
}
