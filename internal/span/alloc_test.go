package span_test

import (
	"testing"

	"pnetcdf/internal/span"
)

// TestSpanDisabledZeroAlloc pins the disabled-span path at 0 allocs/op:
// a nil *Recorder (the production state when no harness enabled tracing)
// must make the full Begin/SetRound/SetBytes/End/Record surface free.
// This is the contract that lets the instrumentation live on the hot
// collective path unconditionally.
func TestSpanDisabledZeroAlloc(t *testing.T) {
	var r *span.Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		a := r.Begin(span.CollWrite)
		b := r.Begin(span.Round)
		b.SetRound(3)
		b.SetBytes(1 << 20)
		b.AddBytes(4096)
		r.Record(span.PFSWrite, 3, 0.1, 0.2, 4096)
		b.End()
		a.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkSpanDisabled measures the raw overhead of the disabled path.
func BenchmarkSpanDisabled(b *testing.B) {
	var r *span.Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := r.Begin(span.CollWrite)
		a.SetBytes(int64(i))
		a.End()
	}
}

// BenchmarkSpanEnabled measures the enabled-path cost per Begin/End pair.
func BenchmarkSpanEnabled(b *testing.B) {
	r := span.NewRecorder(0, nil)
	r.SetCap(1 << 30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := r.Begin(span.Round)
		a.SetBytes(int64(i))
		a.End()
	}
}
