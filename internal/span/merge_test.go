package span_test

import (
	"sync"
	"testing"

	"pnetcdf/internal/mpi"
	"pnetcdf/internal/span"
)

// gatherWorld runs fn on every rank of an n-rank world and returns what
// rank 0's span.Gather produced.
func gatherWorld(t *testing.T, n int, fn func(c *mpi.Comm) *span.Recorder) ([]span.Span, int64) {
	t.Helper()
	var (
		mu      sync.Mutex
		merged  []span.Span
		dropped int64
		got     bool
	)
	err := mpi.Run(n, mpi.DefaultNet(), func(c *mpi.Comm) error {
		r := fn(c)
		spans, d := span.Gather(c, r)
		if c.Rank() == 0 {
			mu.Lock()
			merged, dropped, got = spans, d, true
			mu.Unlock()
		} else if spans != nil || d != 0 {
			t.Errorf("rank %d: Gather returned non-nil result", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("rank 0 never produced a merge")
	}
	return merged, dropped
}

// TestGatherSkewedClocks: each rank's clock starts at a large
// rank-dependent offset (simulating unsynchronized clocks). The merge must
// preserve each rank's local timestamps, and duration-based analysis must
// be unaffected by the skew.
func TestGatherSkewedClocks(t *testing.T) {
	const n = 4
	merged, dropped := gatherWorld(t, n, func(c *mpi.Comm) *span.Recorder {
		skew := float64(c.Rank()) * 1e6 // a rank-dependent epoch
		clk := &manualClock{t: skew}
		r := span.NewRecorder(c.Rank(), clk.now)
		a := r.Begin(span.AggWrite)
		clk.t = skew + 0.5 + float64(c.Rank())*0.1 // duration 0.5 + 0.1*rank
		a.End()
		return r
	})
	if dropped != 0 {
		t.Fatalf("dropped = %d", dropped)
	}
	if len(merged) != n {
		t.Fatalf("got %d spans, want %d", len(merged), n)
	}
	for i, s := range merged {
		if s.Rank != i {
			t.Fatalf("span %d has rank %d (want sorted by rank)", i, s.Rank)
		}
		wantStart := float64(i) * 1e6
		if s.Start != wantStart {
			t.Fatalf("rank %d start = %v, want %v (skew must be preserved)", i, s.Start, wantStart)
		}
		wantDur := 0.5 + float64(i)*0.1
		if d := s.Dur(); d < wantDur-1e-9 || d > wantDur+1e-9 {
			t.Fatalf("rank %d dur = %v, want %v", i, d, wantDur)
		}
	}
	// Duration-based straggler attribution sees through the skew: rank n-1
	// has the longest agg_write even though rank 0's timestamps are earliest.
	load := span.PhaseLoad(merged, span.AggWrite)
	if load.MaxRank != n-1 {
		t.Fatalf("MaxRank = %d, want %d", load.MaxRank, n-1)
	}
}

// TestGatherUnevenCounts: ranks contribute wildly different span counts
// (including one rank with none).
func TestGatherUnevenCounts(t *testing.T) {
	const n = 4
	merged, _ := gatherWorld(t, n, func(c *mpi.Comm) *span.Recorder {
		r := span.NewRecorder(c.Rank(), nil)
		for i := 0; i < c.Rank()*10; i++ { // rank 0 records nothing
			r.Record("op", -1, float64(i), float64(i)+1, 1)
		}
		return r
	})
	want := 0 + 10 + 20 + 30
	if len(merged) != want {
		t.Fatalf("got %d spans, want %d", len(merged), want)
	}
	counts := make(map[int]int)
	for _, s := range merged {
		counts[s.Rank]++
	}
	for rank := 0; rank < n; rank++ {
		if counts[rank] != rank*10 {
			t.Fatalf("rank %d: %d spans, want %d", rank, counts[rank], rank*10)
		}
	}
}

// TestGatherSingleRank: a world of one.
func TestGatherSingleRank(t *testing.T) {
	merged, dropped := gatherWorld(t, 1, func(c *mpi.Comm) *span.Recorder {
		r := span.NewRecorder(0, nil)
		a := r.Begin(span.CollWrite)
		r.Begin(span.Round).End()
		a.End()
		return r
	})
	if len(merged) != 2 || dropped != 0 {
		t.Fatalf("got %d spans / %d dropped", len(merged), dropped)
	}
	if merged[0].Phase != span.CollWrite || merged[1].Parent != merged[0].ID {
		t.Fatalf("hierarchy lost in single-rank merge: %+v", merged)
	}
}

// TestGatherEmptyTraces: every rank has an empty (or nil) recorder.
func TestGatherEmptyTraces(t *testing.T) {
	merged, dropped := gatherWorld(t, 3, func(c *mpi.Comm) *span.Recorder {
		if c.Rank() == 1 {
			return nil // disabled rank
		}
		return span.NewRecorder(c.Rank(), nil)
	})
	if len(merged) != 0 || dropped != 0 {
		t.Fatalf("got %d spans / %d dropped from empty traces", len(merged), dropped)
	}
}

// TestGatherDroppedSummed: per-rank drop counts sum across the world.
func TestGatherDroppedSummed(t *testing.T) {
	const n = 3
	_, dropped := gatherWorld(t, n, func(c *mpi.Comm) *span.Recorder {
		r := span.NewRecorder(c.Rank(), nil)
		r.SetCap(1)
		for i := 0; i < 3; i++ { // 1 recorded, 2 dropped per rank
			r.Begin("op").End()
		}
		return r
	})
	if dropped != int64(2*n) {
		t.Fatalf("dropped = %d, want %d", dropped, 2*n)
	}
}

// TestSinkReplaceSnapshot covers the bench-harness container.
func TestSinkReplaceSnapshot(t *testing.T) {
	var sink span.Sink
	spans, d := sink.Snapshot()
	if len(spans) != 0 || d != 0 {
		t.Fatal("fresh sink not empty")
	}
	sink.Replace([]span.Span{{ID: 1, Phase: "x"}}, 5)
	spans, d = sink.Snapshot()
	if len(spans) != 1 || spans[0].Phase != "x" || d != 5 {
		t.Fatalf("snapshot = %+v / %d", spans, d)
	}
	var nilSink *span.Sink
	nilSink.Replace(nil, 0)
	if s, _ := nilSink.Snapshot(); s != nil {
		t.Fatal("nil sink leaked")
	}
}
