// External test package so merge_test.go can drive real mpi ranks
// (mpi imports span; the reverse would be a cycle).
package span_test

import (
	"testing"

	"pnetcdf/internal/span"
)

// manualClock is an adjustable test clock.
type manualClock struct{ t float64 }

func (c *manualClock) now() float64 { return c.t }

func TestSpanNesting(t *testing.T) {
	clk := &manualClock{}
	r := span.NewRecorder(3, clk.now)

	root := r.Begin(span.CollWrite)
	clk.t = 1
	child := r.Begin(span.Round)
	child.SetRound(0)
	child.SetBytes(100)
	child.AddBytes(28)
	clk.t = 2
	child.End()
	clk.t = 5
	root.End()

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	rootS, childS := spans[0], spans[1]
	if rootS.Phase != span.CollWrite || rootS.Parent != 0 {
		t.Fatalf("root = %+v", rootS)
	}
	if childS.Phase != span.Round || childS.Parent != rootS.ID {
		t.Fatalf("child = %+v (root ID %d)", childS, rootS.ID)
	}
	if childS.Round != 0 || childS.Bytes != 128 {
		t.Fatalf("child round/bytes = %d/%d", childS.Round, childS.Bytes)
	}
	if childS.Start != 1 || childS.End != 2 || rootS.Start != 0 || rootS.End != 5 {
		t.Fatalf("times: root [%v,%v] child [%v,%v]", rootS.Start, rootS.End, childS.Start, childS.End)
	}
	if rootS.Rank != 3 || childS.Rank != 3 {
		t.Fatalf("ranks: %d, %d", rootS.Rank, childS.Rank)
	}
	if r.Open() != 0 {
		t.Fatalf("Open() = %d after closing all", r.Open())
	}
}

// TestSpanEndClosesDescendants: ending an outer span auto-closes any open
// descendants at the same instant — the property that makes a single
// function-level defer safe on error paths.
func TestSpanEndClosesDescendants(t *testing.T) {
	clk := &manualClock{}
	r := span.NewRecorder(0, clk.now)

	outer := r.Begin("outer")
	inner := r.Begin("inner")
	innermost := r.Begin("innermost")
	_ = inner
	_ = innermost
	clk.t = 7
	outer.End() // inner + innermost still open

	if r.Open() != 0 {
		t.Fatalf("Open() = %d, want 0", r.Open())
	}
	for _, s := range r.Spans() {
		if s.End != 7 {
			t.Fatalf("span %q end = %v, want 7", s.Phase, s.End)
		}
	}
	// Idempotent: ending the already-auto-closed children must not disturb
	// anything (and must not panic).
	inner.End()
	innermost.End()
	outer.End()
	if n := r.Len(); n != 3 {
		t.Fatalf("Len() = %d after duplicate Ends, want 3", n)
	}
}

func TestSpanSampling(t *testing.T) {
	r := span.NewRecorder(0, nil)
	r.SetSampleEvery(3)
	for i := 0; i < 9; i++ {
		root := r.Begin("op")
		child := r.Begin("phase")
		child.End()
		root.End()
	}
	// Every 3rd tree recorded: trees 3, 6, 9 → 3 trees × 2 spans.
	if n := r.Len(); n != 6 {
		t.Fatalf("Len() = %d, want 6", n)
	}
	if r.Open() != 0 {
		t.Fatalf("Open() = %d", r.Open())
	}
	// Suppressed trees must not count as drops: sampling is intentional.
	if d := r.Dropped(); d != 0 {
		t.Fatalf("Dropped() = %d, want 0", d)
	}
}

func TestSpanCapAndDropped(t *testing.T) {
	r := span.NewRecorder(0, nil)
	r.SetCap(2)
	for i := 0; i < 5; i++ {
		a := r.Begin("op")
		a.End()
	}
	r.Record("leaf", -1, 0, 1, 0)
	if n := r.Len(); n != 2 {
		t.Fatalf("Len() = %d, want 2", n)
	}
	if d := r.Dropped(); d != 4 {
		t.Fatalf("Dropped() = %d, want 4", d)
	}
	if r.Open() != 0 {
		t.Fatalf("Open() = %d", r.Open())
	}
}

func TestSpanRecordExplicit(t *testing.T) {
	clk := &manualClock{}
	r := span.NewRecorder(1, clk.now)
	parent := r.Begin(span.CollWrite)
	r.Record(span.PFSWrite, 2, 0.5, 0.9, 4096)
	parent.End()

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	leaf := spans[1]
	if leaf.Phase != span.PFSWrite || leaf.Parent != spans[0].ID {
		t.Fatalf("leaf = %+v", leaf)
	}
	if leaf.Round != 2 || leaf.Bytes != 4096 || leaf.Start != 0.5 || leaf.End != 0.9 {
		t.Fatalf("leaf fields = %+v", leaf)
	}
}

func TestSpanOpenClampedInSnapshot(t *testing.T) {
	clk := &manualClock{t: 4}
	r := span.NewRecorder(0, clk.now)
	a := r.Begin("op")
	spans := r.Spans()
	if len(spans) != 1 || spans[0].End != spans[0].Start {
		t.Fatalf("open span snapshot = %+v", spans)
	}
	if r.Open() != 1 {
		t.Fatalf("Open() = %d, want 1", r.Open())
	}
	a.End()
}

func TestSpanReset(t *testing.T) {
	r := span.NewRecorder(0, nil)
	r.SetCap(1)
	r.Begin("a").End()
	r.Begin("b").End() // dropped
	if r.Dropped() != 1 {
		t.Fatalf("Dropped() = %d", r.Dropped())
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 || r.Open() != 0 {
		t.Fatalf("after Reset: len=%d dropped=%d open=%d", r.Len(), r.Dropped(), r.Open())
	}
	r.Begin("c").End()
	if r.Len() != 1 {
		t.Fatalf("Len() = %d after reset+begin", r.Len())
	}
}

// TestSpanNilSafety: every entry point must no-op on a nil recorder and on
// zero-value handles.
func TestSpanNilSafety(t *testing.T) {
	var r *span.Recorder
	a := r.Begin("x")
	a.SetRound(1)
	a.SetBytes(2)
	a.AddBytes(3)
	a.End()
	r.Record("y", 0, 0, 1, 2)
	r.SetCap(10)
	r.SetSampleEvery(2)
	r.Reset()
	if r.Len() != 0 || r.Open() != 0 || r.Dropped() != 0 || r.Spans() != nil {
		t.Fatal("nil recorder leaked state")
	}
	var zero span.Active
	zero.End()
	zero.SetBytes(1)
}
