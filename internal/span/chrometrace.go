package span

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event JSON (the chrome://tracing / Perfetto "JSON object
// format"): a traceEvents array of complete ("ph":"X") events with
// microsecond timestamps, pid/tid carrying the rank, and span identity in
// args so ReadChromeTrace can reconstruct the hierarchy. The top-level
// pnetcdfDropped field carries the cross-rank drop count — nonzero means
// the trace is incomplete (satellite: never read a truncated trace as
// complete).

type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	TS   float64     `json:"ts"`
	Dur  *float64    `json:"dur,omitempty"` // set on every X event (0 must still serialize); nil for M events
	PID  int         `json:"pid"`
	TID  int         `json:"tid"`
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	ID     int64  `json:"id,omitempty"`
	Parent int64  `json:"parent,omitempty"`
	Round  *int64 `json:"round,omitempty"`
	Bytes  int64  `json:"bytes,omitempty"`
	Name   string `json:"name,omitempty"` // metadata events only
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Dropped         int64         `json:"pnetcdfDropped"`
}

// WriteChromeTrace writes merged spans as Chrome trace-event JSON,
// loadable in Perfetto / chrome://tracing. One process_name metadata event
// per rank labels the timeline rows.
func WriteChromeTrace(w io.Writer, spans []Span, dropped int64) error {
	cf := chromeFile{DisplayTimeUnit: "ms", Dropped: dropped}
	ranks := make(map[int]bool)
	for i := range spans {
		s := &spans[i]
		ranks[s.Rank] = true
		args := &chromeArgs{ID: s.ID, Parent: s.Parent, Bytes: s.Bytes}
		if s.Round >= 0 {
			r := s.Round
			args.Round = &r
		}
		dur := s.Dur() * 1e6
		cf.TraceEvents = append(cf.TraceEvents, chromeEvent{
			Name: s.Phase, Cat: "pnetcdf", Ph: "X",
			TS: s.Start * 1e6, Dur: &dur,
			PID: s.Rank, TID: s.Rank, Args: args,
		})
	}
	rankList := make([]int, 0, len(ranks))
	for r := range ranks {
		rankList = append(rankList, r)
	}
	sort.Ints(rankList)
	for _, r := range rankList {
		cf.TraceEvents = append(cf.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: r, TID: r,
			Args: &chromeArgs{Name: fmt.Sprintf("rank %d", r)},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&cf)
}

// ReadChromeTrace parses a trace written by WriteChromeTrace (metadata
// events are skipped) and returns the spans plus the recorded drop count.
func ReadChromeTrace(r io.Reader) ([]Span, int64, error) {
	var cf chromeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&cf); err != nil {
		return nil, 0, fmt.Errorf("span: parse chrome trace: %w", err)
	}
	var spans []Span
	for _, ev := range cf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		var dur float64
		if ev.Dur != nil {
			dur = *ev.Dur
		}
		s := Span{
			Phase: ev.Name, Rank: ev.PID, Round: -1,
			Start: ev.TS / 1e6, End: (ev.TS + dur) / 1e6,
		}
		if ev.Args != nil {
			s.ID, s.Parent, s.Bytes = ev.Args.ID, ev.Args.Parent, ev.Args.Bytes
			if ev.Args.Round != nil {
				s.Round = *ev.Args.Round
			}
		}
		spans = append(spans, s)
	}
	return spans, cf.Dropped, nil
}
