package span_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"pnetcdf/internal/span"
)

func sampleSpans() []span.Span {
	return []span.Span{
		{ID: 1, Parent: 0, Rank: 0, Phase: span.CollWrite, Round: -1, Bytes: 1 << 20, Start: 0, End: 0.25},
		{ID: 2, Parent: 1, Rank: 0, Phase: span.Round, Round: 0, Bytes: 65536, Start: 0.01, End: 0.12},
		{ID: 1, Parent: 0, Rank: 1, Phase: span.CollWrite, Round: -1, Bytes: 1 << 20, Start: 0.001, End: 0.26},
		// Zero duration: CPU work is free in virtual time, so these are
		// common; the X event must still carry an explicit dur.
		{ID: 3, Parent: 2, Rank: 0, Phase: span.Encode, Round: -1, Bytes: 16, Start: 0.01, End: 0.01},
	}
}

// TestChromeTraceValid verifies the emitted file is valid Chrome
// trace-event JSON as Perfetto expects it: a JSON object with a
// traceEvents array whose entries carry name/ph/ts/pid/tid, complete
// events use ph "X" with a dur, and timestamps are microseconds.
func TestChromeTraceValid(t *testing.T) {
	var buf bytes.Buffer
	if err := span.WriteChromeTrace(&buf, sampleSpans(), 0); err != nil {
		t.Fatal(err)
	}
	var generic struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Display     string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &generic); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if generic.Display != "ms" {
		t.Fatalf("displayTimeUnit = %q", generic.Display)
	}
	var complete, meta int
	for _, ev := range generic.TraceEvents {
		for _, k := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event missing %q: %v", k, ev)
			}
		}
		switch ev["ph"] {
		case "X":
			complete++
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	if complete != 4 {
		t.Fatalf("complete events = %d, want 4", complete)
	}
	if meta != 2 { // one process_name per rank
		t.Fatalf("metadata events = %d, want 2", meta)
	}
	// Microseconds: the first span ends at 0.25s = 250000µs.
	if !strings.Contains(buf.String(), "250000") {
		t.Fatalf("timestamps not in microseconds:\n%s", buf.String())
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	in := sampleSpans()
	var buf bytes.Buffer
	if err := span.WriteChromeTrace(&buf, in, 7); err != nil {
		t.Fatal(err)
	}
	out, dropped, err := span.ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 7 {
		t.Fatalf("dropped = %d, want 7", dropped)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.ID != b.ID || a.Parent != b.Parent || a.Rank != b.Rank ||
			a.Phase != b.Phase || a.Round != b.Round || a.Bytes != b.Bytes {
			t.Fatalf("span %d fields changed: %+v -> %+v", i, a, b)
		}
		if math.Abs(a.Start-b.Start) > 1e-9 || math.Abs(a.End-b.End) > 1e-9 {
			t.Fatalf("span %d times drifted: [%v,%v] -> [%v,%v]", i, a.Start, a.End, b.Start, b.End)
		}
	}
}

func TestChromeTraceReadRejectsGarbage(t *testing.T) {
	if _, _, err := span.ReadChromeTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage parsed without error")
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := span.WriteChromeTrace(&buf, nil, 0); err != nil {
		t.Fatal(err)
	}
	out, dropped, err := span.ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || dropped != 0 {
		t.Fatalf("empty trace round-tripped to %d spans / %d dropped", len(out), dropped)
	}
}
