// Package span provides hierarchical, nestable timing spans for the
// collective I/O pipeline: every phase of a collective write — view resolve,
// offset exchange, each two-phase round (pack, exchange, aggregator
// WriteVec), header commit — records a span carrying its rank, phase tag,
// round number, byte count, and start/end times from an injectable clock
// (the simulator's virtual clock in this repo).
//
// The design follows the repo's nil-safe observability convention
// (DESIGN.md §11): layers hold a *Recorder that is nil unless a harness
// enables tracing, every method no-ops on a nil receiver, and the disabled
// path performs zero allocations (pinned by TestSpanDisabledZeroAlloc).
// Begin returns an Active value handle (never a pointer), so instrumented
// code costs nothing beyond a nil check when spans are off.
//
// Spans gather to rank 0 (merge.go), feed per-round critical-path and
// load-imbalance analysis (critical.go), and export as Chrome trace-event
// JSON loadable in Perfetto (chrometrace.go).
package span

import "sync"

// Phase tags used by the instrumented pipeline. Free-form strings are
// allowed; these constants keep core/mpiio/mpitype/pfs and the nctrace
// analyses in agreement.
const (
	NCPut        = "nc_put"        // core: one put_var* call
	NCGet        = "nc_get"        // core: one get_var* call
	Encode       = "encode"        // core: external encode/decode of user data
	ViewResolve  = "view_resolve"  // core: subarray datatype build + SetView
	HeaderCommit = "header_commit" // core: crash-consistent header commit
	CollWrite    = "coll_write"    // mpiio: WriteAtAll
	CollRead     = "coll_read"     // mpiio: ReadAtAll
	Flatten      = "flatten"       // mpitype: view range -> file segments
	Plan         = "plan"          // mpiio: offset exchange / file-domain plan
	PlanDomain   = "plan_domain"   // mpiio: one balanced file domain (Bytes = planned load)
	Round        = "round"         // mpiio: one two-phase round
	Pack         = "pack"          // mpiio: intersect + encode contributions
	Exchange     = "exchange"      // mpiio: sparse rank<->aggregator exchange
	AggWrite     = "agg_write"     // mpiio: aggregator WriteVec round I/O
	AggRead      = "agg_read"      // mpiio: aggregator ReadV round I/O
	ReplyXchg    = "reply_xchg"    // mpiio: read-reply exchange
	Scatter      = "scatter"       // mpiio: scatter replies into user buffer
	PFSWrite     = "pfs_write"     // pfs: one WriteVec/WriteAt attempt
	PFSRead      = "pfs_read"      // pfs: one ReadVec/ReadAt attempt
	FTDetect     = "ft_detect"     // mpi: rank-failure detection (Round = generation)
	FTShrink     = "ft_shrink"     // mpi: survivor communicator built (Round = generation)
	FTFailover   = "ft_failover"   // mpiio: failover replay over the shrunken comm
)

// Span is one closed interval of work on one rank. IDs are unique per rank;
// (Rank, ID) is globally unique after a cross-rank merge. Parent is the ID
// of the enclosing span on the same rank, 0 for roots. Round is the
// two-phase round index, -1 when not applicable. Times are seconds on the
// recording rank's clock — comparable within a rank, not across ranks when
// clocks are skewed (the analyses in critical.go use durations only).
type Span struct {
	ID     int64
	Parent int64
	Rank   int
	Phase  string
	Round  int64
	Bytes  int64
	Start  float64
	End    float64
}

// Dur returns the span's duration in seconds (never negative).
func (s Span) Dur() float64 {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// openEnd marks a span whose End has not been recorded yet.
const openEnd = -1

// suppressedIdx marks an Active handle inside an unsampled or overflowed
// subtree: End must unwind the suppression depth but records nothing.
const suppressedIdx = -2

// DefaultCap bounds a recorder's span buffer; further spans are counted in
// Dropped() rather than recorded, so a runaway trace degrades loudly instead
// of consuming unbounded memory.
const DefaultCap = 1 << 18

// Recorder collects spans for one rank. The zero value is not usable; use
// NewRecorder. A nil *Recorder is the disabled state: Begin/Record and the
// Active methods all no-op without allocating.
type Recorder struct {
	mu    sync.Mutex
	clock func() float64
	rank  int

	spans []Span
	stack []int32 // indices into spans of currently-open spans, root first
	next  int64   // next span ID

	cap     int
	dropped int64

	// Sampling: when sampleEvery > 1, only every sampleEvery-th root span
	// tree is recorded; the others are suppressed wholesale (suppress counts
	// the nesting depth inside a suppressed tree).
	sampleEvery int64
	tick        int64
	suppress    int
}

// NewRecorder returns a recorder for rank whose spans are timestamped by
// clock (the simulator's virtual clock; nil means a constant zero clock,
// useful in tests that only care about structure).
func NewRecorder(rank int, clock func() float64) *Recorder {
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	return &Recorder{clock: clock, rank: rank, cap: DefaultCap, sampleEvery: 1, next: 1}
}

// SetCap bounds the number of recorded spans (minimum 1); spans beyond the
// cap are dropped and counted.
func (r *Recorder) SetCap(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n < 1 {
		n = 1
	}
	r.cap = n
}

// SetSampleEvery records only every n-th root span tree (n <= 1 records
// all). Child spans follow their root's fate, so sampled trees are complete.
func (r *Recorder) SetSampleEvery(n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n < 1 {
		n = 1
	}
	r.sampleEvery = n
}

// Active is a handle to a span opened by Begin. The zero value (and any
// handle from a nil Recorder) is inert: all methods no-op. Copying is fine;
// End is idempotent.
type Active struct {
	r   *Recorder
	idx int32
}

// Begin opens a span tagged phase, nested under the innermost open span.
// Returns an inert handle when the recorder is nil, the tree is unsampled,
// or the buffer is full.
func (r *Recorder) Begin(phase string) Active {
	if r == nil {
		return Active{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.suppress > 0 {
		r.suppress++
		return Active{r: r, idx: suppressedIdx}
	}
	if len(r.stack) == 0 && r.sampleEvery > 1 {
		r.tick++
		if r.tick%r.sampleEvery != 0 {
			r.suppress = 1
			return Active{r: r, idx: suppressedIdx}
		}
	}
	if len(r.spans) >= r.cap {
		r.dropped++
		r.suppress = 1
		return Active{r: r, idx: suppressedIdx}
	}
	var parent int64
	if n := len(r.stack); n > 0 {
		parent = r.spans[r.stack[n-1]].ID
	}
	id := r.next
	r.next++
	idx := int32(len(r.spans))
	r.spans = append(r.spans, Span{
		ID: id, Parent: parent, Rank: r.rank, Phase: phase,
		Round: -1, Start: r.clock(), End: openEnd,
	})
	r.stack = append(r.stack, idx)
	return Active{r: r, idx: idx}
}

// End closes the span at the recorder's current clock. Any descendants
// still open are closed at the same instant, so a function-level
// `defer sp.End()` guarantees no dangling spans on error paths. End is
// idempotent: closing an already-closed span is a no-op.
func (a Active) End() {
	if a.r == nil {
		return
	}
	r := a.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if a.idx == suppressedIdx {
		if r.suppress > 0 {
			r.suppress--
		}
		return
	}
	for i := len(r.stack) - 1; i >= 0; i-- {
		if r.stack[i] != a.idx {
			continue
		}
		now := r.clock()
		for j := len(r.stack) - 1; j >= i; j-- {
			s := &r.spans[r.stack[j]]
			s.End = now
			if s.End < s.Start {
				s.End = s.Start
			}
		}
		r.stack = r.stack[:i]
		return
	}
}

// SetRound tags the span with a two-phase round index.
func (a Active) SetRound(round int) {
	if a.r == nil || a.idx < 0 {
		return
	}
	a.r.mu.Lock()
	a.r.spans[a.idx].Round = int64(round)
	a.r.mu.Unlock()
}

// SetBytes sets the span's byte (or unit) count.
func (a Active) SetBytes(n int64) {
	if a.r == nil || a.idx < 0 {
		return
	}
	a.r.mu.Lock()
	a.r.spans[a.idx].Bytes = n
	a.r.mu.Unlock()
}

// AddBytes accumulates into the span's byte count.
func (a Active) AddBytes(n int64) {
	if a.r == nil || a.idx < 0 {
		return
	}
	a.r.mu.Lock()
	a.r.spans[a.idx].Bytes += n
	a.r.mu.Unlock()
}

// Record appends an already-closed leaf span with explicit times, nested
// under the innermost open span. The pfs layer uses it: each I/O attempt
// knows its own start and completion times, and failed attempts that a
// retry repeats show up as separate spans.
func (r *Recorder) Record(phase string, round int, start, end float64, bytes int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.suppress > 0 {
		return
	}
	if len(r.spans) >= r.cap {
		r.dropped++
		return
	}
	var parent int64
	if n := len(r.stack); n > 0 {
		parent = r.spans[r.stack[n-1]].ID
	}
	if end < start {
		end = start
	}
	id := r.next
	r.next++
	r.spans = append(r.spans, Span{
		ID: id, Parent: parent, Rank: r.rank, Phase: phase,
		Round: int64(round), Bytes: bytes, Start: start, End: end,
	})
}

// Open returns the number of spans begun but not yet ended — zero after a
// well-behaved run, even one that took error paths (see the fault tests).
func (r *Recorder) Open() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.stack)
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Dropped returns how many spans were discarded because the buffer was
// full. Like iostat.Trace.Dropped, a nonzero value means the trace is
// incomplete and must be surfaced loudly, never read as a full record.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Spans returns a copy of the recorded spans in begin order. Spans still
// open are reported with End clamped to their Start (they remain open in
// the recorder).
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	for i := range out {
		if out[i].End < out[i].Start {
			out[i].End = out[i].Start
		}
	}
	return out
}

// Reset discards all recorded spans and drop counts, keeping configuration.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = r.spans[:0]
	r.stack = r.stack[:0]
	r.next = 1
	r.dropped = 0
	r.tick = 0
	r.suppress = 0
}
