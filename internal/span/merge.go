package span

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Gatherer is the slice of the MPI communicator the merge needs; *mpi.Comm
// satisfies it (same shape as iostat.Gatherer — span sits below mpi in the
// import graph, so it cannot name the concrete type).
type Gatherer interface {
	Rank() int
	Size() int
	Gather(root int, data []byte) [][]byte
}

// Gather collects every rank's spans to rank 0 and returns them merged,
// sorted by (Rank, ID), together with the total number of spans dropped
// across all ranks. Non-root ranks receive (nil, 0). Ranks with a nil
// recorder contribute an empty trace; uneven span counts across ranks are
// fine. Timestamps are NOT adjusted for cross-rank clock skew — the
// analyses in critical.go deliberately use only within-rank durations.
func Gather(c Gatherer, r *Recorder) ([]Span, int64) {
	blob := encodeSpans(r.Spans(), r.Dropped())
	parts := c.Gather(0, blob)
	if c.Rank() != 0 {
		return nil, 0
	}
	var merged []Span
	var dropped int64
	for rank, p := range parts {
		spans, d, err := decodeSpans(p)
		if err != nil {
			// A malformed blob means a bug in this package, not user input;
			// surface it as an impossible-to-miss sentinel span.
			merged = append(merged, Span{Rank: rank, Phase: "_decode_error"})
			continue
		}
		merged = append(merged, spans...)
		dropped += d
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Rank != merged[j].Rank {
			return merged[i].Rank < merged[j].Rank
		}
		return merged[i].ID < merged[j].ID
	})
	return merged, dropped
}

// encodeSpans serializes spans plus the dropped count: a fixed header then
// fixed-width fields and length-prefixed phase strings, little-endian.
func encodeSpans(spans []Span, dropped int64) []byte {
	n := 16 // count + dropped
	for _, s := range spans {
		n += 8*6 + 8 + 4 + len(s.Phase) // 6 int64/float64, rank, phase len+bytes
	}
	buf := make([]byte, 0, n)
	buf = appendU64(buf, uint64(len(spans)))
	buf = appendU64(buf, uint64(dropped))
	for _, s := range spans {
		buf = appendU64(buf, uint64(s.ID))
		buf = appendU64(buf, uint64(s.Parent))
		buf = appendU64(buf, uint64(int64(s.Rank)))
		buf = appendU64(buf, uint64(s.Round))
		buf = appendU64(buf, uint64(s.Bytes))
		buf = appendU64(buf, math.Float64bits(s.Start))
		buf = appendU64(buf, math.Float64bits(s.End))
		buf = appendU64(buf, uint64(len(s.Phase)))
		buf = append(buf, s.Phase...)
	}
	return buf
}

func decodeSpans(buf []byte) ([]Span, int64, error) {
	u64 := func() (uint64, error) {
		if len(buf) < 8 {
			return 0, fmt.Errorf("span: short blob")
		}
		v := binary.LittleEndian.Uint64(buf)
		buf = buf[8:]
		return v, nil
	}
	count, err := u64()
	if err != nil {
		return nil, 0, err
	}
	droppedU, err := u64()
	if err != nil {
		return nil, 0, err
	}
	if count > uint64(len(buf)) { // each span takes >1 byte; cheap sanity bound
		return nil, 0, fmt.Errorf("span: blob count %d exceeds payload", count)
	}
	spans := make([]Span, 0, count)
	for i := uint64(0); i < count; i++ {
		var f [7]uint64
		for k := range f {
			if f[k], err = u64(); err != nil {
				return nil, 0, err
			}
		}
		plen, err := u64()
		if err != nil {
			return nil, 0, err
		}
		if plen > uint64(len(buf)) {
			return nil, 0, fmt.Errorf("span: phase length %d exceeds payload", plen)
		}
		phase := string(buf[:plen])
		buf = buf[plen:]
		spans = append(spans, Span{
			ID: int64(f[0]), Parent: int64(f[1]), Rank: int(int64(f[2])),
			Round: int64(f[3]), Bytes: int64(f[4]),
			Start: math.Float64frombits(f[5]), End: math.Float64frombits(f[6]),
			Phase: phase,
		})
	}
	return spans, int64(droppedU), nil
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// Sink is a mutex-guarded container for the merged result of one run. The
// bench harness hands one Sink to all ranks' goroutines; rank 0 publishes
// the gathered spans into it, and the tool layer snapshots it afterward
// (and the live metrics endpoint may snapshot it mid-sweep).
type Sink struct {
	mu      sync.Mutex
	spans   []Span
	dropped int64
}

// Replace installs a run's merged spans, discarding any previous run's.
func (s *Sink) Replace(spans []Span, dropped int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.spans, s.dropped = spans, dropped
	s.mu.Unlock()
}

// Snapshot returns the current merged spans and total dropped count.
func (s *Sink) Snapshot() ([]Span, int64) {
	if s == nil {
		return nil, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Span, len(s.spans))
	copy(out, s.spans)
	return out, s.dropped
}
