package span

import (
	"fmt"
	"sort"
)

// RoundCritical names the rank and phase that bounded one two-phase round
// of one collective call. "Bounded" means: among all ranks participating in
// the round, this rank's local work (from its round start to the end of its
// last child phase, before the round's collective error agreement
// synchronizes everyone) took longest, and Phase is the longest child phase
// on that rank. Durations are within-rank, so the analysis is immune to
// cross-rank clock skew.
type RoundCritical struct {
	Coll  int     // collective call index (order of coll_* spans per rank)
	Round int     // round index within the collective
	Rank  int     // bounding rank
	Phase string  // dominant phase on the bounding rank
	Work  float64 // bounding rank's work seconds for the round
	Min   float64 // fastest rank's work seconds
	Mean  float64 // mean work seconds across participating ranks
	Ranks int     // ranks that contributed a span to this round
}

// Spread returns max/mean work, the round's load-imbalance factor
// (1.0 = perfectly balanced).
func (rc RoundCritical) Spread() float64 {
	if rc.Mean <= 0 {
		return 1
	}
	return rc.Work / rc.Mean
}

// byID indexes one rank's spans for parent-chain walks.
func index(spans []Span) map[int]map[int64]*Span {
	idx := make(map[int]map[int64]*Span)
	for i := range spans {
		s := &spans[i]
		m := idx[s.Rank]
		if m == nil {
			m = make(map[int64]*Span)
			idx[s.Rank] = m
		}
		m[s.ID] = s
	}
	return idx
}

// collIndexes assigns each rank's collective spans (coll_write/coll_read)
// a per-rank sequence number. Collectives execute in lockstep across ranks,
// so the i-th collective on rank a and the i-th on rank b are the same call.
func collIndexes(spans []Span) map[int]map[int64]int {
	perRank := make(map[int][]*Span)
	for i := range spans {
		s := &spans[i]
		if s.Phase == CollWrite || s.Phase == CollRead {
			perRank[s.Rank] = append(perRank[s.Rank], s)
		}
	}
	out := make(map[int]map[int64]int)
	for rank, list := range perRank {
		sort.Slice(list, func(i, j int) bool {
			if list[i].Start != list[j].Start {
				return list[i].Start < list[j].Start
			}
			return list[i].ID < list[j].ID
		})
		m := make(map[int64]int, len(list))
		for i, s := range list {
			m[s.ID] = i
		}
		out[rank] = m
	}
	return out
}

// CriticalPath computes, for every (collective, round) pair present in the
// merged spans, which rank and phase bounded it. Rounds with spans from a
// subset of ranks (uneven traces) are analyzed over the ranks present.
// Returns rounds sorted by (Coll, Round).
//
// A round's spans come from two places: children of its round span
// (pack/exchange, plus everything else on the serial path), and floating
// leaves recorded directly under the collective span with an explicit
// Round tag — the pipelined path's agg_write/agg_read/reply_xchg/scatter,
// whose intervals genuinely overlap the next round's span. Per (rank,
// collective) the rounds are walked in index order with a time cursor:
// round r is charged max(0, lastEnd_r − max(roundStart_r, cursor)) and the
// cursor advances to lastEnd_r, so an aggregator I/O that completes inside
// round r+1's window is attributed to round r without the overlapped
// stretch being counted twice — per-rank round works never sum past wall
// time. Serial traces (no overlap) get the historical attribution
// unchanged.
func CriticalPath(spans []Span) []RoundCritical {
	idx := index(spans)
	colls := collIndexes(spans)

	// roundAgg accumulates one (rank, coll, round)'s evidence.
	type rkey struct{ rank, coll, round int }
	type roundAgg struct {
		hasSpan    bool    // a round span was present
		start, end float64 // the round span's interval
		rawEnd     float64 // latest attributed span end
		minStart   float64 // earliest attributed span start (no round span)
		domPhase   string
		domDur     float64
		n          int // attributed spans
	}
	aggs := make(map[rkey]*roundAgg)
	get := func(k rkey) *roundAgg {
		ra := aggs[k]
		if ra == nil {
			ra = &roundAgg{minStart: -1}
			aggs[k] = ra
		}
		return ra
	}

	// Pass 1: round spans establish their groups; remember each round
	// span's key so its children can be attributed in pass 2.
	roundKey := make(map[int]map[int64]rkey)
	for i := range spans {
		s := &spans[i]
		if s.Phase != Round {
			continue
		}
		coll := -1
		if p := idx[s.Rank][s.Parent]; p != nil {
			if ci, ok := colls[s.Rank][p.ID]; ok {
				coll = ci
			}
		}
		k := rkey{rank: s.Rank, coll: coll, round: int(s.Round)}
		m := roundKey[s.Rank]
		if m == nil {
			m = make(map[int64]rkey)
			roundKey[s.Rank] = m
		}
		m[s.ID] = k
		ra := get(k)
		ra.hasSpan = true
		ra.start, ra.end = s.Start, s.End
	}

	// Pass 2: attribute the working spans — children of a round span, or
	// round-tagged leaves directly under a collective span (the pipelined
	// overlapped phases). Leaves deeper in the tree (e.g. plan_domain under
	// the plan span, which reuses Round as a domain index) stay out.
	attribute := func(ra *roundAgg, s *Span) {
		ra.n++
		if s.End > ra.rawEnd {
			ra.rawEnd = s.End
		}
		if ra.minStart < 0 || s.Start < ra.minStart {
			ra.minStart = s.Start
		}
		if d := s.Dur(); d >= ra.domDur {
			ra.domDur, ra.domPhase = d, s.Phase
		}
	}
	for i := range spans {
		s := &spans[i]
		if s.Phase == Round || s.Parent == 0 {
			continue
		}
		if k, ok := roundKey[s.Rank][s.Parent]; ok {
			attribute(get(k), s)
			continue
		}
		parent := idx[s.Rank][s.Parent]
		if parent == nil || s.Round < 0 {
			continue
		}
		if parent.Phase == CollWrite || parent.Phase == CollRead {
			if ci, ok := colls[s.Rank][parent.ID]; ok {
				attribute(get(rkey{rank: s.Rank, coll: ci, round: int(s.Round)}), s)
			}
		}
	}

	// Per (rank, coll): cursor walk in round order.
	type ckey struct{ rank, coll int }
	perColl := make(map[ckey][]rkey)
	for k := range aggs {
		ck := ckey{rank: k.rank, coll: k.coll}
		perColl[ck] = append(perColl[ck], k)
	}

	type key struct{ coll, round int }
	type entry struct {
		rank  int
		work  float64
		phase string
	}
	groups := make(map[key][]entry)
	for _, keys := range perColl {
		sort.Slice(keys, func(i, j int) bool { return keys[i].round < keys[j].round })
		cursor := -1.0
		for _, k := range keys {
			ra := aggs[k]
			start := ra.start
			if !ra.hasSpan {
				start = ra.minStart
			}
			rawEnd := ra.rawEnd
			phase := ra.domPhase
			if ra.n == 0 {
				// Childless round span: its own duration is the work (the
				// historical fallback).
				rawEnd = ra.end
				phase = Round
			}
			if cursor > start {
				start = cursor
			}
			work := rawEnd - start
			if work < 0 {
				work = 0
			}
			if rawEnd > cursor {
				cursor = rawEnd
			}
			gk := key{k.coll, k.round}
			groups[gk] = append(groups[gk], entry{rank: k.rank, work: work, phase: phase})
		}
	}

	out := make([]RoundCritical, 0, len(groups))
	for k, entries := range groups {
		rc := RoundCritical{Coll: k.coll, Round: k.round, Min: -1}
		var sum float64
		for _, e := range entries {
			sum += e.work
			if e.work > rc.Work || (e.work == rc.Work && (rc.Ranks == 0 || e.rank < rc.Rank)) {
				rc.Work, rc.Rank, rc.Phase = e.work, e.rank, e.phase
			}
			if rc.Min < 0 || e.work < rc.Min {
				rc.Min = e.work
			}
			rc.Ranks++
		}
		if rc.Min < 0 {
			rc.Min = 0
		}
		rc.Mean = sum / float64(len(entries))
		out = append(out, rc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Coll != out[j].Coll {
			return out[i].Coll < out[j].Coll
		}
		return out[i].Round < out[j].Round
	})
	return out
}

// BoundCounts tallies how often each rank bounded a round — the straggler
// attribution summary ("rank 3 bounded 14/24 rounds").
func BoundCounts(rounds []RoundCritical) map[int]int {
	out := make(map[int]int)
	for _, rc := range rounds {
		out[rc.Rank]++
	}
	return out
}

// RankLoad is one rank's total time and call count in one phase.
type RankLoad struct {
	Rank    int
	Seconds float64
	Calls   int
	Bytes   int64
}

// Load aggregates one phase across ranks: the per-phase load-imbalance
// histogram. PerRank covers only ranks with at least one span in the phase
// (aggregator phases legitimately touch a subset of ranks).
type Load struct {
	Phase   string
	PerRank []RankLoad // sorted by rank
	Min     float64
	Max     float64
	Mean    float64
	MaxRank int
	Calls   int
	Bytes   int64
}

// Imbalance returns max/mean seconds (1.0 = perfectly balanced; 0 when the
// phase saw no time).
func (l Load) Imbalance() float64 {
	if l.Mean <= 0 {
		return 0
	}
	return l.Max / l.Mean
}

// ByteImbalance returns max/mean of the per-rank byte totals (1.0 =
// perfectly balanced; 0 when the phase moved no bytes). For aggregator
// phases this is the byte-load spread the balanced partitioner minimizes —
// unlike Imbalance it is independent of per-rank timing noise.
func (l Load) ByteImbalance() float64 {
	var max, sum int64
	for _, rl := range l.PerRank {
		sum += rl.Bytes
		if rl.Bytes > max {
			max = rl.Bytes
		}
	}
	if sum <= 0 {
		return 0
	}
	mean := float64(sum) / float64(len(l.PerRank))
	return float64(max) / mean
}

// PlannedActual pairs one aggregator rank's planned domain bytes with the
// bytes it actually moved.
type PlannedActual struct {
	Rank    int
	Planned int64 // sum of plan_domain span bytes on this rank
	Actual  int64 // sum of agg_write + agg_read span bytes on this rank
}

// PlannedVsActual correlates the partitioner's plan with execution: planned
// bytes come from plan_domain spans (emitted per aggregator under
// cb_partition=balanced), actual bytes from aggregator I/O spans. Returns
// nil when no plan_domain spans are present (even partitioning plans
// silently). Ranks appearing on either side are included, sorted by rank.
func PlannedVsActual(spans []Span) []PlannedActual {
	per := make(map[int]*PlannedActual)
	get := func(rank int) *PlannedActual {
		pa := per[rank]
		if pa == nil {
			pa = &PlannedActual{Rank: rank}
			per[rank] = pa
		}
		return pa
	}
	planned := false
	for i := range spans {
		s := &spans[i]
		switch s.Phase {
		case PlanDomain:
			planned = true
			get(s.Rank).Planned += s.Bytes
		case AggWrite, AggRead:
			get(s.Rank).Actual += s.Bytes
		}
	}
	if !planned {
		return nil
	}
	out := make([]PlannedActual, 0, len(per))
	for _, pa := range per {
		out = append(out, *pa)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// PhaseLoad computes the per-rank load for one phase tag.
func PhaseLoad(spans []Span, phase string) Load {
	per := make(map[int]*RankLoad)
	for i := range spans {
		s := &spans[i]
		if s.Phase != phase {
			continue
		}
		rl := per[s.Rank]
		if rl == nil {
			rl = &RankLoad{Rank: s.Rank}
			per[s.Rank] = rl
		}
		rl.Seconds += s.Dur()
		rl.Calls++
		rl.Bytes += s.Bytes
	}
	l := Load{Phase: phase, Min: -1}
	var sum float64
	for _, rl := range per {
		l.PerRank = append(l.PerRank, *rl)
		sum += rl.Seconds
		l.Calls += rl.Calls
		l.Bytes += rl.Bytes
		if rl.Seconds > l.Max || (rl.Seconds == l.Max && len(l.PerRank) == 1) {
			l.Max, l.MaxRank = rl.Seconds, rl.Rank
		}
		if l.Min < 0 || rl.Seconds < l.Min {
			l.Min = rl.Seconds
		}
	}
	if l.Min < 0 {
		l.Min = 0
	}
	if len(l.PerRank) > 0 {
		l.Mean = sum / float64(len(l.PerRank))
	}
	sort.Slice(l.PerRank, func(i, j int) bool { return l.PerRank[i].Rank < l.PerRank[j].Rank })
	return l
}

// AllLoads computes PhaseLoad for every phase present, sorted most
// imbalanced first (ties broken by total time, then name) — the straggler
// attribution table.
func AllLoads(spans []Span) []Load {
	seen := make(map[string]bool)
	var phases []string
	for i := range spans {
		if p := spans[i].Phase; !seen[p] {
			seen[p] = true
			phases = append(phases, p)
		}
	}
	out := make([]Load, 0, len(phases))
	for _, p := range phases {
		out = append(out, PhaseLoad(spans, p))
	}
	sort.Slice(out, func(i, j int) bool {
		bi, bj := out[i].Imbalance(), out[j].Imbalance()
		if bi != bj {
			return bi > bj
		}
		si := out[i].Mean * float64(len(out[i].PerRank))
		sj := out[j].Mean * float64(len(out[j].PerRank))
		if si != sj {
			return si > sj
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// Histogram buckets the per-rank seconds of a Load into n equal-width
// buckets over [Min, Max], returning counts and human-readable bucket
// labels. Useful for the aggregator load-imbalance view.
func (l Load) Histogram(n int) (counts []int, labels []string) {
	if n < 1 || len(l.PerRank) == 0 {
		return nil, nil
	}
	counts = make([]int, n)
	labels = make([]string, n)
	width := (l.Max - l.Min) / float64(n)
	for i := range labels {
		lo := l.Min + float64(i)*width
		labels[i] = fmt.Sprintf("[%.3gms, %.3gms)", lo*1e3, (lo+width)*1e3)
	}
	if width <= 0 {
		labels[0] = fmt.Sprintf("[%.3gms]", l.Min*1e3)
		counts[0] = len(l.PerRank)
		for i := 1; i < n; i++ {
			labels[i] = labels[0]
		}
		return counts[:1], labels[:1]
	}
	for _, rl := range l.PerRank {
		b := int((rl.Seconds - l.Min) / width)
		if b >= n {
			b = n - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return counts, labels
}
