package span

import (
	"fmt"
	"sort"
)

// RoundCritical names the rank and phase that bounded one two-phase round
// of one collective call. "Bounded" means: among all ranks participating in
// the round, this rank's local work (from its round start to the end of its
// last child phase, before the round's collective error agreement
// synchronizes everyone) took longest, and Phase is the longest child phase
// on that rank. Durations are within-rank, so the analysis is immune to
// cross-rank clock skew.
type RoundCritical struct {
	Coll  int     // collective call index (order of coll_* spans per rank)
	Round int     // round index within the collective
	Rank  int     // bounding rank
	Phase string  // dominant phase on the bounding rank
	Work  float64 // bounding rank's work seconds for the round
	Min   float64 // fastest rank's work seconds
	Mean  float64 // mean work seconds across participating ranks
	Ranks int     // ranks that contributed a span to this round
}

// Spread returns max/mean work, the round's load-imbalance factor
// (1.0 = perfectly balanced).
func (rc RoundCritical) Spread() float64 {
	if rc.Mean <= 0 {
		return 1
	}
	return rc.Work / rc.Mean
}

// byID indexes one rank's spans for parent-chain walks.
func index(spans []Span) map[int]map[int64]*Span {
	idx := make(map[int]map[int64]*Span)
	for i := range spans {
		s := &spans[i]
		m := idx[s.Rank]
		if m == nil {
			m = make(map[int64]*Span)
			idx[s.Rank] = m
		}
		m[s.ID] = s
	}
	return idx
}

// collIndexes assigns each rank's collective spans (coll_write/coll_read)
// a per-rank sequence number. Collectives execute in lockstep across ranks,
// so the i-th collective on rank a and the i-th on rank b are the same call.
func collIndexes(spans []Span) map[int]map[int64]int {
	perRank := make(map[int][]*Span)
	for i := range spans {
		s := &spans[i]
		if s.Phase == CollWrite || s.Phase == CollRead {
			perRank[s.Rank] = append(perRank[s.Rank], s)
		}
	}
	out := make(map[int]map[int64]int)
	for rank, list := range perRank {
		sort.Slice(list, func(i, j int) bool {
			if list[i].Start != list[j].Start {
				return list[i].Start < list[j].Start
			}
			return list[i].ID < list[j].ID
		})
		m := make(map[int64]int, len(list))
		for i, s := range list {
			m[s.ID] = i
		}
		out[rank] = m
	}
	return out
}

// CriticalPath computes, for every (collective, round) pair present in the
// merged spans, which rank and phase bounded it. Rounds with spans from a
// subset of ranks (uneven traces) are analyzed over the ranks present.
// Returns rounds sorted by (Coll, Round).
func CriticalPath(spans []Span) []RoundCritical {
	idx := index(spans)
	colls := collIndexes(spans)

	// Children grouped under each round span, per (rank, round span ID).
	children := make(map[int]map[int64][]*Span)
	var rounds []*Span
	for i := range spans {
		s := &spans[i]
		if s.Phase == Round {
			rounds = append(rounds, s)
			continue
		}
		if s.Parent == 0 {
			continue
		}
		parent := idx[s.Rank][s.Parent]
		if parent == nil || parent.Phase != Round {
			continue
		}
		m := children[s.Rank]
		if m == nil {
			m = make(map[int64][]*Span)
			children[s.Rank] = m
		}
		m[s.Parent] = append(m[s.Parent], s)
	}

	type key struct{ coll, round int }
	type entry struct {
		rank  int
		work  float64
		phase string
	}
	groups := make(map[key][]entry)
	for _, rs := range rounds {
		coll := -1
		if p := idx[rs.Rank][rs.Parent]; p != nil {
			if ci, ok := colls[rs.Rank][p.ID]; ok {
				coll = ci
			}
		}
		kids := children[rs.Rank][rs.ID]
		// Work = round start to the end of the last child phase: the stretch
		// this rank kept the round waiting before the closing agreement sync
		// (the sync itself ends at the same instant on every rank, so the
		// full round duration carries no per-rank signal).
		work := rs.Dur()
		phase := Round
		if len(kids) > 0 {
			lastEnd := rs.Start
			var domPhase string
			var domDur float64
			for _, k := range kids {
				if k.End > lastEnd {
					lastEnd = k.End
				}
				if d := k.Dur(); d >= domDur {
					domDur, domPhase = d, k.Phase
				}
			}
			work = lastEnd - rs.Start
			if work < 0 {
				work = 0
			}
			phase = domPhase
		}
		k := key{coll, int(rs.Round)}
		groups[k] = append(groups[k], entry{rank: rs.Rank, work: work, phase: phase})
	}

	out := make([]RoundCritical, 0, len(groups))
	for k, entries := range groups {
		rc := RoundCritical{Coll: k.coll, Round: k.round, Min: -1}
		var sum float64
		for _, e := range entries {
			sum += e.work
			if e.work > rc.Work || (e.work == rc.Work && (rc.Ranks == 0 || e.rank < rc.Rank)) {
				rc.Work, rc.Rank, rc.Phase = e.work, e.rank, e.phase
			}
			if rc.Min < 0 || e.work < rc.Min {
				rc.Min = e.work
			}
			rc.Ranks++
		}
		if rc.Min < 0 {
			rc.Min = 0
		}
		rc.Mean = sum / float64(len(entries))
		out = append(out, rc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Coll != out[j].Coll {
			return out[i].Coll < out[j].Coll
		}
		return out[i].Round < out[j].Round
	})
	return out
}

// BoundCounts tallies how often each rank bounded a round — the straggler
// attribution summary ("rank 3 bounded 14/24 rounds").
func BoundCounts(rounds []RoundCritical) map[int]int {
	out := make(map[int]int)
	for _, rc := range rounds {
		out[rc.Rank]++
	}
	return out
}

// RankLoad is one rank's total time and call count in one phase.
type RankLoad struct {
	Rank    int
	Seconds float64
	Calls   int
	Bytes   int64
}

// Load aggregates one phase across ranks: the per-phase load-imbalance
// histogram. PerRank covers only ranks with at least one span in the phase
// (aggregator phases legitimately touch a subset of ranks).
type Load struct {
	Phase   string
	PerRank []RankLoad // sorted by rank
	Min     float64
	Max     float64
	Mean    float64
	MaxRank int
	Calls   int
	Bytes   int64
}

// Imbalance returns max/mean seconds (1.0 = perfectly balanced; 0 when the
// phase saw no time).
func (l Load) Imbalance() float64 {
	if l.Mean <= 0 {
		return 0
	}
	return l.Max / l.Mean
}

// ByteImbalance returns max/mean of the per-rank byte totals (1.0 =
// perfectly balanced; 0 when the phase moved no bytes). For aggregator
// phases this is the byte-load spread the balanced partitioner minimizes —
// unlike Imbalance it is independent of per-rank timing noise.
func (l Load) ByteImbalance() float64 {
	var max, sum int64
	for _, rl := range l.PerRank {
		sum += rl.Bytes
		if rl.Bytes > max {
			max = rl.Bytes
		}
	}
	if sum <= 0 {
		return 0
	}
	mean := float64(sum) / float64(len(l.PerRank))
	return float64(max) / mean
}

// PlannedActual pairs one aggregator rank's planned domain bytes with the
// bytes it actually moved.
type PlannedActual struct {
	Rank    int
	Planned int64 // sum of plan_domain span bytes on this rank
	Actual  int64 // sum of agg_write + agg_read span bytes on this rank
}

// PlannedVsActual correlates the partitioner's plan with execution: planned
// bytes come from plan_domain spans (emitted per aggregator under
// cb_partition=balanced), actual bytes from aggregator I/O spans. Returns
// nil when no plan_domain spans are present (even partitioning plans
// silently). Ranks appearing on either side are included, sorted by rank.
func PlannedVsActual(spans []Span) []PlannedActual {
	per := make(map[int]*PlannedActual)
	get := func(rank int) *PlannedActual {
		pa := per[rank]
		if pa == nil {
			pa = &PlannedActual{Rank: rank}
			per[rank] = pa
		}
		return pa
	}
	planned := false
	for i := range spans {
		s := &spans[i]
		switch s.Phase {
		case PlanDomain:
			planned = true
			get(s.Rank).Planned += s.Bytes
		case AggWrite, AggRead:
			get(s.Rank).Actual += s.Bytes
		}
	}
	if !planned {
		return nil
	}
	out := make([]PlannedActual, 0, len(per))
	for _, pa := range per {
		out = append(out, *pa)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// PhaseLoad computes the per-rank load for one phase tag.
func PhaseLoad(spans []Span, phase string) Load {
	per := make(map[int]*RankLoad)
	for i := range spans {
		s := &spans[i]
		if s.Phase != phase {
			continue
		}
		rl := per[s.Rank]
		if rl == nil {
			rl = &RankLoad{Rank: s.Rank}
			per[s.Rank] = rl
		}
		rl.Seconds += s.Dur()
		rl.Calls++
		rl.Bytes += s.Bytes
	}
	l := Load{Phase: phase, Min: -1}
	var sum float64
	for _, rl := range per {
		l.PerRank = append(l.PerRank, *rl)
		sum += rl.Seconds
		l.Calls += rl.Calls
		l.Bytes += rl.Bytes
		if rl.Seconds > l.Max || (rl.Seconds == l.Max && len(l.PerRank) == 1) {
			l.Max, l.MaxRank = rl.Seconds, rl.Rank
		}
		if l.Min < 0 || rl.Seconds < l.Min {
			l.Min = rl.Seconds
		}
	}
	if l.Min < 0 {
		l.Min = 0
	}
	if len(l.PerRank) > 0 {
		l.Mean = sum / float64(len(l.PerRank))
	}
	sort.Slice(l.PerRank, func(i, j int) bool { return l.PerRank[i].Rank < l.PerRank[j].Rank })
	return l
}

// AllLoads computes PhaseLoad for every phase present, sorted most
// imbalanced first (ties broken by total time, then name) — the straggler
// attribution table.
func AllLoads(spans []Span) []Load {
	seen := make(map[string]bool)
	var phases []string
	for i := range spans {
		if p := spans[i].Phase; !seen[p] {
			seen[p] = true
			phases = append(phases, p)
		}
	}
	out := make([]Load, 0, len(phases))
	for _, p := range phases {
		out = append(out, PhaseLoad(spans, p))
	}
	sort.Slice(out, func(i, j int) bool {
		bi, bj := out[i].Imbalance(), out[j].Imbalance()
		if bi != bj {
			return bi > bj
		}
		si := out[i].Mean * float64(len(out[i].PerRank))
		sj := out[j].Mean * float64(len(out[j].PerRank))
		if si != sj {
			return si > sj
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// Histogram buckets the per-rank seconds of a Load into n equal-width
// buckets over [Min, Max], returning counts and human-readable bucket
// labels. Useful for the aggregator load-imbalance view.
func (l Load) Histogram(n int) (counts []int, labels []string) {
	if n < 1 || len(l.PerRank) == 0 {
		return nil, nil
	}
	counts = make([]int, n)
	labels = make([]string, n)
	width := (l.Max - l.Min) / float64(n)
	for i := range labels {
		lo := l.Min + float64(i)*width
		labels[i] = fmt.Sprintf("[%.3gms, %.3gms)", lo*1e3, (lo+width)*1e3)
	}
	if width <= 0 {
		labels[0] = fmt.Sprintf("[%.3gms]", l.Min*1e3)
		counts[0] = len(l.PerRank)
		for i := 1; i < n; i++ {
			labels[i] = labels[0]
		}
		return counts[:1], labels[:1]
	}
	for _, rl := range l.PerRank {
		b := int((rl.Seconds - l.Min) / width)
		if b >= n {
			b = n - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return counts, labels
}
