package nctype

import "errors"

// Error vocabulary shared by the serial and parallel netCDF libraries. The
// names follow the netCDF C library's NC_E* codes so users migrating from
// the C API can recognize failure modes.
var (
	ErrBadID          = errors.New("netcdf: not a valid dataset ID")
	ErrExists         = errors.New("netcdf: file exists and NoClobber set")
	ErrInDefine       = errors.New("netcdf: operation not allowed in define mode")
	ErrNotInDefine    = errors.New("netcdf: operation requires define mode")
	ErrInvalidArg     = errors.New("netcdf: invalid argument")
	ErrPerm           = errors.New("netcdf: write to read-only dataset")
	ErrNotVar         = errors.New("netcdf: variable not found")
	ErrNotDim         = errors.New("netcdf: dimension not found")
	ErrNotAtt         = errors.New("netcdf: attribute not found")
	ErrBadName        = errors.New("netcdf: invalid name")
	ErrBadType        = errors.New("netcdf: invalid data type")
	ErrBadDim         = errors.New("netcdf: invalid dimension ID or size")
	ErrUnlimPos       = errors.New("netcdf: unlimited dimension must be first (most significant)")
	ErrMaxDims        = errors.New("netcdf: too many dimensions")
	ErrNameInUse      = errors.New("netcdf: name already in use")
	ErrMultiUnlimited = errors.New("netcdf: only one unlimited dimension allowed")
	ErrEdge           = errors.New("netcdf: start+count exceeds dimension bound")
	ErrStride         = errors.New("netcdf: illegal stride")
	ErrNotNC          = errors.New("netcdf: not a netCDF file")
	ErrVersion        = errors.New("netcdf: unsupported netCDF version")
	ErrVarSize        = errors.New("netcdf: variable too large for format")
	ErrNoRecVars      = errors.New("netcdf: no record variables defined")
	ErrClosed         = errors.New("netcdf: dataset is closed")
	ErrCountMismatch  = errors.New("netcdf: buffer length does not match edge counts")
	ErrTypeMismatch   = errors.New("netcdf: buffer element type incompatible with request")

	// Parallel-specific errors.
	ErrConsistency = errors.New("pnetcdf: define-mode arguments differ across processes")
	ErrIndepMode   = errors.New("pnetcdf: collective call while in independent data mode")
	ErrCollMode    = errors.New("pnetcdf: independent call while in collective data mode")
	ErrNullComm    = errors.New("pnetcdf: nil communicator")
	ErrPending     = errors.New("pnetcdf: variable has a pending nonblocking write; call WaitAll before reading")
)
