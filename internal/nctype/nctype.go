// Package nctype defines the netCDF external data types, format constants,
// and the error vocabulary shared by the classic-format codec, the serial
// netCDF library, and the parallel (PnetCDF) library.
//
// The values mirror the netCDF classic specification so that files produced
// by this module are genuine netCDF files: external types are encoded
// big-endian, headers use the CDF-1/CDF-2/CDF-5 magic numbers, and the tag
// values for dimension/variable/attribute lists match the on-disk format.
package nctype

import "fmt"

// Type identifies a netCDF external data type. The numeric values are the
// on-disk nc_type codes from the classic file format.
type Type int32

// Classic external types (CDF-1/CDF-2). The extended types (UByte..UInt64)
// are valid only in CDF-5 files.
const (
	Invalid Type = 0
	Byte    Type = 1  // 8-bit signed integer
	Char    Type = 2  // 8-bit character (text)
	Short   Type = 3  // 16-bit signed integer
	Int     Type = 4  // 32-bit signed integer
	Float   Type = 5  // 32-bit IEEE float
	Double  Type = 6  // 64-bit IEEE float
	UByte   Type = 7  // CDF-5 only
	UShort  Type = 8  // CDF-5 only
	UInt    Type = 9  // CDF-5 only
	Int64   Type = 10 // CDF-5 only
	UInt64  Type = 11 // CDF-5 only
)

// Size returns the external (on-disk) size of one value of type t in bytes,
// or 0 if t is not a valid type.
func (t Type) Size() int {
	switch t {
	case Byte, Char, UByte:
		return 1
	case Short, UShort:
		return 2
	case Int, Float, UInt:
		return 4
	case Double, Int64, UInt64:
		return 8
	}
	return 0
}

// Valid reports whether t is a defined external type under the given format
// version (1, 2, or 5).
func (t Type) Valid(version int) bool {
	if t >= Byte && t <= Double {
		return true
	}
	if version == 5 && t >= UByte && t <= UInt64 {
		return true
	}
	return false
}

// String returns the CDL name of the type, as used by ncdump.
func (t Type) String() string {
	switch t {
	case Byte:
		return "byte"
	case Char:
		return "char"
	case Short:
		return "short"
	case Int:
		return "int"
	case Float:
		return "float"
	case Double:
		return "double"
	case UByte:
		return "ubyte"
	case UShort:
		return "ushort"
	case UInt:
		return "uint"
	case Int64:
		return "int64"
	case UInt64:
		return "uint64"
	}
	return fmt.Sprintf("type(%d)", int32(t))
}

// On-disk list tags for the classic header.
const (
	TagAbsent    uint32 = 0x00 // ABSENT: zero-length list
	TagDimension uint32 = 0x0A // NC_DIMENSION
	TagVariable  uint32 = 0x0B // NC_VARIABLE
	TagAttribute uint32 = 0x0C // NC_ATTRIBUTE
)

// File format versions (the byte following the "CDF" magic).
const (
	FormatClassic int = 1 // CDF-1: 32-bit offsets
	Format64Bit   int = 2 // CDF-2: 64-bit offsets
	Format64Data  int = 5 // CDF-5: 64-bit offsets, sizes, and extended types
)

// Create/open mode flags, a subset of the netCDF C library's flags.
const (
	NoWrite     = 0x0000 // open read-only
	Write       = 0x0001 // open read-write
	Clobber     = 0x0000 // create: overwrite any existing file
	NoClobber   = 0x0004 // create: fail if the file exists
	Bit64Offset = 0x0200 // create a CDF-2 file
	Bit64Data   = 0x0020 // create a CDF-5 file
)

// Limits from the classic format.
const (
	// MaxDims is the maximum number of dimensions per file or variable.
	MaxDims = 1024
	// MaxVars is the maximum number of variables per file.
	MaxVars = 8192
	// MaxAttrs is the maximum number of attributes per variable or file.
	MaxAttrs = 8192
	// MaxNameLen is the maximum length of a dimension/variable/attribute name.
	MaxNameLen = 256
)

// UnlimitedDim is the dimension length value that marks the record dimension.
const UnlimitedDim = 0

// FillValue defaults per type, matching the netCDF classic fill values.
const (
	FillByte   int8    = -127
	FillChar   byte    = 0
	FillShort  int16   = -32767
	FillInt    int32   = -2147483647
	FillFloat  float32 = 9.9692099683868690e+36
	FillDouble float64 = 9.9692099683868690e+36
)
