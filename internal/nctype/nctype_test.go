package nctype

import "testing"

func TestTypeSizes(t *testing.T) {
	want := map[Type]int{
		Byte: 1, Char: 1, UByte: 1,
		Short: 2, UShort: 2,
		Int: 4, Float: 4, UInt: 4,
		Double: 8, Int64: 8, UInt64: 8,
		Invalid: 0, Type(99): 0,
	}
	for typ, n := range want {
		if typ.Size() != n {
			t.Errorf("%v.Size() = %d, want %d", typ, typ.Size(), n)
		}
	}
}

func TestTypeValidityByVersion(t *testing.T) {
	classicOnly := []Type{Byte, Char, Short, Int, Float, Double}
	extended := []Type{UByte, UShort, UInt, Int64, UInt64}
	for _, v := range []int{1, 2, 5} {
		for _, typ := range classicOnly {
			if !typ.Valid(v) {
				t.Errorf("%v invalid in CDF-%d", typ, v)
			}
		}
	}
	for _, typ := range extended {
		if typ.Valid(1) || typ.Valid(2) {
			t.Errorf("%v valid in classic formats", typ)
		}
		if !typ.Valid(5) {
			t.Errorf("%v invalid in CDF-5", typ)
		}
	}
	if Invalid.Valid(1) || Type(42).Valid(5) {
		t.Error("bogus types accepted")
	}
}

func TestTypeStrings(t *testing.T) {
	cases := map[Type]string{
		Byte: "byte", Char: "char", Short: "short", Int: "int",
		Float: "float", Double: "double", UByte: "ubyte",
		UShort: "ushort", UInt: "uint", Int64: "int64", UInt64: "uint64",
	}
	for typ, s := range cases {
		if typ.String() != s {
			t.Errorf("%d.String() = %q, want %q", int32(typ), typ.String(), s)
		}
	}
	if Type(77).String() != "type(77)" {
		t.Errorf("unknown type string = %q", Type(77).String())
	}
}

func TestOnDiskConstants(t *testing.T) {
	// These values are the file format; they must never drift.
	if TagDimension != 0x0A || TagVariable != 0x0B || TagAttribute != 0x0C {
		t.Fatal("list tag constants drifted from the classic format")
	}
	if Byte != 1 || Char != 2 || Short != 3 || Int != 4 || Float != 5 || Double != 6 {
		t.Fatal("nc_type codes drifted from the classic format")
	}
	if UByte != 7 || UShort != 8 || UInt != 9 || Int64 != 10 || UInt64 != 11 {
		t.Fatal("CDF-5 nc_type codes drifted")
	}
}

func TestErrorsDistinct(t *testing.T) {
	errs := []error{
		ErrBadID, ErrExists, ErrInDefine, ErrNotInDefine, ErrInvalidArg,
		ErrPerm, ErrNotVar, ErrNotDim, ErrNotAtt, ErrBadName, ErrBadType,
		ErrBadDim, ErrUnlimPos, ErrMaxDims, ErrNameInUse, ErrMultiUnlimited,
		ErrEdge, ErrStride, ErrNotNC, ErrVersion, ErrVarSize, ErrNoRecVars,
		ErrClosed, ErrCountMismatch, ErrTypeMismatch, ErrConsistency,
		ErrIndepMode, ErrCollMode, ErrNullComm,
	}
	seen := map[string]bool{}
	for _, e := range errs {
		if e == nil || e.Error() == "" {
			t.Fatal("nil or empty error in vocabulary")
		}
		if seen[e.Error()] {
			t.Fatalf("duplicate error message %q", e.Error())
		}
		seen[e.Error()] = true
	}
}
