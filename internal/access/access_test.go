package access

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pnetcdf/internal/cdf"
	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
)

// fixture: dimensions t(unlimited), z=4, y=3, x=5; variables
// float cube(z,y,x); int series(t,y,x).
func fixture(t *testing.T) (*cdf.Header, *cdf.Var, *cdf.Var) {
	t.Helper()
	h := &cdf.Header{Version: 1}
	h.Dims = []cdf.Dim{{Name: "t", Len: 0}, {Name: "z", Len: 4}, {Name: "y", Len: 3}, {Name: "x", Len: 5}}
	h.Vars = []cdf.Var{
		{Name: "cube", DimIDs: []int{1, 2, 3}, Type: nctype.Float},
		{Name: "series", DimIDs: []int{0, 2, 3}, Type: nctype.Int},
	}
	if err := h.ComputeLayout(1); err != nil {
		t.Fatal(err)
	}
	h.NumRecs = 6
	return h, &h.Vars[0], &h.Vars[1]
}

func TestValidateBounds(t *testing.T) {
	h, cube, series := fixture(t)
	ok := func(v *cdf.Var, start, count, stride []int64, writing bool) error {
		_, err := Validate(h, v, start, count, stride, writing)
		return err
	}
	if err := ok(cube, []int64{0, 0, 0}, []int64{4, 3, 5}, nil, false); err != nil {
		t.Fatalf("whole cube: %v", err)
	}
	if err := ok(cube, []int64{3, 2, 4}, []int64{1, 1, 1}, nil, false); err != nil {
		t.Fatalf("last corner: %v", err)
	}
	if err := ok(cube, []int64{0, 0, 0}, []int64{5, 1, 1}, nil, false); err == nil {
		t.Fatal("over-edge accepted")
	}
	if err := ok(cube, []int64{2, 0, 0}, []int64{2, 1, 1}, []int64{2, 1, 1}, false); err == nil {
		t.Fatal("strided over-edge accepted (last index 4 >= bound 4)")
	}
	if err := ok(cube, []int64{0, 0, 0}, []int64{2, 1, 1}, []int64{2, 1, 1}, false); err != nil {
		t.Fatalf("strided in-bounds rejected: %v", err)
	}
	if err := ok(cube, []int64{-1, 0, 0}, []int64{1, 1, 1}, nil, false); err == nil {
		t.Fatal("negative start accepted")
	}
	if err := ok(cube, []int64{0, 0, 0}, []int64{1, 1, 1}, []int64{0, 1, 1}, false); err == nil {
		t.Fatal("zero stride accepted")
	}
	if err := ok(cube, []int64{0}, []int64{1}, nil, false); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	// Record variable: reads bounded by NumRecs, writes unbounded.
	if err := ok(series, []int64{5, 0, 0}, []int64{1, 3, 5}, nil, false); err != nil {
		t.Fatalf("read last record: %v", err)
	}
	if err := ok(series, []int64{6, 0, 0}, []int64{1, 3, 5}, nil, false); err == nil {
		t.Fatal("read beyond NumRecs accepted")
	}
	req, err := Validate(h, series, []int64{100, 0, 0}, []int64{2, 3, 5}, nil, true)
	if err != nil {
		t.Fatalf("write beyond NumRecs rejected: %v", err)
	}
	if req.LastRecord != 101 {
		t.Fatalf("LastRecord = %d, want 101", req.LastRecord)
	}
	if req.NElems != 2*3*5 {
		t.Fatalf("NElems = %d", req.NElems)
	}
}

// oracleOffsets lists, in buffer element order, the file byte offset of each
// element of the request, computed the naive way.
func oracleOffsets(h *cdf.Header, v *cdf.Var, req Request) []int64 {
	elem := int64(v.Type.Size())
	nd := len(v.DimIDs)
	shape := make([]int64, nd)
	for i, id := range v.DimIDs {
		shape[i] = h.Dims[id].Len
	}
	isRec := h.IsRecordVar(v)
	var out []int64
	idx := make([]int64, nd)
	var walk func(dim int)
	walk = func(dim int) {
		if dim == nd {
			off := v.Begin
			var inner int64
			for i := 0; i < nd; i++ {
				pos := req.Start[i] + idx[i]*req.Stride[i]
				if i == 0 && isRec {
					off += pos * h.RecSize()
					continue
				}
				stride := elem
				for j := i + 1; j < nd; j++ {
					stride *= shape[j]
				}
				inner += pos * stride
			}
			out = append(out, off+inner)
			return
		}
		for k := int64(0); k < req.Count[dim]; k++ {
			idx[dim] = k
			walk(dim + 1)
		}
	}
	walk(0)
	return out
}

func expandSegs(segs []mpitype.Segment, elem int64) []int64 {
	var out []int64
	for _, s := range segs {
		for o := s.Off; o < s.Off+s.Len; o += elem {
			out = append(out, o)
		}
	}
	return out
}

func TestFileSegmentsOracleFixed(t *testing.T) {
	h, cube, _ := fixture(t)
	cases := []struct{ start, count, stride []int64 }{
		{[]int64{0, 0, 0}, []int64{4, 3, 5}, nil},
		{[]int64{1, 1, 1}, []int64{2, 2, 3}, nil},
		{[]int64{0, 0, 0}, []int64{2, 2, 2}, []int64{2, 2, 2}},
		{[]int64{3, 2, 4}, []int64{1, 1, 1}, nil},
		{[]int64{0, 0, 1}, []int64{1, 3, 2}, []int64{1, 1, 3}},
	}
	for i, c := range cases {
		req, err := Validate(h, cube, c.start, c.count, c.stride, false)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		segs := FileSegments(h, cube, req)
		got := expandSegs(segs, 4)
		want := oracleOffsets(h, cube, req)
		if len(got) != len(want) {
			t.Fatalf("case %d: %d offsets, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("case %d elem %d: off %d, want %d", i, j, got[j], want[j])
			}
		}
	}
}

func TestFileSegmentsOracleRecord(t *testing.T) {
	h, _, series := fixture(t)
	cases := []struct{ start, count, stride []int64 }{
		{[]int64{0, 0, 0}, []int64{6, 3, 5}, nil},
		{[]int64{2, 1, 2}, []int64{3, 2, 2}, nil},
		{[]int64{0, 0, 0}, []int64{3, 1, 5}, []int64{2, 1, 1}},
		{[]int64{5, 2, 4}, []int64{1, 1, 1}, nil},
	}
	for i, c := range cases {
		req, err := Validate(h, series, c.start, c.count, c.stride, false)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		segs := FileSegments(h, series, req)
		got := expandSegs(segs, 4)
		want := oracleOffsets(h, series, req)
		if len(got) != len(want) {
			t.Fatalf("case %d: %d offsets, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("case %d elem %d: off %d, want %d", i, j, got[j], want[j])
			}
		}
	}
}

func TestQuickFileSegmentsOracle(t *testing.T) {
	h, cube, series := fixture(t)
	f := func(seed int64, rec bool) bool {
		rng := rand.New(rand.NewSource(seed))
		v := cube
		if rec {
			v = series
		}
		nd := len(v.DimIDs)
		start := make([]int64, nd)
		count := make([]int64, nd)
		stride := make([]int64, nd)
		for i := 0; i < nd; i++ {
			bound := h.Dims[v.DimIDs[i]].Len
			if i == 0 && rec {
				bound = h.NumRecs
			}
			start[i] = rng.Int63n(bound)
			stride[i] = rng.Int63n(3) + 1
			maxCount := (bound-start[i]-1)/stride[i] + 1
			count[i] = rng.Int63n(maxCount) + 1
		}
		req, err := Validate(h, v, start, count, stride, false)
		if err != nil {
			return false
		}
		got := expandSegs(FileSegments(h, v, req), 4)
		want := oracleOffsets(h, v, req)
		if len(got) != len(want) {
			return false
		}
		for j := range want {
			if got[j] != want[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFileViewMatchesSegments(t *testing.T) {
	h, cube, _ := fixture(t)
	req, err := Validate(h, cube, []int64{1, 0, 2}, []int64{2, 3, 2}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	view, err := FileView(h, cube, req)
	if err != nil {
		t.Fatal(err)
	}
	if view.Size() != req.NElems*4 {
		t.Fatalf("view size %d, want %d", view.Size(), req.NElems*4)
	}
	segs := FileSegments(h, cube, req)
	vsegs := view.Segments()
	if len(segs) != len(vsegs) {
		t.Fatalf("view has %d segs, direct %d", len(vsegs), len(segs))
	}
	for i := range segs {
		if segs[i] != vsegs[i] {
			t.Fatalf("seg %d: %+v vs %+v", i, segs[i], vsegs[i])
		}
	}
}

func TestZeroCountRequests(t *testing.T) {
	h, cube, _ := fixture(t)
	req, err := Validate(h, cube, []int64{0, 0, 0}, []int64{0, 3, 5}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if req.NElems != 0 {
		t.Fatalf("NElems = %d", req.NElems)
	}
	if segs := FileSegments(h, cube, req); len(segs) != 0 {
		t.Fatalf("zero-count produced segments: %v", segs)
	}
}

func TestMemSegmentsNaturalAndMapped(t *testing.T) {
	// Natural packing: one run.
	segs, err := MemSegments([]int64{2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != (mpitype.Segment{Off: 0, Len: 6}) {
		t.Fatalf("natural = %v", segs)
	}
	// Transposed 2x3 into column-major memory: imap = [1, 2].
	segs, err = MemSegments([]int64{2, 3}, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []mpitype.Segment{{Off: 0, Len: 1}, {Off: 2, Len: 1}, {Off: 4, Len: 1}, {Off: 1, Len: 1}, {Off: 3, Len: 1}, {Off: 5, Len: 1}}
	if len(segs) != len(want) {
		t.Fatalf("transposed = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("transposed = %v, want %v", segs, want)
		}
	}
	// Row-major with padding between rows: imap = [4, 1] for 2x3.
	segs, err = MemSegments([]int64{2, 3}, []int64{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	want = []mpitype.Segment{{Off: 0, Len: 3}, {Off: 4, Len: 3}}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("padded = %v, want %v", segs, want)
		}
	}
	// Errors.
	if _, err := MemSegments([]int64{2}, []int64{0}); err == nil {
		t.Fatal("zero imap accepted")
	}
	if _, err := MemSegments([]int64{2}, []int64{1, 1}); err == nil {
		t.Fatal("imap rank mismatch accepted")
	}
	// Zero count.
	segs, err = MemSegments([]int64{0, 3}, []int64{3, 1})
	if err != nil || segs != nil {
		t.Fatalf("zero count: %v %v", segs, err)
	}
}
