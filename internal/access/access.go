// Package access turns netCDF data-access requests — a variable plus
// start/count/stride/imap vectors — into byte-exact file extents and memory
// element maps. It is the geometry shared by the serial library
// (internal/netcdf), which walks the extents directly, and the parallel
// library (internal/core), which wraps them into an MPI-IO file view; using
// one implementation for both is what makes the two libraries
// byte-compatible on disk.
package access

import (
	"fmt"

	"pnetcdf/internal/cdf"
	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
)

// Request is a validated data access: which elements of a variable, in which
// order.
type Request struct {
	Start  []int64
	Count  []int64
	Stride []int64 // all 1s when the caller passed nil
	// NElems is the number of array elements touched.
	NElems int64
	// LastRecord is the highest record index touched (record variables
	// only); -1 otherwise. Writers grow NumRecs to LastRecord+1.
	LastRecord int64
}

// Validate checks a start/count/stride request against a variable's shape.
// stride may be nil (all ones). For record variables the record dimension is
// unbounded when writing=true and bounded by NumRecs when reading.
func Validate(h *cdf.Header, v *cdf.Var, start, count, stride []int64, writing bool) (Request, error) {
	nd := len(v.DimIDs)
	if len(start) != nd || len(count) != nd || (stride != nil && len(stride) != nd) {
		return Request{}, fmt.Errorf("%w: request rank %d/%d/%d for variable of rank %d",
			nctype.ErrInvalidArg, len(start), len(count), len(stride), nd)
	}
	req := Request{
		Start:      append([]int64(nil), start...),
		Count:      append([]int64(nil), count...),
		NElems:     1,
		LastRecord: -1,
	}
	if stride == nil {
		req.Stride = make([]int64, nd)
		for i := range req.Stride {
			req.Stride[i] = 1
		}
	} else {
		req.Stride = append([]int64(nil), stride...)
	}
	isRec := h.IsRecordVar(v)
	for i := 0; i < nd; i++ {
		if req.Start[i] < 0 || req.Count[i] < 0 {
			return Request{}, fmt.Errorf("%w: start/count dim %d", nctype.ErrInvalidArg, i)
		}
		if req.Stride[i] < 1 {
			return Request{}, fmt.Errorf("%w: stride[%d] = %d", nctype.ErrStride, i, req.Stride[i])
		}
		req.NElems *= req.Count[i]
		bound := h.Dims[v.DimIDs[i]].Len
		recDim := isRec && i == 0
		if recDim {
			bound = h.NumRecs
		}
		if req.Count[i] == 0 {
			continue
		}
		last := req.Start[i] + (req.Count[i]-1)*req.Stride[i]
		if recDim {
			if writing {
				req.LastRecord = last
				continue // unlimited growth on write
			}
			req.LastRecord = last
		}
		if last >= bound {
			return Request{}, fmt.Errorf("%w: dim %d access up to %d, bound %d",
				nctype.ErrEdge, i, last, bound)
		}
	}
	return req, nil
}

// appendMerge appends a segment, merging with the previous one when
// adjacent.
func appendMerge(segs []mpitype.Segment, s mpitype.Segment) []mpitype.Segment {
	if s.Len == 0 {
		return segs
	}
	if n := len(segs); n > 0 && segs[n-1].Off+segs[n-1].Len == s.Off {
		segs[n-1].Len += s.Len
		return segs
	}
	return append(segs, s)
}

// relSegments produces byte segments relative to offset 0 for a
// start/count/stride selection over an array of the given shape, in
// row-major element order (matching the order elements occupy in the
// caller's buffer).
func relSegments(shape, start, count, stride []int64, elem int64) []mpitype.Segment {
	nd := len(shape)
	if nd == 0 {
		return []mpitype.Segment{{Off: 0, Len: elem}}
	}
	for _, c := range count {
		if c == 0 {
			return nil
		}
	}
	dimStride := make([]int64, nd)
	dimStride[nd-1] = elem
	for i := nd - 2; i >= 0; i-- {
		dimStride[i] = dimStride[i+1] * shape[i+1]
	}
	last := nd - 1
	outer := int64(1)
	for i := 0; i < last; i++ {
		outer *= count[i]
	}
	var segs []mpitype.Segment
	idx := make([]int64, last)
	for o := int64(0); o < outer; o++ {
		base := int64(0)
		for i := 0; i < last; i++ {
			base += (start[i] + idx[i]*stride[i]) * dimStride[i]
		}
		if stride[last] == 1 {
			segs = appendMerge(segs, mpitype.Segment{
				Off: base + start[last]*elem,
				Len: count[last] * elem,
			})
		} else {
			for k := int64(0); k < count[last]; k++ {
				segs = appendMerge(segs, mpitype.Segment{
					Off: base + (start[last]+k*stride[last])*elem,
					Len: elem,
				})
			}
		}
		for i := last - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < count[i] {
				break
			}
			idx[i] = 0
		}
	}
	return segs
}

// FileSegments returns the absolute file byte extents for a validated
// request against variable v, in the element order of the caller's buffer.
// For record variables the record dimension iterates whole records at
// RecSize stride (the interleaved layout of paper Figure 1).
func FileSegments(h *cdf.Header, v *cdf.Var, req Request) []mpitype.Segment {
	elem := int64(v.Type.Size())
	if h.IsRecordVar(v) {
		innerShape := make([]int64, len(v.DimIDs)-1)
		for i := 1; i < len(v.DimIDs); i++ {
			innerShape[i-1] = h.Dims[v.DimIDs[i]].Len
		}
		inner := relSegments(innerShape, req.Start[1:], req.Count[1:], req.Stride[1:], elem)
		recSize := h.RecSize()
		var segs []mpitype.Segment
		for r := int64(0); r < req.Count[0]; r++ {
			rec := req.Start[0] + r*req.Stride[0]
			base := v.Begin + rec*recSize
			for _, s := range inner {
				segs = appendMerge(segs, mpitype.Segment{Off: base + s.Off, Len: s.Len})
			}
		}
		return segs
	}
	shape := make([]int64, len(v.DimIDs))
	for i, id := range v.DimIDs {
		shape[i] = h.Dims[id].Len
	}
	segs := relSegments(shape, req.Start, req.Count, req.Stride, elem)
	for i := range segs {
		segs[i].Off += v.Begin
	}
	return segs
}

// FileView wraps the request's extents into an MPI datatype suitable for an
// MPI-IO file view (displacement 0, absolute offsets, byte units).
func FileView(h *cdf.Header, v *cdf.Var, req Request) (mpitype.Datatype, error) {
	segs := FileSegments(h, v, req)
	end := int64(0)
	if len(segs) > 0 {
		end = segs[len(segs)-1].Off + segs[len(segs)-1].Len
	}
	return mpitype.FromSegments(segs, end)
}

// MemSegments returns element-unit segments into the caller's buffer for a
// mapped (imap) access: netCDF's varm. imap[i] is the distance in buffer
// elements between successive indices of dimension i. A nil imap means the
// natural row-major packing (contiguous buffer).
func MemSegments(count, imap []int64) ([]mpitype.Segment, error) {
	nd := len(count)
	if imap == nil {
		n := int64(1)
		for _, c := range count {
			n *= c
		}
		return []mpitype.Segment{{Off: 0, Len: n}}, nil
	}
	if len(imap) != nd {
		return nil, fmt.Errorf("%w: imap rank %d for request rank %d", nctype.ErrInvalidArg, len(imap), nd)
	}
	if nd == 0 {
		return []mpitype.Segment{{Off: 0, Len: 1}}, nil
	}
	for _, m := range imap {
		if m < 1 {
			return nil, fmt.Errorf("%w: imap entries must be positive", nctype.ErrInvalidArg)
		}
	}
	for _, c := range count {
		if c == 0 {
			return nil, nil
		}
	}
	last := nd - 1
	outer := int64(1)
	for i := 0; i < last; i++ {
		outer *= count[i]
	}
	var segs []mpitype.Segment
	idx := make([]int64, last)
	for o := int64(0); o < outer; o++ {
		base := int64(0)
		for i := 0; i < last; i++ {
			base += idx[i] * imap[i]
		}
		if imap[last] == 1 {
			segs = appendMerge(segs, mpitype.Segment{Off: base, Len: count[last]})
		} else {
			for k := int64(0); k < count[last]; k++ {
				segs = appendMerge(segs, mpitype.Segment{Off: base + k*imap[last], Len: 1})
			}
		}
		for i := last - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < count[i] {
				break
			}
			idx[i] = 0
		}
	}
	return segs, nil
}
