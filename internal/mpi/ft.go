package mpi

// ULFM-style rank-failure tolerance (DESIGN.md §8). PR 2's error agreement
// assumes every rank survives to vote; a rank that crashes outright leaves
// its peers blocked in recv forever. This file adds the three ULFM
// primitives on top of the simulated runtime:
//
//   - a deadline-based failure detector: with PNETCDF_FT_TIMEOUT set (or
//     RunFT), a rank blocked in a point-to-point or collective receive for
//     longer than the deadline while a member of its communicator is dead
//     REVOKES the communicator. Detection is wall-clock (the virtual clock
//     does not advance while a rank is blocked, which is exactly the
//     condition being detected). A background ticker wakes blocked
//     receivers so deadlines fire without any message traffic.
//
//   - revocation: once a communicator is revoked, every pending and future
//     operation on it panics *ErrRevoked carrying the same failed-rank set
//     on every survivor. The set is agreed through shared memory (the
//     world's revocation table), not a collective, so agreement itself can
//     never block on the dead. mpiio catches the panic at the collective
//     I/O boundary via CatchRevoked.
//
//   - Comm.AgreeFT + Comm.Shrink: a survivor-only reduction usable on the
//     revoked communicator (binomial trees over the dense survivor list,
//     contexts in a reserved band) and a dense survivor communicator for
//     everything afterwards.
//
// Ranks die only via Comm.Die (the fault injector's KillRank calls it), so
// "dead" is always ground truth here; the deadline models the detection
// delay a real ULFM runtime pays, not uncertainty about liveness. With the
// detector disabled a dead rank hangs its peers exactly like real MPI —
// the fault suites run under go test -timeout for that reason.
//
// Honest limits: a single failure per communicator generation is detected
// and agreed symmetrically. Cascading failures (a second rank dying during
// revocation handling) are best-effort: no survivor hangs, but ranks may
// observe different generations and the run degrades to a world abort
// rather than a clean failover.

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pnetcdf/internal/iostat"
	"pnetcdf/internal/span"
)

// FTTimeoutEnv names the environment variable that arms the failure
// detector for Run: a Go duration ("250ms", "2s"). Empty, unparsable, or
// non-positive values leave detection off (today's semantics: a dead rank
// hangs its peers).
const FTTimeoutEnv = "PNETCDF_FT_TIMEOUT"

// ftCtxBit marks a message context as belonging to the post-revocation
// agreement band: bit 30 set, the revocation generation in bits 24-29, and
// a per-generation sequence in bits 0-23. Regular collectives would need
// 2^30 operations on one communicator to collide with the band.
const (
	ftCtxBit    = int64(1) << 30
	ftCtxGenSh  = 24
	ftCtxGenMax = 0x3F
	ftCtxSeqMax = 0xFFFFFF
)

// ErrRevoked is the error carried by the panic every operation on a revoked
// communicator raises: the communicator lost a member and can no longer
// complete collectives. Failed holds the communicator ranks of the dead
// members (sorted); Gen is the revocation generation (it grows if further
// members die). Catch it at a failover boundary with CatchRevoked.
type ErrRevoked struct {
	Failed []int
	Gen    int
}

func (e *ErrRevoked) Error() string {
	return fmt.Sprintf("mpi: communicator revoked (failed ranks %v, generation %d)", e.Failed, e.Gen)
}

// AsRevoked unwraps err to its *ErrRevoked, if it is one.
func AsRevoked(err error) (*ErrRevoked, bool) {
	var rv *ErrRevoked
	if errors.As(err, &rv) {
		return rv, true
	}
	return nil, false
}

// CatchRevoked runs fn, converting an *ErrRevoked panic into an error
// return. Every other panic (including ErrAborted) propagates. It is the
// boundary at which mpiio's failover catches a revocation raised deep
// inside a collective.
func CatchRevoked(fn func() error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if rv, ok := rec.(*ErrRevoked); ok {
				err = rv
				return
			}
			panic(rec)
		}
	}()
	return fn()
}

// ErrWorldFT is returned by FT entry points when the world was started
// without a failure detector.
var ErrWorldFT = errors.New("mpi: world has no failure detector (set PNETCDF_FT_TIMEOUT or use RunFT)")

// rankKilled is the panic payload of Comm.Die: a simulated rank crash. Run
// treats it as a benign exit of that one goroutine — no world abort, no
// error — leaving its peers to detect the silence.
type rankKilled struct {
	rank   int // world rank
	reason error
}

// ftState is the world's failure-tolerance state; nil when detection is
// off.
type ftState struct {
	timeout time.Duration
	dead    []atomic.Bool // by world rank
	deadN   atomic.Int32  // fast-path gate: number of dead ranks
	revGen  atomic.Int64  // fast-path gate: total revocations issued

	mu      sync.Mutex
	revoked map[int64]*revokeState // commID -> revocation
}

// revokeState is one communicator's revocation: the agreed failed set and
// the shrunken-communicator IDs allocated per generation (shared-memory
// agreement — every survivor reads the same ID without messaging).
type revokeState struct {
	failed []int // world ranks, sorted
	gen    int
	shrunk map[int]int64 // generation -> commID of the Shrink result
}

// revokeInfo is an immutable snapshot of a revocation, safe to use without
// the ftState lock.
type revokeInfo struct {
	failed []int // world ranks, sorted
	gen    int
}

func newFTState(n int, timeout time.Duration) *ftState {
	return &ftState{
		timeout: timeout,
		dead:    make([]atomic.Bool, n),
		revoked: map[int64]*revokeState{},
	}
}

// ftTimeoutFromEnv parses PNETCDF_FT_TIMEOUT; zero means detection off.
func ftTimeoutFromEnv() time.Duration {
	v := os.Getenv(FTTimeoutEnv)
	if v == "" {
		return 0
	}
	d, err := time.ParseDuration(v)
	if err != nil || d <= 0 {
		return 0
	}
	return d
}

// FTEnabled reports whether the world runs a failure detector.
func (c *Comm) FTEnabled() bool { return c.world.ft != nil }

// Die terminates the calling rank mid-operation, simulating a crash: the
// rank's goroutine unwinds (deferred cleanups run, matching a real
// process's closed descriptors) and never communicates again. With the
// failure detector armed its peers revoke the communicators it belonged
// to; without it they hang, like real MPI. Never returns.
func (c *Comm) Die(reason error) {
	wr := c.group[c.rank]
	if ft := c.world.ft; ft != nil {
		if !ft.dead[wr].Swap(true) {
			ft.deadN.Add(1)
		}
		// Wake every blocked receiver: their deadline countdown starts at
		// their own wait start, but an early check costs nothing.
		c.world.broadcastAll()
	}
	panic(rankKilled{rank: wr, reason: reason})
}

// broadcastAll wakes every rank blocked in recv (deadline checks and
// revocation discovery). Never called with any box lock held.
func (w *World) broadcastAll() {
	for _, b := range w.boxes {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// revoke merges failedWorld into commID's revocation, bumping the
// generation only when the failed set actually grew, and wakes all ranks
// so they observe it. Idempotent: concurrent detectors of the same death
// merge to one generation.
func (w *World) revoke(commID int64, failedWorld []int) {
	ft := w.ft
	ft.mu.Lock()
	rs := ft.revoked[commID]
	if rs == nil {
		rs = &revokeState{shrunk: map[int]int64{}}
		ft.revoked[commID] = rs
	}
	grew := false
	for _, wr := range failedWorld {
		if !containsInt(rs.failed, wr) {
			rs.failed = append(rs.failed, wr)
			grew = true
		}
	}
	if grew {
		sort.Ints(rs.failed)
		rs.gen++
		ft.revGen.Add(1)
	}
	ft.mu.Unlock()
	if grew {
		if cc := w.ccheck; cc != nil {
			cc.purgeComm(commID)
		}
		w.broadcastAll()
	}
}

// revokedInfo snapshots the calling communicator's revocation state.
func (c *Comm) revokedInfo() (revokeInfo, bool) {
	ft := c.world.ft
	if ft == nil || ft.revGen.Load() == 0 {
		return revokeInfo{}, false
	}
	ft.mu.Lock()
	rs := ft.revoked[c.ctx>>32]
	if rs == nil {
		ft.mu.Unlock()
		return revokeInfo{}, false
	}
	ri := revokeInfo{failed: append([]int(nil), rs.failed...), gen: rs.gen}
	ft.mu.Unlock()
	return ri, true
}

// Revoked reports whether the communicator has been revoked. After it
// returns true, only AgreeFT and Shrink complete on this communicator;
// everything else panics *ErrRevoked (see the nclint ftagree rule).
func (c *Comm) Revoked() bool {
	_, ok := c.revokedInfo()
	return ok
}

// revokedErr builds the caller-facing *ErrRevoked: failed world ranks
// translated to communicator ranks.
func (c *Comm) revokedErr(ri revokeInfo) *ErrRevoked {
	var failed []int
	for cr, wr := range c.group {
		if containsInt(ri.failed, wr) {
			failed = append(failed, cr)
		}
	}
	return &ErrRevoked{Failed: failed, Gen: ri.gen}
}

// panicRevoked raises the revocation on the calling rank, recording the
// detection (ft_failures_detected + an ft_detect span) once per generation.
func (c *Comm) panicRevoked(ri revokeInfo) {
	if c.ftObserved < ri.gen {
		c.ftObserved = ri.gen
		c.proc.stats.Add(iostat.FTFailuresDetected, 1)
		c.proc.spans.Record(span.FTDetect, ri.gen, c.proc.clock, c.proc.clock, 0)
	}
	panic(c.revokedErr(ri))
}

// ftCheckRevoked panics the revocation if the communicator is revoked (or,
// in pinned mode, revoked beyond the pinned generation). The fast path is
// one atomic load.
func (c *Comm) ftCheckRevoked(pinned *revokeInfo) {
	ri, ok := c.revokedInfo()
	if !ok {
		return
	}
	if pinned != nil && ri.gen <= pinned.gen {
		return // the revocation the caller is already handling
	}
	c.panicRevoked(ri)
}

// deadInGroup returns the dead members of the group as world ranks.
// Fast path: one atomic load when nobody has died.
func (c *Comm) deadInGroup() []int {
	ft := c.world.ft
	if ft.deadN.Load() == 0 {
		return nil
	}
	var dead []int
	for _, wr := range c.group {
		if ft.dead[wr].Load() {
			dead = append(dead, wr)
		}
	}
	return dead
}

// ftCheckDeadline is the detector: called with the receiver's box lock
// held, it revokes the communicator once the rank has been blocked past the
// deadline while a member (beyond any pinned failed set) is dead. Returns
// true if it revoked (the caller re-loops and the revocation check fires).
// The box lock is dropped around the revocation broadcast — holding one box
// while locking all of them would deadlock against a concurrent revoker.
func (c *Comm) ftCheckDeadline(box *mailbox, waitStart time.Time, pinned *revokeInfo) bool {
	ft := c.world.ft
	dead := c.deadInGroup()
	if pinned != nil {
		filtered := dead[:0]
		for _, wr := range dead {
			if !containsInt(pinned.failed, wr) {
				filtered = append(filtered, wr)
			}
		}
		dead = filtered
	}
	if len(dead) == 0 || time.Since(waitStart) < ft.timeout {
		return false
	}
	box.mu.Unlock()
	c.world.revoke(c.ctx>>32, dead)
	box.mu.Lock()
	return true
}

// nextFTCtx reserves a message context in the post-revocation band for
// generation gen. The per-generation sequence restarts at the generation
// boundary, so all survivors of the same revocation stay in lockstep even
// if their pre-revocation positions differed.
func (c *Comm) nextFTCtx(gen int) int64 {
	if c.ftGen != gen {
		c.ftGen, c.ftSeq = gen, 0
	}
	c.ftSeq++
	return c.ctx | ftCtxBit | int64(gen&ftCtxGenMax)<<ftCtxGenSh | (c.ftSeq & ftCtxSeqMax)
}

// survivors returns the communicator ranks not in the failed world-rank
// set, in rank order (dense survivor indexing for AgreeFT's trees and for
// Shrink's group).
func (c *Comm) survivors(failedWorld []int) []int {
	var surv []int
	for cr, wr := range c.group {
		if !containsInt(failedWorld, wr) {
			surv = append(surv, cr)
		}
	}
	return surv
}

// AgreeFT is the survivor-safe elementwise reduction: on a healthy
// communicator it is exactly AllreduceI64; on a revoked one it reduces over
// the survivors of the agreed failed set using binomial trees indexed by
// dense survivor position, with message contexts in the reserved
// post-revocation band — it can never wait on a dead rank. It is the only
// collective (besides Shrink) that completes after revocation; failover
// protocols agree their resume point through it.
func (c *Comm) AgreeFT(vals []int64, op Op) []int64 {
	ri, ok := c.revokedInfo()
	if !ok {
		return c.AllreduceI64(vals, op)
	}
	surv := c.survivors(ri.failed)
	me := -1
	for i, cr := range surv {
		if cr == c.rank {
			me = i
		}
	}
	if me < 0 {
		// A dead rank cannot call anything, so this is a caller bug.
		c.Abort(fmt.Errorf("mpi: AgreeFT by failed rank %d", c.rank))
	}
	c.proc.stats.Add(iostat.MPICollectives, 1)
	p := len(surv)
	acc := append([]int64(nil), vals...)
	// Binomial fan-in to survivor 0 over dense survivor indices.
	ctx := c.nextFTCtx(ri.gen)
	for mask := 1; mask < p; mask <<= 1 {
		if me&mask != 0 {
			c.sendFT(surv[me&^mask], tagFanIn, ctx, EncodeI64s(acc))
			acc = nil
			break
		}
		if child := me | mask; child < p {
			b := DecodeI64s(c.recvFT(surv[child], tagFanIn, ctx, ri).data)
			for i := range acc {
				acc[i] = reduceI64(op, acc[i], b[i])
			}
		}
	}
	// Binomial fan-out of the result from survivor 0.
	ctx = c.nextFTCtx(ri.gen)
	recvMask := 0
	for mask := 1; mask < p; mask <<= 1 {
		if me&mask != 0 {
			recvMask = mask
			break
		}
	}
	if recvMask != 0 {
		acc = DecodeI64s(c.recvFT(surv[me&^recvMask], tagFanOut, ctx, ri).data)
	}
	top := recvMask
	if me == 0 {
		top = 1
		for top < p {
			top <<= 1
		}
	}
	for mask := top >> 1; mask >= 1; mask >>= 1 {
		if child := me | mask; child != me && child < p {
			c.sendFT(surv[child], tagFanOut, ctx, EncodeI64s(acc))
		}
	}
	return acc
}

// Shrink returns the dense survivor communicator of a revoked
// communicator: the survivors in rank order, renumbered from 0, under a
// fresh message context. The new communicator ID is agreed through the
// revocation table (one allocation per generation, every survivor reads
// the same ID), so Shrink — like AgreeFT — cannot block on the dead.
func (c *Comm) Shrink() (*Comm, error) {
	ft := c.world.ft
	if ft == nil {
		return nil, ErrWorldFT
	}
	ri, ok := c.revokedInfo()
	if !ok {
		return nil, errors.New("mpi: Shrink on a communicator that is not revoked")
	}
	ft.mu.Lock()
	rs := ft.revoked[c.ctx>>32]
	id := rs.shrunk[ri.gen]
	if id == 0 {
		c.world.mu.Lock()
		c.world.commSeq++
		id = c.world.commSeq
		c.world.mu.Unlock()
		rs.shrunk[ri.gen] = id
	}
	ft.mu.Unlock()
	surv := c.survivors(ri.failed)
	group := make([]int, len(surv))
	myRank := -1
	for i, cr := range surv {
		group[i] = c.group[cr]
		if cr == c.rank {
			myRank = i
		}
	}
	if myRank < 0 {
		return nil, fmt.Errorf("mpi: Shrink by failed rank %d", c.rank)
	}
	c.proc.stats.Add(iostat.FTCommShrinks, 1)
	c.proc.spans.Record(span.FTShrink, ri.gen, c.proc.clock, c.proc.clock, 0)
	return &Comm{world: c.world, proc: c.proc, rank: myRank, group: group, ctx: id << 32}, nil
}

// sendFT delivers a post-revocation message: no revocation check (the
// caller is the revocation handler), and sends to dead ranks are dropped
// instead of queued.
func (c *Comm) sendFT(dst, tag int, ctx int64, data []byte) {
	c.sendCore(dst, tag, ctx, data, true)
}

// recvFT receives in the post-revocation band on behalf of a handler
// pinned to revocation ri: only a revocation beyond ri.gen (a further
// death) unwinds it.
func (c *Comm) recvFT(src, tag int, ctx int64, ri revokeInfo) message {
	return c.recvCore(src, tag, ctx, &ri)
}

func containsInt(sorted []int, v int) bool {
	for _, x := range sorted {
		if x == v {
			return true
		}
	}
	return false
}
