package mpi

import (
	"fmt"
	"sync"
)

// Runtime collective-sequence checking, the dynamic complement of nclint's
// static collsym checker (internal/analysis): MPI requires every member of a
// communicator to call collective operations in the same order, and a
// violation normally shows up as a hang (one rank waits in a Barrier for a
// peer that is inside a Bcast) or, worse, as one collective silently
// consuming another's messages, since both derive the same context from the
// lockstep sequence counter.
//
// With PNETCDF_CHECK_COLLECTIVES=1 in the environment, every collective
// entry registers its operation name under its context (commID<<32 | seq) in
// a world-level table before any message moves. The first rank to arrive
// records its op; any rank arriving at the same context with a different op
// aborts the whole world with an error naming both ranks and both
// operations — a diagnosis instead of a deadlock. Off by default: the check
// costs a map operation under a mutex per collective per rank.
const collCheckEnv = "PNETCDF_CHECK_COLLECTIVES"

// collCheck is the world-level registry of in-flight collective operations.
type collCheck struct {
	mu  sync.Mutex
	ops map[int64]*collOp
}

type collOp struct {
	name string
	rank int // communicator rank of the first arrival
	seen int
}

func newCollCheck() *collCheck { return &collCheck{ops: map[int64]*collOp{}} }

// record notes that the calling rank entered collective op under context
// ctx, aborting the world on a name mismatch. Entries are dropped once all
// members of the communicator have checked in, so the table stays bounded by
// the number of concurrently in-flight collectives.
func (cc *collCheck) record(c *Comm, ctx int64, op string) {
	cc.mu.Lock()
	e := cc.ops[ctx]
	if e == nil {
		cc.ops[ctx] = &collOp{name: op, rank: c.rank, seen: 1}
		cc.mu.Unlock()
		return
	}
	if e.name != op {
		firstName, firstRank := e.name, e.rank
		cc.mu.Unlock()
		c.Abort(fmt.Errorf(
			"mpi: collective sequence mismatch on communicator %d, op %d: rank %d called %s but rank %d called %s (all members must call collectives in the same order)",
			ctx>>32, ctx&0x7FFFFFFF, firstRank, firstName, c.rank, op))
	}
	e.seen++
	if e.seen == c.Size() {
		delete(cc.ops, ctx)
	}
	cc.mu.Unlock()
}

// purgeComm drops every in-flight registration of communicator commID.
//
// The registry's bounded-size argument assumes every member of a
// communicator eventually checks in; a rank that dies (Comm.Die) never
// does, so each collective it missed would leave a permanent entry —
// worse, after a failover the survivors' replay on the shrunken
// communicator is counted against a smaller Size, while the stale entries
// of the revoked communicator could only be freed by a ghost. Revocation
// therefore purges the revoked communicator's entries wholesale; its
// sequence is over. Entries on other communicators that also contained the
// dead rank but were never revoked (nobody touched them again) still leak
// until the world ends — a bounded, documented cost of the audit trade-off
// rather than tracking full membership per entry.
func (cc *collCheck) purgeComm(commID int64) {
	cc.mu.Lock()
	for ctx := range cc.ops {
		if ctx>>32 == commID {
			delete(cc.ops, ctx)
		}
	}
	cc.mu.Unlock()
}
