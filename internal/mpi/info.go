package mpi

import (
	"sort"
	"strconv"
)

// Info is a set of (key, value) string hints, mirroring MPI_Info. A nil
// *Info behaves like MPI_INFO_NULL: all lookups miss.
type Info struct {
	kv map[string]string
}

// NewInfo returns an empty hint set.
func NewInfo() *Info { return &Info{kv: map[string]string{}} }

// Set stores a hint, replacing any previous value.
func (i *Info) Set(key, value string) *Info {
	if i.kv == nil {
		i.kv = map[string]string{}
	}
	i.kv[key] = value
	return i
}

// Get returns the value for key and whether it was present.
func (i *Info) Get(key string) (string, bool) {
	if i == nil || i.kv == nil {
		return "", false
	}
	v, ok := i.kv[key]
	return v, ok
}

// GetInt parses the hint as an integer, returning def when absent or
// malformed (hints are advisory; malformed ones are ignored, as in ROMIO).
func (i *Info) GetInt(key string, def int64) int64 {
	s, ok := i.Get(key)
	if !ok {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return def
	}
	return v
}

// GetBool interprets "true"/"enable"/"1" as true and "false"/"disable"/"0"
// as false, returning def otherwise.
func (i *Info) GetBool(key string, def bool) bool {
	s, ok := i.Get(key)
	if !ok {
		return def
	}
	switch s {
	case "true", "enable", "1", "yes":
		return true
	case "false", "disable", "0", "no":
		return false
	}
	return def
}

// Keys returns the hint keys in sorted order.
func (i *Info) Keys() []string {
	if i == nil {
		return nil
	}
	keys := make([]string, 0, len(i.kv))
	for k := range i.kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clone copies the hint set; a nil receiver yields an empty set.
func (i *Info) Clone() *Info {
	n := NewInfo()
	if i != nil {
		for k, v := range i.kv {
			n.kv[k] = v
		}
	}
	return n
}
