// Package mpi is an in-process simulation of the MPI message-passing
// runtime: ranks are goroutines, point-to-point messages travel over
// tag-matched mailboxes, and the usual collectives (Barrier, Bcast, Reduce,
// Allreduce, Gather(v), Allgather(v), Scatter(v), Alltoall(v), Scan) are
// implemented on top of point-to-point messaging with tree and linear
// algorithms, the way a real MPI library layers them.
//
// # Virtual time
//
// Every rank carries a virtual clock (float64 seconds). Sending a message
// stamps it with the sender's clock; receiving advances the receiver's clock
// to max(local, sendTime + latency + bytes/bandwidth). Collectives therefore
// synchronize clocks the way real collectives synchronize processes. The
// parallel file system (internal/pfs) uses the same convention, so an entire
// parallel I/O benchmark runs under one coherent simulated timeline while
// the data movement itself is performed for real, byte for byte.
//
// The paper's experiments ran on IBM SP-2 systems; this package is the
// substitution for that hardware (see DESIGN.md §2).
package mpi

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"pnetcdf/internal/iostat"
	"pnetcdf/internal/span"
)

// AnySource matches a message from any rank, like MPI_ANY_SOURCE.
const AnySource = -1

// AnyTag matches any user tag, like MPI_ANY_TAG.
const AnyTag = -1

// NetConfig describes the simulated interconnect.
type NetConfig struct {
	// Latency is the one-way message latency in seconds.
	Latency float64
	// Bandwidth is the per-link bandwidth in bytes/second.
	Bandwidth float64
	// SendOverhead is the CPU time a sender spends injecting a message.
	SendOverhead float64
}

// DefaultNet is an SP-class switch: ~20 us latency, ~350 MB/s links.
func DefaultNet() NetConfig {
	return NetConfig{Latency: 20e-6, Bandwidth: 350e6, SendOverhead: 2e-6}
}

type message struct {
	src     int   // sender's rank within the communicator
	tag     int   // user tag, or the internal collective tag
	ctx     int64 // communicator/collective context
	data    []byte
	arrival float64 // virtual time the message is available at the receiver
}

// mailbox is one world rank's incoming message queue with tag matching.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []message
	aborted bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// World is one simulated MPI job: a fixed set of ranks, their mailboxes and
// the interconnect.
type World struct {
	size  int
	net   NetConfig
	boxes []*mailbox

	mu       sync.Mutex
	abortErr error
	commSeq  int64

	// ccheck is the collective-sequence registry; nil unless
	// PNETCDF_CHECK_COLLECTIVES=1 (see collcheck.go).
	ccheck *collCheck

	// ft is the failure-detector state; nil (the default) keeps today's
	// semantics where a dead rank hangs its peers (see ft.go).
	ft *ftState
}

// ErrAborted is returned by operations on a world where some rank called
// Abort or returned an error.
var ErrAborted = errors.New("mpi: world aborted")

// Proc is the per-rank execution context: its identity in the world and its
// virtual clock.
type Proc struct {
	world *World
	rank  int // world rank
	clock float64

	// stats and trace are the rank's iostat collectors; nil (the default)
	// disables collection at zero cost. Harnesses install them right after
	// Run hands out the world communicator, and every layer above reaches
	// them through the communicator.
	stats *iostat.Stats
	trace *iostat.Trace

	// spans is the rank's hierarchical span recorder (DESIGN.md §11); nil
	// (the default) keeps the instrumented pipeline allocation-free.
	spans *span.Recorder
}

// SetStats installs (or, with nil, removes) the rank's statistics
// collector.
func (p *Proc) SetStats(s *iostat.Stats) { p.stats = s }

// Stats returns the rank's statistics collector (nil when disabled).
func (p *Proc) Stats() *iostat.Stats { return p.stats }

// SetTrace installs the rank's event trace; one *iostat.Trace is normally
// shared by all ranks of a run.
func (p *Proc) SetTrace(t *iostat.Trace) { p.trace = t }

// Trace returns the rank's event trace (nil when disabled).
func (p *Proc) Trace() *iostat.Trace { return p.trace }

// SetSpans installs (or, with nil, removes) the rank's span recorder.
func (p *Proc) SetSpans(r *span.Recorder) { p.spans = r }

// Spans returns the rank's span recorder (nil when disabled).
func (p *Proc) Spans() *span.Recorder { return p.spans }

// Clock returns the rank's current virtual time in seconds.
func (p *Proc) Clock() float64 { return p.clock }

// SetClock sets the rank's virtual time (harnesses reset it between measured
// phases).
func (p *Proc) SetClock(t float64) { p.clock = t }

// Advance adds dt seconds of local computation to the rank's clock.
func (p *Proc) Advance(dt float64) {
	if dt > 0 {
		p.clock += dt
	}
}

// WorldRank returns the rank's position in the world.
func (p *Proc) WorldRank() int { return p.rank }

// Comm is a communicator: an ordered group of ranks with a private message
// context, mirroring MPI_Comm. Each rank holds its own *Comm value.
type Comm struct {
	world *World
	proc  *Proc
	rank  int   // this process's rank within the communicator
	group []int // world ranks of the members, indexed by comm rank
	ctx   int64 // context base: commID << 32
	seq   int64 // per-rank collective sequence; in lockstep across members

	// Post-revocation state (ft.go): the highest revocation generation this
	// rank has observed (for once-per-generation detection accounting) and
	// the per-generation sequence of the reserved agreement context band.
	ftObserved int
	ftGen      int
	ftSeq      int64
}

// Run executes fn on n simulated ranks and blocks until all complete. Each
// rank receives the world communicator. The first non-nil error (or panic)
// aborts the world and is returned. With PNETCDF_FT_TIMEOUT set to a
// positive duration the failure detector is armed (ft.go).
func Run(n int, net NetConfig, fn func(*Comm) error) error {
	return runWorld(n, net, ftTimeoutFromEnv(), fn)
}

// RunFT is Run with the failure detector armed at an explicit deadline,
// for tests that must not depend on ambient environment variables.
func RunFT(n int, net NetConfig, timeout time.Duration, fn func(*Comm) error) error {
	return runWorld(n, net, timeout, fn)
}

func runWorld(n int, net NetConfig, ftTimeout time.Duration, fn func(*Comm) error) error {
	if n < 1 {
		return fmt.Errorf("mpi: invalid world size %d", n)
	}
	w := &World{size: n, net: net, boxes: make([]*mailbox, n)}
	if os.Getenv(collCheckEnv) == "1" {
		w.ccheck = newCollCheck()
	}
	if ftTimeout > 0 {
		w.ft = newFTState(n, ftTimeout)
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	group := make([]int, n)
	for i := range group {
		group[i] = i
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if err, ok := rec.(error); ok && errors.Is(err, ErrAborted) {
						return // unwound by another rank's abort
					}
					if _, ok := rec.(rankKilled); ok {
						// Simulated crash (Comm.Die): this rank just stops.
						// Its peers hang or — with the detector armed —
						// revoke and fail over; either way the world's fate
						// is theirs to decide, not an abort.
						return
					}
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, rec)
					w.abort(errs[rank])
				}
			}()
			proc := &Proc{world: w, rank: rank}
			comm := &Comm{world: w, proc: proc, rank: rank, group: group}
			if err := fn(comm); err != nil {
				errs[rank] = err
				w.abort(err)
			}
		}(r)
	}
	var tickStop chan struct{}
	var tickWG sync.WaitGroup
	if w.ft != nil {
		// The detector's heartbeat: wake blocked receivers so wall-clock
		// deadlines fire even with no message traffic. Period well under
		// the deadline, clamped so tiny test timeouts do not spin.
		period := w.ft.timeout / 4
		if period < time.Millisecond {
			period = time.Millisecond
		}
		if period > 50*time.Millisecond {
			period = 50 * time.Millisecond
		}
		tickStop = make(chan struct{})
		tickWG.Add(1)
		go func() {
			defer tickWG.Done()
			t := time.NewTicker(period)
			defer t.Stop()
			for {
				select {
				case <-tickStop:
					return
				case <-t.C:
					w.broadcastAll()
				}
			}
		}()
	}
	wg.Wait()
	if tickStop != nil {
		close(tickStop)
		tickWG.Wait()
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.abortErr
}

func (w *World) abort(err error) {
	w.mu.Lock()
	if w.abortErr == nil {
		w.abortErr = err
	}
	w.mu.Unlock()
	for _, b := range w.boxes {
		b.mu.Lock()
		b.aborted = true
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// Abort terminates the whole world with the given error, like MPI_Abort.
// It panics on the calling rank to unwind; Run reports err.
func (c *Comm) Abort(err error) {
	c.world.abort(err)
	panic(ErrAborted)
}

// Rank returns the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of processes in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// Proc exposes the per-rank context (virtual clock).
func (c *Comm) Proc() *Proc { return c.proc }

// Clock returns the rank's virtual time.
func (c *Comm) Clock() float64 { return c.proc.clock }

// transferTime is the virtual duration for nbytes over the interconnect.
func (w *World) transferTime(nbytes int) float64 {
	if w.net.Bandwidth <= 0 {
		return w.net.Latency
	}
	return w.net.Latency + float64(nbytes)/w.net.Bandwidth
}

// send delivers data from the calling rank to comm rank dst under context
// ctx. The payload is copied, making sends eager and deadlock-free.
func (c *Comm) send(dst, tag int, ctx int64, data []byte) {
	c.sendCore(dst, tag, ctx, data, false)
}

// sendCore implements send. In ftMode (post-revocation traffic) the
// revocation check is skipped — the caller IS the revocation handler.
// Either way a send to a dead rank is dropped: nobody will ever read it,
// and a crash between the peer's send and our delivery is exactly the
// reordering a real network exhibits.
func (c *Comm) sendCore(dst, tag int, ctx int64, data []byte, ftMode bool) {
	if dst < 0 || dst >= len(c.group) {
		c.Abort(fmt.Errorf("mpi: send to invalid rank %d (size %d)", dst, len(c.group)))
	}
	if ft := c.world.ft; ft != nil {
		if !ftMode {
			c.ftCheckRevoked(nil)
		}
		if ft.deadN.Load() != 0 && ft.dead[c.group[dst]].Load() {
			c.proc.clock += c.world.net.SendOverhead
			return
		}
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.proc.stats.Add(iostat.MPIMsgsSent, 1)
	c.proc.stats.Add(iostat.MPIBytesSent, int64(len(data)))
	arrival := c.proc.clock + c.world.transferTime(len(data))
	c.proc.clock += c.world.net.SendOverhead
	box := c.world.boxes[c.group[dst]]
	box.mu.Lock()
	box.queue = append(box.queue, message{src: c.rank, tag: tag, ctx: ctx, data: cp, arrival: arrival})
	box.cond.Signal()
	box.mu.Unlock()
}

// recv blocks until a message matching (src, tag, ctx) is available and
// returns it, advancing the virtual clock to the arrival time. Wildcards
// (AnySource/AnyTag) apply to src and tag; ctx always matches exactly.
func (c *Comm) recv(src, tag int, ctx int64) message {
	return c.recvCore(src, tag, ctx, nil)
}

// recvCore implements recv. With the failure detector armed it is also the
// detection point: a revoked communicator unwinds the receive with
// *ErrRevoked (unless pinned to that same revocation generation — the
// post-revocation agreement receives through here too), and a receive
// blocked past the deadline while a group member is dead revokes the
// communicator itself. The revocation broadcast locks every mailbox, so
// the deadline path drops this rank's box lock around it.
func (c *Comm) recvCore(src, tag int, ctx int64, pinned *revokeInfo) message {
	box := c.world.boxes[c.group[c.rank]]
	box.mu.Lock()
	defer box.mu.Unlock()
	var waitStart time.Time
	for {
		if box.aborted {
			panic(ErrAborted)
		}
		if c.world.ft != nil {
			c.ftCheckRevoked(pinned)
		}
		for i, m := range box.queue {
			if m.ctx != ctx {
				continue
			}
			if src != AnySource && m.src != src {
				continue
			}
			if tag != AnyTag && m.tag != tag {
				continue
			}
			box.queue = append(box.queue[:i], box.queue[i+1:]...)
			c.proc.clock = math.Max(c.proc.clock, m.arrival)
			return m
		}
		if c.world.ft != nil {
			if waitStart.IsZero() {
				waitStart = time.Now()
			}
			if c.ftCheckDeadline(box, waitStart, pinned) {
				continue // revocation raised; the check above fires next
			}
		}
		box.cond.Wait()
	}
}

// Send transmits data to rank dst with a user tag (>= 0).
func (c *Comm) Send(dst, tag int, data []byte) {
	if tag < 0 {
		c.Abort(fmt.Errorf("mpi: negative user tag %d", tag))
	}
	c.send(dst, tag, c.ctx, data)
}

// Recv blocks for a message from src (or AnySource) with the given tag (or
// AnyTag) and returns its payload and actual source rank.
func (c *Comm) Recv(src, tag int) ([]byte, int) {
	m := c.recv(src, tag, c.ctx)
	return m.data, m.src
}

// Sendrecv performs a simultaneous send and receive; sends are eager so the
// head-to-head exchange cannot deadlock.
func (c *Comm) Sendrecv(dst, sendTag int, sendData []byte, src, recvTag int) ([]byte, int) {
	c.Send(dst, sendTag, sendData)
	return c.Recv(src, recvTag)
}

// nextOpCtx reserves the message context for one collective operation named
// op. All ranks call collectives on a communicator in the same order (an MPI
// requirement), so the per-rank sequence counters stay in lockstep. The
// low 32 bits hold the sequence, the high bits the communicator ID, keeping
// collective traffic apart from user point-to-point traffic (sequence 0).
// Under PNETCDF_CHECK_COLLECTIVES=1 the (context, op) pair is registered in
// the world's sequence registry, which aborts on a cross-rank mismatch
// instead of letting the run deadlock (collcheck.go).
func (c *Comm) nextOpCtx(op string) int64 {
	if c.world.ft != nil {
		// A collective on a revoked communicator can never complete; fail
		// it before any message moves (recv would catch it anyway, but
		// root-only send patterns like Scatter would first leak sends).
		c.ftCheckRevoked(nil)
	}
	c.seq++
	c.proc.stats.Add(iostat.MPICollectives, 1)
	ctx := c.ctx | (c.seq & 0x7FFFFFFF)
	if cc := c.world.ccheck; cc != nil {
		cc.record(c, ctx, op)
	}
	return ctx
}

// newCommID allocates a world-unique communicator ID on rank 0 of c and
// broadcasts it.
func (c *Comm) newCommID() int64 {
	var id int64
	if c.rank == 0 {
		c.world.mu.Lock()
		c.world.commSeq++
		id = c.world.commSeq
		c.world.mu.Unlock()
	}
	return decodeInt64(c.Bcast(0, encodeInt64(id)))
}

// Dup returns a communicator with the same group but an isolated message
// context, like MPI_Comm_dup. Collective over the communicator.
func (c *Comm) Dup() *Comm {
	id := c.newCommID()
	return &Comm{
		world: c.world, proc: c.proc, rank: c.rank,
		group: append([]int(nil), c.group...),
		ctx:   id << 32,
	}
}

// Split partitions the communicator by color, ordering members of each new
// communicator by (key, old rank), like MPI_Comm_split. Collective.
func (c *Comm) Split(color, key int) *Comm {
	// Gather (color, key) from everyone; each rank then derives the same
	// partition deterministically from the shared view.
	mine := append(encodeInt64(int64(color)), encodeInt64(int64(key))...)
	all := c.Allgather(mine)
	type member struct{ color, key, rank int }
	members := make([]member, c.Size())
	for r := 0; r < c.Size(); r++ {
		b := all[r]
		members[r] = member{
			color: int(decodeInt64(b[:8])),
			key:   int(decodeInt64(b[8:16])),
			rank:  r,
		}
	}
	// Distinct colors in sorted order give every subgroup a stable index.
	colorSet := map[int]bool{}
	for _, m := range members {
		colorSet[m.color] = true
	}
	var colors []int
	for col := range colorSet {
		colors = append(colors, col)
	}
	for i := 1; i < len(colors); i++ { // insertion sort; few colors
		for j := i; j > 0 && colors[j-1] > colors[j]; j-- {
			colors[j-1], colors[j] = colors[j], colors[j-1]
		}
	}
	// Rank 0 allocates one contiguous block of communicator IDs for all
	// subgroups; everyone derives their subgroup's ID from the block base.
	var base int64
	if c.rank == 0 {
		c.world.mu.Lock()
		c.world.commSeq += int64(len(colors))
		base = c.world.commSeq - int64(len(colors)) + 1
		c.world.mu.Unlock()
	}
	base = decodeInt64(c.Bcast(0, encodeInt64(base)))
	colorIdx := 0
	for i, col := range colors {
		if col == color {
			colorIdx = i
		}
	}
	id := base + int64(colorIdx)

	var group []int
	for _, m := range members {
		if m.color == color {
			group = append(group, m.rank)
		}
	}
	// Order by (key, old rank).
	for i := 1; i < len(group); i++ {
		for j := i; j > 0; j-- {
			a, b := group[j-1], group[j]
			if members[a].key > members[b].key || (members[a].key == members[b].key && a > b) {
				group[j-1], group[j] = group[j], group[j-1]
			} else {
				break
			}
		}
	}
	myRank := -1
	worldGroup := make([]int, len(group))
	for i, r := range group {
		worldGroup[i] = c.group[r]
		if r == c.rank {
			myRank = i
		}
	}
	return &Comm{world: c.world, proc: c.proc, rank: myRank, group: worldGroup, ctx: id << 32}
}

func encodeInt64(v int64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
	return b
}

func decodeInt64(b []byte) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v = v<<8 | int64(b[i])
	}
	return v
}
