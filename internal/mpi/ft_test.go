package mpi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// ftTestTimeout keeps detection latency low without risking flaky
// deadline fires on loaded CI machines: the detector only fires when a
// group member is genuinely dead, so a short deadline cannot
// false-positive.
const ftTestTimeout = 10 * time.Millisecond

// TestFTDieRevokesBlockedPeers is the core no-hang property: a rank dying
// mid-collective leaves every survivor with the same *ErrRevoked instead
// of a hang, and the survivors can agree, shrink, and finish on the
// survivor communicator.
func TestFTDieRevokesBlockedPeers(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		for victim := 1; victim < n; victim += 2 {
			var mu sync.Mutex
			failedSets := map[int][]int{}
			err := RunFT(n, DefaultNet(), ftTestTimeout, func(c *Comm) error {
				if c.Rank() == victim {
					c.Die(errors.New("test kill"))
				}
				cerr := CatchRevoked(func() error {
					c.AllreduceI64([]int64{int64(c.Rank())}, OpSum)
					return nil
				})
				rv, ok := AsRevoked(cerr)
				if !ok {
					return fmt.Errorf("rank %d: got %v, want ErrRevoked", c.Rank(), cerr)
				}
				mu.Lock()
				failedSets[c.Rank()] = rv.Failed
				mu.Unlock()
				// Survivor-side recovery completes post-revocation.
				sum := c.AgreeFT([]int64{int64(c.Rank())}, OpSum)[0]
				want := int64(0)
				for r := 0; r < n; r++ {
					if r != victim {
						want += int64(r)
					}
				}
				if sum != want {
					return fmt.Errorf("rank %d: AgreeFT sum %d, want %d", c.Rank(), sum, want)
				}
				nc, err := c.Shrink()
				if err != nil {
					return err
				}
				if nc.Size() != n-1 {
					return fmt.Errorf("shrunk size %d, want %d", nc.Size(), n-1)
				}
				// Ordinary collectives work on the shrunken communicator.
				if got := nc.AllreduceI64([]int64{1}, OpSum)[0]; got != int64(n-1) {
					return fmt.Errorf("shrunk Allreduce %d, want %d", got, n-1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d victim=%d: %v", n, victim, err)
			}
			if len(failedSets) != n-1 {
				t.Fatalf("n=%d victim=%d: %d survivors reported, want %d", n, victim, len(failedSets), n-1)
			}
			for r, failed := range failedSets {
				if len(failed) != 1 || failed[0] != victim {
					t.Fatalf("n=%d victim=%d: rank %d saw failed set %v", n, victim, r, failed)
				}
			}
		}
	}
}

// TestFTDieDuringPointToPoint covers the other blocking shapes: a recv
// from the dead rank and a send toward the dead rank (which is dropped,
// not queued) both resolve without hanging.
func TestFTDieDuringPointToPoint(t *testing.T) {
	err := RunFT(3, DefaultNet(), ftTestTimeout, func(c *Comm) error {
		switch c.Rank() {
		case 2:
			c.Die(errors.New("test kill"))
		case 1:
			// Recv blocked on the dead rank: must unwind as ErrRevoked.
			cerr := CatchRevoked(func() error {
				c.Recv(2, 7)
				return nil
			})
			if _, ok := AsRevoked(cerr); !ok {
				return fmt.Errorf("rank 1: got %v, want ErrRevoked", cerr)
			}
		case 0:
			// Send to the dead rank completes (dropped); the next receive
			// from a dead peer still revokes.
			c.Send(2, 7, []byte("x"))
			cerr := CatchRevoked(func() error {
				c.Recv(2, 8)
				return nil
			})
			if _, ok := AsRevoked(cerr); !ok {
				return fmt.Errorf("rank 0: got %v, want ErrRevoked", cerr)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFTOperationsAfterRevokePanic: once revoked, any regular operation on
// the communicator panics ErrRevoked — repeatedly, not just the first.
func TestFTOperationsAfterRevokePanic(t *testing.T) {
	err := RunFT(2, DefaultNet(), ftTestTimeout, func(c *Comm) error {
		if c.Rank() == 1 {
			c.Die(errors.New("test kill"))
		}
		for i := 0; i < 3; i++ {
			cerr := CatchRevoked(func() error {
				c.Barrier()
				return nil
			})
			if _, ok := AsRevoked(cerr); !ok {
				return fmt.Errorf("attempt %d: got %v, want ErrRevoked", i, cerr)
			}
		}
		if !c.Revoked() {
			return errors.New("Revoked() = false after revocation")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFTAgreeFTHealthy: with no failure, AgreeFT is AllreduceI64 on every
// communicator size and both ops used by the failover.
func TestFTAgreeFTHealthy(t *testing.T) {
	for _, n := range testSizes {
		err := RunFT(n, DefaultNet(), ftTestTimeout, func(c *Comm) error {
			got := c.AgreeFT([]int64{int64(c.Rank()), -int64(c.Rank())}, OpMin)
			if got[0] != 0 || got[1] != -int64(n-1) {
				return fmt.Errorf("AgreeFT min = %v", got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestFTShrinkErrors: Shrink demands a detector and a revocation.
func TestFTShrinkErrors(t *testing.T) {
	if err := Run(2, DefaultNet(), func(c *Comm) error {
		if _, err := c.Shrink(); !errors.Is(err, ErrWorldFT) {
			return fmt.Errorf("no-detector Shrink: %v, want ErrWorldFT", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := RunFT(2, DefaultNet(), ftTestTimeout, func(c *Comm) error {
		if _, err := c.Shrink(); err == nil {
			return errors.New("healthy Shrink succeeded, want error")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFTShrinkRanksDense: the shrunken communicator renumbers survivors
// densely in old-rank order and maps messages independently of the old
// communicator.
func TestFTShrinkRanksDense(t *testing.T) {
	const n, victim = 5, 2
	err := RunFT(n, DefaultNet(), ftTestTimeout, func(c *Comm) error {
		if c.Rank() == victim {
			c.Die(errors.New("test kill"))
		}
		cerr := CatchRevoked(func() error { c.Barrier(); return nil })
		if _, ok := AsRevoked(cerr); !ok {
			return fmt.Errorf("got %v, want ErrRevoked", cerr)
		}
		nc, err := c.Shrink()
		if err != nil {
			return err
		}
		want := c.Rank()
		if c.Rank() > victim {
			want--
		}
		if nc.Rank() != want {
			return fmt.Errorf("old rank %d: shrunk rank %d, want %d", c.Rank(), nc.Rank(), want)
		}
		// Point-to-point on the shrunken communicator.
		if nc.Rank() == 0 {
			for r := 1; r < nc.Size(); r++ {
				if got, _ := nc.Recv(r, 1); len(got) != r {
					return fmt.Errorf("shrunk recv from %d: %d bytes", r, len(got))
				}
			}
		} else {
			nc.Send(0, 1, make([]byte, nc.Rank()))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFTRunFTCleanOverhead: a fault-free world with the detector armed
// behaves identically (same results, no revocations).
func TestFTRunFTCleanOverhead(t *testing.T) {
	for _, n := range testSizes {
		err := RunFT(n, DefaultNet(), ftTestTimeout, func(c *Comm) error {
			for i := 0; i < 50; i++ {
				if got := c.AllreduceI64([]int64{1}, OpSum)[0]; got != int64(n) {
					return fmt.Errorf("Allreduce %d, want %d", got, n)
				}
			}
			if c.Revoked() {
				return errors.New("clean run revoked")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestFTEnvTimeout: Run picks the detector up from PNETCDF_FT_TIMEOUT, and
// ignores garbage.
func TestFTEnvTimeout(t *testing.T) {
	t.Setenv(FTTimeoutEnv, "25ms")
	if err := Run(2, DefaultNet(), func(c *Comm) error {
		if !c.FTEnabled() {
			return errors.New("detector off with PNETCDF_FT_TIMEOUT set")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"nonsense", "-3s", "0"} {
		t.Setenv(FTTimeoutEnv, bad)
		if err := Run(2, DefaultNet(), func(c *Comm) error {
			if c.FTEnabled() {
				return fmt.Errorf("detector on with %s=%q", FTTimeoutEnv, bad)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFTDetectorDisabledIsFree: without the env var, Run worlds carry no
// ftState at all — the hot paths stay on their pre-FT fast path.
func TestFTDetectorDisabledIsFree(t *testing.T) {
	if err := Run(2, DefaultNet(), func(c *Comm) error {
		if c.FTEnabled() {
			return errors.New("detector on by default")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestAgreeErrorShapes pins AgreeError semantics the failover leans on:
// nil everywhere, a single failure, and a multi-error built with
// errors.Join all agree symmetrically.
func TestAgreeErrorShapes(t *testing.T) {
	sentinel1 := errors.New("first")
	sentinel2 := errors.New("second")
	for _, n := range []int{1, 2, 4, 5} {
		runOrFatal(t, n, func(c *Comm) error {
			if err := c.AgreeError(nil); err != nil {
				return fmt.Errorf("all-nil AgreeError = %v", err)
			}
			// One rank contributes a joined multi-error: it gets its own
			// error back, everyone else ErrPeerFailed.
			var mine error
			if c.Rank() == n-1 {
				mine = errors.Join(sentinel1, sentinel2)
			}
			got := c.AgreeError(mine)
			if c.Rank() == n-1 {
				if !errors.Is(got, sentinel1) || !errors.Is(got, sentinel2) {
					return fmt.Errorf("joined error lost components: %v", got)
				}
			} else if !errors.Is(got, ErrPeerFailed) {
				return fmt.Errorf("peer rank got %v, want ErrPeerFailed", got)
			}
			// Everyone failing returns each rank its own error.
			all := c.AgreeError(sentinel2)
			if !errors.Is(all, sentinel2) {
				return fmt.Errorf("all-fail AgreeError = %v", all)
			}
			return nil
		})
	}
}

// TestAgreeSamePayloads pins AgreeSame on empty, nil-vs-empty, and
// non-UTF-8 payloads — it must compare raw bytes, not strings.
func TestAgreeSamePayloads(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		runOrFatal(t, n, func(c *Comm) error {
			if !c.AgreeSame(nil) {
				return errors.New("nil payloads disagree")
			}
			if !c.AgreeSame([]byte{}) {
				return errors.New("empty payloads disagree")
			}
			bin := []byte{0xff, 0xfe, 0x00, 0x80, 0xc3}
			if !c.AgreeSame(bin) {
				return errors.New("identical non-UTF-8 payloads disagree")
			}
			if n > 1 {
				diff := append([]byte(nil), bin...)
				if c.Rank() == n-1 {
					diff[0] = 0x00
				}
				if c.AgreeSame(diff) {
					return errors.New("differing payloads agree")
				}
				short := bin
				if c.Rank() == 0 {
					short = bin[:3]
				}
				if c.AgreeSame(short) {
					return errors.New("different-length payloads agree")
				}
			}
			return nil
		})
	}
}
