package mpi

import (
	"errors"
	"fmt"
	"testing"
)

// sizes exercised by every collective test; includes non-powers of two.
var testSizes = []int{1, 2, 3, 4, 5, 7, 8, 9}

func runOrFatal(t *testing.T, n int, fn func(*Comm) error) {
	t.Helper()
	if err := Run(n, DefaultNet(), fn); err != nil {
		t.Fatalf("size %d: %v", n, err)
	}
}

func TestRunBasics(t *testing.T) {
	for _, n := range testSizes {
		seen := make([]bool, n)
		runOrFatal(t, n, func(c *Comm) error {
			if c.Size() != n {
				return fmt.Errorf("Size() = %d, want %d", c.Size(), n)
			}
			if c.Rank() < 0 || c.Rank() >= n {
				return fmt.Errorf("bad rank %d", c.Rank())
			}
			seen[c.Rank()] = true
			return nil
		})
		for r, ok := range seen {
			if !ok {
				t.Fatalf("size %d: rank %d never ran", n, r)
			}
		}
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := Run(4, DefaultNet(), func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		// Other ranks may block in a collective; the abort must unwind them.
		c.Barrier()
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	err := Run(3, DefaultNet(), func(c *Comm) error {
		if c.Rank() == 1 {
			panic("kaboom")
		}
		c.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("panic not propagated")
	}
}

func TestSendRecv(t *testing.T) {
	runOrFatal(t, 4, func(c *Comm) error {
		if c.Rank() == 0 {
			for dst := 1; dst < 4; dst++ {
				c.Send(dst, 7, []byte{byte(dst), 42})
			}
			return nil
		}
		data, src := c.Recv(0, 7)
		if src != 0 || len(data) != 2 || data[0] != byte(c.Rank()) || data[1] != 42 {
			return fmt.Errorf("rank %d: got %v from %d", c.Rank(), data, src)
		}
		return nil
	})
}

func TestRecvTagMatching(t *testing.T) {
	runOrFatal(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("first"))
			c.Send(1, 2, []byte("second"))
			return nil
		}
		// Receive out of send order by tag.
		d2, _ := c.Recv(0, 2)
		d1, _ := c.Recv(0, 1)
		if string(d1) != "first" || string(d2) != "second" {
			return fmt.Errorf("tag matching broken: %q %q", d1, d2)
		}
		return nil
	})
}

func TestRecvAnySourceAnyTag(t *testing.T) {
	runOrFatal(t, 3, func(c *Comm) error {
		if c.Rank() != 0 {
			c.Send(0, c.Rank()*10, []byte{byte(c.Rank())})
			return nil
		}
		got := map[int]bool{}
		for i := 0; i < 2; i++ {
			data, src := c.Recv(AnySource, AnyTag)
			if int(data[0]) != src {
				return fmt.Errorf("payload %v from %d", data, src)
			}
			got[src] = true
		}
		if !got[1] || !got[2] {
			return fmt.Errorf("missing sources: %v", got)
		}
		return nil
	})
}

func TestSendrecvExchange(t *testing.T) {
	runOrFatal(t, 2, func(c *Comm) error {
		peer := 1 - c.Rank()
		data, _ := c.Sendrecv(peer, 5, []byte{byte(c.Rank())}, peer, 5)
		if data[0] != byte(peer) {
			return fmt.Errorf("rank %d: exchange got %v", c.Rank(), data)
		}
		return nil
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	runOrFatal(t, 4, func(c *Comm) error {
		// Give ranks wildly different local times, then barrier.
		c.Proc().Advance(float64(c.Rank()))
		c.Barrier()
		after := c.AllreduceF64([]float64{c.Clock()}, OpMin)[0]
		// Everyone's clock must be at least the slowest rank's pre-barrier
		// time (rank 3: 3.0s).
		if after < 3.0 {
			return fmt.Errorf("clock %v below slowest entrant", after)
		}
		return nil
	})
}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, n := range testSizes {
		for root := 0; root < n; root++ {
			root := root
			runOrFatal(t, n, func(c *Comm) error {
				var payload []byte
				if c.Rank() == root {
					payload = []byte(fmt.Sprintf("hello from %d", root))
				}
				got := c.Bcast(root, payload)
				want := fmt.Sprintf("hello from %d", root)
				if string(got) != want {
					return fmt.Errorf("rank %d: Bcast got %q", c.Rank(), got)
				}
				return nil
			})
		}
	}
}

func TestGatherScatter(t *testing.T) {
	for _, n := range testSizes {
		runOrFatal(t, n, func(c *Comm) error {
			// Gather variable-length payloads.
			mine := make([]byte, c.Rank()+1)
			for i := range mine {
				mine[i] = byte(c.Rank())
			}
			parts := c.Gather(0, mine)
			if c.Rank() == 0 {
				for r := 0; r < n; r++ {
					if len(parts[r]) != r+1 || (r > 0 && parts[r][0] != byte(r)) {
						return fmt.Errorf("Gather part %d = %v", r, parts[r])
					}
				}
			} else if parts != nil {
				return errors.New("non-root got Gather result")
			}
			// Scatter them back.
			back := c.Scatter(0, parts)
			if len(back) != c.Rank()+1 {
				return fmt.Errorf("Scatter to %d: %v", c.Rank(), back)
			}
			return nil
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, n := range testSizes {
		runOrFatal(t, n, func(c *Comm) error {
			all := c.Allgather([]byte{byte(c.Rank() * 3)})
			if len(all) != n {
				return fmt.Errorf("Allgather len %d", len(all))
			}
			for r := 0; r < n; r++ {
				if len(all[r]) != 1 || all[r][0] != byte(r*3) {
					return fmt.Errorf("Allgather[%d] = %v", r, all[r])
				}
			}
			return nil
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range testSizes {
		runOrFatal(t, n, func(c *Comm) error {
			parts := make([][]byte, n)
			for dst := range parts {
				parts[dst] = []byte{byte(c.Rank()), byte(dst)}
			}
			got := c.Alltoall(parts)
			for src := range got {
				if got[src][0] != byte(src) || got[src][1] != byte(c.Rank()) {
					return fmt.Errorf("Alltoall[%d] = %v at rank %d", src, got[src], c.Rank())
				}
			}
			return nil
		})
	}
}

func TestReduceOps(t *testing.T) {
	for _, n := range testSizes {
		runOrFatal(t, n, func(c *Comm) error {
			r := int64(c.Rank())
			sum := c.AllreduceI64([]int64{r, 1}, OpSum)
			wantSum := int64(n*(n-1)) / 2
			if sum[0] != wantSum || sum[1] != int64(n) {
				return fmt.Errorf("sum = %v, want [%d %d]", sum, wantSum, n)
			}
			mn := c.AllreduceI64([]int64{r + 10}, OpMin)[0]
			mx := c.AllreduceI64([]int64{r + 10}, OpMax)[0]
			if mn != 10 || mx != int64(n-1+10) {
				return fmt.Errorf("min/max = %d/%d", mn, mx)
			}
			f := c.AllreduceF64([]float64{0.5}, OpSum)[0]
			if f != 0.5*float64(n) {
				return fmt.Errorf("fsum = %v", f)
			}
			land := c.AllreduceI64([]int64{1}, OpLAnd)[0]
			if land != 1 {
				return fmt.Errorf("land all-ones = %d", land)
			}
			var v int64 = 1
			if c.Rank() == n-1 {
				v = 0
			}
			land = c.AllreduceI64([]int64{v}, OpLAnd)[0]
			if land != 0 {
				return fmt.Errorf("land with a zero = %d", land)
			}
			return nil
		})
	}
}

func TestReduceToNonZeroRoot(t *testing.T) {
	runOrFatal(t, 5, func(c *Comm) error {
		res := c.ReduceI64(3, []int64{int64(c.Rank())}, OpSum)
		if c.Rank() == 3 {
			if res[0] != 10 {
				return fmt.Errorf("root sum = %v", res)
			}
		} else if res != nil {
			return errors.New("non-root got reduce result")
		}
		return nil
	})
}

func TestExscan(t *testing.T) {
	for _, n := range testSizes {
		runOrFatal(t, n, func(c *Comm) error {
			pre := c.ExscanI64([]int64{int64(c.Rank() + 1)}, OpSum)[0]
			// rank r gets sum of (1..r) = r(r+1)/2
			want := int64(c.Rank()*(c.Rank()+1)) / 2
			if pre != want {
				return fmt.Errorf("rank %d: exscan = %d, want %d", c.Rank(), pre, want)
			}
			return nil
		})
	}
}

func TestAgreeSame(t *testing.T) {
	runOrFatal(t, 4, func(c *Comm) error {
		if !c.AgreeSame([]byte("same everywhere")) {
			return errors.New("AgreeSame false for identical data")
		}
		data := []byte("same")
		if c.Rank() == 2 {
			data = []byte("diff")
		}
		if c.AgreeSame(data) {
			return errors.New("AgreeSame true for differing data")
		}
		return nil
	})
}

func TestDupIsolatesTraffic(t *testing.T) {
	runOrFatal(t, 3, func(c *Comm) error {
		c2 := c.Dup()
		if c2.Size() != 3 || c2.Rank() != c.Rank() {
			return fmt.Errorf("dup rank/size %d/%d", c2.Rank(), c2.Size())
		}
		// Same (dst, tag) on both comms; contexts must keep them apart.
		if c.Rank() == 0 {
			c.Send(1, 9, []byte("on c"))
			c2.Send(1, 9, []byte("on c2"))
		}
		if c.Rank() == 1 {
			d2, _ := c2.Recv(0, 9)
			d1, _ := c.Recv(0, 9)
			if string(d1) != "on c" || string(d2) != "on c2" {
				return fmt.Errorf("context mixing: %q %q", d1, d2)
			}
		}
		return nil
	})
}

func TestSplit(t *testing.T) {
	runOrFatal(t, 6, func(c *Comm) error {
		// Even/odd split with reversed key order.
		sub := c.Split(c.Rank()%2, -c.Rank())
		if sub.Size() != 3 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		// Keys are negative ranks so the highest old rank becomes rank 0.
		wantRank := map[int]int{0: 2, 2: 1, 4: 0, 1: 2, 3: 1, 5: 0}[c.Rank()]
		if sub.Rank() != wantRank {
			return fmt.Errorf("old rank %d: sub rank %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// The subcommunicator must work for collectives.
		sum := sub.AllreduceI64([]int64{int64(c.Rank())}, OpSum)[0]
		want := int64(0 + 2 + 4)
		if c.Rank()%2 == 1 {
			want = 1 + 3 + 5
		}
		if sum != want {
			return fmt.Errorf("subcomm sum = %d, want %d", sum, want)
		}
		return nil
	})
}

func TestVirtualTimeMonotonic(t *testing.T) {
	runOrFatal(t, 4, func(c *Comm) error {
		t0 := c.Clock()
		c.Barrier()
		t1 := c.Clock()
		if t1 < t0 {
			return fmt.Errorf("clock went backwards: %v -> %v", t0, t1)
		}
		if c.Bcast(0, []byte("x")) == nil {
			return errors.New("bcast failed")
		}
		if c.Clock() < t1 {
			return errors.New("clock went backwards after bcast")
		}
		return nil
	})
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	// A large message must cost more virtual time than a small one.
	var small, large float64
	runOrFatal(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, make([]byte, 1))
			c.Send(1, 2, make([]byte, 10<<20))
			return nil
		}
		t0 := c.Clock()
		c.Recv(0, 1)
		small = c.Clock() - t0
		t1 := c.Clock()
		c.Recv(0, 2)
		large = c.Clock() - t1
		return nil
	})
	if large <= small {
		t.Fatalf("10 MB transfer (%v) not slower than 1 B (%v)", large, small)
	}
	// 10 MB at 350 MB/s is ~28.6 ms.
	if large < 0.02 || large > 0.2 {
		t.Fatalf("10 MB transfer time %v implausible for 350 MB/s link", large)
	}
}

func TestInfoHints(t *testing.T) {
	var nilInfo *Info
	if _, ok := nilInfo.Get("k"); ok {
		t.Fatal("nil info returned a hit")
	}
	if nilInfo.GetInt("k", 7) != 7 {
		t.Fatal("nil info default broken")
	}
	info := NewInfo().Set("cb_nodes", "4").Set("romio_cb_write", "enable")
	if v := info.GetInt("cb_nodes", 0); v != 4 {
		t.Fatalf("GetInt = %d", v)
	}
	if !info.GetBool("romio_cb_write", false) {
		t.Fatal("GetBool enable")
	}
	if info.GetBool("missing", true) != true {
		t.Fatal("GetBool default")
	}
	if info.GetInt("romio_cb_write", -1) != -1 {
		t.Fatal("malformed int must fall back to default")
	}
	keys := info.Keys()
	if len(keys) != 2 || keys[0] != "cb_nodes" {
		t.Fatalf("Keys = %v", keys)
	}
	clone := info.Clone().Set("cb_nodes", "8")
	if clone.GetInt("cb_nodes", 0) != 8 || info.GetInt("cb_nodes", 0) != 4 {
		t.Fatal("Clone not independent")
	}
}
