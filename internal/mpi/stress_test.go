package mpi

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRandomizedPointToPoint drives a random but deadlock-free traffic
// pattern: every rank sends a batch of tagged messages to every other rank,
// then receives them in random tag order (tag matching must reorder).
func TestRandomizedPointToPoint(t *testing.T) {
	const p = 5
	const perPair = 20
	runOrFatal(t, p, func(c *Comm) error {
		rng := rand.New(rand.NewSource(int64(c.Rank()) + 1))
		for dst := 0; dst < p; dst++ {
			if dst == c.Rank() {
				continue
			}
			for m := 0; m < perPair; m++ {
				payload := []byte{byte(c.Rank()), byte(dst), byte(m)}
				c.Send(dst, 100+m, payload)
			}
		}
		// Receive per source in shuffled tag order.
		for src := 0; src < p; src++ {
			if src == c.Rank() {
				continue
			}
			order := rng.Perm(perPair)
			for _, m := range order {
				data, from := c.Recv(src, 100+m)
				if from != src || data[0] != byte(src) || data[1] != byte(c.Rank()) || data[2] != byte(m) {
					return fmt.Errorf("rank %d: bad message %v from %d (tag %d)", c.Rank(), data, from, 100+m)
				}
			}
		}
		return nil
	})
}

// TestNestedSplits splits twice and runs collectives at every level
// concurrently; contexts must never cross.
func TestNestedSplits(t *testing.T) {
	runOrFatal(t, 8, func(c *Comm) error {
		half := c.Split(c.Rank()/4, c.Rank()) // two groups of 4
		quarter := half.Split(half.Rank()/2, half.Rank())
		if half.Size() != 4 || quarter.Size() != 2 {
			return fmt.Errorf("sizes %d/%d", half.Size(), quarter.Size())
		}
		// Sum world ranks at each level.
		w := c.AllreduceI64([]int64{int64(c.Rank())}, OpSum)[0]
		h := half.AllreduceI64([]int64{int64(c.Rank())}, OpSum)[0]
		q := quarter.AllreduceI64([]int64{int64(c.Rank())}, OpSum)[0]
		if w != 28 {
			return fmt.Errorf("world sum %d", w)
		}
		wantH := int64(0 + 1 + 2 + 3)
		if c.Rank() >= 4 {
			wantH = 4 + 5 + 6 + 7
		}
		if h != wantH {
			return fmt.Errorf("half sum %d, want %d", h, wantH)
		}
		wantQ := int64(2*(c.Rank()/2*2) + 1)
		if q != wantQ {
			return fmt.Errorf("quarter sum %d, want %d (rank %d)", q, wantQ, c.Rank())
		}
		// Interleave point-to-point on the world with collectives on subs.
		if c.Rank() == 0 {
			c.Send(7, 42, []byte("cross"))
		}
		half.Barrier()
		if c.Rank() == 7 {
			data, _ := c.Recv(0, 42)
			if string(data) != "cross" {
				return fmt.Errorf("cross message %q", data)
			}
		}
		quarter.Barrier()
		return nil
	})
}

// TestClockNeverRegresses under heavy mixed traffic.
func TestClockNeverRegresses(t *testing.T) {
	runOrFatal(t, 6, func(c *Comm) error {
		last := c.Clock()
		check := func(tag string) error {
			if c.Clock() < last {
				return fmt.Errorf("clock regressed at %s: %v -> %v", tag, last, c.Clock())
			}
			last = c.Clock()
			return nil
		}
		for i := 0; i < 30; i++ {
			c.Barrier()
			if err := check("barrier"); err != nil {
				return err
			}
			c.Allgather(make([]byte, 128))
			if err := check("allgather"); err != nil {
				return err
			}
			peer := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + c.Size() - 1) % c.Size()
			c.Send(peer, 9, make([]byte, 64))
			c.Recv(prev, 9)
			if err := check("p2p"); err != nil {
				return err
			}
		}
		return nil
	})
}

// TestScatterGatherLargePayloads moves megabyte payloads through the
// collectives.
func TestScatterGatherLargePayloads(t *testing.T) {
	runOrFatal(t, 4, func(c *Comm) error {
		var parts [][]byte
		if c.Rank() == 0 {
			parts = make([][]byte, 4)
			for i := range parts {
				parts[i] = make([]byte, 1<<20)
				for j := range parts[i] {
					parts[i][j] = byte(i*31 + j%251)
				}
			}
		}
		mine := c.Scatter(0, parts)
		if len(mine) != 1<<20 || mine[5] != byte(c.Rank()*31+5%251) {
			return fmt.Errorf("rank %d: scatter payload wrong", c.Rank())
		}
		back := c.Gather(0, mine)
		if c.Rank() == 0 {
			for i := range back {
				if len(back[i]) != 1<<20 || back[i][100] != byte(i*31+100%251) {
					return fmt.Errorf("gather part %d wrong", i)
				}
			}
		}
		return nil
	})
}

// TestBcastLargeTree exercises the binomial tree with a non-power-of-two
// size and a multi-megabyte payload.
func TestBcastLargeTree(t *testing.T) {
	runOrFatal(t, 7, func(c *Comm) error {
		var payload []byte
		if c.Rank() == 3 {
			payload = make([]byte, 3<<20)
			for i := range payload {
				payload[i] = byte(i % 254)
			}
		}
		got := c.Bcast(3, payload)
		if len(got) != 3<<20 {
			return fmt.Errorf("rank %d: got %d bytes", c.Rank(), len(got))
		}
		for _, i := range []int{0, 1 << 20, 3<<20 - 1} {
			if got[i] != byte(i%254) {
				return fmt.Errorf("rank %d: byte %d = %d", c.Rank(), i, got[i])
			}
		}
		return nil
	})
}
