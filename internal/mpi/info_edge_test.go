package mpi

import "testing"

// Malformed and out-of-range hint values must fall back to the default —
// hints are advisory, as in ROMIO, and a bad value must never change
// behavior unpredictably.
func TestInfoGetIntMalformed(t *testing.T) {
	info := NewInfo().
		Set("trailing", "12abc").
		Set("empty", "").
		Set("float", "1e3").
		Set("hex", "0x10").
		Set("spaces", " 42").
		Set("overflow", "999999999999999999999999").
		Set("negative", "-3").
		Set("plus", "+7")
	cases := []struct {
		key  string
		def  int64
		want int64
	}{
		{"trailing", 5, 5},
		{"empty", 5, 5},
		{"float", 5, 5},
		{"hex", 5, 5},
		{"spaces", 5, 5},
		{"overflow", 5, 5},
		{"negative", 5, -3}, // parses; range policy is the caller's job
		{"plus", 5, 7},
		{"absent", 9, 9},
	}
	for _, c := range cases {
		if got := info.GetInt(c.key, c.def); got != c.want {
			t.Errorf("GetInt(%q) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestInfoGetBoolMalformed(t *testing.T) {
	info := NewInfo().
		Set("caps", "TRUE").
		Set("maybe", "maybe").
		Set("two", "2").
		Set("empty", "").
		Set("en", "enable").
		Set("dis", "disable")
	cases := []struct {
		key       string
		def, want bool
	}{
		{"caps", false, false}, // matching is exact, like ROMIO's strcmp
		{"maybe", true, true},
		{"two", false, false},
		{"empty", true, true},
		{"en", false, true},
		{"dis", true, false},
		{"absent", true, true},
	}
	for _, c := range cases {
		if got := info.GetBool(c.key, c.def); got != c.want {
			t.Errorf("GetBool(%q, %v) = %v, want %v", c.key, c.def, got, c.want)
		}
	}
}
