package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Internal tags used within one collective context. Each collective call has
// a unique context (nextOpCtx), so tags only separate message roles inside a
// single operation.
const (
	tagFanIn  = 1
	tagFanOut = 2
	tagData   = 3
)

// Barrier blocks until every member has entered it, like MPI_Barrier.
// Implemented as a binomial fan-in to rank 0 followed by a fan-out, so its
// virtual-time cost is ~2*ceil(log2(p)) message latencies.
func (c *Comm) Barrier() {
	ctx := c.nextOpCtx("Barrier")
	c.fanIn(0, ctx, nil)
	c.fanOut(0, ctx, nil)
}

// fanIn sends a zero/merged token up a binomial tree rooted at root.
// If combine is non-nil it folds children's payloads into the local one and
// returns the root's folded payload (nil on non-roots).
func (c *Comm) fanIn(root int, ctx int64, combine func(local, child []byte) []byte) []byte {
	p := c.Size()
	vrank := (c.rank - root + p) % p
	var local []byte
	if combine != nil {
		local = combine(nil, nil) // seed with the caller's own contribution
	}
	for mask := 1; mask < p; mask <<= 1 {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % p
			c.send(parent, tagFanIn, ctx, local)
			return nil
		}
		child := vrank | mask
		if child < p {
			m := c.recv((child+root)%p, tagFanIn, ctx)
			if combine != nil {
				local = combine(local, m.data)
			}
		}
	}
	return local
}

// fanOut distributes data down a binomial tree rooted at root and returns
// the received payload (the root returns data unchanged).
func (c *Comm) fanOut(root int, ctx int64, data []byte) []byte {
	p := c.Size()
	vrank := (c.rank - root + p) % p
	// Find this rank's receive mask: the lowest set bit of vrank.
	recvMask := 0
	for mask := 1; mask < p; mask <<= 1 {
		if vrank&mask != 0 {
			recvMask = mask
			break
		}
	}
	if recvMask != 0 {
		parent := ((vrank &^ recvMask) + root) % p
		m := c.recv(parent, tagFanOut, ctx)
		data = m.data
	}
	// Forward to children: set each zero bit below recvMask (for the root,
	// below the smallest power of two >= p), highest first.
	top := recvMask
	if vrank == 0 {
		top = 1
		for top < p {
			top <<= 1
		}
	}
	for mask := top >> 1; mask >= 1; mask >>= 1 {
		child := vrank | mask
		if child != vrank && child < p {
			c.send((child+root)%p, tagFanOut, ctx, data)
		}
	}
	return data
}

// Bcast broadcasts data from root to every member and returns each member's
// copy, like MPI_Bcast. Non-root callers pass nil (or anything; it is
// replaced by the root's payload).
func (c *Comm) Bcast(root int, data []byte) []byte {
	ctx := c.nextOpCtx("Bcast")
	return c.fanOut(root, ctx, data)
}

// Gather collects each member's payload at root, like MPI_Gatherv (payloads
// may differ in length). The root receives a slice indexed by rank; other
// ranks receive nil.
func (c *Comm) Gather(root int, data []byte) [][]byte {
	ctx := c.nextOpCtx("Gather")
	if c.rank != root {
		c.send(root, tagData, ctx, data)
		return nil
	}
	out := make([][]byte, c.Size())
	out[root] = append([]byte(nil), data...)
	for i := 0; i < c.Size()-1; i++ {
		m := c.recv(AnySource, tagData, ctx)
		out[m.src] = m.data
	}
	return out
}

// Allgather collects every member's payload on every member, indexed by
// rank, like MPI_Allgatherv.
func (c *Comm) Allgather(data []byte) [][]byte {
	parts := c.Gather(0, data)
	blob := c.Bcast(0, encodeParts(parts))
	return decodeParts(blob)
}

// Scatter distributes parts[i] from root to rank i, like MPI_Scatterv.
// Non-root callers pass nil.
func (c *Comm) Scatter(root int, parts [][]byte) []byte {
	ctx := c.nextOpCtx("Scatter")
	if c.rank == root {
		if len(parts) != c.Size() {
			c.Abort(fmt.Errorf("mpi: Scatter with %d parts on %d ranks", len(parts), c.Size()))
		}
		for r := 0; r < c.Size(); r++ {
			if r != root {
				c.send(r, tagData, ctx, parts[r])
			}
		}
		return append([]byte(nil), parts[root]...)
	}
	return c.recv(root, tagData, ctx).data
}

// Alltoall sends parts[i] to rank i and returns the payloads received from
// every rank, indexed by source, like MPI_Alltoallv. Entries may be empty.
func (c *Comm) Alltoall(parts [][]byte) [][]byte {
	if len(parts) != c.Size() {
		c.Abort(fmt.Errorf("mpi: Alltoall with %d parts on %d ranks", len(parts), c.Size()))
	}
	ctx := c.nextOpCtx("Alltoall")
	out := make([][]byte, c.Size())
	out[c.rank] = append([]byte(nil), parts[c.rank]...)
	for r := 0; r < c.Size(); r++ {
		if r != c.rank {
			c.send(r, tagData, ctx, parts[r])
		}
	}
	for i := 0; i < c.Size()-1; i++ {
		m := c.recv(AnySource, tagData, ctx)
		out[m.src] = m.data
	}
	return out
}

// Op is a reduction operator.
type Op int

// Reduction operators, as in MPI.
const (
	OpSum Op = iota
	OpMin
	OpMax
	OpLAnd // logical and of nonzero values
	OpBOr  // bitwise or (integers only)
)

func reduceI64(op Op, a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpLAnd:
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	case OpBOr:
		return a | b
	}
	return a
}

func reduceF64(op Op, a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		return math.Min(a, b)
	case OpMax:
		return math.Max(a, b)
	}
	return a
}

// ReduceI64 reduces elementwise int64 vectors to root, like MPI_Reduce.
// Non-roots receive nil. All members must pass equal-length vectors.
func (c *Comm) ReduceI64(root int, vals []int64, op Op) []int64 {
	ctx := c.nextOpCtx("ReduceI64")
	res := c.fanIn(root, ctx, func(local, child []byte) []byte {
		if local == nil && child == nil {
			return EncodeI64s(vals)
		}
		a, b := DecodeI64s(local), DecodeI64s(child)
		for i := range a {
			a[i] = reduceI64(op, a[i], b[i])
		}
		return EncodeI64s(a)
	})
	if c.rank != root {
		return nil
	}
	return DecodeI64s(res)
}

// AllreduceI64 reduces elementwise and distributes the result to all,
// like MPI_Allreduce.
func (c *Comm) AllreduceI64(vals []int64, op Op) []int64 {
	res := c.ReduceI64(0, vals, op)
	return DecodeI64s(c.Bcast(0, EncodeI64s(res)))
}

// ReduceF64 reduces elementwise float64 vectors to root. The combination
// order follows the binomial tree deterministically, so results are
// reproducible run to run.
func (c *Comm) ReduceF64(root int, vals []float64, op Op) []float64 {
	ctx := c.nextOpCtx("ReduceF64")
	res := c.fanIn(root, ctx, func(local, child []byte) []byte {
		if local == nil && child == nil {
			return EncodeF64s(vals)
		}
		a, b := DecodeF64s(local), DecodeF64s(child)
		for i := range a {
			a[i] = reduceF64(op, a[i], b[i])
		}
		return EncodeF64s(a)
	})
	if c.rank != root {
		return nil
	}
	return DecodeF64s(res)
}

// AllreduceF64 reduces elementwise and distributes the result to all.
func (c *Comm) AllreduceF64(vals []float64, op Op) []float64 {
	res := c.ReduceF64(0, vals, op)
	return DecodeF64s(c.Bcast(0, EncodeF64s(res)))
}

// ExscanI64 computes the exclusive prefix reduction: rank r receives the
// reduction of ranks 0..r-1 (identity on rank 0), like MPI_Exscan with a
// linear chain. Used for computing record offsets when appending.
func (c *Comm) ExscanI64(vals []int64, op Op) []int64 {
	ctx := c.nextOpCtx("ExscanI64")
	acc := make([]int64, len(vals))
	if op == OpMin {
		for i := range acc {
			acc[i] = math.MaxInt64
		}
	}
	if op == OpMax {
		for i := range acc {
			acc[i] = math.MinInt64
		}
	}
	if c.rank > 0 {
		acc = DecodeI64s(c.recv(c.rank-1, tagData, ctx).data)
	}
	if c.rank < c.Size()-1 {
		next := make([]int64, len(vals))
		for i := range vals {
			next[i] = reduceI64(op, acc[i], vals[i])
		}
		c.send(c.rank+1, tagData, ctx, EncodeI64s(next))
	}
	return acc
}

// ErrPeerFailed is the error a rank receives from AgreeError when some
// other member of the communicator reported a failure. Every rank of a
// collective operation returns a non-nil error together: the failing
// rank(s) see their own error, the rest see ErrPeerFailed.
var ErrPeerFailed = errors.New("mpi: collective operation failed on a peer rank")

// AgreeError is the collective error-agreement primitive: every member
// contributes its local error status, and either all members return nil
// (nobody failed) or all return a non-nil error — the local one where it
// exists, ErrPeerFailed elsewhere. Calling it after each phase of a
// multi-round collective guarantees no rank hangs waiting on a peer that
// bailed, and that all ranks agree on whether the operation succeeded.
func (c *Comm) AgreeError(err error) error {
	flag := int64(0)
	if err != nil {
		flag = 1
	}
	if c.AllreduceI64([]int64{flag}, OpMax)[0] == 0 {
		return nil
	}
	if err != nil {
		return err
	}
	return ErrPeerFailed
}

// AgreeSame verifies that every member passed a byte-identical payload,
// returning true everywhere if so. PnetCDF uses it for define-mode argument
// consistency checks.
func (c *Comm) AgreeSame(data []byte) bool {
	ref := c.Bcast(0, data)
	same := int64(1)
	if len(ref) != len(data) {
		same = 0
	} else {
		for i := range ref {
			if ref[i] != data[i] {
				same = 0
				break
			}
		}
	}
	return c.AllreduceI64([]int64{same}, OpLAnd)[0] == 1
}

// EncodeI64s packs int64s big-endian.
func EncodeI64s(vals []int64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint64(buf[i*8:], uint64(v))
	}
	return buf
}

// DecodeI64s unpacks int64s packed by EncodeI64s.
func DecodeI64s(buf []byte) []int64 {
	vals := make([]int64, len(buf)/8)
	for i := range vals {
		vals[i] = int64(binary.BigEndian.Uint64(buf[i*8:]))
	}
	return vals
}

// EncodeF64s packs float64s big-endian.
func EncodeF64s(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return buf
}

// DecodeF64s unpacks float64s packed by EncodeF64s.
func DecodeF64s(buf []byte) []float64 {
	vals := make([]float64, len(buf)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[i*8:]))
	}
	return vals
}

func encodeParts(parts [][]byte) []byte {
	var buf []byte
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(parts)))
	for _, p := range parts {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

func decodeParts(buf []byte) [][]byte {
	n := binary.BigEndian.Uint32(buf)
	buf = buf[4:]
	parts := make([][]byte, n)
	for i := range parts {
		l := binary.BigEndian.Uint32(buf)
		buf = buf[4:]
		parts[i] = append([]byte(nil), buf[:l]...)
		buf = buf[l:]
	}
	return parts
}
