package mpi

import (
	"fmt"
	"strings"
	"testing"
)

// TestCollCheckDetectsDesync deliberately desynchronizes two ranks — rank 0
// enters a Bcast while rank 1 enters a Barrier — and asserts the runtime
// sequence assertion turns what would be a hang or silent message mixup into
// an error naming both operations. (nclint's collsym checker would flag this
// shape in non-test code; the runtime check is its complement for call
// orders no static analysis can see.)
func TestCollCheckDetectsDesync(t *testing.T) {
	t.Setenv(collCheckEnv, "1")
	err := Run(2, DefaultNet(), func(c *Comm) error {
		if c.Rank() == 0 {
			c.Bcast(0, []byte("hdr"))
		} else {
			c.Barrier()
		}
		return nil
	})
	if err == nil {
		t.Fatal("desynchronized collectives completed without error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "collective sequence mismatch") {
		t.Fatalf("error is not a sequence mismatch: %v", msg)
	}
	if !strings.Contains(msg, "Bcast") || !strings.Contains(msg, "Barrier") {
		t.Fatalf("mismatch error does not name both ops: %v", msg)
	}
}

// TestCollCheckMatchedSequences runs a representative mix of collectives —
// including composed ones (Allreduce = Reduce + Bcast) and collectives on a
// Split sub-communicator — with checking enabled, asserting the registry
// stays silent and drains itself when ranks agree.
func TestCollCheckMatchedSequences(t *testing.T) {
	t.Setenv(collCheckEnv, "1")
	err := Run(4, DefaultNet(), func(c *Comm) error {
		c.Barrier()
		sum := c.AllreduceI64([]int64{int64(c.Rank())}, OpSum)
		if sum[0] != 6 {
			return fmt.Errorf("allreduce sum = %d, want 6", sum[0])
		}
		sub := c.Split(c.Rank()%2, c.Rank())
		sub.Barrier()
		if got := sub.AllreduceI64([]int64{1}, OpSum); got[0] != 2 {
			return fmt.Errorf("sub allreduce = %d, want 2", got[0])
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatalf("matched collective sequences failed: %v", err)
	}
}

// TestCollCheckDisabledByDefault pins that without the environment variable
// no registry is allocated, so the default path stays zero-cost.
func TestCollCheckDisabledByDefault(t *testing.T) {
	t.Setenv(collCheckEnv, "")
	err := Run(2, DefaultNet(), func(c *Comm) error {
		if c.world.ccheck != nil {
			return fmt.Errorf("collective check enabled without %s=1", collCheckEnv)
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
