package netcdf

import (
	"errors"
	"testing"

	"pnetcdf/internal/nctype"
)

func TestRenameDimVarAttr(t *testing.T) {
	d, store, tempID, elevID := newDataset(t)
	// Data mode: shorter or equal names are allowed.
	if err := d.RenameDim(d.DimID("lat"), "la"); err != nil {
		t.Fatalf("shrink dim name in data mode: %v", err)
	}
	if err := d.RenameDim(d.DimID("la"), "latitude"); !errors.Is(err, nctype.ErrNotInDefine) {
		t.Fatalf("grow dim name in data mode: %v", err)
	}
	// Define mode: any valid rename.
	if err := d.Redef(); err != nil {
		t.Fatal(err)
	}
	if err := d.RenameDim(d.DimID("la"), "latitude"); err != nil {
		t.Fatal(err)
	}
	if err := d.RenameVar(tempID, "air_temperature"); err != nil {
		t.Fatal(err)
	}
	if err := d.RenameAttr(tempID, "units", "unit_string"); err != nil {
		t.Fatal(err)
	}
	// Collisions and bad names rejected.
	if err := d.RenameVar(elevID, "air_temperature"); !errors.Is(err, nctype.ErrNameInUse) {
		t.Fatalf("var collision: %v", err)
	}
	if err := d.RenameDim(d.DimID("lon"), "latitude"); !errors.Is(err, nctype.ErrNameInUse) {
		t.Fatalf("dim collision: %v", err)
	}
	if err := d.RenameVar(tempID, "bad/name"); err == nil {
		t.Fatal("bad name accepted")
	}
	if err := d.RenameAttr(tempID, "absent", "x"); !errors.Is(err, nctype.ErrNotAtt) {
		t.Fatalf("rename absent attr: %v", err)
	}
	// Self-rename is a no-op, not a collision.
	if err := d.RenameVar(tempID, "air_temperature"); err != nil {
		t.Fatalf("self rename: %v", err)
	}
	if err := d.EndDef(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything persisted.
	r, err := Open(store, nctype.NoWrite)
	if err != nil {
		t.Fatal(err)
	}
	if r.DimID("latitude") < 0 || r.VarID("air_temperature") < 0 {
		t.Fatal("renames not persisted")
	}
	if _, _, err := r.GetAttr(r.VarID("air_temperature"), "unit_string"); err != nil {
		t.Fatalf("renamed attr: %v", err)
	}
	// Bad IDs.
	if err := r.RenameDim(99, "x"); !errors.Is(err, nctype.ErrPerm) {
		// read-only check fires first
		t.Fatalf("rename on RO: %v", err)
	}
}
