package netcdf

import (
	"testing"

	"pnetcdf/internal/nctype"
)

// Allocation regression tests for the contiguous read/write fast path: data
// packs and unpacks through pooled external buffers, so steady state is a
// small constant number of allocations (request bookkeeping plus the pool's
// slice-header box) and a few hundred bytes — NOT proportional to the
// payload. The byte pins are what catch a reintroduced per-call buffer or
// gathered intermediate: one 256 KiB make is a single allocation but blows
// the byte budget immediately.

const allocVarElems = 64 << 10

func newAllocDataset(t *testing.T) (*Dataset, int) {
	t.Helper()
	store := &MemStore{}
	d, err := Create(store, nctype.Clobber)
	if err != nil {
		t.Fatal(err)
	}
	dimID, err := d.DefDim("x", allocVarElems)
	if err != nil {
		t.Fatal(err)
	}
	varID, err := d.DefVar("v", nctype.Float, []int{dimID})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EndDef(); err != nil {
		t.Fatal(err)
	}
	return d, varID
}

func TestAllocsContigPut(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; byte pins do not hold")
	}
	d, varID := newAllocDataset(t)
	buf := make([]float32, allocVarElems)
	for i := range buf {
		buf[i] = float32(i)
	}
	if err := d.PutVar(varID, buf); err != nil { // warm pool and view cache
		t.Fatal(err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := d.PutVar(varID, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	t.Logf("contig put: %d allocs/op, %d B/op", res.AllocsPerOp(), res.AllocedBytesPerOp())
	if res.AllocsPerOp() > 20 {
		t.Errorf("contiguous put allocates %d/op, want <= 20", res.AllocsPerOp())
	}
	if res.AllocedBytesPerOp() > 4096 {
		t.Errorf("contiguous put allocates %d B/op, want <= 4096 (payload is %d B)",
			res.AllocedBytesPerOp(), allocVarElems*4)
	}
}

func TestAllocsContigGet(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; byte pins do not hold")
	}
	d, varID := newAllocDataset(t)
	buf := make([]float32, allocVarElems)
	if err := d.PutVar(varID, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.GetVar(varID, buf); err != nil {
		t.Fatal(err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := d.GetVar(varID, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	t.Logf("contig get: %d allocs/op, %d B/op", res.AllocsPerOp(), res.AllocedBytesPerOp())
	if res.AllocsPerOp() > 20 {
		t.Errorf("contiguous get allocates %d/op, want <= 20", res.AllocsPerOp())
	}
	if res.AllocedBytesPerOp() > 4096 {
		t.Errorf("contiguous get allocates %d B/op, want <= 4096 (payload is %d B)",
			res.AllocedBytesPerOp(), allocVarElems*4)
	}
}
