//go:build race

package netcdf

// Under the race detector sync.Pool deliberately drops a fraction of Put
// items to widen interleaving coverage, so pooled-buffer byte pins do not
// hold; the alloc regression tests skip themselves.
const raceEnabled = true
