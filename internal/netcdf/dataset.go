package netcdf

import (
	"errors"
	"fmt"

	"pnetcdf/internal/cdf"
	"pnetcdf/internal/nctype"
)

// GlobalID is the variable ID standing for "the dataset itself" in attribute
// calls, like NC_GLOBAL.
const GlobalID = -1

// FillMode selects whether defined variables are pre-filled with netCDF fill
// values.
type FillMode int

// Fill modes.
const (
	NoFill FillMode = iota // default, like PnetCDF
	Fill                   // pre-fill at EndDef and on record growth
)

// Dataset is an open netCDF dataset accessed through a single process.
type Dataset struct {
	store  Store
	cache  *pageCache
	hdr    *cdf.Header
	define bool // in define mode
	ro     bool
	closed bool
	fill   FillMode

	// hAlign reserves header space so later Redef calls can grow the header
	// without moving data (also a PnetCDF hint).
	hAlign int64

	// oldLayout snapshots the pre-Redef header so EndDef can relocate data
	// if definitions grew the header or added fixed variables.
	oldLayout *cdf.Header
	// prevVars names the variables that existed before the current define
	// mode (they are not re-filled on EndDef).
	prevVars map[string]bool
}

// Option tunes dataset creation/opening.
type Option func(*Dataset)

// WithFill enables netCDF prefilling.
func WithFill() Option { return func(d *Dataset) { d.fill = Fill } }

// WithHeaderAlign reserves align bytes of header space.
func WithHeaderAlign(align int64) Option { return func(d *Dataset) { d.hAlign = align } }

// WithCache overrides the page cache geometry.
func WithCache(pageSize int64, pages int) Option {
	return func(d *Dataset) { d.cache = newPageCache(d.store, pageSize, pages) }
}

// Create makes a new empty dataset on the store, entering define mode.
// mode may include nctype.Bit64Offset (CDF-2) or nctype.Bit64Data (CDF-5).
func Create(store Store, mode int, opts ...Option) (*Dataset, error) {
	version := 1
	if mode&nctype.Bit64Offset != 0 {
		version = 2
	}
	if mode&nctype.Bit64Data != 0 {
		version = 5
	}
	if err := store.Truncate(0); err != nil {
		return nil, err
	}
	d := &Dataset{
		store:  store,
		hdr:    &cdf.Header{Version: version},
		define: true,
		hAlign: 1,
	}
	for _, o := range opts {
		o(d)
	}
	if d.cache == nil {
		d.cache = newPageCache(store, 32<<10, 128)
	}
	return d, nil
}

// Open reads an existing dataset's header from the store. mode is
// nctype.NoWrite or nctype.Write.
func Open(store Store, mode int, opts ...Option) (*Dataset, error) {
	size, err := store.Size()
	if err != nil {
		return nil, err
	}
	// Read a generous prefix, growing if the header is larger. When the
	// in-place header is torn (a crash during a header commit), fall back
	// to the commit journal at the file's tail.
	probe := int64(64 << 10)
	recovered := false
	var hdr *cdf.Header
	for {
		if probe > size {
			probe = size
		}
		buf := make([]byte, probe)
		if err := readFull(store, buf, 0); err != nil {
			return nil, err
		}
		hdr, err = cdf.Decode(buf)
		if err == nil {
			break
		}
		if probe >= size {
			if img := recoverStoreJournal(store, size); img != nil {
				if h2, derr := cdf.Decode(img); derr == nil {
					hdr, recovered = h2, true
					break
				}
			}
			return nil, err
		}
		probe *= 4
	}
	if recovered {
		// The journaled (new) header may declare records lost with the
		// crash; clamp to what the file actually holds.
		if max := hdr.MaxRecsForSize(size); hdr.NumRecs > max {
			hdr.NumRecs = max
		}
	}
	d := &Dataset{
		store:  store,
		hdr:    hdr,
		ro:     mode&nctype.Write == 0,
		hAlign: 1,
	}
	for _, o := range opts {
		o(d)
	}
	if d.cache == nil {
		d.cache = newPageCache(store, 32<<10, 128)
	}
	if recovered && !d.ro {
		// Repair the torn in-place header from the journaled image.
		if err := d.writeHeader(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// recoverStoreJournal reads and verifies the commit journal terminating
// the store, returning the journaled header image or nil.
func recoverStoreJournal(store Store, size int64) []byte {
	if size < cdf.JournalTrailerSize {
		return nil
	}
	tr := make([]byte, cdf.JournalTrailerSize)
	if err := readFull(store, tr, size-cdf.JournalTrailerSize); err != nil {
		return nil
	}
	n, crc, ok := cdf.ParseJournalTrailer(tr)
	if !ok || n > size-cdf.JournalTrailerSize {
		return nil
	}
	img := make([]byte, n)
	if err := readFull(store, img, size-cdf.JournalTrailerSize-n); err != nil {
		return nil
	}
	if !cdf.VerifyJournalImage(img, crc) {
		return nil
	}
	return img
}

// Header exposes the in-memory header (read-only use: inquiry, dumps).
func (d *Dataset) Header() *cdf.Header { return d.hdr }

func (d *Dataset) checkDefine() error {
	switch {
	case d.closed:
		return nctype.ErrClosed
	case d.ro:
		return nctype.ErrPerm
	case !d.define:
		return nctype.ErrNotInDefine
	}
	return nil
}

func (d *Dataset) checkData() error {
	switch {
	case d.closed:
		return nctype.ErrClosed
	case d.define:
		return nctype.ErrInDefine
	}
	return nil
}

// DefDim defines a dimension; size 0 declares the unlimited dimension.
func (d *Dataset) DefDim(name string, size int64) (int, error) {
	if err := d.checkDefine(); err != nil {
		return -1, err
	}
	if err := cdf.CheckName(name); err != nil {
		return -1, err
	}
	if d.hdr.FindDim(name) >= 0 {
		return -1, fmt.Errorf("%w: dimension %q", nctype.ErrNameInUse, name)
	}
	if size < 0 {
		return -1, nctype.ErrBadDim
	}
	if size == 0 && d.hdr.UnlimitedDimID() >= 0 {
		return -1, nctype.ErrMultiUnlimited
	}
	d.hdr.Dims = append(d.hdr.Dims, cdf.Dim{Name: name, Len: size})
	return len(d.hdr.Dims) - 1, nil
}

// DefVar defines a variable over previously defined dimensions.
func (d *Dataset) DefVar(name string, t nctype.Type, dimids []int) (int, error) {
	if err := d.checkDefine(); err != nil {
		return -1, err
	}
	if err := cdf.CheckName(name); err != nil {
		return -1, err
	}
	if d.hdr.FindVar(name) >= 0 {
		return -1, fmt.Errorf("%w: variable %q", nctype.ErrNameInUse, name)
	}
	if !t.Valid(d.hdr.Version) {
		return -1, nctype.ErrBadType
	}
	if len(dimids) > nctype.MaxDims {
		return -1, nctype.ErrMaxDims
	}
	for pos, id := range dimids {
		if id < 0 || id >= len(d.hdr.Dims) {
			return -1, nctype.ErrBadDim
		}
		if d.hdr.Dims[id].IsUnlimited() && pos != 0 {
			return -1, nctype.ErrUnlimPos
		}
	}
	d.hdr.Vars = append(d.hdr.Vars, cdf.Var{
		Name: name, Type: t, DimIDs: append([]int(nil), dimids...),
	})
	return len(d.hdr.Vars) - 1, nil
}

// attrsOf returns the attribute list for varid (GlobalID for global
// attributes).
func (d *Dataset) attrsOf(varid int) (*[]cdf.Attr, error) {
	if varid == GlobalID {
		return &d.hdr.GAttrs, nil
	}
	if varid < 0 || varid >= len(d.hdr.Vars) {
		return nil, nctype.ErrNotVar
	}
	return &d.hdr.Vars[varid].Attrs, nil
}

// PutAttr sets an attribute. Unlike most definitions this is also legal in
// data mode if the new value is not larger than the old (classic rule); for
// simplicity we allow it only in define mode, except for overwrites of equal
// or smaller size.
func (d *Dataset) PutAttr(varid int, name string, t nctype.Type, value any) error {
	if d.closed {
		return nctype.ErrClosed
	}
	if d.ro {
		return nctype.ErrPerm
	}
	attrs, err := d.attrsOf(varid)
	if err != nil {
		return err
	}
	if err := cdf.CheckName(name); err != nil {
		return err
	}
	if !t.Valid(d.hdr.Version) {
		return nctype.ErrBadType
	}
	a, err := cdf.MakeAttr(name, t, value)
	if err != nil {
		return err
	}
	if i := cdf.FindAttr(*attrs, name); i >= 0 {
		if !d.define && len(a.Values) > len((*attrs)[i].Values) {
			return nctype.ErrNotInDefine
		}
		(*attrs)[i] = a
		if !d.define {
			return d.writeHeader()
		}
		return nil
	}
	if !d.define {
		return nctype.ErrNotInDefine
	}
	if len(*attrs) >= nctype.MaxAttrs {
		return nctype.ErrInvalidArg
	}
	*attrs = append(*attrs, a)
	return nil
}

// GetAttr returns an attribute's type and decoded value ([]byte for Char,
// typed slices otherwise).
func (d *Dataset) GetAttr(varid int, name string) (nctype.Type, any, error) {
	if d.closed {
		return 0, nil, nctype.ErrClosed
	}
	attrs, err := d.attrsOf(varid)
	if err != nil {
		return 0, nil, err
	}
	i := cdf.FindAttr(*attrs, name)
	if i < 0 {
		return 0, nil, fmt.Errorf("%w: %q", nctype.ErrNotAtt, name)
	}
	a := (*attrs)[i]
	val, err := cdf.DecodeAttrValue(a)
	return a.Type, val, err
}

// DelAttr removes an attribute (define mode only).
func (d *Dataset) DelAttr(varid int, name string) error {
	if err := d.checkDefine(); err != nil {
		return err
	}
	attrs, err := d.attrsOf(varid)
	if err != nil {
		return err
	}
	i := cdf.FindAttr(*attrs, name)
	if i < 0 {
		return fmt.Errorf("%w: %q", nctype.ErrNotAtt, name)
	}
	*attrs = append((*attrs)[:i], (*attrs)[i+1:]...)
	return nil
}

// AttrNames lists an object's attribute names in definition order.
func (d *Dataset) AttrNames(varid int) ([]string, error) {
	attrs, err := d.attrsOf(varid)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(*attrs))
	for i, a := range *attrs {
		names[i] = a.Name
	}
	return names, nil
}

// EndDef leaves define mode: computes the file layout, writes the header,
// and (in Fill mode) pre-fills variables.
func (d *Dataset) EndDef() error {
	if err := d.checkDefine(); err != nil {
		return err
	}
	if err := d.hdr.Validate(); err != nil {
		return err
	}
	if err := d.hdr.ComputeLayout(d.hAlign); err != nil {
		return err
	}
	d.define = false
	if d.oldLayout != nil {
		if err := d.relocate(d.oldLayout); err != nil {
			return err
		}
		d.oldLayout = nil
	}
	if err := d.writeHeader(); err != nil {
		return err
	}
	if d.fill == Fill {
		if err := d.fillFixedVars(); err != nil {
			return err
		}
	}
	d.prevVars = nil
	return nil
}

// relocate moves existing variable data from its pre-Redef offsets to the
// new layout. Variables are processed in descending new offset so forward
// moves never clobber unmoved data (the header only ever grows, so data only
// moves toward higher offsets).
func (d *Dataset) relocate(old *cdf.Header) error {
	type move struct {
		from, to, n int64
	}
	var moves []move
	for i := range d.hdr.Vars {
		nv := &d.hdr.Vars[i]
		oi := old.FindVar(nv.Name)
		if oi < 0 {
			continue // new variable, no data yet
		}
		ov := &old.Vars[oi]
		if d.hdr.IsRecordVar(nv) {
			// Record data: move each existing record slot.
			for rec := old.NumRecs - 1; rec >= 0; rec-- {
				moves = append(moves, move{
					from: old.RecordOffset(ov, rec),
					to:   d.hdr.RecordOffset(nv, rec),
					n:    ov.VSize,
				})
			}
			continue
		}
		moves = append(moves, move{from: ov.Begin, to: nv.Begin, n: ov.VSize})
	}
	// Highest destination first.
	for i := 1; i < len(moves); i++ {
		for j := i; j > 0 && moves[j-1].to < moves[j].to; j-- {
			moves[j-1], moves[j] = moves[j], moves[j-1]
		}
	}
	buf := make([]byte, 1<<20)
	for _, m := range moves {
		if m.from == m.to || m.n == 0 {
			continue
		}
		// Copy back to front within one move (destinations are higher).
		remaining := m.n
		for remaining > 0 {
			k := min64(remaining, int64(len(buf)))
			srcOff := m.from + remaining - k
			dstOff := m.to + remaining - k
			if err := d.cache.ReadAt(buf[:k], srcOff); err != nil {
				return err
			}
			if err := d.cache.WriteAt(buf[:k], dstOff); err != nil {
				return err
			}
			remaining -= k
		}
	}
	return nil
}

// Redef re-enters define mode. If subsequent definitions grow the header
// past its reserved space, EndDef moves the data (an expensive operation the
// paper calls out as a netCDF limitation).
func (d *Dataset) Redef() error {
	if d.closed {
		return nctype.ErrClosed
	}
	if d.ro {
		return nctype.ErrPerm
	}
	if d.define {
		return nctype.ErrInDefine
	}
	// Capture the old layout so EndDef can relocate data if needed, and the
	// existing variable set so fill mode only fills new variables.
	d.oldLayout = d.hdr.Clone()
	d.prevVars = map[string]bool{}
	for i := range d.hdr.Vars {
		d.prevVars[d.hdr.Vars[i].Name] = true
	}
	d.define = true
	return nil
}

// writeHeader publishes the header crash-consistently: journal the new
// image past the declared data end, invalidate the in-place magic, write
// the body, publish the magic last, then erase the journal. The sequence
// bypasses the write-back cache — commit ordering through an LRU cache is
// undefined — and drops the cache's stale view of the touched ranges
// first. A crash at any byte leaves the old header intact or a journal to
// recover the new one from (see internal/cdf/commit.go).
func (d *Dataset) writeHeader() error {
	blob := d.hdr.Encode()
	size, err := d.store.Size()
	if err != nil {
		return err
	}
	jOff := size
	if end := d.hdr.FileSize(); jOff < end {
		jOff = end
	}
	if end := int64(len(blob)); jOff < end {
		jOff = end
	}
	journal := cdf.EncodeJournal(blob)
	if err := d.cache.discardRange(0, int64(len(blob))); err != nil {
		return err
	}
	if err := d.cache.discardRange(jOff, int64(len(journal))); err != nil {
		return err
	}
	if err := writeFull(d.store, journal, jOff); err != nil {
		return err
	}
	if err := writeFull(d.store, []byte{0, 0, 0, 0}, 0); err != nil {
		return err
	}
	if err := writeFull(d.store, blob[4:], 4); err != nil {
		return err
	}
	if err := writeFull(d.store, blob[:4], 0); err != nil {
		return err
	}
	// Publish complete: erase the journal so its bytes cannot masquerade as
	// record data once the record section grows over this region.
	return writeFull(d.store, make([]byte, len(journal)), jOff)
}

// Sync flushes buffered data and the current record count to the store.
func (d *Dataset) Sync() error {
	if d.closed {
		return nctype.ErrClosed
	}
	if !d.ro && !d.define {
		if err := d.writeHeader(); err != nil {
			return err
		}
	}
	if err := d.cache.Flush(); err != nil {
		return err
	}
	return d.store.Sync()
}

// Close synchronizes and closes the dataset. All teardown steps run even
// when an earlier one fails — a flush error is joined with, not masked by,
// a later successful close (and vice versa) — and the handle is marked
// closed regardless, so a second Close is an idempotent no-op rather than
// a second flush attempt.
func (d *Dataset) Close() error {
	if d.closed {
		return nil
	}
	var errs []error
	if d.define && !d.ro {
		errs = append(errs, d.EndDef())
	}
	errs = append(errs, d.Sync())
	d.closed = true
	errs = append(errs, d.store.Close())
	return errors.Join(errs...)
}

// Abort closes without saving pending define-mode changes (buffered data
// is dropped, not flushed). Idempotent after Close or a prior Abort.
func (d *Dataset) Abort() error {
	if d.closed {
		return nil
	}
	d.closed = true
	return d.store.Close()
}
