package netcdf

import (
	"bytes"
	"math/rand"
	"testing"
)

// countingStore wraps MemStore and counts backend operations, so tests can
// assert the cache actually absorbs traffic.
type countingStore struct {
	MemStore
	reads, writes int
}

func (c *countingStore) ReadAt(p []byte, off int64) (int, error) {
	c.reads++
	return c.MemStore.ReadAt(p, off)
}

func (c *countingStore) WriteAt(p []byte, off int64) (int, error) {
	c.writes++
	return c.MemStore.WriteAt(p, off)
}

func TestPageCacheAbsorbsSmallWrites(t *testing.T) {
	store := &countingStore{}
	pc := newPageCache(store, 1024, 8)
	// 100 tiny writes within one page: at most one backend read.
	for i := 0; i < 100; i++ {
		if err := pc.WriteAt([]byte{byte(i)}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if store.writes != 0 {
		t.Fatalf("write-back cache issued %d backend writes before flush", store.writes)
	}
	if store.reads != 1 {
		t.Fatalf("expected 1 page fill, got %d", store.reads)
	}
	if err := pc.Flush(); err != nil {
		t.Fatal(err)
	}
	if store.writes != 1 {
		t.Fatalf("flush issued %d writes, want 1", store.writes)
	}
	got := make([]byte, 100)
	if err := pc.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d = %d", i, got[i])
		}
	}
}

func TestPageCacheEvictionWritesBack(t *testing.T) {
	store := &countingStore{}
	pc := newPageCache(store, 512, 2) // tiny cache: 2 pages
	// Dirty three pages; the first must be evicted and written back.
	for p := 0; p < 3; p++ {
		if err := pc.WriteAt([]byte{byte(p + 1)}, int64(p)*512); err != nil {
			t.Fatal(err)
		}
	}
	if store.writes == 0 {
		t.Fatal("eviction did not write back a dirty page")
	}
	// The evicted page's data must be readable again (from the store).
	got := make([]byte, 1)
	if err := pc.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("evicted page lost data: %d", got[0])
	}
}

func TestPageCacheLargeWriteBypassConsistency(t *testing.T) {
	// A large write overlapping dirty cached pages must not resurrect stale
	// bytes.
	store := &countingStore{}
	pc := newPageCache(store, 512, 8)
	// Dirty a page with 0xAA.
	if err := pc.WriteAt(bytes.Repeat([]byte{0xAA}, 512), 0); err != nil {
		t.Fatal(err)
	}
	// Big write (>= 4 pages) of 0xBB covering it.
	if err := pc.WriteAt(bytes.Repeat([]byte{0xBB}, 4*512), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := pc.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0xBB {
			t.Fatalf("stale byte at %d: %#x", i, b)
		}
	}
	// Partial-edge variant: big write starting mid-page.
	if err := pc.WriteAt(bytes.Repeat([]byte{0xCC}, 512), 0); err != nil {
		t.Fatal(err)
	}
	if err := pc.WriteAt(bytes.Repeat([]byte{0xDD}, 4*512), 256); err != nil {
		t.Fatal(err)
	}
	head := make([]byte, 256)
	if err := pc.ReadAt(head, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range head {
		if b != 0xCC {
			t.Fatalf("head byte %d = %#x, want CC", i, b)
		}
	}
	tail := make([]byte, 256)
	if err := pc.ReadAt(tail, 256); err != nil {
		t.Fatal(err)
	}
	for i, b := range tail {
		if b != 0xDD {
			t.Fatalf("tail byte %d = %#x, want DD", i, b)
		}
	}
}

func TestPageCacheLargeReadSeesDirtyPages(t *testing.T) {
	store := &countingStore{}
	pc := newPageCache(store, 512, 8)
	if err := pc.WriteAt([]byte{0xEE}, 100); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 4*512)
	if err := pc.ReadAt(big, 0); err != nil {
		t.Fatal(err)
	}
	if big[100] != 0xEE {
		t.Fatalf("large read missed dirty page: %#x", big[100])
	}
}

func TestPageCacheRandomizedOracle(t *testing.T) {
	store := &countingStore{}
	pc := newPageCache(store, 256, 4)
	oracle := make([]byte, 64<<10)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		off := rng.Int63n(int64(len(oracle) - 2048))
		n := rng.Intn(2048) + 1
		if rng.Intn(2) == 0 {
			p := make([]byte, n)
			rng.Read(p)
			copy(oracle[off:], p)
			if err := pc.WriteAt(p, off); err != nil {
				t.Fatal(err)
			}
		} else {
			got := make([]byte, n)
			if err := pc.ReadAt(got, off); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, oracle[off:off+int64(n)]) {
				t.Fatalf("iteration %d: mismatch at %d+%d", i, off, n)
			}
		}
	}
	if err := pc.Flush(); err != nil {
		t.Fatal(err)
	}
	// After flush, the store itself must match the oracle prefix written.
	final := make([]byte, len(oracle))
	if _, err := store.MemStore.ReadAt(final, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final[:len(store.MemStore.Data)], oracle[:len(store.MemStore.Data)]) {
		t.Fatal("store content diverged from oracle after flush")
	}
}
