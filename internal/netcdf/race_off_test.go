//go:build !race

package netcdf

const raceEnabled = false
