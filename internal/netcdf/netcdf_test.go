package netcdf

import (
	"errors"
	"math/rand"
	"testing"

	"pnetcdf/internal/cdf"
	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
)

// newDataset builds the standard test dataset:
//
//	dims: time(unlimited), lat=4, lon=6
//	vars: double temp(time,lat,lon); int elevation(lat,lon)
//	atts: :title = "test"; temp:units = "K"
func newDataset(t *testing.T, opts ...Option) (*Dataset, *MemStore, int, int) {
	t.Helper()
	store := &MemStore{}
	d, err := Create(store, nctype.Clobber, opts...)
	if err != nil {
		t.Fatal(err)
	}
	timeID, err := d.DefDim("time", 0)
	if err != nil {
		t.Fatal(err)
	}
	latID, _ := d.DefDim("lat", 4)
	lonID, _ := d.DefDim("lon", 6)
	tempID, err := d.DefVar("temp", nctype.Double, []int{timeID, latID, lonID})
	if err != nil {
		t.Fatal(err)
	}
	elevID, err := d.DefVar("elevation", nctype.Int, []int{latID, lonID})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PutAttr(GlobalID, "title", nctype.Char, "test"); err != nil {
		t.Fatal(err)
	}
	if err := d.PutAttr(tempID, "units", nctype.Char, "K"); err != nil {
		t.Fatal(err)
	}
	if err := d.EndDef(); err != nil {
		t.Fatal(err)
	}
	return d, store, tempID, elevID
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	d, store, tempID, elevID := newDataset(t)
	elev := make([]int32, 24)
	for i := range elev {
		elev[i] = int32(i * 10)
	}
	if err := d.PutVar(elevID, elev); err != nil {
		t.Fatal(err)
	}
	temp := make([]float64, 2*24)
	for i := range temp {
		temp[i] = float64(i) + 0.5
	}
	if err := d.PutVara(tempID, []int64{0, 0, 0}, []int64{2, 4, 6}, temp); err != nil {
		t.Fatal(err)
	}
	if d.NumRecs() != 2 {
		t.Fatalf("NumRecs = %d", d.NumRecs())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from the bytes and verify everything.
	r, err := Open(store, nctype.NoWrite)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumDims() != 3 || r.NumVars() != 2 || r.NumRecs() != 2 {
		t.Fatalf("reopened: dims=%d vars=%d recs=%d", r.NumDims(), r.NumVars(), r.NumRecs())
	}
	name, l, err := r.InqDim(r.DimID("lat"))
	if err != nil || name != "lat" || l != 4 {
		t.Fatalf("InqDim: %s %d %v", name, l, err)
	}
	vn, vt, dims, err := r.InqVar(r.VarID("temp"))
	if err != nil || vn != "temp" || vt != nctype.Double || len(dims) != 3 {
		t.Fatalf("InqVar: %s %v %v %v", vn, vt, dims, err)
	}
	at, av, err := r.GetAttr(GlobalID, "title")
	if err != nil || at != nctype.Char || string(av.([]byte)) != "test" {
		t.Fatalf("global att: %v %v %v", at, av, err)
	}
	_, av, err = r.GetAttr(r.VarID("temp"), "units")
	if err != nil || string(av.([]byte)) != "K" {
		t.Fatalf("var att: %v %v", av, err)
	}
	gotElev := make([]int32, 24)
	if err := r.GetVar(r.VarID("elevation"), gotElev); err != nil {
		t.Fatal(err)
	}
	for i := range elev {
		if gotElev[i] != elev[i] {
			t.Fatalf("elevation[%d] = %d", i, gotElev[i])
		}
	}
	gotTemp := make([]float64, 48)
	if err := r.GetVara(r.VarID("temp"), []int64{0, 0, 0}, []int64{2, 4, 6}, gotTemp); err != nil {
		t.Fatal(err)
	}
	for i := range temp {
		if gotTemp[i] != temp[i] {
			t.Fatalf("temp[%d] = %v", i, gotTemp[i])
		}
	}
}

func TestFileIsGenuineClassicFormat(t *testing.T) {
	d, store, _, _ := newDataset(t)
	if err := d.Sync(); err != nil { // flush the page cache to the store
		t.Fatal(err)
	}
	if string(store.Data[:3]) != "CDF" || store.Data[3] != 1 {
		t.Fatalf("magic = % x", store.Data[:4])
	}
	h, err := cdf.Decode(store.Data)
	if err != nil {
		t.Fatalf("independent header decode: %v", err)
	}
	if h.FindVar("temp") < 0 || h.FindDim("lon") < 0 {
		t.Fatal("decoded header missing objects")
	}
}

func TestSubarrayStridedMapped(t *testing.T) {
	d, _, _, elevID := newDataset(t)
	full := make([]int32, 24)
	for i := range full {
		full[i] = int32(i)
	}
	if err := d.PutVar(elevID, full); err != nil {
		t.Fatal(err)
	}
	// Subarray rows 1..2, cols 2..4.
	sub := make([]int32, 2*3)
	if err := d.GetVara(elevID, []int64{1, 2}, []int64{2, 3}, sub); err != nil {
		t.Fatal(err)
	}
	want := []int32{8, 9, 10, 14, 15, 16}
	for i := range want {
		if sub[i] != want[i] {
			t.Fatalf("vara = %v, want %v", sub, want)
		}
	}
	// Strided: every other column of row 0.
	str := make([]int32, 3)
	if err := d.GetVars(elevID, []int64{0, 0}, []int64{1, 3}, []int64{1, 2}, str); err != nil {
		t.Fatal(err)
	}
	if str[0] != 0 || str[1] != 2 || str[2] != 4 {
		t.Fatalf("vars = %v", str)
	}
	// Mapped: transpose a 2x2 corner into memory (column-major).
	mapd := make([]int32, 4)
	if err := d.GetVarm(elevID, []int64{0, 0}, []int64{2, 2}, nil, []int64{1, 2}, mapd); err != nil {
		t.Fatal(err)
	}
	// File order 0,1,6,7 -> memory positions 0,2,1,3.
	if mapd[0] != 0 || mapd[2] != 1 || mapd[1] != 6 || mapd[3] != 7 {
		t.Fatalf("varm = %v", mapd)
	}
	// PutVarm round trip: write transposed, read natural.
	if err := d.PutVarm(elevID, []int64{2, 0}, []int64{2, 2}, nil, []int64{1, 2}, []int32{100, 102, 101, 103}); err != nil {
		t.Fatal(err)
	}
	back := make([]int32, 4)
	if err := d.GetVara(elevID, []int64{2, 0}, []int64{2, 2}, back); err != nil {
		t.Fatal(err)
	}
	if back[0] != 100 || back[1] != 101 || back[2] != 102 || back[3] != 103 {
		t.Fatalf("putvarm round trip = %v", back)
	}
}

func TestVar1(t *testing.T) {
	d, _, tempID, elevID := newDataset(t)
	if err := d.PutVar1(elevID, []int64{3, 5}, []int32{777}); err != nil {
		t.Fatal(err)
	}
	got := make([]int32, 1)
	if err := d.GetVar1(elevID, []int64{3, 5}, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 777 {
		t.Fatalf("var1 = %d", got[0])
	}
	// Record var element write extends records.
	if err := d.PutVar1(tempID, []int64{4, 0, 0}, []float64{1.25}); err != nil {
		t.Fatal(err)
	}
	if d.NumRecs() != 5 {
		t.Fatalf("NumRecs = %d", d.NumRecs())
	}
}

func TestTypeConversionOnPutGet(t *testing.T) {
	d, _, _, elevID := newDataset(t)
	// Put float64 into int variable (truncation), read back as float32.
	if err := d.PutVara(elevID, []int64{0, 0}, []int64{1, 3}, []float64{1.9, -2.9, 3.5}); err != nil {
		t.Fatal(err)
	}
	got := make([]float32, 3)
	if err := d.GetVara(elevID, []int64{0, 0}, []int64{1, 3}, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != -2 || got[2] != 3 {
		t.Fatalf("converted = %v", got)
	}
	// Out-of-range put reports ErrRange but stores the wrapped value.
	err := d.PutVara(elevID, []int64{0, 0}, []int64{1, 1}, []int64{1 << 40})
	if !errors.Is(err, cdf.ErrRange) {
		t.Fatalf("range error: %v", err)
	}
}

func TestRecordGrowthAndInterleaving(t *testing.T) {
	store := &MemStore{}
	d, _ := Create(store, nctype.Clobber)
	tdim, _ := d.DefDim("t", 0)
	xdim, _ := d.DefDim("x", 3)
	a, _ := d.DefVar("a", nctype.Int, []int{tdim, xdim})
	b, _ := d.DefVar("b", nctype.Int, []int{tdim, xdim})
	if err := d.EndDef(); err != nil {
		t.Fatal(err)
	}
	for rec := int64(0); rec < 4; rec++ {
		av := []int32{int32(rec * 10), int32(rec*10 + 1), int32(rec*10 + 2)}
		bv := []int32{int32(rec * 100), int32(rec*100 + 1), int32(rec*100 + 2)}
		if err := d.PutVara(a, []int64{rec, 0}, []int64{1, 3}, av); err != nil {
			t.Fatal(err)
		}
		if err := d.PutVara(b, []int64{rec, 0}, []int64{1, 3}, bv); err != nil {
			t.Fatal(err)
		}
	}
	if d.NumRecs() != 4 {
		t.Fatalf("NumRecs = %d", d.NumRecs())
	}
	// Read a strided record selection from each.
	got := make([]int32, 2*3)
	if err := d.GetVars(a, []int64{0, 0}, []int64{2, 3}, []int64{2, 1}, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[3] != 20 {
		t.Fatalf("strided records = %v", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// The interleaving on disk: record 0 of a, record 0 of b, record 1 of a...
	h, err := cdf.Decode(store.Data)
	if err != nil {
		t.Fatal(err)
	}
	va, vb := &h.Vars[0], &h.Vars[1]
	if vb.Begin != va.Begin+va.VSize {
		t.Fatalf("record slots not interleaved: a@%d+%d, b@%d", va.Begin, va.VSize, vb.Begin)
	}
	if h.RecSize() != va.VSize+vb.VSize {
		t.Fatalf("RecSize = %d", h.RecSize())
	}
}

func TestFillMode(t *testing.T) {
	store := &MemStore{}
	d, _ := Create(store, nctype.Clobber, WithFill())
	tdim, _ := d.DefDim("t", 0)
	xdim, _ := d.DefDim("x", 4)
	fixed, _ := d.DefVar("fixed", nctype.Int, []int{xdim})
	rec, _ := d.DefVar("rec", nctype.Float, []int{tdim, xdim})
	if err := d.EndDef(); err != nil {
		t.Fatal(err)
	}
	// Fixed var is pre-filled.
	got := make([]int32, 4)
	if err := d.GetVar(fixed, got); err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != nctype.FillInt {
			t.Fatalf("fixed fill = %v", got)
		}
	}
	// Writing record 2 fills records 0 and 1.
	if err := d.PutVara(rec, []int64{2, 0}, []int64{1, 4}, []float32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	f := make([]float32, 4)
	if err := d.GetVara(rec, []int64{0, 0}, []int64{1, 4}, f); err != nil {
		t.Fatal(err)
	}
	for _, v := range f {
		if v != nctype.FillFloat {
			t.Fatalf("record fill = %v", f)
		}
	}
}

func TestCustomFillValue(t *testing.T) {
	store := &MemStore{}
	d, _ := Create(store, nctype.Clobber, WithFill())
	xdim, _ := d.DefDim("x", 3)
	v, _ := d.DefVar("v", nctype.Int, []int{xdim})
	if err := d.PutAttr(v, "_FillValue", nctype.Int, []int32{-999}); err != nil {
		t.Fatal(err)
	}
	if err := d.EndDef(); err != nil {
		t.Fatal(err)
	}
	got := make([]int32, 3)
	if err := d.GetVar(v, got); err != nil {
		t.Fatal(err)
	}
	for _, x := range got {
		if x != -999 {
			t.Fatalf("custom fill = %v", got)
		}
	}
}

func TestRedefGrowsHeaderAndRelocates(t *testing.T) {
	d, store, tempID, elevID := newDataset(t)
	elev := make([]int32, 24)
	for i := range elev {
		elev[i] = int32(i + 1)
	}
	if err := d.PutVar(elevID, elev); err != nil {
		t.Fatal(err)
	}
	temp := make([]float64, 24)
	for i := range temp {
		temp[i] = float64(i) * 1.5
	}
	if err := d.PutVara(tempID, []int64{0, 0, 0}, []int64{1, 4, 6}, temp); err != nil {
		t.Fatal(err)
	}
	// Re-enter define mode and add attributes, a dimension, and a variable:
	// the header grows, so all data must move.
	if err := d.Redef(); err != nil {
		t.Fatal(err)
	}
	if err := d.PutAttr(GlobalID, "history", nctype.Char,
		"a long attribute string to force the header to grow well past its old size ........................"); err != nil {
		t.Fatal(err)
	}
	zdim, err := d.DefDim("z", 2)
	if err != nil {
		t.Fatal(err)
	}
	newID, err := d.DefVar("pressure", nctype.Float, []int{zdim})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EndDef(); err != nil {
		t.Fatal(err)
	}
	// Old data must have survived the move.
	gotElev := make([]int32, 24)
	if err := d.GetVar(elevID, gotElev); err != nil {
		t.Fatal(err)
	}
	for i := range elev {
		if gotElev[i] != elev[i] {
			t.Fatalf("elevation lost after redef: [%d]=%d", i, gotElev[i])
		}
	}
	gotTemp := make([]float64, 24)
	if err := d.GetVara(tempID, []int64{0, 0, 0}, []int64{1, 4, 6}, gotTemp); err != nil {
		t.Fatal(err)
	}
	for i := range temp {
		if gotTemp[i] != temp[i] {
			t.Fatalf("temp lost after redef: [%d]=%v", i, gotTemp[i])
		}
	}
	if err := d.PutVar(newID, []float32{9, 8}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Still a valid file.
	r, err := Open(store, nctype.NoWrite)
	if err != nil {
		t.Fatal(err)
	}
	if r.VarID("pressure") < 0 {
		t.Fatal("new variable missing after reopen")
	}
}

func TestModeErrors(t *testing.T) {
	d, store, tempID, elevID := newDataset(t)
	// Define-mode ops in data mode.
	if _, err := d.DefDim("nope", 5); !errors.Is(err, nctype.ErrNotInDefine) {
		t.Fatalf("DefDim in data mode: %v", err)
	}
	if _, err := d.DefVar("nope", nctype.Int, nil); !errors.Is(err, nctype.ErrNotInDefine) {
		t.Fatalf("DefVar in data mode: %v", err)
	}
	// Data ops in define mode.
	d.Redef()
	if err := d.PutVar1(elevID, []int64{0, 0}, []int32{1}); !errors.Is(err, nctype.ErrInDefine) {
		t.Fatalf("put in define mode: %v", err)
	}
	d.EndDef()
	// Bounds.
	if err := d.PutVara(elevID, []int64{0, 0}, []int64{5, 6}, make([]int32, 30)); !errors.Is(err, nctype.ErrEdge) {
		t.Fatalf("over-edge put: %v", err)
	}
	if err := d.GetVara(tempID, []int64{0, 0, 0}, []int64{1, 4, 6}, make([]float64, 24)); !errors.Is(err, nctype.ErrEdge) {
		t.Fatalf("read of record 0 with 0 records: %v", err)
	}
	// Buffer too small.
	if err := d.PutVar(elevID, make([]int32, 5)); !errors.Is(err, nctype.ErrCountMismatch) {
		t.Fatalf("short buffer: %v", err)
	}
	// Unknown ids.
	if err := d.PutVar(99, []int32{1}); !errors.Is(err, nctype.ErrNotVar) {
		t.Fatalf("bad varid: %v", err)
	}
	if _, _, err := d.InqDim(99); !errors.Is(err, nctype.ErrNotDim) {
		t.Fatalf("bad dimid: %v", err)
	}
	if _, _, err := d.GetAttr(GlobalID, "absent"); !errors.Is(err, nctype.ErrNotAtt) {
		t.Fatalf("absent att: %v", err)
	}
	d.Close()
	// Read-only enforcement.
	r, _ := Open(store, nctype.NoWrite)
	if err := r.PutVar1(0, []int64{0, 0, 0}, []float64{1}); !errors.Is(err, nctype.ErrPerm) {
		t.Fatalf("write to read-only: %v", err)
	}
	if err := r.Redef(); !errors.Is(err, nctype.ErrPerm) {
		t.Fatalf("redef read-only: %v", err)
	}
	r.Close()
	if err := r.Sync(); !errors.Is(err, nctype.ErrClosed) {
		t.Fatalf("sync closed: %v", err)
	}
}

func TestDefineValidation(t *testing.T) {
	store := &MemStore{}
	d, _ := Create(store, nctype.Clobber)
	tdim, _ := d.DefDim("t", 0)
	if _, err := d.DefDim("t", 5); !errors.Is(err, nctype.ErrNameInUse) {
		t.Fatalf("dup dim: %v", err)
	}
	if _, err := d.DefDim("u", 0); !errors.Is(err, nctype.ErrMultiUnlimited) {
		t.Fatalf("second unlimited: %v", err)
	}
	if _, err := d.DefDim("neg", -1); !errors.Is(err, nctype.ErrBadDim) {
		t.Fatalf("negative dim: %v", err)
	}
	if _, err := d.DefDim("bad/name", 1); err == nil {
		t.Fatal("slash in name accepted")
	}
	xdim, _ := d.DefDim("x", 2)
	if _, err := d.DefVar("v", nctype.Int, []int{xdim, tdim}); !errors.Is(err, nctype.ErrUnlimPos) {
		t.Fatalf("record dim not first: %v", err)
	}
	if _, err := d.DefVar("v", nctype.Int, []int{99}); !errors.Is(err, nctype.ErrBadDim) {
		t.Fatalf("bad dimid: %v", err)
	}
	if _, err := d.DefVar("v", nctype.UInt64, []int{xdim}); !errors.Is(err, nctype.ErrBadType) {
		t.Fatalf("CDF-5 type in CDF-1: %v", err)
	}
}

func TestCDF2AndCDF5(t *testing.T) {
	for _, mode := range []int{nctype.Bit64Offset, nctype.Bit64Data} {
		store := &MemStore{}
		d, err := Create(store, mode)
		if err != nil {
			t.Fatal(err)
		}
		x, _ := d.DefDim("x", 10)
		vt := nctype.Int
		if mode == nctype.Bit64Data {
			vt = nctype.Int64 // extended type only valid in CDF-5
		}
		v, err := d.DefVar("v", vt, []int{x})
		if err != nil {
			t.Fatal(err)
		}
		d.EndDef()
		if vt == nctype.Int64 {
			if err := d.PutVar(v, []int64{1 << 40, 2, 3, 4, 5, 6, 7, 8, 9, 10}); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := d.PutVar(v, make([]int32, 10)); err != nil {
				t.Fatal(err)
			}
		}
		d.Close()
		wantVer := byte(2)
		if mode == nctype.Bit64Data {
			wantVer = 5
		}
		if store.Data[3] != wantVer {
			t.Fatalf("version byte = %d, want %d", store.Data[3], wantVer)
		}
		r, err := Open(store, nctype.NoWrite)
		if err != nil {
			t.Fatal(err)
		}
		if vt == nctype.Int64 {
			got := make([]int64, 10)
			if err := r.GetVar(r.VarID("v"), got); err != nil {
				t.Fatal(err)
			}
			if got[0] != 1<<40 {
				t.Fatalf("CDF-5 int64 = %d", got[0])
			}
		}
	}
}

func TestAttrLifecycle(t *testing.T) {
	d, _, tempID, _ := newDataset(t)
	d.Redef()
	if err := d.PutAttr(tempID, "valid_range", nctype.Double, []float64{-50, 50}); err != nil {
		t.Fatal(err)
	}
	names, _ := d.AttrNames(tempID)
	if len(names) != 2 || names[1] != "valid_range" {
		t.Fatalf("AttrNames = %v", names)
	}
	// Overwrite.
	if err := d.PutAttr(tempID, "units", nctype.Char, "C"); err != nil {
		t.Fatal(err)
	}
	if err := d.DelAttr(tempID, "valid_range"); err != nil {
		t.Fatal(err)
	}
	if err := d.DelAttr(tempID, "valid_range"); !errors.Is(err, nctype.ErrNotAtt) {
		t.Fatalf("double delete: %v", err)
	}
	d.EndDef()
	// In data mode: same-size overwrite OK, larger rejected.
	if err := d.PutAttr(tempID, "units", nctype.Char, "F"); err != nil {
		t.Fatal(err)
	}
	if err := d.PutAttr(tempID, "units", nctype.Char, "Fahrenheit"); !errors.Is(err, nctype.ErrNotInDefine) {
		t.Fatalf("grow att in data mode: %v", err)
	}
	_, v, _ := d.GetAttr(tempID, "units")
	if string(v.([]byte)) != "F" {
		t.Fatalf("units = %q", v)
	}
}

func TestNumericAttrTypes(t *testing.T) {
	d, _, _, _ := newDataset(t)
	d.Redef()
	cases := []struct {
		name string
		t    nctype.Type
		val  any
	}{
		{"b", nctype.Byte, []int8{-1, 2}},
		{"s", nctype.Short, []int16{300}},
		{"i", nctype.Int, []int32{1 << 20}},
		{"f", nctype.Float, []float32{2.5}},
		{"d", nctype.Double, []float64{1e-300}},
		{"scalar", nctype.Int, 42},
	}
	for _, c := range cases {
		if err := d.PutAttr(GlobalID, c.name, c.t, c.val); err != nil {
			t.Fatalf("PutAttr %s: %v", c.name, err)
		}
	}
	d.EndDef()
	_, v, err := d.GetAttr(GlobalID, "d")
	if err != nil || v.([]float64)[0] != 1e-300 {
		t.Fatalf("double att: %v %v", v, err)
	}
	_, v, _ = d.GetAttr(GlobalID, "scalar")
	if v.([]int32)[0] != 42 {
		t.Fatalf("scalar att: %v", v)
	}
}

func TestOSStoreBackend(t *testing.T) {
	path := t.TempDir() + "/real.nc"
	f, err := createOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Create(OSStore{F: f}, nctype.Clobber)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := d.DefDim("x", 5)
	v, _ := d.DefVar("v", nctype.Short, []int{x})
	d.EndDef()
	if err := d.PutVar(v, []int16{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := openOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(OSStore{F: g}, nctype.NoWrite)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int16, 5)
	if err := r.GetVar(r.VarID("v"), got); err != nil {
		t.Fatal(err)
	}
	if got[4] != 5 {
		t.Fatalf("os round trip = %v", got)
	}
	r.Close()
}

func TestLargeHeaderOpen(t *testing.T) {
	// A header larger than the initial 64 KiB probe must still open.
	store := &MemStore{}
	d, _ := Create(store, nctype.Clobber)
	x, _ := d.DefDim("x", 1)
	for i := 0; i < 3000; i++ {
		name := "var_with_a_rather_long_name_to_inflate_the_header_" + itoa(i)
		if _, err := d.DefVar(name, nctype.Double, []int{x}); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	if int64(len(store.Data)) < 128<<10 {
		t.Skip("header unexpectedly small")
	}
	r, err := Open(store, nctype.NoWrite)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumVars() != 3000 {
		t.Fatalf("NumVars = %d", r.NumVars())
	}
}

func TestRandomizedAgainstOracle(t *testing.T) {
	// Write random subarrays into a 3-D variable and mirror them in a plain
	// Go array; reads must always agree.
	store := &MemStore{}
	d, _ := Create(store, nctype.Clobber)
	z, _ := d.DefDim("z", 5)
	y, _ := d.DefDim("y", 7)
	x, _ := d.DefDim("x", 11)
	v, _ := d.DefVar("v", nctype.Float, []int{z, y, x})
	d.EndDef()
	oracle := make([]float32, 5*7*11)
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		start := []int64{rng.Int63n(5), rng.Int63n(7), rng.Int63n(11)}
		count := []int64{
			rng.Int63n(5-start[0]) + 1,
			rng.Int63n(7-start[1]) + 1,
			rng.Int63n(11-start[2]) + 1,
		}
		n := count[0] * count[1] * count[2]
		if rng.Intn(2) == 0 {
			buf := make([]float32, n)
			for i := range buf {
				buf[i] = rng.Float32()
			}
			if err := d.PutVara(v, start, count, buf); err != nil {
				t.Fatal(err)
			}
			i := 0
			for a := start[0]; a < start[0]+count[0]; a++ {
				for b := start[1]; b < start[1]+count[1]; b++ {
					for c := start[2]; c < start[2]+count[2]; c++ {
						oracle[a*77+b*11+c] = buf[i]
						i++
					}
				}
			}
		} else {
			buf := make([]float32, n)
			if err := d.GetVara(v, start, count, buf); err != nil {
				t.Fatal(err)
			}
			i := 0
			for a := start[0]; a < start[0]+count[0]; a++ {
				for b := start[1]; b < start[1]+count[1]; b++ {
					for c := start[2]; c < start[2]+count[2]; c++ {
						if buf[i] != oracle[a*77+b*11+c] {
							t.Fatalf("iter %d: mismatch at (%d,%d,%d)", iter, a, b, c)
						}
						i++
					}
				}
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestConversionMatrix drives every (external type, memory type) pair the
// library supports through a put/get cycle with small in-range values.
func TestConversionMatrix(t *testing.T) {
	exts := []nctype.Type{
		nctype.Byte, nctype.Short, nctype.Int, nctype.Float, nctype.Double,
	}
	memFactories := map[string]func(vals []int64) any{
		"int8": func(v []int64) any {
			out := make([]int8, len(v))
			for i := range v {
				out[i] = int8(v[i])
			}
			return out
		},
		"int16": func(v []int64) any {
			out := make([]int16, len(v))
			for i := range v {
				out[i] = int16(v[i])
			}
			return out
		},
		"int32": func(v []int64) any {
			out := make([]int32, len(v))
			for i := range v {
				out[i] = int32(v[i])
			}
			return out
		},
		"int64": func(v []int64) any { out := make([]int64, len(v)); copy(out, v); return out },
		"uint16": func(v []int64) any {
			out := make([]uint16, len(v))
			for i := range v {
				out[i] = uint16(v[i])
			}
			return out
		},
		"uint32": func(v []int64) any {
			out := make([]uint32, len(v))
			for i := range v {
				out[i] = uint32(v[i])
			}
			return out
		},
		"float32": func(v []int64) any {
			out := make([]float32, len(v))
			for i := range v {
				out[i] = float32(v[i])
			}
			return out
		},
		"float64": func(v []int64) any {
			out := make([]float64, len(v))
			for i := range v {
				out[i] = float64(v[i])
			}
			return out
		},
	}
	vals := []int64{0, 1, 42, 100, 127} // in range for every type above
	for _, ext := range exts {
		for memName, mk := range memFactories {
			store := &MemStore{}
			d, _ := Create(store, nctype.Clobber)
			x, _ := d.DefDim("x", int64(len(vals)))
			v, err := d.DefVar("v", ext, []int{x})
			if err != nil {
				t.Fatal(err)
			}
			d.EndDef()
			if err := d.PutVar(v, mk(vals)); err != nil {
				t.Fatalf("%v <- %s: put: %v", ext, memName, err)
			}
			// Read back as int64 (lossless for these values).
			got := make([]int64, len(vals))
			if err := d.GetVar(v, got); err != nil {
				t.Fatalf("%v -> int64 (wrote %s): get: %v", ext, memName, err)
			}
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("%v via %s: [%d] = %d, want %d", ext, memName, i, got[i], vals[i])
				}
			}
		}
	}
}

func TestAbortDiscardsNothingWritten(t *testing.T) {
	store := &MemStore{}
	d, _ := Create(store, nctype.Clobber)
	d.DefDim("x", 4)
	if err := d.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := d.Abort(); err != nil {
		t.Fatalf("double abort not idempotent: %v", err)
	}
	// Nothing flushed: the store must not contain a valid header.
	if len(store.Data) != 0 {
		if _, err := cdf.Decode(store.Data); err == nil {
			t.Fatal("abort flushed a header")
		}
	}
}

func TestNumRecsPersistedOnSync(t *testing.T) {
	store := &MemStore{}
	d, _ := Create(store, nctype.Clobber)
	tdim, _ := d.DefDim("t", 0)
	x, _ := d.DefDim("x", 2)
	v, _ := d.DefVar("v", nctype.Int, []int{tdim, x})
	d.EndDef()
	for rec := int64(0); rec < 3; rec++ {
		if err := d.PutVara(v, []int64{rec, 0}, []int64{1, 2}, []int32{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(store, nctype.NoWrite)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRecs() != 3 {
		t.Fatalf("persisted NumRecs = %d", r.NumRecs())
	}
}

func TestPutVarsOnRecordVariableGrows(t *testing.T) {
	d, _, tempID, _ := newDataset(t)
	// Write records 0, 2, 4 with one strided put (grows to 5 records).
	buf := make([]float64, 3*4*6)
	for i := range buf {
		buf[i] = float64(i)
	}
	if err := d.PutVars(tempID, []int64{0, 0, 0}, []int64{3, 4, 6}, []int64{2, 1, 1}, buf); err != nil {
		t.Fatal(err)
	}
	if d.NumRecs() != 5 {
		t.Fatalf("NumRecs = %d", d.NumRecs())
	}
	// Record 2 starts at buffer offset 24.
	one := make([]float64, 1)
	if err := d.GetVar1(tempID, []int64{2, 0, 0}, one); err != nil {
		t.Fatal(err)
	}
	if one[0] != 24 {
		t.Fatalf("record 2 first = %v", one[0])
	}
	// Records 1 and 3 were skipped (nofill: zero from sparse storage).
	if err := d.GetVar1(tempID, []int64{1, 0, 0}, one); err != nil {
		t.Fatal(err)
	}
	if one[0] != 0 {
		t.Fatalf("skipped record = %v", one[0])
	}
}

func TestGetVarWholeRecordVariable(t *testing.T) {
	d, _, tempID, _ := newDataset(t)
	n := 2 * 4 * 6
	buf := make([]float64, n)
	for i := range buf {
		buf[i] = float64(i) * 2
	}
	// PutVar on a fresh record variable infers the record count from the
	// buffer length.
	if err := d.PutVar(tempID, buf); err != nil {
		t.Fatal(err)
	}
	if d.NumRecs() != 2 {
		t.Fatalf("NumRecs = %d", d.NumRecs())
	}
	got := make([]float64, n)
	if err := d.GetVar(tempID, got); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if got[i] != buf[i] {
			t.Fatalf("[%d] = %v", i, got[i])
		}
	}
}

func TestBufferPlumbingAllTypes(t *testing.T) {
	// MakeLike/GatherAny/ScatterAny must support every memory type.
	segs := []mpitype.Segment{{Off: 1, Len: 2}}
	bufs := []any{
		[]int8{1, 2, 3}, []int16{1, 2, 3}, []int32{1, 2, 3}, []int64{1, 2, 3},
		[]uint8{1, 2, 3}, []uint16{1, 2, 3}, []uint32{1, 2, 3}, []uint64{1, 2, 3},
		[]float32{1, 2, 3}, []float64{1, 2, 3},
	}
	for _, b := range bufs {
		m, err := MakeLike(b, 2)
		if err != nil {
			t.Fatalf("MakeLike(%T): %v", b, err)
		}
		g, err := GatherAny(b, segs)
		if err != nil {
			t.Fatalf("GatherAny(%T): %v", b, err)
		}
		if cdf.SliceLen(g) != 2 {
			t.Fatalf("gathered %T len %d", b, cdf.SliceLen(g))
		}
		if err := ScatterAny(g, segs, m); err == nil {
			// m has 2 elements but segs targets offset 1..3: must error.
			t.Fatalf("ScatterAny(%T) accepted out-of-bounds", b)
		}
		dst, _ := MakeLike(b, 3)
		if err := ScatterAny(g, segs, dst); err != nil {
			t.Fatalf("ScatterAny(%T): %v", b, err)
		}
	}
	if _, err := MakeLike(struct{}{}, 1); err == nil {
		t.Fatal("MakeLike accepted unsupported type")
	}
	if _, err := GatherAny("strings unsupported here", segs); err == nil {
		t.Fatal("GatherAny accepted string")
	}
	if err := ScatterAny("nope", segs, "nope"); err == nil {
		t.Fatal("ScatterAny accepted string")
	}
}

func TestOptionsAndHeaderAccessors(t *testing.T) {
	store := &MemStore{}
	d, err := Create(store, nctype.Clobber, WithHeaderAlign(512), WithCache(1024, 4))
	if err != nil {
		t.Fatal(err)
	}
	x, _ := d.DefDim("x", 4)
	if _, err := d.DefVar("v", nctype.Int, []int{x}); err != nil {
		t.Fatal(err)
	}
	if err := d.EndDef(); err != nil {
		t.Fatal(err)
	}
	h := d.Header()
	if h == nil || h.FindVar("v") < 0 {
		t.Fatal("Header accessor broken")
	}
	if h.Vars[0].Begin%512 != 0 {
		t.Fatalf("WithHeaderAlign ignored: begin %d", h.Vars[0].Begin)
	}
	if d.UnlimitedDimID() != -1 {
		t.Fatalf("UnlimitedDimID = %d", d.UnlimitedDimID())
	}
	shape, err := d.VarShape(0)
	if err != nil || len(shape) != 1 || shape[0] != 4 {
		t.Fatalf("VarShape = %v (%v)", shape, err)
	}
	if _, err := d.VarShape(9); !errors.Is(err, nctype.ErrNotVar) {
		t.Fatalf("VarShape bad id: %v", err)
	}
}
