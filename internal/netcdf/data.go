package netcdf

import (
	"fmt"

	"pnetcdf/internal/access"
	"pnetcdf/internal/bufpool"
	"pnetcdf/internal/cdf"
	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
)

// --- Inquiry functions (category 4 of the serial API) ---

// NumDims returns the number of dimensions.
func (d *Dataset) NumDims() int { return len(d.hdr.Dims) }

// NumVars returns the number of variables.
func (d *Dataset) NumVars() int { return len(d.hdr.Vars) }

// NumRecs returns the current record count.
func (d *Dataset) NumRecs() int64 { return d.hdr.NumRecs }

// UnlimitedDimID returns the record dimension's ID, or -1.
func (d *Dataset) UnlimitedDimID() int { return d.hdr.UnlimitedDimID() }

// DimID looks a dimension up by name (-1 if absent).
func (d *Dataset) DimID(name string) int { return d.hdr.FindDim(name) }

// VarID looks a variable up by name (-1 if absent).
func (d *Dataset) VarID(name string) int { return d.hdr.FindVar(name) }

// InqDim returns a dimension's name and length.
func (d *Dataset) InqDim(dimid int) (string, int64, error) {
	if dimid < 0 || dimid >= len(d.hdr.Dims) {
		return "", 0, nctype.ErrNotDim
	}
	dim := d.hdr.Dims[dimid]
	return dim.Name, dim.Len, nil
}

// InqVar returns a variable's name, type and dimension IDs.
func (d *Dataset) InqVar(varid int) (string, nctype.Type, []int, error) {
	if varid < 0 || varid >= len(d.hdr.Vars) {
		return "", 0, nil, nctype.ErrNotVar
	}
	v := &d.hdr.Vars[varid]
	return v.Name, v.Type, append([]int(nil), v.DimIDs...), nil
}

// VarShape returns a variable's current dimension lengths (records expanded
// to NumRecs).
func (d *Dataset) VarShape(varid int) ([]int64, error) {
	if varid < 0 || varid >= len(d.hdr.Vars) {
		return nil, nctype.ErrNotVar
	}
	return d.hdr.VarShape(&d.hdr.Vars[varid]), nil
}

// --- Buffer plumbing shared with the parallel library ---

// SliceHead returns the first n elements of any supported slice type.
// A nil buffer is accepted for zero-element requests (idle participants in
// collective calls).
func SliceHead(data any, n int64) (any, error) {
	if n == 0 && data == nil {
		return []byte{}, nil
	}
	if cdf.SliceLen(data) < int(n) {
		return nil, fmt.Errorf("%w: need %d elements, buffer has %d",
			nctype.ErrCountMismatch, n, cdf.SliceLen(data))
	}
	switch s := data.(type) {
	case []int8:
		return s[:n], nil
	case []int16:
		return s[:n], nil
	case []int32:
		return s[:n], nil
	case []int64:
		return s[:n], nil
	case []uint8:
		return s[:n], nil
	case []uint16:
		return s[:n], nil
	case []uint32:
		return s[:n], nil
	case []uint64:
		return s[:n], nil
	case []float32:
		return s[:n], nil
	case []float64:
		return s[:n], nil
	case string:
		return s[:n], nil
	}
	return nil, fmt.Errorf("%w: %T", nctype.ErrTypeMismatch, data)
}

// MakeLike allocates a new slice of the same element type as data with n
// elements.
func MakeLike(data any, n int64) (any, error) {
	switch data.(type) {
	case []int8:
		return make([]int8, n), nil
	case []int16:
		return make([]int16, n), nil
	case []int32:
		return make([]int32, n), nil
	case []int64:
		return make([]int64, n), nil
	case []uint8:
		return make([]uint8, n), nil
	case []uint16:
		return make([]uint16, n), nil
	case []uint32:
		return make([]uint32, n), nil
	case []uint64:
		return make([]uint64, n), nil
	case []float32:
		return make([]float32, n), nil
	case []float64:
		return make([]float64, n), nil
	}
	return nil, fmt.Errorf("%w: %T", nctype.ErrTypeMismatch, data)
}

// GatherAny linearizes the elements selected by segs from any supported
// slice type.
func GatherAny(data any, segs []mpitype.Segment) (any, error) {
	switch s := data.(type) {
	case []int8:
		return mpitype.GatherElems(s, segs)
	case []int16:
		return mpitype.GatherElems(s, segs)
	case []int32:
		return mpitype.GatherElems(s, segs)
	case []int64:
		return mpitype.GatherElems(s, segs)
	case []uint8:
		return mpitype.GatherElems(s, segs)
	case []uint16:
		return mpitype.GatherElems(s, segs)
	case []uint32:
		return mpitype.GatherElems(s, segs)
	case []uint64:
		return mpitype.GatherElems(s, segs)
	case []float32:
		return mpitype.GatherElems(s, segs)
	case []float64:
		return mpitype.GatherElems(s, segs)
	}
	return nil, fmt.Errorf("%w: %T", nctype.ErrTypeMismatch, data)
}

// ScatterAny writes linearized elements back into the positions selected by
// segs within dst.
func ScatterAny(src any, segs []mpitype.Segment, dst any) error {
	switch s := src.(type) {
	case []int8:
		return mpitype.ScatterElems(s, segs, dst.([]int8))
	case []int16:
		return mpitype.ScatterElems(s, segs, dst.([]int16))
	case []int32:
		return mpitype.ScatterElems(s, segs, dst.([]int32))
	case []int64:
		return mpitype.ScatterElems(s, segs, dst.([]int64))
	case []uint8:
		return mpitype.ScatterElems(s, segs, dst.([]uint8))
	case []uint16:
		return mpitype.ScatterElems(s, segs, dst.([]uint16))
	case []uint32:
		return mpitype.ScatterElems(s, segs, dst.([]uint32))
	case []uint64:
		return mpitype.ScatterElems(s, segs, dst.([]uint64))
	case []float32:
		return mpitype.ScatterElems(s, segs, dst.([]float32))
	case []float64:
		return mpitype.ScatterElems(s, segs, dst.([]float64))
	}
	return fmt.Errorf("%w: %T", nctype.ErrTypeMismatch, src)
}

// PackFlex appends the external representation of the elements selected by
// memsegs (element units) from data to dst: the pack half of every
// flexible/imap access, shared by the serial and parallel libraries. The
// conversion runs run-length over the flattened typemap — one encode pass
// per contiguous run, no gathered intermediate.
func PackFlex(dst []byte, t nctype.Type, data any, memsegs []mpitype.Segment) ([]byte, error) {
	return cdf.EncodeSegs(dst, t, data, memsegs)
}

// UnpackFlex decodes external bytes and scatters the values into the
// positions selected by memsegs within data — the inverse of PackFlex.
func UnpackFlex(src []byte, t nctype.Type, memsegs []mpitype.Segment, data any) error {
	return cdf.DecodeSegs(src, t, memsegs, data)
}

// --- Data access functions (category 5) ---

// PutVara writes a whole subarray: the (start, count) access method.
func (d *Dataset) PutVara(varid int, start, count []int64, data any) error {
	return d.put(varid, start, count, nil, nil, data)
}

// GetVara reads a whole subarray into data.
func (d *Dataset) GetVara(varid int, start, count []int64, data any) error {
	return d.get(varid, start, count, nil, nil, data)
}

// PutVars writes a strided subarray.
func (d *Dataset) PutVars(varid int, start, count, stride []int64, data any) error {
	return d.put(varid, start, count, stride, nil, data)
}

// GetVars reads a strided subarray.
func (d *Dataset) GetVars(varid int, start, count, stride []int64, data any) error {
	return d.get(varid, start, count, stride, nil, data)
}

// PutVarm writes a mapped strided subarray; imap gives the memory distance
// (in elements) between successive indices of each dimension.
func (d *Dataset) PutVarm(varid int, start, count, stride, imap []int64, data any) error {
	return d.put(varid, start, count, stride, imap, data)
}

// GetVarm reads a mapped strided subarray.
func (d *Dataset) GetVarm(varid int, start, count, stride, imap []int64, data any) error {
	return d.get(varid, start, count, stride, imap, data)
}

// PutVar1 writes a single element.
func (d *Dataset) PutVar1(varid int, index []int64, data any) error {
	ones := make([]int64, len(index))
	for i := range ones {
		ones[i] = 1
	}
	return d.put(varid, index, ones, nil, nil, data)
}

// GetVar1 reads a single element.
func (d *Dataset) GetVar1(varid int, index []int64, data any) error {
	ones := make([]int64, len(index))
	for i := range ones {
		ones[i] = 1
	}
	return d.get(varid, index, ones, nil, nil, data)
}

// PutVar writes the entire variable (all current records for record
// variables).
func (d *Dataset) PutVar(varid int, data any) error {
	start, count, err := d.wholeVar(varid, data)
	if err != nil {
		return err
	}
	return d.put(varid, start, count, nil, nil, data)
}

// GetVar reads the entire variable.
func (d *Dataset) GetVar(varid int, data any) error {
	start, count, err := d.wholeVar(varid, data)
	if err != nil {
		return err
	}
	return d.get(varid, start, count, nil, nil, data)
}

func (d *Dataset) wholeVar(varid int, data any) ([]int64, []int64, error) {
	if varid < 0 || varid >= len(d.hdr.Vars) {
		return nil, nil, nctype.ErrNotVar
	}
	v := &d.hdr.Vars[varid]
	shape := d.hdr.VarShape(v)
	start := make([]int64, len(shape))
	if d.hdr.IsRecordVar(v) && len(shape) > 0 && shape[0] == 0 {
		// Writing a whole fresh record variable: infer the record count from
		// the buffer length.
		inner := int64(1)
		for _, s := range shape[1:] {
			inner *= s
		}
		if inner > 0 {
			shape[0] = int64(cdf.SliceLen(data)) / inner
		}
	}
	return start, shape, nil
}

func (d *Dataset) varByID(varid int) (*cdf.Var, error) {
	if varid < 0 || varid >= len(d.hdr.Vars) {
		return nil, nctype.ErrNotVar
	}
	return &d.hdr.Vars[varid], nil
}

func (d *Dataset) put(varid int, start, count, stride, imap []int64, data any) error {
	if err := d.checkData(); err != nil {
		return err
	}
	if d.ro {
		return nctype.ErrPerm
	}
	v, err := d.varByID(varid)
	if err != nil {
		return err
	}
	req, err := access.Validate(d.hdr, v, start, count, stride, true)
	if err != nil {
		return err
	}
	memsegs, err := access.MemSegments(req.Count, imap)
	if err != nil {
		return err
	}
	// Pack straight from user memory into a pooled external buffer; strided
	// (imap) memory converts run-length over the flattened typemap.
	ext := bufpool.GetDirty(int(req.NElems) * v.Type.Size())[:0]
	defer func() { bufpool.Put(ext) }()
	var encErr error
	if imap == nil {
		var linear any
		linear, err = SliceHead(data, req.NElems)
		if err != nil {
			return err
		}
		ext, encErr = cdf.EncodeSlice(ext, v.Type, linear)
	} else {
		ext, encErr = PackFlex(ext, v.Type, data, memsegs)
	}
	if encErr != nil && encErr != cdf.ErrRange {
		return encErr
	}
	// Grow records first (with fill if enabled) so concurrent record
	// variables keep a consistent record count.
	if req.LastRecord >= d.hdr.NumRecs {
		if err := d.growRecords(req.LastRecord + 1); err != nil {
			return err
		}
	}
	segs := access.FileSegments(d.hdr, v, req)
	pos := int64(0)
	for _, s := range segs {
		if err := d.cache.WriteAt(ext[pos:pos+s.Len], s.Off); err != nil {
			return err
		}
		pos += s.Len
	}
	return encErr // nil or ErrRange, after the data is written (netCDF style)
}

func (d *Dataset) get(varid int, start, count, stride, imap []int64, data any) error {
	if err := d.checkData(); err != nil {
		return err
	}
	v, err := d.varByID(varid)
	if err != nil {
		return err
	}
	req, err := access.Validate(d.hdr, v, start, count, stride, false)
	if err != nil {
		return err
	}
	segs := access.FileSegments(d.hdr, v, req)
	// Pooled and dirty: the segment reads fill every byte.
	ext := bufpool.GetDirty(int(req.NElems) * v.Type.Size())
	defer bufpool.Put(ext)
	pos := int64(0)
	for _, s := range segs {
		if err := d.cache.ReadAt(ext[pos:pos+s.Len], s.Off); err != nil {
			return err
		}
		pos += s.Len
	}
	if imap == nil {
		linear, err := SliceHead(data, req.NElems)
		if err != nil {
			return err
		}
		return cdf.DecodeSlice(ext, v.Type, linear)
	}
	memsegs, err := access.MemSegments(req.Count, imap)
	if err != nil {
		return err
	}
	return UnpackFlex(ext, v.Type, memsegs, data)
}

// growRecords extends NumRecs to n, prefilling the new records when fill
// mode is on.
func (d *Dataset) growRecords(n int64) error {
	from := d.hdr.NumRecs
	d.hdr.NumRecs = n
	if d.fill != Fill {
		return nil
	}
	for i := range d.hdr.Vars {
		v := &d.hdr.Vars[i]
		if !d.hdr.IsRecordVar(v) {
			continue
		}
		fillBuf := cdf.FillBytes(v, d.hdr.VarSlotSize(v)/int64(v.Type.Size()))
		for rec := from; rec < n; rec++ {
			if err := d.cache.WriteAt(fillBuf, d.hdr.RecordOffset(v, rec)); err != nil {
				return err
			}
		}
	}
	return nil
}

// fillFixedVars writes fill values into every fixed variable (EndDef with
// fill mode on). Only variables new since the last define mode are filled.
func (d *Dataset) fillFixedVars() error {
	for i := range d.hdr.Vars {
		v := &d.hdr.Vars[i]
		if d.hdr.IsRecordVar(v) {
			continue
		}
		if d.prevVars != nil && d.prevVars[v.Name] {
			continue
		}
		n := v.VSize / int64(v.Type.Size())
		const chunkElems = 64 << 10
		fillBuf := cdf.FillBytes(v, min64(n, chunkElems))
		off := v.Begin
		for n > 0 {
			k := min64(n, chunkElems)
			if err := d.cache.WriteAt(fillBuf[:k*int64(v.Type.Size())], off); err != nil {
				return err
			}
			off += k * int64(v.Type.Size())
			n -= k
		}
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
