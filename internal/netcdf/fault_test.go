package netcdf

import (
	"errors"
	"fmt"
	"testing"

	"pnetcdf/internal/cdf"
	"pnetcdf/internal/fault"
	"pnetcdf/internal/nctype"
)

// buildRecordFile writes a small record file (time-unlimited var over a
// 2x3 spatial grid, nrecs records) and returns the clean on-disk image.
func buildRecordFile(t *testing.T, nrecs int) []byte {
	t.Helper()
	store := &MemStore{}
	d, err := Create(store, nctype.Clobber)
	if err != nil {
		t.Fatal(err)
	}
	tdim, _ := d.DefDim("time", 0)
	ydim, _ := d.DefDim("y", 2)
	xdim, _ := d.DefDim("x", 3)
	zdim, _ := d.DefDim("z", 256)
	// A fixed-var spacer pushes record data well past the header so the
	// two never share a cache page in the crash tests below.
	if _, err := d.DefVar("pad", nctype.Double, []int{zdim}); err != nil {
		t.Fatal(err)
	}
	v, err := d.DefVar("v", nctype.Int, []int{tdim, ydim, xdim})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EndDef(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nrecs; r++ {
		vals := make([]int32, 6)
		for i := range vals {
			vals[i] = int32(r*100 + i)
		}
		if err := d.PutVara(v, []int64{int64(r), 0, 0}, []int64{1, 2, 3}, vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), store.Data...)
}

// recVar is the record variable's ID in files built by buildRecordFile.
const recVar = 1

// TestShortCountStoreRoundTrip: every store access must survive a backend
// that returns short counts with nil errors (the regression the
// readFull/writeFull sweep fixed — the page cache and header probe used to
// trust the first count they got).
func TestShortCountStoreRoundTrip(t *testing.T) {
	in := fault.New(fault.Config{Seed: 42, ShortRate: 0.5})
	store := fault.NewFaultyStore(&MemStore{}, in)
	d, err := Create(store, nctype.Clobber)
	if err != nil {
		t.Fatal(err)
	}
	tdim, _ := d.DefDim("time", 0)
	xdim, _ := d.DefDim("x", 37)
	v, _ := d.DefVar("v", nctype.Double, []int{tdim, xdim})
	if err := d.EndDef(); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 5*37)
	for i := range want {
		want[i] = float64(i) * 1.5
	}
	if err := d.PutVara(v, []int64{0, 0}, []int64{5, 37}, want); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if in.Injected() == 0 {
		t.Fatal("no short transfers were injected; test proves nothing")
	}
	// Reopen through a fresh faulty wrapper and read everything back.
	r, err := Open(store, nctype.NoWrite)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 5*37)
	if err := r.GetVara(v, []int64{0, 0}, []int64{5, 37}, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("[%d] = %g, want %g (short count dropped bytes)", i, got[i], want[i])
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTransientStoreErrorsSurfaceNotPanic: transient backend errors must
// come back as errors (the serial library has no retry policy — that lives
// in the parallel stack), never as silent corruption or panics.
func TestTransientStoreErrorsSurface(t *testing.T) {
	img := buildRecordFile(t, 3)
	in := fault.New(fault.Config{Seed: 9, ReadErrRate: 0.7})
	store := fault.NewFaultyStore(&MemStore{Data: img}, in)
	d, err := Open(store, nctype.NoWrite)
	if err != nil {
		if !errors.Is(err, fault.ErrTransient) {
			t.Fatalf("open failed with non-injected error: %v", err)
		}
		return
	}
	got := make([]int32, 6)
	for r := int64(0); r < 3; r++ {
		err := d.GetVara(recVar, []int64{r, 0, 0}, []int64{1, 2, 3}, got)
		if err != nil && !errors.Is(err, fault.ErrTransient) {
			t.Fatalf("rec %d: non-injected error: %v", r, err)
		}
		if err == nil {
			for i, g := range got {
				if g != int32(r*100+int64(i)) {
					t.Fatalf("rec %d[%d] = %d: fault leaked corruption into a successful read", r, i, g)
				}
			}
		}
	}
}

// TestCrashDuringHeaderCommitSweep arms a crash point at every byte class
// the header-commit protocol touches and checks the invariant the protocol
// guarantees: the abandoned file always opens as either the old or the new
// header — never a torn in-between — and the validator classifies it
// without panicking.
func TestCrashDuringHeaderCommitSweep(t *testing.T) {
	base := buildRecordFile(t, 2)
	hdr, err := cdf.Decode(base)
	if err != nil {
		t.Fatal(err)
	}
	hdrLen := hdr.EncodedSize()
	// Crash bytes: inside the magic, inside NumRecs, across the header
	// body, at the journal region past EOF, and inside record data.
	crashes := []int64{0, 1, 3, 4, 5, 7, hdrLen / 2, hdrLen - 1, hdrLen,
		int64(len(base)) - 1, int64(len(base)) + 8}
	for _, at := range crashes {
		at := at
		t.Run(fmt.Sprintf("crash@%d", at), func(t *testing.T) {
			in := fault.New(fault.Config{Seed: 1})
			ms := &MemStore{Data: append([]byte(nil), base...)}
			store := fault.NewFaultyStore(ms, in)
			d, err := Open(store, nctype.Write, WithCache(512, 16))
			if err != nil {
				t.Fatal(err)
			}
			// Grow the file by two records, then crash during the sync.
			vals := []int32{7, 7, 7, 7, 7, 7}
			for r := int64(2); r < 4; r++ {
				if err := d.PutVara(recVar, []int64{r, 0, 0}, []int64{1, 2, 3}, vals); err != nil {
					t.Fatal(err)
				}
			}
			// truncateFile=false: a torn in-place write. Already-durable
			// bytes (the step-1 journal) survive the crash.
			in.ArmCrash(at, false)
			syncErr := d.Sync()
			if syncErr != nil && !errors.Is(syncErr, fault.ErrCrashed) {
				t.Fatalf("sync failed for a non-injected reason: %v", syncErr)
			}
			// Abandon the handle (the process died); inspect the wreckage.
			img := append([]byte(nil), ms.Data...)
			r, err := Open(&MemStore{Data: img}, nctype.NoWrite)
			if err != nil {
				t.Fatalf("crashed file does not open as old or new header: %v", err)
			}
			nrecs := r.NumRecs()
			if nrecs != 2 && nrecs != 4 {
				t.Fatalf("NumRecs = %d after crash, want old (2) or new (4)", nrecs)
			}
			got := make([]int32, 6)
			for rec := int64(0); rec < nrecs; rec++ {
				if err := r.GetVara(recVar, []int64{rec, 0, 0}, []int64{1, 2, 3}, got); err != nil {
					t.Fatalf("read rec %d of crashed file: %v", rec, err)
				}
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			// The offline validator must classify the image, not panic.
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("CheckFile panicked on crashed image: %v", p)
					}
				}()
				img2 := append([]byte(nil), ms.Data...)
				if _, _, err := cdf.CheckFile(img2); err != nil {
					// A torn in-place header is a legal classification —
					// recovery must then find the journal.
					if rec := cdf.RecoverJournal(img2); rec == nil {
						t.Fatalf("header unreadable and no journal recoverable: %v", err)
					}
				}
			}()
		})
	}
}

// TestRecoveredFileRepairsInPlaceHeader: opening a crash-torn file in
// write mode must rewrite the in-place header from the journal so later
// readers need no recovery.
func TestRecoveredFileRepairsInPlaceHeader(t *testing.T) {
	base := buildRecordFile(t, 2)
	in := fault.New(fault.Config{Seed: 1})
	ms := &MemStore{Data: append([]byte(nil), base...)}
	store := fault.NewFaultyStore(ms, in)
	d, err := Open(store, nctype.Write, WithCache(512, 16))
	if err != nil {
		t.Fatal(err)
	}
	vals := []int32{9, 9, 9, 9, 9, 9}
	if err := d.PutVara(recVar, []int64{2, 0, 0}, []int64{1, 2, 3}, vals); err != nil {
		t.Fatal(err)
	}
	in.ArmCrash(5, false) // tear the in-place header mid-body
	if err := d.Sync(); !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("sync: %v, want crash", err)
	}
	img := append([]byte(nil), ms.Data...)
	if _, err := cdf.Decode(img); err == nil {
		t.Fatal("crash at byte 5 should have torn the in-place header")
	}
	// Write-mode open recovers from the journal and repairs in place.
	repaired := &MemStore{Data: img}
	d2, err := Open(repaired, nctype.Write)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cdf.Decode(repaired.Data); err != nil {
		t.Fatalf("in-place header still torn after write-mode open: %v", err)
	}
}
