// Package netcdf is a serial netCDF (classic format) library: the baseline
// the paper compares PnetCDF against, and the library a single process would
// use in the paper's Figure 2(a)/(b) scenarios. It implements the five
// function families of the original API — dataset, define mode, attribute,
// inquiry, and data access (var1 / var / vara / vars / varm) — over any
// random-access Store, with a user-space page cache standing in for the
// original library's buffering layer.
package netcdf

import (
	"container/list"
	"errors"
	"io"
	"os"
)

// Store is the random-access backend a Dataset runs on: a real *os.File (see
// OSStore), the simulated parallel file system's serial adapter
// (pfs.SerialFile), or an in-memory buffer (MemStore).
type Store interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Size() (int64, error)
	Truncate(int64) error
	Sync() error
	Close() error
}

// OSStore adapts an *os.File to Store.
type OSStore struct{ F *os.File }

// ReadAt reads, zero-filling past EOF (netCDF semantics for unwritten
// data). Only io.EOF is translated into zero-fill; genuine I/O errors
// propagate to the caller instead of being silently swallowed.
func (s OSStore) ReadAt(p []byte, off int64) (int, error) {
	n, err := s.F.ReadAt(p, off)
	if err == io.EOF {
		for i := n; i < len(p); i++ {
			p[i] = 0
		}
		return len(p), nil
	}
	return n, err
}

// WriteAt writes through to the file.
func (s OSStore) WriteAt(p []byte, off int64) (int, error) { return s.F.WriteAt(p, off) }

// Size stats the file.
func (s OSStore) Size() (int64, error) {
	fi, err := s.F.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Truncate resizes the file.
func (s OSStore) Truncate(n int64) error { return s.F.Truncate(n) }

// Sync flushes the file.
func (s OSStore) Sync() error { return s.F.Sync() }

// Close closes the file.
func (s OSStore) Close() error { return s.F.Close() }

// MemStore is an in-memory Store for tests and tools.
type MemStore struct{ Data []byte }

// ReadAt reads, zero-filling beyond the current size.
func (m *MemStore) ReadAt(p []byte, off int64) (int, error) {
	for i := range p {
		p[i] = 0
	}
	if off < int64(len(m.Data)) {
		copy(p, m.Data[off:])
	}
	return len(p), nil
}

// WriteAt writes, growing the buffer as needed.
func (m *MemStore) WriteAt(p []byte, off int64) (int, error) {
	if need := off + int64(len(p)); need > int64(len(m.Data)) {
		grown := make([]byte, need)
		copy(grown, m.Data)
		m.Data = grown
	}
	copy(m.Data[off:], p)
	return len(p), nil
}

// Size returns the buffer length.
func (m *MemStore) Size() (int64, error) { return int64(len(m.Data)), nil }

// Truncate resizes the buffer.
func (m *MemStore) Truncate(n int64) error {
	if n <= int64(len(m.Data)) {
		m.Data = m.Data[:n]
		return nil
	}
	grown := make([]byte, n)
	copy(grown, m.Data)
	m.Data = grown
	return nil
}

// Sync is a no-op.
func (m *MemStore) Sync() error { return nil }

// Close is a no-op.
func (m *MemStore) Close() error { return nil }

// pageCache is a write-back LRU page cache between the Dataset and its
// Store — the serial library's "own buffering mechanism in user space" the
// paper mentions. It coalesces the library's many small accesses into
// page-sized store transfers.
type pageCache struct {
	store    Store
	pageSize int64
	capacity int

	pages map[int64]*list.Element // page index -> lru element
	lru   *list.List              // front = most recent
}

type cachePage struct {
	idx   int64
	data  []byte
	dirty bool
}

// readFull reads len(p) bytes at off, looping on short reads — a store may
// legally return n < len(p) with a nil error (as a real file system under
// load does), and a call site that ignores the count reads garbage in the
// unfilled tail. A read that makes no progress fails rather than spinning.
func readFull(s Store, p []byte, off int64) error {
	for len(p) > 0 {
		n, err := s.ReadAt(p, off)
		if err != nil {
			return err
		}
		if n <= 0 {
			return io.ErrNoProgress
		}
		p = p[n:]
		off += int64(n)
	}
	return nil
}

// writeFull writes len(p) bytes at off, looping on short writes.
func writeFull(s Store, p []byte, off int64) error {
	for len(p) > 0 {
		n, err := s.WriteAt(p, off)
		if err != nil {
			return err
		}
		if n <= 0 {
			return io.ErrShortWrite
		}
		p = p[n:]
		off += int64(n)
	}
	return nil
}

func newPageCache(store Store, pageSize int64, capacity int) *pageCache {
	if pageSize < 512 {
		pageSize = 512
	}
	if capacity < 2 {
		capacity = 2
	}
	return &pageCache{
		store: store, pageSize: pageSize, capacity: capacity,
		pages: map[int64]*list.Element{}, lru: list.New(),
	}
}

func (c *pageCache) page(idx int64) (*cachePage, error) {
	if el, ok := c.pages[idx]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*cachePage), nil
	}
	if len(c.pages) >= c.capacity {
		if err := c.evictOne(); err != nil {
			return nil, err
		}
	}
	p := &cachePage{idx: idx, data: make([]byte, c.pageSize)}
	if err := readFull(c.store, p.data, idx*c.pageSize); err != nil {
		return nil, err
	}
	c.pages[idx] = c.lru.PushFront(p)
	return p, nil
}

func (c *pageCache) evictOne() error {
	el := c.lru.Back()
	if el == nil {
		return errors.New("netcdf: page cache corrupt")
	}
	p := el.Value.(*cachePage)
	if p.dirty {
		if err := writeFull(c.store, p.data, p.idx*c.pageSize); err != nil {
			return err
		}
	}
	c.lru.Remove(el)
	delete(c.pages, p.idx)
	return nil
}

// ReadAt fills p from the cached view of the store.
func (c *pageCache) ReadAt(p []byte, off int64) error {
	// Large reads bypass the cache (but must see dirty pages): flush the
	// overlap first, then read straight from the store.
	if int64(len(p)) >= 4*c.pageSize {
		if err := c.flushRange(off, int64(len(p))); err != nil {
			return err
		}
		return readFull(c.store, p, off)
	}
	for len(p) > 0 {
		idx := off / c.pageSize
		pOff := off % c.pageSize
		n := c.pageSize - pOff
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		pg, err := c.page(idx)
		if err != nil {
			return err
		}
		copy(p[:n], pg.data[pOff:pOff+n])
		p = p[n:]
		off += n
	}
	return nil
}

// WriteAt writes p through the cache (write-back).
func (c *pageCache) WriteAt(p []byte, off int64) error {
	// Large aligned writes bypass the cache; overlapping pages must be
	// dropped (they would otherwise resurrect stale data).
	if int64(len(p)) >= 4*c.pageSize {
		if err := c.discardRange(off, int64(len(p))); err != nil {
			return err
		}
		return writeFull(c.store, p, off)
	}
	for len(p) > 0 {
		idx := off / c.pageSize
		pOff := off % c.pageSize
		n := c.pageSize - pOff
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		pg, err := c.page(idx)
		if err != nil {
			return err
		}
		copy(pg.data[pOff:pOff+n], p[:n])
		pg.dirty = true
		p = p[n:]
		off += n
	}
	return nil
}

func (c *pageCache) flushRange(off, n int64) error {
	first, last := off/c.pageSize, (off+n-1)/c.pageSize
	for idx := first; idx <= last; idx++ {
		if el, ok := c.pages[idx]; ok {
			p := el.Value.(*cachePage)
			if p.dirty {
				if err := writeFull(c.store, p.data, p.idx*c.pageSize); err != nil {
					return err
				}
				p.dirty = false
			}
		}
	}
	return nil
}

func (c *pageCache) discardRange(off, n int64) error {
	first, last := off/c.pageSize, (off+n-1)/c.pageSize
	for idx := first; idx <= last; idx++ {
		if el, ok := c.pages[idx]; ok {
			p := el.Value.(*cachePage)
			// Partial overlap at the edges must be flushed, not dropped.
			pageLo, pageHi := idx*c.pageSize, (idx+1)*c.pageSize
			if pageLo < off || pageHi > off+n {
				if p.dirty {
					if err := writeFull(c.store, p.data, p.idx*c.pageSize); err != nil {
						return err
					}
				}
			}
			c.lru.Remove(el)
			delete(c.pages, idx)
		}
	}
	return nil
}

// Flush writes all dirty pages back to the store.
func (c *pageCache) Flush() error {
	for el := c.lru.Front(); el != nil; el = el.Next() {
		p := el.Value.(*cachePage)
		if p.dirty {
			if err := writeFull(c.store, p.data, p.idx*c.pageSize); err != nil {
				return err
			}
			p.dirty = false
		}
	}
	return nil
}
