package netcdf

import "os"

func createOSFile(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func openOSFile(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDONLY, 0)
}
