package fault

// Store is the random-access backend shape the serial netCDF library runs
// on (structurally identical to netcdf.Store; declared here so the fault
// layer does not depend on the library it tests).
type Store interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Size() (int64, error)
	Truncate(int64) error
	Sync() error
	Close() error
}

// FaultyStore wraps a Store, injecting the Injector's faults: transient
// errors, short reads/writes (n < len(p) with nil error — exactly the
// return buggy call sites ignore), and armed crash points that cut a write
// at a chosen byte. The serial library and its tests use it; the parallel
// stack injects at the pfs layer instead.
type FaultyStore struct {
	S  Store
	In *Injector
	// Rank labels the fault schedule (-1 for serial use).
	Rank int
}

// NewFaultyStore wraps s with injector in.
func NewFaultyStore(s Store, in *Injector) *FaultyStore {
	return &FaultyStore{S: s, In: in, Rank: -1}
}

// ReadAt reads with fault injection. Injected transient errors return the
// partial count the injector decided; injected short reads return n <
// len(p) with a nil error.
func (f *FaultyStore) ReadAt(p []byte, off int64) (int, error) {
	out := f.In.Decide(f.Rank, OpRead, off, int64(len(p)))
	if out.Err != nil {
		n, _ := f.S.ReadAt(p[:out.N], off)
		if int64(n) > out.N {
			n = int(out.N)
		}
		return n, out.Err
	}
	if out.N < int64(len(p)) {
		return f.S.ReadAt(p[:out.N], off)
	}
	return f.S.ReadAt(p, off)
}

// WriteAt writes with fault injection; only the injector-decided prefix
// lands when a fault fires, and an armed crash point may also truncate the
// file before failing.
func (f *FaultyStore) WriteAt(p []byte, off int64) (int, error) {
	out := f.In.Decide(f.Rank, OpWrite, off, int64(len(p)))
	n := 0
	if out.N > 0 {
		var err error
		n, err = f.S.WriteAt(p[:out.N], off)
		if err != nil {
			return n, err
		}
	}
	if out.TruncateTo >= 0 {
		if err := f.S.Truncate(out.TruncateTo); err != nil {
			return n, err
		}
	}
	return n, out.Err
}

// Size passes through.
func (f *FaultyStore) Size() (int64, error) { return f.S.Size() }

// Truncate passes through.
func (f *FaultyStore) Truncate(n int64) error { return f.S.Truncate(n) }

// Sync passes through.
func (f *FaultyStore) Sync() error { return f.S.Sync() }

// Close passes through.
func (f *FaultyStore) Close() error { return f.S.Close() }
