package fault

import (
	"errors"
	"testing"
)

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	out := in.Decide(3, OpWrite, 100, 50)
	if out.Err != nil || out.N != 50 || out.Delay != 0 || out.TruncateTo != -1 {
		t.Fatalf("nil injector injected: %+v", out)
	}
	in.ArmCrash(10, true)
	if in.CrashArmed() {
		t.Fatal("nil injector armed a crash")
	}
	if in.Injected() != 0 {
		t.Fatal("nil injector counted injections")
	}
}

// Two injectors with the same seed must produce byte-identical fault
// schedules; a different seed must diverge somewhere.
func TestScheduleIsDeterministicInSeed(t *testing.T) {
	run := func(seed uint64) []Outcome {
		in := New(Config{Seed: seed, ReadErrRate: 0.2, WriteErrRate: 0.2, ShortRate: 0.2, LatencyRate: 0.1, LatencySpike: 1e-3})
		var outs []Outcome
		for rank := 0; rank < 4; rank++ {
			for i := int64(0); i < 64; i++ {
				outs = append(outs, in.Decide(rank, OpRead, i*512, 512))
				outs = append(outs, in.Decide(rank, OpWrite, i*512, 512))
			}
		}
		return outs
	}
	a, b, c := run(7), run(7), run(8)
	same := func(x, y []Outcome) bool {
		for i := range x {
			if !errors.Is(x[i].Err, y[i].Err) || x[i].N != y[i].N || x[i].Delay != y[i].Delay {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if same(a, c) {
		t.Fatal("different seeds produced identical schedules (hash not mixing?)")
	}
}

// A retry of the identical operation is a new occurrence and must get an
// independent draw — so under a partial fault rate, retries clear.
func TestOccurrenceAdvancesOnRetry(t *testing.T) {
	in := New(Config{Seed: 1, WriteErrRate: 0.5})
	failedOnce, clearedOnRetry := false, false
	for i := int64(0); i < 200 && !clearedOnRetry; i++ {
		if in.Decide(0, OpWrite, i*64, 64).Err == nil {
			continue
		}
		failedOnce = true
		for r := 0; r < 20; r++ {
			if in.Decide(0, OpWrite, i*64, 64).Err == nil {
				clearedOnRetry = true
				break
			}
		}
	}
	if !failedOnce || !clearedOnRetry {
		t.Fatalf("failedOnce=%v clearedOnRetry=%v — occurrence counter not advancing", failedOnce, clearedOnRetry)
	}
}

func TestCrashPointIsOneShot(t *testing.T) {
	in := New(Config{Seed: 1})
	in.ArmCrash(100, true)
	// A write strictly before the crash byte is untouched.
	if out := in.Decide(0, OpWrite, 0, 100); out.Err != nil {
		t.Fatalf("write below crash point failed: %v", out.Err)
	}
	out := in.Decide(0, OpWrite, 80, 64)
	if !errors.Is(out.Err, ErrCrashed) {
		t.Fatalf("overlapping write: %v", out.Err)
	}
	if out.N != 20 {
		t.Fatalf("crash kept %d bytes, want 20 (up to byte 100 from offset 80)", out.N)
	}
	if out.TruncateTo != 100 {
		t.Fatalf("TruncateTo = %d, want 100", out.TruncateTo)
	}
	if in.CrashArmed() {
		t.Fatal("crash still armed after firing")
	}
	if out := in.Decide(0, OpWrite, 80, 64); out.Err != nil {
		t.Fatalf("crash fired twice: %v", out.Err)
	}
	if IsTransient(ErrCrashed) {
		t.Fatal("ErrCrashed classified transient")
	}
}

func TestShortTransferNeverFullNeverZero(t *testing.T) {
	in := New(Config{Seed: 3, ShortRate: 1})
	for i := int64(0); i < 100; i++ {
		out := in.Decide(1, OpRead, i*4096, 4096)
		if out.Err != nil {
			t.Fatalf("short-only config returned error: %v", out.Err)
		}
		if out.N < 1 || out.N >= 4096 {
			t.Fatalf("short transfer N=%d, want in [1, 4096)", out.N)
		}
	}
}

func TestRetryPolicyBackoffBounded(t *testing.T) {
	p := DefaultRetryPolicy()
	prev := 0.0
	for i := 0; i < p.MaxRetries+4; i++ {
		b := p.Backoff(i)
		if b < prev || b > p.Max {
			t.Fatalf("backoff(%d)=%g not monotone within [0, %g]", i, b, p.Max)
		}
		prev = b
	}
}

func TestRetryDoExhaustionIsPermanent(t *testing.T) {
	p := RetryPolicy{MaxRetries: 3, Base: 1e-3, Max: 4e-3}
	calls := 0
	done, retries, backoff, err := p.Do(10, func(t float64) (float64, error) {
		calls++
		return t + 1e-4, ErrTransient
	})
	if calls != 4 || retries != 3 {
		t.Fatalf("calls=%d retries=%d, want 4/3", calls, retries)
	}
	if !errors.Is(err, ErrRetriesExhausted) || IsTransient(err) {
		t.Fatalf("exhaustion error %v must be permanent", err)
	}
	wantBackoff := 1e-3 + 2e-3 + 4e-3
	if backoff != wantBackoff {
		t.Fatalf("backoff=%g, want %g", backoff, wantBackoff)
	}
	if d := done - (10 + 4*1e-4 + wantBackoff); d < -1e-12 || d > 1e-12 {
		t.Fatalf("done=%g accounts wrong virtual time", done)
	}
	// A permanent error must not be retried at all.
	calls = 0
	_, _, _, err = p.Do(0, func(t float64) (float64, error) { return t, ErrCrashed })
	if calls := calls; calls > 1 {
		t.Fatalf("permanent error retried %d times", calls)
	}
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("permanent error rewritten: %v", err)
	}
}

func TestRetryDoClearsTransient(t *testing.T) {
	p := DefaultRetryPolicy()
	n := 0
	_, retries, _, err := p.Do(0, func(t float64) (float64, error) {
		n++
		if n < 3 {
			return t, ErrTransient
		}
		return t, nil
	})
	if err != nil || retries != 2 {
		t.Fatalf("err=%v retries=%d, want nil/2", err, retries)
	}
}

// memStore is a minimal in-memory Store for FaultyStore tests.
type memStore struct{ data []byte }

func (m *memStore) grow(n int64) {
	if n > int64(len(m.data)) {
		m.data = append(m.data, make([]byte, n-int64(len(m.data)))...)
	}
}
func (m *memStore) ReadAt(p []byte, off int64) (int, error) {
	n := copy(p, m.data[min64(off, int64(len(m.data))):])
	return n, nil
}
func (m *memStore) WriteAt(p []byte, off int64) (int, error) {
	m.grow(off + int64(len(p)))
	return copy(m.data[off:], p), nil
}
func (m *memStore) Size() (int64, error) { return int64(len(m.data)), nil }
func (m *memStore) Truncate(n int64) error {
	m.grow(n)
	m.data = m.data[:n]
	return nil
}
func (m *memStore) Sync() error  { return nil }
func (m *memStore) Close() error { return nil }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestFaultyStoreShortWriteLandsPrefixOnly(t *testing.T) {
	ms := &memStore{}
	fs := NewFaultyStore(ms, New(Config{Seed: 5, ShortRate: 1}))
	p := []byte("abcdefghij")
	n, err := fs.WriteAt(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n >= len(p) || n < 1 {
		t.Fatalf("short write n=%d", n)
	}
	if int64(len(ms.data)) != int64(n) {
		t.Fatalf("store holds %d bytes, want the %d-byte prefix only", len(ms.data), n)
	}
}

func TestFaultyStoreCrashTruncates(t *testing.T) {
	ms := &memStore{}
	ms.WriteAt(make([]byte, 200), 0)
	in := New(Config{Seed: 5})
	fs := NewFaultyStore(ms, in)
	in.ArmCrash(50, true)
	n, err := fs.WriteAt(make([]byte, 100), 0)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err=%v", err)
	}
	if n != 50 || int64(len(ms.data)) != 50 {
		t.Fatalf("n=%d size=%d, want 50/50", n, len(ms.data))
	}
}

// TestKillCheckFiresAtOccurrence: the armed (rank, point, occurrence)
// fires exactly once, at exactly that passage, and only for the armed
// rank and point.
func TestKillCheckFiresAtOccurrence(t *testing.T) {
	in := New(Config{Seed: 1})
	in.KillRankAt(2, KillMidExchange, 3)
	for occ := 0; occ < 3; occ++ {
		if in.KillCheck(2, KillMidExchange) {
			t.Fatalf("fired at occurrence %d, armed for 3", occ)
		}
	}
	// Other ranks and points never fire and never perturb the count.
	if in.KillCheck(1, KillMidExchange) || in.KillCheck(2, KillBeforePack) || in.KillCheck(2, KillAfterIssue) {
		t.Fatal("unarmed rank/point fired")
	}
	if !in.KillCheck(2, KillMidExchange) {
		t.Fatal("did not fire at armed occurrence")
	}
	if got := in.Injected(); got != 1 {
		t.Fatalf("Injected() = %d after kill, want 1", got)
	}
}

// TestKillCheckOneShot: after firing, the injector is disarmed — further
// passages, even matching ones, survive.
func TestKillCheckOneShot(t *testing.T) {
	in := New(Config{Seed: 1})
	in.KillRank(0, KillBeforePack)
	if !in.KillCheck(0, KillBeforePack) {
		t.Fatal("armed kill did not fire at occurrence 0")
	}
	for i := 0; i < 5; i++ {
		if in.KillCheck(0, KillBeforePack) {
			t.Fatal("kill fired twice")
		}
	}
}

// TestKillCheckUnarmedCountsNothing: traffic through kill points while
// nothing is armed must not advance occurrence numbering, so a later
// KillRankAt(r, p, 0) still fires at its first post-arm passage. This is
// what keeps occurrence numbers meaningful across configurations (e.g. the
// H5 comparison run sharing a binary with the PnetCDF run).
func TestKillCheckUnarmedCountsNothing(t *testing.T) {
	in := New(Config{Seed: 1})
	for i := 0; i < 4; i++ {
		if in.KillCheck(1, KillMidExchange) {
			t.Fatal("unarmed injector fired")
		}
	}
	in.KillRank(1, KillMidExchange)
	if !in.KillCheck(1, KillMidExchange) {
		t.Fatal("kill did not fire at first post-arm passage")
	}
}

// TestKillCheckNilSafe: the nil injector neither fires nor panics.
func TestKillCheckNilSafe(t *testing.T) {
	var in *Injector
	in.KillRank(0, KillBeforePack)
	in.KillRankAt(0, KillBeforePack, 2)
	if in.KillCheck(0, KillBeforePack) {
		t.Fatal("nil injector fired")
	}
}
