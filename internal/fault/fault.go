// Package fault is a deterministic, seedable fault-injection layer for the
// I/O stack. It decides — as a pure function of a seed and the operation's
// identity — whether a given read or write suffers a transient error, a
// short transfer, a latency spike, or an armed "crash point" that cuts a
// write (and optionally the file) at a chosen byte.
//
// Determinism matters because the simulated ranks are goroutines whose
// interleaving varies run to run: a shared PRNG drawn in arrival order would
// make failures unreproducible. Instead every decision hashes
// (seed, rank, op, offset, length, occurrence), where occurrence counts how
// many times this rank has issued this exact operation. Each rank's program
// order is deterministic, so its fault schedule is too, independent of how
// the goroutines interleave — and a retry of the same operation is a new
// occurrence, so retries eventually succeed.
//
// The package also carries the stack's error taxonomy (transient vs
// permanent, see Classify) and the bounded-exponential-backoff retry policy
// the pfs serial adapter and the MPI-IO layer share.
package fault

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Errors injected by the layer and produced by the retry machinery.
var (
	// ErrTransient marks an injected server error that a retry may clear
	// (the EIO-after-dropped-request class of PVFS/ROMIO deployments).
	ErrTransient = errors.New("fault: transient I/O error")
	// ErrCrashed marks an armed crash point firing: the write was cut at
	// the chosen byte and the process is presumed dead. Permanent.
	ErrCrashed = errors.New("fault: crash point reached")
	// ErrRetriesExhausted wraps the last transient error once a retry
	// policy gives up; it is permanent (callers must not keep retrying).
	ErrRetriesExhausted = errors.New("fault: retries exhausted")
	// ErrKilled is the reason a rank-kill (KillRank) passes to mpi's
	// Comm.Die: the rank crashed outright mid-operation.
	ErrKilled = errors.New("fault: rank killed at crash point")
)

// Named rank-kill points inside the two-phase collective path (mpiio
// consults KillCheck at each). They bracket the interesting windows of a
// round: before any state is packed, after the rank's sends are out but
// before its receives complete, and — pipelined path only — after the
// aggregator's async I/O is issued but before its Wait.
const (
	KillBeforePack  = "before_pack"
	KillMidExchange = "mid_exchange"
	KillAfterIssue  = "after_issue"
)

// IsTransient reports whether err may clear on retry. Exhausted retries are
// permanent even though the underlying cause was transient.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) && !errors.Is(err, ErrRetriesExhausted)
}

// Op identifies the faultable operation class.
type Op int

// Operation classes.
const (
	OpRead Op = iota
	OpWrite
)

func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Config tunes an Injector. Rates are probabilities in [0, 1] evaluated
// independently per operation.
type Config struct {
	// Seed selects the deterministic fault schedule.
	Seed uint64
	// ReadErrRate / WriteErrRate are the transient-error probabilities.
	ReadErrRate  float64
	WriteErrRate float64
	// ShortRate is the probability that a transfer moves only part of its
	// payload (a short read or write with nil error, as buggy call sites
	// would see from a real file system).
	ShortRate float64
	// LatencyRate is the probability of a per-server latency spike of
	// LatencySpike virtual seconds.
	LatencyRate  float64
	LatencySpike float64
	// FaultUnit is the transfer size (bytes) that makes one independent
	// fault draw; an n-byte operation draws ceil(n/FaultUnit) times, so a
	// multi-megabyte collective write is as exposed as the same bytes
	// moved in server-request-sized pieces. 0 means 256 KiB.
	FaultUnit int64
}

// Injector makes fault decisions. The zero value injects nothing; a nil
// *Injector is a valid disabled injector (every method is a no-op), which
// keeps the faults-off hot path to one pointer test.
type Injector struct {
	cfg Config

	mu   sync.Mutex
	seen map[opKey]uint64 // occurrence counters
	// crashAt < 0 means no crash armed. When armed, the first write
	// overlapping file offset crashAt keeps only bytes before it and
	// returns ErrCrashed.
	crashAt       int64
	crashTruncate bool
	injected      int64

	// kill is the armed rank-kill, nil when none. killSeen counts, per
	// (rank, point), how many times that rank has passed that kill point —
	// program order per rank, so the schedule is deterministic regardless
	// of goroutine interleaving, exactly like the transient-fault draws.
	kill     *killSpec
	killSeen map[killKey]int64
}

// killSpec is one armed rank-kill: terminate rank the occurrence-th time
// (0-based) it passes the named point.
type killSpec struct {
	rank       int
	point      string
	occurrence int64
}

type killKey struct {
	rank  int
	point string
}

type opKey struct {
	rank int
	op   Op
	off  int64
	n    int64
}

// New returns an injector for the given configuration.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, seen: map[opKey]uint64{}, crashAt: -1}
}

// Injected returns how many faults (errors, shorts, spikes, crashes) the
// injector has delivered.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// ArmCrash arms a one-shot crash point: the next write overlapping file
// offset atByte keeps only the bytes before it and fails with ErrCrashed.
// With truncateFile, the file is also cut to atByte bytes, modeling a
// crash-plus-lost-tail instead of a torn in-place write.
func (in *Injector) ArmCrash(atByte int64, truncateFile bool) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.crashAt = atByte
	in.crashTruncate = truncateFile
	in.mu.Unlock()
}

// KillRank arms a one-shot rank-kill: the next time rank passes the named
// kill point, KillCheck tells it to die (mpiio calls Comm.Die there). Use
// the Kill* point constants.
func (in *Injector) KillRank(rank int, point string) {
	in.KillRankAt(rank, point, 0)
}

// KillRankAt arms a rank-kill at the occurrence-th (0-based) passage of
// rank through the named point, for killing mid-run rather than at the
// first round.
func (in *Injector) KillRankAt(rank int, point string, occurrence int64) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.kill = &killSpec{rank: rank, point: point, occurrence: occurrence}
	if in.killSeen == nil {
		in.killSeen = map[killKey]int64{}
	}
	in.mu.Unlock()
}

// KillCheck reports whether the calling rank must die here, counting this
// passage of rank through point either way. One-shot: the armed kill is
// consumed when it fires.
func (in *Injector) KillCheck(rank int, point string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.kill == nil {
		return false
	}
	if in.kill.rank != rank || in.kill.point != point {
		// Count only points some armed kill could name: unarmed traffic
		// must not perturb occurrence numbering across configurations.
		return false
	}
	key := killKey{rank: rank, point: point}
	occ := in.killSeen[key]
	in.killSeen[key] = occ + 1
	if occ != in.kill.occurrence {
		return false
	}
	in.kill = nil
	in.injected++
	return true
}

// CrashArmed reports whether a crash point is pending.
func (in *Injector) CrashArmed() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashAt >= 0
}

// Outcome is one operation's fault decision.
type Outcome struct {
	// Err is nil, ErrTransient or ErrCrashed.
	Err error
	// Delay is extra virtual latency to charge (seconds).
	Delay float64
	// N is the number of payload bytes that land/return despite the fault:
	// the full length when Err is nil and no short transfer was injected,
	// a strict prefix otherwise. For a crash, N is the byte count up to
	// the crash point within this operation's range.
	N int64
	// TruncateTo >= 0 orders the caller to cut the file to this size
	// (crash-with-truncation); -1 otherwise.
	TruncateTo int64
}

// Decide returns the fault outcome for one operation covering [off, off+n)
// issued by rank (use -1 outside an MPI context). A nil injector always
// returns the no-fault outcome.
func (in *Injector) Decide(rank int, op Op, off, n int64) Outcome {
	out := Outcome{N: n, TruncateTo: -1}
	if in == nil {
		return out
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	// An armed crash point takes priority over probabilistic faults.
	if in.crashAt >= 0 && op == OpWrite && off <= in.crashAt && in.crashAt < off+n {
		out.Err = ErrCrashed
		out.N = in.crashAt - off
		if in.crashTruncate {
			out.TruncateTo = in.crashAt
		}
		in.crashAt = -1
		in.injected++
		return out
	}
	key := opKey{rank: rank, op: op, off: off, n: n}
	occ := in.seen[key]
	in.seen[key] = occ + 1
	draw := hash64(in.cfg.Seed, uint64(rank)+1, uint64(op), uint64(off), uint64(n), occ)
	errRate := in.cfg.ReadErrRate
	if op == OpWrite {
		errRate = in.cfg.WriteErrRate
	}
	// Rates are per FaultUnit of payload: an operation moving k units is
	// k independent exposures, so its effective rate is 1-(1-p)^k. This
	// keeps the fault count proportional to bytes moved whether the stack
	// issues many small requests or one huge vectored one.
	k := in.drawUnits(n)
	errRate = compoundRate(errRate, k)
	// Three independent sub-draws from one hash, each uniform in [0, 1).
	pErr := unit(draw)
	pShort := unit(hash64(draw, 1, 0, 0, 0, 0))
	pLat := unit(hash64(draw, 2, 0, 0, 0, 0))
	if pLat < compoundRate(in.cfg.LatencyRate, k) {
		out.Delay = in.cfg.LatencySpike
		in.injected++
	}
	if pErr < errRate {
		out.Err = ErrTransient
		// Part of the payload may have moved before the request died.
		out.N = int64(unit(hash64(draw, 3, 0, 0, 0, 0)) * float64(n))
		in.injected++
		return out
	}
	if pShort < compoundRate(in.cfg.ShortRate, k) && n > 1 {
		// Short transfer: at least one byte of progress, never the full n.
		out.N = 1 + int64(unit(hash64(draw, 4, 0, 0, 0, 0))*float64(n-1))
		in.injected++
	}
	return out
}

// drawUnits returns how many FaultUnit-sized exposures an n-byte transfer
// makes (at least one).
func (in *Injector) drawUnits(n int64) int64 {
	u := in.cfg.FaultUnit
	if u <= 0 {
		u = 256 << 10
	}
	k := (n + u - 1) / u
	if k < 1 {
		k = 1
	}
	return k
}

// compoundRate is the probability that at least one of k independent
// exposures at rate p fires.
func compoundRate(p float64, k int64) float64 {
	if k <= 1 || p <= 0 || p >= 1 {
		return p
	}
	return 1 - math.Pow(1-p, float64(k))
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// hash64 mixes the inputs with a splitmix64-style finalizer.
func hash64(vals ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vals {
		h ^= v + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		h *= 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}

// RetryPolicy is the bounded-exponential-backoff schedule for transient
// errors: attempt, wait Base, 2*Base, 4*Base ... capped at Max, give up
// after MaxRetries retries. Waits are virtual time, charged to the caller's
// clock.
type RetryPolicy struct {
	MaxRetries int
	Base       float64 // seconds
	Max        float64 // seconds
}

// DefaultRetryPolicy mirrors ROMIO-era deployment practice: a handful of
// quick retries, backing off to tens of milliseconds.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 8, Base: 1e-3, Max: 50e-3}
}

// Backoff returns the wait before retry attempt i (0-based).
func (p RetryPolicy) Backoff(i int) float64 {
	d := p.Base
	for ; i > 0 && d < p.Max; i-- {
		d *= 2
	}
	if d > p.Max {
		d = p.Max
	}
	return d
}

// Do runs op, retrying transient errors under the policy. op receives the
// virtual start time of the attempt and returns the completion time and
// error. Do returns the final completion time, the number of retries
// performed, the total backoff charged, and the final error: nil on
// success, the original error if permanent, or ErrRetriesExhausted wrapping
// the last transient error once the budget is spent.
func (p RetryPolicy) Do(t float64, op func(t float64) (float64, error)) (done float64, retries int, backoff float64, err error) {
	done = t
	for attempt := 0; ; attempt++ {
		done, err = op(done)
		if err == nil || !IsTransient(err) {
			return done, retries, backoff, err
		}
		if attempt >= p.MaxRetries {
			return done, retries, backoff, fmt.Errorf("%w after %d retries: %v", ErrRetriesExhausted, retries, err)
		}
		wait := p.Backoff(attempt)
		done += wait
		backoff += wait
		retries++
	}
}
