// Package cmdutil is the shared error-handling convention for the cmd/*
// tools: diagnostics go to stderr prefixed with the tool name, usage errors
// exit 2, and operational failures exit 1 — the same split flag.Parse and
// the POSIX utilities use.
package cmdutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Fatal prints "tool: err" to stderr and exits 1. A nil err is a no-op, so
// callers can write cmdutil.Fatal(tool, run()) unconditionally.
func Fatal(tool string, err error) {
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}

// Fatalf prints a formatted diagnostic prefixed with the tool name and
// exits 1.
func Fatalf(tool, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, fmt.Sprintf(format, args...))
	os.Exit(1)
}

// Usagef prints a formatted usage diagnostic to stderr and exits 2 (the
// conventional bad-invocation code).
func Usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// StartProfiles implements the conventional -cpuprofile/-memprofile behavior
// for the bench tools: an empty path disables that profile. It returns a
// stop function the caller must defer; stop ends the CPU profile and writes
// the heap profile (after a GC, so it reflects live data, like `go test
// -memprofile`). Profiles are only written when the tool completes normally
// — Fatal's os.Exit skips deferred stops, which is fine for a profiling run.
func StartProfiles(tool, cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		Fatal(tool, err)
		Fatal(tool, pprof.StartCPUProfile(f))
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			Fatal(tool, cpuFile.Close())
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			Fatal(tool, err)
			runtime.GC()
			Fatal(tool, pprof.WriteHeapProfile(f))
			Fatal(tool, f.Close())
		}
	}
}
