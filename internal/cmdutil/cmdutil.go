// Package cmdutil is the shared error-handling convention for the cmd/*
// tools: diagnostics go to stderr prefixed with the tool name, usage errors
// exit 2, and operational failures exit 1 — the same split flag.Parse and
// the POSIX utilities use.
package cmdutil

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"

	"pnetcdf/internal/metrics"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/mpiio"
	"pnetcdf/internal/span"
)

// Fatal prints "tool: err" to stderr and exits 1. A nil err is a no-op, so
// callers can write cmdutil.Fatal(tool, run()) unconditionally.
func Fatal(tool string, err error) {
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}

// Fatalf prints a formatted diagnostic prefixed with the tool name and
// exits 1.
func Fatalf(tool, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, fmt.Sprintf(format, args...))
	os.Exit(1)
}

// Usagef prints a formatted usage diagnostic to stderr and exits 2 (the
// conventional bad-invocation code).
func Usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// StartMetrics implements the conventional -metrics-addr behavior: an empty
// addr disables the endpoint and returns a no-op stop. Otherwise it serves
// reg's live JSON snapshot on addr (e.g. "localhost:9090") until the
// returned stop function closes the listener. Bind failures are fatal — a
// requested metrics endpoint that silently is not there is worse than an
// aborted run.
func StartMetrics(tool, addr string, reg *metrics.Registry) func() {
	if addr == "" {
		return func() {}
	}
	ln, err := net.Listen("tcp", addr)
	Fatal(tool, err)
	fmt.Fprintf(os.Stderr, "%s: serving metrics on http://%s/\n", tool, ln.Addr())
	srv := &http.Server{Handler: reg}
	go srv.Serve(ln)
	return func() { _ = srv.Close() }
}

// WriteSpanFile implements the conventional -span-out behavior: write the
// merged spans as Chrome trace-event JSON (Perfetto-loadable) at path. An
// empty path is a no-op. A nonzero drop count is echoed as a warning — the
// file is then a truncated record, not a complete one.
func WriteSpanFile(tool, path string, spans []span.Span, dropped int64) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	Fatal(tool, err)
	Fatal(tool, span.WriteChromeTrace(f, spans, dropped))
	Fatal(tool, f.Close())
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "%s: WARNING: span recorder dropped %d spans; %s is INCOMPLETE\n", tool, dropped, path)
	}
}

// StartProfiles implements the conventional -cpuprofile/-memprofile behavior
// for the bench tools: an empty path disables that profile. It returns a
// stop function the caller must defer; stop ends the CPU profile and writes
// the heap profile (after a GC, so it reflects live data, like `go test
// -memprofile`). Profiles are only written when the tool completes normally
// — Fatal's os.Exit skips deferred stops, which is fine for a profiling run.
func StartProfiles(tool, cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		Fatal(tool, err)
		Fatal(tool, pprof.StartCPUProfile(f))
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			Fatal(tool, cpuFile.Close())
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			Fatal(tool, err)
			runtime.GC()
			Fatal(tool, pprof.WriteHeapProfile(f))
			Fatal(tool, f.Close())
		}
	}
}

// PartitionHints builds the MPI-IO hint set for a -cb-partition flag value:
// "" means library default (nil info), otherwise the value must name a
// partitioning mode (even, balanced). Unknown values are usage errors.
func PartitionHints(value string) *mpi.Info {
	switch value {
	case "":
		return nil
	case mpiio.PartitionEven, mpiio.PartitionBalanced:
		return mpi.NewInfo().Set("cb_partition", value)
	}
	Usagef("bad -cb-partition %q: want even or balanced", value)
	return nil
}

// CollHints merges the shared collective-path flags into one MPI-IO hint
// set: -cb-partition (even, balanced) and -cb-pipeline (enable, disable).
// Empty values leave the library default; nil is returned when neither flag
// is set. Unknown values are usage errors.
func CollHints(partition, pipeline string) *mpi.Info {
	info := PartitionHints(partition)
	switch pipeline {
	case "":
		return info
	case "enable", "disable":
		if info == nil {
			info = mpi.NewInfo()
		}
		return info.Set("cb_pipeline", pipeline)
	}
	Usagef("bad -cb-pipeline %q: want enable or disable", pipeline)
	return nil
}
