// Package cmdutil is the shared error-handling convention for the cmd/*
// tools: diagnostics go to stderr prefixed with the tool name, usage errors
// exit 2, and operational failures exit 1 — the same split flag.Parse and
// the POSIX utilities use.
package cmdutil

import (
	"fmt"
	"os"
)

// Fatal prints "tool: err" to stderr and exits 1. A nil err is a no-op, so
// callers can write cmdutil.Fatal(tool, run()) unconditionally.
func Fatal(tool string, err error) {
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}

// Fatalf prints a formatted diagnostic prefixed with the tool name and
// exits 1.
func Fatalf(tool, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, fmt.Sprintf(format, args...))
	os.Exit(1)
}

// Usagef prints a formatted usage diagnostic to stderr and exits 2 (the
// conventional bad-invocation code).
func Usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
