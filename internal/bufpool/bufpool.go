// Package bufpool provides size-classed, sync.Pool-backed byte buffers for
// the I/O hot paths: collective exchange rounds, data-sieving cover windows,
// and external-representation pack buffers. The pools exist to keep steady
// per-round allocations out of the two-phase loop (DESIGN.md "Hot path:
// memory and locking discipline"); they are an optimization only — dropping
// a buffer instead of returning it is always correct.
package bufpool

import "sync"

// Size classes are powers of two from 4 KiB to 16 MiB. Requests above the
// largest class are allocated directly and never pooled; requests below the
// smallest use the smallest class.
const (
	minShift   = 12 // 4 KiB
	maxShift   = 24 // 16 MiB
	numClasses = maxShift - minShift + 1
)

// Pools hold *[]byte so Put does not box a slice header per call.
var pools [numClasses]sync.Pool

// class returns the index of the smallest class holding n bytes, or -1 when
// n exceeds the largest class.
func class(n int) int {
	c := 0
	for size := 1 << minShift; size < n; size <<= 1 {
		c++
	}
	if c >= numClasses {
		return -1
	}
	return c
}

func get(n int) []byte {
	c := class(n)
	if c < 0 {
		return make([]byte, n)
	}
	if v := pools[c].Get(); v != nil {
		return (*(v.(*[]byte)))[:n]
	}
	return make([]byte, n, 1<<(minShift+c))
}

// Get returns a zeroed buffer of length n. Callers must not assume any
// capacity beyond n.
func Get(n int) []byte {
	b := get(n)
	clear(b)
	return b
}

// GetDirty returns a buffer of length n whose contents are unspecified. Use
// when every byte will be overwritten before it is read.
func GetDirty(n int) []byte { return get(n) }

// Put returns a buffer obtained from Get/GetDirty to its pool. The caller
// must not retain any reference to b (or slices of it) afterwards. Buffers
// not obtained from this package (wrong capacity class) are silently
// dropped.
func Put(b []byte) {
	c := cap(b)
	if c < 1<<minShift || c&(c-1) != 0 || c > 1<<maxShift {
		return
	}
	b = b[:c]
	pools[class(c)].Put(&b)
}

// PutAll returns every non-nil buffer in bufs to its pool and nils the
// slots, so a retained backing array cannot alias pooled memory. It is the
// release half of the in-flight-generation pattern used by the pipelined
// collective path: buffers are parked in a generation slice while an async
// write holds them, then discharged together once the write's Wait returns.
func PutAll(bufs [][]byte) {
	for i, b := range bufs {
		if b != nil {
			Put(b)
			bufs[i] = nil
		}
	}
}
