// Package iostat is the end-to-end I/O statistics and tracing layer. Every
// layer of the stack — the simulated parallel file system (internal/pfs),
// the MPI runtime (internal/mpi), the MPI-IO library (internal/mpiio) and
// the PnetCDF core (internal/core) — records into the same per-rank Stats
// object, so one benchmark run can answer the questions the paper answers
// qualitatively: how many requests were issued, how discontiguous they were,
// how much time went to seeks versus transfer, and how much extra data the
// sieving and two-phase optimizations moved to earn their contiguity.
//
// The design is zero-overhead-by-default: layers hold a *Stats (and *Trace)
// pointer that is nil unless a harness enables collection, and every
// recording method is a no-op on a nil receiver — a single predictable
// branch on the hot path. When enabled, counters are lock-free atomics, so
// one Stats may safely be shared across goroutines (it is per-rank in the
// benchmarks, but the file-system layer can be driven by many ranks at
// once and the counters stay exact under -race).
//
// Counter times are virtual time (see internal/mpi and internal/pfs),
// stored as integer nanoseconds so they reduce with the same min/max/sum
// machinery as byte and call counts.
package iostat

import "sync/atomic"

// Counter identifies one accumulated quantity. Counters are grouped by the
// layer that records them; the table writer prints them in this order.
type Counter int

// The counter set. Time-valued counters carry the Ns suffix and hold
// virtual nanoseconds.
const (
	// --- pfs: the simulated striped file system ---

	// PfsBytesRead / PfsBytesWritten are bytes moved to/from the I/O
	// servers (what the paper calls bytes "landed").
	PfsBytesRead Counter = iota
	PfsBytesWritten
	// PfsReadCalls / PfsWriteCalls count request batches.
	PfsReadCalls
	PfsWriteCalls
	// PfsReadExtents / PfsWriteExtents count discontiguous file extents
	// after merging, summed over requests; extents/call is the paper's
	// noncontiguity metric.
	PfsReadExtents
	PfsWriteExtents
	// PfsSeekTimeNs / PfsTransferTimeNs split the cost model's charge into
	// positioning (per-extent seeks, per-request overhead) and data
	// movement (bytes over server bandwidth).
	PfsSeekTimeNs
	PfsTransferTimeNs
	// PfsRMWBlocks / PfsRMWBytes count partially written stripe blocks and
	// the read-before-write bytes they cost (GPFS-style partial-block
	// commit).
	PfsRMWBlocks
	PfsRMWBytes
	// PfsFaultsInjected counts faults the injection layer delivered to this
	// rank's pfs requests (transient errors, short transfers, latency
	// spikes, crash points). PfsRetries counts request re-issues after
	// transient errors, and PfsBackoffTimeNs the virtual time spent waiting
	// between attempts (serial-adapter retries; the MPI-IO layer's retries
	// are IORetries).
	PfsFaultsInjected
	PfsRetries
	PfsBackoffTimeNs

	// --- mpi: the message-passing runtime ---

	// MPIMsgsSent / MPIBytesSent count point-to-point payloads, including
	// those collectives are built from.
	MPIMsgsSent
	MPIBytesSent
	// MPICollectives counts collective operations entered on the
	// communicator (Barrier, Bcast, reductions, ...).
	MPICollectives

	// --- mpiio: the MPI-IO library ---

	// IOIndepReadCalls .. IOCollWriteCalls count data-access calls by mode.
	IOIndepReadCalls
	IOIndepWriteCalls
	IOCollReadCalls
	IOCollWriteCalls
	// IOBytesRead / IOBytesWritten are view-data bytes the application
	// asked MPI-IO to move (excluding raw header traffic).
	IOBytesRead
	IOBytesWritten
	// IORawBytesRead / IORawBytesWritten are header-path bytes moved with
	// ReadRaw/WriteRaw, bypassing the file view.
	IORawBytesRead
	IORawBytesWritten
	// IOReadExtents / IOWriteExtents count the file extents each request
	// resolved to before any optimization, summed over calls.
	IOReadExtents
	IOWriteExtents
	// IOSieveReads counts covering-window reads performed by read sieving;
	// IOSieveReadAmpBytes is the bytes those windows read beyond what the
	// caller asked for (the read amplification).
	IOSieveReads
	IOSieveReadAmpBytes
	// IOSieveRMW counts read-modify-write windows performed by write
	// sieving; IOSieveWriteAmpBytes is the bytes written beyond the
	// request (hole bytes rewritten with the window). The matching
	// window read-back shows up as PfsBytesRead.
	IOSieveRMW
	IOSieveWriteAmpBytes
	// IOTwoPhaseRounds counts collective-buffering rounds;
	// IOExchangeBytes is the payload shipped between ranks and
	// aggregators in phase 1 (and phase 2 of reads).
	IOTwoPhaseRounds
	IOExchangeBytes
	// IOBalancedPlans counts collective calls planned with the
	// cb_partition=balanced equal-work file-domain split.
	IOBalancedPlans
	// IOReadTimeNs / IOWriteTimeNs are virtual wall time spent inside
	// MPI-IO data-access calls.
	IOReadTimeNs
	IOWriteTimeNs
	// IORetries counts pfs requests the MPI-IO layer re-issued after a
	// transient fault; IOBackoffTimeNs is the virtual time spent backing
	// off between attempts.
	IORetries
	IOBackoffTimeNs
	// IOPipelinedRounds counts two-phase rounds executed on the pipelined
	// collective path (cb_pipeline); IOOverlapTimeNs is the virtual time
	// aggregator I/O spent in flight while the rank was doing other work
	// (the overlap the depth-2 pipeline buys — zero on the serial path).
	IOPipelinedRounds
	IOOverlapTimeNs
	// IOCollAborts counts collective data-access calls that returned an
	// agreed error after the per-round error agreement (every rank of the
	// communicator counts the abort once).
	IOCollAborts
	// FTFailuresDetected counts rank-failure detections (one per
	// revocation generation per rank); FTCommShrinks counts survivor
	// communicators built with Comm.Shrink; FTFailoverRounds counts
	// two-phase rounds re-run over the shrunken communicator;
	// FTDegradedCompletions counts collective calls that completed
	// degraded — data held only by the dead rank is missing (DESIGN.md §8).
	FTFailuresDetected
	FTCommShrinks
	FTFailoverRounds
	FTDegradedCompletions

	// --- pnetcdf: the parallel netCDF core ---

	// NCCollPuts .. NCIndepGets count data-mode accesses by mode.
	NCCollPuts
	NCIndepPuts
	NCCollGets
	NCIndepGets
	// NCBytesPut / NCBytesGot are external-representation bytes moved by
	// put/get calls.
	NCBytesPut
	NCBytesGot
	// NCHeaderWriteBytes is header (and numrecs) bytes written by the
	// root; NCHeaderBcastBytes is header bytes broadcast at open.
	NCHeaderWriteBytes
	NCHeaderBcastBytes
	// NCNumRecsSyncs counts record-count reconciliations.
	NCNumRecsSyncs
	// NCHeaderCommits counts crash-consistent header commit sequences
	// (journal + publish); NCHeaderRecoveries counts opens that had to
	// recover the header from the commit journal.
	NCHeaderCommits
	NCHeaderRecoveries
	// NCPutTimeNs / NCGetTimeNs are virtual wall time inside put/get calls.
	NCPutTimeNs
	NCGetTimeNs

	// NumCounters is the table size; keep it last.
	NumCounters
)

// counterNames maps counters to their snake_case wire names (used in JSON
// and the stats table).
var counterNames = [NumCounters]string{
	PfsBytesRead:          "pfs_bytes_read",
	PfsBytesWritten:       "pfs_bytes_written",
	PfsReadCalls:          "pfs_read_calls",
	PfsWriteCalls:         "pfs_write_calls",
	PfsReadExtents:        "pfs_read_extents",
	PfsWriteExtents:       "pfs_write_extents",
	PfsSeekTimeNs:         "pfs_seek_time_ns",
	PfsTransferTimeNs:     "pfs_transfer_time_ns",
	PfsRMWBlocks:          "pfs_rmw_blocks",
	PfsRMWBytes:           "pfs_rmw_bytes",
	PfsFaultsInjected:     "pfs_faults_injected",
	PfsRetries:            "pfs_retries",
	PfsBackoffTimeNs:      "pfs_backoff_time_ns",
	MPIMsgsSent:           "mpi_msgs_sent",
	MPIBytesSent:          "mpi_bytes_sent",
	MPICollectives:        "mpi_collectives",
	IOIndepReadCalls:      "io_indep_read_calls",
	IOIndepWriteCalls:     "io_indep_write_calls",
	IOCollReadCalls:       "io_coll_read_calls",
	IOCollWriteCalls:      "io_coll_write_calls",
	IOBytesRead:           "io_bytes_read",
	IOBytesWritten:        "io_bytes_written",
	IORawBytesRead:        "io_raw_bytes_read",
	IORawBytesWritten:     "io_raw_bytes_written",
	IOReadExtents:         "io_read_extents",
	IOWriteExtents:        "io_write_extents",
	IOSieveReads:          "io_sieve_reads",
	IOSieveReadAmpBytes:   "io_sieve_read_amp_bytes",
	IOSieveRMW:            "io_sieve_rmw",
	IOSieveWriteAmpBytes:  "io_sieve_write_amp_bytes",
	IOTwoPhaseRounds:      "io_two_phase_rounds",
	IOExchangeBytes:       "io_exchange_bytes",
	IOBalancedPlans:       "io_balanced_plans",
	IOReadTimeNs:          "io_read_time_ns",
	IOWriteTimeNs:         "io_write_time_ns",
	IORetries:             "io_retries",
	IOBackoffTimeNs:       "io_backoff_time_ns",
	IOPipelinedRounds:     "io_pipelined_rounds",
	IOOverlapTimeNs:       "io_overlap_ns",
	IOCollAborts:          "io_coll_aborts",
	FTFailuresDetected:    "ft_failures_detected",
	FTCommShrinks:         "ft_comm_shrinks",
	FTFailoverRounds:      "ft_failover_rounds",
	FTDegradedCompletions: "ft_degraded_completions",
	NCCollPuts:            "nc_coll_puts",
	NCIndepPuts:           "nc_indep_puts",
	NCCollGets:            "nc_coll_gets",
	NCIndepGets:           "nc_indep_gets",
	NCBytesPut:            "nc_bytes_put",
	NCBytesGot:            "nc_bytes_got",
	NCHeaderWriteBytes:    "nc_header_write_bytes",
	NCHeaderBcastBytes:    "nc_header_bcast_bytes",
	NCNumRecsSyncs:        "nc_numrecs_syncs",
	NCHeaderCommits:       "nc_header_commits",
	NCHeaderRecoveries:    "nc_header_recoveries",
	NCPutTimeNs:           "nc_put_time_ns",
	NCGetTimeNs:           "nc_get_time_ns",
}

// String returns the counter's snake_case name.
func (c Counter) String() string {
	if c < 0 || c >= NumCounters {
		return "unknown"
	}
	return counterNames[c]
}

// Layer returns the recording layer's short name ("pfs", "mpi", "mpiio",
// "pnetcdf").
func (c Counter) Layer() string {
	switch {
	case c <= PfsBackoffTimeNs:
		return "pfs"
	case c <= MPICollectives:
		return "mpi"
	case c <= FTDegradedCompletions:
		return "mpiio"
	default:
		return "pnetcdf"
	}
}

// IsTime reports whether the counter holds virtual nanoseconds.
func (c Counter) IsTime() bool {
	switch c {
	case PfsSeekTimeNs, PfsTransferTimeNs, PfsBackoffTimeNs,
		IOReadTimeNs, IOWriteTimeNs, IOBackoffTimeNs, IOOverlapTimeNs,
		NCPutTimeNs, NCGetTimeNs:
		return true
	}
	return false
}

// IsBytes reports whether the counter holds bytes.
func (c Counter) IsBytes() bool {
	switch c {
	case PfsBytesRead, PfsBytesWritten, PfsRMWBytes, MPIBytesSent,
		IOBytesRead, IOBytesWritten, IORawBytesRead, IORawBytesWritten,
		IOSieveReadAmpBytes, IOSieveWriteAmpBytes, IOExchangeBytes,
		NCBytesPut, NCBytesGot, NCHeaderWriteBytes, NCHeaderBcastBytes:
		return true
	}
	return false
}

// Stats is one rank's counter set. The zero value is ready to use; a nil
// *Stats is a valid disabled collector (every method is a no-op), which is
// how the layers keep the stats-off path to a single pointer test.
type Stats struct {
	c [NumCounters]atomic.Int64
}

// New returns an empty, enabled counter set.
func New() *Stats { return &Stats{} }

// Add accumulates v into counter k. No-op on a nil receiver.
func (s *Stats) Add(k Counter, v int64) {
	if s == nil {
		return
	}
	s.c[k].Add(v)
}

// AddTime accumulates a virtual duration in seconds into a time counter,
// converting to nanoseconds. Negative durations are ignored (they would
// mean a clock went backwards; no layer does that, but stats must never
// corrupt a run). No-op on a nil receiver.
func (s *Stats) AddTime(k Counter, seconds float64) {
	if s == nil || seconds <= 0 {
		return
	}
	s.c[k].Add(int64(seconds * 1e9))
}

// Get returns counter k's current value (0 on a nil receiver).
func (s *Stats) Get(k Counter) int64 {
	if s == nil {
		return 0
	}
	return s.c[k].Load()
}

// Reset zeroes every counter.
func (s *Stats) Reset() {
	if s == nil {
		return
	}
	for i := range s.c {
		s.c[i].Store(0)
	}
}

// Snapshot is a point-in-time copy of a counter set, safe to ship between
// ranks.
type Snapshot [NumCounters]int64

// Snapshot copies the current counter values.
func (s *Stats) Snapshot() Snapshot {
	var out Snapshot
	if s == nil {
		return out
	}
	for i := range s.c {
		out[i] = s.c[i].Load()
	}
	return out
}
