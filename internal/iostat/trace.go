package iostat

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event is one traced I/O operation. Times are virtual seconds on the
// issuing rank's clock; Extents is the request's discontiguous extent count
// (0 when not meaningful for the op).
type Event struct {
	Layer   string  `json:"layer"` // "pfs", "mpiio", "pnetcdf"
	Op      string  `json:"op"`    // e.g. "read", "coll_write", "put"
	Rank    int     `json:"rank"`
	Off     int64   `json:"off"` // first byte offset, -1 when not applicable
	Len     int64   `json:"len"` // total bytes
	Extents int     `json:"extents,omitempty"`
	Start   float64 `json:"start"` // virtual seconds
	End     float64 `json:"end"`
}

// Trace is a fixed-capacity ring buffer of events shared by all ranks of a
// run. When full, the oldest events are overwritten and counted as dropped;
// the buffer is allocated once, so steady-state recording allocates
// nothing. A nil *Trace discards events, mirroring the nil-*Stats
// convention.
type Trace struct {
	mu    sync.Mutex
	buf   []Event
	next  int   // next slot to write
	total int64 // events ever recorded
}

// DefaultTraceCap bounds a trace to a few MB of memory.
const DefaultTraceCap = 1 << 16

// NewTrace returns a ring buffer holding up to capacity events
// (DefaultTraceCap if capacity <= 0).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{buf: make([]Event, 0, capacity)}
}

// Record appends an event, overwriting the oldest when full. No-op on a nil
// receiver.
func (t *Trace) Record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.total++
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Dropped returns how many events were overwritten.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - int64(len(t.buf))
}

// Events returns the buffered events oldest-first.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// MetaLayer marks synthetic events that carry trace metadata rather than
// I/O operations; MetaDropped events carry the ring's overwrite count in
// Len. SplitMeta separates them back out on read.
const (
	MetaLayer   = "_meta"
	MetaDropped = "dropped"
)

// WriteJSONL dumps the buffered events as JSON lines, oldest first. When
// the ring overwrote events, a final MetaLayer/MetaDropped line records how
// many, so a reader can never mistake a truncated trace for a complete one.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	if d := t.Dropped(); d > 0 {
		if err := enc.Encode(Event{Layer: MetaLayer, Op: MetaDropped, Rank: -1, Off: -1, Len: d}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SplitMeta separates I/O events from trace-metadata events, returning the
// real events and the total dropped count the metadata declared.
func SplitMeta(events []Event) ([]Event, int64) {
	var dropped int64
	out := events[:0]
	for _, e := range events {
		if e.Layer == MetaLayer {
			if e.Op == MetaDropped {
				dropped += e.Len
			}
			continue
		}
		out = append(out, e)
	}
	return out, dropped
}

// ReadJSONL parses a JSON-lines trace dump. Blank lines are skipped; a
// malformed line is an error identifying its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("iostat: trace line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}
