// Collective-reduction tests live in an external test package so they can
// drive real mpi ranks (mpi imports iostat; the reverse would be a cycle).
package iostat_test

import (
	"sync"
	"testing"

	"pnetcdf/internal/iostat"
	"pnetcdf/internal/mpi"
)

// TestReduceAcrossRanks runs a real communicator where every rank
// accumulates rank-dependent counts — from several goroutines per rank, so
// the atomic counters are exercised under -race — then reduces to rank 0.
func TestReduceAcrossRanks(t *testing.T) {
	const nprocs = 8
	var (
		mu  sync.Mutex
		sum *iostat.Summary
	)
	err := mpi.Run(nprocs, mpi.DefaultNet(), func(c *mpi.Comm) error {
		st := iostat.New()
		c.Proc().SetStats(st)
		// Each rank r adds r+1 bytes 100 times, split across 4 goroutines.
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					st.Add(iostat.PfsBytesWritten, int64(c.Rank()+1))
					st.Add(iostat.PfsWriteCalls, 1)
				}
			}()
		}
		wg.Wait()
		if s := iostat.Reduce(c, st); s != nil {
			mu.Lock()
			sum = s
			mu.Unlock()
			if c.Rank() != 0 {
				t.Errorf("rank %d got a non-nil summary", c.Rank())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum == nil {
		t.Fatal("rank 0 got no summary")
	}
	if sum.Ranks != nprocs {
		t.Fatalf("Ranks = %d", sum.Ranks)
	}
	// sum over r of 100*(r+1) = 100 * n(n+1)/2.
	wantSum := int64(100 * nprocs * (nprocs + 1) / 2)
	if got := sum.Sum[iostat.PfsBytesWritten]; got != wantSum {
		t.Fatalf("Sum = %d, want %d", got, wantSum)
	}
	if got := sum.Min[iostat.PfsBytesWritten]; got != 100 {
		t.Fatalf("Min = %d, want 100 (rank 0)", got)
	}
	if got := sum.Max[iostat.PfsBytesWritten]; got != 100*nprocs {
		t.Fatalf("Max = %d, want %d (last rank)", got, 100*nprocs)
	}
	if got := sum.Mean(iostat.PfsWriteCalls); got != 100 {
		t.Fatalf("Mean calls = %v, want 100", got)
	}
	if kc := sum.KeyCounters(); kc["pfs_bytes_written"] != wantSum {
		t.Fatalf("KeyCounters = %d", kc["pfs_bytes_written"])
	}
}

// TestSharedTraceAcrossRanks records into one Trace from every rank
// concurrently (the way the benches wire it) and checks nothing is lost
// below capacity.
func TestSharedTraceAcrossRanks(t *testing.T) {
	const nprocs, perRank = 6, 50
	tr := iostat.NewTrace(1024)
	err := mpi.Run(nprocs, mpi.DefaultNet(), func(c *mpi.Comm) error {
		c.Proc().SetTrace(tr)
		for i := 0; i < perRank; i++ {
			c.Proc().Trace().Record(iostat.Event{
				Layer: "test", Op: "op", Rank: c.Rank(), Len: 1,
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != nprocs*perRank {
		t.Fatalf("Len = %d, want %d", tr.Len(), nprocs*perRank)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d", tr.Dropped())
	}
	perRankSeen := map[int]int{}
	for _, e := range tr.Events() {
		perRankSeen[e.Rank]++
	}
	for r := 0; r < nprocs; r++ {
		if perRankSeen[r] != perRank {
			t.Fatalf("rank %d has %d events", r, perRankSeen[r])
		}
	}
}

// TestReduceNilStats checks a rank with stats disabled contributes zeros
// rather than crashing — the zero-overhead-off contract.
func TestReduceNilStats(t *testing.T) {
	var sum *iostat.Summary
	err := mpi.Run(4, mpi.DefaultNet(), func(c *mpi.Comm) error {
		var st *iostat.Stats
		if c.Rank()%2 == 0 {
			st = iostat.New()
			st.Add(iostat.MPIMsgsSent, 5)
		}
		if s := iostat.Reduce(c, st); s != nil {
			sum = s
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum == nil || sum.Sum[iostat.MPIMsgsSent] != 10 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Min[iostat.MPIMsgsSent] != 0 || sum.Max[iostat.MPIMsgsSent] != 5 {
		t.Fatalf("min/max = %d/%d", sum.Min[iostat.MPIMsgsSent], sum.Max[iostat.MPIMsgsSent])
	}
}
