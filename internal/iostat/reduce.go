package iostat

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Gatherer is the slice of communicator behavior Reduce needs. *mpi.Comm
// satisfies it; the indirection keeps this package free of an mpi
// dependency (mpi itself records into Stats).
type Gatherer interface {
	Rank() int
	Size() int
	Gather(root int, data []byte) [][]byte
}

// Summary is the rank-0 result of a Reduce: per-counter min, max and sum
// over the participating ranks, mirroring how the paper reports aggregate
// bandwidth with per-process spread.
type Summary struct {
	Ranks int
	Min   Snapshot
	Max   Snapshot
	Sum   Snapshot

	// TraceDropped is the number of trace events the run's ring buffer
	// overwrote (harnesses populate it from Trace.Dropped after the run).
	// Nonzero means any trace dump from the run is incomplete; WriteTable
	// warns loudly.
	TraceDropped int64
}

// Mean returns the per-rank mean of counter k.
func (s *Summary) Mean(k Counter) float64 {
	if s == nil || s.Ranks == 0 {
		return 0
	}
	return float64(s.Sum[k]) / float64(s.Ranks)
}

// Reduce collectively gathers every rank's snapshot of st to rank 0 and
// folds them into a Summary. Every rank of c must call it (st may be nil —
// it contributes zeros). Rank 0 receives the summary; other ranks receive
// nil, like an MPI_Reduce.
func Reduce(c Gatherer, st *Stats) *Summary {
	snap := st.Snapshot()
	blob := make([]byte, 8*NumCounters)
	for i, v := range snap {
		binary.BigEndian.PutUint64(blob[i*8:], uint64(v))
	}
	parts := c.Gather(0, blob)
	if c.Rank() != 0 {
		return nil
	}
	sum := &Summary{Ranks: c.Size()}
	for r, p := range parts {
		var s Snapshot
		for i := range s {
			s[i] = int64(binary.BigEndian.Uint64(p[i*8:]))
		}
		for i := range s {
			if r == 0 || s[i] < sum.Min[i] {
				sum.Min[i] = s[i]
			}
			if r == 0 || s[i] > sum.Max[i] {
				sum.Max[i] = s[i]
			}
			sum.Sum[i] += s[i]
		}
	}
	return sum
}

// KeyCounters returns the wire-named counter sums as a map, the
// machine-readable form the bench JSON embeds.
func (s *Summary) KeyCounters() map[string]int64 {
	if s == nil {
		return nil
	}
	out := make(map[string]int64, int(NumCounters))
	for k := Counter(0); k < NumCounters; k++ {
		out[k.String()] = s.Sum[k]
	}
	return out
}

// fmtVal renders a counter value with its natural unit.
func fmtVal(k Counter, v int64) string {
	switch {
	case k.IsTime():
		return fmtSeconds(float64(v) / 1e9)
	case k.IsBytes():
		return fmtBytes(v)
	default:
		return fmt.Sprintf("%d", v)
	}
}

func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.1fus", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

func fmtBytes(b int64) string {
	switch {
	case b == 0:
		return "0"
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	}
}

// WriteTable prints the summary as a per-layer table: total over ranks plus
// the per-rank min/max spread, skipping counters that stayed zero.
func WriteTable(w io.Writer, s *Summary) {
	if s == nil {
		return
	}
	fmt.Fprintf(w, "  iostat (%d ranks)\n", s.Ranks)
	fmt.Fprintf(w, "    %-8s %-26s %14s %12s %12s\n", "layer", "counter", "total", "rank-min", "rank-max")
	for k := Counter(0); k < NumCounters; k++ {
		if s.Sum[k] == 0 && s.Min[k] == 0 && s.Max[k] == 0 {
			continue
		}
		fmt.Fprintf(w, "    %-8s %-26s %14s %12s %12s\n",
			k.Layer(), k.String(), fmtVal(k, s.Sum[k]), fmtVal(k, s.Min[k]), fmtVal(k, s.Max[k]))
	}
	writeSelfCheck(w, s)
	if s.TraceDropped > 0 {
		fmt.Fprintf(w, "    WARNING: trace ring overwrote %d events — the event trace is INCOMPLETE; raise the trace capacity to capture everything\n",
			s.TraceDropped)
	}
}

// writeSelfCheck prints the cross-layer byte reconciliation: data written
// through pnetcdf should equal data issued through MPI-IO, and should land
// in pfs alongside the separately reported header and amplification
// traffic.
func writeSelfCheck(w io.Writer, s *Summary) {
	put, ioData := s.Sum[NCBytesPut], s.Sum[IOBytesWritten]
	if put == 0 && ioData == 0 {
		return
	}
	accounted := ioData + s.Sum[IORawBytesWritten] + s.Sum[IOSieveWriteAmpBytes]
	fmt.Fprintf(w, "    self-check: pnetcdf put %s; mpi-io issued %s data + %s raw + %s sieve-amp = %s; pfs landed %s\n",
		fmtBytes(put), fmtBytes(ioData), fmtBytes(s.Sum[IORawBytesWritten]),
		fmtBytes(s.Sum[IOSieveWriteAmpBytes]), fmtBytes(accounted), fmtBytes(s.Sum[PfsBytesWritten]))
}
