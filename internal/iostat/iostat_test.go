package iostat

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilCollectorsAreNoOps(t *testing.T) {
	var s *Stats
	s.Add(PfsBytesRead, 10) // must not panic
	s.AddTime(IOReadTimeNs, 1.5)
	s.Reset()
	if got := s.Get(PfsBytesRead); got != 0 {
		t.Fatalf("nil Stats Get = %d", got)
	}
	var tr *Trace
	tr.Record(Event{Layer: "pfs", Op: "read"})
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil Trace not empty")
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New()
	s.Add(IOBytesWritten, 100)
	s.Add(IOBytesWritten, 23)
	s.AddTime(IOWriteTimeNs, 0.5) // 5e8 ns
	s.AddTime(IOWriteTimeNs, -1)  // ignored
	s.AddTime(IOWriteTimeNs, 0)   // ignored
	if got := s.Get(IOBytesWritten); got != 123 {
		t.Fatalf("IOBytesWritten = %d", got)
	}
	if got := s.Get(IOWriteTimeNs); got != 5e8 {
		t.Fatalf("IOWriteTimeNs = %d", got)
	}
	snap := s.Snapshot()
	if snap[IOBytesWritten] != 123 {
		t.Fatalf("snapshot = %d", snap[IOBytesWritten])
	}
	s.Reset()
	if s.Get(IOBytesWritten) != 0 || s.Get(IOWriteTimeNs) != 0 {
		t.Fatal("Reset did not zero")
	}
	// Snapshot taken before Reset is unaffected.
	if snap[IOBytesWritten] != 123 {
		t.Fatal("snapshot aliased live counters")
	}
}

func TestStatsConcurrentAdd(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add(MPIBytesSent, 1)
			}
		}()
	}
	wg.Wait()
	if got := s.Get(MPIBytesSent); got != 8000 {
		t.Fatalf("concurrent adds lost updates: %d", got)
	}
}

func TestCounterMetadata(t *testing.T) {
	seen := map[string]bool{}
	for k := Counter(0); k < NumCounters; k++ {
		name := k.String()
		if name == "" || strings.ContainsAny(name, " \t") {
			t.Fatalf("counter %d has bad name %q", k, name)
		}
		if seen[name] {
			t.Fatalf("duplicate counter name %q", name)
		}
		seen[name] = true
		if k.Layer() == "" {
			t.Fatalf("counter %s has no layer", name)
		}
		if k.IsTime() != strings.HasSuffix(name, "_ns") {
			t.Fatalf("counter %s IsTime mismatch", name)
		}
	}
}

func TestTraceRingOverwrite(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 6; i++ {
		tr.Record(Event{Layer: "pfs", Op: "write", Off: int64(i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d", tr.Dropped())
	}
	evs := tr.Events()
	for i, e := range evs {
		if e.Off != int64(i+2) { // oldest two (0,1) overwritten
			t.Fatalf("event %d has Off %d", i, e.Off)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTrace(16)
	want := []Event{
		{Layer: "pfs", Op: "write", Rank: 0, Off: 1024, Len: 4096, Extents: 2, Start: 0.5, End: 0.75},
		{Layer: "mpiio", Op: "coll_read", Rank: 3, Off: 0, Len: 1 << 20, Start: 1, End: 2},
		{Layer: "pnetcdf", Op: "put", Rank: 1, Off: -1, Len: 8},
	}
	for _, e := range want {
		tr.Record(e)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip: %d events", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	in := strings.NewReader(`{"layer":"pfs","op":"read"}` + "\n" + "not json\n")
	if _, err := ReadJSONL(in); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}

func TestWriteTableSelfCheck(t *testing.T) {
	s := New()
	// A consistent little run: 100 data bytes + 20 header bytes through
	// mpiio, 6 bytes of sieve RMW amplification, all landing in pfs.
	s.Add(NCBytesPut, 100)
	s.Add(IOBytesWritten, 100)
	s.Add(IORawBytesWritten, 20)
	s.Add(IOSieveWriteAmpBytes, 6)
	s.Add(PfsBytesWritten, 126)
	sum := &Summary{Ranks: 1, Min: s.Snapshot(), Max: s.Snapshot(), Sum: s.Snapshot()}
	var buf bytes.Buffer
	WriteTable(&buf, sum)
	out := buf.String()
	if !strings.Contains(out, "self-check") {
		t.Fatalf("no self-check in table:\n%s", out)
	}
	if !strings.Contains(out, "pfs") || !strings.Contains(out, "mpi-io") {
		t.Fatalf("missing layers:\n%s", out)
	}
}
