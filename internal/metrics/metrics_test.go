package metrics

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

func TestRegistryServesJSON(t *testing.T) {
	var reg Registry
	var runs atomic.Int64
	runs.Store(3)
	reg.Publish("runs_completed", func() any { return runs.Load() })
	reg.Set("tool", "flashio-bench")

	srv := httptest.NewServer(&reg)
	defer srv.Close()

	fetch := func() map[string]any {
		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Fatalf("Content-Type = %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("response is not valid JSON: %v\n%s", err, body)
		}
		return out
	}

	got := fetch()
	if got["runs_completed"].(float64) != 3 || got["tool"] != "flashio-bench" {
		t.Fatalf("snapshot = %v", got)
	}
	// Live: the snapshot function re-evaluates per request.
	runs.Store(7)
	if got := fetch(); got["runs_completed"].(float64) != 7 {
		t.Fatalf("snapshot not live: %v", got)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Publish("x", func() any { return 1 })
	r.Set("y", 2)
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry holds state")
	}
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || len(out) != 0 {
		t.Fatalf("nil registry served %q (err %v)", rec.Body.String(), err)
	}
}

func TestRegistryReplaceAndSnapshot(t *testing.T) {
	var reg Registry
	reg.Set("v", 1)
	reg.Set("v", 2)
	if got := reg.Snapshot()["v"]; got != 2 {
		t.Fatalf("v = %v", got)
	}
}
