// Package metrics is a tiny expvar-style registry: named snapshot
// functions published over HTTP as one JSON document. The bench tools use
// it for a live view of a sweep in progress (-metrics-addr): runs
// completed, the last run's reduced counters, trace/span drop counts.
//
// The stdlib expvar package publishes on http.DefaultServeMux for the
// process's lifetime; this registry is per-tool and serves on its own
// listener so tests and multiple harnesses never collide.
package metrics

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// Registry maps names to snapshot functions. Safe for concurrent use; the
// zero value is ready. A nil *Registry ignores Publish and serves an empty
// document, matching the repo's nil-safe observability convention.
type Registry struct {
	mu   sync.Mutex
	vars map[string]func() any
}

// Publish registers (or replaces) a named variable. fn is called at
// serve/snapshot time and must be safe to call from any goroutine; its
// result must be JSON-marshalable.
func (r *Registry) Publish(name string, fn func() any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.vars == nil {
		r.vars = make(map[string]func() any)
	}
	r.vars[name] = fn
	r.mu.Unlock()
}

// Set publishes a constant value.
func (r *Registry) Set(name string, v any) {
	r.Publish(name, func() any { return v })
}

// Snapshot evaluates every variable. Deterministic key order is the
// marshaler's concern; this returns a plain map.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.vars))
	fns := make([]func() any, 0, len(r.vars))
	for n, fn := range r.vars {
		names = append(names, n)
		fns = append(fns, fn)
	}
	r.mu.Unlock()
	// Evaluate outside the lock: a snapshot function may itself take locks.
	for i, n := range names {
		out[n] = fns[i]()
	}
	return out
}

// ServeHTTP serves the snapshot as indented JSON (any path).
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	snap := r.Snapshot()
	// Stable output: marshal as an ordered document.
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprint(w, "{\n")
	for i, n := range names {
		kb, _ := json.Marshal(n)
		vb, err := json.MarshalIndent(snap[n], "  ", "  ")
		if err != nil {
			vb, _ = json.Marshal(err.Error())
		}
		comma := ","
		if i == len(names)-1 {
			comma = ""
		}
		fmt.Fprintf(w, "  %s: %s%s\n", kb, vb, comma)
	}
	fmt.Fprint(w, "}\n")
}
