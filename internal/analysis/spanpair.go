package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanPair enforces the span lifecycle discipline of DESIGN.md §11: every
// span handle obtained from span.Recorder.Begin must reach an End() on
// every return path of the acquiring function — directly, or via a defer
// (the blessed shape; End is idempotent and closes descendants, so one
// deferred End makes a whole function crash-safe). A Begin whose handle is
// never ended leaves the span open in the recorder: its duration is
// clamped to zero in snapshots and the critical-path analysis silently
// loses the phase, which is exactly the kind of rot an instrumented error
// path develops.
//
// A handle that deliberately outlives the function (stored for a later
// End, the cross-call round pattern) must be suppressed at the Begin site
// with a justified //nclint:allow=spanpair annotation.
func SpanPair() *Checker {
	return &Checker{
		Name: "spanpair",
		Doc:  "span Begin handles must reach End() on all return paths (defer is the blessed shape)",
		Run:  runSpanPair,
	}
}

func runSpanPair(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkSpanFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkSpanFunc(pass, n.Body)
			}
			return true
		})
	}
}

// isSpanMethod reports whether call invokes the named method of the span
// package (Recorder.Begin, Active.End, ...).
func isSpanMethod(pass *Pass, call *ast.CallExpr, name string) bool {
	fn := pass.Callee(call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "span" && fn.Name() == name
}

// beginCallIn unwraps parens around a span Begin call.
func beginCallIn(pass *Pass, e ast.Expr) *ast.CallExpr {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && isSpanMethod(pass, call, "Begin") {
		return call
	}
	return nil
}

// endRecvObj resolves the local whose End method a call invokes, or nil.
func endRecvObj(pass *Pass, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Pkg.Info.ObjectOf(id)
}

// spanState is the set of open (not yet ended) span handles along one path.
type spanState map[types.Object]bool

func (s spanState) clone() spanState {
	c := spanState{}
	for k := range s {
		c[k] = true
	}
	return c
}

type spanAnalysis struct {
	pass     *Pass
	deferred map[types.Object]bool // ended at every return
	reported map[types.Object]bool
}

func checkSpanFunc(pass *Pass, body *ast.BlockStmt) {
	a := &spanAnalysis{
		pass:     pass,
		deferred: map[types.Object]bool{},
		reported: map[types.Object]bool{},
	}
	end, terminated := a.flow(body.List, spanState{})
	if !terminated {
		a.reportOpen(end, body.Rbrace, "function end")
	}
}

// flow walks stmts in order, returning the fall-through state and whether
// every path through stmts terminated (returned) before falling through.
func (a *spanAnalysis) flow(stmts []ast.Stmt, open spanState) (spanState, bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			a.assign(s, open)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, val := range vs.Values {
							if i < len(vs.Names) {
								a.trackValue(vs.Names[i], val, open)
							}
						}
					}
				}
			}
		case *ast.ExprStmt:
			a.exprStmt(s.X, open)
		case *ast.DeferStmt:
			if isSpanMethod(a.pass, s.Call, "End") {
				if obj := endRecvObj(a.pass, s.Call); obj != nil {
					a.deferred[obj] = true
				}
			} else if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok && isSpanMethod(a.pass, call, "End") {
						if obj := endRecvObj(a.pass, call); obj != nil {
							a.deferred[obj] = true
						}
					}
					return true
				})
			}
		case *ast.ReturnStmt:
			a.reportOpen(open, s.Pos(), "return")
			return open, true
		case *ast.IfStmt:
			thenState, thenTerm := a.flow(s.Body.List, open.clone())
			var elseState spanState
			elseTerm := false
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseState, elseTerm = a.flow(e.List, open.clone())
			case *ast.IfStmt:
				elseState, elseTerm = a.flow([]ast.Stmt{e}, open.clone())
			default:
				elseState = open.clone()
			}
			if thenTerm && elseTerm {
				return open, true
			}
			merged := spanState{}
			if !thenTerm {
				for k := range thenState {
					merged[k] = true
				}
			}
			if !elseTerm {
				for k := range elseState {
					merged[k] = true
				}
			}
			open = merged
		case *ast.BlockStmt:
			var term bool
			open, term = a.flow(s.List, open)
			if term {
				return open, true
			}
		case *ast.ForStmt:
			// A span begun and ended inside the body is balanced per
			// iteration; one still open after the body's fall-through edge
			// carries into the merged state.
			bodyState, _ := a.flow(s.Body.List, open.clone())
			for k := range bodyState {
				open[k] = true
			}
		case *ast.RangeStmt:
			bodyState, _ := a.flow(s.Body.List, open.clone())
			for k := range bodyState {
				open[k] = true
			}
		case *ast.SwitchStmt:
			a.caseFlow(stmtClauses(s.Body), open)
		case *ast.TypeSwitchStmt:
			a.caseFlow(stmtClauses(s.Body), open)
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					st, _ := a.flow(cc.Body, open.clone())
					for k := range st {
						open[k] = true
					}
				}
			}
		case *ast.LabeledStmt:
			var term bool
			open, term = a.flow([]ast.Stmt{s.Stmt}, open)
			if term {
				return open, true
			}
		}
	}
	return open, false
}

func (a *spanAnalysis) caseFlow(clauses []*ast.CaseClause, open spanState) {
	for _, cc := range clauses {
		st, _ := a.flow(cc.Body, open.clone())
		for k := range st {
			open[k] = true
		}
	}
}

// assign handles x := rec.Begin(...) and rebindings.
func (a *spanAnalysis) assign(s *ast.AssignStmt, open spanState) {
	for i, rhs := range s.Rhs {
		if i >= len(s.Lhs) {
			break
		}
		if id, ok := s.Lhs[i].(*ast.Ident); ok {
			a.trackValue(id, rhs, open)
			continue
		}
		// Stored into a field or element: the handle outlives this scope,
		// which needs a justified allow at the Begin site.
		if call := beginCallIn(a.pass, rhs); call != nil {
			a.pass.Reportf(call.Pos(), "span.Begin handle is stored outside the function's locals; End it locally or suppress with //nclint:allow=spanpair -- <who ends it>")
		}
	}
}

// trackValue processes `id = value`: a Begin call starts tracking; handing
// the handle to a second name moves the obligation.
func (a *spanAnalysis) trackValue(id *ast.Ident, value ast.Expr, open spanState) {
	if call := beginCallIn(a.pass, value); call != nil {
		if obj := a.pass.Pkg.Info.ObjectOf(id); obj != nil {
			open[obj] = true
		} else {
			// `_ = rec.Begin(...)`: the handle is unreachable.
			a.pass.Reportf(call.Pos(), "span.Begin result is discarded; bind the handle and End() it (the span stays open forever)")
		}
		return
	}
	if id.Name == "_" {
		return // `_ = sc` reads the handle; the obligation stays put
	}
	if src, ok := ast.Unparen(value).(*ast.Ident); ok {
		obj := a.pass.Pkg.Info.ObjectOf(src)
		idObj := a.pass.Pkg.Info.ObjectOf(id)
		if obj != nil && open[obj] && obj != idObj {
			delete(open, obj)
			if idObj != nil {
				open[idObj] = true
			}
		}
	}
}

// exprStmt handles End calls and bare Begin calls whose handle is dropped.
func (a *spanAnalysis) exprStmt(e ast.Expr, open spanState) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	if isSpanMethod(a.pass, call, "End") {
		if obj := endRecvObj(a.pass, call); obj != nil {
			delete(open, obj)
		}
		return
	}
	if isSpanMethod(a.pass, call, "Begin") {
		a.pass.Reportf(call.Pos(), "span.Begin result is discarded; bind the handle and End() it (the span stays open forever)")
	}
}

// reportOpen reports every span handle that reaches `where` without End.
func (a *spanAnalysis) reportOpen(open spanState, pos token.Pos, where string) {
	for obj := range open {
		if a.deferred[obj] || a.reported[obj] {
			continue
		}
		a.reported[obj] = true
		a.pass.Reportf(pos, "span %s reaches %s without End() (open span: zero duration in snapshots, lost in critical-path analysis); defer %s.End() after Begin", obj.Name(), where, obj.Name())
	}
}
