package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Accounting guards the pfs cost-model and iostat invariants: every
// exported pfs entry point that moves bytes through the chunk store must
// also charge the virtual-time cost model (FS.charge) and record iostat
// counters, so a new fast path cannot return data "for free" and silently
// skew every simulated bandwidth number built on top (the paper's Figure
// 6/7 reproductions all flow through these charges).
//
// The check builds the package-internal static call graph and, for each
// exported function or method, asks: does it reach a chunk-store access
// (chunkStore.writeAt/readAt/truncate)? If so it must also reach FS.charge
// AND an iostat recording call (File.record or Stats.Add/AddTime).
// Metadata-only operations that legitimately skip charging carry a
// justified //nclint:allow=accounting annotation on the declaration.
func Accounting() *Checker {
	return &Checker{
		Name: "accounting",
		Doc:  "pfs data paths that touch the chunk store must charge the cost model and iostat",
		Run:  runAccounting,
	}
}

func runAccounting(pass *Pass) {
	if pass.Pkg.Name != "pfs" {
		return
	}
	// Interprocedural mode: the engine's Touches/Charges/Records facts are
	// already transitive over the module-wide call graph (closures and
	// cross-package helpers included), so the per-package graph below is
	// subsumed by a summary lookup per exported declaration.
	if pass.Engine != nil {
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil || !ast.IsExported(decl.Name.Name) {
					continue
				}
				fn, _ := pass.Pkg.Info.Defs[decl.Name].(*types.Func)
				if fn == nil {
					continue
				}
				sum := pass.Engine.Summary(fn)
				if sum == nil || !sum.Touches {
					continue
				}
				if !sum.Charges {
					pass.Reportf(decl.Name.Pos(),
						"%s touches the chunk store but never charges the cost model (FS.charge): data moved for free skews every simulated bandwidth number", fn.Name())
				}
				if !sum.Records {
					pass.Reportf(decl.Name.Pos(),
						"%s touches the chunk store but records no iostat counters (File.record / Stats.Add)", fn.Name())
				}
			}
		}
		return
	}
	type node struct {
		decl    *ast.FuncDecl
		calls   map[*types.Func]bool
		touches bool // direct chunk-store access
		charges bool // direct FS.charge call
		records bool // direct iostat recording
	}
	nodes := map[*types.Func]*node{}

	funcOf := func(decl *ast.FuncDecl) *types.Func {
		obj, _ := pass.Pkg.Info.Defs[decl.Name].(*types.Func)
		return obj
	}

	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn := funcOf(decl)
			if fn == nil {
				continue
			}
			nd := &node{decl: decl, calls: map[*types.Func]bool{}}
			nodes[fn] = nd
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := pass.Callee(call)
				if callee == nil {
					return true
				}
				switch {
				case isMethodOn(callee, "pfs", "chunkStore", "writeAt", "readAt", "truncate"):
					nd.touches = true
				case isMethodOn(callee, "pfs", "FS", "charge"):
					nd.charges = true
				case isMethodOn(callee, "pfs", "File", "record"):
					nd.records = true
				case callee.Pkg() != nil && callee.Pkg().Name() == "iostat" &&
					(callee.Name() == "Add" || callee.Name() == "AddTime"):
					nd.records = true
				}
				if callee.Pkg() != nil && callee.Pkg().Path() == pass.Pkg.Path {
					nd.calls[callee] = true
				}
				return true
			})
		}
	}

	// reaches computes whether fn transitively satisfies pred.
	type predFn func(*node) bool
	reaches := func(start *types.Func, pred predFn) bool {
		seen := map[*types.Func]bool{}
		var visit func(fn *types.Func) bool
		visit = func(fn *types.Func) bool {
			if seen[fn] {
				return false
			}
			seen[fn] = true
			nd := nodes[fn]
			if nd == nil {
				return false
			}
			if pred(nd) {
				return true
			}
			for callee := range nd.calls {
				if visit(callee) {
					return true
				}
			}
			return false
		}
		return visit(start)
	}

	for fn, nd := range nodes {
		if !ast.IsExported(fn.Name()) {
			continue
		}
		if !reaches(fn, func(n *node) bool { return n.touches }) {
			continue
		}
		if !reaches(fn, func(n *node) bool { return n.charges }) {
			pass.Reportf(nd.decl.Name.Pos(),
				"%s touches the chunk store but never charges the cost model (FS.charge): data moved for free skews every simulated bandwidth number", fn.Name())
		}
		if !reaches(fn, func(n *node) bool { return n.records }) {
			pass.Reportf(nd.decl.Name.Pos(),
				"%s touches the chunk store but records no iostat counters (File.record / Stats.Add)", fn.Name())
		}
	}
}

// isMethodOn reports whether fn is a method named one of names on the type
// pkgName.typeName.
func isMethodOn(fn *types.Func, pkgName, typeName string, names ...string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != pkgName || named.Obj().Name() != typeName {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// exportedIONames matches the error-returning teardown/flush calls the
// errcheckio checker audits.
func isIOErrorName(name string) bool {
	return name == "Close" || name == "Sync" || name == "Flush" || strings.HasPrefix(name, "Write")
}
