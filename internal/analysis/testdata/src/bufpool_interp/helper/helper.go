// Package helper moves pooled buffers across the package boundary in the
// three summary shapes: returning one, parking them in a caller slice, and
// putting them back.
package helper

import "pnetcdf/internal/bufpool"

// Encode returns a pooled buffer whose custody passes to the caller.
func Encode(n int) []byte {
	b := bufpool.Get(n) //nclint:escape -- returned to the caller, which owns the Put
	return b
}

// Release discharges a buffer on the caller's behalf.
func Release(b []byte) { bufpool.Put(b) }

// ReleaseAll discharges a whole generation.
func ReleaseAll(parts [][]byte) { bufpool.PutAll(parts) }

// Fill parks pooled buffers in the caller's slice (custody transfers out
// through the parts parameter, like packWriteRound).
func Fill(parts [][]byte, n int) {
	for i := range parts {
		parts[i] = Encode(n)
	}
}
