// Package fix is the golden fixture for the interprocedural bufpool
// upgrade: pooled buffers move through cross-package helpers — returned by
// one (ReturnsPooled), parked into a caller slice by another
// (StoresPooledParam), and discharged by a third (PutsParam). The same
// fixture must be CLEAN under the intraprocedural checker (the
// strictly-more proof in the harness).
package fix

import "fixture/bufpool_interp/helper"

func use(b []byte) {}

// leakedHelperBuffer drops a buffer obtained through the helper: only the
// summary knows helper.Encode hands over pooled custody.
func leakedHelperBuffer(n int) {
	b := helper.Encode(n)
	use(b)
} // want `bufpool buffer b reaches function end without bufpool\.Put`

// pairedHelperBuffer is fine: the helper's Release puts its parameter.
func pairedHelperBuffer(n int) {
	b := helper.Encode(n)
	use(b)
	helper.Release(b)
}

// generationLeak drops a whole generation the helper filled with pooled
// buffers: custody re-homed under the local slice by the StoresPooledParam
// summary, never recycled.
func generationLeak(n int) {
	parts := make([][]byte, 4)
	helper.Fill(parts, n)
} // want `bufpool buffer parts reaches function end without bufpool\.Put`

// generationRecycled is fine: helper.ReleaseAll puts the generation back.
func generationRecycled(n int) {
	parts := make([][]byte, 4)
	helper.Fill(parts, n)
	helper.ReleaseAll(parts)
}

// errPathLeak puts on the happy path but leaks on the error bail.
func errPathLeak(n int, err error) error {
	b := helper.Encode(n)
	if err != nil {
		return err // want `bufpool buffer b reaches return without bufpool\.Put`
	}
	helper.Release(b)
	return nil
}

// transferred is fine in interprocedural mode: returning the buffer makes
// this function ReturnsPooled, and its callers inherit the obligation.
func transferred(n int) []byte {
	b := helper.Encode(n)
	return b
}

// transferCaller leaks the buffer transferred out of the local helper
// above — the obligation followed the summary chain two hops from the Get.
func transferCaller(n int) {
	b := transferred(n)
	use(b)
} // want `bufpool buffer b reaches function end without bufpool\.Put`
