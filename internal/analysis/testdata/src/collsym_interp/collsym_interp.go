// Package fix is the golden fixture for the interprocedural collsym
// upgrade: the collective is hidden behind a cross-package helper, so only
// the summary-based engine can connect the rank-conditioned branch to the
// Barrier it eventually reaches. The same fixture must be CLEAN under the
// intraprocedural checker (the strictly-more proof in the harness).
package fix

import (
	"fixture/collsym_interp/helper"

	"pnetcdf/internal/mpi"
)

// rankGuardedHelper is the canonical bug one extraction away: only rank 0
// enters the helper, and the helper reaches a Barrier.
func rankGuardedHelper(c *mpi.Comm) {
	if c.Rank() == 0 {
		helper.SyncAll(c) // want `collective SyncAll \(which may reach Comm\.Barrier\) is conditioned on the process rank`
	}
}

// rankGuardedDeepHelper reaches the collective through two levels of
// helpers; the fixed-point summary propagation still sees it.
func rankGuardedDeepHelper(c *mpi.Comm) {
	if c.Rank() == 0 {
		helper.SyncTwice(c) // want `collective SyncTwice \(which may reach Comm\.Barrier\) is conditioned on the process rank`
	}
}

// symmetricHelper is fine: both arms run the same helper, so the hidden
// Barrier executes on every rank.
func symmetricHelper(c *mpi.Comm, hdr []byte) {
	if c.Rank() == 0 {
		helper.SyncAll(c)
	} else {
		helper.SyncAll(c)
	}
}

// pureHelper is fine: the helper reaches no collective.
func pureHelper(c *mpi.Comm) {
	if c.Rank() == 0 {
		helper.Pure(c)
	}
}
