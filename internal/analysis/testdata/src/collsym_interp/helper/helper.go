// Package helper hides collective calls behind ordinary-looking functions;
// the fixture's root package calls it across the package boundary.
package helper

import "pnetcdf/internal/mpi"

// SyncAll reaches a collective directly.
func SyncAll(c *mpi.Comm) { c.Barrier() }

// SyncTwice reaches the collective only through SyncAll.
func SyncTwice(c *mpi.Comm) {
	SyncAll(c)
	SyncAll(c)
}

// Pure reaches no collective.
func Pure(c *mpi.Comm) int { return c.Size() }
