// Package pfs is a miniature of internal/pfs's lock topology — same package
// name, type names and mutex field names — so the lockorder checker's
// classifier assigns the same four lock classes it uses on the real code.
package pfs

import "sync"

type FS struct {
	mu    sync.RWMutex
	srvMu sync.Mutex
}

type storeShard struct{ mu sync.Mutex }

type File struct{}

func (f *File) LockRMW(off, n int64)   {}
func (f *File) UnlockRMW(off, n int64) {}

// ordered follows the documented order: file-table -> shard -> server.
func ordered(fs *FS, sh *storeShard) {
	fs.mu.RLock()
	sh.mu.Lock()
	sh.mu.Unlock()
	fs.mu.RUnlock()
	fs.srvMu.Lock()
	fs.srvMu.Unlock()
}

// inverted acquires a shard lock while holding the server-queue lock.
func inverted(fs *FS, sh *storeShard) {
	fs.srvMu.Lock()
	sh.mu.Lock() // want `acquires chunk shard lock \(storeShard\.mu\) while holding server-queue lock \(FS\.srvMu\)`
	sh.mu.Unlock()
	fs.srvMu.Unlock()
}

// rmwAfterShard takes the range lock under a shard lock: classes 3 -> 2.
func rmwAfterShard(f *File, sh *storeShard) {
	sh.mu.Lock()
	f.LockRMW(0, 8) // want `acquires RMW range lock while holding chunk shard lock`
	f.UnlockRMW(0, 8)
	sh.mu.Unlock()
}

// unpaired holds the file-table lock past every exit.
func unpaired(fs *FS) {
	fs.mu.Lock() // want `fs\.mu\.Lock with no matching Unlock in this function`
}

// pairedByDefer is the normal pattern.
func pairedByDefer(fs *FS) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
}

// pairedByReleaseClosure is the sieveWrite release() pattern: the unlock
// lives in a local closure called on every exit path.
func pairedByReleaseClosure(fs *FS) {
	fs.mu.Lock()
	release := func() { fs.mu.Unlock() }
	release()
}

// handoff is the justified exception: the companion function unlocks.
func handoff(fs *FS) {
	fs.mu.Lock() //nclint:allow=lockorder -- fixture: handoffDone releases; callers must pair the two
}

func handoffDone(fs *FS) {
	fs.mu.Unlock()
}
