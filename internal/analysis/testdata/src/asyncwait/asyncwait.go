// Package fix is the golden fixture for the asyncwait checker, built on
// the real pnetcdf/internal/pfs AsyncOp. It covers the blessed discharge
// shapes (direct Wait, waiting helper, nil-guard, return transfer, closure
// pair, annotated exception) and the leak shapes (plain drop, error-path
// bail, loop-carried read-ahead, discarded result, non-local store). The
// checker requires the engine, so the fixture is trivially clean under the
// intraprocedural runner.
package fix

import (
	"fixture/asyncwait/helper"

	"pnetcdf/internal/pfs"
)

// probe borrows the op without waiting it.
func probe(op *pfs.AsyncOp) {}

// leak: issued, never waited.
func leak(f *pfs.File) {
	op := f.WriteVecAsync(0, nil, nil)
	probe(op)
} // want `AsyncOp op reaches function end without Wait`

// waited is fine: the direct discharge.
func waited(f *pfs.File) error {
	op := f.ReadVAsync(0, nil, nil)
	_, err := op.Wait()
	return err
}

// errPathLeak waits on the happy path but bails before the Wait — the
// error-path leak the checker exists for.
func errPathLeak(f *pfs.File, err error) error {
	op := f.WriteVecAsync(0, nil, nil)
	if err != nil {
		return err // want `AsyncOp op reaches return without Wait`
	}
	_, werr := op.Wait()
	return werr
}

// guarded is fine: the owner's nil-guard shape.
func guarded(f *pfs.File, issue bool) {
	var op *pfs.AsyncOp
	if issue {
		op = f.ReadVecAsync(0, nil, nil)
	}
	if op != nil {
		op.Wait()
	}
}

// viaWaiter is fine: the cross-package helper's summary Waits its
// parameter.
func viaWaiter(f *pfs.File) error {
	op := f.WriteVecAsync(0, nil, nil)
	return helper.Join(op)
}

// transferred is fine: ownership returns to the caller.
func transferred(f *pfs.File) *pfs.AsyncOp {
	op := f.ReadVAsync(0, nil, nil)
	return op
}

// transferCaller inherits the transferred obligation (any callee whose
// signature returns *pfs.AsyncOp issues one) and leaks it.
func transferCaller(f *pfs.File) {
	op := transferred(f)
	probe(op)
} // want `AsyncOp op reaches function end without Wait`

// discarded: no handle at all.
func discarded(f *pfs.File) {
	f.WriteVecAsync(0, nil, nil) // want `AsyncOp result is discarded`
}

// pending mimics the pipelined pendingRead/pendingWrite custody root.
type pending struct {
	op *pfs.AsyncOp
}

// structField roots the obligation at the local struct.
func structField(f *pfs.File, bail bool) {
	var pend pending
	pend.op = f.WriteVecAsync(0, nil, nil)
	if bail {
		return // want `AsyncOp pend reaches return without Wait`
	}
	if pend.op != nil {
		pend.op.Wait()
	}
}

var parked pending

// storedOutside parks the op in a package-level variable; some other owner
// must wait it, so the checker demands an annotation.
func storedOutside(f *pfs.File) {
	parked.op = f.WriteVecAsync(0, nil, nil) // want `AsyncOp is stored outside the function's locals`
}

// closurePattern is fine: the depth-2 pipeline shape — frontend issues into
// the captured pend, finish waits it, and the drain call discharges the
// tail.
func closurePattern(f *pfs.File, rounds int) error {
	var pend pending
	finish := func() error {
		if pend.op != nil {
			_, err := pend.op.Wait()
			return err
		}
		return nil
	}
	frontend := func() {
		pend.op = f.ReadVecAsync(0, nil, nil)
	}
	frontend()
	for r := 0; r < rounds; r++ {
		if err := finish(); err != nil {
			return err
		}
		if r+1 < rounds {
			frontend()
		}
	}
	return finish()
}

// loopCarried: the in-loop early return leaks the previous iteration's op;
// the second loop pass (seeded with the loop-carried state) catches it.
func loopCarried(f *pfs.File, rounds int, stop func(int) bool) error {
	var op *pfs.AsyncOp
	for r := 0; r < rounds; r++ {
		if stop(r) {
			return nil // want `AsyncOp op reaches return without Wait`
		}
		if op != nil {
			op.Wait()
		}
		op = f.ReadVAsync(0, nil, nil)
	}
	if op != nil {
		op.Wait()
	}
	return nil
}

// allowed is the annotated exception: a hand-proved invariant the analysis
// cannot see.
func allowed(f *pfs.File) {
	op := f.WriteVecAsync(0, nil, nil)
	probe(op)
	//nclint:allow=asyncwait -- fixture contract: the caller drains op through probe's side table
}
