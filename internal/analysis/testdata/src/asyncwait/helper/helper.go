// Package helper waits AsyncOps on the caller's behalf, across the package
// boundary — the WaitsParam summary shape (mpiio's waitPF).
package helper

import "pnetcdf/internal/pfs"

// Join waits the op and returns its error.
func Join(op *pfs.AsyncOp) error {
	if op == nil {
		return nil
	}
	_, err := op.Wait()
	return err
}
