// Package fix is the golden fixture for the spanpair Begin/End discipline
// checker, calling the real pnetcdf/internal/span.
package fix

import (
	"errors"

	"pnetcdf/internal/span"
)

var errBad = errors.New("bad")

func work() error { return errBad }

// pairedDefer is the blessed shape: one deferred End covers every path,
// including panics, and closes any descendants still open.
func pairedDefer(rec *span.Recorder) error {
	sc := rec.Begin(span.CollWrite)
	defer sc.End()
	if err := work(); err != nil {
		return err
	}
	return nil
}

// pairedExplicit ends the span on each path by hand, the per-round pattern
// of the collective loop.
func pairedExplicit(rec *span.Recorder) error {
	sc := rec.Begin(span.Round)
	sc.SetRound(3)
	if err := work(); err != nil {
		sc.End()
		return err
	}
	sc.End()
	return nil
}

// pairedDeferClosure ends the span inside a deferred closure.
func pairedDeferClosure(rec *span.Recorder) {
	sc := rec.Begin(span.Pack)
	defer func() { sc.End() }()
	work()
}

// pairedLoopBody begins and ends a fresh span each iteration.
func pairedLoopBody(rec *span.Recorder, n int) {
	for i := 0; i < n; i++ {
		sr := rec.Begin(span.Round)
		sr.SetRound(i)
		sr.End()
	}
}

// danglingOnErrorPath forgets the span on the error return only.
func danglingOnErrorPath(rec *span.Recorder) error {
	sc := rec.Begin(span.Exchange)
	if err := work(); err != nil {
		return err // want `span sc reaches return without End\(\)`
	}
	sc.End()
	return nil
}

// danglingAtEnd falls off the function with the span open.
func danglingAtEnd(rec *span.Recorder) {
	sc := rec.Begin(span.Plan)
	sc.SetBytes(16)
} // want `span sc reaches function end without End\(\)`

// discardedHandle drops the handle on the floor; nothing can ever End it.
func discardedHandle(rec *span.Recorder) {
	rec.Begin(span.Flatten) // want `span\.Begin result is discarded`
}

// renamed moves the obligation to the new name, which is then honored.
func renamed(rec *span.Recorder) {
	sc := rec.Begin(span.Scatter)
	sd := sc
	sd.End()
}

// renamedDangling moves the obligation to the new name and drops it.
func renamedDangling(rec *span.Recorder) {
	sc := rec.Begin(span.Scatter)
	sd := sc
	_ = sd
} // want `span sd reaches function end without End\(\)`

// storedAllowed stashes the handle for a later End, with the justification
// the checker demands.
type holder struct{ sc span.Active }

func storedAllowed(rec *span.Recorder, h *holder) {
	//nclint:allow=spanpair -- fixture: holder.finish ends it on the close path
	h.sc = rec.Begin(span.HeaderCommit)
}

// storedUnannotated stashes the handle with no justification.
func storedUnannotated(rec *span.Recorder, h *holder) {
	h.sc = rec.Begin(span.HeaderCommit) // want `stored outside the function's locals`
}

// branchBothEnded ends the span in both arms; no report.
func branchBothEnded(rec *span.Recorder, cond bool) {
	sc := rec.Begin(span.AggWrite)
	if cond {
		sc.End()
	} else {
		sc.End()
	}
}

// branchOneArmOpen ends the span in one arm only.
func branchOneArmOpen(rec *span.Recorder, cond bool) {
	sc := rec.Begin(span.AggRead)
	if cond {
		sc.End()
	}
} // want `span sc reaches function end without End\(\)`
