// Package fix is the unit-test fixture for the call-graph engine itself:
// plain calls, method nodes, cross-package edges, and an interface call
// resolved by class-hierarchy fan-out to every module implementor.
package fix

import "fixture/callgraph/helper"

// Runner has two implementors below; a call through it fans out to both.
type Runner interface {
	Run(n int) int
}

type valueImpl struct{}

func (valueImpl) Run(n int) int { return helper.Double(n) }

type ptrImpl struct{ bias int }

func (p *ptrImpl) Run(n int) int { return n + p.bias }

// dispatch calls through the interface: edges to both Run implementations,
// marked as interface edges.
func dispatch(r Runner, n int) int { return r.Run(n) }

// direct calls across the package boundary.
func direct(n int) int { return helper.Double(n) }

// viaMethod gives the graph a method-node caller.
type caller struct{}

func (c *caller) viaMethod(n int) int { return direct(n) }

// inClosure calls only from inside a function literal; the edge is tagged
// InClosure.
func inClosure(n int) func() int {
	return func() int { return direct(n) }
}
