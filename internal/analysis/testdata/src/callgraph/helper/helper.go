// Package helper is the cross-package callee of the callgraph fixture.
package helper

// Double is called from the fixture root, directly and through methods.
func Double(n int) int { return n + n }
