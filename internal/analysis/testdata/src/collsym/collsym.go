// Package collsym is the golden fixture for the collective-symmetry
// checker. It calls the real pnetcdf/internal/mpi collectives so the
// checker's full-path type matching is exercised exactly as on module code.
package collsym

import "pnetcdf/internal/mpi"

// rankGuardedCollective is the canonical bug: only rank 0 enters the
// Barrier, every other rank deadlocks.
func rankGuardedCollective(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Barrier() // want `collective Comm\.Barrier is conditioned on the process rank`
	}
}

// rankGuardedEarlyReturn: the guarded return makes the remainder of the
// function the other arm, which rank != 0 never reaches.
func rankGuardedEarlyReturn(c *mpi.Comm) {
	if c.Rank() != 0 {
		return
	}
	c.Bcast(0, nil) // want `collective Comm\.Bcast is conditioned on the process rank`
}

// symmetric is fine: both arms call the same collective.
func symmetric(c *mpi.Comm, hdr []byte) {
	if c.Rank() == 0 {
		c.Bcast(0, hdr)
	} else {
		c.Bcast(0, nil)
	}
	c.Barrier()
}

// errorBailout is fine: a rank-dependent branch that returns a non-nil
// error is a failure path, reconciled by collective error agreement.
func errorBailout(c *mpi.Comm, err error) error {
	if c.Rank() == 0 && err != nil {
		return err
	}
	c.Barrier()
	return nil
}

// closureExcluded is fine: a collective inside a function literal runs in a
// context this intraprocedural checker cannot see, so it is not counted.
func closureExcluded(c *mpi.Comm) func() {
	if c.Rank() == 0 {
		return func() { c.Barrier() }
	}
	return nil
}

// suppressed shows the escape hatch: a justified annotation on the line
// above the call.
func suppressed(c *mpi.Comm) {
	if c.Rank() == 0 {
		//nclint:allow=collsym -- fixture: peers drain this via point-to-point in the same round
		c.Barrier()
	}
}
