// Package pfs is the golden fixture for the interprocedural lockorder
// upgrade: the lock-class acquisition is hidden behind helper functions, so
// the inversion is only visible through the MayAcquire summaries. The
// package shadows the real pfs type and field names (FS.mu, storeShard.mu,
// FS.srvMu) so lockClass classifies them identically. The same fixture must
// be CLEAN under the intraprocedural checker (each helper pairs its own
// Lock/Unlock, and no single function shows both classes).
package pfs

import "sync"

type FS struct {
	mu    sync.Mutex
	srvMu sync.Mutex
}

type storeShard struct {
	mu sync.Mutex
}

type Store struct {
	fs     *FS
	shards [4]storeShard
}

// TableTouch pairs the file-table lock locally: its summary MayAcquire
// carries the file-table class.
func (s *Store) TableTouch() {
	s.fs.mu.Lock()
	s.fs.mu.Unlock()
}

// tableIndirect reaches the file-table lock only through TableTouch; the
// fixed point propagates MayAcquire one more hop.
func (s *Store) tableIndirect() { s.TableTouch() }

// ShardTouch pairs one shard lock locally.
func (s *Store) ShardTouch(i int) {
	sh := &s.shards[i]
	sh.mu.Lock()
	sh.mu.Unlock()
}

// HoldShardThenTable is the helper-mediated inversion: the shard lock
// (class 3) is held while a callee may acquire the file-table lock
// (class 1).
func (s *Store) HoldShardThenTable(i int) {
	sh := &s.shards[i]
	sh.mu.Lock()
	s.TableTouch() // want `call to Store\.TableTouch may acquire file-table lock \(FS\.mu\) while holding chunk shard lock`
	sh.mu.Unlock()
}

// HoldShardThenIndirect inverts through two levels of helpers.
func (s *Store) HoldShardThenIndirect(i int) {
	sh := &s.shards[i]
	sh.mu.Lock()
	s.tableIndirect() // want `call to Store\.tableIndirect may acquire file-table lock \(FS\.mu\) while holding chunk shard lock`
	sh.mu.Unlock()
}

// HoldTableThenShard is fine: classes acquired in the documented order.
func (s *Store) HoldTableThenShard(i int) {
	s.fs.mu.Lock()
	s.ShardTouch(i)
	s.fs.mu.Unlock()
}

// DeferredHelper is fine: a deferred call runs after this function's
// releases, like a deferred unlock.
func (s *Store) DeferredHelper(i int) {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer s.TableTouch()
	sh.mu.Unlock()
}
