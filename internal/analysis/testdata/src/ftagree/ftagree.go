// Package ftagree is the golden fixture for the post-revocation safety
// checker: inside a branch that observed a revoked communicator, only
// AgreeFT and Shrink are survivor-safe; other mpi.Comm traffic blocks on
// the dead rank.
package ftagree

import "pnetcdf/internal/mpi"

// collectiveOnRevoked is the canonical bug: the failover path runs a
// regular collective, which waits on the dead rank.
func collectiveOnRevoked(c *mpi.Comm, err error) {
	if rv, ok := mpi.AsRevoked(err); ok {
		_ = rv
		c.AllreduceI64([]int64{1}, mpi.OpMin) // want `mpi\.Comm\.AllreduceI64 on a revoked communicator`
	}
}

// pointToPointOnRevoked: a recv from a peer hangs just the same.
func pointToPointOnRevoked(c *mpi.Comm, err error) {
	if _, ok := mpi.AsRevoked(err); ok {
		c.Recv(0, 1) // want `mpi\.Comm\.Recv on a revoked communicator`
	}
}

// revokedQuery: the Revoked() form of the observation counts too.
func revokedQuery(c *mpi.Comm) {
	if c.Revoked() {
		c.Barrier() // want `mpi\.Comm\.Barrier on a revoked communicator`
	}
}

// agreeThenShrink is the survivor-safe protocol: AgreeFT for the resume
// point, Shrink for the new communicator, regular collectives after.
func agreeThenShrink(c *mpi.Comm, err error) error {
	if rv, ok := mpi.AsRevoked(err); ok {
		_ = rv
		c.AgreeFT([]int64{0}, mpi.OpMin)
		nc, serr := c.Shrink()
		if serr != nil {
			return serr
		}
		nc.AllreduceI64([]int64{1}, mpi.OpSum)
		c.Barrier() // fine for this checker: after Shrink the failover has adopted the survivor communicator in place
	}
	return nil
}

// shrinkInHelper: a revoked arm with no direct communicator traffic is
// fine — helpers like mpiio's failoverShrink do the survivor-safe work.
func shrinkInHelper(c *mpi.Comm, err error, failover func() error) error {
	if _, ok := mpi.AsRevoked(err); ok {
		return failover()
	}
	return nil
}

// unrelatedBranch: revocation not observed, no constraint.
func unrelatedBranch(c *mpi.Comm, degraded bool) {
	if degraded {
		c.Barrier()
	}
}
