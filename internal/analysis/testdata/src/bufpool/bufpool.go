// Package fix is the golden fixture for the bufpool Get/Put discipline
// checker, calling the real pnetcdf/internal/bufpool.
package fix

import (
	"errors"

	"pnetcdf/internal/bufpool"
)

var errTooBig = errors.New("too big")

func use(b []byte) {}

// pairedDirect, pairedDefer and pairedReleaseClosure are the three blessed
// shapes.
func pairedDirect(n int) {
	b := bufpool.Get(n)
	use(b)
	bufpool.Put(b)
}

func pairedDefer(n int) {
	b := bufpool.GetDirty(n)
	defer bufpool.Put(b)
	use(b)
}

func pairedReleaseClosure(n int) {
	b := bufpool.Get(n)
	release := func() { bufpool.Put(b) }
	use(b)
	release()
}

// droppedOnEarlyReturn loses the buffer on the error path only.
func droppedOnEarlyReturn(n int) error {
	b := bufpool.Get(n)
	if n > 4096 {
		return errTooBig // want `bufpool buffer b reaches return without bufpool\.Put`
	}
	bufpool.Put(b)
	return nil
}

// droppedAtEnd falls off the function with the buffer live.
func droppedAtEnd(n int) {
	b := bufpool.Get(n)
	use(b)
} // want `bufpool buffer b reaches function end without bufpool\.Put`

// returnedUnannotated hands the buffer to the caller with no escape note.
func returnedUnannotated(n int) []byte {
	return bufpool.Get(n) // want `returned to the caller`
}

// returnedAnnotated is the documented escape.
func returnedAnnotated(n int) []byte {
	//nclint:escape -- fixture: the caller is documented to Put the buffer back
	return bufpool.Get(n)
}

// namedEscape returns a tracked local.
func namedEscape(n int) []byte {
	b := bufpool.Get(n)
	return b // want `bufpool buffer b is returned to the caller`
}

type holder struct{ buf []byte }

// storedEscape parks the buffer in a longer-lived structure.
func storedEscape(h *holder, n int) {
	b := bufpool.Get(n)
	h.buf = b // want `stored outside the function's locals`
}

// The in-flight-generation pattern (pipelined collective rounds): buffers
// parked in a local [][]byte generation re-home custody under the slice,
// and bufpool.PutAll discharges the whole generation at once.
func generationParked(n int) {
	gen := make([][]byte, 4)
	for i := range gen {
		gen[i] = bufpool.Get(n)
	}
	use(gen[0])
	bufpool.PutAll(gen)
}

// generationRehomed parks a named buffer; custody follows the slice.
func generationRehomed(n int) {
	gen := make([][]byte, 1)
	b := bufpool.Get(n)
	gen[0] = b
	bufpool.PutAll(gen)
}

// generationDeferred discharges the generation with a deferred PutAll.
func generationDeferred(n int) {
	gen := make([][]byte, 2)
	defer bufpool.PutAll(gen)
	gen[0] = bufpool.GetDirty(n)
	use(gen[0])
}

// generationDropped loses the parked buffers: reported under the slice.
func generationDropped(n int) {
	gen := make([][]byte, 2)
	gen[0] = bufpool.Get(n)
	use(gen[0])
} // want `bufpool buffer gen reaches function end without bufpool\.Put`

// generationEarlyReturn loses the generation on the error path only.
func generationEarlyReturn(n int) error {
	gen := make([][]byte, 2)
	gen[0] = bufpool.Get(n)
	if n > 4096 {
		return errTooBig // want `bufpool buffer gen reaches return without bufpool\.Put`
	}
	bufpool.PutAll(gen)
	return nil
}
