// Package fix is the golden fixture for the errcheckio checker.
package fix

import (
	"bytes"
	"os"
	"strings"
)

func teardownLeaks(f *os.File) {
	f.Close()      // want `Close's error from a bare call is discarded`
	defer f.Sync() // want `Sync's error from a deferred call is discarded`
}

func goLeak(f *os.File) {
	go f.Sync() // want `Sync's error from a go statement is discarded`
}

func writeLeak(f *os.File) {
	f.WriteString("x") // want `WriteString's error from a bare call is discarded`
}

// explicitDiscard is a visible, reviewable discard and is allowed.
func explicitDiscard(f *os.File) {
	_ = f.Close()
}

// handled is the normal shape.
func handled(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

// inMemoryExempt: bytes.Buffer and strings.Builder writes are documented to
// never fail, so checking them is noise.
func inMemoryExempt(b *bytes.Buffer, sb *strings.Builder) {
	b.WriteString("ok")
	sb.WriteByte('x')
}

// suppressedTeardown shows the annotation escape hatch.
func suppressedTeardown(f *os.File) {
	f.Close() //nclint:allow=errcheckio -- fixture: read-only descriptor, close cannot lose data
}
