// Package pfs is a miniature of internal/pfs's accounting surface — same
// package, type and method names as the real chunk store, cost model and
// iostat recording — so the accounting checker's call-graph reachability
// analysis runs exactly as it does on module code.
package pfs

type chunkStore struct{}

func (c *chunkStore) writeAt(off int64, p []byte) {}
func (c *chunkStore) readAt(off int64, p []byte)  {}
func (c *chunkStore) truncate(n int64)            {}

type FS struct{ store *chunkStore }

func (fs *FS) charge(n int64) {}

type File struct {
	fs    *FS
	store *chunkStore
}

func (f *File) record(op string, n int64) {}

// WriteAt is the well-behaved data path: touch + charge + record.
func (f *File) WriteAt(off int64, p []byte) {
	f.store.writeAt(off, p)
	f.fs.charge(int64(len(p)))
	f.record("write", int64(len(p)))
}

// Resize reaches the chunk store only through a helper; charging and
// recording anywhere on the path satisfies the checker.
func (f *File) Resize(n int64) {
	f.applyTruncate(n)
	f.fs.charge(0)
	f.record("trunc", 0)
}

func (f *File) applyTruncate(n int64) { f.store.truncate(n) }

// FastWrite moves bytes for free: no cost-model charge.
func (f *File) FastWrite(off int64, p []byte) { // want `FastWrite touches the chunk store but never charges the cost model`
	f.store.writeAt(off, p)
	f.record("write", int64(len(p)))
}

// RawRead skips both the charge and the counters.
func (f *File) RawRead(off int64, p []byte) { // want `RawRead touches the chunk store but never charges` `RawRead touches the chunk store but records no iostat counters`
	f.store.readAt(off, p)
}

// Drop is a justified metadata-only operation.
//
//nclint:allow=accounting -- fixture: metadata-only, no transfer size to charge
func (f *File) Drop(n int64) {
	f.store.truncate(n)
}
