package analysis

import (
	"go/ast"
	"go/types"
)

// ErrCheckIO enforces the PR 2 teardown-error discipline: Close, Sync,
// Flush and Write* return the errors that matter most for a storage
// library (a buffered writer or journaled header commit often only fails
// at the flush), and the repo's convention is to fold them in with
// errors.Join or at least look at them. The checker flags any call to an
// error-returning function named Close/Sync/Flush/Write* whose result is
// silently discarded — as a bare expression statement, a defer, or a go
// statement — in non-test code. An explicit `_ =` assignment is a visible,
// reviewable discard and is allowed.
func ErrCheckIO() *Checker {
	return &Checker{
		Name: "errcheckio",
		Doc:  "Close/Sync/Flush/Write* errors must not be silently discarded",
		Run:  runErrCheckIO,
	}
}

func runErrCheckIO(pass *Pass) {
	check := func(call *ast.CallExpr, how string) {
		fn := pass.Callee(call)
		if fn == nil || !isIOErrorName(fn.Name()) || !returnsError(fn) {
			return
		}
		if neverFails(fn) {
			return
		}
		pass.Reportf(call.Pos(), "%s from %s is discarded; handle it or assign to _ explicitly (errors.Join on teardown paths)",
			fn.Name()+"'s error", how)
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					check(call, "a bare call")
				}
			case *ast.DeferStmt:
				check(n.Call, "a deferred call")
			case *ast.GoStmt:
				check(n.Call, "a go statement")
			}
			return true
		})
	}
}

// neverFails exempts the in-memory writers whose Write*/error results are
// documented to always be nil (bytes.Buffer, strings.Builder): flagging them
// would train people to sprinkle meaningless checks.
func neverFails(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return key == "bytes.Buffer" || key == "strings.Builder"
}

// returnsError reports whether fn's last result is the error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
