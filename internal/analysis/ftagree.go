package analysis

import (
	"go/ast"
	"go/types"
)

// FTAgree is the post-revocation safety checker: once code has observed
// that a communicator is revoked — an mpi.AsRevoked match or an
// mpi.(*Comm).Revoked() test — the only operations that still complete on
// that communicator are AgreeFT and Shrink (DESIGN.md §8). A regular
// collective or point-to-point call on the revoked-path arm blocks on the
// dead rank until the failure detector unwinds it, turning a clean
// failover into a detection-latency stall at best and (with the detector
// off) a hang:
//
//	if rv, ok := mpi.AsRevoked(err); ok {
//	    comm.AllreduceI64(vals, mpi.OpMin) // blocks on the dead rank
//	}
//
// The rule: inside a revocation-conditioned branch, no mpi.Comm collective
// or point-to-point call may appear before a Shrink() call. AgreeFT and
// Shrink themselves are the survivor-safe primitives and are always
// allowed; after Shrink the code is assumed to address the survivor
// communicator (the failover adopts it in place). The checker is local by
// design — helpers that shrink internally (mpiio's failoverShrink) make
// their callers' revoked paths collective-free, which this rule accepts.
func FTAgree() *Checker {
	return &Checker{
		Name: "ftagree",
		Doc:  "post-revocation paths must use survivor-safe collectives (AgreeFT/Shrink) before regular communicator traffic",
		Run:  runFTAgree,
	}
}

// ftUnsafeComm lists the mpi.Comm methods that block on dead ranks: the
// collectives from collectiveMethods plus the point-to-point calls (a recv
// from the dead rank is exactly the hang being prevented).
func ftUnsafeComm(name string) bool {
	if collectiveMethods["pnetcdf/internal/mpi.Comm"][name] {
		return true
	}
	switch name {
	case "Send", "Recv", "SendRecv", "Gatherv", "Allgatherv", "Scatterv", "Alltoallv":
		return true
	}
	return false
}

// ftCommMethod resolves call to an mpi.Comm method name, or "".
func ftCommMethod(pass *Pass, call *ast.CallExpr) string {
	fn := pass.Callee(call)
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	if named.Obj().Pkg().Path()+"."+named.Obj().Name() != "pnetcdf/internal/mpi.Comm" {
		return ""
	}
	return fn.Name()
}

// revocationObserved reports whether the statement/expression pair of an if
// (Init; Cond) establishes "the communicator is revoked": a call to
// mpi.AsRevoked or to mpi.(*Comm).Revoked anywhere in them.
func revocationObserved(pass *Pass, init ast.Stmt, cond ast.Expr) bool {
	found := false
	check := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if fn := pass.Callee(call); fn != nil {
			if fn.Pkg() != nil && fn.Pkg().Path() == "pnetcdf/internal/mpi" && fn.Name() == "AsRevoked" {
				found = true
			}
		}
		if ftCommMethod(pass, call) == "Revoked" {
			found = true
		}
		return !found
	}
	if init != nil {
		ast.Inspect(init, check)
	}
	if cond != nil {
		ast.Inspect(cond, check)
	}
	return found
}

func runFTAgree(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok || !revocationObserved(pass, ifs.Init, ifs.Cond) {
				return true
			}
			// Source-order walk of the revoked arm: traffic before the
			// first Shrink is on the revoked communicator.
			shrunk := false
			ast.Inspect(ifs.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch name := ftCommMethod(pass, call); {
				case name == "Shrink":
					shrunk = true
				case name == "AgreeFT" || name == "Die" || name == "Abort":
					// Survivor-safe (or terminal) by construction.
				case !shrunk && ftUnsafeComm(name):
					pass.Reportf(call.Pos(),
						"mpi.Comm.%s on a revoked communicator blocks on the dead rank; use AgreeFT, or Shrink first (survivor-safe failover, DESIGN.md §8)", name)
				}
				return true
			})
			return true
		})
	}
}
