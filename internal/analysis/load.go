package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: syntax plus type info.
type Package struct {
	Path  string // import path
	Name  string // package name
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	allows map[string][]allow
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports are resolved against the module
// root, everything else (the standard library) through the go/importer
// source importer, which type-checks from GOROOT sources and therefore needs
// no pre-built export data.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std     types.Importer
	pkgs    map[string]*Package // by import path; nil entry = load in progress
	loading map[string]bool
	extra   map[string]string // registered import path -> directory (fixtures)
}

// NewLoader creates a loader for the module rooted at modRoot (the directory
// holding go.mod).
func NewLoader(modRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", modRoot)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: modRoot,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
		extra:   map[string]string{},
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// LoadModule loads every package of the module (skipping testdata, hidden
// and VCS directories), sorted by import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Load type-checks the package with the given module-internal import path,
// resolving its directory under the module root.
func (l *Loader) Load(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
	return l.loadDir(path, dir)
}

// LoadDir type-checks the package in dir under the given import path; used
// by the golden-file harness to load testdata fixture packages, which live
// outside the module's package tree.
func (l *Loader) LoadDir(path, dir string) (*Package, error) {
	return l.loadDir(path, dir)
}

// RegisterDir maps an import path outside the module tree to a directory so
// fixture packages can import each other: the golden harness registers every
// subpackage of a multi-package fixture before loading its root.
func (l *Loader) RegisterDir(path, dir string) { l.extra[path] = dir }

// LoadTree loads the multi-package fixture rooted at dir: the root package
// under rootPath, and every subdirectory holding Go files as
// rootPath/<rel>. All packages are registered first so fixture-internal
// imports resolve, then loaded; the result is sorted by import path.
func (l *Loader) LoadTree(rootPath, dir string) ([]*Package, error) {
	type entry struct{ path, dir string }
	var entries []entry
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		if !hasGoFiles(p) {
			return nil
		}
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			return err
		}
		path := rootPath
		if rel != "." {
			path = rootPath + "/" + filepath.ToSlash(rel)
		}
		l.RegisterDir(path, p)
		entries = append(entries, entry{path, p})
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, e := range entries {
		pkg, err := l.loadDir(e.path, e.dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func (l *Loader) loadDir(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, filepath.Join(dir, name))
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &moduleImporter{l: l},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s: %v", path, typeErrs[0])
	}
	pkg := &Package{
		Path:  path,
		Name:  files[0].Name.Name,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	pkg.collectAllows()
	l.pkgs[path] = pkg
	return pkg, nil
}

// moduleImporter routes module-internal import paths to the loader and
// everything else to the standard-library source importer.
type moduleImporter struct {
	l *Loader
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if dir, ok := m.l.extra[path]; ok {
		pkg, err := m.l.loadDir(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if path == m.l.ModPath || strings.HasPrefix(path, m.l.ModPath+"/") {
		pkg, err := m.l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.l.std.Import(path)
}
