package analysis

import (
	"testing"
)

// edgeTargets returns the display names of a node's callees, with their
// package paths, as "pkgpath:Name" strings.
func edgeTargets(e *Engine, nd *FuncNode) map[string]CallEdge {
	out := map[string]CallEdge{}
	for _, edge := range nd.Edges {
		key := edge.Callee.Pkg().Path() + ":" + funcDisplayName(edge.Callee)
		out[key] = edge
	}
	return out
}

func lookupNode(t *testing.T, e *Engine, pkgPath, name string) *FuncNode {
	t.Helper()
	fn := e.Lookup(pkgPath, name)
	if fn == nil {
		t.Fatalf("Lookup(%s, %s) = nil", pkgPath, name)
	}
	nd := e.Node(fn)
	if nd == nil {
		t.Fatalf("no node for %s.%s", pkgPath, name)
	}
	return nd
}

// TestCallGraphEdges pins the graph construction rules on the callgraph
// fixture: direct cross-package edges, method nodes, CHA fan-out for
// interface calls, and closure tagging.
func TestCallGraphEdges(t *testing.T) {
	pkgs := loadFixtureTree(t, "callgraph")
	e := NewEngine(pkgs)
	const root = "fixture/callgraph"
	const help = "fixture/callgraph/helper"

	direct := edgeTargets(e, lookupNode(t, e, root, "direct"))
	if edge, ok := direct[help+":Double"]; !ok {
		t.Errorf("direct: missing cross-package edge to helper.Double (have %v)", keys(direct))
	} else if edge.Interface || edge.InClosure {
		t.Errorf("direct -> Double flagged Interface=%v InClosure=%v; want plain edge", edge.Interface, edge.InClosure)
	}

	// Interface dispatch fans out to every module implementor, tagged.
	dispatch := edgeTargets(e, lookupNode(t, e, root, "dispatch"))
	for _, want := range []string{root + ":valueImpl.Run", root + ":ptrImpl.Run"} {
		edge, ok := dispatch[want]
		if !ok {
			t.Errorf("dispatch: missing CHA edge to %s (have %v)", want, keys(dispatch))
			continue
		}
		if !edge.Interface {
			t.Errorf("dispatch -> %s not marked as an interface edge", want)
		}
	}

	// Method node with an edge to a package function.
	viaMethod := edgeTargets(e, lookupNode(t, e, root, "caller.viaMethod"))
	if _, ok := viaMethod[root+":direct"]; !ok {
		t.Errorf("caller.viaMethod: missing edge to direct (have %v)", keys(viaMethod))
	}

	// A call made only inside a function literal is tagged InClosure.
	inClosure := edgeTargets(e, lookupNode(t, e, root, "inClosure"))
	edge, ok := inClosure[root+":direct"]
	if !ok {
		t.Fatalf("inClosure: missing closure edge to direct (have %v)", keys(inClosure))
	}
	if !edge.InClosure {
		t.Error("inClosure -> direct not tagged InClosure")
	}
}

func keys(m map[string]CallEdge) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestModuleSummaries pins the summary lattice on the real module: the
// facts every interprocedural checker depends on must come out of the
// fixed point exactly as documented.
func TestModuleSummaries(t *testing.T) {
	l := sharedLoader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	e := NewEngine(pkgs)
	const mpiio = "pnetcdf/internal/mpiio"
	const pfs = "pnetcdf/internal/pfs"

	sum := func(pkg, name string) *Summary {
		t.Helper()
		fn := e.Lookup(pkg, name)
		if fn == nil {
			t.Fatalf("Lookup(%s, %s) = nil", pkg, name)
		}
		s := e.Summary(fn)
		if s == nil {
			t.Fatalf("Summary(%s.%s) = nil", pkg, name)
		}
		return s
	}

	// asyncwait facts: waitPF discharges its op parameter; the async issue
	// methods hand a fresh op to the caller.
	if s := sum(mpiio, "File.waitPF"); !s.WaitsParam(0) {
		t.Errorf("File.waitPF: WaitsParams = %b, want bit 0", s.WaitsParams)
	}
	if s := sum(pfs, "File.WriteVecAsync"); !s.ReturnsAsyncOp {
		t.Error("File.WriteVecAsync: ReturnsAsyncOp = false")
	}

	// bufpool facts: recycleRound puts both generations; packWriteRound
	// parks pooled buffers in its parts parameter (index 6); encodeWriteMsg
	// returns a pooled buffer.
	if s := sum(mpiio, "recycleRound"); !s.PutsParam(0) || !s.PutsParam(1) {
		t.Errorf("recycleRound: PutsParams = %b, want bits 0 and 1", s.PutsParams)
	}
	if s := sum(mpiio, "File.packWriteRound"); !s.StoresPooledParam(6) {
		t.Errorf("File.packWriteRound: StoresPooledParams = %b, want bit 6 (parts)", s.StoresPooledParams)
	}
	if s := sum(mpiio, "encodeWriteMsg"); !s.ReturnsPooled {
		t.Error("encodeWriteMsg: ReturnsPooled = false")
	}

	// collsym fact: the serial round loop reaches collective agreement.
	if s := sum(mpiio, "File.writeRoundsSerial"); !s.HasCollectives() {
		t.Error("File.writeRoundsSerial: no collectives in summary")
	}

	// accounting facts: the public vectored I/O paths touch the store,
	// charge the cost model and record iostat. (Charges marks callers of
	// FS.charge, mirroring the intraprocedural checker's reachability.)
	for _, name := range []string{"File.WriteVec", "File.ReadV"} {
		if s := sum(pfs, name); !s.Touches || !s.Charges || !s.Records {
			t.Errorf("%s: Touches=%v Charges=%v Records=%v, want all true", name, s.Touches, s.Charges, s.Records)
		}
	}
}

// TestFixtureLockSummaries pins MayAcquire propagation (including the
// two-hop indirection) on the lockorder fixture.
func TestFixtureLockSummaries(t *testing.T) {
	pkgs := loadFixtureTree(t, "lockorder_interp")
	e := NewEngine(pkgs)
	const root = "fixture/lockorder_interp"
	for _, name := range []string{"Store.TableTouch", "Store.tableIndirect"} {
		fn := e.Lookup(root, name)
		if fn == nil {
			t.Fatalf("Lookup(%s) = nil", name)
		}
		s := e.Summary(fn)
		if s == nil || s.MayAcquire&(1<<uint(classFileTable)) == 0 {
			t.Errorf("%s: MayAcquire = %b, want file-table bit", name, s.MayAcquire)
		}
	}
	fn := e.Lookup(root, "Store.ShardTouch")
	if fn == nil {
		t.Fatal("Lookup(Store.ShardTouch) = nil")
	}
	if s := e.Summary(fn); s.MayAcquire&(1<<uint(classShard)) == 0 {
		t.Errorf("Store.ShardTouch: MayAcquire = %b, want shard bit", s.MayAcquire)
	}
}
