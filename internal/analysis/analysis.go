// Package analysis is a stdlib-only static-analysis framework (go/parser,
// go/ast, go/types, go/importer — no x/tools) carrying the project-specific
// checkers that keep PnetCDF-Go's hand-maintained invariants from rotting:
// collective call symmetry across ranks, the pfs lock-acquisition order,
// bufpool Get/Put pairing, cost-model/iostat accounting in every pfs data
// path, and checked errors on I/O teardown calls. The cmd/nclint driver runs
// the suite over the module; verify.sh gates every PR on a clean run
// (DESIGN.md §10).
//
// # Suppressions
//
// A diagnostic can be suppressed at its site with a justified annotation on
// the flagged line or the line above it:
//
//	//nclint:allow=<checker> -- <why this is safe>
//
// The justification text is mandatory; a bare annotation still reports. The
// bufpool checker additionally understands //nclint:escape (see checker doc)
// with the same justification requirement.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the checker that produced it, and
// the message. String renders the file:line: [checker] message convention.
type Diagnostic struct {
	Pos     token.Position
	Checker string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Checker, d.Message)
}

// Pass is one checker's view of one package: its syntax, its type
// information, and a Report sink. Engine is non-nil in interprocedural mode
// (RunCheckersInterp): checkers consult it for cross-function summaries and
// fall back to their intraprocedural behavior when it is nil.
type Pass struct {
	Fset    *token.FileSet
	Pkg     *Package
	Engine  *Engine
	checker string
	sink    *[]Diagnostic
}

// Reportf records a diagnostic at pos unless the site carries a justified
// suppression annotation for this checker.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Pkg.suppressed(p.checker, position) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Pos:     position,
		Checker: p.checker,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Callee resolves a call expression to the *types.Func it invokes (methods
// and package-level functions), or nil for indirect calls, conversions and
// builtins.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := p.Pkg.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := p.Pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Checker is one named analysis over a single package.
type Checker struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full checker suite in stable order.
func All() []*Checker {
	return []*Checker{
		CollSym(),
		LockOrder(),
		BufPool(),
		SpanPair(),
		Accounting(),
		ErrCheckIO(),
		AsyncWait(),
		FTAgree(),
	}
}

// ByName returns the named subset of All (comma-separated), or an error
// naming the unknown checker.
func ByName(names string) ([]*Checker, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Checker{}
	for _, c := range All() {
		byName[c.Name] = c
	}
	var out []*Checker
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		c := byName[n]
		if c == nil {
			return nil, fmt.Errorf("unknown checker %q", n)
		}
		out = append(out, c)
	}
	return out, nil
}

// RunCheckers applies each checker to each package intraprocedurally and
// returns the combined diagnostics sorted deterministically.
func RunCheckers(pkgs []*Package, checkers []*Checker) []Diagnostic {
	return run(pkgs, checkers, nil)
}

// RunCheckersInterp builds the module-wide interprocedural engine over pkgs
// and runs each checker with it: summaries make the checkers see through
// helpers and cross-package extraction (DESIGN.md §14), and enable the
// asyncwait checker.
func RunCheckersInterp(pkgs []*Package, checkers []*Checker) []Diagnostic {
	return run(pkgs, checkers, NewEngine(pkgs))
}

func run(pkgs []*Package, checkers []*Checker, engine *Engine) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, c := range checkers {
			pass := &Pass{Fset: pkg.Fset, Pkg: pkg, Engine: engine, checker: c.Name, sink: &diags}
			c.Run(pass)
		}
	}
	// Deterministic order so repeated runs diff cleanly: file, line,
	// checker, then message as the final tie-break.
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		return a.Message < b.Message
	})
	return diags
}

var allowRE = regexp.MustCompile(`//nclint:allow=([a-z0-9_,-]+)\s*--\s*(\S.*)`)

// suppressed reports whether a justified //nclint:allow annotation for
// checker covers the given position (same line or the line above).
func (pkg *Package) suppressed(checker string, pos token.Position) bool {
	lines := pkg.allows[pos.Filename]
	for _, a := range lines {
		if a.line != pos.Line && a.line != pos.Line-1 {
			continue
		}
		for _, name := range strings.Split(a.checkers, ",") {
			if name == checker {
				return true
			}
		}
	}
	return false
}

type allow struct {
	line     int
	checkers string
}

// collectAllows indexes every justified //nclint:allow comment by file and
// line so Reportf can consult them in O(small).
func (pkg *Package) collectAllows() {
	pkg.allows = map[string][]allow{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				pkg.allows[pos.Filename] = append(pkg.allows[pos.Filename],
					allow{line: pos.Line, checkers: m[1]})
			}
		}
	}
}

// lineComment returns the comment text (if any) attached to the line of pos
// or the line above it in file f — the same placement rule the suppression
// annotations use.
func lineComments(fset *token.FileSet, f *ast.File, pos token.Pos) []string {
	target := fset.Position(pos).Line
	var out []string
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			l := fset.Position(c.Pos()).Line
			if l == target || l == target-1 {
				out = append(out, c.Text)
			}
		}
	}
	return out
}
