package analysis

// Module-wide interprocedural engine (DESIGN.md §14). The per-package
// checkers stop at function boundaries: extract a collective, a bufpool.Put
// or a lock acquisition into a helper — possibly in another package — and
// the intraprocedural suite is silently blind. The engine closes that hole
// with two pieces:
//
//  1. A static call graph over *types.Func nodes spanning every package of
//     the module (and every package of a fixture tree). Edges come from
//     direct calls and method calls; a call through an interface method,
//     which has no single static callee, falls back to class-hierarchy
//     analysis: one edge to every module type that implements the
//     interface, marked Interface.
//
//  2. Per-function summaries computed to a fixed point over the graph
//     (recursion and cross-package cycles converge because every fact is a
//     monotone set/bitmask):
//
//     - Collectives: display names of collective operations the function
//       may invoke, transitively (collsym).
//     - ReturnsPooled / StoresPooledParams: the function hands its caller a
//       live bufpool buffer — as a []byte/[][]byte result, or by storing
//       one into a caller-owned slice/field passed as a parameter (bufpool).
//     - PutsParams: parameters that may reach bufpool.Put/PutAll (bufpool:
//       passing a live buffer to such a helper discharges it).
//     - WaitsParams / ReturnsAsyncOp: *pfs.AsyncOp parameters that may
//       reach Wait, and functions whose result is a fresh AsyncOp the
//       caller must Wait (asyncwait).
//     - MayAcquire / Releases: the pfs lock classes the function may
//       acquire or release (lockorder: calling a helper that grabs a
//       lower-ranked class while holding a higher-ranked one is the same
//       inversion as inlining it).
//     - Touches / Charges / Records: chunk-store access, cost-model
//       charging and iostat recording, transitively (accounting).
//
// Known limits, by construction: calls through stored function values get
// no edges (local closures are handled separately by the path-sensitive
// checkers' pre-scans); collective and lock facts exclude function-literal
// bodies, whose execution context the enclosing function does not
// determine; reflection and unsafe are invisible. The suppression syntax is
// unchanged — //nclint:allow=<checker> -- <why> at the report site.

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CallEdge is one resolved call site inside a function.
type CallEdge struct {
	Call      *ast.CallExpr
	Callee    *types.Func
	Interface bool // resolved via the implements-fallback, not statically
	InClosure bool // the call site sits inside a function literal
}

// FuncNode is one module function in the call graph.
type FuncNode struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Edges []CallEdge
	Sum   Summary
}

// Summary is the interprocedural fact set of one function. Zero value =
// "does nothing interesting", the lattice bottom.
type Summary struct {
	// Collectives holds the display names of collective operations this
	// function may invoke, directly or transitively (sorted, unique).
	Collectives []string

	// ReturnsPooled: some []byte / [][]byte result may be (or contain) a
	// live bufpool buffer the caller is responsible for.
	ReturnsPooled bool
	// StoresPooledParams: bitmask of parameters into whose elements/fields
	// the function may store a live bufpool buffer.
	StoresPooledParams uint64
	// PutsParams: bitmask of parameters that may reach bufpool.Put/PutAll.
	PutsParams uint64

	// WaitsParams: bitmask of *pfs.AsyncOp parameters that may reach Wait.
	WaitsParams uint64
	// ReturnsAsyncOp: a result is a *pfs.AsyncOp; the caller owns the Wait.
	ReturnsAsyncOp bool

	// MayAcquire / Releases: bitmasks over the pfs lock classes (bit c set
	// = class c), excluding function-literal bodies.
	MayAcquire uint8
	Releases   uint8

	// Accounting facts (transitive, closures included, matching the
	// intraprocedural accounting checker's view).
	Touches bool // chunk-store access
	Charges bool // FS.charge
	Records bool // iostat recording
}

// HasCollectives reports whether the function may invoke any collective.
func (s *Summary) HasCollectives() bool { return len(s.Collectives) > 0 }

// PutsParam reports whether parameter i may reach bufpool.Put.
func (s *Summary) PutsParam(i int) bool { return i < 64 && s.PutsParams&(1<<uint(i)) != 0 }

// StoresPooledParam reports whether the function may store a pooled buffer
// into parameter i.
func (s *Summary) StoresPooledParam(i int) bool {
	return i < 64 && s.StoresPooledParams&(1<<uint(i)) != 0
}

// WaitsParam reports whether AsyncOp parameter i may reach Wait.
func (s *Summary) WaitsParam(i int) bool { return i < 64 && s.WaitsParams&(1<<uint(i)) != 0 }

// Engine is the module-wide call graph plus computed summaries.
type Engine struct {
	pkgs  []*Package
	nodes map[*types.Func]*FuncNode
}

// NewEngine builds the call graph over pkgs and computes every function's
// summary to a fixed point.
func NewEngine(pkgs []*Package) *Engine {
	e := &Engine{pkgs: pkgs, nodes: map[*types.Func]*FuncNode{}}
	e.buildNodes()
	e.buildEdges()
	e.computeSummaries()
	return e
}

// Node returns the call-graph node of fn, or nil for functions outside the
// analyzed packages (stdlib, unexported interface methods...).
func (e *Engine) Node(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return e.nodes[fn]
}

// Summary returns fn's summary, or nil for functions outside the module.
func (e *Engine) Summary(fn *types.Func) *Summary {
	if nd := e.Node(fn); nd != nil {
		return &nd.Sum
	}
	return nil
}

// Funcs returns every function node, sorted by position (deterministic).
func (e *Engine) Funcs() []*FuncNode {
	out := make([]*FuncNode, 0, len(e.nodes))
	for _, nd := range e.nodes {
		out = append(out, nd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fn.Pos() < out[j].Fn.Pos() })
	return out
}

// Lookup resolves "Func" or "Type.Method" in the package with the given
// import path; test helper.
func (e *Engine) Lookup(pkgPath, name string) *types.Func {
	for fn, nd := range e.nodes {
		if nd.Pkg.Path != pkgPath {
			continue
		}
		if funcDisplayName(fn) == name {
			return fn
		}
	}
	return nil
}

// funcDisplayName renders fn as Func or Type.Method.
func funcDisplayName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

func (e *Engine) buildNodes() {
	for _, pkg := range e.pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[decl.Name].(*types.Func)
				if fn == nil {
					continue
				}
				e.nodes[fn] = &FuncNode{Fn: fn, Decl: decl, Pkg: pkg}
			}
		}
	}
}

// calleeOf resolves a call to its static *types.Func using pkg's type info
// (same rules as Pass.Callee).
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// buildEdges records every resolvable call site. Calls whose static callee
// is an interface method fan out to each module type implementing the
// interface (class-hierarchy fallback).
func (e *Engine) buildEdges() {
	concrete := e.namedTypes()
	for _, nd := range e.nodes {
		pkg := nd.Pkg
		var walk func(n ast.Node, inClosure bool)
		walk = func(n ast.Node, inClosure bool) {
			ast.Inspect(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.FuncLit:
					walk(m.Body, true)
					return false
				case *ast.CallExpr:
					fn := calleeOf(pkg, m)
					if fn == nil {
						return true
					}
					if iface := interfaceRecv(fn); iface != nil {
						for _, impl := range implementors(concrete, iface, fn.Name()) {
							nd.Edges = append(nd.Edges, CallEdge{
								Call: m, Callee: impl, Interface: true, InClosure: inClosure,
							})
						}
						return true
					}
					nd.Edges = append(nd.Edges, CallEdge{Call: m, Callee: fn, InClosure: inClosure})
				}
				return true
			})
		}
		walk(nd.Decl.Body, false)
	}
}

// interfaceRecv returns fn's receiver interface type, or nil for concrete
// methods and plain functions.
func interfaceRecv(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// namedTypes collects every named (non-interface) type declared in the
// analyzed packages.
func (e *Engine) namedTypes() []*types.Named {
	var out []*types.Named
	for _, pkg := range e.pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, named)
		}
	}
	return out
}

// implementors returns the concrete methods named name on module types
// whose value or pointer type implements iface.
func implementors(concrete []*types.Named, iface *types.Interface, name string) []*types.Func {
	var out []*types.Func
	for _, named := range concrete {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), name)
		if m, ok := obj.(*types.Func); ok {
			out = append(out, m)
		}
	}
	return out
}

// paramIndexOfArg maps call argument index j to the callee's parameter
// index (collapsing variadic tails).
func paramIndexOfArg(sig *types.Signature, j int) int {
	n := sig.Params().Len()
	if n == 0 {
		return -1
	}
	if sig.Variadic() && j >= n-1 {
		return n - 1
	}
	if j >= n {
		return -1
	}
	return j
}

// paramIndex returns the index of obj among fn's declared parameters, or -1.
func paramIndex(fn *types.Func, obj types.Object) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i
		}
	}
	return -1
}

// isAsyncOpType reports whether t is *AsyncOp (or AsyncOp) declared in a
// package named pfs.
func isAsyncOpType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Name() == "pfs" && named.Obj().Name() == "AsyncOp"
}

// returnsAsyncOp reports whether any result of fn is a *pfs.AsyncOp.
func returnsAsyncOp(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isAsyncOpType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// isByteSliceLike reports whether t is []byte or [][]byte — the only result
// shapes the pooled-buffer summary tracks.
func isByteSliceLike(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	if b, ok := sl.Elem().Underlying().(*types.Basic); ok {
		return b.Kind() == types.Byte
	}
	inner, ok := sl.Elem().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := inner.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// computeSummaries iterates the per-function transfer until no summary
// changes. All facts are monotone, so this terminates.
func (e *Engine) computeSummaries() {
	funcs := e.Funcs()
	for changed := true; changed; {
		changed = false
		for _, nd := range funcs {
			if e.updateSummary(nd) {
				changed = true
			}
		}
	}
}

// updateSummary recomputes nd's summary from its body and current callee
// summaries, reporting whether it grew.
func (e *Engine) updateSummary(nd *FuncNode) bool {
	old := nd.Sum
	pass := &Pass{Fset: nd.Pkg.Fset, Pkg: nd.Pkg}
	sum := &nd.Sum

	sum.ReturnsAsyncOp = returnsAsyncOp(nd.Fn)

	// Edge-propagated facts.
	collectives := map[string]bool{}
	for _, c := range sum.Collectives {
		collectives[c] = true
	}
	for _, edge := range nd.Edges {
		if name, ok := collectiveFuncName(edge.Callee); ok && !edge.InClosure {
			collectives[name] = true
		}
		callee := e.nodes[edge.Callee]
		if callee == nil {
			continue
		}
		cs := &callee.Sum
		if !edge.InClosure {
			for _, c := range cs.Collectives {
				collectives[c] = true
			}
			sum.MayAcquire |= cs.MayAcquire
			sum.Releases |= cs.Releases
		}
		// Accounting facts follow every edge, closures included: the
		// goroutine that moves the bytes still belongs to the issuing
		// function's data path.
		sum.Touches = sum.Touches || cs.Touches
		sum.Charges = sum.Charges || cs.Charges
		sum.Records = sum.Records || cs.Records
		// Parameter-passing propagation: handing parameter i to a callee
		// position that puts/waits it extends the fact to this function.
		sig, ok := edge.Callee.Type().(*types.Signature)
		if !ok {
			continue
		}
		for j, arg := range edge.Call.Args {
			obj := argRootObj(nd.Pkg, arg)
			if obj == nil {
				continue
			}
			i := paramIndex(nd.Fn, obj)
			if i < 0 {
				continue
			}
			k := paramIndexOfArg(sig, j)
			if k < 0 {
				continue
			}
			if cs.PutsParam(k) {
				sum.PutsParams |= 1 << uint(i)
			}
			if cs.WaitsParam(k) {
				sum.WaitsParams |= 1 << uint(i)
			}
			if cs.StoresPooledParam(k) {
				sum.StoresPooledParams |= 1 << uint(i)
			}
		}
	}

	// Direct facts from the body.
	e.scanDirect(nd, pass)
	e.scanPooled(nd, pass)

	for _, c := range sum.Collectives {
		collectives[c] = true
	}
	names := make([]string, 0, len(collectives))
	for c := range collectives {
		names = append(names, c)
	}
	sort.Strings(names)
	sum.Collectives = names

	return !summariesEqual(&old, sum)
}

func summariesEqual(a, b *Summary) bool {
	if a.ReturnsPooled != b.ReturnsPooled || a.StoresPooledParams != b.StoresPooledParams ||
		a.PutsParams != b.PutsParams || a.WaitsParams != b.WaitsParams ||
		a.ReturnsAsyncOp != b.ReturnsAsyncOp || a.MayAcquire != b.MayAcquire ||
		a.Releases != b.Releases || a.Touches != b.Touches || a.Charges != b.Charges ||
		a.Records != b.Records || len(a.Collectives) != len(b.Collectives) {
		return false
	}
	for i := range a.Collectives {
		if a.Collectives[i] != b.Collectives[i] {
			return false
		}
	}
	return true
}

// argRootObj unwraps an argument expression (parens, slicing, indexing,
// field selection, append) to the object of its base identifier.
func argRootObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "append" && len(v.Args) > 0 {
				e = v.Args[0]
				continue
			}
			return nil
		case *ast.Ident:
			return pkg.Info.ObjectOf(v)
		default:
			return nil
		}
	}
}

// scanDirect collects the direct (non-propagated) facts: lock classes, Put
// and Wait on parameters, accounting touches.
func (e *Engine) scanDirect(nd *FuncNode, pass *Pass) {
	sum := &nd.Sum
	var walk func(n ast.Node, inClosure bool)
	walk = func(n ast.Node, inClosure bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			fl, ok := m.(*ast.FuncLit)
			if ok {
				walk(fl.Body, true)
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if cls := lockClass(pass, call); cls != 0 && !inClosure {
				if _, isLock, _, ok := isMutexLockCall(pass, call); ok {
					if isLock {
						sum.MayAcquire |= 1 << uint(cls)
					} else {
						sum.Releases |= 1 << uint(cls)
					}
				}
			}
			if isBufpoolCall(pass, call, "Put", "PutAll") {
				if obj := putArgObj(pass, call); obj != nil {
					if i := paramIndex(nd.Fn, obj); i >= 0 {
						sum.PutsParams |= 1 << uint(i)
					}
				}
			}
			// p.Wait() on an AsyncOp parameter (or a field path rooted at
			// one, e.g. pend.op.Wait()).
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" &&
				isAsyncOpType(pass.TypeOf(sel.X)) {
				if obj := argRootObj(nd.Pkg, sel.X); obj != nil {
					if i := paramIndex(nd.Fn, obj); i >= 0 {
						sum.WaitsParams |= 1 << uint(i)
					}
				}
			}
			callee := calleeOf(nd.Pkg, call)
			if callee == nil {
				return true
			}
			switch {
			case isMethodOn(callee, "pfs", "chunkStore", "writeAt", "readAt", "truncate"):
				sum.Touches = true
			case isMethodOn(callee, "pfs", "FS", "charge"):
				sum.Charges = true
			case isMethodOn(callee, "pfs", "File", "record"):
				sum.Records = true
			case callee.Pkg() != nil && callee.Pkg().Name() == "iostat" &&
				(callee.Name() == "Add" || callee.Name() == "AddTime"):
				sum.Records = true
			}
			return true
		})
	}
	walk(nd.Decl.Body, false)
}

// scanPooled runs a small local dataflow over nd's body: which locals may
// hold live bufpool buffers, and do any of them leave through a result or a
// parameter. Closure bodies are included — a buffer stored into a captured
// slice still leaves through it.
func (e *Engine) scanPooled(nd *FuncNode, pass *Pass) {
	sum := &nd.Sum
	pooled := map[types.Object]bool{}

	// isPooledExpr: does the expression yield (or contain) a live pooled
	// buffer, under the current pooled-locals set?
	var isPooledExpr func(x ast.Expr) bool
	isPooledExpr = func(x ast.Expr) bool {
		switch v := ast.Unparen(x).(type) {
		case *ast.SliceExpr:
			return isPooledExpr(v.X)
		case *ast.IndexExpr:
			return isPooledExpr(v.X)
		case *ast.CallExpr:
			if isBufpoolCall(pass, v, "Get", "GetDirty") {
				return true
			}
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "append" && len(v.Args) > 0 {
				return isPooledExpr(v.Args[0])
			}
			if callee := calleeOf(nd.Pkg, v); callee != nil {
				if cs := e.Summary(callee); cs != nil && cs.ReturnsPooled {
					return true
				}
			}
			return false
		case *ast.Ident:
			obj := nd.Pkg.Info.ObjectOf(v)
			return obj != nil && pooled[obj]
		}
		return false
	}

	// Iterate assignment propagation locally until stable.
	for changed := true; changed; {
		changed = false
		ast.Inspect(nd.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				if !isPooledExpr(as.Rhs[i]) {
					continue
				}
				root := argRootObj(nd.Pkg, lhs)
				if root == nil {
					continue
				}
				if pi := paramIndex(nd.Fn, root); pi >= 0 {
					// Stored into (an element/field of) a parameter: the
					// buffer leaves through it. Writing the parameter slice
					// header itself (parts = append(parts, ...)) does not
					// escape — only element/field stores do.
					if _, plain := ast.Unparen(lhs).(*ast.Ident); !plain {
						if !sum.StoresPooledParam(pi) {
							sum.StoresPooledParams |= 1 << uint(pi)
							changed = true
						}
					}
					continue
				}
				if !pooled[root] {
					pooled[root] = true
					changed = true
				}
			}
			return true
		})
	}

	// Does a pooled value reach a return (as a []byte/[][]byte result)?
	if sum.ReturnsPooled {
		return
	}
	ast.Inspect(nd.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure's returns are not this function's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if isByteSliceLike(pass.TypeOf(res)) && isPooledExpr(res) {
				sum.ReturnsPooled = true
			}
		}
		return true
	})
}

// collectiveFuncName reports whether fn is a known collective (same tables
// as the collsym checker) and returns its display name.
func collectiveFuncName(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	recv := sig.Recv()
	if recv == nil {
		if fn.Pkg() == nil {
			return "", false
		}
		full := fn.Pkg().Path() + "." + fn.Name()
		if collectiveFuncs[full] {
			return fn.Pkg().Name() + "." + fn.Name(), true
		}
		return "", false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	set, ok := collectiveMethods[key]
	if !ok {
		return "", false
	}
	name := named.Obj().Name() + "." + fn.Name()
	if set[fn.Name()] || strings.HasSuffix(fn.Name(), "All") {
		return name, true
	}
	return "", false
}
