package analysis

import (
	"go/token"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

// The golden-file convention: a fixture line that should produce a
// diagnostic carries a trailing comment
//
//	// want `regexp` `another regexp`
//
// with one backtick-quoted regexp per expected diagnostic on that line. The
// harness fails on any diagnostic without a matching want AND on any want
// without a matching diagnostic — so every golden test fails outright if its
// checker is disabled or stops firing.

var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

// sharedLoader builds one Loader for the whole test binary: the source
// importer re-type-checks stdlib dependencies from GOROOT, which is worth
// paying once, not per test.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		loaderVal, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loaderVal
}

type wantSpec struct {
	file string
	line int
	re   *regexp.Regexp
}

var (
	wantLineRE = regexp.MustCompile(`// want (.*)$`)
	wantArgRE  = regexp.MustCompile("`([^`]+)`")
)

func parseWants(t *testing.T, pkg *Package) []wantSpec {
	t.Helper()
	var wants []wantSpec
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantLineRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRE.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Fatalf("%s:%d: malformed want comment (need backtick-quoted regexps): %s",
						pos.Filename, pos.Line, c.Text)
				}
				for _, a := range args {
					re, err := regexp.Compile(a[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, a[1], err)
					}
					wants = append(wants, wantSpec{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runGolden loads testdata/src/<fixture>, runs the single named checker, and
// matches the diagnostics against the fixture's want comments.
func runGolden(t *testing.T, checkerName, fixture string) {
	t.Helper()
	l := sharedLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir("fixture/"+fixture, dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixture, err)
	}
	checkers, err := ByName(checkerName)
	if err != nil {
		t.Fatal(err)
	}
	diags := RunCheckers([]*Package{pkg}, checkers)
	wants := parseWants(t, pkg)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if !matched[i] && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: missing diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func TestCollSymGolden(t *testing.T)    { runGolden(t, "collsym", "collsym") }
func TestLockOrderGolden(t *testing.T)  { runGolden(t, "lockorder", "lockorder") }
func TestBufPoolGolden(t *testing.T)    { runGolden(t, "bufpool", "bufpool") }
func TestSpanPairGolden(t *testing.T)   { runGolden(t, "spanpair", "spanpair") }
func TestAccountingGolden(t *testing.T) { runGolden(t, "accounting", "accounting") }
func TestErrCheckIOGolden(t *testing.T) { runGolden(t, "errcheckio", "errcheckio") }
func TestFTAgreeGolden(t *testing.T)    { runGolden(t, "ftagree", "ftagree") }

// TestRepoClean is the self-check: the suite must report nothing on the
// repository itself, so a PR that introduces a violation (or a checker
// change that misfires on existing code) fails here before verify.sh runs
// nclint.
func TestRepoClean(t *testing.T) {
	l := sharedLoader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, d := range RunCheckers(pkgs, All()) {
		t.Errorf("repo not nclint-clean: %s", d)
	}
}

// TestByNameUnknown pins the driver-facing error for a typo'd -c flag.
func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("collsym,nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown checker name")
	}
	cs, err := ByName("lockorder")
	if err != nil || len(cs) != 1 || cs[0].Name != "lockorder" {
		t.Fatalf("ByName(lockorder) = %v, %v", cs, err)
	}
}

// TestSuppressionNeedsJustification pins that a bare //nclint:allow without
// the `-- reason` part does NOT suppress (the regexp requires it).
func TestSuppressionNeedsJustification(t *testing.T) {
	pkg := &Package{
		allows: map[string][]allow{},
	}
	if pkg.suppressed("collsym", mkPos("x.go", 10)) {
		t.Fatal("empty allow table suppressed a diagnostic")
	}
	pkg.allows["x.go"] = []allow{{line: 9, checkers: "collsym,lockorder"}}
	if !pkg.suppressed("collsym", mkPos("x.go", 10)) {
		t.Fatal("line-above allow did not suppress")
	}
	if !pkg.suppressed("lockorder", mkPos("x.go", 9)) {
		t.Fatal("same-line allow did not suppress")
	}
	if pkg.suppressed("bufpool", mkPos("x.go", 10)) {
		t.Fatal("allow for other checkers suppressed bufpool")
	}
	if pkg.suppressed("collsym", mkPos("x.go", 12)) {
		t.Fatal("allow two lines up suppressed")
	}
}

func mkPos(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line}
}
