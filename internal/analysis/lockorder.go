package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder enforces the pfs locking discipline (DESIGN.md §9/§10). Two
// rules:
//
//  1. Documented acquisition order. The pfs data plane has four lock
//     classes, acquired strictly in this order when nested:
//
//     file-table mu (FS.mu)  →  RMW range lock (rangeLock / LockRMW)
//     →  chunk shard locks (storeShard.mu)  →  server queues (FS.srvMu)
//
//     Acquiring a lower-ranked class while holding a higher-ranked one is
//     a lock-inversion deadlock waiting for the right interleaving; the
//     checker flags it intraprocedurally.
//
//  2. Pairing. Every sync.Mutex/RWMutex Lock/RLock (and pfs LockRMW) in
//     module code must have a matching Unlock/RUnlock (UnlockRMW) on the
//     same lock expression somewhere in the same function — directly or
//     deferred. Handing a held lock to another function is the pattern
//     that silently deadlocks the 32-way sharded store, so it requires an
//     explicit //nclint:allow=lockorder justification.
func LockOrder() *Checker {
	return &Checker{
		Name: "lockorder",
		Doc:  "pfs lock classes must be acquired in the documented order, and every Lock must pair with an Unlock",
		Run:  runLockOrder,
	}
}

// Lock class ranks; acquisition must be in ascending rank.
const (
	classFileTable = 1 // FS.mu
	classRange     = 2 // rangeLock / LockRMW
	classShard     = 3 // storeShard.mu
	classServer    = 4 // FS.srvMu
)

var className = map[int]string{
	classFileTable: "file-table lock (FS.mu)",
	classRange:     "RMW range lock",
	classShard:     "chunk shard lock (storeShard.mu)",
	classServer:    "server-queue lock (FS.srvMu)",
}

// lockClass classifies the receiver of a Lock/Unlock-style call into one of
// the pfs lock classes, or 0.
func lockClass(pass *Pass, call *ast.CallExpr) int {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	switch sel.Sel.Name {
	case "LockRMW", "UnlockRMW":
		return classRange
	case "lock", "unlock":
		if isPfsType(pass.TypeOf(sel.X), "rangeLock") {
			return classRange
		}
		return 0
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return 0
	}
	// The receiver is a mutex-valued field: classify by owner type + field.
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	owner := pass.TypeOf(field.X)
	switch {
	case isPfsType(owner, "FS") && field.Sel.Name == "mu":
		return classFileTable
	case isPfsType(owner, "FS") && field.Sel.Name == "srvMu":
		return classServer
	case isPfsType(owner, "storeShard") && field.Sel.Name == "mu":
		return classShard
	case isPfsType(owner, "rangeLock") && field.Sel.Name == "mu":
		return classRange
	}
	return 0
}

// isPfsType reports whether t (or its pointee) is the named type name
// declared in a package called pfs (the real internal/pfs or a fixture).
func isPfsType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Name() == "pfs" && named.Obj().Name() == name
}

// isMutexLockCall reports whether the call is (R)Lock/(R)Unlock on a
// sync.Mutex/sync.RWMutex (or pfs LockRMW/UnlockRMW), returning the lock's
// receiver rendering, whether it acquires, and whether it is a read lock.
func isMutexLockCall(pass *Pass, call *ast.CallExpr) (key string, isLock, isRead, ok bool) {
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", false, false, false
	}
	name := sel.Sel.Name
	switch name {
	case "LockRMW", "UnlockRMW":
		return types.ExprString(sel.X) + ".rmw", name == "LockRMW", false, true
	case "Lock", "RLock", "Unlock", "RUnlock":
		t := pass.TypeOf(sel.X)
		if !isSyncMutex(t) {
			return "", false, false, false
		}
		return types.ExprString(sel.X), name == "Lock" || name == "RLock", name == "RLock" || name == "RUnlock", true
	}
	return "", false, false, false
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

func runLockOrder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkLockFunc(pass, n.Body)
				}
				return true
			case *ast.FuncLit:
				// Analyzed as its own scope; the traversal continues so
				// literals nested inside it are each visited too.
				checkLockFunc(pass, n.Body)
				return true
			}
			return true
		})
	}
}

// lockEvent is one Lock/Unlock call in source order. A call event (callee
// != nil) is a call into a function whose interprocedural summary may
// acquire locks; acq holds the class bitmask.
type lockEvent struct {
	pos     token.Pos
	key     string
	class   int
	isLock  bool
	isRead  bool
	defered bool
	callee  *types.Func
	acq     uint8
}

// checkLockFunc applies both rules to one function body. The walk is a
// linear source-order approximation: acquisitions push, releases pop, and a
// deferred unlock releases nothing until the end — conservative in the
// direction that catches inversions.
func checkLockFunc(pass *Pass, body *ast.BlockStmt) {
	var events []lockEvent
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // analyzed as its own function
			case *ast.DeferStmt:
				if fl, ok := m.Call.Fun.(*ast.FuncLit); ok {
					walk(fl.Body, true)
				} else {
					walk(m.Call, true)
				}
				return false
			case *ast.CallExpr:
				if key, isLock, isRead, ok := isMutexLockCall(pass, m); ok {
					events = append(events, lockEvent{
						pos: m.Pos(), key: key, class: lockClass(pass, m),
						isLock: isLock, isRead: isRead, defered: deferred,
					})
					return true
				}
				// Interprocedural: a call into a function that may acquire
				// locks is an acquisition event for ordering purposes.
				// Deferred calls run at function end, after the body's
				// releases, and are skipped like deferred unlocks.
				if pass.Engine != nil && !deferred {
					if fn := pass.Callee(m); fn != nil {
						if sum := pass.Engine.Summary(fn); sum != nil && sum.MayAcquire != 0 {
							events = append(events, lockEvent{pos: m.Pos(), callee: fn, acq: sum.MayAcquire})
						}
					}
				}
			}
			return true
		})
	}
	walk(body, false)

	// Rule 2: every acquired key must have a release on the same key.
	// Releases count wherever they appear in the function, including inside
	// local closures (the release() pattern: a closure that unlocks is
	// called on every exit path).
	released := map[string]bool{}
	for _, e := range events {
		if !e.isLock {
			released[e.key] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if key, isLock, _, ok := isMutexLockCall(pass, call); ok && !isLock {
					released[key] = true
				}
			}
			return true
		})
		return true
	})
	for _, e := range events {
		if e.isLock && !e.defered && !released[e.key] {
			pass.Reportf(e.pos, "%s.Lock with no matching Unlock in this function (a lock held across the call boundary deadlocks the data plane)", e.key)
		}
	}

	// Rule 1: classify nesting along the linear event order.
	type held struct {
		class int
		key   string
	}
	var stack []held
	for _, e := range events {
		if e.callee != nil {
			// A callee that may acquire a lower-ranked class while we hold
			// a higher-ranked one is the helper-mediated inversion the
			// intraprocedural walk cannot see. The callee is expected to
			// release what it acquires (its own rule-2 check enforces
			// that), so nothing is pushed.
			for c := classFileTable; c <= classServer; c++ {
				if e.acq&(1<<uint(c)) == 0 {
					continue
				}
				for _, h := range stack {
					if h.class > c {
						pass.Reportf(e.pos, "call to %s may acquire %s while holding %s; documented order is file-table mu -> RMW range lock -> shard locks -> srvMu",
							funcDisplayName(e.callee), className[c], className[h.class])
						break
					}
				}
			}
			continue
		}
		if e.class == 0 {
			continue
		}
		if !e.isLock {
			if e.defered {
				continue // releases at function end, not here
			}
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].key == e.key || stack[i].class == e.class {
					stack = append(stack[:i], stack[i+1:]...)
					break
				}
			}
			continue
		}
		for _, h := range stack {
			if h.class > e.class {
				pass.Reportf(e.pos, "acquires %s while holding %s; documented order is file-table mu -> RMW range lock -> shard locks -> srvMu",
					className[e.class], className[h.class])
				break
			}
		}
		stack = append(stack, held{class: e.class, key: e.key})
	}
}
