package analysis

import (
	"path/filepath"
	"testing"
)

// loadFixtureTree loads a (possibly multi-package) fixture via LoadTree so
// fixture-internal imports like fixture/<name>/helper resolve.
func loadFixtureTree(t *testing.T, fixture string) []*Package {
	t.Helper()
	l := sharedLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadTree("fixture/"+fixture, dir)
	if err != nil {
		t.Fatalf("load fixture tree %s: %v", fixture, err)
	}
	return pkgs
}

// runGoldenInterp is the interprocedural golden harness: it runs the named
// checker with the module engine over every package of the fixture tree and
// matches the want comments — then re-runs the same checker
// intraprocedurally and requires silence, proving the engine sees strictly
// more than the per-function analysis.
func runGoldenInterp(t *testing.T, checkerName, fixture string) {
	t.Helper()
	pkgs := loadFixtureTree(t, fixture)
	checkers, err := ByName(checkerName)
	if err != nil {
		t.Fatal(err)
	}

	diags := RunCheckersInterp(pkgs, checkers)
	var wants []wantSpec
	for _, pkg := range pkgs {
		wants = append(wants, parseWants(t, pkg)...)
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments; the golden test would pass vacuously", fixture)
	}
	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if !matched[i] && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: missing diagnostic matching %q", w.file, w.line, w.re)
		}
	}

	// The strictly-more proof: every finding above needed the engine.
	for _, d := range RunCheckers(pkgs, checkers) {
		t.Errorf("fixture %s is not clean intraprocedurally — the interp fixture no longer isolates engine-only findings: %s", fixture, d)
	}
}

func TestCollSymInterpGolden(t *testing.T)   { runGoldenInterp(t, "collsym", "collsym_interp") }
func TestBufPoolInterpGolden(t *testing.T)   { runGoldenInterp(t, "bufpool", "bufpool_interp") }
func TestLockOrderInterpGolden(t *testing.T) { runGoldenInterp(t, "lockorder", "lockorder_interp") }
func TestAsyncWaitGolden(t *testing.T)       { runGoldenInterp(t, "asyncwait", "asyncwait") }

// TestRepoCleanInterp is the interprocedural self-check mirroring
// TestRepoClean: the full suite, summaries enabled, must be silent on the
// repository itself (justified //nclint:allow annotations included).
func TestRepoCleanInterp(t *testing.T) {
	l := sharedLoader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, d := range RunCheckersInterp(pkgs, All()) {
		t.Errorf("repo not nclint-clean in interp mode: %s", d)
	}
}
