package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CollSym is the collective-symmetry checker: every process of a
// communicator must call collective operations in the same order (the MPI
// requirement behind nextOpCtx's lockstep sequence numbers and the reason a
// desynchronized run deadlocks instead of erroring). The classic way to
// break the rule is a collective call inside a branch conditioned on the
// process's rank:
//
//	if comm.Rank() == 0 {
//	    comm.Bcast(0, hdr)   // ranks != 0 never enter the Bcast: deadlock
//	}
//
// The checker flags every known collective call (mpi.Comm collectives,
// mpiio.File collective I/O and open/close, core.Dataset _all variants and
// the collective lifecycle calls) that appears on one arm of a
// rank-conditioned branch without a matching call on the other arm. A
// rank-guarded early return makes the rest of the enclosing block the other
// arm. The runtime complement is internal/mpi's PNETCDF_CHECK_COLLECTIVES
// sequence assertion; this checker catches the bug before it runs.
func CollSym() *Checker {
	return &Checker{
		Name: "collsym",
		Doc:  "collective calls must not be conditioned on the process rank",
		Run:  runCollSym,
	}
}

// collectiveMethods maps "pkg/path.TypeName" to the method names that are
// collective over the type's communicator. Methods with suffix "All" on
// these types are always collective and need not be listed.
var collectiveMethods = map[string]map[string]bool{
	"pnetcdf/internal/mpi.Comm": {
		"Barrier": true, "Bcast": true, "Gather": true, "Allgather": true,
		"Scatter": true, "Alltoall": true, "ReduceI64": true, "ReduceF64": true,
		"AllreduceI64": true, "AllreduceF64": true, "ExscanI64": true,
		"AgreeError": true, "AgreeSame": true, "Dup": true, "Split": true,
	},
	"pnetcdf/internal/mpiio.File": {
		"Close": true, "Sync": true, "SetView": true, "SetSize": true,
		"Preallocate": true,
	},
	"pnetcdf/internal/core.Dataset": {
		"EndDef": true, "Redef": true, "Close": true, "Sync": true,
		"BeginIndepData": true, "EndIndepData": true,
	},
}

// collectiveFuncs lists collective package-level functions by full path.
var collectiveFuncs = map[string]bool{
	"pnetcdf/internal/mpiio.Open":  true,
	"pnetcdf/internal/core.Create": true,
	"pnetcdf/internal/core.Open":   true,
}

// isCollective reports whether the call invokes a known collective (or, in
// interprocedural mode, a module helper whose summary says it may reach
// one), and if so under what display name. Helper-mediated names embed the
// helper's own identity, so the same helper called on both arms of a
// rank-conditioned branch still cancels.
func isCollective(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := pass.Callee(call)
	if fn == nil {
		return "", false
	}
	if name, ok := collectiveFuncName(fn); ok {
		return name, true
	}
	if pass.Engine != nil {
		if sum := pass.Engine.Summary(fn); sum != nil && sum.HasCollectives() {
			return fmt.Sprintf("%s (which may reach %s)",
				funcDisplayName(fn), strings.Join(sum.Collectives, ", ")), true
		}
	}
	return "", false
}

// rankDependent reports whether the condition expression depends on the
// process's rank: it calls a method named Rank/WorldRank/IsRoot, or it
// mentions an identifier conventionally holding a rank.
func rankDependent(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Rank", "WorldRank", "IsRoot":
					found = true
				}
			}
		case *ast.Ident:
			switch n.Name {
			case "rank", "myRank", "myrank", "isRoot", "root":
				found = true
			}
		}
		return !found
	})
	return found
}

func runCollSym(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				ifs, ok := stmt.(*ast.IfStmt)
				if !ok || !rankDependent(ifs.Cond) {
					continue
				}
				then := collectiveCalls(pass, ifs.Body)
				var other map[string][]token.Pos
				switch {
				case ifs.Else != nil:
					other = collectiveCalls(pass, ifs.Else)
				case returnsNonNilError(pass, ifs.Body):
					// A rank-dependent branch that bails with an error is a
					// failure path: the collective error-agreement / world-
					// abort machinery reconciles the ranks, so the skipped
					// collectives after it are not a deadlock.
					continue
				case terminates(ifs.Body):
					// Rank-guarded early return: the remainder of the
					// enclosing block runs only on the ranks that did NOT
					// take the branch, so it is the de-facto other arm.
					rest := &ast.BlockStmt{List: block.List[i+1:]}
					other = collectiveCalls(pass, rest)
				default:
					other = map[string][]token.Pos{}
				}
				reportAsym(pass, then, other)
				reportAsym(pass, other, then)
			}
			return true
		})
	}
}

// collectiveCalls returns the collective calls inside stmt by display name,
// excluding those nested in further rank-dependent branches (they are
// reported against the inner branch) and in function literals (their
// execution context is unknown here).
func collectiveCalls(pass *Pass, stmt ast.Stmt) map[string][]token.Pos {
	out := map[string][]token.Pos{}
	if stmt == nil {
		return out
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IfStmt:
			if rankDependent(n.Cond) {
				return false
			}
		case *ast.CallExpr:
			if name, ok := isCollective(pass, n); ok {
				out[name] = append(out[name], n.Pos())
			}
		}
		return true
	})
	return out
}

// returnsNonNilError reports whether the block ends in a return whose
// results include an error-typed expression other than the nil literal —
// the shape of an error bail-out, as opposed to a plain rank-gated return.
func returnsNonNilError(pass *Pass, b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	ret, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, res := range ret.Results {
		if id, ok := ast.Unparen(res).(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		if t := pass.TypeOf(res); t != nil && types.Identical(t, types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}

// terminates reports whether the block always transfers control out of the
// enclosing statement list (ends in return, panic-like call, or an
// unconditional branch).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.BREAK || last.Tok == token.CONTINUE || last.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Abort" {
				return true
			}
		}
	}
	return false
}

// reportAsym reports every collective appearing more often in got than in
// want — the calls with no matching partner on the other arm.
func reportAsym(pass *Pass, got, want map[string][]token.Pos) {
	for name, positions := range got {
		missing := len(positions) - len(want[name])
		for i := 0; i < missing; i++ {
			pass.Reportf(positions[len(positions)-1-i],
				"collective %s is conditioned on the process rank with no matching call on the other ranks (all processes must call collectives in the same order)", name)
		}
	}
}
