package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BufPool enforces the pooled-buffer discipline of DESIGN.md §9: every
// buffer obtained from internal/bufpool (Get/GetDirty) must reach a
// bufpool.Put on every return path of the acquiring function. Dropping a
// buffer is memory-safe (the pool reallocates) but silently reintroduces
// the steady-state allocations the pool exists to remove, which the
// alloc-regression tests then catch only for the benchmarked paths.
//
// A buffer that intentionally leaves the function — returned to the caller
// or stored into a longer-lived structure whose owner does the Put — must
// be annotated at the Get site:
//
//	//nclint:escape -- <who puts it back, and when>
//
// The analysis is a per-function, path-sensitive walk: Put calls (direct,
// deferred, or via a local closure that puts the buffer, the
// release-closure pattern) discharge the obligation on the paths they
// dominate; a return reachable with an undischarged buffer is reported.
// Passing the buffer as a call argument is treated as a borrow, not an
// escape.
func BufPool() *Checker {
	return &Checker{
		Name: "bufpool",
		Doc:  "bufpool.Get must reach bufpool.Put on all return paths (or carry //nclint:escape)",
		Run:  runBufPool,
	}
}

func runBufPool(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBufFunc(pass, file, n.Body)
				}
			case *ast.FuncLit:
				checkBufFunc(pass, file, n.Body)
			}
			return true
		})
	}
}

// isBufpoolCall reports whether call invokes bufpool.<name> for one of the
// given names.
func isBufpoolCall(pass *Pass, call *ast.CallExpr, names ...string) bool {
	fn := pass.Callee(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "bufpool" {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// getCallIn unwraps parens and slice expressions around a bufpool
// Get/GetDirty call: `bufpool.GetDirty(n)[:0]` still yields the call.
func getCallIn(pass *Pass, e ast.Expr) *ast.CallExpr {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.CallExpr:
			if isBufpoolCall(pass, v, "Get", "GetDirty") {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// pooledCallIn returns the call in e that yields a pooled buffer: a direct
// bufpool Get/GetDirty, or (interprocedural mode) a helper whose summary
// says it returns one.
func pooledCallIn(pass *Pass, e ast.Expr) *ast.CallExpr {
	if call := getCallIn(pass, e); call != nil {
		return call
	}
	if pass.Engine == nil {
		return nil
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := pass.Callee(call)
	if fn == nil {
		return nil
	}
	if sum := pass.Engine.Summary(fn); sum != nil && sum.ReturnsPooled {
		return call
	}
	return nil
}

// putArgObj resolves the object a bufpool.Put call discharges, or nil.
func putArgObj(pass *Pass, call *ast.CallExpr) types.Object {
	if len(call.Args) != 1 {
		return nil
	}
	arg := ast.Unparen(call.Args[0])
	if sl, ok := arg.(*ast.SliceExpr); ok {
		arg = ast.Unparen(sl.X)
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Pkg.Info.ObjectOf(id)
}

// hasEscapeAnnotation reports whether the Get site carries a justified
// //nclint:escape annotation; it also reports an unjustified one.
func hasEscapeAnnotation(pass *Pass, file *ast.File, pos token.Pos) bool {
	for _, c := range lineComments(pass.Fset, file, pos) {
		if idx := strings.Index(c, "//nclint:escape"); idx >= 0 {
			rest := c[idx+len("//nclint:escape"):]
			if j := strings.Index(rest, "--"); j >= 0 && strings.TrimSpace(rest[j+2:]) != "" {
				return true
			}
			pass.Reportf(pos, "//nclint:escape needs a justification: //nclint:escape -- <who puts the buffer back>")
			return true // annotated intent is clear; don't double-report
		}
	}
	return false
}

// bufState is the set of live (not yet Put) buffers along one path.
type bufState map[types.Object]bool

func (s bufState) clone() bufState {
	c := bufState{}
	for k := range s {
		c[k] = true
	}
	return c
}

type bufAnalysis struct {
	pass        *Pass
	file        *ast.File
	bodyPos     token.Pos                       // objects declared before this are parameters
	deferred    map[types.Object]bool           // discharged at every return
	closureObjs map[types.Object][]types.Object // release-closure var -> buffers it puts
	reported    map[types.Object]bool
}

func checkBufFunc(pass *Pass, file *ast.File, body *ast.BlockStmt) {
	a := &bufAnalysis{
		pass:        pass,
		file:        file,
		bodyPos:     body.Pos(),
		deferred:    map[types.Object]bool{},
		closureObjs: map[types.Object][]types.Object{},
		reported:    map[types.Object]bool{},
	}
	// Pre-scan: local closures that put buffers (the release() pattern) —
	// directly, or in interprocedural mode through a callee that Puts its
	// parameter (the finish()/recycleRound pattern of the pipelined path).
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		fl, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Pkg.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isBufpoolCall(pass, call, "Put", "PutAll") {
				if put := putArgObj(pass, call); put != nil {
					a.closureObjs[obj] = append(a.closureObjs[obj], put)
				}
				return true
			}
			for _, put := range putParamRoots(pass, call) {
				a.closureObjs[obj] = append(a.closureObjs[obj], put)
			}
			return true
		})
		return true
	})
	end, terminated := a.flow(body.List, bufState{})
	if !terminated {
		a.reportLive(end, body.Rbrace, "function end")
	}
}

// flow walks stmts in order, returning the fall-through state and whether
// every path through stmts terminated (returned) before falling through.
func (a *bufAnalysis) flow(stmts []ast.Stmt, live bufState) (bufState, bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			a.applyCalls(s, live)
			a.assign(s, live)
		case *ast.DeclStmt:
			a.applyCalls(s, live)
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, val := range vs.Values {
							if i < len(vs.Names) {
								a.trackValue(vs.Names[i], val, live)
							}
						}
					}
				}
			}
		case *ast.ExprStmt:
			a.applyCalls(s, live)
			a.exprStmt(s.X, live)
		case *ast.DeferStmt:
			a.deferStmt(s, live)
		case *ast.ReturnStmt:
			a.applyCalls(s, live)
			a.returnStmt(s, live)
			return live, true
		case *ast.IfStmt:
			if s.Init != nil {
				var term bool
				live, term = a.flow([]ast.Stmt{s.Init}, live)
				if term {
					return live, true
				}
			}
			a.applyCalls(s.Cond, live)
			thenState, thenTerm := a.flow(s.Body.List, live.clone())
			var elseState bufState
			elseTerm := false
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseState, elseTerm = a.flow(e.List, live.clone())
			case *ast.IfStmt:
				elseState, elseTerm = a.flow([]ast.Stmt{e}, live.clone())
			default:
				elseState = live.clone()
			}
			if thenTerm && elseTerm {
				return live, true
			}
			merged := bufState{}
			if !thenTerm {
				for k := range thenState {
					merged[k] = true
				}
			}
			if !elseTerm {
				for k := range elseState {
					merged[k] = true
				}
			}
			live = merged
		case *ast.BlockStmt:
			var term bool
			live, term = a.flow(s.List, live)
			if term {
				return live, true
			}
		case *ast.ForStmt:
			if s.Init != nil {
				var term bool
				live, term = a.flow([]ast.Stmt{s.Init}, live)
				if term {
					return live, true
				}
			}
			bodyState, _ := a.flow(s.Body.List, live.clone())
			for k := range bodyState {
				live[k] = true
			}
		case *ast.RangeStmt:
			bodyState, _ := a.flow(s.Body.List, live.clone())
			for k := range bodyState {
				live[k] = true
			}
		case *ast.SwitchStmt:
			a.caseFlow(stmtClauses(s.Body), live)
		case *ast.TypeSwitchStmt:
			a.caseFlow(stmtClauses(s.Body), live)
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					st, _ := a.flow(cc.Body, live.clone())
					for k := range st {
						live[k] = true
					}
				}
			}
		case *ast.LabeledStmt:
			var term bool
			live, term = a.flow([]ast.Stmt{s.Stmt}, live)
			if term {
				return live, true
			}
		}
	}
	return live, false
}

func stmtClauses(body *ast.BlockStmt) []*ast.CaseClause {
	var out []*ast.CaseClause
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok {
			out = append(out, cc)
		}
	}
	return out
}

func (a *bufAnalysis) caseFlow(clauses []*ast.CaseClause, live bufState) {
	for _, cc := range clauses {
		st, _ := a.flow(cc.Body, live.clone())
		for k := range st {
			live[k] = true
		}
	}
}

// assign handles x := bufpool.Get(...), reassignments, and escapes by
// storage: a tracked buffer assigned to anything but itself leaves the
// function's custody.
func (a *bufAnalysis) assign(s *ast.AssignStmt, live bufState) {
	for i, rhs := range s.Rhs {
		if i >= len(s.Lhs) {
			break
		}
		if id, ok := s.Lhs[i].(*ast.Ident); ok {
			a.trackValue(id, rhs, live)
			continue
		}
		// Storing into an element of a local [][]byte re-homes custody
		// under the slice — the in-flight-generation pattern of the
		// pipelined collective path: buffers are parked in a generation
		// slice while an async write holds them, and the whole generation
		// is discharged at once by bufpool.PutAll(generation) after the
		// owning Wait. Dropping the generation is still reported, under
		// the slice's name.
		if gen := localSliceObj(a.pass, s.Lhs[i]); gen != nil {
			// Storing into a caller-supplied [][]byte parameter transfers
			// custody out of this function: in interprocedural mode the
			// StoresPooledParam summary re-homes the obligation at every
			// call site, so it is discharged here rather than re-tracked.
			transfer := a.pass.Engine != nil && gen.Pos() < a.bodyPos
			if call := pooledCallIn(a.pass, rhs); call != nil {
				if !transfer {
					live[gen] = true
				}
				continue
			}
			if src := identIn(rhs); src != nil {
				if obj := a.pass.Pkg.Info.ObjectOf(src); obj != nil && live[obj] {
					delete(live, obj)
					if !transfer {
						live[gen] = true
					}
				}
			}
			continue
		}
		// Storing into a field, map, or non-local slice element: if the
		// stored value is (derived from) a live buffer, it escapes.
		a.escapeIfLive(rhs, live, "stored outside the function's locals")
		if call := getCallIn(a.pass, rhs); call != nil {
			a.requireEscape(call, "stored without being bound to a local")
		}
	}
}

// localSliceObj resolves lhs of the form slice[expr] where slice is a
// local or parameter of type [][]byte, returning the slice's object.
func localSliceObj(pass *Pass, lhs ast.Expr) types.Object {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(ix.X).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Pkg.Info.ObjectOf(id)
	if obj == nil {
		return nil
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	sl, ok := obj.Type().Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	el, ok := sl.Elem().Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	b, ok := el.Elem().Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Byte {
		return nil
	}
	return obj
}

// trackValue processes `id = value`: a Get call starts tracking (unless
// annotated as escaping); rebinding a live buffer to another name is an
// escape of the old value only if id differs from the value's source. In
// interprocedural mode a call to a helper whose summary returns a pooled
// buffer starts the same obligation: the custody the helper's own escape
// annotation promised to its caller lands here.
func (a *bufAnalysis) trackValue(id *ast.Ident, value ast.Expr, live bufState) {
	if call := getCallIn(a.pass, value); call != nil {
		if hasEscapeAnnotation(a.pass, a.file, call.Pos()) {
			return
		}
		if obj := a.pass.Pkg.Info.ObjectOf(id); obj != nil {
			live[obj] = true
		}
		return
	}
	if a.pass.Engine != nil {
		if call, ok := ast.Unparen(value).(*ast.CallExpr); ok {
			if fn := a.pass.Callee(call); fn != nil {
				if sum := a.pass.Engine.Summary(fn); sum != nil && sum.ReturnsPooled {
					if hasEscapeAnnotation(a.pass, a.file, call.Pos()) {
						return
					}
					if obj := a.pass.Pkg.Info.ObjectOf(id); obj != nil {
						live[obj] = true
					}
					return
				}
			}
		}
	}
	// Nested Get (argument position, composite literal...) must be
	// annotated: nobody holds a name to Put it through.
	ast.Inspect(value, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBufpoolCall(a.pass, call, "Get", "GetDirty") {
			a.requireEscape(call, "not bound directly to a local")
		}
		return true
	})
	// `y := x` hands the buffer to a second name; treat as escape unless
	// the source ident is being sliced/appended back to itself.
	if src := identIn(value); src != nil {
		obj := a.pass.Pkg.Info.ObjectOf(src)
		idObj := a.pass.Pkg.Info.ObjectOf(id)
		if obj != nil && live[obj] && obj != idObj {
			delete(live, obj)
			if idObj != nil {
				live[idObj] = true // track under the new name instead
			}
		}
	}
}

// identIn returns the ident a value expression is directly derived from
// (unwrapping parens, slicing, and append(x, ...)).
func identIn(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "append" && len(v.Args) > 0 {
				e = v.Args[0]
				continue
			}
			return nil
		case *ast.Ident:
			return v
		default:
			return nil
		}
	}
}

// exprStmt handles Put calls and release-closure invocations.
func (a *bufAnalysis) exprStmt(e ast.Expr, live bufState) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	if isBufpoolCall(a.pass, call, "Put", "PutAll") {
		if obj := putArgObj(a.pass, call); obj != nil {
			delete(live, obj)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := a.pass.Pkg.Info.ObjectOf(id); obj != nil {
			for _, put := range a.closureObjs[obj] {
				delete(live, put)
			}
		}
	}
	// Any nested unbound Get (e.g. passed straight as an argument).
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok && isBufpoolCall(a.pass, c, "Get", "GetDirty") {
				a.requireEscape(c, "passed as an argument without a local name")
			}
			return true
		})
	}
}

// deferStmt registers deferred Puts: direct, via closure literal, or via a
// release closure variable.
func (a *bufAnalysis) deferStmt(s *ast.DeferStmt, live bufState) {
	if isBufpoolCall(a.pass, s.Call, "Put", "PutAll") {
		if obj := putArgObj(a.pass, s.Call); obj != nil {
			a.deferred[obj] = true
		}
		return
	}
	if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isBufpoolCall(a.pass, call, "Put", "PutAll") {
				if obj := putArgObj(a.pass, call); obj != nil {
					a.deferred[obj] = true
				}
			}
			return true
		})
		return
	}
	if id, ok := ast.Unparen(s.Call.Fun).(*ast.Ident); ok {
		if obj := a.pass.Pkg.Info.ObjectOf(id); obj != nil {
			for _, put := range a.closureObjs[obj] {
				a.deferred[put] = true
			}
		}
	}
}

// returnStmt reports buffers still live at an explicit return; a returned
// buffer itself is an escape and must be annotated at its Get site.
func (a *bufAnalysis) returnStmt(s *ast.ReturnStmt, live bufState) {
	for _, res := range s.Results {
		if call := getCallIn(a.pass, res); call != nil {
			a.requireEscape(call, "returned to the caller")
			continue
		}
		if src := identIn(res); src != nil {
			if obj := a.pass.Pkg.Info.ObjectOf(src); obj != nil && live[obj] {
				delete(live, obj)
				// In interprocedural mode the return is an ownership
				// transfer: this function's summary becomes ReturnsPooled
				// and every caller inherits the obligation, so the checker
				// follows the buffer instead of demanding an annotation.
				if a.pass.Engine == nil && !a.reported[obj] {
					a.reported[obj] = true
					a.pass.Reportf(s.Pos(), "bufpool buffer %s is returned to the caller; annotate its Get with //nclint:escape -- <who puts it back>", src.Name)
				}
			}
		}
	}
	a.reportLive(live, s.Pos(), "return")
}

// escapeIfLive marks a live buffer stored outside the locals as escaped and
// reports it.
func (a *bufAnalysis) escapeIfLive(e ast.Expr, live bufState, how string) {
	src := identIn(e)
	if src == nil {
		return
	}
	obj := a.pass.Pkg.Info.ObjectOf(src)
	if obj == nil || !live[obj] {
		return
	}
	delete(live, obj)
	if !a.reported[obj] {
		a.reported[obj] = true
		a.pass.Reportf(e.Pos(), "bufpool buffer %s is %s; annotate its Get with //nclint:escape -- <who puts it back>", src.Name, how)
	}
}

// requireEscape reports a Get whose result has no local name unless the
// site carries a justified //nclint:escape annotation.
func (a *bufAnalysis) requireEscape(call *ast.CallExpr, how string) {
	if hasEscapeAnnotation(a.pass, a.file, call.Pos()) {
		return
	}
	a.pass.Reportf(call.Pos(), "bufpool.Get result is %s; annotate with //nclint:escape -- <who puts it back> or bind it to a local and Put it", how)
}

// applyCalls walks the expressions of one statement (not descending into
// function literals) and applies every call's custody effects: direct
// bufpool.Put/PutAll, release-closure invocations, and — in
// interprocedural mode — callee summaries that Put a parameter (discharge
// the argument's root) or store pooled buffers into a parameter (custody
// re-homed under the argument's root local, the packWriteRound pattern).
func (a *bufAnalysis) applyCalls(n ast.Node, live bufState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBufpoolCall(a.pass, call, "Put", "PutAll") {
			if obj := putArgObj(a.pass, call); obj != nil {
				delete(live, obj)
			}
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := a.pass.Pkg.Info.ObjectOf(id); obj != nil {
				for _, put := range a.closureObjs[obj] {
					delete(live, put)
				}
			}
		}
		for _, put := range putParamRoots(a.pass, call) {
			delete(live, put)
		}
		for _, stored := range storesPooledRoots(a.pass, call) {
			live[stored] = true
		}
		return true
	})
}

// putParamRoots returns the local roots of arguments passed into positions
// the callee's summary Puts (interprocedural mode only).
func putParamRoots(pass *Pass, call *ast.CallExpr) []types.Object {
	return summaryParamRoots(pass, call, func(sum *Summary, k int) bool { return sum.PutsParam(k) })
}

// storesPooledRoots returns the local roots of arguments the callee's
// summary stores pooled buffers into (interprocedural mode only).
func storesPooledRoots(pass *Pass, call *ast.CallExpr) []types.Object {
	return summaryParamRoots(pass, call, func(sum *Summary, k int) bool { return sum.StoresPooledParam(k) })
}

func summaryParamRoots(pass *Pass, call *ast.CallExpr, want func(*Summary, int) bool) []types.Object {
	if pass.Engine == nil {
		return nil
	}
	fn := pass.Callee(call)
	if fn == nil {
		return nil
	}
	sum := pass.Engine.Summary(fn)
	if sum == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []types.Object
	for j, arg := range call.Args {
		k := paramIndexOfArg(sig, j)
		if k < 0 || !want(sum, k) {
			continue
		}
		root := argRootObj(pass.Pkg, arg)
		v, ok := root.(*types.Var)
		if !ok || v.IsField() {
			continue
		}
		// Only function-scoped roots: custody of a package-level or
		// otherwise foreign root is someone else's to track.
		if v.Parent() == nil || v.Parent() == pass.Pkg.Types.Scope() {
			continue
		}
		out = append(out, root)
	}
	return out
}

// reportLive reports every buffer that reaches `where` without a Put.
func (a *bufAnalysis) reportLive(live bufState, pos token.Pos, where string) {
	for obj := range live {
		if a.deferred[obj] || a.reported[obj] {
			continue
		}
		a.reported[obj] = true
		a.pass.Reportf(pos, "bufpool buffer %s reaches %s without bufpool.Put (pooled buffer dropped on this path)", obj.Name(), where)
	}
}
