package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AsyncWait verifies the PR 7 async-I/O pairing invariant: every
// *pfs.AsyncOp issued (WriteVecAsync/ReadVAsync/ReadVecAsync, or any helper
// whose summary says it returns a fresh op) must reach Wait on every path
// of the issuing function — including error bails. An un-Waited op leaks a
// background goroutine moving bytes into buffers the caller is about to
// recycle, desynchronizes the fault injector's per-rank occurrence
// counters, and loses the op's virtual completion time from the rank clock;
// none of those fail loudly.
//
// The analysis is path-sensitive and interprocedural (it requires the
// module engine and is a no-op without it):
//
//   - An obligation starts when an AsyncOp-returning call is bound to a
//     local, or stored into a field of a local struct (pend.op = ... — the
//     pipelined pattern; custody follows the root local).
//   - It is discharged by op.Wait(), by passing the handle (or a field path
//     rooted at it) to a function whose summary Waits that parameter
//     (mpiio's waitPF), by a local closure that does either (the finish()
//     pattern), or by returning the handle — ownership transfers to the
//     caller.
//   - A branch whose condition mentions the handle's root is treated as the
//     owner's nil-guard: a discharge on one arm discharges the merge (the
//     `if op != nil { op.Wait() }` shape), and an early return inside such
//     a branch is not reported.
//   - Loop bodies are analyzed twice, the second pass seeded with the
//     first's fall-through state, so the depth-2 pipeline's loop-carried
//     obligation (issue in round r, Wait at the round r+1 boundary) is
//     checked against every in-loop return path.
//
// Deliberate exceptions carry //nclint:allow=asyncwait -- <why> on the
// reported line.
func AsyncWait() *Checker {
	return &Checker{
		Name: "asyncwait",
		Doc:  "every issued pfs.AsyncOp must reach Wait on all paths (interprocedural mode only)",
		Run:  runAsyncWait,
	}
}

func runAsyncWait(pass *Pass) {
	if pass.Engine == nil {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if decl, ok := n.(*ast.FuncDecl); ok && decl.Body != nil {
				checkAsyncFunc(pass, decl, decl.Body)
			}
			// Function literals are analyzed through the enclosing
			// function's closure pre-scan: an op issued into a captured
			// variable is the enclosing function's obligation.
			return true
		})
	}
}

// issuesAsyncOp reports whether the call's static callee returns a fresh
// *pfs.AsyncOp.
func issuesAsyncOp(pass *Pass, call *ast.CallExpr) bool {
	fn := pass.Callee(call)
	return fn != nil && returnsAsyncOp(fn)
}

// asyncOpCallIn unwraps parens around an AsyncOp-returning call.
func asyncOpCallIn(pass *Pass, e ast.Expr) *ast.CallExpr {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && issuesAsyncOp(pass, call) {
		return call
	}
	return nil
}

// awClosure is the effect of one local closure on the enclosing function's
// obligations: roots it waits, roots it issues fresh ops into.
type awClosure struct {
	waits  []types.Object
	issues []types.Object
}

type awState map[types.Object]bool

func (s awState) clone() awState {
	c := awState{}
	for k := range s {
		c[k] = true
	}
	return c
}

type awAnalysis struct {
	pass     *Pass
	fnRange  [2]token.Pos // the function's full extent; locals live inside
	deferred map[types.Object]bool
	reported map[types.Object]bool
	closures map[types.Object]*awClosure
}

func checkAsyncFunc(pass *Pass, decl *ast.FuncDecl, body *ast.BlockStmt) {
	a := &awAnalysis{
		pass:     pass,
		fnRange:  [2]token.Pos{decl.Pos(), decl.End()},
		deferred: map[types.Object]bool{},
		reported: map[types.Object]bool{},
		closures: map[types.Object]*awClosure{},
	}
	a.prescanClosures(body)
	end, terminated := a.flow(body.List, awState{}, nil)
	if !terminated {
		a.reportLive(end, body.Rbrace, "function end", nil)
	}
}

// isLocal reports whether obj is declared inside the analyzed function
// (parameters included).
func (a *awAnalysis) isLocal(obj types.Object) bool {
	return obj != nil && obj.Pos() >= a.fnRange[0] && obj.Pos() <= a.fnRange[1]
}

// prescanClosures records, for every closure bound to a local name, which
// enclosing-function roots it waits and which it issues fresh ops into.
func (a *awAnalysis) prescanClosures(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		fl, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		clObj := a.pass.Pkg.Info.ObjectOf(id)
		if clObj == nil {
			return true
		}
		cl := &awClosure{}
		outer := func(obj types.Object) bool {
			// Captured: declared in the enclosing function but not inside
			// the closure literal itself.
			return a.isLocal(obj) && !(obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End())
		}
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				for _, obj := range a.waitTargets(m) {
					if outer(obj) {
						cl.waits = append(cl.waits, obj)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range m.Rhs {
					if i >= len(m.Lhs) || asyncOpCallIn(a.pass, rhs) == nil {
						continue
					}
					if root := argRootObj(a.pass.Pkg, m.Lhs[i]); root != nil && outer(root) {
						cl.issues = append(cl.issues, root)
					}
				}
			}
			return true
		})
		if len(cl.waits) > 0 || len(cl.issues) > 0 {
			a.closures[clObj] = cl
		}
		return true
	})
}

// waitTargets returns the roots a single call discharges: the receiver root
// of an AsyncOp Wait call, and every argument root passed into a
// WaitsParam position of the callee's summary.
func (a *awAnalysis) waitTargets(call *ast.CallExpr) []types.Object {
	var out []types.Object
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" &&
		isAsyncOpType(a.pass.TypeOf(sel.X)) {
		if obj := argRootObj(a.pass.Pkg, sel.X); obj != nil {
			out = append(out, obj)
		}
	}
	fn := a.pass.Callee(call)
	if fn == nil {
		return out
	}
	sum := a.pass.Engine.Summary(fn)
	if sum == nil || sum.WaitsParams == 0 {
		return out
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return out
	}
	for j, arg := range call.Args {
		k := paramIndexOfArg(sig, j)
		if k < 0 || !sum.WaitsParam(k) {
			continue
		}
		if obj := argRootObj(a.pass.Pkg, arg); obj != nil {
			out = append(out, obj)
		}
	}
	return out
}

// applyEffects walks the expressions of one statement (not descending into
// function literals), applying discharges (Wait calls, waiting callees,
// closure invocations) and reporting ops issued into no handle at all.
func (a *awAnalysis) applyEffects(n ast.Node, live awState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, obj := range a.waitTargets(call) {
			delete(live, obj)
		}
		// Invoking a local closure applies its recorded effect: waits
		// first, then fresh issues.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if cl := a.closures[a.pass.Pkg.Info.ObjectOf(id)]; cl != nil {
				for _, obj := range cl.waits {
					delete(live, obj)
				}
				for _, obj := range cl.issues {
					live[obj] = true
				}
			}
		}
		// An AsyncOp-returning call in argument position: fine if the
		// receiving parameter is waited by the callee, leaked otherwise.
		fn := a.pass.Callee(call)
		var sig *types.Signature
		if fn != nil {
			sig, _ = fn.Type().(*types.Signature)
		}
		for j, arg := range call.Args {
			inner := asyncOpCallIn(a.pass, arg)
			if inner == nil {
				continue
			}
			waited := false
			if fn != nil && sig != nil {
				if sum := a.pass.Engine.Summary(fn); sum != nil {
					if k := paramIndexOfArg(sig, j); k >= 0 && sum.WaitsParam(k) {
						waited = true
					}
				}
			}
			if !waited {
				a.pass.Reportf(inner.Pos(), "AsyncOp is passed to a function that never Waits it; bind the handle and Wait it")
			}
		}
		return true
	})
}

// flow walks stmts in order with the set of live (un-Waited) obligations.
// guard holds the objects mentioned by enclosing branch conditions — the
// nil-guard shapes whose early returns are not reported.
func (a *awAnalysis) flow(stmts []ast.Stmt, live awState, guard map[types.Object]bool) (awState, bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			a.applyEffects(s, live)
			a.assign(s, live)
		case *ast.DeclStmt:
			a.applyEffects(s, live)
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, val := range vs.Values {
							if i < len(vs.Names) {
								a.trackValue(vs.Names[i], val, live)
							}
						}
					}
				}
			}
		case *ast.ExprStmt:
			a.applyEffects(s, live)
			if call := asyncOpCallIn(a.pass, s.X); call != nil {
				a.pass.Reportf(call.Pos(), "AsyncOp result is discarded; bind the handle and Wait it (the issued I/O is unjoinable)")
			}
		case *ast.DeferStmt:
			a.deferStmt(s)
		case *ast.GoStmt:
			// A goroutine's Wait is not ordered before this function's
			// return; it neither discharges nor issues here.
		case *ast.ReturnStmt:
			a.applyEffects(s, live)
			for _, res := range s.Results {
				// Returning the handle (or a struct carrying it) transfers
				// ownership to the caller.
				if src := argRootObj(a.pass.Pkg, res); src != nil {
					delete(live, src)
				}
			}
			a.reportLive(live, s.Pos(), "return", guard)
			return live, true
		case *ast.IfStmt:
			if s.Init != nil {
				var term bool
				live, term = a.flow([]ast.Stmt{s.Init}, live, guard)
				if term {
					return live, true
				}
			}
			a.applyEffects(s.Cond, live)
			condObjs := identObjsIn(a.pass, s.Cond)
			branchGuard := unionGuard(guard, condObjs)
			thenState, thenTerm := a.flow(s.Body.List, live.clone(), branchGuard)
			var elseState awState
			elseTerm := false
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseState, elseTerm = a.flow(e.List, live.clone(), branchGuard)
			case *ast.IfStmt:
				elseState, elseTerm = a.flow([]ast.Stmt{e}, live.clone(), branchGuard)
			default:
				elseState = live.clone()
			}
			if thenTerm && elseTerm {
				return live, true
			}
			merged := awState{}
			if !thenTerm {
				for k := range thenState {
					merged[k] = true
				}
			}
			if !elseTerm {
				for k := range elseState {
					merged[k] = true
				}
			}
			// Nil-guard refinement: an obligation mentioned by the
			// condition and discharged on a surviving arm is discharged.
			for obj := range condObjs {
				if !merged[obj] {
					continue
				}
				if (!thenTerm && !thenState[obj]) || (!elseTerm && !elseState[obj]) {
					delete(merged, obj)
				}
			}
			live = merged
		case *ast.BlockStmt:
			var term bool
			live, term = a.flow(s.List, live, guard)
			if term {
				return live, true
			}
		case *ast.ForStmt:
			if s.Init != nil {
				var term bool
				live, term = a.flow([]ast.Stmt{s.Init}, live, guard)
				if term {
					return live, true
				}
			}
			live = a.loopFlow(s.Body.List, live, guard)
		case *ast.RangeStmt:
			live = a.loopFlow(s.Body.List, live, guard)
		case *ast.SwitchStmt:
			a.caseFlowAW(stmtClauses(s.Body), live, guard)
		case *ast.TypeSwitchStmt:
			a.caseFlowAW(stmtClauses(s.Body), live, guard)
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					st, _ := a.flow(cc.Body, live.clone(), guard)
					for k := range st {
						live[k] = true
					}
				}
			}
		case *ast.LabeledStmt:
			var term bool
			live, term = a.flow([]ast.Stmt{s.Stmt}, live, guard)
			if term {
				return live, true
			}
		}
	}
	return live, false
}

// loopFlow analyzes a loop body twice: the first pass with the entry state
// (iteration 1), the second seeded with the first's fall-through state, so
// loop-carried obligations are checked against every in-loop return. The
// result is the union of both fall-through states.
func (a *awAnalysis) loopFlow(body []ast.Stmt, live awState, guard map[types.Object]bool) awState {
	first, _ := a.flow(body, live.clone(), guard)
	carried := live.clone()
	for k := range first {
		carried[k] = true
	}
	second, _ := a.flow(body, carried.clone(), guard)
	out := live
	for k := range first {
		out[k] = true
	}
	for k := range second {
		out[k] = true
	}
	return out
}

func (a *awAnalysis) caseFlowAW(clauses []*ast.CaseClause, live awState, guard map[types.Object]bool) {
	for _, cc := range clauses {
		st, _ := a.flow(cc.Body, live.clone(), guard)
		for k := range st {
			live[k] = true
		}
	}
}

// assign tracks obligations created by this statement's bindings.
func (a *awAnalysis) assign(s *ast.AssignStmt, live awState) {
	for i, rhs := range s.Rhs {
		if i >= len(s.Lhs) {
			break
		}
		if id, ok := s.Lhs[i].(*ast.Ident); ok {
			a.trackValue(id, rhs, live)
			continue
		}
		// pend.op = f.pf.WriteVecAsync(...): custody under the root local.
		if call := asyncOpCallIn(a.pass, rhs); call != nil {
			root := argRootObj(a.pass.Pkg, s.Lhs[i])
			if a.isLocal(root) {
				live[root] = true
				continue
			}
			a.pass.Reportf(call.Pos(), "AsyncOp is stored outside the function's locals; Wait it locally or suppress with //nclint:allow=asyncwait -- <who waits it>")
		}
	}
}

// trackValue processes `id = value` for obligation starts and moves.
func (a *awAnalysis) trackValue(id *ast.Ident, value ast.Expr, live awState) {
	if call := asyncOpCallIn(a.pass, value); call != nil {
		obj := a.pass.Pkg.Info.ObjectOf(id)
		if obj == nil {
			a.pass.Reportf(call.Pos(), "AsyncOp result is discarded; bind the handle and Wait it (the issued I/O is unjoinable)")
			return
		}
		live[obj] = true
		return
	}
	// `cur := pend` moves a struct-rooted obligation to the copy's name.
	if src, ok := ast.Unparen(value).(*ast.Ident); ok {
		obj := a.pass.Pkg.Info.ObjectOf(src)
		idObj := a.pass.Pkg.Info.ObjectOf(id)
		if obj != nil && live[obj] && obj != idObj {
			delete(live, obj)
			if idObj != nil {
				live[idObj] = true
			}
		}
	}
}

// deferStmt registers deferred discharges: defer op.Wait(), defer
// waiting-fn(op), defer closure() or a deferred literal containing either.
func (a *awAnalysis) deferStmt(s *ast.DeferStmt) {
	mark := func(call *ast.CallExpr) {
		for _, obj := range a.waitTargets(call) {
			a.deferred[obj] = true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if cl := a.closures[a.pass.Pkg.Info.ObjectOf(id)]; cl != nil {
				for _, obj := range cl.waits {
					a.deferred[obj] = true
				}
			}
		}
	}
	if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				mark(call)
			}
			return true
		})
		return
	}
	mark(s.Call)
}

// identObjsIn collects the objects of identifiers mentioned in an
// expression (for the nil-guard refinement).
func identObjsIn(pass *Pass, e ast.Expr) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Pkg.Info.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func unionGuard(a, b map[types.Object]bool) map[types.Object]bool {
	out := map[types.Object]bool{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// reportLive reports every obligation that reaches `where` un-Waited.
func (a *awAnalysis) reportLive(live awState, pos token.Pos, where string, guard map[types.Object]bool) {
	for obj := range live {
		if a.deferred[obj] || a.reported[obj] || guard[obj] {
			continue
		}
		a.reported[obj] = true
		a.pass.Reportf(pos, "AsyncOp %s reaches %s without Wait (in-flight async I/O leaked: buffers may be recycled under the background goroutine and the rank clock never sees the completion)", obj.Name(), where)
	}
}
