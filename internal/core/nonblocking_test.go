package core

import (
	"errors"
	"fmt"
	"testing"

	"pnetcdf/internal/cdf"
	"pnetcdf/internal/fault"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/nctype"
)

// A WaitAll that fails must consume the queue, so a retry after the fault
// clears runs an empty batch instead of double-applying the writes.
func TestWaitAllErrorClearsQueueNoDuplicateWrite(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, _, grid, err := createStandard(c, fsys, "waerr.nc")
		if err != nil {
			return err
		}
		start := []int64{int64(c.Rank() * 2), 0}
		count := []int64{2, 8}
		baseline := make([]int32, 16)
		for i := range baseline {
			baseline[i] = int32(100 + c.Rank()*16 + i)
		}
		if err := d.PutVaraAll(grid, start, count, baseline); err != nil {
			return err
		}
		// Every subsequent pfs write fails; queue an update and watch the
		// fused collective write fail identically on all ranks.
		c.Barrier()
		if c.Rank() == 0 {
			fsys.SetFault(fault.New(fault.Config{Seed: 11, WriteErrRate: 1}))
		}
		c.Barrier()
		updated := make([]int32, 16)
		for i := range updated {
			updated[i] = int32(-(i + 1))
		}
		if _, err := d.IPutVara(grid, start, count, updated); err != nil {
			return err
		}
		werr := d.WaitAll()
		if werr == nil {
			return errors.New("WaitAll with failing writes returned nil")
		}
		if !errors.Is(werr, fault.ErrRetriesExhausted) && !errors.Is(werr, mpi.ErrPeerFailed) {
			return fmt.Errorf("unexpected WaitAll error: %v", werr)
		}
		if n := d.PendingRequests(); n != 0 {
			return fmt.Errorf("queue holds %d requests after failed WaitAll", n)
		}
		// Fault clears. Recover with a blocking write of known values, then
		// retry WaitAll: if the failed batch were still queued, the retry
		// would replay `updated` over the recovery data.
		c.Barrier()
		if c.Rank() == 0 {
			fsys.SetFault(nil)
		}
		c.Barrier()
		recovery := make([]int32, 16)
		for i := range recovery {
			recovery[i] = int32(500 + c.Rank()*16 + i)
		}
		if err := d.PutVaraAll(grid, start, count, recovery); err != nil {
			return err
		}
		if err := d.WaitAll(); err != nil {
			return fmt.Errorf("retried WaitAll after fault cleared: %v", err)
		}
		got := make([]int32, 16)
		if err := d.GetVaraAll(grid, start, count, got); err != nil {
			return err
		}
		for i := range got {
			if got[i] != recovery[i] {
				return fmt.Errorf("rank %d: grid[%d] = %d after retried WaitAll, want recovery value %d (duplicate write replayed?)",
					c.Rank(), i, got[i], recovery[i])
			}
		}
		return d.Close()
	})
}

// IPutVara of out-of-range values must behave like the blocking path:
// wrapped values land in the file and NC_ERANGE is reported — deferred to
// WaitAll rather than dropped.
func TestNonblockingRangeErrorParity(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, _, grid, err := createStandard(c, fsys, "range.nc")
		if err != nil {
			return err
		}
		huge := []int64{1 << 40, -3, 1<<40 + 7, 4, 5, 6, 7, 8}
		count := []int64{1, 8}
		// Blocking reference: rows 0..1.
		bStart := []int64{int64(c.Rank()), 0}
		if err := d.PutVaraAll(grid, bStart, count, huge); !errors.Is(err, cdf.ErrRange) {
			return fmt.Errorf("blocking PutVaraAll out-of-range: %v", err)
		}
		// Nonblocking path: rows 2..3, same values.
		nbStart := []int64{int64(2 + c.Rank()), 0}
		if _, err := d.IPutVara(grid, nbStart, count, huge); err != nil {
			return fmt.Errorf("IPutVara must defer the range error, got %v", err)
		}
		if err := d.WaitAll(); !errors.Is(err, cdf.ErrRange) {
			return fmt.Errorf("WaitAll after out-of-range IPutVara: %v", err)
		}
		if n := d.PendingRequests(); n != 0 {
			return fmt.Errorf("queue holds %d requests after WaitAll", n)
		}
		blocking := make([]int32, 8)
		if err := d.GetVaraAll(grid, bStart, count, blocking); err != nil {
			return err
		}
		nonblocking := make([]int32, 8)
		if err := d.GetVaraAll(grid, nbStart, count, nonblocking); err != nil {
			return err
		}
		for i := range blocking {
			if blocking[i] != nonblocking[i] {
				return fmt.Errorf("rank %d elem %d: blocking wrapped to %d, nonblocking to %d",
					c.Rank(), i, blocking[i], nonblocking[i])
			}
		}
		return d.Close()
	})
}

// IGetVara/WaitAll must serve prefetched variables from the local copy, like
// the blocking read path does.
func TestWaitAllServesPrefetchedReads(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, _, grid, err := createStandard(c, fsys, "pfnb.nc")
		if err != nil {
			return err
		}
		vals := make([]int32, 32)
		for i := range vals {
			vals[i] = int32(i * 7)
		}
		if err := d.PutVaraAll(grid, []int64{0, 0}, []int64{4, 8}, vals); err != nil {
			return err
		}
		if err := d.Close(); err != nil {
			return err
		}
		info := mpi.NewInfo().Set("nc_prefetch_vars", "grid")
		r, err := Open(c, fsys, "pfnb.nc", nctype.NoWrite, info)
		if err != nil {
			return err
		}
		if len(r.PrefetchedVars()) != 1 {
			return fmt.Errorf("prefetched %v", r.PrefetchedVars())
		}
		// Many queued reads served from cache must cost ~no virtual time
		// (a file read would pay pfs latency every WaitAll).
		t0 := c.Clock()
		got := make([]int32, 8)
		for i := 0; i < 50; i++ {
			row := int64(i % 4)
			if _, err := r.IGetVara(grid, []int64{row, 0}, []int64{1, 8}, got); err != nil {
				return err
			}
			if err := r.WaitAll(); err != nil {
				return err
			}
			for j := range got {
				if got[j] != int32((int(row)*8+j)*7) {
					return fmt.Errorf("cached IGetVara row %d = %v", row, got)
				}
			}
		}
		if cached := c.Clock() - t0; cached > 0.01 {
			return fmt.Errorf("cached nonblocking reads cost %.4fs of virtual time", cached)
		}
		return r.Close()
	})
}

// A blocking read of a variable with a queued (un-waited) write would
// observe stale file bytes; the guard turns that silent staleness into
// nctype.ErrPending on every rank, even when only one rank has the queued
// write.
func TestBlockingReadDuringPendingWriteRefused(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, _, grid, err := createStandard(c, fsys, "guard.nc")
		if err != nil {
			return err
		}
		if err := d.PutVaraAll(grid, []int64{0, 0}, []int64{4, 8}, make([]int32, 32)); err != nil {
			return err
		}
		fresh := []int32{9, 9, 9, 9, 9, 9, 9, 9}
		if c.Rank() == 0 {
			if _, err := d.IPutVara(grid, []int64{0, 0}, []int64{1, 8}, fresh); err != nil {
				return err
			}
		}
		// Collective read: all ranks must agree to refuse, or the rank
		// without a queued write would proceed into the collective alone.
		got := make([]int32, 8)
		if err := d.GetVaraAll(grid, []int64{1, 0}, []int64{1, 8}, got); !errors.Is(err, nctype.ErrPending) {
			return fmt.Errorf("rank %d: collective read during pending write: %v", c.Rank(), err)
		}
		// Independent read: the guard is local to the rank with the queue.
		if err := d.BeginIndepData(); err != nil {
			return err
		}
		ierr := d.GetVara(grid, []int64{1, 0}, []int64{1, 8}, got)
		if c.Rank() == 0 {
			if !errors.Is(ierr, nctype.ErrPending) {
				return fmt.Errorf("rank 0 independent read during pending write: %v", ierr)
			}
		} else if ierr != nil {
			return fmt.Errorf("rank %d independent read with clean queue: %v", c.Rank(), ierr)
		}
		if err := d.EndIndepData(); err != nil {
			return err
		}
		// After WaitAll lands the write, the read succeeds and sees it.
		if err := d.WaitAll(); err != nil {
			return err
		}
		if err := d.GetVaraAll(grid, []int64{0, 0}, []int64{1, 8}, got); err != nil {
			return err
		}
		for i := range got {
			if got[i] != 9 {
				return fmt.Errorf("rank %d: grid row 0 = %v after WaitAll", c.Rank(), got)
			}
		}
		return d.Close()
	})
}
