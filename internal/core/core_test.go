package core

import (
	"errors"
	"fmt"
	"testing"

	"pnetcdf/internal/mpi"
	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/netcdf"
	"pnetcdf/internal/pfs"
)

func testFS() *pfs.FS { return pfs.New(pfs.DefaultConfig()) }

func runWorld(t *testing.T, n int, fn func(*mpi.Comm) error) {
	t.Helper()
	if err := mpi.Run(n, mpi.DefaultNet(), fn); err != nil {
		t.Fatalf("world of %d: %v", n, err)
	}
}

// createStandard builds the shared test dataset collectively:
//
//	dims: time(unlimited), y=4, x=8
//	vars: double flux(time,y,x); int grid(y,x)
func createStandard(c *mpi.Comm, fsys *pfs.FS, path string) (*Dataset, int, int, error) {
	d, err := Create(c, fsys, path, nctype.Clobber, nil)
	if err != nil {
		return nil, 0, 0, err
	}
	tdim, err := d.DefDim("time", 0)
	if err != nil {
		return nil, 0, 0, err
	}
	ydim, _ := d.DefDim("y", 4)
	xdim, _ := d.DefDim("x", 8)
	flux, err := d.DefVar("flux", nctype.Double, []int{tdim, ydim, xdim})
	if err != nil {
		return nil, 0, 0, err
	}
	grid, err := d.DefVar("grid", nctype.Int, []int{ydim, xdim})
	if err != nil {
		return nil, 0, 0, err
	}
	if err := d.PutAttr(GlobalID, "source", nctype.Char, "pnetcdf-go test"); err != nil {
		return nil, 0, 0, err
	}
	if err := d.PutAttr(flux, "units", nctype.Char, "W/m2"); err != nil {
		return nil, 0, 0, err
	}
	if err := d.EndDef(); err != nil {
		return nil, 0, 0, err
	}
	return d, flux, grid, nil
}

func TestCollectiveCreateWriteRead(t *testing.T) {
	fsys := testFS()
	const p = 4
	runWorld(t, p, func(c *mpi.Comm) error {
		d, flux, grid, err := createStandard(c, fsys, "std.nc")
		if err != nil {
			return err
		}
		// Each rank writes one row of grid.
		rows := []int64{int64(c.Rank())}
		_ = rows
		mine := make([]int32, 8)
		for i := range mine {
			mine[i] = int32(c.Rank()*100 + i)
		}
		if err := d.PutVaraAll(grid, []int64{int64(c.Rank()), 0}, []int64{1, 8}, mine); err != nil {
			return err
		}
		// Each rank writes its quarter of two flux records (Y partition).
		fx := make([]float64, 2*1*8)
		for i := range fx {
			fx[i] = float64(c.Rank()) + float64(i)/100
		}
		if err := d.PutVaraAll(flux, []int64{0, int64(c.Rank()), 0}, []int64{2, 1, 8}, fx); err != nil {
			return err
		}
		if d.NumRecs() != 2 {
			return fmt.Errorf("NumRecs = %d", d.NumRecs())
		}
		// Collective read back with a different decomposition (X partition).
		gx := make([]float64, 2*4*2)
		if err := d.GetVaraAll(flux, []int64{0, 0, int64(c.Rank() * 2)}, []int64{2, 4, 2}, gx); err != nil {
			return err
		}
		// Check one element: record 1, row 2, col rank*2 -> written by rank 2
		// at local index (1*8 + rank*2).
		want := 2.0 + float64(8+c.Rank()*2)/100
		if gx[1*4*2+2*2] != want {
			return fmt.Errorf("rank %d: cross-read got %v, want %v", c.Rank(), gx[1*4*2+2*2], want)
		}
		return d.Close()
	})
}

func TestParallelWriteSerialRead(t *testing.T) {
	// The headline compatibility property: a file written by the parallel
	// library is a plain netCDF file readable by the serial library.
	fsys := testFS()
	const p = 4
	runWorld(t, p, func(c *mpi.Comm) error {
		d, flux, grid, err := createStandard(c, fsys, "compat.nc")
		if err != nil {
			return err
		}
		mine := make([]int32, 8)
		for i := range mine {
			mine[i] = int32(c.Rank()*10 + i)
		}
		if err := d.PutVaraAll(grid, []int64{int64(c.Rank()), 0}, []int64{1, 8}, mine); err != nil {
			return err
		}
		fx := make([]float64, 8)
		for i := range fx {
			fx[i] = float64(c.Rank()*1000 + i)
		}
		if err := d.PutVaraAll(flux, []int64{0, int64(c.Rank()), 0}, []int64{1, 1, 8}, fx); err != nil {
			return err
		}
		return d.Close()
	})
	// Serial open through the pfs adapter.
	pf, _, err := fsys.Open("compat.nc", 0)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := netcdf.Open(pfs.NewSerialFile(pf, 0), nctype.NoWrite)
	if err != nil {
		t.Fatalf("serial open of parallel file: %v", err)
	}
	if sd.NumRecs() != 1 || sd.NumVars() != 2 || sd.NumDims() != 3 {
		t.Fatalf("serial view: recs=%d vars=%d dims=%d", sd.NumRecs(), sd.NumVars(), sd.NumDims())
	}
	_, av, err := sd.GetAttr(netcdf.GlobalID, "source")
	if err != nil || string(av.([]byte)) != "pnetcdf-go test" {
		t.Fatalf("attr: %v %v", av, err)
	}
	grid := make([]int32, 32)
	if err := sd.GetVar(sd.VarID("grid"), grid); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		for i := 0; i < 8; i++ {
			if grid[r*8+i] != int32(r*10+i) {
				t.Fatalf("grid[%d,%d] = %d", r, i, grid[r*8+i])
			}
		}
	}
	flux := make([]float64, 32)
	if err := sd.GetVara(sd.VarID("flux"), []int64{0, 0, 0}, []int64{1, 4, 8}, flux); err != nil {
		t.Fatal(err)
	}
	if flux[2*8+3] != 2003 {
		t.Fatalf("flux[0,2,3] = %v", flux[2*8+3])
	}
}

func TestSerialWriteParallelRead(t *testing.T) {
	// And the reverse: serial writes, parallel reads.
	fsys := testFS()
	pf, _ := fsys.Create("s2p.nc", 0)
	sd, err := netcdf.Create(pfs.NewSerialFile(pf, 0), nctype.Clobber)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := sd.DefDim("x", 16)
	v, _ := sd.DefVar("v", nctype.Float, []int{x})
	if err := sd.EndDef(); err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, 16)
	for i := range vals {
		vals[i] = float32(i) * 1.5
	}
	if err := sd.PutVar(v, vals); err != nil {
		t.Fatal(err)
	}
	if err := sd.Close(); err != nil {
		t.Fatal(err)
	}
	runWorld(t, 4, func(c *mpi.Comm) error {
		d, err := Open(c, fsys, "s2p.nc", nctype.NoWrite, nil)
		if err != nil {
			return err
		}
		got := make([]float32, 4)
		if err := d.GetVaraAll(d.VarID("v"), []int64{int64(c.Rank() * 4)}, []int64{4}, got); err != nil {
			return err
		}
		for i := range got {
			want := float32(c.Rank()*4+i) * 1.5
			if got[i] != want {
				return fmt.Errorf("rank %d: [%d] = %v, want %v", c.Rank(), i, got[i], want)
			}
		}
		return d.Close()
	})
}

func TestHeaderBroadcastOnOpen(t *testing.T) {
	fsys := testFS()
	runWorld(t, 3, func(c *mpi.Comm) error {
		d, _, _, err := createStandard(c, fsys, "h.nc")
		if err != nil {
			return err
		}
		if err := d.Close(); err != nil {
			return err
		}
		r, err := Open(c, fsys, "h.nc", nctype.NoWrite, nil)
		if err != nil {
			return err
		}
		// Inquiry is local; every rank must see identical structure.
		if r.NumVars() != 2 || r.VarID("flux") < 0 || r.DimID("x") < 0 {
			return fmt.Errorf("rank %d: header not replicated", c.Rank())
		}
		name, l, err := r.InqDim(r.DimID("y"))
		if err != nil || name != "y" || l != 4 {
			return fmt.Errorf("InqDim: %v %v %v", name, l, err)
		}
		_, typ, dims, err := r.InqVar(r.VarID("flux"))
		if err != nil || typ != nctype.Double || len(dims) != 3 {
			return fmt.Errorf("InqVar: %v %v %v", typ, dims, err)
		}
		return r.Close()
	})
}

func TestDefineConsistencyCheck(t *testing.T) {
	fsys := testFS()
	err := mpi.Run(3, mpi.DefaultNet(), func(c *mpi.Comm) error {
		d, err := Create(c, fsys, "bad.nc", nctype.Clobber, nil)
		if err != nil {
			return err
		}
		// Rank 1 defines a different dimension size: EndDef must fail
		// everywhere with the consistency error.
		size := int64(10)
		if c.Rank() == 1 {
			size = 20
		}
		if _, err := d.DefDim("x", size); err != nil {
			return err
		}
		if err := d.EndDef(); !errors.Is(err, nctype.ErrConsistency) {
			return fmt.Errorf("EndDef: %v, want consistency error", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndependentMode(t *testing.T) {
	fsys := testFS()
	runWorld(t, 4, func(c *mpi.Comm) error {
		d, _, grid, err := createStandard(c, fsys, "indep.nc")
		if err != nil {
			return err
		}
		// Independent call in collective mode is an error.
		if err := d.PutVara(grid, []int64{0, 0}, []int64{1, 1}, []int32{1}); !errors.Is(err, nctype.ErrCollMode) {
			return fmt.Errorf("indep call in coll mode: %v", err)
		}
		if err := d.BeginIndepData(); err != nil {
			return err
		}
		// Collective call in independent mode is an error.
		if err := d.PutVaraAll(grid, []int64{0, 0}, []int64{1, 1}, []int32{1}); !errors.Is(err, nctype.ErrIndepMode) {
			return fmt.Errorf("coll call in indep mode: %v", err)
		}
		// Only rank 2 writes, independently.
		if c.Rank() == 2 {
			if err := d.PutVara(grid, []int64{3, 0}, []int64{1, 8}, []int32{9, 9, 9, 9, 9, 9, 9, 9}); err != nil {
				return err
			}
		}
		if err := d.EndIndepData(); err != nil {
			return err
		}
		got := make([]int32, 8)
		if err := d.GetVaraAll(grid, []int64{3, 0}, []int64{1, 8}, got); err != nil {
			return err
		}
		if got[0] != 9 || got[7] != 9 {
			return fmt.Errorf("rank %d: independent write not visible: %v", c.Rank(), got)
		}
		return d.Close()
	})
}

func TestIndependentRecordGrowthReconciled(t *testing.T) {
	fsys := testFS()
	runWorld(t, 3, func(c *mpi.Comm) error {
		d, flux, _, err := createStandard(c, fsys, "recs.nc")
		if err != nil {
			return err
		}
		if err := d.BeginIndepData(); err != nil {
			return err
		}
		// Each rank appends a different number of records independently.
		nrec := int64(c.Rank() + 1)
		buf := make([]float64, 4*8)
		for r := int64(0); r < nrec; r++ {
			if err := d.PutVara(flux, []int64{r, 0, 0}, []int64{1, 4, 8}, buf); err != nil {
				return err
			}
		}
		if err := d.EndIndepData(); err != nil {
			return err
		}
		// After reconciliation everyone agrees on max (3 records).
		if d.NumRecs() != 3 {
			return fmt.Errorf("rank %d: NumRecs = %d, want 3", c.Rank(), d.NumRecs())
		}
		return d.Close()
	})
}

func TestFlexibleAPI(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, _, grid, err := createStandard(c, fsys, "flex.nc")
		if err != nil {
			return err
		}
		// Memory holds a 2x4 block embedded in a padded 2x6 buffer (like a
		// guard-cell array): rows at stride 6, offset 1.
		buf := make([]int32, 2*6)
		for r := 0; r < 2; r++ {
			for i := 0; i < 4; i++ {
				buf[r*6+1+i] = int32(c.Rank()*100 + r*10 + i)
			}
		}
		memtype, err := mpitype.Subarray([]int64{2, 6}, []int64{2, 4}, []int64{0, 1}, 1)
		if err != nil {
			return err
		}
		start := []int64{0, int64(c.Rank() * 4)}
		if err := d.PutVaraTypeAll(grid, start, []int64{2, 4}, buf, memtype); err != nil {
			return err
		}
		// Read back into the same padded layout.
		got := make([]int32, 2*6)
		if err := d.GetVaraTypeAll(grid, start, []int64{2, 4}, got, memtype); err != nil {
			return err
		}
		for r := 0; r < 2; r++ {
			for i := 0; i < 4; i++ {
				if got[r*6+1+i] != buf[r*6+1+i] {
					return fmt.Errorf("flex round trip at (%d,%d): %d != %d", r, i, got[r*6+1+i], buf[r*6+1+i])
				}
			}
			// Padding untouched on read path (freshly allocated, must stay 0).
			if got[r*6] != 0 || got[r*6+5] != 0 {
				return fmt.Errorf("guard cells overwritten: %v", got)
			}
		}
		// Size mismatch is rejected.
		small, _ := mpitype.Subarray([]int64{2, 6}, []int64{1, 4}, []int64{0, 1}, 1)
		if err := d.PutVaraTypeAll(grid, start, []int64{2, 4}, buf, small); !errors.Is(err, nctype.ErrCountMismatch) {
			return fmt.Errorf("size mismatch: %v", err)
		}
		return d.Close()
	})
}

func TestVarmAndVar1(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, _, grid, err := createStandard(c, fsys, "varm.nc")
		if err != nil {
			return err
		}
		// Collective varm: write a transposed 2x2 block per rank.
		vals := []int32{int32(10 + c.Rank()), int32(30 + c.Rank()), int32(20 + c.Rank()), int32(40 + c.Rank())}
		start := []int64{0, int64(c.Rank() * 2)}
		if err := d.PutVarmAll(grid, start, []int64{2, 2}, nil, []int64{1, 2}, vals); err != nil {
			return err
		}
		got := make([]int32, 4)
		if err := d.GetVaraAll(grid, start, []int64{2, 2}, got); err != nil {
			return err
		}
		// File order row-major: (0,0)=vals[0], (0,1)=vals[2], (1,0)=vals[1], (1,1)=vals[3]
		if got[0] != vals[0] || got[1] != vals[2] || got[2] != vals[1] || got[3] != vals[3] {
			return fmt.Errorf("varm wrote %v", got)
		}
		// Independent var1.
		if err := d.BeginIndepData(); err != nil {
			return err
		}
		if err := d.PutVar1(grid, []int64{3, int64(c.Rank())}, []int32{int32(-1 - c.Rank())}); err != nil {
			return err
		}
		one := make([]int32, 1)
		if err := d.GetVar1(grid, []int64{3, int64(c.Rank())}, one); err != nil {
			return err
		}
		if one[0] != int32(-1-c.Rank()) {
			return fmt.Errorf("var1 = %d", one[0])
		}
		if err := d.EndIndepData(); err != nil {
			return err
		}
		return d.Close()
	})
}

func TestStridedCollective(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, _, grid, err := createStandard(c, fsys, "stride.nc")
		if err != nil {
			return err
		}
		// Rank r writes columns r, r+2, r+4, r+6 of row 0.
		vals := []int32{int32(c.Rank()*1000 + 0), int32(c.Rank()*1000 + 1), int32(c.Rank()*1000 + 2), int32(c.Rank()*1000 + 3)}
		if err := d.PutVarsAll(grid, []int64{0, int64(c.Rank())}, []int64{1, 4}, []int64{1, 2}, vals); err != nil {
			return err
		}
		row := make([]int32, 8)
		if err := d.GetVaraAll(grid, []int64{0, 0}, []int64{1, 8}, row); err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			want := int32((i%2)*1000 + i/2)
			if row[i] != want {
				return fmt.Errorf("row[%d] = %d, want %d", i, row[i], want)
			}
		}
		return d.Close()
	})
}

func TestNonblockingBatch(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, err := Create(c, fsys, "nb.nc", nctype.Clobber, nil)
		if err != nil {
			return err
		}
		tdim, _ := d.DefDim("t", 0)
		xdim, _ := d.DefDim("x", 4)
		// Several record variables, the paper's record-batching scenario.
		var vars []int
		for i := 0; i < 5; i++ {
			v, err := d.DefVar(fmt.Sprintf("u%d", i), nctype.Float, []int{tdim, xdim})
			if err != nil {
				return err
			}
			vars = append(vars, v)
		}
		if err := d.EndDef(); err != nil {
			return err
		}
		// Queue one record of each variable, then write them all at once.
		half := []int64{int64(c.Rank() * 2)}
		_ = half
		for i, v := range vars {
			vals := []float32{float32(i*10 + c.Rank()), float32(i*10 + c.Rank() + 1)}
			if _, err := d.IPutVara(v, []int64{0, int64(c.Rank() * 2)}, []int64{1, 2}, vals); err != nil {
				return err
			}
		}
		if d.PendingRequests() != 5 {
			return fmt.Errorf("pending = %d", d.PendingRequests())
		}
		if err := d.WaitAll(); err != nil {
			return err
		}
		if d.PendingRequests() != 0 {
			return fmt.Errorf("pending after WaitAll = %d", d.PendingRequests())
		}
		// Batched reads.
		bufs := make([][]float32, 5)
		for i, v := range vars {
			bufs[i] = make([]float32, 4)
			if _, err := d.IGetVara(v, []int64{0, 0}, []int64{1, 4}, bufs[i]); err != nil {
				return err
			}
		}
		if err := d.WaitAll(); err != nil {
			return err
		}
		for i := range bufs {
			want := []float32{float32(i * 10), float32(i*10 + 1), float32(i*10 + 1), float32(i*10 + 2)}
			for j := range want {
				if bufs[i][j] != want[j] {
					return fmt.Errorf("u%d = %v, want %v", i, bufs[i], want)
				}
			}
		}
		// Close with pending requests is refused.
		if _, err := d.IGetVara(vars[0], []int64{0, 0}, []int64{1, 1}, make([]float32, 1)); err != nil {
			return err
		}
		if err := d.Close(); err == nil {
			return errors.New("close with pending requests succeeded")
		}
		if err := d.WaitAll(); err != nil {
			return err
		}
		return d.Close()
	})
}

func TestRedefRelocationParallel(t *testing.T) {
	fsys := testFS()
	runWorld(t, 3, func(c *mpi.Comm) error {
		d, flux, grid, err := createStandard(c, fsys, "redef.nc")
		if err != nil {
			return err
		}
		g := make([]int32, 32)
		for i := range g {
			g[i] = int32(i)
		}
		if c.Rank() == 0 {
			// Root writes via independent mode for setup simplicity.
		}
		if err := d.PutVaraAll(grid, []int64{0, 0}, []int64{4, 8}, g); err != nil {
			return err
		}
		fx := make([]float64, 32)
		for i := range fx {
			fx[i] = float64(i) / 3
		}
		if err := d.PutVaraAll(flux, []int64{0, 0, 0}, []int64{1, 4, 8}, fx); err != nil {
			return err
		}
		if err := d.Redef(); err != nil {
			return err
		}
		if err := d.PutAttr(GlobalID, "history", nctype.Char,
			"grown by a long attribute .............................................."); err != nil {
			return err
		}
		if _, err := d.DefVar("extra", nctype.Short, []int{d.DimID("y")}); err != nil {
			return err
		}
		if err := d.EndDef(); err != nil {
			return err
		}
		got := make([]int32, 32)
		if err := d.GetVaraAll(grid, []int64{0, 0}, []int64{4, 8}, got); err != nil {
			return err
		}
		for i := range g {
			if got[i] != g[i] {
				return fmt.Errorf("grid lost after redef at %d: %d", i, got[i])
			}
		}
		gfx := make([]float64, 32)
		if err := d.GetVaraAll(flux, []int64{0, 0, 0}, []int64{1, 4, 8}, gfx); err != nil {
			return err
		}
		for i := range fx {
			if gfx[i] != fx[i] {
				return fmt.Errorf("flux lost after redef at %d: %v", i, gfx[i])
			}
		}
		return d.Close()
	})
}

func TestCreateModesAndErrors(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, err := Create(c, fsys, "m.nc", nctype.Clobber, nil)
		if err != nil {
			return err
		}
		if err := d.Close(); err != nil {
			return err
		}
		if _, err := Create(c, fsys, "m.nc", nctype.NoClobber, nil); err == nil {
			return errors.New("NoClobber create over existing file succeeded")
		}
		if _, err := Open(c, fsys, "absent.nc", nctype.NoWrite, nil); err == nil {
			return errors.New("open of absent file succeeded")
		}
		// Read-only enforcement.
		r, err := Open(c, fsys, "m.nc", nctype.NoWrite, nil)
		if err != nil {
			return err
		}
		if err := r.PutAttr(GlobalID, "a", nctype.Int, 1); !errors.Is(err, nctype.ErrPerm) {
			return fmt.Errorf("att on RO: %v", err)
		}
		if err := r.Redef(); !errors.Is(err, nctype.ErrPerm) {
			return fmt.Errorf("redef on RO: %v", err)
		}
		return r.Close()
	})
}

func TestHintsAffectLayout(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		info := mpi.NewInfo().
			Set("nc_header_align_size", "4096").
			Set("nc_var_align_size", "1024")
		d, err := Create(c, fsys, "hints.nc", nctype.Clobber, info)
		if err != nil {
			return err
		}
		x, _ := d.DefDim("x", 3) // 12-byte variable, forcing alignment gaps
		v1, _ := d.DefVar("a", nctype.Int, []int{x})
		v2, _ := d.DefVar("b", nctype.Int, []int{x})
		if err := d.EndDef(); err != nil {
			return err
		}
		h := d.Header()
		if h.Vars[v1].Begin%4096 != 0 {
			return fmt.Errorf("first var at %d, want 4096-aligned", h.Vars[v1].Begin)
		}
		if h.Vars[v2].Begin%1024 != 0 {
			return fmt.Errorf("second var at %d, want 1024-aligned", h.Vars[v2].Begin)
		}
		return d.Close()
	})
}

func TestFillModeParallel(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, err := Create(c, fsys, "fill.nc", nctype.Clobber, nil)
		if err != nil {
			return err
		}
		d.SetFill(true)
		x, _ := d.DefDim("x", 6)
		v, _ := d.DefVar("v", nctype.Float, []int{x})
		if err := d.EndDef(); err != nil {
			return err
		}
		got := make([]float32, 6)
		if err := d.GetVaraAll(v, []int64{0}, []int64{6}, got); err != nil {
			return err
		}
		for _, x := range got {
			if x != nctype.FillFloat {
				return fmt.Errorf("fill = %v", got)
			}
		}
		return d.Close()
	})
}

func TestManyRanksSmallWrites(t *testing.T) {
	// Stress the collective machinery with more ranks than data.
	fsys := testFS()
	runWorld(t, 9, func(c *mpi.Comm) error {
		d, err := Create(c, fsys, "many.nc", nctype.Clobber, nil)
		if err != nil {
			return err
		}
		x, _ := d.DefDim("x", 9)
		v, _ := d.DefVar("v", nctype.Int, []int{x})
		if err := d.EndDef(); err != nil {
			return err
		}
		if err := d.PutVaraAll(v, []int64{int64(c.Rank())}, []int64{1}, []int32{int32(c.Rank() * c.Rank())}); err != nil {
			return err
		}
		all := make([]int32, 9)
		if err := d.GetVaraAll(v, []int64{0}, []int64{9}, all); err != nil {
			return err
		}
		for i := range all {
			if all[i] != int32(i*i) {
				return fmt.Errorf("all = %v", all)
			}
		}
		return d.Close()
	})
}

func TestPrefetchHint(t *testing.T) {
	fsys := testFS()
	runWorld(t, 3, func(c *mpi.Comm) error {
		d, _, grid, err := createStandard(c, fsys, "pf.nc")
		if err != nil {
			return err
		}
		vals := make([]int32, 32)
		for i := range vals {
			vals[i] = int32(i * 3)
		}
		if err := d.PutVaraAll(grid, []int64{0, 0}, []int64{4, 8}, vals); err != nil {
			return err
		}
		if err := d.Close(); err != nil {
			return err
		}
		info := mpi.NewInfo().Set("nc_prefetch_vars", "grid, nosuchvar")
		r, err := Open(c, fsys, "pf.nc", nctype.NoWrite, info)
		if err != nil {
			return err
		}
		if len(r.PrefetchedVars()) != 1 {
			return fmt.Errorf("prefetched %v", r.PrefetchedVars())
		}
		// Reads served from the local copy must still be exact, for every
		// access method.
		got := make([]int32, 8)
		if err := r.GetVaraAll(grid, []int64{2, 0}, []int64{1, 8}, got); err != nil {
			return err
		}
		for i := range got {
			if got[i] != int32((16+i)*3) {
				return fmt.Errorf("cached vara = %v", got)
			}
		}
		str := make([]int32, 4)
		if err := r.GetVarsAll(grid, []int64{0, 0}, []int64{1, 4}, []int64{1, 2}, str); err != nil {
			return err
		}
		if str[3] != 18 {
			return fmt.Errorf("cached vars = %v", str)
		}
		// Cached reads must be much cheaper than file reads: compare clocks.
		t0 := c.Clock()
		for i := 0; i < 50; i++ {
			if err := r.GetVaraAll(grid, []int64{0, 0}, []int64{4, 8}, vals); err != nil {
				return err
			}
		}
		cached := c.Clock() - t0
		if cached > 0.01 { // 50 cached reads must cost ~nothing
			return fmt.Errorf("cached reads cost %.4fs of virtual time", cached)
		}
		return r.Close()
	})
}

func TestPrefetchInvalidatedByWrite(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, _, grid, err := createStandard(c, fsys, "pfi.nc")
		if err != nil {
			return err
		}
		if err := d.PutVaraAll(grid, []int64{0, 0}, []int64{4, 8}, make([]int32, 32)); err != nil {
			return err
		}
		if err := d.Close(); err != nil {
			return err
		}
		info := mpi.NewInfo().Set("nc_prefetch_vars", "grid")
		r, err := Open(c, fsys, "pfi.nc", nctype.Write, info)
		if err != nil {
			return err
		}
		// Collective write drops the copy everywhere; the next read sees the
		// new data from the file.
		if err := r.PutVaraAll(grid, []int64{0, 0}, []int64{1, 8},
			[]int32{9, 9, 9, 9, 9, 9, 9, 9}); err != nil {
			return err
		}
		if len(r.PrefetchedVars()) != 0 {
			return fmt.Errorf("cache survived write: %v", r.PrefetchedVars())
		}
		got := make([]int32, 8)
		if err := r.GetVaraAll(grid, []int64{0, 0}, []int64{1, 8}, got); err != nil {
			return err
		}
		if got[0] != 9 {
			return fmt.Errorf("read after invalidation = %v", got)
		}
		return r.Close()
	})
}
