package core

import (
	"fmt"

	"pnetcdf/internal/cdf"
	"pnetcdf/internal/nctype"
)

// RenameDim collectively renames a dimension (ncmpi_rename_dim). In data
// mode the new name may not grow the header; the root rewrites the header.
// Every process must call with the same arguments.
func (d *Dataset) RenameDim(dimid int, newName string) error {
	if d.closed {
		return nctype.ErrClosed
	}
	if d.ro {
		return nctype.ErrPerm
	}
	if dimid < 0 || dimid >= len(d.hdr.Dims) {
		return nctype.ErrNotDim
	}
	if err := cdf.CheckName(newName); err != nil {
		return err
	}
	if i := d.hdr.FindDim(newName); i >= 0 && i != dimid {
		return fmt.Errorf("%w: dimension %q", nctype.ErrNameInUse, newName)
	}
	if !d.define && len(newName) > len(d.hdr.Dims[dimid].Name) {
		return nctype.ErrNotInDefine
	}
	d.hdr.Dims[dimid].Name = newName
	if !d.define {
		return d.writeHeaderCollective()
	}
	return nil
}

// RenameVar collectively renames a variable (ncmpi_rename_var).
func (d *Dataset) RenameVar(varid int, newName string) error {
	if d.closed {
		return nctype.ErrClosed
	}
	if d.ro {
		return nctype.ErrPerm
	}
	if varid < 0 || varid >= len(d.hdr.Vars) {
		return nctype.ErrNotVar
	}
	if err := cdf.CheckName(newName); err != nil {
		return err
	}
	if i := d.hdr.FindVar(newName); i >= 0 && i != varid {
		return fmt.Errorf("%w: variable %q", nctype.ErrNameInUse, newName)
	}
	if !d.define && len(newName) > len(d.hdr.Vars[varid].Name) {
		return nctype.ErrNotInDefine
	}
	d.hdr.Vars[varid].Name = newName
	if !d.define {
		return d.writeHeaderCollective()
	}
	return nil
}

// RenameAttr collectively renames an attribute (ncmpi_rename_att).
func (d *Dataset) RenameAttr(varid int, oldName, newName string) error {
	if d.closed {
		return nctype.ErrClosed
	}
	if d.ro {
		return nctype.ErrPerm
	}
	attrs, err := d.attrsOf(varid)
	if err != nil {
		return err
	}
	if err := cdf.CheckName(newName); err != nil {
		return err
	}
	i := cdf.FindAttr(*attrs, oldName)
	if i < 0 {
		return fmt.Errorf("%w: %q", nctype.ErrNotAtt, oldName)
	}
	if j := cdf.FindAttr(*attrs, newName); j >= 0 && j != i {
		return fmt.Errorf("%w: attribute %q", nctype.ErrNameInUse, newName)
	}
	if !d.define && len(newName) > len(oldName) {
		return nctype.ErrNotInDefine
	}
	(*attrs)[i].Name = newName
	if !d.define {
		return d.writeHeaderCollective()
	}
	return nil
}
