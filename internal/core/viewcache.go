package core

import (
	"encoding/binary"

	"pnetcdf/internal/access"
	"pnetcdf/internal/cdf"
	"pnetcdf/internal/mpitype"
)

// View cache: every put/get flattens its (start, count, stride) request into
// an MPI-IO file view, and applications overwhelmingly repeat the same
// access shape (a FLASH checkpoint writes 24 variables with the identical
// geometry every step). Flattening a strided request walks the full
// subarray, so caching the resulting Datatype per variable turns the repeat
// cost into a map lookup.
//
// NumRecs is deliberately NOT part of the key: FileSegments depends only on
// the variable layout (Begin, RecSize, shape) and the request geometry, not
// on how many records currently exist. Layout changes do invalidate — the
// cache is cleared when a define-mode transition recomputes the layout
// (EndDef), which also covers variable relocation.

// viewCacheMax bounds entries per dataset; beyond it the cache resets (shape
// churn this high means repeats are unlikely anyway).
const viewCacheMax = 64

type viewKey struct {
	varid int
	geom  string // start/count/stride, varint-packed
}

func geomKey(req access.Request) string {
	b := make([]byte, 0, 10*(len(req.Start)+len(req.Count)+len(req.Stride)))
	for _, v := range req.Start {
		b = binary.AppendUvarint(b, uint64(v))
	}
	for _, v := range req.Count {
		b = binary.AppendUvarint(b, uint64(v))
	}
	for _, v := range req.Stride {
		b = binary.AppendUvarint(b, uint64(v))
	}
	return string(b)
}

// fileView returns the flattened file view for req against variable v,
// consulting the per-dataset cache. Datatypes are immutable, so sharing one
// across calls (and with the MPI-IO layer) is safe.
func (d *Dataset) fileView(varid int, v *cdf.Var, req access.Request) (mpitype.Datatype, error) {
	key := viewKey{varid: varid, geom: geomKey(req)}
	if view, ok := d.views[key]; ok {
		return view, nil
	}
	view, err := access.FileView(d.hdr, v, req)
	if err != nil {
		return mpitype.Datatype{}, err
	}
	if d.views == nil || len(d.views) >= viewCacheMax {
		d.views = make(map[viewKey]mpitype.Datatype, 8)
	}
	d.views[key] = view
	return view, nil
}

// invalidateViews drops every cached view; called when the header layout
// (variable begins, record size) may have changed.
func (d *Dataset) invalidateViews() {
	d.views = nil
}
