package core

import (
	"pnetcdf/internal/access"
	"pnetcdf/internal/bufpool"
	"pnetcdf/internal/cdf"
	"pnetcdf/internal/iostat"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/netcdf"
	"pnetcdf/internal/span"
)

// --- Inquiry functions: purely local, no synchronization (paper §4.3) ---

// NumDims returns the number of dimensions.
func (d *Dataset) NumDims() int { return len(d.hdr.Dims) }

// NumVars returns the number of variables.
func (d *Dataset) NumVars() int { return len(d.hdr.Vars) }

// NumRecs returns this process's view of the record count (collective ops
// and Sync keep it agreed across processes).
func (d *Dataset) NumRecs() int64 { return d.hdr.NumRecs }

// UnlimitedDimID returns the record dimension's ID, or -1.
func (d *Dataset) UnlimitedDimID() int { return d.hdr.UnlimitedDimID() }

// DimID looks a dimension up by name (-1 if absent).
func (d *Dataset) DimID(name string) int { return d.hdr.FindDim(name) }

// VarID looks a variable up by name (-1 if absent).
func (d *Dataset) VarID(name string) int { return d.hdr.FindVar(name) }

// InqDim returns a dimension's name and length.
func (d *Dataset) InqDim(dimid int) (string, int64, error) {
	if dimid < 0 || dimid >= len(d.hdr.Dims) {
		return "", 0, nctype.ErrNotDim
	}
	dim := d.hdr.Dims[dimid]
	return dim.Name, dim.Len, nil
}

// InqVar returns a variable's name, type and dimension IDs.
func (d *Dataset) InqVar(varid int) (string, nctype.Type, []int, error) {
	if varid < 0 || varid >= len(d.hdr.Vars) {
		return "", 0, nil, nctype.ErrNotVar
	}
	v := &d.hdr.Vars[varid]
	return v.Name, v.Type, append([]int(nil), v.DimIDs...), nil
}

// VarShape returns a variable's current dimension lengths.
func (d *Dataset) VarShape(varid int) ([]int64, error) {
	if varid < 0 || varid >= len(d.hdr.Vars) {
		return nil, nctype.ErrNotVar
	}
	return d.hdr.VarShape(&d.hdr.Vars[varid]), nil
}

func (d *Dataset) varByID(varid int) (*cdf.Var, error) {
	if varid < 0 || varid >= len(d.hdr.Vars) {
		return nil, nctype.ErrNotVar
	}
	return &d.hdr.Vars[varid], nil
}

// --- High-level data access API (paper §4.1) ---
//
// Collective variants carry the All suffix and must be called by every
// process in the communicator; the non-All variants require independent
// data mode (BeginIndepData). All high-level routines delegate to the
// flexible implementation below, as in the PnetCDF implementation itself.

// PutVaraAll collectively writes the subarray (start, count).
func (d *Dataset) PutVaraAll(varid int, start, count []int64, data any) error {
	return d.putCommon(varid, start, count, nil, nil, data, true)
}

// GetVaraAll collectively reads the subarray (start, count).
func (d *Dataset) GetVaraAll(varid int, start, count []int64, data any) error {
	return d.getCommon(varid, start, count, nil, nil, data, true)
}

// PutVarsAll collectively writes a strided subarray.
func (d *Dataset) PutVarsAll(varid int, start, count, stride []int64, data any) error {
	return d.putCommon(varid, start, count, stride, nil, data, true)
}

// GetVarsAll collectively reads a strided subarray.
func (d *Dataset) GetVarsAll(varid int, start, count, stride []int64, data any) error {
	return d.getCommon(varid, start, count, stride, nil, data, true)
}

// PutVarmAll collectively writes a mapped strided subarray.
func (d *Dataset) PutVarmAll(varid int, start, count, stride, imap []int64, data any) error {
	return d.putCommon(varid, start, count, stride, imap, data, true)
}

// GetVarmAll collectively reads a mapped strided subarray.
func (d *Dataset) GetVarmAll(varid int, start, count, stride, imap []int64, data any) error {
	return d.getCommon(varid, start, count, stride, imap, data, true)
}

// PutVarAll collectively writes a whole variable.
func (d *Dataset) PutVarAll(varid int, data any) error {
	start, count, err := d.wholeVar(varid, data)
	if err != nil {
		return err
	}
	return d.putCommon(varid, start, count, nil, nil, data, true)
}

// GetVarAll collectively reads a whole variable.
func (d *Dataset) GetVarAll(varid int, data any) error {
	start, count, err := d.wholeVar(varid, data)
	if err != nil {
		return err
	}
	return d.getCommon(varid, start, count, nil, nil, data, true)
}

// PutVara independently writes the subarray (start, count); requires
// independent data mode.
func (d *Dataset) PutVara(varid int, start, count []int64, data any) error {
	return d.putCommon(varid, start, count, nil, nil, data, false)
}

// GetVara independently reads the subarray (start, count).
func (d *Dataset) GetVara(varid int, start, count []int64, data any) error {
	return d.getCommon(varid, start, count, nil, nil, data, false)
}

// PutVars independently writes a strided subarray.
func (d *Dataset) PutVars(varid int, start, count, stride []int64, data any) error {
	return d.putCommon(varid, start, count, stride, nil, data, false)
}

// GetVars independently reads a strided subarray.
func (d *Dataset) GetVars(varid int, start, count, stride []int64, data any) error {
	return d.getCommon(varid, start, count, stride, nil, data, false)
}

// PutVarm independently writes a mapped strided subarray.
func (d *Dataset) PutVarm(varid int, start, count, stride, imap []int64, data any) error {
	return d.putCommon(varid, start, count, stride, imap, data, false)
}

// GetVarm independently reads a mapped strided subarray.
func (d *Dataset) GetVarm(varid int, start, count, stride, imap []int64, data any) error {
	return d.getCommon(varid, start, count, stride, imap, data, false)
}

// PutVar1 independently writes one element.
func (d *Dataset) PutVar1(varid int, index []int64, data any) error {
	ones := onesLike(index)
	return d.putCommon(varid, index, ones, nil, nil, data, false)
}

// GetVar1 independently reads one element.
func (d *Dataset) GetVar1(varid int, index []int64, data any) error {
	ones := onesLike(index)
	return d.getCommon(varid, index, ones, nil, nil, data, false)
}

func onesLike(index []int64) []int64 {
	ones := make([]int64, len(index))
	for i := range ones {
		ones[i] = 1
	}
	return ones
}

func (d *Dataset) wholeVar(varid int, data any) ([]int64, []int64, error) {
	v, err := d.varByID(varid)
	if err != nil {
		return nil, nil, err
	}
	shape := d.hdr.VarShape(v)
	start := make([]int64, len(shape))
	if d.hdr.IsRecordVar(v) && len(shape) > 0 && shape[0] == 0 {
		inner := int64(1)
		for _, s := range shape[1:] {
			inner *= s
		}
		if inner > 0 {
			shape[0] = int64(cdf.SliceLen(data)) / inner
		}
	}
	return start, shape, nil
}

// --- Flexible API (paper §4.1): noncontiguous memory via MPI datatypes ---

// PutVaraTypeAll collectively writes (start, count) taking the elements of
// buf selected by memtype (element units), like ncmpi_put_vara_all with an
// MPI derived datatype. memtype.Size() must equal the request's element
// count.
func (d *Dataset) PutVaraTypeAll(varid int, start, count []int64, buf any, memtype mpitype.Datatype) error {
	return d.putFlex(varid, start, count, nil, buf, memtype.Segments(), memtype.Size(), true)
}

// GetVaraTypeAll collectively reads (start, count) scattering into the
// elements of buf selected by memtype.
func (d *Dataset) GetVaraTypeAll(varid int, start, count []int64, buf any, memtype mpitype.Datatype) error {
	return d.getFlex(varid, start, count, nil, buf, memtype.Segments(), memtype.Size(), true)
}

// PutVarsTypeAll is the strided flexible collective write.
func (d *Dataset) PutVarsTypeAll(varid int, start, count, stride []int64, buf any, memtype mpitype.Datatype) error {
	return d.putFlex(varid, start, count, stride, buf, memtype.Segments(), memtype.Size(), true)
}

// GetVarsTypeAll is the strided flexible collective read.
func (d *Dataset) GetVarsTypeAll(varid int, start, count, stride []int64, buf any, memtype mpitype.Datatype) error {
	return d.getFlex(varid, start, count, stride, buf, memtype.Segments(), memtype.Size(), true)
}

// PutVaraType is the independent flexible write.
func (d *Dataset) PutVaraType(varid int, start, count []int64, buf any, memtype mpitype.Datatype) error {
	return d.putFlex(varid, start, count, nil, buf, memtype.Segments(), memtype.Size(), false)
}

// GetVaraType is the independent flexible read.
func (d *Dataset) GetVaraType(varid int, start, count []int64, buf any, memtype mpitype.Datatype) error {
	return d.getFlex(varid, start, count, nil, buf, memtype.Segments(), memtype.Size(), false)
}

// putCommon routes the high-level calls: an imap turns into memory element
// segments; otherwise the buffer is used contiguously.
func (d *Dataset) putCommon(varid int, start, count, stride, imap []int64, data any, collective bool) error {
	if imap == nil {
		return d.putFlex(varid, start, count, stride, data, nil, -1, collective)
	}
	memsegs, err := access.MemSegments(count, imap)
	if err != nil {
		return err
	}
	return d.putFlex(varid, start, count, stride, data, memsegs, -1, collective)
}

func (d *Dataset) getCommon(varid int, start, count, stride, imap []int64, data any, collective bool) error {
	if imap == nil {
		return d.getFlex(varid, start, count, stride, data, nil, -1, collective)
	}
	memsegs, err := access.MemSegments(count, imap)
	if err != nil {
		return err
	}
	return d.getFlex(varid, start, count, stride, data, memsegs, -1, collective)
}

func (d *Dataset) checkMode(collective bool) error {
	if err := d.checkData(); err != nil {
		return err
	}
	if collective && d.indep {
		return nctype.ErrIndepMode
	}
	if !collective && !d.indep {
		return nctype.ErrCollMode
	}
	return nil
}

// putFlex is the single write path: validate, linearize memory, convert to
// external bytes, install the MPI-IO file view, and write (collectively or
// independently). memsegs == nil means "use the buffer contiguously".
func (d *Dataset) putFlex(varid int, start, count, stride []int64, data any, memsegs []mpitype.Segment, memSize int64, collective bool) error {
	// One span per put call; the deferred End closes any children still open
	// when an error path unwinds.
	sc := d.sp.Begin(span.NCPut)
	defer sc.End()
	if err := d.checkMode(collective); err != nil {
		return err
	}
	if d.ro {
		return nctype.ErrPerm
	}
	v, err := d.varByID(varid)
	if err != nil {
		return err
	}
	req, err := access.Validate(d.hdr, v, start, count, stride, true)
	if err != nil {
		return err
	}
	if memSize >= 0 && memSize != req.NElems {
		return nctype.ErrCountMismatch
	}
	// Pack straight from user memory into a pooled external buffer: strided
	// memory runs run-length over the flattened typemap (no gathered
	// intermediate), contiguous memory is a single conversion pass.
	ext := bufpool.GetDirty(int(req.NElems) * v.Type.Size())[:0]
	defer func() { bufpool.Put(ext) }()
	sEnc := d.sp.Begin(span.Encode)
	var encErr error
	if memsegs == nil {
		var linear any
		linear, err = netcdf.SliceHead(data, req.NElems)
		if err != nil {
			sEnc.End()
			return err
		}
		ext, encErr = cdf.EncodeSlice(ext, v.Type, linear)
	} else {
		ext, encErr = cdf.EncodeSegs(ext, v.Type, data, memsegs)
	}
	sEnc.SetBytes(int64(len(ext)))
	sEnc.End()
	if encErr != nil && encErr != cdf.ErrRange {
		return encErr
	}
	// Record growth: collective ops agree on the new record count up front;
	// independent ops grow locally and reconcile at EndIndepData/Sync. The
	// agreement folds in NumRecs itself: if ranks entered with divergent
	// counts (a peer grew records this rank has not seen), everyone adopts
	// the maximum first, so all ranks make the same grow-or-not decision —
	// writeNumRecs is collective, and a rank skipping it would hang the rest.
	if collective {
		agreed := d.comm.AllreduceI64([]int64{req.LastRecord, d.hdr.NumRecs}, mpi.OpMax)
		if agreed[1] > d.hdr.NumRecs {
			d.hdr.NumRecs = agreed[1]
		}
		if last := agreed[0]; last >= d.hdr.NumRecs {
			d.hdr.NumRecs = last + 1
			if err := d.writeNumRecs(); err != nil {
				return err
			}
		}
	} else if req.LastRecord >= d.hdr.NumRecs {
		d.hdr.NumRecs = req.LastRecord + 1
		d.numrecsDirty = true
	}
	d.invalidate(varid)
	sView := d.sp.Begin(span.ViewResolve)
	view, err := d.fileView(varid, v, req)
	if err == nil {
		err = d.f.SetView(0, view)
	}
	sView.End()
	if err != nil {
		return err
	}
	t0 := d.comm.Clock()
	if collective {
		err = d.f.WriteAtAll(0, ext)
	} else {
		err = d.f.WriteAt(0, ext)
	}
	if err == nil {
		d.recordAccess("put", collective, iostat.NCCollPuts, iostat.NCIndepPuts,
			iostat.NCBytesPut, iostat.NCPutTimeNs, int64(len(ext)), t0)
		// netCDF range semantics, as the serial library implements them:
		// out-of-range values were written wrapped and NC_ERANGE is
		// reported after the (successful) write.
		return encErr
	}
	return err
}

// recordAccess accumulates one put/get call's counters and trace event.
func (d *Dataset) recordAccess(op string, collective bool, coll, indep, bytes, timeNs iostat.Counter, n int64, start float64) {
	if d.st == nil && d.tr == nil {
		return
	}
	k := indep
	if collective {
		k = coll
		op = "coll_" + op
	}
	end := d.comm.Clock()
	d.st.Add(k, 1)
	d.st.Add(bytes, n)
	d.st.AddTime(timeNs, end-start)
	d.tr.Record(iostat.Event{
		Layer: "pnetcdf", Op: op, Rank: d.comm.Rank(),
		Off: -1, Len: n, Start: start, End: end,
	})
}

// getFlex is the single read path.
func (d *Dataset) getFlex(varid int, start, count, stride []int64, data any, memsegs []mpitype.Segment, memSize int64, collective bool) error {
	sc := d.sp.Begin(span.NCGet)
	defer sc.End()
	if err := d.checkMode(collective); err != nil {
		return err
	}
	// Collective boundary: agree on the record count BEFORE validating, so a
	// rank that has not seen a peer's record growth neither rejects a valid
	// request nor (worse) bails out of the collective while its peers
	// proceed into the exchange — the stale-NumRecs window. The same
	// allreduce folds in the nonblocking-write flag: a blocking read of a
	// variable with a queued IPutVara (on ANY rank) would observe stale
	// file data, so every rank agrees to return ErrPending together —
	// nobody proceeds into the exchange alone.
	if collective {
		pend := int64(0)
		if d.pendingWrite(varid) {
			pend = 1
		}
		agreed := d.comm.AllreduceI64([]int64{d.hdr.NumRecs, pend}, mpi.OpMax)
		if agreed[0] > d.hdr.NumRecs {
			d.hdr.NumRecs = agreed[0]
		}
		if agreed[1] != 0 {
			return nctype.ErrPending
		}
	} else if d.pendingWrite(varid) {
		// Independent reads check locally: the stale window is the local
		// queue (peer queues are invisible to independent I/O anyway).
		return nctype.ErrPending
	}
	v, err := d.varByID(varid)
	if err != nil {
		return err
	}
	req, err := access.Validate(d.hdr, v, start, count, stride, false)
	if err != nil {
		return err
	}
	if memSize >= 0 && memSize != req.NElems {
		return nctype.ErrCountMismatch
	}
	// Pooled and dirty: the read (or cache hit) fills every byte.
	ext := bufpool.GetDirty(int(req.NElems) * v.Type.Size())
	defer bufpool.Put(ext)
	if !d.cachedRead(varid, req, ext) {
		sView := d.sp.Begin(span.ViewResolve)
		view, err := d.fileView(varid, v, req)
		if err == nil {
			err = d.f.SetView(0, view)
		}
		sView.End()
		if err != nil {
			return err
		}
		t0 := d.comm.Clock()
		if collective {
			err = d.f.ReadAtAll(0, ext)
		} else {
			err = d.f.ReadAt(0, ext)
		}
		if err != nil {
			return err
		}
		d.recordAccess("get", collective, iostat.NCCollGets, iostat.NCIndepGets,
			iostat.NCBytesGot, iostat.NCGetTimeNs, int64(len(ext)), t0)
	}
	// Decode shares the encode phase tag: both are the external<->native
	// conversion step.
	sDec := d.sp.Begin(span.Encode)
	defer sDec.End()
	sDec.SetBytes(int64(len(ext)))
	if memsegs == nil {
		linear, err := netcdf.SliceHead(data, req.NElems)
		if err != nil {
			return err
		}
		return cdf.DecodeSlice(ext, v.Type, linear)
	}
	// Scatter run-length over the flattened typemap — no decoded
	// intermediate.
	return cdf.DecodeSegs(ext, v.Type, memsegs, data)
}
