// Package core is PnetCDF — the paper's contribution: a parallel interface
// to netCDF classic files, built on MPI-IO. It mirrors the ncmpi_* C API:
//
//   - Create/Open take an MPI communicator and an MPI_Info hint object; the
//     file is opened, operated and closed by the participating processes as
//     a group (paper §4.1).
//   - The header lives as a synchronized local copy on every process: the
//     root reads it and broadcasts at open; define-mode, attribute and
//     inquiry calls are in-memory operations on the copy, with cross-process
//     consistency verified collectively; the root writes the header back at
//     the end of define mode (paper §4.2.1).
//   - Data access has two modes, collective (default, functions suffixed
//     All) and independent (between BeginIndepData/EndIndepData); every
//     access is translated into an MPI-IO file view built from the variable
//     metadata plus start/count/stride/imap, so MPI-IO's data sieving and
//     two-phase optimizations apply (paper §4.2.2).
//   - The high-level API (PutVara..., GetVars..., ...) takes contiguous Go
//     slices, like the original netCDF calls; the flexible API additionally
//     takes an MPI datatype describing noncontiguous memory. The high-level
//     routines are written on top of the flexible ones, as in the paper.
package core

import (
	"errors"
	"fmt"

	"pnetcdf/internal/cdf"
	"pnetcdf/internal/iostat"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/mpiio"
	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/pfs"
	"pnetcdf/internal/span"
)

// GlobalID addresses the dataset itself in attribute calls (NC_GLOBAL).
const GlobalID = -1

// Dataset is an open parallel netCDF dataset. Every process in the
// communicator holds its own *Dataset whose header copies are kept
// identical by the collective define-mode calls.
type Dataset struct {
	comm *mpi.Comm
	fsys *pfs.FS
	f    *mpiio.File
	hdr  *cdf.Header
	path string

	define bool
	indep  bool
	ro     bool
	closed bool

	hAlign, vAlign int64
	fill           bool

	numrecsDirty bool // independent-mode record growth pending reconciliation

	// persistedNumRecs is the record count last written to (or read from)
	// the file header; the root uses it to keep on-disk numrecs updates
	// strictly monotonic. Meaningful on rank 0 only.
	persistedNumRecs int64

	// cache holds whole-variable external images loaded by the
	// nc_prefetch_vars hint (see prefetch.go); nil when the hint is absent.
	cache map[int][]byte

	// views caches flattened file views per (variable, access geometry);
	// cleared whenever a define-mode transition recomputes the layout.
	views map[viewKey]mpitype.Datatype

	oldLayout *cdf.Header
	pending   []pendingOp // nonblocking iput/iget queue

	// st/tr/sp are the rank's iostat collectors and span recorder, cached
	// from the communicator (nil = off).
	st *iostat.Stats
	tr *iostat.Trace
	sp *span.Recorder
}

// Create collectively creates a new dataset, entering define mode. cmode may
// include nctype.NoClobber, nctype.Bit64Offset, nctype.Bit64Data. PnetCDF
// hints read from info: nc_header_align_size, nc_var_align_size.
func Create(comm *mpi.Comm, fsys *pfs.FS, path string, cmode int, info *mpi.Info) (*Dataset, error) {
	if comm == nil {
		return nil, nctype.ErrNullComm
	}
	amode := mpiio.ModeRdWr | mpiio.ModeCreate
	if cmode&nctype.NoClobber != 0 {
		amode |= mpiio.ModeExcl
	} else {
		amode |= mpiio.ModeTrunc
	}
	f, err := mpiio.Open(comm, fsys, path, amode, info)
	if err != nil {
		return nil, err
	}
	version := 1
	if cmode&nctype.Bit64Offset != 0 {
		version = 2
	}
	if cmode&nctype.Bit64Data != 0 {
		version = 5
	}
	d := &Dataset{
		comm: comm, fsys: fsys, f: f, path: path,
		hdr:    &cdf.Header{Version: version},
		define: true,
		hAlign: info.GetInt("nc_header_align_size", 1),
		vAlign: info.GetInt("nc_var_align_size", 1),
	}
	d.st, d.tr = comm.Proc().Stats(), comm.Proc().Trace()
	d.sp = comm.Proc().Spans()
	return d, nil
}

// Open collectively opens an existing dataset in data mode. omode is
// nctype.NoWrite or nctype.Write. The root reads the file header and
// broadcasts it; every process keeps a local copy (paper §4.2.1).
func Open(comm *mpi.Comm, fsys *pfs.FS, path string, omode int, info *mpi.Info) (*Dataset, error) {
	if comm == nil {
		return nil, nctype.ErrNullComm
	}
	amode := mpiio.ModeRdOnly
	if omode&nctype.Write != 0 {
		amode = mpiio.ModeRdWr
	}
	f, err := mpiio.Open(comm, fsys, path, amode, info)
	if err != nil {
		return nil, err
	}
	// Root fetches the header (growing the probe if needed, falling back to
	// the commit journal when the in-place header is torn) and broadcasts a
	// status first, so a root-side read failure is a collective error rather
	// than a hang.
	var blob []byte
	var recovered bool
	var rootErr error
	if comm.Rank() == 0 {
		blob, recovered, rootErr = readHeaderBlob(f)
	}
	status := int64(0)
	if rootErr != nil {
		status = 1
	} else if recovered {
		status = 2
	}
	status = mpi.DecodeI64s(comm.Bcast(0, mpi.EncodeI64s([]int64{status})))[0]
	if status == 1 {
		if rootErr != nil {
			return nil, rootErr
		}
		return nil, fmt.Errorf("pnetcdf: open %s: header read failed on root", path)
	}
	recovered = status == 2
	blob = comm.Bcast(0, blob)
	hdr, err := cdf.Decode(blob)
	if err != nil {
		return nil, err
	}
	if recovered {
		// The journaled (new) header may declare records that were lost with
		// the crash; clamp to what the file actually holds.
		if size, serr := f.Size(); serr == nil {
			if max := hdr.MaxRecsForSize(size); hdr.NumRecs > max {
				hdr.NumRecs = max
			}
		}
	}
	d := &Dataset{
		comm: comm, fsys: fsys, f: f, path: path,
		hdr:    hdr,
		ro:     omode&nctype.Write == 0,
		hAlign: info.GetInt("nc_header_align_size", 1),
		vAlign: info.GetInt("nc_var_align_size", 1),

		persistedNumRecs: hdr.NumRecs,
	}
	d.st, d.tr = comm.Proc().Stats(), comm.Proc().Trace()
	d.sp = comm.Proc().Spans()
	d.st.Add(iostat.NCHeaderBcastBytes, int64(len(blob)))
	if recovered {
		d.st.Add(iostat.NCHeaderRecoveries, 1)
		if !d.ro {
			// Repair the torn in-place header from the journaled image.
			if err := d.writeHeaderCollective(); err != nil {
				return nil, err
			}
		}
	}
	if err := d.prefetch(info); err != nil {
		return nil, err
	}
	return d, nil
}

// readHeaderBlob reads enough of the file to decode the header. When the
// in-place header is torn (a crash during commit), it falls back to the
// commit journal at the file's tail; recovered reports that fallback.
func readHeaderBlob(f *mpiio.File) (blob []byte, recovered bool, err error) {
	size, err := f.Size()
	if err != nil {
		return nil, false, err
	}
	probe := int64(64 << 10)
	for {
		if probe > size {
			probe = size
		}
		buf := make([]byte, probe)
		if err := f.ReadRaw(buf, 0); err != nil {
			return nil, false, err
		}
		if _, derr := cdf.Decode(buf); derr == nil {
			return buf, false, nil
		}
		if probe >= size {
			if img := recoverJournal(f, size); img != nil {
				return img, true, nil
			}
			return buf, false, nil // undecodable; the caller reports it
		}
		probe *= 4
	}
}

// recoverJournal reads and verifies the commit journal terminating the
// file, returning the journaled header image or nil.
func recoverJournal(f *mpiio.File, size int64) []byte {
	if size < cdf.JournalTrailerSize {
		return nil
	}
	tr := make([]byte, cdf.JournalTrailerSize)
	if err := f.ReadRaw(tr, size-cdf.JournalTrailerSize); err != nil {
		return nil
	}
	n, crc, ok := cdf.ParseJournalTrailer(tr)
	if !ok || n > size-cdf.JournalTrailerSize {
		return nil
	}
	img := make([]byte, n)
	if err := f.ReadRaw(img, size-cdf.JournalTrailerSize-n); err != nil {
		return nil
	}
	if !cdf.VerifyJournalImage(img, crc) {
		return nil
	}
	if _, err := cdf.Decode(img); err != nil {
		return nil
	}
	return img
}

// Comm returns the dataset's communicator.
func (d *Dataset) Comm() *mpi.Comm { return d.comm }

// Header exposes the local header copy (inquiry use).
func (d *Dataset) Header() *cdf.Header { return d.hdr }

// SetFill enables prefilling of variables at EndDef (PnetCDF defaults to
// nofill; this mirrors ncmpi_set_fill with NC_FILL).
func (d *Dataset) SetFill(on bool) { d.fill = on }

func (d *Dataset) checkDefine() error {
	switch {
	case d.closed:
		return nctype.ErrClosed
	case d.ro:
		return nctype.ErrPerm
	case !d.define:
		return nctype.ErrNotInDefine
	}
	return nil
}

func (d *Dataset) checkData() error {
	switch {
	case d.closed:
		return nctype.ErrClosed
	case d.define:
		return nctype.ErrInDefine
	}
	return nil
}

// --- Define mode functions (collective; same syntax as serial, paper §4.1) ---

// DefDim defines a dimension; size 0 declares the unlimited dimension.
// All processes must call it with identical arguments.
func (d *Dataset) DefDim(name string, size int64) (int, error) {
	if err := d.checkDefine(); err != nil {
		return -1, err
	}
	if err := cdf.CheckName(name); err != nil {
		return -1, err
	}
	if d.hdr.FindDim(name) >= 0 {
		return -1, fmt.Errorf("%w: dimension %q", nctype.ErrNameInUse, name)
	}
	if size < 0 {
		return -1, nctype.ErrBadDim
	}
	if size == 0 && d.hdr.UnlimitedDimID() >= 0 {
		return -1, nctype.ErrMultiUnlimited
	}
	d.hdr.Dims = append(d.hdr.Dims, cdf.Dim{Name: name, Len: size})
	return len(d.hdr.Dims) - 1, nil
}

// DefVar defines a variable over previously defined dimensions.
func (d *Dataset) DefVar(name string, t nctype.Type, dimids []int) (int, error) {
	if err := d.checkDefine(); err != nil {
		return -1, err
	}
	if err := cdf.CheckName(name); err != nil {
		return -1, err
	}
	if d.hdr.FindVar(name) >= 0 {
		return -1, fmt.Errorf("%w: variable %q", nctype.ErrNameInUse, name)
	}
	if !t.Valid(d.hdr.Version) {
		return -1, nctype.ErrBadType
	}
	for pos, id := range dimids {
		if id < 0 || id >= len(d.hdr.Dims) {
			return -1, nctype.ErrBadDim
		}
		if d.hdr.Dims[id].IsUnlimited() && pos != 0 {
			return -1, nctype.ErrUnlimPos
		}
	}
	d.hdr.Vars = append(d.hdr.Vars, cdf.Var{
		Name: name, Type: t, DimIDs: append([]int(nil), dimids...),
	})
	return len(d.hdr.Vars) - 1, nil
}

func (d *Dataset) attrsOf(varid int) (*[]cdf.Attr, error) {
	if varid == GlobalID {
		return &d.hdr.GAttrs, nil
	}
	if varid < 0 || varid >= len(d.hdr.Vars) {
		return nil, nctype.ErrNotVar
	}
	return &d.hdr.Vars[varid].Attrs, nil
}

// PutAttr sets an attribute on a variable (or GlobalID). In data mode only
// same-or-smaller overwrites are allowed, and the root rewrites the header.
func (d *Dataset) PutAttr(varid int, name string, t nctype.Type, value any) error {
	if d.closed {
		return nctype.ErrClosed
	}
	if d.ro {
		return nctype.ErrPerm
	}
	attrs, err := d.attrsOf(varid)
	if err != nil {
		return err
	}
	if err := cdf.CheckName(name); err != nil {
		return err
	}
	a, err := cdf.MakeAttr(name, t, value)
	if err != nil {
		return err
	}
	if !t.Valid(d.hdr.Version) {
		return nctype.ErrBadType
	}
	if i := cdf.FindAttr(*attrs, name); i >= 0 {
		if !d.define && len(a.Values) > len((*attrs)[i].Values) {
			return nctype.ErrNotInDefine
		}
		(*attrs)[i] = a
		if !d.define {
			return d.writeHeaderCollective()
		}
		return nil
	}
	if !d.define {
		return nctype.ErrNotInDefine
	}
	*attrs = append(*attrs, a)
	return nil
}

// GetAttr returns an attribute's type and decoded value. Purely local — no
// file access or synchronization, one of PnetCDF's advantages over HDF5's
// dispersed metadata (paper §4.3).
func (d *Dataset) GetAttr(varid int, name string) (nctype.Type, any, error) {
	if d.closed {
		return 0, nil, nctype.ErrClosed
	}
	attrs, err := d.attrsOf(varid)
	if err != nil {
		return 0, nil, err
	}
	i := cdf.FindAttr(*attrs, name)
	if i < 0 {
		return 0, nil, fmt.Errorf("%w: %q", nctype.ErrNotAtt, name)
	}
	a := (*attrs)[i]
	v, err := cdf.DecodeAttrValue(a)
	return a.Type, v, err
}

// DelAttr removes an attribute (define mode).
func (d *Dataset) DelAttr(varid int, name string) error {
	if err := d.checkDefine(); err != nil {
		return err
	}
	attrs, err := d.attrsOf(varid)
	if err != nil {
		return err
	}
	i := cdf.FindAttr(*attrs, name)
	if i < 0 {
		return fmt.Errorf("%w: %q", nctype.ErrNotAtt, name)
	}
	*attrs = append((*attrs)[:i], (*attrs)[i+1:]...)
	return nil
}

// AttrNames lists attribute names in definition order.
func (d *Dataset) AttrNames(varid int) ([]string, error) {
	attrs, err := d.attrsOf(varid)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(*attrs))
	for i, a := range *attrs {
		names[i] = a.Name
	}
	return names, nil
}

// EndDef leaves define mode collectively: verifies that every process built
// an identical header (the consistency guarantee of paper §4.2.1), computes
// the layout, relocates data if a Redef grew the header, and has the root
// write the header.
func (d *Dataset) EndDef() error {
	if err := d.checkDefine(); err != nil {
		return err
	}
	if err := d.hdr.Validate(); err != nil {
		return err
	}
	if err := d.hdr.ComputeLayoutAligned(d.hAlign, d.vAlign); err != nil {
		return err
	}
	d.invalidateViews()
	if !d.comm.AgreeSame(d.hdr.Encode()) {
		return nctype.ErrConsistency
	}
	d.define = false
	if d.oldLayout != nil {
		if err := d.relocate(d.oldLayout); err != nil {
			return err
		}
		d.oldLayout = nil
	}
	if err := d.writeHeaderCollective(); err != nil {
		return err
	}
	if d.fill {
		if err := d.fillVars(); err != nil {
			return err
		}
	}
	d.comm.Barrier()
	return nil
}

// Redef collectively re-enters define mode.
func (d *Dataset) Redef() error {
	if d.closed {
		return nctype.ErrClosed
	}
	if d.ro {
		return nctype.ErrPerm
	}
	if d.define {
		return nctype.ErrInDefine
	}
	if err := d.syncNumRecs(); err != nil {
		return err
	}
	d.oldLayout = d.hdr.Clone()
	d.define = true
	return nil
}

// writeHeaderCollective has the root commit the header image; the outcome
// is agreed so every rank returns the same error and nobody runs ahead
// against a header that never landed.
func (d *Dataset) writeHeaderCollective() error {
	var werr error
	if d.comm.Rank() == 0 {
		werr = d.commitHeader()
	}
	return d.comm.AgreeError(werr)
}

// commitHeader publishes the current header crash-consistently
// (write-new / validate / publish):
//
//  1. journal the new image past EOF (a torn journal has no valid trailer
//     and is ignored on recovery);
//  2. invalidate the in-place magic;
//  3. write the new header body;
//  4. publish the magic last.
//
// A crash at any injected byte leaves either the old header intact or an
// invalid in-place header plus a complete journal holding the new one —
// Open and ncvalidate recover from the journal, so the file always
// classifies as old or new, never a torn hybrid.
func (d *Dataset) commitHeader() error {
	sc := d.sp.Begin(span.HeaderCommit)
	defer sc.End()
	blob := d.hdr.Encode()
	sc.SetBytes(int64(len(blob)))
	size, err := d.f.Size()
	if err != nil {
		return err
	}
	// The journal goes past everything the file holds or declares: past the
	// current size AND past the declared data end, so it never sits inside a
	// region that an unwritten variable would later read as zero-fill.
	jOff := size
	if end := d.hdr.FileSize(); jOff < end {
		jOff = end
	}
	if end := int64(len(blob)); jOff < end {
		jOff = end
	}
	journal := cdf.EncodeJournal(blob)
	if err := d.f.WriteRaw(journal, jOff); err != nil {
		return err
	}
	if err := d.f.WriteRaw([]byte{0, 0, 0, 0}, 0); err != nil {
		return err
	}
	if err := d.f.WriteRaw(blob[4:], 4); err != nil {
		return err
	}
	if err := d.f.WriteRaw(blob[:4], 0); err != nil {
		return err
	}
	// Publish complete: erase the journal so its bytes cannot masquerade as
	// record data once the record section grows over this region. A crash
	// during the erase is harmless — the new header is already live.
	if err := d.f.WriteRaw(make([]byte, len(journal)), jOff); err != nil {
		return err
	}
	d.st.Add(iostat.NCHeaderCommits, 1)
	d.st.Add(iostat.NCHeaderWriteBytes, int64(len(blob)))
	d.persistedNumRecs = d.hdr.NumRecs
	return nil
}

// relocate moves data after a header-growing Redef. Non-overlapping moves
// are divided among the processes ("moving the existing data to the
// extended area is performed in parallel", paper §4.3); overlapping moves
// fall back to the root walking back to front.
func (d *Dataset) relocate(old *cdf.Header) error {
	type move struct{ from, to, n int64 }
	var moves []move
	for i := range d.hdr.Vars {
		nv := &d.hdr.Vars[i]
		oi := old.FindVar(nv.Name)
		if oi < 0 {
			continue
		}
		ov := &old.Vars[oi]
		if d.hdr.IsRecordVar(nv) {
			for rec := old.NumRecs - 1; rec >= 0; rec-- {
				moves = append(moves, move{old.RecordOffset(ov, rec), d.hdr.RecordOffset(nv, rec), ov.VSize})
			}
		} else {
			moves = append(moves, move{ov.Begin, nv.Begin, ov.VSize})
		}
	}
	// Sort by descending destination.
	for i := 1; i < len(moves); i++ {
		for j := i; j > 0 && moves[j-1].to < moves[j].to; j-- {
			moves[j-1], moves[j] = moves[j], moves[j-1]
		}
	}
	overlapping := false
	for _, m := range moves {
		if m.from != m.to && m.to < m.from+m.n {
			overlapping = true
			break
		}
	}
	buf := make([]byte, 1<<20)
	doMove := func(m move) error {
		remaining := m.n
		for remaining > 0 {
			k := remaining
			if k > int64(len(buf)) {
				k = int64(len(buf))
			}
			srcOff := m.from + remaining - k
			dstOff := m.to + remaining - k
			if err := d.f.ReadRaw(buf[:k], srcOff); err != nil {
				return err
			}
			if err := d.f.WriteRaw(buf[:k], dstOff); err != nil {
				return err
			}
			remaining -= k
		}
		return nil
	}
	if overlapping {
		// Order matters: the root performs all moves back to front.
		if d.comm.Rank() == 0 {
			for _, m := range moves {
				if m.from != m.to && m.n > 0 {
					if err := doMove(m); err != nil {
						return err
					}
				}
			}
		}
	} else {
		// Independent moves: round-robin over ranks, truly parallel.
		for i, m := range moves {
			if m.from == m.to || m.n == 0 {
				continue
			}
			if i%d.comm.Size() == d.comm.Rank() {
				if err := doMove(m); err != nil {
					return err
				}
			}
		}
	}
	d.comm.Barrier()
	return nil
}

// fillVars prefills all variables with fill values (root-driven; PnetCDF
// itself partitions the fill across ranks, which the data plane here also
// supports but the simpler root fill keeps EndDef deterministic).
func (d *Dataset) fillVars() error {
	if d.comm.Rank() != 0 {
		return nil
	}
	for i := range d.hdr.Vars {
		v := &d.hdr.Vars[i]
		if d.hdr.IsRecordVar(v) {
			continue
		}
		n := v.VSize
		const chunk = 1 << 20
		fill := cdf.FillBytes(v, chunk/int64(v.Type.Size()))
		off := v.Begin
		for n > 0 {
			k := n
			if k > int64(len(fill)) {
				k = int64(len(fill))
			}
			if err := d.f.WriteRaw(fill[:k], off); err != nil {
				return err
			}
			off += k
			n -= k
		}
	}
	return nil
}

// BeginIndepData enters independent data mode (ncmpi_begin_indep_data).
func (d *Dataset) BeginIndepData() error {
	if err := d.checkData(); err != nil {
		return err
	}
	if d.indep {
		return nctype.ErrIndepMode
	}
	d.comm.Barrier()
	d.indep = true
	return nil
}

// EndIndepData returns to collective data mode, reconciling any record
// growth performed independently.
func (d *Dataset) EndIndepData() error {
	if err := d.checkData(); err != nil {
		return err
	}
	if !d.indep {
		return nctype.ErrCollMode
	}
	d.indep = false
	return d.syncNumRecs()
}

// syncNumRecs agrees on NumRecs across ranks (max) and persists it.
func (d *Dataset) syncNumRecs() error {
	agreed := d.comm.AllreduceI64([]int64{d.hdr.NumRecs}, mpi.OpMax)[0]
	d.hdr.NumRecs = agreed
	d.numrecsDirty = false
	d.st.Add(iostat.NCNumRecsSyncs, 1)
	return d.writeNumRecs()
}

// writeNumRecs has the root rewrite just the numrecs field, and the ranks
// agree on the outcome. The on-disk value is updated monotonically: the
// root skips the write when the agreed count has not grown past what is
// already persisted, so a crash can tear at most a strictly-growing update
// — and a torn (over-large) count is clamped by readers against the file
// size on journal recovery.
func (d *Dataset) writeNumRecs() error {
	var werr error
	if !d.ro && d.comm.Rank() == 0 && d.hdr.NumRecs > d.persistedNumRecs {
		full := d.hdr.Encode()
		// numrecs sits right after the 4-byte magic; 4 or 8 bytes by version.
		n := 8
		if d.hdr.Version != 5 {
			n = 4
		}
		werr = d.f.WriteRaw(full[4:4+n], 4)
		if werr == nil {
			d.persistedNumRecs = d.hdr.NumRecs
		}
		d.st.Add(iostat.NCHeaderWriteBytes, int64(n))
	}
	return d.comm.AgreeError(werr)
}

// Sync flushes everything collectively (ncmpi_sync).
func (d *Dataset) Sync() error {
	if err := d.checkData(); err != nil {
		return err
	}
	if err := d.syncNumRecs(); err != nil {
		return err
	}
	return d.f.Sync()
}

// Close collectively closes the dataset (ncmpi_close). All teardown steps
// run even when an earlier one fails — a flush error is joined with, not
// masked by, a later successful close (and vice versa) — and the handle is
// marked closed regardless, so a second Close is an idempotent no-op
// rather than a second flush attempt.
func (d *Dataset) Close() error {
	if d.closed {
		return nil
	}
	if len(d.pending) > 0 {
		return errors.New("pnetcdf: nonblocking requests pending at close; call WaitAll")
	}
	var errs []error
	if d.define {
		errs = append(errs, d.EndDef())
	}
	if !d.ro {
		errs = append(errs, d.syncNumRecs())
	}
	errs = append(errs, d.f.Close())
	d.closed = true
	return errors.Join(errs...)
}
