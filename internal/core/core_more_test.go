package core

import (
	"errors"
	"fmt"
	"testing"

	"pnetcdf/internal/mpi"
	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
)

func TestCDF5Parallel(t *testing.T) {
	fsys := testFS()
	runWorld(t, 3, func(c *mpi.Comm) error {
		d, err := Create(c, fsys, "c5.nc", nctype.Bit64Data, nil)
		if err != nil {
			return err
		}
		x, _ := d.DefDim("x", 9)
		v, err := d.DefVar("v", nctype.Int64, []int{x}) // CDF-5-only type
		if err != nil {
			return err
		}
		u, err := d.DefVar("u", nctype.UInt64, []int{x})
		if err != nil {
			return err
		}
		if err := d.EndDef(); err != nil {
			return err
		}
		if err := d.PutVaraAll(v, []int64{int64(c.Rank() * 3)}, []int64{3},
			[]int64{1 << 40, -(1 << 41), int64(c.Rank())}); err != nil {
			return err
		}
		if err := d.PutVaraAll(u, []int64{int64(c.Rank() * 3)}, []int64{3},
			[]uint64{1 << 63, 2, uint64(c.Rank())}); err != nil {
			return err
		}
		got := make([]int64, 9)
		if err := d.GetVaraAll(v, []int64{0}, []int64{9}, got); err != nil {
			return err
		}
		for r := 0; r < 3; r++ {
			if got[r*3] != 1<<40 || got[r*3+1] != -(1<<41) || got[r*3+2] != int64(r) {
				return fmt.Errorf("cdf5 int64 row %d = %v", r, got[r*3:r*3+3])
			}
		}
		gu := make([]uint64, 3)
		if err := d.GetVaraAll(u, []int64{0}, []int64{3}, gu); err != nil {
			return err
		}
		if gu[0] != 1<<63 {
			return fmt.Errorf("cdf5 uint64 = %v", gu)
		}
		return d.Close()
	})
	// The version byte on disk must be 5.
	pf, _, err := fsys.Open("c5.nc", 0)
	if err != nil {
		t.Fatal(err)
	}
	magic := make([]byte, 4)
	pf.ReadAt(0, magic, 0)
	if magic[3] != 5 {
		t.Fatalf("version byte = %d", magic[3])
	}
}

func TestWaitAllOverlapRejected(t *testing.T) {
	fsys := testFS()
	runWorld(t, 1, func(c *mpi.Comm) error {
		d, err := Create(c, fsys, "ov.nc", nctype.Clobber, nil)
		if err != nil {
			return err
		}
		x, _ := d.DefDim("x", 8)
		v, _ := d.DefVar("v", nctype.Int, []int{x})
		if err := d.EndDef(); err != nil {
			return err
		}
		if _, err := d.IPutVara(v, []int64{0}, []int64{4}, make([]int32, 4)); err != nil {
			return err
		}
		if _, err := d.IPutVara(v, []int64{2}, []int64{4}, make([]int32, 4)); err != nil {
			return err
		}
		if err := d.WaitAll(); err == nil {
			return errors.New("overlapping nonblocking writes accepted")
		}
		// The queue is still drainable after clearing.
		d.pending = d.pending[:0]
		return d.Close()
	})
}

func TestMixedIPutIGetSameWaitAll(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, err := Create(c, fsys, "mix.nc", nctype.Clobber, nil)
		if err != nil {
			return err
		}
		x, _ := d.DefDim("x", 8)
		a, _ := d.DefVar("a", nctype.Int, []int{x})
		b, _ := d.DefVar("b", nctype.Int, []int{x})
		if err := d.EndDef(); err != nil {
			return err
		}
		// Seed variable a.
		if err := d.PutVaraAll(a, []int64{int64(c.Rank() * 4)}, []int64{4},
			[]int32{1, 2, 3, 4}); err != nil {
			return err
		}
		// One WaitAll carrying a write (to b) and a read (from a).
		if _, err := d.IPutVara(b, []int64{int64(c.Rank() * 4)}, []int64{4},
			[]int32{5, 6, 7, 8}); err != nil {
			return err
		}
		got := make([]int32, 4)
		if _, err := d.IGetVara(a, []int64{int64(c.Rank() * 4)}, []int64{4}, got); err != nil {
			return err
		}
		if err := d.WaitAll(); err != nil {
			return err
		}
		if got[0] != 1 || got[3] != 4 {
			return fmt.Errorf("fused read = %v", got)
		}
		gb := make([]int32, 4)
		if err := d.GetVaraAll(b, []int64{int64(c.Rank() * 4)}, []int64{4}, gb); err != nil {
			return err
		}
		if gb[0] != 5 || gb[3] != 8 {
			return fmt.Errorf("fused write = %v", gb)
		}
		return d.Close()
	})
}

func TestIndependentFlexible(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, _, grid, err := createStandard(c, fsys, "if.nc")
		if err != nil {
			return err
		}
		if err := d.BeginIndepData(); err != nil {
			return err
		}
		// Rank 1 writes through the independent flexible path: every other
		// element of a padded buffer.
		if c.Rank() == 1 {
			buf := []int32{10, -1, 11, -1, 12, -1, 13, -1}
			memtype, err := mpitype.Vector(4, 1, 2, mpitype.Contig(1))
			if err != nil {
				return err
			}
			if err := d.PutVaraType(grid, []int64{0, 0}, []int64{1, 4}, buf, memtype); err != nil {
				return err
			}
			got := make([]int32, 8)
			gt, err := mpitype.Vector(4, 1, 2, mpitype.Contig(1))
			if err != nil {
				return err
			}
			if err := d.GetVaraType(grid, []int64{0, 0}, []int64{1, 4}, got, gt); err != nil {
				return err
			}
			if got[0] != 10 || got[2] != 11 || got[6] != 13 || got[1] != 0 {
				return fmt.Errorf("independent flexible round trip = %v", got)
			}
		}
		return d.EndIndepData()
	})
}

func TestSyncPersistsNumRecsForLateOpeners(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, flux, _, err := createStandard(c, fsys, "sync.nc")
		if err != nil {
			return err
		}
		buf := make([]float64, 32)
		if err := d.PutVaraAll(flux, []int64{4, 0, 0}, []int64{1, 4, 8}, buf); err != nil {
			return err
		}
		if err := d.Sync(); err != nil {
			return err
		}
		// A second communicator-wide open (same world) must see 5 records
		// even though the first handle is still open.
		r, err := Open(c, fsys, "sync.nc", nctype.NoWrite, nil)
		if err != nil {
			return err
		}
		if r.NumRecs() != 5 {
			return fmt.Errorf("late opener sees %d records", r.NumRecs())
		}
		if err := r.Close(); err != nil {
			return err
		}
		return d.Close()
	})
}

// Regression for the stale-NumRecs window: a collective put where ranks
// touch *different* records used to grow NumRecs only on the ranks whose
// own access demanded it. The grower then entered the collective numrecs
// rewrite alone — a mismatched collective, i.e. a hang — and a later
// collective read on a non-grower rejected the record as out of range.
// Collective entry points now allreduce (LastRecord, NumRecs) and adopt
// the maximum before validating or persisting.
func TestCollectiveAgreesOnDivergentRecordGrowth(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, flux, _, err := createStandard(c, fsys, "stale.nc")
		if err != nil {
			return err
		}
		buf := make([]float64, 32)
		for i := range buf {
			buf[i] = 3.5
		}
		// Rank 0 writes record 6, rank 1 record 2: only rank 0's access
		// grows the record count.
		rec := int64(6)
		if c.Rank() == 1 {
			rec = 2
		}
		if err := d.PutVaraAll(flux, []int64{rec, 0, 0}, []int64{1, 4, 8}, buf); err != nil {
			return fmt.Errorf("rank %d: divergent collective put: %w", c.Rank(), err)
		}
		if d.NumRecs() != 7 {
			return fmt.Errorf("rank %d sees NumRecs=%d after divergent put, want 7", c.Rank(), d.NumRecs())
		}
		// Both ranks can now collectively read the grown record.
		got := make([]float64, 32)
		if err := d.GetVaraAll(flux, []int64{6, 0, 0}, []int64{1, 4, 8}, got); err != nil {
			return fmt.Errorf("rank %d: collective read of grown record: %w", c.Rank(), err)
		}
		if got[0] != 3.5 {
			return fmt.Errorf("rank %d reads %g, want 3.5", c.Rank(), got[0])
		}
		// A late opener sees the agreed count on disk after sync.
		if err := d.Sync(); err != nil {
			return err
		}
		r, err := Open(c, fsys, "stale.nc", nctype.NoWrite, nil)
		if err != nil {
			return err
		}
		if r.NumRecs() != 7 {
			return fmt.Errorf("late opener sees NumRecs=%d, want 7", r.NumRecs())
		}
		if err := r.Close(); err != nil {
			return err
		}
		return d.Close()
	})
}

func TestRenameParallel(t *testing.T) {
	fsys := testFS()
	runWorld(t, 3, func(c *mpi.Comm) error {
		d, flux, _, err := createStandard(c, fsys, "ren.nc")
		if err != nil {
			return err
		}
		// Data-mode shrink is fine; growth requires define mode.
		if err := d.RenameVar(flux, "f"); err != nil {
			return err
		}
		if err := d.RenameVar(d.VarID("f"), "heat_flux_density"); !errors.Is(err, nctype.ErrNotInDefine) {
			return fmt.Errorf("grow in data mode: %v", err)
		}
		if err := d.Redef(); err != nil {
			return err
		}
		if err := d.RenameVar(d.VarID("f"), "heat_flux_density"); err != nil {
			return err
		}
		if err := d.RenameDim(d.DimID("x"), "longitude"); err != nil {
			return err
		}
		if err := d.RenameAttr(GlobalID, "source", "provenance"); err != nil {
			return err
		}
		if err := d.EndDef(); err != nil {
			return err
		}
		if err := d.Close(); err != nil {
			return err
		}
		r, err := Open(c, fsys, "ren.nc", nctype.NoWrite, nil)
		if err != nil {
			return err
		}
		if r.VarID("heat_flux_density") < 0 || r.DimID("longitude") < 0 {
			return errors.New("parallel renames not persisted")
		}
		if _, _, err := r.GetAttr(GlobalID, "provenance"); err != nil {
			return err
		}
		return r.Close()
	})
}

func TestStridedRecordAccessParallel(t *testing.T) {
	// Strided access over the record dimension (the interleaved layout's
	// hard case) through the collective path.
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, flux, _, err := createStandard(c, fsys, "strrec.nc")
		if err != nil {
			return err
		}
		// Write 6 records collectively, Y-split.
		for rec := int64(0); rec < 6; rec++ {
			buf := make([]float64, 2*8)
			for i := range buf {
				buf[i] = float64(rec*100) + float64(c.Rank()*10) + float64(i)
			}
			if err := d.PutVaraAll(flux, []int64{rec, int64(c.Rank() * 2), 0}, []int64{1, 2, 8}, buf); err != nil {
				return err
			}
		}
		// Read every other record with one strided collective get.
		got := make([]float64, 3*2*8)
		if err := d.GetVarsAll(flux, []int64{0, int64(c.Rank() * 2), 0},
			[]int64{3, 2, 8}, []int64{2, 1, 1}, got); err != nil {
			return err
		}
		for r := 0; r < 3; r++ {
			rec := int64(r * 2)
			if got[r*16] != float64(rec*100)+float64(c.Rank()*10) {
				return fmt.Errorf("strided record %d = %v", rec, got[r*16])
			}
		}
		return d.Close()
	})
}

func TestPutGetVarAllWholeRecordVariable(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, flux, _, err := createStandard(c, fsys, "whole.nc")
		if err != nil {
			return err
		}
		// Rank 0 writes the whole variable (3 records inferred); rank 1
		// participates with a zero-record share of the same shape family.
		n := 3 * 4 * 8
		if c.Rank() == 0 {
			buf := make([]float64, n)
			for i := range buf {
				buf[i] = float64(i) + 0.25
			}
			if err := d.PutVarAll(flux, buf); err != nil {
				return err
			}
		} else {
			if err := d.PutVaraAll(flux, []int64{0, 0, 0}, []int64{0, 0, 0}, nil); err != nil {
				return err
			}
		}
		if d.NumRecs() != 3 {
			return fmt.Errorf("rank %d: NumRecs = %d", c.Rank(), d.NumRecs())
		}
		got := make([]float64, n)
		if err := d.GetVarAll(flux, got); err != nil {
			return err
		}
		if got[n-1] != float64(n-1)+0.25 {
			return fmt.Errorf("last = %v", got[n-1])
		}
		return d.Close()
	})
}

func TestHeaderGrowthProbeOnOpen(t *testing.T) {
	// A parallel open of a file whose header exceeds the 64 KiB first probe.
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, err := Create(c, fsys, "bighdr.nc", nctype.Clobber, nil)
		if err != nil {
			return err
		}
		x, _ := d.DefDim("x", 2)
		for i := 0; i < 2500; i++ {
			if _, err := d.DefVar(fmt.Sprintf("variable_with_a_long_descriptive_name_%05d", i),
				nctype.Double, []int{x}); err != nil {
				return err
			}
		}
		if err := d.Close(); err != nil {
			return err
		}
		r, err := Open(c, fsys, "bighdr.nc", nctype.NoWrite, nil)
		if err != nil {
			return err
		}
		if r.NumVars() != 2500 {
			return fmt.Errorf("NumVars = %d", r.NumVars())
		}
		return r.Close()
	})
}
