package core

import (
	"strings"

	"pnetcdf/internal/access"
	"pnetcdf/internal/mpi"
)

// Open-time variable prefetch: the PnetCDF-level hint the paper sketches in
// §4.1 — "given a hint indicating that only a certain small set of variables
// were going to be read, an aggressive PnetCDF implementation might initiate
// a read of those variables at open time so that the values were available
// locally at read time. For applications that pull a small amount of data
// from a large number of separate netCDF files, this type of optimization
// could be a big win."
//
// The hint is nc_prefetch_vars, a comma-separated list of variable names.
// At Open, the root reads each named fixed-size variable once and broadcasts
// it; subsequent reads of those variables are served from the local copy
// with no file I/O at all. Writing to a prefetched variable invalidates the
// writer's copy; the hint asserts that the named variables are effectively
// read-only while the file is open (independent writes by one process do
// not invalidate other processes' copies — the usual relaxed-consistency
// contract of netCDF hints).

const prefetchHint = "nc_prefetch_vars"

// memcpyBytesPerSec prices cache-served reads (virtual time).
const memcpyBytesPerSec = 3e9

// prefetch loads the hinted variables after the header is available.
// Collective (called from Open on every rank).
func (d *Dataset) prefetch(info *mpi.Info) error {
	spec, ok := info.Get(prefetchHint)
	if !ok || spec == "" {
		return nil
	}
	d.cache = map[int][]byte{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		varid := d.hdr.FindVar(name)
		if varid < 0 {
			continue // advisory: unknown names are ignored
		}
		v := &d.hdr.Vars[varid]
		if d.hdr.IsRecordVar(v) {
			continue // record variables grow; not cached
		}
		var img []byte
		if d.comm.Rank() == 0 {
			img = make([]byte, v.VSize)
			if err := d.f.ReadRaw(img, v.Begin); err != nil {
				return err
			}
		}
		img = d.comm.Bcast(0, img)
		d.cache[varid] = img
	}
	return nil
}

// cachedRead serves a validated read request from the prefetched copy,
// returning false if the variable is not cached. The extracted bytes land
// in ext (the external buffer getFlex decodes).
func (d *Dataset) cachedRead(varid int, req access.Request, ext []byte) bool {
	img, ok := d.cache[varid]
	if !ok {
		return false
	}
	v := &d.hdr.Vars[varid]
	segs := access.FileSegments(d.hdr, v, req)
	pos := int64(0)
	for _, s := range segs {
		rel := s.Off - v.Begin
		copy(ext[pos:pos+s.Len], img[rel:rel+s.Len])
		pos += s.Len
	}
	d.comm.Proc().Advance(float64(pos) / memcpyBytesPerSec)
	return true
}

// invalidate drops a variable's prefetched copy after a write.
func (d *Dataset) invalidate(varid int) {
	if d.cache != nil {
		delete(d.cache, varid)
	}
}

// PrefetchedVars reports which variable IDs currently have local copies
// (diagnostic).
func (d *Dataset) PrefetchedVars() []int {
	var ids []int
	for id := range d.cache {
		ids = append(ids, id)
	}
	return ids
}
