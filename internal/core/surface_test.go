package core

import (
	"errors"
	"fmt"
	"testing"

	"pnetcdf/internal/mpi"
	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
)

// TestFullAPISurface sweeps the remaining public surface: inquiry helpers,
// every independent access method, the strided flexible collectives, and
// attribute lifecycle in the parallel library.
func TestFullAPISurface(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		d, flux, grid, err := createStandard(c, fsys, "surface.nc")
		if err != nil {
			return err
		}
		// Inquiry coverage.
		if d.NumDims() != 3 || d.NumVars() != 2 {
			return fmt.Errorf("NumDims/NumVars = %d/%d", d.NumDims(), d.NumVars())
		}
		if d.UnlimitedDimID() != d.DimID("time") {
			return fmt.Errorf("UnlimitedDimID = %d", d.UnlimitedDimID())
		}
		shape, err := d.VarShape(grid)
		if err != nil || len(shape) != 2 || shape[0] != 4 || shape[1] != 8 {
			return fmt.Errorf("VarShape = %v (%v)", shape, err)
		}
		if _, err := d.VarShape(99); !errors.Is(err, nctype.ErrNotVar) {
			return fmt.Errorf("VarShape(99): %v", err)
		}
		if d.Comm().Size() != 2 {
			return errors.New("Comm() wrong")
		}
		// Attribute lifecycle.
		names, err := d.AttrNames(flux)
		if err != nil || len(names) != 1 || names[0] != "units" {
			return fmt.Errorf("AttrNames = %v (%v)", names, err)
		}
		if err := d.Redef(); err != nil {
			return err
		}
		if err := d.PutAttr(flux, "doomed", nctype.Int, 1); err != nil {
			return err
		}
		if err := d.DelAttr(flux, "doomed"); err != nil {
			return err
		}
		if err := d.DelAttr(flux, "doomed"); !errors.Is(err, nctype.ErrNotAtt) {
			return fmt.Errorf("double DelAttr: %v", err)
		}
		if err := d.EndDef(); err != nil {
			return err
		}
		// Collective strided flexible write/read (PutVarsTypeAll).
		memtype, err := identityType(4)
		if err != nil {
			return err
		}
		vals := []int32{int32(c.Rank()*4 + 1), int32(c.Rank()*4 + 2), int32(c.Rank()*4 + 3), int32(c.Rank()*4 + 4)}
		if err := d.PutVarsTypeAll(grid, []int64{int64(c.Rank()), 0}, []int64{1, 4},
			[]int64{1, 2}, vals, memtype); err != nil {
			return err
		}
		back := make([]int32, 4)
		if err := d.GetVarsTypeAll(grid, []int64{int64(c.Rank()), 0}, []int64{1, 4},
			[]int64{1, 2}, back, memtype); err != nil {
			return err
		}
		for i := range vals {
			if back[i] != vals[i] {
				return fmt.Errorf("strided flexible = %v", back)
			}
		}
		// Independent access methods, all five shapes.
		if err := d.BeginIndepData(); err != nil {
			return err
		}
		row := int64(2 + c.Rank())
		if err := d.PutVara(grid, []int64{row, 0}, []int64{1, 8},
			[]int32{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
			return err
		}
		got := make([]int32, 8)
		if err := d.GetVara(grid, []int64{row, 0}, []int64{1, 8}, got); err != nil {
			return err
		}
		if got[7] != 8 {
			return fmt.Errorf("indep vara = %v", got)
		}
		if err := d.PutVars(grid, []int64{row, 0}, []int64{1, 4}, []int64{1, 2},
			[]int32{10, 20, 30, 40}); err != nil {
			return err
		}
		sv := make([]int32, 4)
		if err := d.GetVars(grid, []int64{row, 0}, []int64{1, 4}, []int64{1, 2}, sv); err != nil {
			return err
		}
		if sv[0] != 10 || sv[3] != 40 {
			return fmt.Errorf("indep vars = %v", sv)
		}
		if err := d.PutVarm(grid, []int64{row, 0}, []int64{1, 2}, nil, []int64{2, 1},
			[]int32{-1, -2}); err != nil {
			return err
		}
		mv := make([]int32, 2)
		if err := d.GetVarm(grid, []int64{row, 0}, []int64{1, 2}, nil, []int64{2, 1}, mv); err != nil {
			return err
		}
		if mv[0] != -1 || mv[1] != -2 {
			return fmt.Errorf("indep varm = %v", mv)
		}
		if err := d.EndIndepData(); err != nil {
			return err
		}
		// Collective varm read (GetVarmAll).
		gm := make([]int32, 2)
		if err := d.GetVarmAll(grid, []int64{int64(c.Rank()), 0}, []int64{1, 2},
			nil, []int64{2, 1}, gm); err != nil {
			return err
		}
		return d.Close()
	})
}

// identityType builds a contiguous element-unit memory type of n elements.
func identityType(n int64) (mpitype.Datatype, error) {
	return mpitype.Contig(n), nil
}
