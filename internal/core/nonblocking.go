package core

import (
	"fmt"
	"sort"

	"pnetcdf/internal/access"
	"pnetcdf/internal/cdf"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/netcdf"
)

// Nonblocking (batched) data access. The paper's record-variable discussion
// (§4.2.2) observes that record interleaving destroys contiguity and that
// collecting "multiple I/O requests over a number of record variables"
// recovers large transfers. IPutVara/IGetVara queue requests; WaitAll fuses
// every queued request into a single collective MPI-IO operation (one write,
// one read), so accesses to many variables — e.g. one record of each of 24
// FLASH unknowns — reach the file system as one large, mostly contiguous
// request instead of many small ones.

// Consistency note: between IPutVara and WaitAll the queued data exists
// only in the queue — the file still holds the old bytes. IPutVara
// invalidates the local prefetched copy, but a *blocking* GetVara issued in
// that window would read the file and observe stale data. The data paths
// guard the window: a blocking read of a variable with a queued write
// returns nctype.ErrPending (see getFlex) until WaitAll lands the write.
type pendingOp struct {
	write    bool
	varid    int
	v        *cdf.Var
	req      access.Request
	ext      []byte // writes: encoded external data
	data     any    // reads: destination buffer
	rangeErr error  // writes: deferred NC_ERANGE from the conversion
}

// IPutVara queues a nonblocking subarray write. The data is converted and
// buffered immediately, so the caller may reuse the slice. Returns a request
// index (diagnostic only; WaitAll completes all requests).
func (d *Dataset) IPutVara(varid int, start, count []int64, data any) (int, error) {
	if err := d.checkData(); err != nil {
		return -1, err
	}
	if d.ro {
		return -1, nctype.ErrPerm
	}
	v, err := d.varByID(varid)
	if err != nil {
		return -1, err
	}
	req, err := access.Validate(d.hdr, v, start, count, nil, true)
	if err != nil {
		return -1, err
	}
	linear, err := netcdf.SliceHead(data, req.NElems)
	if err != nil {
		return -1, err
	}
	ext, encErr := cdf.EncodeSlice(nil, v.Type, linear)
	if encErr != nil && encErr != cdf.ErrRange {
		return -1, encErr
	}
	d.invalidate(varid)
	// netCDF range semantics: out-of-range values are written wrapped and
	// NC_ERANGE is reported — but the write is queued, so the error is
	// deferred with the operation and surfaced by WaitAll, matching the
	// blocking PutVara's return.
	d.pending = append(d.pending, pendingOp{write: true, varid: varid, v: v, req: req, ext: ext, rangeErr: encErr})
	return len(d.pending) - 1, nil
}

// IGetVara queues a nonblocking subarray read into data, which must remain
// valid until WaitAll.
func (d *Dataset) IGetVara(varid int, start, count []int64, data any) (int, error) {
	if err := d.checkData(); err != nil {
		return -1, err
	}
	v, err := d.varByID(varid)
	if err != nil {
		return -1, err
	}
	req, err := access.Validate(d.hdr, v, start, count, nil, false)
	if err != nil {
		return -1, err
	}
	if cdf.SliceLen(data) < int(req.NElems) {
		return -1, nctype.ErrCountMismatch
	}
	d.pending = append(d.pending, pendingOp{write: false, varid: varid, v: v, req: req, data: data})
	return len(d.pending) - 1, nil
}

// pendingWrite reports whether a queued (not yet waited) write targets
// varid — the stale-read window getFlex guards against.
func (d *Dataset) pendingWrite(varid int) bool {
	for i := range d.pending {
		if d.pending[i].write && d.pending[i].varid == varid {
			return true
		}
	}
	return false
}

// PendingRequests reports the queue length.
func (d *Dataset) PendingRequests() int { return len(d.pending) }

// WaitAll collectively completes all queued requests: one fused collective
// write followed by one fused collective read. Every process must call it,
// even with an empty queue.
//
// The queue is consumed by completion — success OR error. The fused
// accesses agree their errors collectively, so on failure every rank
// returns the same error with an empty queue: a caller that retries
// WaitAll after a transient fault re-runs an empty (no-op) batch instead
// of double-applying the queued writes, and Close no longer wedges on
// "nonblocking requests pending" with no way to drain them.
//
// If the batch itself succeeds but a queued IPutVara converted
// out-of-range values, WaitAll returns cdf.ErrRange after completing every
// operation — the deferred form of the blocking path's "write wrapped
// values, report NC_ERANGE" contract.
func (d *Dataset) WaitAll() error {
	if err := d.checkData(); err != nil {
		return err
	}
	if d.indep {
		return nctype.ErrIndepMode
	}
	err := d.waitAll()
	d.pending = d.pending[:0]
	return err
}

// waitAll runs the fused batch; WaitAll clears the queue around it.
func (d *Dataset) waitAll() error {
	var writes, reads []*pendingOp
	for i := range d.pending {
		op := &d.pending[i]
		if op.write {
			writes = append(writes, op)
		} else {
			reads = append(reads, op)
		}
	}
	// Agree on record growth — and on whether any rank queued a write at
	// all — across every process in one reduction.
	last := int64(-1)
	for _, op := range writes {
		if op.req.LastRecord > last {
			last = op.req.LastRecord
		}
	}
	anyWrites := int64(0)
	if len(writes) > 0 {
		anyWrites = 1
	}
	agreed := d.comm.AllreduceI64([]int64{last, anyWrites}, mpi.OpMax)
	if last = agreed[0]; last >= d.hdr.NumRecs {
		d.hdr.NumRecs = last + 1
		if err := d.writeNumRecs(); err != nil {
			return err
		}
	}
	// Fused write — skipped collectively when no rank queued one, so a
	// read-only batch never issues a collective write (which a NoWrite
	// file would refuse).
	if agreed[1] != 0 {
		wview, wbuf, _, err := fuse(d.hdr, writes)
		if err != nil {
			return err
		}
		if err := d.f.SetView(0, wview); err != nil {
			return err
		}
		if err := d.f.WriteAtAll(0, wbuf); err != nil {
			return err
		}
	}
	// Serve reads of prefetched variables from the local copy, like the
	// blocking path does — the fused collective read covers only the
	// misses. The file-system collective below still runs on every rank
	// (with an empty request where everything was cached), so ranks whose
	// caches diverge — invalidation is local — stay in lockstep.
	uncached := reads[:0]
	for _, op := range reads {
		if _, ok := d.cache[op.varid]; !ok {
			uncached = append(uncached, op)
			continue
		}
		ext := make([]byte, int(op.req.NElems)*op.v.Type.Size())
		d.cachedRead(op.varid, op.req, ext)
		linear, err := netcdf.SliceHead(op.data, op.req.NElems)
		if err != nil {
			return err
		}
		if err := cdf.DecodeSlice(ext, op.v.Type, linear); err != nil {
			return err
		}
	}
	reads = uncached
	// Fused read.
	rview, rbuf, windows, err := fuse(d.hdr, reads)
	if err != nil {
		return err
	}
	if err := d.f.SetView(0, rview); err != nil {
		return err
	}
	if err := d.f.ReadAtAll(0, rbuf); err != nil {
		return err
	}
	// Reassemble each op's external bytes (the windows alias rbuf, which the
	// read has now filled) and decode into the caller's buffer.
	for i, op := range reads {
		var chunk []byte
		if len(windows[i]) == 1 {
			chunk = windows[i][0]
		} else {
			var n int64
			for _, w := range windows[i] {
				n += int64(len(w))
			}
			chunk = make([]byte, 0, n)
			for _, w := range windows[i] {
				chunk = append(chunk, w...)
			}
		}
		linear, err := netcdf.SliceHead(op.data, op.req.NElems)
		if err != nil {
			return err
		}
		if err := cdf.DecodeSlice(chunk, op.v.Type, linear); err != nil {
			return err
		}
	}
	// Every operation landed; surface any deferred conversion range error.
	for _, op := range writes {
		if op.rangeErr != nil {
			return op.rangeErr
		}
	}
	return nil
}

// fuse merges the file extents of several operations into one view plus a
// matching linear buffer. For writes the buffer carries the data (in file
// order). The returned windows[i] alias the buffer regions belonging to
// operation i, in that op's own file order — for reads, the caller fills the
// buffer first and concatenates the windows afterwards.
func fuse(h *cdf.Header, ops []*pendingOp) (mpitype.Datatype, []byte, [][][]byte, error) {
	type piece struct {
		seg  mpitype.Segment
		op   int
		data []byte // writes only
	}
	var pieces []piece
	var total int64
	for i, op := range ops {
		segs := access.FileSegments(h, op.v, op.req)
		pos := int64(0)
		for _, s := range segs {
			p := piece{seg: s, op: i}
			if op.write {
				p.data = op.ext[pos : pos+s.Len]
			}
			pos += s.Len
			pieces = append(pieces, p)
			total += s.Len
		}
	}
	sort.SliceStable(pieces, func(a, b int) bool { return pieces[a].seg.Off < pieces[b].seg.Off })
	buf := make([]byte, total)
	segs := make([]mpitype.Segment, 0, len(pieces))
	// Per-op windows: pieces are globally ascending in file offset, so each
	// op's windows appear in its own ascending file order — the order
	// FileSegments maps to the op's linear buffer.
	windows := make([][][]byte, len(ops))
	pos := int64(0)
	for _, p := range pieces {
		if n := len(segs); n > 0 && segs[n-1].Off+segs[n-1].Len > p.seg.Off {
			return mpitype.Datatype{}, nil, nil, fmt.Errorf("pnetcdf: overlapping nonblocking requests at offset %d", p.seg.Off)
		}
		segs = append(segs, p.seg)
		window := buf[pos : pos+p.seg.Len]
		if p.data != nil {
			copy(window, p.data)
		}
		windows[p.op] = append(windows[p.op], window)
		pos += p.seg.Len
	}
	end := int64(0)
	if len(segs) > 0 {
		end = segs[len(segs)-1].Off + segs[len(segs)-1].Len
	}
	view, err := mpitype.FromSegments(segs, end)
	if err != nil {
		return mpitype.Datatype{}, nil, nil, err
	}
	return view, buf, windows, nil
}
