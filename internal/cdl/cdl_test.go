package cdl

import (
	"strings"
	"testing"

	"pnetcdf/internal/nctype"
	"pnetcdf/internal/netcdf"
)

const sample = `
netcdf weather {
dimensions:
	time = UNLIMITED ; // comment here
	lat = 2 ;
	lon = 3 ;
variables:
	float temp(time, lat, lon) ;
		temp:units = "K" ;
		temp:valid_range = 200.f, 350.f ;
	int station(lat, lon) ;
	char tag(lon) ;
	double scalar ;
	:title = "sample dataset" ;
	:version = 3 ;
data:
	temp = 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12 ;
	station = 10, 20, 30, 40, 50, 60 ;
	tag = "abc" ;
	scalar = 2.5 ;
}
`

func build(t *testing.T, src string) (*netcdf.Dataset, *netcdf.MemStore) {
	t.Helper()
	schema, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	store := &netcdf.MemStore{}
	d, err := netcdf.Create(store, nctype.Clobber)
	if err != nil {
		t.Fatal(err)
	}
	if err := schema.Build(d); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d, store
}

func TestParseStructure(t *testing.T) {
	s, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "weather" {
		t.Fatalf("name = %q", s.Name)
	}
	if len(s.Dims) != 3 || s.Dims[0].Size != 0 || s.Dims[2].Size != 3 {
		t.Fatalf("dims = %+v", s.Dims)
	}
	if len(s.Vars) != 4 {
		t.Fatalf("vars = %+v", s.Vars)
	}
	if s.Vars[0].Type != nctype.Float || len(s.Vars[0].Dims) != 3 {
		t.Fatalf("temp = %+v", s.Vars[0])
	}
	if len(s.Vars[0].Attrs) != 2 {
		t.Fatalf("temp attrs = %+v", s.Vars[0].Attrs)
	}
	if len(s.GAttrs) != 2 {
		t.Fatalf("gattrs = %+v", s.GAttrs)
	}
	if len(s.Data) != 4 {
		t.Fatalf("data = %v", s.Data)
	}
}

func TestBuildAndReadBack(t *testing.T) {
	d, _ := build(t, sample)
	// Records inferred: 12 values / (2*3) = 2 records.
	if d.NumRecs() != 2 {
		t.Fatalf("NumRecs = %d", d.NumRecs())
	}
	temp := make([]float32, 12)
	if err := d.GetVara(d.VarID("temp"), []int64{0, 0, 0}, []int64{2, 2, 3}, temp); err != nil {
		t.Fatal(err)
	}
	if temp[0] != 1 || temp[11] != 12 {
		t.Fatalf("temp = %v", temp)
	}
	st := make([]int32, 6)
	if err := d.GetVar(d.VarID("station"), st); err != nil {
		t.Fatal(err)
	}
	if st[5] != 60 {
		t.Fatalf("station = %v", st)
	}
	tag := make([]byte, 3)
	if err := d.GetVar(d.VarID("tag"), tag); err != nil {
		t.Fatal(err)
	}
	if string(tag) != "abc" {
		t.Fatalf("tag = %q", tag)
	}
	one := make([]float64, 1)
	if err := d.GetVar1(d.VarID("scalar"), nil, one); err != nil {
		t.Fatal(err)
	}
	if one[0] != 2.5 {
		t.Fatalf("scalar = %v", one[0])
	}
	// Attribute typing: suffixed floats, plain ints, strings.
	at, av, err := d.GetAttr(d.VarID("temp"), "valid_range")
	if err != nil || at != nctype.Float {
		t.Fatalf("valid_range: %v %v %v", at, av, err)
	}
	if vr := av.([]float32); vr[0] != 200 || vr[1] != 350 {
		t.Fatalf("valid_range = %v", vr)
	}
	at, av, err = d.GetAttr(netcdf.GlobalID, "version")
	if err != nil || at != nctype.Int || av.([]int32)[0] != 3 {
		t.Fatalf("version: %v %v %v", at, av, err)
	}
	_, av, _ = d.GetAttr(netcdf.GlobalID, "title")
	if string(av.([]byte)) != "sample dataset" {
		t.Fatalf("title = %q", av)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"netcdf x {",                        // missing }
		"netcdf x { dimensions: a = -3 ; }", // bad size
		"netcdf x { dimensions: a = 2 ; variables: blob v(a) ; }", // bad type
		"netcdf x { dimensions: a = 2 ; variables: int v(b) ; }",  // undeclared dim
		"netcdf x { data: v = 1 ; }",                              // undeclared var
		`netcdf x { variables: int v ; v:a = "unterminated ; }`,
		"netcdf x { dimensions: a = 2 ; variables: int v(a) ; data: v = 1, 2, 3 ; }", // wrong count
	}
	for i, src := range cases {
		s, err := Parse(src)
		if err != nil {
			continue // parse-time rejection is fine
		}
		store := &netcdf.MemStore{}
		d, _ := netcdf.Create(store, nctype.Clobber)
		if err := s.Build(d); err == nil {
			t.Errorf("case %d accepted: %q", i, src)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `netcdf c { // a comment
	dimensions:  x=4; // trailing
	variables: short v(x);
	data: v = 1,2 , 3,4 ;
	}`
	d, _ := build(t, src)
	got := make([]int16, 4)
	if err := d.GetVar(d.VarID("v"), got); err != nil {
		t.Fatal(err)
	}
	if got[3] != 4 {
		t.Fatalf("v = %v", got)
	}
}

func TestNumberSuffixes(t *testing.T) {
	src := `netcdf n { variables: int v ;
	v:b = 1b ; v:s = 2s ; v:l = 3L ; v:f = 1.5f ; v:d = 2.5d ; v:plain = 7 ; v:neg = -4 ;
	}`
	d, _ := build(t, src)
	check := func(name string, wantType nctype.Type) {
		at, _, err := d.GetAttr(d.VarID("v"), name)
		if err != nil || at != wantType {
			t.Fatalf("%s: type %v err %v, want %v", name, at, err, wantType)
		}
	}
	check("b", nctype.Byte)
	check("s", nctype.Short)
	check("l", nctype.Int)
	check("f", nctype.Float)
	check("d", nctype.Double)
	check("plain", nctype.Int)
	_, av, _ := d.GetAttr(d.VarID("v"), "neg")
	if av.([]int32)[0] != -4 {
		t.Fatalf("neg = %v", av)
	}
}

func TestScientificNotation(t *testing.T) {
	src := `netcdf e { variables: double v ; v:a = 1.5e-3 ; data: v = 2e10 ; }`
	d, _ := build(t, src)
	_, av, err := d.GetAttr(d.VarID("v"), "a")
	if err != nil || av.([]float64)[0] != 1.5e-3 {
		t.Fatalf("a = %v %v", av, err)
	}
	one := make([]float64, 1)
	if err := d.GetVar1(d.VarID("v"), nil, one); err != nil || one[0] != 2e10 {
		t.Fatalf("v = %v %v", one, err)
	}
}

func TestRoundTripThroughFile(t *testing.T) {
	// CDL -> dataset -> reopen -> verify it is a genuine file.
	d, store := build(t, sample)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	r, err := netcdf.Open(store, nctype.NoWrite)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumVars() != 4 || r.NumRecs() != 2 {
		t.Fatalf("reopened: vars=%d recs=%d", r.NumVars(), r.NumRecs())
	}
}

func TestStringEscapes(t *testing.T) {
	src := `netcdf s { variables: int v ; v:a = "line1\nline2\ttab\"q" ; }`
	d, _ := build(t, src)
	_, av, err := d.GetAttr(d.VarID("v"), "a")
	if err != nil {
		t.Fatal(err)
	}
	if string(av.([]byte)) != "line1\nline2\ttab\"q" {
		t.Fatalf("escaped = %q", av)
	}
}

func TestMultipleVarsOneLine(t *testing.T) {
	src := `netcdf m { dimensions: x = 2 ; variables: float a(x), b(x), c ; }`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Vars) != 3 || s.Vars[1].Name != "b" || len(s.Vars[2].Dims) != 0 {
		t.Fatalf("vars = %+v", s.Vars)
	}
	if strings.Join(s.Vars[0].Dims, ",") != "x" {
		t.Fatalf("a dims = %v", s.Vars[0].Dims)
	}
}
