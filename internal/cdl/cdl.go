// Package cdl parses the netCDF CDL text notation (the language ncdump
// prints and ncgen compiles) and builds netCDF datasets from it. It covers
// the classic-model subset: dimensions (including UNLIMITED), typed
// variables, global and variable attributes (strings and numeric lists with
// optional CDL type suffixes), and the data section.
package cdl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"pnetcdf/internal/nctype"
	"pnetcdf/internal/netcdf"
)

// Schema is a parsed CDL description.
type Schema struct {
	Name   string
	Dims   []DimDecl
	Vars   []VarDecl
	GAttrs []AttrDecl
	// Data maps variable names to their data-section values.
	Data map[string][]Value
}

// DimDecl declares a dimension; Size 0 means UNLIMITED.
type DimDecl struct {
	Name string
	Size int64
}

// VarDecl declares a variable.
type VarDecl struct {
	Name  string
	Type  nctype.Type
	Dims  []string
	Attrs []AttrDecl
}

// AttrDecl declares an attribute.
type AttrDecl struct {
	Name   string
	Values []Value
}

// Value is one CDL literal: a string, an integer or a float, with an
// optional type suffix recorded for attribute typing.
type Value struct {
	IsStr  bool
	IsInt  bool
	S      string
	I      int64
	F      float64
	Suffix byte // b, s, L, f, d or 0
}

// --- lexer ---

type lexer struct {
	src  string
	pos  int
	line int
}

type token struct {
	kind string // "ident", "number", "string", or the punctuation itself
	text string
	line int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto lex
		}
	}
	return token{kind: "eof", line: l.line}, nil
lex:
	c := l.src[l.pos]
	switch {
	case strings.ContainsRune("{}();,:=", rune(c)):
		l.pos++
		return token{kind: string(c), text: string(c), line: l.line}, nil
	case c == '"':
		start := l.pos + 1
		i := start
		var sb strings.Builder
		for i < len(l.src) && l.src[i] != '"' {
			if l.src[i] == '\\' && i+1 < len(l.src) {
				i++
				switch l.src[i] {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				default:
					sb.WriteByte(l.src[i])
				}
			} else {
				sb.WriteByte(l.src[i])
			}
			i++
		}
		if i >= len(l.src) {
			return token{}, fmt.Errorf("cdl:%d: unterminated string", l.line)
		}
		l.pos = i + 1
		return token{kind: "string", text: sb.String(), line: l.line}, nil
	case c == '-' || c == '+' || c == '.' || unicode.IsDigit(rune(c)):
		start := l.pos
		l.pos++
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if unicode.IsDigit(rune(c)) || c == '.' || c == 'e' || c == 'E' ||
				((c == '-' || c == '+') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E')) ||
				strings.ContainsRune("bsfdLlu", rune(c)) {
				l.pos++
				continue
			}
			break
		}
		return token{kind: "number", text: l.src[start:l.pos], line: l.line}, nil
	case c == '_' || unicode.IsLetter(rune(c)):
		start := l.pos
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if c == '_' || c == '-' || c == '.' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) {
				l.pos++
				continue
			}
			break
		}
		return token{kind: "ident", text: l.src[start:l.pos], line: l.line}, nil
	}
	return token{}, fmt.Errorf("cdl:%d: unexpected character %q", l.line, c)
}

// --- parser ---

type parser struct {
	lex  *lexer
	tok  token
	peek *token
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peekTok() (token, error) {
	if p.peek == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *parser) expect(kind string) (token, error) {
	if err := p.advance(); err != nil {
		return token{}, err
	}
	if p.tok.kind != kind {
		return token{}, fmt.Errorf("cdl:%d: expected %s, got %q", p.tok.line, kind, p.tok.text)
	}
	return p.tok, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("cdl:%d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

// Parse parses CDL source text.
func Parse(src string) (*Schema, error) {
	p := &parser{lex: &lexer{src: src, line: 1}}
	s := &Schema{Data: map[string][]Value{}}
	if t, err := p.expect("ident"); err != nil || t.text != "netcdf" {
		return nil, fmt.Errorf("cdl: input must start with 'netcdf <name> {'")
	}
	name, err := p.expect("ident")
	if err != nil {
		return nil, err
	}
	s.Name = name.text
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	for {
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch {
		case p.tok.kind == "}":
			return s, nil
		case p.tok.kind == "eof":
			return nil, fmt.Errorf("cdl: missing closing }")
		case p.tok.kind == "ident" && p.tok.text == "dimensions":
			if _, err := p.expect(":"); err != nil {
				return nil, err
			}
			if err := p.parseDims(s); err != nil {
				return nil, err
			}
		case p.tok.kind == "ident" && p.tok.text == "variables":
			if _, err := p.expect(":"); err != nil {
				return nil, err
			}
			if err := p.parseVars(s); err != nil {
				return nil, err
			}
		case p.tok.kind == "ident" && p.tok.text == "data":
			if _, err := p.expect(":"); err != nil {
				return nil, err
			}
			if err := p.parseData(s); err != nil {
				return nil, err
			}
		case p.tok.kind == ":":
			// Global attribute outside the variables section.
			if err := p.parseAttrInto(&s.GAttrs); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected %q", p.tok.text)
		}
	}
}

func (p *parser) atSectionEnd() (bool, error) {
	t, err := p.peekTok()
	if err != nil {
		return false, err
	}
	if t.kind == "}" || t.kind == "eof" {
		return true, nil
	}
	if t.kind == "ident" && (t.text == "variables" || t.text == "data" || t.text == "dimensions") {
		// Only a section start if followed by ':'.
		return true, nil
	}
	return false, nil
}

func (p *parser) parseDims(s *Schema) error {
	for {
		end, err := p.atSectionEnd()
		if err != nil {
			return err
		}
		if end {
			return nil
		}
		name, err := p.expect("ident")
		if err != nil {
			return err
		}
		if _, err := p.expect("="); err != nil {
			return err
		}
		if err := p.advance(); err != nil {
			return err
		}
		var size int64
		switch {
		case p.tok.kind == "ident" && strings.EqualFold(p.tok.text, "unlimited"):
			size = 0
		case p.tok.kind == "number":
			v, err := strconv.ParseInt(p.tok.text, 10, 64)
			if err != nil || v <= 0 {
				return p.errf("bad dimension size %q", p.tok.text)
			}
			size = v
		default:
			return p.errf("expected dimension size, got %q", p.tok.text)
		}
		if _, err := p.expect(";"); err != nil {
			return err
		}
		s.Dims = append(s.Dims, DimDecl{Name: name.text, Size: size})
	}
}

// typeNames maps CDL type keywords (including the classic aliases).
var typeNames = map[string]nctype.Type{
	"byte": nctype.Byte, "char": nctype.Char, "short": nctype.Short,
	"int": nctype.Int, "long": nctype.Int, "float": nctype.Float,
	"real": nctype.Float, "double": nctype.Double,
	"ubyte": nctype.UByte, "ushort": nctype.UShort, "uint": nctype.UInt,
	"int64": nctype.Int64, "uint64": nctype.UInt64,
}

func (p *parser) parseVars(s *Schema) error {
	for {
		end, err := p.atSectionEnd()
		if err != nil {
			return err
		}
		if end {
			return nil
		}
		t, err := p.peekTok()
		if err != nil {
			return err
		}
		if t.kind == ":" {
			// Global attribute.
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.parseAttrInto(&s.GAttrs); err != nil {
				return err
			}
			continue
		}
		first, err := p.expect("ident")
		if err != nil {
			return err
		}
		nxt, err := p.peekTok()
		if err != nil {
			return err
		}
		if nxt.kind == ":" {
			// Variable attribute: var:name = ...
			vi := findVar(s, first.text)
			if vi < 0 {
				return p.errf("attribute for undeclared variable %q", first.text)
			}
			if err := p.advance(); err != nil { // consume ':'
				return err
			}
			if err := p.parseAttrInto(&s.Vars[vi].Attrs); err != nil {
				return err
			}
			continue
		}
		// Type name followed by variable declaration(s).
		typ, ok := typeNames[first.text]
		if !ok {
			return p.errf("unknown type %q", first.text)
		}
		for {
			vname, err := p.expect("ident")
			if err != nil {
				return err
			}
			v := VarDecl{Name: vname.text, Type: typ}
			nxt, err := p.peekTok()
			if err != nil {
				return err
			}
			if nxt.kind == "(" {
				p.advance()
				for {
					d, err := p.expect("ident")
					if err != nil {
						return err
					}
					v.Dims = append(v.Dims, d.text)
					if err := p.advance(); err != nil {
						return err
					}
					if p.tok.kind == ")" {
						break
					}
					if p.tok.kind != "," {
						return p.errf("expected , or ) in dimension list")
					}
				}
			}
			s.Vars = append(s.Vars, v)
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind == ";" {
				break
			}
			if p.tok.kind != "," {
				return p.errf("expected , or ; after variable declaration")
			}
		}
	}
}

func findVar(s *Schema, name string) int {
	for i := range s.Vars {
		if s.Vars[i].Name == name {
			return i
		}
	}
	return -1
}

// parseAttrInto parses "<name> = <values> ;" (the leading "var:" or ":" is
// already consumed).
func (p *parser) parseAttrInto(dst *[]AttrDecl) error {
	name, err := p.expect("ident")
	if err != nil {
		return err
	}
	if _, err := p.expect("="); err != nil {
		return err
	}
	vals, err := p.parseValueList()
	if err != nil {
		return err
	}
	*dst = append(*dst, AttrDecl{Name: name.text, Values: vals})
	return nil
}

// parseValueList reads comma-separated literals up to ';'.
func (p *parser) parseValueList() ([]Value, error) {
	var vals []Value
	for {
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch p.tok.kind {
		case "string":
			vals = append(vals, Value{IsStr: true, S: p.tok.text})
		case "number":
			v, err := parseNumber(p.tok.text)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			vals = append(vals, v)
		case "ident":
			// _ stands for fill; treat as 0 for simplicity.
			if p.tok.text == "_" {
				vals = append(vals, Value{IsInt: true})
			} else {
				return nil, p.errf("unexpected %q in value list", p.tok.text)
			}
		default:
			return nil, p.errf("unexpected %q in value list", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == ";" {
			return vals, nil
		}
		if p.tok.kind != "," {
			return nil, p.errf("expected , or ; in value list")
		}
	}
}

func parseNumber(text string) (Value, error) {
	suffix := byte(0)
	body := text
	// Strip CDL suffixes: b, s, f, d, L, u combinations.
	for len(body) > 0 && strings.ContainsRune("bsfdLlu", rune(body[len(body)-1])) {
		// Avoid eating the 'e' of exponents (not in the set) — safe.
		suffix = body[len(body)-1]
		body = body[:len(body)-1]
	}
	if !strings.ContainsAny(body, ".eE") {
		if i, err := strconv.ParseInt(body, 10, 64); err == nil {
			return Value{IsInt: true, I: i, F: float64(i), Suffix: suffix}, nil
		}
	}
	f, err := strconv.ParseFloat(body, 64)
	if err != nil {
		return Value{}, fmt.Errorf("bad number %q", text)
	}
	return Value{F: f, I: int64(f), Suffix: suffix}, nil
}

func (p *parser) parseData(s *Schema) error {
	for {
		end, err := p.atSectionEnd()
		if err != nil {
			return err
		}
		if end {
			return nil
		}
		name, err := p.expect("ident")
		if err != nil {
			return err
		}
		if findVar(s, name.text) < 0 {
			return p.errf("data for undeclared variable %q", name.text)
		}
		if _, err := p.expect("="); err != nil {
			return err
		}
		vals, err := p.parseValueList()
		if err != nil {
			return err
		}
		s.Data[name.text] = vals
	}
}

// --- builder ---

// Build defines the schema on a freshly created dataset and writes the data
// section.
func (s *Schema) Build(d *netcdf.Dataset) error {
	dimIDs := map[string]int{}
	for _, dim := range s.Dims {
		id, err := d.DefDim(dim.Name, dim.Size)
		if err != nil {
			return err
		}
		dimIDs[dim.Name] = id
	}
	varIDs := map[string]int{}
	for _, v := range s.Vars {
		var ids []int
		for _, dn := range v.Dims {
			id, ok := dimIDs[dn]
			if !ok {
				return fmt.Errorf("cdl: variable %s uses undeclared dimension %s", v.Name, dn)
			}
			ids = append(ids, id)
		}
		id, err := d.DefVar(v.Name, v.Type, ids)
		if err != nil {
			return err
		}
		varIDs[v.Name] = id
		for _, a := range v.Attrs {
			if err := putAttr(d, id, v.Type, a); err != nil {
				return err
			}
		}
	}
	for _, a := range s.GAttrs {
		if err := putAttr(d, netcdf.GlobalID, nctype.Invalid, a); err != nil {
			return err
		}
	}
	if err := d.EndDef(); err != nil {
		return err
	}
	for _, v := range s.Vars {
		vals, ok := s.Data[v.Name]
		if !ok {
			continue
		}
		if err := writeData(d, varIDs[v.Name], v, vals, dimIDs, s); err != nil {
			return err
		}
	}
	return nil
}

// attrType infers an attribute's type from its values: strings are char;
// suffixed numbers follow the suffix; plain integers are int; floats are
// double (netCDF ncgen rules, simplified).
func attrType(a AttrDecl) nctype.Type {
	if len(a.Values) == 0 {
		return nctype.Char
	}
	if a.Values[0].IsStr {
		return nctype.Char
	}
	t := nctype.Int
	for _, v := range a.Values {
		switch v.Suffix {
		case 'b':
			return nctype.Byte
		case 's':
			return nctype.Short
		case 'f':
			return nctype.Float
		case 'd':
			return nctype.Double
		case 'L', 'l':
			// Classic CDL: L means "long", i.e. a 32-bit int.
			return nctype.Int
		}
		if !v.IsInt {
			t = nctype.Double
		}
	}
	return t
}

func putAttr(d *netcdf.Dataset, varid int, _ nctype.Type, a AttrDecl) error {
	t := attrType(a)
	if t == nctype.Char {
		var sb strings.Builder
		for _, v := range a.Values {
			sb.WriteString(v.S)
		}
		return d.PutAttr(varid, a.Name, nctype.Char, sb.String())
	}
	switch t {
	case nctype.Byte:
		return d.PutAttr(varid, a.Name, t, valuesToInts[int8](a.Values))
	case nctype.Short:
		return d.PutAttr(varid, a.Name, t, valuesToInts[int16](a.Values))
	case nctype.Int:
		return d.PutAttr(varid, a.Name, t, valuesToInts[int32](a.Values))
	case nctype.Int64:
		return d.PutAttr(varid, a.Name, t, valuesToInts[int64](a.Values))
	case nctype.Float:
		return d.PutAttr(varid, a.Name, t, valuesToFloats[float32](a.Values))
	default:
		return d.PutAttr(varid, a.Name, nctype.Double, valuesToFloats[float64](a.Values))
	}
}

func valuesToInts[T int8 | int16 | int32 | int64](vals []Value) []T {
	out := make([]T, len(vals))
	for i, v := range vals {
		out[i] = T(v.I)
	}
	return out
}

func valuesToFloats[T float32 | float64](vals []Value) []T {
	out := make([]T, len(vals))
	for i, v := range vals {
		out[i] = T(v.F)
	}
	return out
}

func writeData(d *netcdf.Dataset, varid int, v VarDecl, vals []Value, dimIDs map[string]int, s *Schema) error {
	if v.Type == nctype.Char {
		var sb strings.Builder
		for _, val := range vals {
			sb.WriteString(val.S)
		}
		data := []byte(sb.String())
		return putWhole(d, varid, v, int64(len(data)), data, dimIDs, s)
	}
	n := int64(len(vals))
	var data any
	switch v.Type {
	case nctype.Byte:
		data = valuesToInts[int8](vals)
	case nctype.Short:
		data = valuesToInts[int16](vals)
	case nctype.Int:
		data = valuesToInts[int32](vals)
	case nctype.Int64, nctype.UInt64:
		data = valuesToInts[int64](vals)
	case nctype.Float:
		data = valuesToFloats[float32](vals)
	default:
		data = valuesToFloats[float64](vals)
	}
	return putWhole(d, varid, v, n, data, dimIDs, s)
}

// putWhole writes n leading values of a variable, inferring the record count
// for record variables.
func putWhole(d *netcdf.Dataset, varid int, v VarDecl, n int64, data any, dimIDs map[string]int, s *Schema) error {
	start := make([]int64, len(v.Dims))
	count := make([]int64, len(v.Dims))
	inner := int64(1)
	for i, dn := range v.Dims {
		size := s.Dims[dimIDs[dn]].Size
		count[i] = size
		if i > 0 || size > 0 {
			if size > 0 {
				inner *= size
			}
		}
	}
	if len(v.Dims) == 0 {
		return d.PutVar1(varid, nil, data)
	}
	if count[0] == 0 { // record variable: infer records from value count
		inner = 1
		for _, c := range count[1:] {
			inner *= c
		}
		if inner == 0 || n%inner != 0 {
			return fmt.Errorf("cdl: %s: %d values do not fill whole records (%d per record)", v.Name, n, inner)
		}
		count[0] = n / inner
	} else {
		want := int64(1)
		for _, c := range count {
			want *= c
		}
		if n != want {
			return fmt.Errorf("cdl: %s: %d values for %d-element variable", v.Name, n, want)
		}
	}
	return d.PutVara(varid, start, count, data)
}
