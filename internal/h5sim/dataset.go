package h5sim

import (
	"encoding/binary"
	"fmt"
	"strings"

	"pnetcdf/internal/cdf"
	"pnetcdf/internal/mpi"
	"pnetcdf/internal/mpitype"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/netcdf"
)

// Dataset is an open dataset: a typed n-dimensional array with contiguous
// layout. Open/create/close are collective.
type Dataset struct {
	f       *File
	path    string
	hdrAddr int64

	typ      nctype.Type
	dims     []int64
	dataAddr int64
	dataSize int64
	attrs    []attr
}

// dataset header block layout (within dsHeaderCap bytes):
// magic(4) objDataset(4) type(4) rank(4) dims(8*rank) dataAddr(8)
// dataSize(8) attrBytes...
func (ds *Dataset) encodeHeader() ([]byte, error) {
	buf := make([]byte, 0, 256)
	buf = append(buf, headerMagic...)
	buf = binary.BigEndian.AppendUint32(buf, objDataset)
	buf = binary.BigEndian.AppendUint32(buf, uint32(ds.typ))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ds.dims)))
	for _, d := range ds.dims {
		buf = binary.BigEndian.AppendUint64(buf, uint64(d))
	}
	buf = binary.BigEndian.AppendUint64(buf, uint64(ds.dataAddr))
	buf = binary.BigEndian.AppendUint64(buf, uint64(ds.dataSize))
	buf = append(buf, encodeAttrs(ds.attrs)...)
	if len(buf) > dsHeaderCap {
		return nil, ErrHeaderFul
	}
	return buf, nil
}

func decodeDatasetHeader(buf []byte) (*Dataset, error) {
	if len(buf) < 16 || string(buf[:4]) != string(headerMagic) ||
		binary.BigEndian.Uint32(buf[4:]) != objDataset {
		return nil, fmt.Errorf("%w: no dataset header", ErrNotH5)
	}
	ds := &Dataset{typ: nctype.Type(binary.BigEndian.Uint32(buf[8:]))}
	rank := int(binary.BigEndian.Uint32(buf[12:]))
	pos := 16
	if len(buf) < pos+8*rank+16 {
		return nil, ErrNotH5
	}
	for i := 0; i < rank; i++ {
		ds.dims = append(ds.dims, int64(binary.BigEndian.Uint64(buf[pos:])))
		pos += 8
	}
	ds.dataAddr = int64(binary.BigEndian.Uint64(buf[pos:]))
	ds.dataSize = int64(binary.BigEndian.Uint64(buf[pos+8:]))
	pos += 16
	attrs, _, err := decodeAttrs(buf[pos:])
	if err != nil {
		return nil, err
	}
	ds.attrs = attrs
	return ds, nil
}

// CreateDataset collectively creates a contiguous dataset at path. The
// parent group must exist. Every process must call with identical
// arguments.
func (f *File) CreateDataset(path string, typ nctype.Type, dims []int64) (*Dataset, error) {
	if f.closed {
		return nil, fmt.Errorf("h5sim: file closed")
	}
	if f.ro {
		return nil, nctype.ErrPerm
	}
	n := typeSize(typ)
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("h5sim: invalid dimension %d", d)
		}
		n *= d
	}
	// Deterministic allocation on all ranks.
	hdrAddr := f.allocate(dsHeaderCap)
	dataAddr := f.allocate(n)
	ds := &Dataset{
		f: f, path: path, hdrAddr: hdrAddr,
		typ: typ, dims: append([]int64(nil), dims...),
		dataAddr: dataAddr, dataSize: n,
	}
	var errFlag int64
	if f.comm.Rank() == 0 {
		err := func() error {
			parts := splitPath(path)
			if len(parts) == 0 {
				return fmt.Errorf("%w: empty dataset path", ErrNotFound)
			}
			parentAddr := f.rootAddr
			if len(parts) > 1 {
				var lerr error
				parentAddr, lerr = f.lookupLocal(strings.Join(parts[:len(parts)-1], "/"))
				if lerr != nil {
					return lerr
				}
			}
			blob, err := ds.encodeHeader()
			if err != nil {
				return err
			}
			if err := f.mf.WriteRaw(blob, hdrAddr); err != nil {
				return err
			}
			return f.insertLocal(parentAddr, parts[len(parts)-1], hdrAddr)
		}()
		if err != nil {
			errFlag = 1
		}
	}
	state := mpi.DecodeI64s(f.comm.Bcast(0, mpi.EncodeI64s([]int64{errFlag, f.eof})))
	f.eof = state[1]
	f.comm.Barrier()
	if state[0] != 0 {
		return nil, fmt.Errorf("h5sim: create dataset %s failed", path)
	}
	return ds, nil
}

// OpenDataset collectively opens a dataset. Unlike PnetCDF's
// root-reads-then-broadcasts header handling, every process walks the
// namespace and fetches the object header from the file itself — the HDF5
// 1.4 behavior the paper contrasts with ("the cost of file access to locate
// and fetch the header information of that object", §4.3). The resulting
// small dispersed reads contend on the I/O servers as the process count
// grows.
func (f *File) OpenDataset(path string) (*Dataset, error) {
	if f.closed {
		return nil, fmt.Errorf("h5sim: file closed")
	}
	var blob []byte
	var hdrAddr int64
	var errFlag int64
	addr, err := f.lookupLocal(path)
	if err != nil {
		errFlag = 1
	} else {
		hdrAddr = addr
		blob = make([]byte, dsHeaderCap)
		if err := f.mf.ReadRaw(blob, addr); err != nil {
			errFlag = 1
		}
	}
	// Collective error agreement (all fail or all succeed together).
	if f.comm.AllreduceI64([]int64{errFlag}, mpi.OpMax)[0] != 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	ds, err := decodeDatasetHeader(blob)
	if err != nil {
		return nil, err
	}
	ds.f = f
	ds.path = path
	ds.hdrAddr = hdrAddr
	return ds, nil
}

// Close collectively closes the dataset, rewriting its header (HDF5 1.4
// updated object metadata at close).
func (ds *Dataset) Close() error {
	if !ds.f.ro {
		if ds.f.comm.Rank() == 0 {
			blob, err := ds.encodeHeader()
			if err != nil {
				return err
			}
			if err := ds.f.mf.WriteRaw(blob, ds.hdrAddr); err != nil {
				return err
			}
		}
	}
	ds.f.metadataSync()
	return nil
}

// Dims returns the dataset's shape.
func (ds *Dataset) Dims() []int64 { return append([]int64(nil), ds.dims...) }

// Type returns the element type.
func (ds *Dataset) Type() nctype.Type { return ds.typ }

// PutAttr stores a small attribute in the object header (collective).
func (ds *Dataset) PutAttr(name string, typ nctype.Type, value any) error {
	if ds.f.ro {
		return nctype.ErrPerm
	}
	a, err := cdf.MakeAttr(name, typ, value)
	if err != nil {
		return err
	}
	na := attr{name: name, typ: typ, nelems: a.Nelems, data: a.Values}
	replaced := false
	for i := range ds.attrs {
		if ds.attrs[i].name == name {
			ds.attrs[i] = na
			replaced = true
			break
		}
	}
	if !replaced {
		ds.attrs = append(ds.attrs, na)
	}
	// Header rewrite by root + sync: metadata updates are collective.
	var errFlag int64
	if ds.f.comm.Rank() == 0 {
		blob, err := ds.encodeHeader()
		if err != nil {
			errFlag = 1
		} else if err := ds.f.mf.WriteRaw(blob, ds.hdrAddr); err != nil {
			errFlag = 1
		}
	}
	if mpi.DecodeI64s(ds.f.comm.Bcast(0, mpi.EncodeI64s([]int64{errFlag})))[0] != 0 {
		return ErrHeaderFul
	}
	return nil
}

// GetAttr returns an attribute's decoded value (local to the open handle).
func (ds *Dataset) GetAttr(name string) (nctype.Type, any, error) {
	for _, a := range ds.attrs {
		if a.name == name {
			v, err := cdf.DecodeAttrValue(cdf.Attr{Name: a.name, Type: a.typ, Nelems: a.nelems, Values: a.data})
			return a.typ, v, err
		}
	}
	return 0, nil, fmt.Errorf("%w: attribute %s", ErrNotFound, name)
}

// Select is a hyperslab selection: Start/Count over an array of shape Dims.
// For file selections Dims must equal the dataset shape; for memory
// selections Dims describes the application buffer (e.g. a guard-cell
// block).
type Select struct {
	Dims  []int64
	Start []int64
	Count []int64
}

func (s *Select) validate() (int64, error) {
	if len(s.Start) != len(s.Dims) || len(s.Count) != len(s.Dims) {
		return 0, fmt.Errorf("h5sim: selection rank mismatch")
	}
	n := int64(1)
	for i := range s.Dims {
		if s.Start[i] < 0 || s.Count[i] < 0 || s.Start[i]+s.Count[i] > s.Dims[i] {
			return 0, fmt.Errorf("h5sim: selection out of bounds in dim %d", i)
		}
		n *= s.Count[i]
	}
	return n, nil
}

// recursivePack walks the hyperslab dimension by dimension, copying one
// innermost row per leaf call — the HDF5 1.4 strategy the paper identifies
// as costly. It both performs the copy and charges the per-row recursion
// overhead to the caller's virtual clock.
func recursivePack[T any](src []T, dims, start, count []int64, dst []T, pos *int64, dim int, base int64, stride []int64, proc *mpi.Proc, gather bool) {
	proc.Advance(recursionCallCost)
	if dim == len(dims)-1 {
		off := base + start[dim]
		if gather {
			copy(dst[*pos:*pos+count[dim]], src[off:off+count[dim]])
		} else {
			copy(src[off:off+count[dim]], dst[*pos:*pos+count[dim]])
		}
		*pos += count[dim]
		return
	}
	for k := int64(0); k < count[dim]; k++ {
		recursivePack(src, dims, start, count, dst, pos, dim+1, base+(start[dim]+k)*stride[dim], stride, proc, gather)
	}
}

func strides(dims []int64) []int64 {
	s := make([]int64, len(dims))
	if len(dims) == 0 {
		return s
	}
	s[len(dims)-1] = 1
	for i := len(dims) - 2; i >= 0; i-- {
		s[i] = s[i+1] * dims[i+1]
	}
	return s
}

func packSelection(buf any, sel *Select, n int64, proc *mpi.Proc, gather bool, linear any) (any, error) {
	st := strides(sel.Dims)
	var pos int64
	switch src := buf.(type) {
	case []float64:
		dst, _ := linear.([]float64)
		if dst == nil {
			dst = make([]float64, n)
		}
		recursivePack(src, sel.Dims, sel.Start, sel.Count, dst, &pos, 0, 0, st, proc, gather)
		return dst, nil
	case []float32:
		dst, _ := linear.([]float32)
		if dst == nil {
			dst = make([]float32, n)
		}
		recursivePack(src, sel.Dims, sel.Start, sel.Count, dst, &pos, 0, 0, st, proc, gather)
		return dst, nil
	case []int32:
		dst, _ := linear.([]int32)
		if dst == nil {
			dst = make([]int32, n)
		}
		recursivePack(src, sel.Dims, sel.Start, sel.Count, dst, &pos, 0, 0, st, proc, gather)
		return dst, nil
	case []int64:
		dst, _ := linear.([]int64)
		if dst == nil {
			dst = make([]int64, n)
		}
		recursivePack(src, sel.Dims, sel.Start, sel.Count, dst, &pos, 0, 0, st, proc, gather)
		return dst, nil
	case []int16:
		dst, _ := linear.([]int16)
		if dst == nil {
			dst = make([]int16, n)
		}
		recursivePack(src, sel.Dims, sel.Start, sel.Count, dst, &pos, 0, 0, st, proc, gather)
		return dst, nil
	case []uint8:
		dst, _ := linear.([]uint8)
		if dst == nil {
			dst = make([]uint8, n)
		}
		recursivePack(src, sel.Dims, sel.Start, sel.Count, dst, &pos, 0, 0, st, proc, gather)
		return dst, nil
	}
	return nil, fmt.Errorf("h5sim: unsupported buffer type %T", buf)
}

// WriteAll collectively writes the file-space hyperslab fsel from the
// memory-space hyperslab msel of buf (msel nil = buf is contiguous and
// exactly the selection). All processes must call; empty selections are
// allowed.
func (ds *Dataset) WriteAll(fsel Select, msel *Select, buf any) error {
	if ds.f.ro {
		return nctype.ErrPerm
	}
	fsel.Dims = ds.dims
	n, err := fsel.validate()
	if err != nil {
		return err
	}
	// Memory-side: recursive hyperslab packing.
	var linear any
	if msel != nil {
		mn, err := msel.validate()
		if err != nil {
			return err
		}
		if mn != n {
			return fmt.Errorf("h5sim: memory selection (%d) != file selection (%d)", mn, n)
		}
		linear, err = packSelection(buf, msel, n, ds.f.comm.Proc(), true, nil)
		if err != nil {
			return err
		}
	} else {
		linear, err = netcdf.SliceHead(buf, n)
		if err != nil {
			return err
		}
	}
	// Convert to the file representation (charged as a linear copy).
	ext, encErr := cdf.EncodeSlice(nil, ds.typ, linear)
	if encErr != nil && encErr != cdf.ErrRange {
		return encErr
	}
	ds.f.comm.Proc().Advance(float64(len(ext)) / memcpyBytesPerSec)
	// File-space: recursive traversal again to build the offset list (HDF5
	// walks the file dataspace the same way), then MPI-IO collective write.
	view, err := ds.fileView(&fsel)
	if err != nil {
		return err
	}
	if err := ds.f.mf.SetView(0, view); err != nil {
		return err
	}
	// The data transfer itself is independent, as HDF5 1.4's default
	// transfer mode (and the FLASH benchmark configuration of the era) was:
	// each process writes its own hyperslab, without collective buffering —
	// so unaligned per-process slabs pay the file system's partial-stripe
	// penalty that two-phase I/O's aligned domains avoid.
	if err := ds.f.mf.WriteAt(0, ext); err != nil {
		return err
	}
	ds.f.comm.Barrier()
	// Write-time metadata update: the root rewrites the object header and
	// every process exchanges its metadata-cache state (paper: "HDF5
	// metadata is updated during data writes... additional synchronization
	// is necessary at write time"). The exchange volume grows with the
	// process count, as the real library's cache coherence traffic did.
	if ds.f.comm.Rank() == 0 {
		blob, err := ds.encodeHeader()
		if err != nil {
			return err
		}
		if len(blob) > headerIOBytes {
			blob = blob[:headerIOBytes]
		}
		if err := ds.f.mf.WriteRaw(blob, ds.hdrAddr); err != nil {
			return err
		}
	}
	ds.f.metadataSync()
	return encErr
}

// ReadAll collectively reads the file-space hyperslab fsel into the memory
// hyperslab msel of buf.
func (ds *Dataset) ReadAll(fsel Select, msel *Select, buf any) error {
	fsel.Dims = ds.dims
	n, err := fsel.validate()
	if err != nil {
		return err
	}
	view, err := ds.fileView(&fsel)
	if err != nil {
		return err
	}
	if err := ds.f.mf.SetView(0, view); err != nil {
		return err
	}
	ext := make([]byte, n*typeSize(ds.typ))
	if err := ds.f.mf.ReadAt(0, ext); err != nil {
		return err
	}
	ds.f.comm.Barrier()
	ds.f.comm.Proc().Advance(float64(len(ext)) / memcpyBytesPerSec)
	if msel == nil {
		linear, err := netcdf.SliceHead(buf, n)
		if err != nil {
			return err
		}
		return cdf.DecodeSlice(ext, ds.typ, linear)
	}
	mn, err := msel.validate()
	if err != nil {
		return err
	}
	if mn != n {
		return fmt.Errorf("h5sim: memory selection (%d) != file selection (%d)", mn, n)
	}
	tmp, err := netcdf.MakeLike(buf, n)
	if err != nil {
		return err
	}
	if err := cdf.DecodeSlice(ext, ds.typ, tmp); err != nil {
		return err
	}
	// Recursive unpack into the guarded buffer.
	_, err = packSelection(buf, msel, n, ds.f.comm.Proc(), false, tmp)
	return err
}

// fileView builds the MPI-IO view for a file hyperslab, charging the
// recursive dataspace walk.
func (ds *Dataset) fileView(fsel *Select) (mpitype.Datatype, error) {
	sub, err := mpitype.Subarray(ds.dims, fsel.Count, fsel.Start, typeSize(ds.typ))
	if err != nil {
		return mpitype.Datatype{}, err
	}
	// Charge the recursive walk over the selection rows.
	rows := int64(1)
	for i := 0; i < len(fsel.Count)-1; i++ {
		rows *= fsel.Count[i]
	}
	ds.f.comm.Proc().Advance(float64(rows) * recursionCallCost)
	segs := sub.Tiled(nil, ds.dataAddr, 1)
	end := int64(0)
	if len(segs) > 0 {
		end = segs[len(segs)-1].Off + segs[len(segs)-1].Len
	}
	return mpitype.FromSegments(segs, end)
}
