package h5sim

import (
	"errors"
	"fmt"
	"testing"

	"pnetcdf/internal/mpi"
	"pnetcdf/internal/nctype"
	"pnetcdf/internal/pfs"
)

func testFS() *pfs.FS { return pfs.New(pfs.DefaultConfig()) }

func runWorld(t *testing.T, n int, fn func(*mpi.Comm) error) {
	t.Helper()
	if err := mpi.Run(n, mpi.DefaultNet(), fn); err != nil {
		t.Fatalf("world of %d: %v", n, err)
	}
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	fsys := testFS()
	const p = 4
	runWorld(t, p, func(c *mpi.Comm) error {
		f, err := CreateFile(c, fsys, "a.h5", nil)
		if err != nil {
			return err
		}
		ds, err := f.CreateDataset("/dens", nctype.Double, []int64{8, 4})
		if err != nil {
			return err
		}
		// Each rank writes 2 rows.
		rows := make([]float64, 2*4)
		for i := range rows {
			rows[i] = float64(c.Rank()*100 + i)
		}
		fsel := Select{Start: []int64{int64(c.Rank() * 2), 0}, Count: []int64{2, 4}}
		if err := ds.WriteAll(fsel, nil, rows); err != nil {
			return err
		}
		if err := ds.Close(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		// Reopen and read with a different decomposition (columns).
		f, err = OpenFile(c, fsys, "a.h5", true, nil)
		if err != nil {
			return err
		}
		ds, err = f.OpenDataset("/dens")
		if err != nil {
			return err
		}
		if ds.Type() != nctype.Double || len(ds.Dims()) != 2 || ds.Dims()[0] != 8 {
			return fmt.Errorf("metadata: %v %v", ds.Type(), ds.Dims())
		}
		col := make([]float64, 8)
		fsel = Select{Start: []int64{0, int64(c.Rank())}, Count: []int64{8, 1}}
		if err := ds.ReadAll(fsel, nil, col); err != nil {
			return err
		}
		for r := 0; r < 8; r++ {
			want := float64((r/2)*100 + (r%2)*4 + c.Rank())
			if col[r] != want {
				return fmt.Errorf("rank %d col[%d] = %v, want %v", c.Rank(), r, col[r], want)
			}
		}
		if err := ds.Close(); err != nil {
			return err
		}
		return f.Close()
	})
}

func TestGroupsAndNamespace(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		f, err := CreateFile(c, fsys, "g.h5", nil)
		if err != nil {
			return err
		}
		if err := f.CreateGroup("/sim"); err != nil {
			return err
		}
		if err := f.CreateGroup("/sim/step0"); err != nil {
			return err
		}
		ds, err := f.CreateDataset("/sim/step0/temp", nctype.Float, []int64{4})
		if err != nil {
			return err
		}
		if err := ds.WriteAll(Select{Start: []int64{0}, Count: []int64{4}}, nil, []float32{1, 2, 3, 4}); err != nil {
			return err
		}
		ds.Close()
		// Duplicate names rejected.
		if _, err := f.CreateDataset("/sim/step0/temp", nctype.Float, []int64{4}); err == nil {
			return errors.New("duplicate dataset accepted")
		}
		// Missing paths rejected.
		if _, err := f.OpenDataset("/sim/step1/temp"); err == nil {
			return errors.New("open of missing path succeeded")
		}
		f.Close()
		f, err = OpenFile(c, fsys, "g.h5", true, nil)
		if err != nil {
			return err
		}
		ds, err = f.OpenDataset("/sim/step0/temp")
		if err != nil {
			return err
		}
		got := make([]float32, 4)
		if err := ds.ReadAll(Select{Start: []int64{0}, Count: []int64{4}}, nil, got); err != nil {
			return err
		}
		if got[3] != 4 {
			return fmt.Errorf("nested dataset = %v", got)
		}
		ds.Close()
		return f.Close()
	})
}

func TestMemoryHyperslabGuardCells(t *testing.T) {
	// The FLASH pattern: an 4x4 interior inside a 8x8 guarded block.
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		f, err := CreateFile(c, fsys, "guard.h5", nil)
		if err != nil {
			return err
		}
		ds, err := f.CreateDataset("/unk", nctype.Double, []int64{2, 4, 4})
		if err != nil {
			return err
		}
		// Guarded 8x8 block; interior at (2,2).
		block := make([]float64, 8*8)
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				block[(y+2)*8+(x+2)] = float64(c.Rank()*1000 + y*10 + x + 1)
			}
		}
		// Guards are poison; they must never reach the file.
		for i := range block {
			if block[i] == 0 {
				block[i] = -7777
			}
		}
		fsel := Select{Start: []int64{int64(c.Rank()), 0, 0}, Count: []int64{1, 4, 4}}
		msel := &Select{Dims: []int64{8, 8}, Start: []int64{2, 2}, Count: []int64{4, 4}}
		if err := ds.WriteAll(fsel, msel, block); err != nil {
			return err
		}
		// Read back contiguously.
		flat := make([]float64, 16)
		if err := ds.ReadAll(fsel, nil, flat); err != nil {
			return err
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				want := float64(c.Rank()*1000 + y*10 + x + 1)
				if flat[y*4+x] != want {
					return fmt.Errorf("interior (%d,%d) = %v, want %v (guards leaked?)", y, x, flat[y*4+x], want)
				}
			}
		}
		// And read back into a guarded buffer.
		back := make([]float64, 8*8)
		if err := ds.ReadAll(fsel, msel, back); err != nil {
			return err
		}
		if back[0] != 0 || back[2*8+2] != float64(c.Rank()*1000+1) {
			return fmt.Errorf("guarded read: corner=%v interior=%v", back[0], back[2*8+2])
		}
		ds.Close()
		return f.Close()
	})
}

func TestAttributes(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		f, err := CreateFile(c, fsys, "at.h5", nil)
		if err != nil {
			return err
		}
		ds, err := f.CreateDataset("/d", nctype.Int, []int64{2})
		if err != nil {
			return err
		}
		if err := ds.PutAttr("units", nctype.Char, "kelvin"); err != nil {
			return err
		}
		if err := ds.PutAttr("scale", nctype.Double, 2.5); err != nil {
			return err
		}
		if err := ds.PutAttr("units", nctype.Char, "C"); err != nil { // overwrite
			return err
		}
		ds.Close()
		f.Close()
		f, err = OpenFile(c, fsys, "at.h5", true, nil)
		if err != nil {
			return err
		}
		ds, err = f.OpenDataset("/d")
		if err != nil {
			return err
		}
		_, v, err := ds.GetAttr("units")
		if err != nil || string(v.([]byte)) != "C" {
			return fmt.Errorf("units = %v %v", v, err)
		}
		_, v, err = ds.GetAttr("scale")
		if err != nil || v.([]float64)[0] != 2.5 {
			return fmt.Errorf("scale = %v %v", v, err)
		}
		if _, _, err := ds.GetAttr("absent"); err == nil {
			return errors.New("absent attr found")
		}
		ds.Close()
		return f.Close()
	})
}

func TestSelectionValidation(t *testing.T) {
	fsys := testFS()
	runWorld(t, 1, func(c *mpi.Comm) error {
		f, _ := CreateFile(c, fsys, "v.h5", nil)
		ds, err := f.CreateDataset("/d", nctype.Float, []int64{4, 4})
		if err != nil {
			return err
		}
		buf := make([]float32, 16)
		if err := ds.WriteAll(Select{Start: []int64{2, 0}, Count: []int64{3, 4}}, nil, buf); err == nil {
			return errors.New("out-of-bounds selection accepted")
		}
		if err := ds.WriteAll(Select{Start: []int64{0}, Count: []int64{4}}, nil, buf); err == nil {
			return errors.New("rank mismatch accepted")
		}
		msel := &Select{Dims: []int64{4, 4}, Start: []int64{0, 0}, Count: []int64{2, 2}}
		if err := ds.WriteAll(Select{Start: []int64{0, 0}, Count: []int64{4, 4}}, msel, buf); err == nil {
			return errors.New("mem/file size mismatch accepted")
		}
		if _, err := f.CreateDataset("/bad", nctype.Float, []int64{0}); err == nil {
			return errors.New("zero dimension accepted")
		}
		ds.Close()
		return f.Close()
	})
}

func TestManyDatasetsLikeFlash(t *testing.T) {
	// 24 unknowns + metadata arrays: the namespace and header machinery must
	// hold up, and the file must round-trip.
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		f, err := CreateFile(c, fsys, "flashlike.h5", nil)
		if err != nil {
			return err
		}
		for i := 0; i < 24; i++ {
			ds, err := f.CreateDataset(fmt.Sprintf("/unk%02d", i), nctype.Double, []int64{4, 2, 2, 2})
			if err != nil {
				return err
			}
			vals := make([]float64, 2*2*2*2)
			for j := range vals {
				vals[j] = float64(i*1000 + c.Rank()*100 + j)
			}
			fsel := Select{Start: []int64{int64(c.Rank() * 2), 0, 0, 0}, Count: []int64{2, 2, 2, 2}}
			if err := ds.WriteAll(fsel, nil, vals); err != nil {
				return err
			}
			if err := ds.Close(); err != nil {
				return err
			}
		}
		f.Close()
		f, err = OpenFile(c, fsys, "flashlike.h5", true, nil)
		if err != nil {
			return err
		}
		for _, i := range []int{0, 7, 23} {
			ds, err := f.OpenDataset(fmt.Sprintf("/unk%02d", i))
			if err != nil {
				return err
			}
			got := make([]float64, 16)
			fsel := Select{Start: []int64{int64(c.Rank() * 2), 0, 0, 0}, Count: []int64{2, 2, 2, 2}}
			if err := ds.ReadAll(fsel, nil, got); err != nil {
				return err
			}
			if got[3] != float64(i*1000+c.Rank()*100+3) {
				return fmt.Errorf("unk%02d[3] = %v", i, got[3])
			}
			ds.Close()
		}
		return f.Close()
	})
}

func TestVirtualTimeOverheadVsPnetCDFShape(t *testing.T) {
	// Not a full benchmark — just the invariant the paper's Figure 7 rests
	// on: for the same data volume and decomposition, the h5sim write path
	// costs more virtual time than the PnetCDF-style single-view write,
	// because of per-dataset collective metadata and packing overheads.
	fsys := testFS()
	var h5Time float64
	runWorld(t, 4, func(c *mpi.Comm) error {
		f, err := CreateFile(c, fsys, "perf.h5", nil)
		if err != nil {
			return err
		}
		c.Proc().SetClock(0)
		fsys.ResetClock()
		c.Barrier()
		for i := 0; i < 8; i++ {
			ds, err := f.CreateDataset(fmt.Sprintf("/u%d", i), nctype.Double, []int64{4, 64, 64})
			if err != nil {
				return err
			}
			buf := make([]float64, 64*64)
			fsel := Select{Start: []int64{int64(c.Rank()), 0, 0}, Count: []int64{1, 64, 64}}
			if err := ds.WriteAll(fsel, nil, buf); err != nil {
				return err
			}
			ds.Close()
		}
		end := c.AllreduceF64([]float64{c.Clock()}, mpi.OpMax)[0]
		if c.Rank() == 0 {
			h5Time = end
		}
		return f.Close()
	})
	if h5Time <= 0 {
		t.Fatal("no virtual time accumulated")
	}
}

func TestGroupTableGrowth(t *testing.T) {
	// Enough entries to overflow the initial 4 KiB table and force the
	// reallocation path; the namespace must stay fully functional.
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		f, err := CreateFile(c, fsys, "grow.h5", nil)
		if err != nil {
			return err
		}
		const n = 300
		for i := 0; i < n; i++ {
			ds, err := f.CreateDataset(fmt.Sprintf("/dataset_with_a_fairly_long_name_%04d", i), nctype.Int, []int64{2})
			if err != nil {
				return fmt.Errorf("create %d: %w", i, err)
			}
			if err := ds.WriteAll(Select{Start: []int64{0}, Count: []int64{2}},
				nil, []int32{int32(i), int32(-i)}); err != nil {
				return err
			}
			ds.Close()
		}
		f.Close()
		f, err = OpenFile(c, fsys, "grow.h5", true, nil)
		if err != nil {
			return err
		}
		for _, i := range []int{0, 1, 150, 299} {
			ds, err := f.OpenDataset(fmt.Sprintf("/dataset_with_a_fairly_long_name_%04d", i))
			if err != nil {
				return fmt.Errorf("open %d after growth: %w", i, err)
			}
			got := make([]int32, 2)
			if err := ds.ReadAll(Select{Start: []int64{0}, Count: []int64{2}}, nil, got); err != nil {
				return err
			}
			if got[0] != int32(i) || got[1] != int32(-i) {
				return fmt.Errorf("dataset %d = %v", i, got)
			}
			ds.Close()
		}
		return f.Close()
	})
}

func TestOpenFileRejectsGarbage(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		// A netCDF file is not an h5sim file.
		if c.Rank() == 0 {
			pf, _ := fsys.Create("not.h5", 0)
			pf.WriteAt(0, []byte("CDF\x01 definitely not hdf"), 0)
		}
		c.Barrier()
		if _, err := OpenFile(c, fsys, "not.h5", true, nil); err == nil {
			return errors.New("garbage accepted as h5sim file")
		}
		return nil
	})
}

func TestListAndIsGroup(t *testing.T) {
	fsys := testFS()
	runWorld(t, 2, func(c *mpi.Comm) error {
		f, err := CreateFile(c, fsys, "ls.h5", nil)
		if err != nil {
			return err
		}
		if err := f.CreateGroup("/run"); err != nil {
			return err
		}
		for _, n := range []string{"b", "a", "c"} {
			ds, err := f.CreateDataset("/run/"+n, nctype.Float, []int64{1})
			if err != nil {
				return err
			}
			ds.Close()
		}
		root, err := f.List("/")
		if err != nil {
			return err
		}
		if len(root) != 1 || root[0] != "run" {
			return fmt.Errorf("root = %v", root)
		}
		kids, err := f.List("/run")
		if err != nil {
			return err
		}
		if fmt.Sprint(kids) != "[a b c]" {
			return fmt.Errorf("kids = %v (must be sorted)", kids)
		}
		if !f.IsGroup("/run") || f.IsGroup("/run/a") {
			return errors.New("IsGroup misclassifies")
		}
		if _, err := f.List("/missing"); err == nil {
			return errors.New("List of missing group succeeded")
		}
		return f.Close()
	})
}
